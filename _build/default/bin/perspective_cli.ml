(* Command-line interface for the Perspective reproduction.

   Subcommands:
     attack    run the transient-execution PoCs under a chosen scheme
     surface   ISV attack-surface study (Tables 8.1/8.2, Figure 9.1)
     perf      cycle-level performance runs (Figures 9.2/9.3, Table 10.1)
     hw        view-cache hardware characterization (Table 9.1)
     params    simulation parameters (Table 7.1)
     cves      the kernel CVE taxonomy (Table 4.1) *)

module E = Pv_experiments
module Tab = Pv_util.Tab
module Defense = Perspective.Defense
module Isv = Perspective.Isv
open Cmdliner

let scheme_conv =
  let parse s =
    match String.uppercase_ascii s with
    | "UNSAFE" -> Ok Defense.Unsafe
    | "FENCE" -> Ok Defense.Fence
    | "DOM" -> Ok Defense.Dom
    | "STT" -> Ok Defense.Stt
    | "PERSPECTIVE-STATIC" -> Ok (Defense.Perspective Isv.Static)
    | "PERSPECTIVE" -> Ok (Defense.Perspective Isv.Dynamic)
    | "PERSPECTIVE++" -> Ok (Defense.Perspective Isv.Plus)
    | "PERSPECTIVE-ALL" | "DSV-ONLY" -> Ok (Defense.Perspective Isv.All)
    | _ -> Error (`Msg ("unknown scheme: " ^ s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Defense.scheme_name s))

let scheme_arg =
  Arg.(
    value
    & opt (some scheme_conv) None
    & info [ "s"; "scheme" ] ~docv:"SCHEME"
        ~doc:
          "Defense scheme: unsafe, fence, dom, stt, perspective-static, perspective, \
           perspective++, dsv-only.  Default: run all.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let scale_arg =
  Arg.(
    value & opt float 1.0
    & info [ "scale" ] ~docv:"F" ~doc:"Workload scale factor (iterations/requests).")

let jobs_arg =
  Arg.(
    value
    & opt int (Pv_util.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the experiment runs.  Results are deterministic: \
           any N produces output identical to -j 1 (the serial path).  Default: \
           the recommended domain count of this machine.")

(* --- attack --- *)

let attack_kinds = [ "v1"; "v2"; "rsb"; "all" ]

let attack_cmd =
  let kind =
    Arg.(
      value & pos 0 (enum (List.map (fun k -> (k, k)) attack_kinds)) "all"
      & info [] ~docv:"ATTACK" ~doc:"v1 (active), v2 (passive), rsb (passive), or all.")
  in
  let run kind scheme seed =
    let verdict label secret leaked fences =
      Printf.printf "  %-22s secret=%3d leaked=%-4s fences=%-3d -> %s\n" label secret
        (match leaked with Some v -> string_of_int v | None -> "none")
        fences
        (if leaked = Some secret then "SECRET LEAKED" else "blocked")
    in
    let v1 s =
      let o = Pv_attacks.Spectre_v1.run ~seed ~scheme:s () in
      verdict o.Pv_attacks.Spectre_v1.scheme o.Pv_attacks.Spectre_v1.secret
        o.Pv_attacks.Spectre_v1.leaked o.Pv_attacks.Spectre_v1.fences
    in
    let v2 s =
      let o = Pv_attacks.Spectre_v2.run ~seed ~scheme:s () in
      verdict o.Pv_attacks.Spectre_v2.scheme o.Pv_attacks.Spectre_v2.secret
        o.Pv_attacks.Spectre_v2.leaked o.Pv_attacks.Spectre_v2.fences
    in
    let rsb s =
      let o = Pv_attacks.Spectre_rsb.run ~seed ~scheme:s () in
      verdict o.Pv_attacks.Spectre_rsb.scheme o.Pv_attacks.Spectre_rsb.secret
        o.Pv_attacks.Spectre_rsb.leaked o.Pv_attacks.Spectre_rsb.fences
    in
    let schemes =
      match scheme with
      | Some s -> [ s ]
      | None ->
        [
          Defense.Unsafe; Defense.Fence; Defense.Dom; Defense.Stt;
          Defense.Perspective Isv.All; Defense.Perspective Isv.Static;
          Defense.Perspective Isv.Dynamic; Defense.Perspective Isv.Plus;
        ]
    in
    let section name f =
      Printf.printf "%s:\n" name;
      List.iter f schemes
    in
    (match kind with
    | "v1" -> section "Spectre v1 (active)" v1
    | "v2" -> section "Spectre v2 (passive, type confusion)" v2
    | "rsb" -> section "Spectre-RSB (passive, ret2spec)" rsb
    | _ ->
      section "Spectre v1 (active)" v1;
      section "Spectre v2 (passive, type confusion)" v2;
      section "Spectre-RSB (passive, ret2spec)" rsb);
    0
  in
  let doc = "Run transient-execution attack PoCs on the simulator." in
  Cmd.v (Cmd.info "attack" ~doc) Term.(const run $ kind $ scheme_arg $ seed_arg)

(* --- surface --- *)

let surface_cmd =
  let run seed jobs =
    let study = E.Isv_study.build ~seed () in
    Tab.print (E.Isv_study.surface_table study);
    Tab.print (E.Isv_study.gadget_table study);
    Tab.print (E.Isv_study.speedup_table ~seed ~jobs study);
    0
  in
  let doc = "ISV attack-surface study: Tables 8.1/8.2 and Figure 9.1." in
  Cmd.v (Cmd.info "surface" ~doc) Term.(const run $ seed_arg $ jobs_arg)

(* --- perf --- *)

let perf_cmd =
  let workload =
    Arg.(
      value & opt (some string) None
      & info [ "w"; "workload" ] ~docv:"NAME"
          ~doc:"One LEBench test or app name; default: everything.")
  in
  let run workload scheme seed scale jobs =
    let variants =
      match scheme with
      | Some s ->
        [ E.Schemes.unsafe ]
        @ List.filter (fun v -> v.E.Schemes.scheme = s) (E.Schemes.standard @ E.Schemes.hardware)
      | None -> E.Schemes.standard @ E.Schemes.hardware
    in
    let micro_tests =
      match workload with
      | None -> Pv_workloads.Lebench.tests
      | Some w -> (
        match List.find_opt (fun t -> t.Pv_workloads.Lebench.name = w) Pv_workloads.Lebench.tests with
        | Some t -> [ t ]
        | None -> [])
    in
    let apps =
      match workload with
      | None -> Pv_workloads.Apps.all
      | Some w -> List.filter (fun a -> a.Pv_workloads.Apps.name = w) Pv_workloads.Apps.all
    in
    if micro_tests <> [] then
      Tab.print
        (E.Perf_report.fig_lebench
           (E.Perf.lebench_matrix ~seed ~scale ~jobs ~tests:micro_tests ~variants ()));
    if apps <> [] then
      Tab.print
        (E.Perf_report.fig_apps (E.Perf.apps_matrix ~seed ~scale ~jobs ~apps ~variants ()));
    if micro_tests = [] && apps = [] then begin
      Printf.eprintf "unknown workload\n";
      1
    end
    else 0
  in
  let doc = "Cycle-level performance runs (Figures 9.2/9.3)." in
  Cmd.v
    (Cmd.info "perf" ~doc)
    Term.(const run $ workload $ scheme_arg $ seed_arg $ scale_arg $ jobs_arg)

(* --- small static commands --- *)

let table_cmd name doc table =
  let run () =
    Tab.print (table ());
    0
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ const ())

let hw_cmd = table_cmd "hw" "View-cache hardware characterization (Table 9.1)."
    E.Static_tables.hw_characterization

let params_cmd = table_cmd "params" "Simulation parameters (Table 7.1)." E.Static_tables.sim_params

let cves_cmd = table_cmd "cves" "Kernel CVE taxonomy (Table 4.1)." E.Security.cve_table

let () =
  let doc = "Perspective: pliable and secure speculation in operating systems (reproduction)" in
  let info = Cmd.info "perspective" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info [ attack_cmd; surface_cmd; perf_cmd; hw_cmd; params_cmd; cves_cmd ]))
