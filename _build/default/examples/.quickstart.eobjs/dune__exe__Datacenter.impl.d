examples/datacenter.ml: Array List Printf Pv_experiments Pv_workloads String Sys
