examples/datacenter.mli:
