examples/isv_audit.ml: List Perspective Printf Pv_isvgen Pv_kernel Pv_scanner Pv_util Pv_workloads
