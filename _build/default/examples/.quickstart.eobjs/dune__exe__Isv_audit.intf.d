examples/isv_audit.mli:
