examples/quickstart.ml: Perspective Printf Pv_kernel Pv_sim Pv_uarch Pv_workloads
