examples/quickstart.mli:
