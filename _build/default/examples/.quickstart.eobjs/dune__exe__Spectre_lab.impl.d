examples/spectre_lab.ml: List Perspective Printf Pv_attacks String
