examples/spectre_lab.mli:
