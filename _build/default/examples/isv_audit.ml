(* ISV audit workflow: the paper's security-hardening loop for one
   application (SS5.3, SS5.4, SS6.1).

     dune exec examples/isv_audit.exe

   1. Profile an application to obtain its syscall footprint.
   2. Generate its static ISV (binary analysis) and dynamic ISV (tracing).
   3. Bound a Kasper-style gadget-scanning campaign to the dynamic ISV and
      compare the discovery rate against scanning the whole kernel.
   4. Exclude the discovered gadgets: ISV++ blocks 100% of them.
   5. Demonstrate runtime reconfiguration: a freshly disclosed vulnerable
      function is patched out of the live view without a kernel update. *)

module Kernel = Pv_kernel.Kernel
module Callgraph = Pv_kernel.Callgraph
module Process = Pv_kernel.Process
module Gadgets = Pv_scanner.Gadgets
module Campaign = Pv_scanner.Campaign
module Isv = Perspective.Isv
module Bitset = Pv_util.Bitset

let () =
  let kernel = Kernel.create ~seed:7 () in
  let graph = Kernel.graph kernel in
  let nfuncs = Callgraph.nnodes graph in
  Printf.printf "synthetic kernel: %d functions, %d system calls\n\n" nfuncs
    Pv_kernel.Sysno.count;

  (* 1. Profile nginx's request loop + background interface. *)
  let app = Pv_workloads.Apps.nginx in
  let proc = Kernel.spawn kernel ~name:app.Pv_workloads.Apps.name in
  let sequence =
    app.Pv_workloads.Apps.request
    @ List.map (fun nr -> (nr, [||])) app.Pv_workloads.Apps.background
  in
  Pv_isvgen.Dynamic_isv.profile kernel proc ~workload:sequence ~repetitions:40;
  let ctx = Process.cgroup proc in
  let syscalls = Pv_workloads.Apps.footprint app in
  Printf.printf "1. %s uses %d distinct system calls\n" app.Pv_workloads.Apps.name
    (List.length syscalls);

  (* 2. Static and dynamic ISVs. *)
  let static = Pv_isvgen.Static_isv.generate graph ~syscalls in
  let dynamic = Pv_isvgen.Dynamic_isv.generate kernel ~ctx in
  Printf.printf "2. static ISV: %5d functions (%.1f%% surface reduction)\n"
    (Isv.size static) (Isv.reduction_vs_kernel static);
  Printf.printf "   dynamic ISV: %4d functions (%.1f%% surface reduction)\n\n"
    (Isv.size dynamic) (Isv.reduction_vs_kernel dynamic);

  (* 3. Bounded gadget scanning. *)
  let corpus = Gadgets.plant graph ~seed:7 in
  let full = Campaign.run graph corpus ~seed:7 () in
  let bounded = Campaign.run graph corpus ~scope:(Isv.nodes dynamic) ~seed:7 () in
  Printf.printf "3. Kasper-style campaign:\n";
  Printf.printf "   whole kernel : %5d functions, %4d gadgets, %6.1f gadgets/hour\n"
    full.Campaign.space full.Campaign.found full.Campaign.rate;
  Printf.printf "   ISV-bounded  : %5d functions, %4d gadgets, %6.1f gadgets/hour (%.2fx)\n\n"
    bounded.Campaign.space bounded.Campaign.found bounded.Campaign.rate
    (Campaign.speedup ~bounded ~full);

  (* 4. Harden: exclude everything the audit found. *)
  let found_nodes =
    List.map (fun g -> g.Gadgets.node) (Gadgets.in_scope corpus (Isv.nodes dynamic))
  in
  let plus = Pv_isvgen.Audit.harden dynamic ~gadget_nodes:found_nodes in
  Printf.printf "4. ISV++: excluded %d gadget functions; in-view gadgets now: %d\n\n"
    (List.length found_nodes)
    (List.length (Gadgets.in_scope corpus (Isv.nodes plus)));

  (* 5. Swift patching: a new CVE lands in some function inside the view. *)
  (match Bitset.elements (Isv.nodes plus) with
  | vulnerable :: _ ->
    Printf.printf "5. new CVE in %s: " (Callgraph.node_name graph vulnerable);
    Isv.exclude plus vulnerable;
    Printf.printf "excluded from the live view - mitigated without a kernel patch\n"
  | [] -> ());
  Printf.printf "   final view: %d functions, %.1f%% of the kernel speculatively dark\n"
    (Isv.size plus) (Isv.reduction_vs_kernel plus)
