(* Quickstart: build a machine, give it a workload, install Perspective and
   compare its cost against an unprotected run.

     dune exec examples/quickstart.exe

   This walks the library's whole public surface in ~40 lines:
   machine construction, workload drivers, dynamic ISV profiling, defense
   installation and the counters the evaluation is built from. *)

module Machine = Pv_sim.Machine
module Pipeline = Pv_uarch.Pipeline
module Sysno = Pv_kernel.Sysno
module Driver = Pv_workloads.Driver
module Defense = Perspective.Defense

(* A little application: per iteration it polls 64 descriptors and reads
   4 KiB. *)
let workload = [ (Sysno.sys_poll, [| 64 |]); (Sysno.sys_read, [| 4096 |]) ]

let run scheme =
  (* 1. A machine hosts the synthetic kernel and one OOO core; realize the
     kernel functions our workload needs. *)
  let m = Machine.create ~seed:2024 ~syscalls:(Driver.syscalls_of workload) () in
  (* 2. A process with a measurement-loop driver (30 iterations). *)
  let h =
    Machine.add_process m ~name:"quickstart"
      ~user_funcs:(Driver.build ~iterations:30 ~sequence:workload ~user_work:8)
      ~entry:0
  in
  Machine.freeze m;
  (* 3. Trace the workload functionally - this is what dynamic ISVs are
     generated from. *)
  Machine.profile m h ~workload ~repetitions:25;
  (* 4. Install the defense and run on the pipeline. *)
  Machine.install_defense m scheme;
  let result, counters = Machine.run m h in
  (match result.Pipeline.outcome with
  | Pipeline.Halted -> ()
  | _ -> failwith "workload did not complete");
  (result.Pipeline.cycles, counters)

let () =
  let unsafe_cycles, _ = run Defense.Unsafe in
  let persp_cycles, c = run (Defense.Perspective Perspective.Isv.Dynamic) in
  let fence_cycles, _ = run Defense.Fence in
  Printf.printf "cycles: UNSAFE %d | PERSPECTIVE %d | FENCE %d\n" unsafe_cycles
    persp_cycles fence_cycles;
  Printf.printf "PERSPECTIVE overhead: %+.1f%%  (FENCE: %+.1f%%)\n"
    ((float_of_int persp_cycles /. float_of_int unsafe_cycles -. 1.0) *. 100.0)
    ((float_of_int fence_cycles /. float_of_int unsafe_cycles -. 1.0) *. 100.0);
  Printf.printf "fences under PERSPECTIVE: %d from ISVs, %d from DSVs\n"
    c.Pipeline.fences_isv c.Pipeline.fences_dsv;
  Printf.printf
    "\nThe pliable interface at work: the hardware fenced only the %d loads\n\
     whose instruction or data fell outside this process's speculation views,\n\
     instead of all %d speculative loads (which is what FENCE pays for).\n"
    (c.Pipeline.fences_isv + c.Pipeline.fences_dsv)
    c.Pipeline.spec_loads
