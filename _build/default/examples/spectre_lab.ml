(* Spectre lab: watch the paper's taxonomy play out on the simulator.

     dune exec examples/spectre_lab.exe

   Runs the three attack proof-of-concepts (active Spectre v1, passive
   Spectre v2 with type confusion, passive Spectre-RSB) under a progression
   of defenses, printing what the attacker's flush+reload decoder actually
   recovered from the simulated caches.  The punchline is the middle column:
   DSVs alone (PERSPECTIVE-ALL) stop the active attack cold but are powerless
   against the passive one - precisely the observation that motivates ISVs
   (paper SS4.1, SS5.1). *)

module Defense = Perspective.Defense
module Isv = Perspective.Isv

let schemes =
  [
    Defense.Unsafe;
    Defense.Perspective Isv.All (* DSVs only: ISV admits every function *);
    Defense.Perspective Isv.Dynamic;
  ]

let cell secret leaked =
  match leaked with
  | Some v when v = secret -> Printf.sprintf "LEAKED %3d" v
  | Some v -> Printf.sprintf "noise %3d" v
  | None -> "blocked"

let () =
  Printf.printf "%-28s %-16s %-16s %-16s\n" "attack" "UNSAFE" "DSVs only" "DSVs + ISVs";
  Printf.printf "%s\n" (String.make 80 '-');
  let row name f =
    let cells =
      List.map
        (fun s ->
          let secret, leaked = f s in
          cell secret leaked)
        schemes
    in
    (match cells with
    | [ a; b; c ] -> Printf.printf "%-28s %-16s %-16s %-16s\n" name a b c
    | _ -> assert false)
  in
  row "Spectre v1 (active)" (fun scheme ->
      let o = Pv_attacks.Spectre_v1.run ~scheme () in
      (o.Pv_attacks.Spectre_v1.secret, o.Pv_attacks.Spectre_v1.leaked));
  row "Spectre v2 (passive)" (fun scheme ->
      let o = Pv_attacks.Spectre_v2.run ~scheme () in
      (o.Pv_attacks.Spectre_v2.secret, o.Pv_attacks.Spectre_v2.leaked));
  row "Spectre-RSB (passive)" (fun scheme ->
      let o = Pv_attacks.Spectre_rsb.run ~scheme () in
      (o.Pv_attacks.Spectre_rsb.secret, o.Pv_attacks.Spectre_rsb.leaked));
  Printf.printf "%s\n" (String.make 80 '-');
  Printf.printf
    "Every verdict above is read back from simulated microarchitectural state:\n\
     the attacker evicts the covert-channel lines, triggers the victim, and\n\
     times reloads.  Note the middle column: data ownership (DSVs) eliminates\n\
     the active attack but cannot stop a passive attack, because there the\n\
     victim's own kernel thread touches only data it legitimately owns.\n\
     Instruction views (ISVs) close that gap.\n"
