lib/attacks/cve_study.ml: List
