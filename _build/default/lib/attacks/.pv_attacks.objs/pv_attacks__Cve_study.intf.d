lib/attacks/cve_study.mli:
