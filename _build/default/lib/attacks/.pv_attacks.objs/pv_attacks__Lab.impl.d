lib/attacks/lab.ml: List Perspective Pv_isa Pv_kernel Pv_uarch Pv_util
