lib/attacks/lab.mli: Perspective Pv_isa Pv_kernel Pv_uarch Pv_util
