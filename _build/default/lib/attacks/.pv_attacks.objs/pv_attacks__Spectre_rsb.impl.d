lib/attacks/spectre_rsb.ml: Lab List Perspective Pv_isa Pv_kernel Pv_uarch Pv_util
