lib/attacks/spectre_rsb.mli: Perspective
