lib/attacks/spectre_v1.ml: Lab List Perspective Pv_isa Pv_kernel Pv_uarch Pv_util
