lib/attacks/spectre_v1.mli: Perspective
