lib/attacks/spectre_v2.ml: Lab List Perspective Pv_isa Pv_kernel Pv_uarch Pv_util
