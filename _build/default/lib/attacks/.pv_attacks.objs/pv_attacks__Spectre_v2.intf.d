lib/attacks/spectre_v2.mli: Perspective
