type primitive = Unauthorized_data_access | Control_flow_hijack

type insufficiency = Not_applicable | Hardware | Software | Misuse

type row = {
  index : int;
  primitive : primitive;
  insufficiency : insufficiency;
  references : string list;
  description : string;
  origin : string;
}

let rows =
  [
    {
      index = 1;
      primitive = Unauthorized_data_access;
      insufficiency = Not_applicable;
      references = [ "CVE-2022-27223" ];
      description = "Array index is not validated";
      origin = "Xilinx USB driver";
    };
    {
      index = 2;
      primitive = Unauthorized_data_access;
      insufficiency = Misuse;
      references = [ "CVE-2019-15902" ];
      description = "Reintroduced Spectre vulnerabilities in backporting";
      origin = "ptrace";
    };
    {
      index = 3;
      primitive = Unauthorized_data_access;
      insufficiency = Not_applicable;
      references =
        [
          "CVE-2021-31829"; "CVE-2019-7308"; "CVE-2020-27170"; "CVE-2020-27171";
          "CVE-2021-29155";
        ];
      description = "Out-of-bounds speculation on pointer arithmetic";
      origin = "eBPF verifier";
    };
    {
      index = 4;
      primitive = Unauthorized_data_access;
      insufficiency = Not_applicable;
      references = [ "CVE-2021-33624"; "Kirzner & Morrison, USENIX Sec'21" ];
      description = "Speculative type confusion";
      origin = "eBPF verifier";
    };
    {
      index = 5;
      primitive = Control_flow_hijack;
      insufficiency = Hardware;
      references = [ "CVE-2022-0001"; "CVE-2022-0002"; "CVE-2022-23960"; "BHI (USENIX Sec'22)" ];
      description = "Branch history injection";
      origin = "Indirect calls and jumps";
    };
    {
      index = 6;
      primitive = Control_flow_hijack;
      insufficiency = Software;
      references = [ "CVE-2021-26401" ];
      description = "LFENCE/JMP is insufficient on AMD";
      origin = "Indirect calls and jumps";
    };
    {
      index = 7;
      primitive = Control_flow_hijack;
      insufficiency = Software;
      references = [ "CVE-2022-29900"; "CVE-2022-29901"; "Retbleed (USENIX Sec'22)" ];
      description = "Retbleed";
      origin = "Retpoline";
    };
    {
      index = 8;
      primitive = Control_flow_hijack;
      insufficiency = Misuse;
      references = [ "CVE-2022-2196" ];
      description = "Missing retpolines or IBPB";
      origin = "KVM";
    };
    {
      index = 9;
      primitive = Control_flow_hijack;
      insufficiency = Misuse;
      references = [ "CVE-2019-18660"; "CVE-2020-10767"; "CVE-2022-23824"; "CVE-2023-1998" ];
      description = "Improper use of hardware mitigations";
      origin = "Indirect calls and jumps";
    };
  ]

let primitive_name = function
  | Unauthorized_data_access -> "Unauthorized speculative data access (Spectre v1)"
  | Control_flow_hijack -> "Speculative control-flow hijacking (v2/RSB/...)"

let insufficiency_name = function
  | Not_applicable -> "n/a"
  | Hardware -> "Hardware"
  | Software -> "Software"
  | Misuse -> "Misuse"

let count_by_primitive p = List.length (List.filter (fun r -> r.primitive = p) rows)
