(** The paper's study of speculative-execution vulnerabilities in the Linux
    kernel (Table 4.1): nine rows classifying CVEs and academic attacks into
    the two attack primitives of the taxonomy, annotated with the mitigation
    failure mode and the origin of the vulnerability. *)

type primitive =
  | Unauthorized_data_access  (** Spectre-v1-like *)
  | Control_flow_hijack  (** Spectre v2 / RSB / Retbleed / BHI *)

type insufficiency = Not_applicable | Hardware | Software | Misuse

type row = {
  index : int;
  primitive : primitive;
  insufficiency : insufficiency;
  references : string list;  (** CVE ids / papers *)
  description : string;
  origin : string;
}

val rows : row list

val primitive_name : primitive -> string
val insufficiency_name : insufficiency -> string

val count_by_primitive : primitive -> int
