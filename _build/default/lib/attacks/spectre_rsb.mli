(** Passive transient-execution attack: Spectre-RSB / ret2spec.

    The return address stack predicts from stale entries on underflow.  The
    attacker runs first, leaving the VA of a gadget in its own user code at
    the top of the RAS.  The victim's system call ends in a return whose
    stack line the attacker evicted: while the return resolves, fetch
    speculates to the stale RAS entry — the attacker's user-space gadget —
    which runs transiently {e in kernel context} with the victim's secret
    reference still live in a register, and transmits it.

    The victim's ISV cannot contain attacker user code, so Perspective fences
    the gadget's transmitters regardless of how the ISV was generated. *)

type outcome = {
  scheme : string;
  secret : int;
  leaked : int option;
  success : bool;
  fences : int;
  hot_slot_count : int;
}

val run : ?seed:int -> scheme:Perspective.Defense.scheme -> unit -> outcome

val run_all : ?seed:int -> unit -> outcome list
