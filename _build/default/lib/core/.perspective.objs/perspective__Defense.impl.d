lib/core/defense.ml: Dsvmt Isv Isv_pages Pv_isa Pv_uarch Svcache View_manager
