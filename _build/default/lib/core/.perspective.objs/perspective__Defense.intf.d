lib/core/defense.mli: Isv Isv_pages Pv_uarch Svcache View_manager
