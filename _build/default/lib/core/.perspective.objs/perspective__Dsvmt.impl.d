lib/core/dsvmt.ml: Array Hashtbl
