lib/core/dsvmt.mli:
