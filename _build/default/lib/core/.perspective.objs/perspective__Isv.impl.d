lib/core/isv.ml: Pv_util
