lib/core/isv.mli: Pv_util
