lib/core/isv_pages.ml: Array Hashtbl List Pv_isa
