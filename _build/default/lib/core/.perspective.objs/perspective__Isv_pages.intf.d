lib/core/isv_pages.mli:
