lib/core/spot.ml: Pv_uarch
