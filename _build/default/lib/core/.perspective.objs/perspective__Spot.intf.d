lib/core/spot.mli: Pv_uarch
