lib/core/svcache.ml: Array
