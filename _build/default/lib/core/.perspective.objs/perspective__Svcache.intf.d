lib/core/svcache.mli:
