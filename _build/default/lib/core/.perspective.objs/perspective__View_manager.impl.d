lib/core/view_manager.ml: Dsvmt Hashtbl Isv List
