lib/core/view_manager.mli: Dsvmt Isv
