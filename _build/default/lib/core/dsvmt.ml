let levels = 3

(* Index split for a 4 KiB page number: 9 bits per level (512-ary tree),
   L1 covers 1 GiB (2^18 pages), L2 covers 2 MiB (2^9 pages). *)
let l2_bits = 9

let l1_bits = 9

type leaf_table = { bits : bool array; present : bool array }

type mid_table = {
  leaves : leaf_table option array;
  mutable huge : (bool * bool) array; (* (present, bit) per 2 MiB entry *)
}

type t = {
  ctx : int;
  oracle : page:int -> bool;
  top : (int, mid_table) Hashtbl.t; (* 1 GiB region index -> mid table *)
  mutable walks : int;
  mutable populated : int;
}

let create ~ctx ~oracle =
  { ctx; oracle; top = Hashtbl.create 16; walks = 0; populated = 0 }

let ctx t = t.ctx

let split page =
  let l3 = page land ((1 lsl l2_bits) - 1) in
  let l2 = (page lsr l2_bits) land ((1 lsl l1_bits) - 1) in
  let l1 = page lsr (l2_bits + l1_bits) in
  (l1, l2, l3)

let mid_table t l1 =
  match Hashtbl.find_opt t.top l1 with
  | Some m -> m
  | None ->
    let m =
      {
        leaves = Array.make (1 lsl l1_bits) None;
        huge = Array.make (1 lsl l1_bits) (false, false);
      }
    in
    Hashtbl.replace t.top l1 m;
    m

let leaf_table m l2 =
  match m.leaves.(l2) with
  | Some l -> l
  | None ->
    let l =
      {
        bits = Array.make (1 lsl l2_bits) false;
        present = Array.make (1 lsl l2_bits) false;
      }
    in
    m.leaves.(l2) <- Some l;
    l

let walk t ~page =
  t.walks <- t.walks + 1;
  let l1, l2, l3 = split page in
  let m = mid_table t l1 in
  let huge_present, huge_bit = m.huge.(l2) in
  if huge_present then huge_bit
  else
    let leaf = leaf_table m l2 in
    if leaf.present.(l3) then leaf.bits.(l3)
    else begin
      let bit = t.oracle ~page in
      leaf.present.(l3) <- true;
      leaf.bits.(l3) <- bit;
      t.populated <- t.populated + 1;
      bit
    end

let set_page t ~page bit =
  let l1, l2, l3 = split page in
  let leaf = leaf_table (mid_table t l1) l2 in
  if not leaf.present.(l3) then t.populated <- t.populated + 1;
  leaf.present.(l3) <- true;
  leaf.bits.(l3) <- bit

let invalidate_page t ~page =
  let l1, l2, l3 = split page in
  match Hashtbl.find_opt t.top l1 with
  | None -> ()
  | Some m -> (
    m.huge.(l2) <- (false, false);
    match m.leaves.(l2) with
    | None -> ()
    | Some leaf ->
      if leaf.present.(l3) then t.populated <- t.populated - 1;
      leaf.present.(l3) <- false)

let mark_huge t ~page_2m bit =
  let l1 = page_2m lsr l1_bits in
  let l2 = page_2m land ((1 lsl l1_bits) - 1) in
  let m = mid_table t l1 in
  m.huge.(l2) <- (true, bit)

let walks t = t.walks
let populated_leaves t = t.populated
