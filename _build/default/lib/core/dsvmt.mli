(** Data Speculation View Metadata Table (paper §6.2).

    A per-context three-level tree over physical pages, mirroring the page
    sizes of contemporary hardware (1 GiB / 2 MiB / 4 KiB): a walk descends
    level by level and the 4 KiB leaf holds a single bit — "does this page
    belong to the context's DSV?".  Entries are populated lazily from the
    ownership oracle (the kernel's allocation tracking); frees must
    invalidate the page so a recycled frame never leaks a stale bit. *)

type t

val create : ctx:int -> oracle:(page:int -> bool) -> t
(** [oracle ~page] is the authoritative membership answer consulted on the
    first walk for a page (4 KiB page index = PA / 4096). *)

val ctx : t -> int

val walk : t -> page:int -> bool
(** Perform a table walk: returns the leaf bit, populating intermediate
    levels on demand.  Counted in {!walks}. *)

val set_page : t -> page:int -> bool -> unit
(** Explicitly set a leaf bit (used when the OS updates views eagerly). *)

val invalidate_page : t -> page:int -> unit
(** Drop the leaf so the next walk re-consults the oracle. *)

val mark_huge : t -> page_2m:int -> bool -> unit
(** Set a whole 2 MiB region's bit at the middle level. *)

val walks : t -> int
val populated_leaves : t -> int
val levels : int
(** 3. *)
