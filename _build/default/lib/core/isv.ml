module Bitset = Pv_util.Bitset

type kind = All | Static | Dynamic | Plus

let kind_name = function
  | All -> "all"
  | Static -> "ISV-S"
  | Dynamic -> "ISV"
  | Plus -> "ISV++"

type t = { kind : kind; mutable nodes : Bitset.t }

let all ~nnodes =
  let b = Bitset.create nnodes in
  for i = 0 to nnodes - 1 do
    Bitset.set b i
  done;
  { kind = All; nodes = b }

let of_nodes kind nodes = { kind; nodes = Bitset.copy nodes }

let kind t = t.kind
let nnodes t = Bitset.length t.nodes
let member t n = Bitset.mem t.nodes n
let size t = Bitset.count t.nodes

let exclude t n = Bitset.clear t.nodes n

let shrink_to t b = t.nodes <- Bitset.inter t.nodes b

let nodes t = Bitset.copy t.nodes

let reduction_vs_kernel t =
  100.0 *. (1.0 -. (float_of_int (size t) /. float_of_int (nnodes t)))
