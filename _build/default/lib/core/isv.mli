(** Instruction Speculation Views (paper §5.1, §5.3, §5.4).

    An ISV is the set of kernel functions a context trusts to execute
    transmitter instructions speculatively.  Membership is held as a bitset
    over callgraph nodes; it is mutable so views can be reconfigured at
    runtime — shrunk as functionality is no longer needed, or patched to
    exclude a newly discovered gadget without a kernel update. *)

type kind =
  | All  (** unprotected: every kernel function is in view *)
  | Static  (** from static binary analysis (system-call interposition) *)
  | Dynamic  (** from kernel tracing *)
  | Plus  (** dynamic, hardened with gadget-audit results (ISV++) *)

val kind_name : kind -> string

type t

val all : nnodes:int -> t
val of_nodes : kind -> Pv_util.Bitset.t -> t
val kind : t -> kind
val nnodes : t -> int
val member : t -> int -> bool
val size : t -> int

val exclude : t -> int -> unit
(** Swift gadget patching: drop one function from the view. *)

val shrink_to : t -> Pv_util.Bitset.t -> unit
(** Replace membership with the intersection — views may only get stricter
    at runtime (paper §5.4).  Raises [Invalid_argument] on length mismatch. *)

val nodes : t -> Pv_util.Bitset.t
(** Copy of the membership set. *)

val reduction_vs_kernel : t -> float
(** Attack-surface reduction: percentage of kernel functions outside the
    view (Table 8.1's metric). *)
