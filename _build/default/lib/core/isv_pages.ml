module Layout = Pv_isa.Layout

type shadow = { bits : bool array; present : bool array }

type t = {
  pages : (int * int, shadow) Hashtbl.t; (* (ctx, code page index) -> shadow *)
  mutable populations : int;
}

let create () = { pages = Hashtbl.create 64; populations = 0 }

let bytes_per_page = Layout.max_insns_per_func / 8

let shadow_va code_va = Layout.isv_page_va code_va

let page_index va = va / Layout.page_bytes

let slot va = va mod Layout.page_bytes / Layout.insn_bytes

let lookup t ~ctx ~insn_va ~member =
  let key = (ctx, page_index insn_va) in
  let shadow =
    match Hashtbl.find_opt t.pages key with
    | Some s -> s
    | None ->
      let s =
        {
          bits = Array.make Layout.max_insns_per_func false;
          present = Array.make Layout.max_insns_per_func false;
        }
      in
      Hashtbl.replace t.pages key s;
      t.populations <- t.populations + 1;
      s
  in
  let i = slot insn_va in
  if shadow.present.(i) then shadow.bits.(i)
  else begin
    let b = member () in
    shadow.present.(i) <- true;
    shadow.bits.(i) <- b;
    b
  end

let invalidate_page t ~code_page_va =
  let page = page_index code_page_va in
  let stale =
    Hashtbl.fold
      (fun (ctx, p) _ acc -> if p = page then (ctx, p) :: acc else acc)
      t.pages []
  in
  List.iter (Hashtbl.remove t.pages) stale

let populated_pages t ~ctx =
  Hashtbl.fold (fun (c, _) _ acc -> if c = ctx then acc + 1 else acc) t.pages 0

let metadata_bytes t ~ctx = populated_pages t ~ctx * bytes_per_page

let population_events t = t.populations
