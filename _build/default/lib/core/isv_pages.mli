(** ISV pages: the in-memory metadata backing the ISV cache (paper §6.2,
    Figure 6.1(a)).

    Each kernel code page has a shadow ISV page at a fixed virtual-address
    offset, holding one bit per instruction slot.  Pages are materialized
    on demand, per execution context, the first time the ISV cache misses on
    an instruction of that code page — so the metadata footprint tracks the
    kernel-code working set of each context rather than the whole kernel.

    One code page holds 1024 four-byte instruction slots, so its shadow
    bitmap is 128 bytes; a context that touches a few hundred kernel pages
    pays tens of KiB. *)

type t

val create : unit -> t

val shadow_va : int -> int
(** VA of the ISV page backing the code page that contains this code VA
    (the fixed-offset mapping of Figure 6.1(a)). *)

val lookup :
  t -> ctx:int -> insn_va:int -> member:(unit -> bool) -> bool
(** Read the bit for an instruction, materializing the containing shadow
    page on first touch ([member] supplies the authoritative answer used to
    fill it; it is invoked once per instruction slot at population time via
    lazy per-bit fill). *)

val invalidate_page : t -> code_page_va:int -> unit
(** Drop the shadow page in every context (view reconfiguration: shrinks and
    gadget patches must not leave stale bits). *)

val populated_pages : t -> ctx:int -> int
(** Shadow pages materialized for a context. *)

val metadata_bytes : t -> ctx:int -> int
(** Memory footprint of the context's materialized shadow pages (128 bytes
    per code page). *)

val population_events : t -> int
(** Total demand-populations across contexts (each is a metadata-page fetch
    the hardware performs on an ISV-cache miss). *)
