module Pipeline = Pv_uarch.Pipeline

let kpti_entry_extra = 70

let kpti_exit_extra = 60

let retpoline (c : Pipeline.config) = { c with Pipeline.retpoline = true }

let kpti (c : Pipeline.config) =
  {
    c with
    Pipeline.kernel_entry_cycles = c.Pipeline.kernel_entry_cycles + kpti_entry_extra;
    kernel_exit_cycles = c.Pipeline.kernel_exit_cycles + kpti_exit_extra;
  }

let kpti_retpoline c = kpti (retpoline c)
