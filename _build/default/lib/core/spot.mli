(** Deployed "spot" software mitigations (paper §9.1 comparison).

    KPTI separates user and kernel page tables — modelled as an extra
    PCID-backed CR3 switch cost on every kernel entry and exit.  Retpoline rewrites indirect
    branches to returns that never consult the BTB — modelled as the
    pipeline's retpoline mode (indirect calls stall fetch until resolution).
    Both are config transformers; they protect only Meltdown/Spectre-v2
    respectively and leave every other variant open. *)

val kpti_entry_extra : int
val kpti_exit_extra : int

val retpoline : Pv_uarch.Pipeline.config -> Pv_uarch.Pipeline.config
val kpti : Pv_uarch.Pipeline.config -> Pv_uarch.Pipeline.config
val kpti_retpoline : Pv_uarch.Pipeline.config -> Pv_uarch.Pipeline.config
