type t = {
  nnodes : int;
  oracle : ctx:int -> page:int -> bool;
  asid_ctx : (int, int) Hashtbl.t;
  isvs : (int, Isv.t) Hashtbl.t;
  dsvmts : (int, Dsvmt.t) Hashtbl.t;
}

let create ~nnodes ~oracle =
  {
    nnodes;
    oracle;
    asid_ctx = Hashtbl.create 8;
    isvs = Hashtbl.create 8;
    dsvmts = Hashtbl.create 8;
  }

let register t ~asid ~ctx ~isv =
  Hashtbl.replace t.asid_ctx asid ctx;
  Hashtbl.replace t.isvs ctx isv

let ctx_of_asid t asid = Hashtbl.find_opt t.asid_ctx asid

let isv_of_ctx t ctx = Hashtbl.find_opt t.isvs ctx

let isv_of_asid t asid =
  match ctx_of_asid t asid with None -> None | Some ctx -> isv_of_ctx t ctx

let set_isv t ~ctx isv = Hashtbl.replace t.isvs ctx isv

let dsvmt t ~ctx =
  match Hashtbl.find_opt t.dsvmts ctx with
  | Some d -> d
  | None ->
    let d = Dsvmt.create ~ctx ~oracle:(fun ~page -> t.oracle ~ctx ~page) in
    Hashtbl.replace t.dsvmts ctx d;
    d

let invalidate_page t ~page =
  Hashtbl.iter (fun _ d -> Dsvmt.invalidate_page d ~page) t.dsvmts

let contexts t =
  Hashtbl.fold (fun ctx _ acc -> ctx :: acc) t.isvs [] |> List.sort compare

let total_dsvmt_walks t = Hashtbl.fold (fun _ d acc -> acc + Dsvmt.walks d) t.dsvmts 0
