(** Registry binding execution contexts to their speculation views.

    The OS registers each context (cgroup) with an ISV and implicitly gets a
    DSVMT; the hardware side (the {!Defense} guard) resolves the running
    ASID to its context here.  Swapping a context's ISV at runtime models the
    paper's dynamically reconfigurable views. *)

type t

val create : nnodes:int -> oracle:(ctx:int -> page:int -> bool) -> t
(** [oracle] is the authoritative DSV-membership answer (derived from the
    kernel's allocation ownership), consulted by DSVMT walks. *)

val register : t -> asid:int -> ctx:int -> isv:Isv.t -> unit
val ctx_of_asid : t -> int -> int option
val isv_of_ctx : t -> int -> Isv.t option
val isv_of_asid : t -> int -> Isv.t option
val set_isv : t -> ctx:int -> Isv.t -> unit
val dsvmt : t -> ctx:int -> Dsvmt.t
(** Get (or lazily create) the context's DSVMT. *)

val invalidate_page : t -> page:int -> unit
(** A frame was freed or changed owner: drop its leaf in every DSVMT. *)

val contexts : t -> int list
val total_dsvmt_walks : t -> int
