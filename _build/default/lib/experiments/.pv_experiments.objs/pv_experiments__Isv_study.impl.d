lib/experiments/isv_study.ml: List Printf Pv_isvgen Pv_kernel Pv_scanner Pv_util Workset
