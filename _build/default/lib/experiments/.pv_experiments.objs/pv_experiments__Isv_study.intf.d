lib/experiments/isv_study.mli: Pv_kernel Pv_scanner Pv_util
