lib/experiments/perf.ml: List Perspective Pv_kernel Pv_sim Pv_uarch Pv_util Pv_workloads Schemes
