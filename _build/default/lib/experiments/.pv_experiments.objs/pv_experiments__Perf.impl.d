lib/experiments/perf.ml: List Perspective Pv_kernel Pv_scanner Pv_sim Pv_uarch Pv_workloads Schemes
