lib/experiments/perf.mli: Pv_uarch Pv_workloads Schemes
