lib/experiments/perf_report.ml: Float List Perf Pv_uarch Pv_util String
