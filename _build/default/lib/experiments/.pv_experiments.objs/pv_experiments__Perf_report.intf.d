lib/experiments/perf_report.mli: Perf Pv_util
