lib/experiments/schemes.ml: List Perspective Pv_uarch
