lib/experiments/security.ml: List Pv_attacks Pv_util String
