lib/experiments/security.mli: Pv_util
