lib/experiments/sensitivity.ml: Array List Perf Printf Pv_kernel Pv_util Pv_workloads Schemes
