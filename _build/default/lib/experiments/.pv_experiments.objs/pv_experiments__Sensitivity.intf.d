lib/experiments/sensitivity.mli: Perf Pv_util
