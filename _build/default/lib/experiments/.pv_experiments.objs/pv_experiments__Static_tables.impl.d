lib/experiments/static_tables.ml: List Printf Pv_hwmodel Pv_uarch Pv_util
