lib/experiments/static_tables.mli: Pv_util
