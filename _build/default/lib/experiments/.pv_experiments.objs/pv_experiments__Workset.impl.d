lib/experiments/workset.ml: List Pv_kernel Pv_workloads
