module Machine = Pv_sim.Machine
module Pipeline = Pv_uarch.Pipeline
module Kernel = Pv_kernel.Kernel
module Slab = Pv_kernel.Slab
module Lebench = Pv_workloads.Lebench
module Apps = Pv_workloads.Apps
module Driver = Pv_workloads.Driver
module Defense = Perspective.Defense
module Svcache = Perspective.Svcache

type run = {
  label : string;
  workload : string;
  cycles : int;
  committed : int;
  counters : Pipeline.counters;
  kernel_cycle_fraction : float;
  isv_hit_rate : float;
  dsv_hit_rate : float;
  slab_utilization : float;
  slab_frees : int;
  slab_page_returns : int;
  isv_pages_populated : int;
  isv_metadata_bytes : int;
  units : int;
}

let fences_per_kiloinstr run =
  let k = float_of_int (max 1 run.counters.Pipeline.committed_kernel) /. 1000.0 in
  ( float_of_int run.counters.Pipeline.fences_isv /. k,
    float_of_int run.counters.Pipeline.fences_dsv /. k )

let profile_reps = 25

let execute ~seed ~block_unknown ~view_cache_entries ~syscalls ~sequence ~iterations
    ~user_work ~workload_name (variant : Schemes.variant) =
  let pipe_config = variant.Schemes.transform Pipeline.default_config in
  let m = Machine.create ~pipe_config ~seed ~syscalls () in
  let h =
    Machine.add_process m ~name:workload_name
      ~user_funcs:(Driver.build ~iterations ~sequence ~user_work)
      ~entry:0
  in
  Machine.freeze m;
  Machine.profile m h ~workload:sequence ~repetitions:profile_reps;
  let gadget_nodes =
    match variant.Schemes.scheme with
    | Defense.Perspective Perspective.Isv.Plus ->
      let corpus = Pv_scanner.Gadgets.plant (Kernel.graph (Machine.kernel m)) ~seed in
      Pv_scanner.Gadgets.nodes corpus
    | Defense.Perspective (Perspective.Isv.Static | Perspective.Isv.Dynamic | Perspective.Isv.All)
    | Defense.Unsafe | Defense.Fence | Defense.Dom | Defense.Stt ->
      []
  in
  Machine.install_defense m ~gadget_nodes ~block_unknown
    ~isv_cache_entries:view_cache_entries ~dsv_cache_entries:view_cache_entries
    variant.Schemes.scheme;
  let result, delta = Machine.run m h in
  (match result.Pipeline.outcome with
  | Pipeline.Halted -> ()
  | Pipeline.Out_of_fuel -> failwith (workload_name ^ ": out of fuel")
  | Pipeline.Fault msg -> failwith (workload_name ^ ": fault: " ^ msg));
  let slab = Kernel.slab (Machine.kernel m) in
  let hit_rate cache_of =
    match Machine.defense m with
    | Some d -> Svcache.hit_rate (cache_of d)
    | None -> 0.0
  in
  let ctx = Pv_kernel.Process.cgroup (Machine.process h) in
  let pages, meta_bytes =
    match Machine.defense m with
    | Some d ->
      ( Perspective.Isv_pages.populated_pages (Defense.isv_pages d) ~ctx,
        Perspective.Isv_pages.metadata_bytes (Defense.isv_pages d) ~ctx )
    | None -> (0, 0)
  in
  {
    label = variant.Schemes.label;
    workload = workload_name;
    cycles = result.Pipeline.cycles;
    committed = result.Pipeline.committed;
    counters = delta;
    kernel_cycle_fraction =
      float_of_int delta.Pipeline.kernel_cycles
      /. float_of_int (max 1 delta.Pipeline.cycles);
    isv_hit_rate = hit_rate Defense.isv_cache;
    dsv_hit_rate = hit_rate Defense.dsv_cache;
    slab_utilization = Slab.utilization slab;
    slab_frees = Slab.total_frees slab;
    slab_page_returns = Slab.page_returns slab;
    isv_pages_populated = pages;
    isv_metadata_bytes = meta_bytes;
    units = iterations;
  }

let run_lebench ?(seed = 42) ?(scale = 1.0) ?(block_unknown = true)
    ?(view_cache_entries = 128) variant test =
  let test = Lebench.scaled test ~factor:scale in
  execute ~seed ~block_unknown ~view_cache_entries ~syscalls:Lebench.all_syscalls
    ~sequence:test.Lebench.sequence ~iterations:test.Lebench.iterations
    ~user_work:test.Lebench.user_work ~workload_name:test.Lebench.name variant

let run_app ?(seed = 42) ?(scale = 1.0) ?(block_unknown = true)
    ?(view_cache_entries = 128) variant app =
  let app = Apps.scaled app ~factor:scale in
  execute ~seed ~block_unknown ~view_cache_entries ~syscalls:Apps.all_syscalls
    ~sequence:app.Apps.request ~iterations:app.Apps.requests
    ~user_work:app.Apps.user_work ~workload_name:app.Apps.name variant

let lebench_matrix ?(seed = 42) ?(scale = 1.0) ~variants () =
  List.map
    (fun test ->
      (test.Lebench.name, List.map (fun v -> run_lebench ~seed ~scale v test) variants))
    Lebench.tests

let apps_matrix ?(seed = 42) ?(scale = 1.0) ~variants () =
  List.map
    (fun app -> (app.Apps.name, List.map (fun v -> run_app ~seed ~scale v app) variants))
    Apps.all

let overhead_pct ~baseline run =
  (float_of_int run.cycles /. float_of_int baseline.cycles -. 1.0) *. 100.0

let normalized_latency ~baseline run =
  float_of_int run.cycles /. float_of_int baseline.cycles

let normalized_throughput ~baseline run =
  float_of_int baseline.cycles /. float_of_int run.cycles
