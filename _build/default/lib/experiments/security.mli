(** Chapter 8 security evaluation: proof-of-concept transient-execution
    attacks under every defense scheme (active Spectre v1; passive Spectre v2
    with type confusion; passive Spectre-RSB), plus the Table 4.1 CVE study
    rendering. *)

type poc = {
  attack : string;
  scheme : string;
  leaked : bool;
  correct : bool;  (** the leaked value equalled the planted secret *)
  fences : int;
}

val run_pocs : ?seed:int -> ?jobs:int -> unit -> poc list
(** [jobs] parallelizes the three attack families over a {!Pv_util.Pool};
    the verdict list is identical for every [jobs] value. *)

val poc_table : poc list -> Pv_util.Tab.t

val cve_table : unit -> Pv_util.Tab.t
(** Table 4.1. *)
