module Tab = Pv_util.Tab
module Cacti = Pv_hwmodel.Cacti
module Pipeline = Pv_uarch.Pipeline
module Memsys = Pv_uarch.Memsys

let sim_params () =
  let c = Pipeline.default_config in
  let m = Memsys.default_config in
  let tab =
    Tab.create ~title:"Table 7.1: Full-system simulation parameters"
      ~header:[ ("Parameter", Tab.Left); ("Value", Tab.Left) ]
  in
  Tab.row tab [ "Architecture"; "out-of-order core at 2.0 GHz (cycle-level model)" ];
  Tab.row tab
    [
      "Core";
      Printf.sprintf
        "%d-issue, out-of-order, %d LQ, %d SQ, %d ROB, TAGE predictor, %d BTB, %d RAS"
        c.Pipeline.issue_width c.Pipeline.lq_entries c.Pipeline.sq_entries
        c.Pipeline.rob_entries c.Pipeline.btb_entries c.Pipeline.ras_entries;
    ];
  Tab.row tab
    [
      "Private L1-I";
      Printf.sprintf "%d KB, 64 B line, %d-way, %d-cycle RT" (m.Memsys.l1i_bytes / 1024)
        m.Memsys.l1i_ways m.Memsys.l1i_latency;
    ];
  Tab.row tab
    [
      "Private L1-D";
      Printf.sprintf "%d KB, 64 B line, %d-way, %d-cycle RT" (m.Memsys.l1d_bytes / 1024)
        m.Memsys.l1d_ways m.Memsys.l1d_latency;
    ];
  Tab.row tab
    [
      "Shared L2";
      Printf.sprintf "%d MB, 64 B line, %d-way, %d-cycle RT"
        (m.Memsys.l2_bytes / 1024 / 1024) m.Memsys.l2_ways m.Memsys.l2_latency;
    ];
  Tab.row tab [ "DRAM"; Printf.sprintf "%d-cycle RT after L2 (50 ns at 2 GHz)" m.Memsys.dram_latency ];
  Tab.row tab [ "ISV cache"; "128 entries, 32 sets, 4-way; 57 bits/entry" ];
  Tab.row tab [ "DSV cache"; "128 entries, 32 sets, 4-way; 53 bits/entry" ];
  Tab.row tab [ "OS kernel"; "synthetic 28K-function kernel (Linux v5.4.49 stand-in)" ];
  tab

let hw_row tab name cfg =
  let c = Cacti.characterize cfg in
  Tab.row tab
    [
      name;
      Printf.sprintf "%.4f mm2" c.Cacti.area_mm2;
      Printf.sprintf "%.0f ps" c.Cacti.access_ps;
      Printf.sprintf "%.2f pJ" c.Cacti.dyn_energy_pj;
      Printf.sprintf "%.2f mW" c.Cacti.leak_power_mw;
    ]

let header =
  [
    ("Configuration", Tab.Left);
    ("Area", Tab.Right);
    ("Access time", Tab.Right);
    ("Dyn. energy", Tab.Right);
    ("Leak. power", Tab.Right);
  ]

let hw_characterization () =
  let tab = Tab.create ~title:"Table 9.1: Hardware structure characterization (22 nm)" ~header in
  hw_row tab "DSV cache" Cacti.dsv_cache_config;
  hw_row tab "ISV cache" Cacti.isv_cache_config;
  Tab.caption tab
    "Paper (CACTI 7): DSV 0.0024 mm2 / 114 ps / 1.21 pJ / 0.78 mW; ISV 0.0025 mm2 / \
     115 ps / 1.29 pJ / 0.79 mW.";
  tab

let hw_sensitivity () =
  let tab =
    Tab.create ~title:"View-cache characterization vs capacity (extension)" ~header
  in
  List.iter
    (fun entries ->
      hw_row tab
        (Printf.sprintf "DSV cache, %d entries" entries)
        { Cacti.dsv_cache_config with Cacti.entries })
    [ 64; 128; 256; 512 ];
  tab
