(** Configuration and analytical tables: Table 7.1 (simulation parameters)
    and Table 9.1 (view-cache hardware characterization). *)

val sim_params : unit -> Pv_util.Tab.t
val hw_characterization : unit -> Pv_util.Tab.t

val hw_sensitivity : unit -> Pv_util.Tab.t
(** Extension: how the view-cache characterization scales with entry count
    (sensitivity companion to Table 9.1). *)
