(** The evaluation's workload set: the LEBench suite (treated as one
    application, the union of its tests) plus the four datacenter servers —
    the five columns of Tables 8.1/8.2 and Figure 9.1. *)

module Lebench = Pv_workloads.Lebench
module Apps = Pv_workloads.Apps

type w = {
  name : string;
  sequence : (int * int array) list;  (** one profiling pass *)
  repetitions : int;  (** profiling passes for dynamic ISVs *)
}

let lebench =
  {
    name = "LEBench";
    sequence =
      List.concat_map (fun t -> t.Lebench.sequence) Lebench.tests
      @ List.map
          (fun n -> (n, [||]))
          [
            Pv_kernel.Sysno.sys_open; Pv_kernel.Sysno.sys_close;
            Pv_kernel.Sysno.sys_stat; Pv_kernel.Sysno.sys_futex;
            Pv_kernel.Sysno.sys_nanosleep;
          ];
    repetitions = 40;
  }

let of_app (app : Apps.app) =
  {
    name = app.Apps.name;
    sequence = app.Apps.request @ List.map (fun nr -> (nr, [||])) app.Apps.background;
    repetitions = 40;
  }

let all = lebench :: List.map of_app Apps.all

let syscalls w = Pv_workloads.Driver.syscalls_of w.sequence
