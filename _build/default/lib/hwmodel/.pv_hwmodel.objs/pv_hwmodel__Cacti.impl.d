lib/hwmodel/cacti.ml:
