lib/hwmodel/cacti.mli:
