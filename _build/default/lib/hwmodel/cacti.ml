type sram_config = { entries : int; bits_per_entry : int; ways : int }

let dsv_cache_config = { entries = 128; bits_per_entry = 53; ways = 4 }

let isv_cache_config = { entries = 128; bits_per_entry = 57; ways = 4 }

type characterization = {
  area_mm2 : float;
  access_ps : float;
  dyn_energy_pj : float;
  leak_power_mw : float;
}

(* Calibration constants at 22 nm, fitted to the paper's CACTI 7 outputs for
   the two view caches (Table 9.1). *)
let cell_area_mm2_per_bit = 1.18e-7 (* effective, including periphery *)

let area_fixed_mm2 = 0.0016

let access_base_ps = 58.0

let access_sqrt_coeff = 0.68

let energy_base_pj = 0.15

let energy_per_bit_read_pj = 0.005

let leak_base_mw = 0.6475

let leak_per_bit_mw = 1.953e-5

let characterize ?(node_nm = 22) { entries; bits_per_entry; ways } =
  if entries <= 0 || bits_per_entry <= 0 || ways <= 0 then
    invalid_arg "Cacti.characterize: non-positive parameter";
  let bits = float_of_int (entries * bits_per_entry) in
  let bits_read = float_of_int (ways * bits_per_entry) in
  let scale = float_of_int node_nm /. 22.0 in
  {
    area_mm2 = ((bits *. cell_area_mm2_per_bit) +. area_fixed_mm2 *. (bits /. 6784.0)) *. scale *. scale;
    access_ps = (access_base_ps +. (access_sqrt_coeff *. sqrt bits)) *. scale;
    dyn_energy_pj = (energy_base_pj +. (energy_per_bit_read_pj *. bits_read)) *. scale;
    leak_power_mw = (leak_base_mw +. (leak_per_bit_mw *. bits)) *. scale;
  }
