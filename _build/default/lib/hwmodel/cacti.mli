(** Analytical SRAM characterization (the CACTI 7 substitute, Table 9.1).

    A compact area/time/energy/leakage model for small tagged SRAM
    structures, calibrated at the 22 nm node against the CACTI 7 numbers the
    paper reports for Perspective's 128-entry view caches.  The functional
    forms (area linear in bits, access time in sqrt(bits), energy in bits
    read per access, leakage linear in bits) are the standard first-order
    CACTI scaling laws, so nearby configurations extrapolate sensibly for
    the sensitivity study. *)

type sram_config = {
  entries : int;
  bits_per_entry : int;  (** tag + payload *)
  ways : int;
}

val dsv_cache_config : sram_config
(** 128 entries, 4 ways, 53 bits/entry (Table 7.1). *)

val isv_cache_config : sram_config
(** 128 entries, 4 ways, 57 bits/entry. *)

type characterization = {
  area_mm2 : float;
  access_ps : float;
  dyn_energy_pj : float;
  leak_power_mw : float;
}

val characterize : ?node_nm:int -> sram_config -> characterization
(** Only 22 nm is calibrated; other nodes scale area by (nm/22)^2 and energy
    linearly, a coarse but standard technology projection. *)
