lib/isa/asm.ml: Array Hashtbl Insn Layout List
