lib/isa/iss.ml: Array Insn Layout List Mem Printf Program
