lib/isa/iss.mli: Insn Mem Program
