lib/isa/layout.ml:
