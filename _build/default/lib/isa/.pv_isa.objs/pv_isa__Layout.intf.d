lib/isa/layout.mli:
