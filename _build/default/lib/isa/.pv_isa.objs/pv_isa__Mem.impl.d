lib/isa/mem.ml: Hashtbl
