lib/isa/mem.mli:
