lib/isa/program.ml: Array Insn Layout Printf
