lib/isa/program.mli: Insn Layout
