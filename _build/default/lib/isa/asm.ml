type label = int

type item =
  | Fixed of Insn.t
  | Br of Insn.cond * Insn.reg * Insn.reg * label
  | Jmp of label

type t = {
  mutable items : item list; (* reversed *)
  mutable count : int;
  mutable next_label : int;
  placed : (label, int) Hashtbl.t;
}

let create () = { items = []; count = 0; next_label = 0; placed = Hashtbl.create 8 }

let fresh_label t =
  let l = t.next_label in
  t.next_label <- l + 1;
  l

let place t l =
  if Hashtbl.mem t.placed l then invalid_arg "Asm.place: label placed twice";
  Hashtbl.replace t.placed l t.count

let push t item =
  t.items <- item :: t.items;
  t.count <- t.count + 1

let emit t i = push t (Fixed i)

let here t = t.count

let nop t = emit t Insn.Nop
let li t rd v = emit t (Insn.Limm (rd, v))
let alu t op rd r1 r2 = emit t (Insn.Alu (op, rd, r1, r2))
let alui t op rd r1 v = emit t (Insn.Alui (op, rd, r1, v))
let load t rd ra off = emit t (Insn.Load (rd, ra, off))
let store t ra rv off = emit t (Insn.Store (ra, rv, off))
let branch t c r1 r2 l = push t (Br (c, r1, r2, l))
let jump t l = push t (Jmp l)
let call t fid = emit t (Insn.Call fid)
let icall t r = emit t (Insn.Icall r)
let ret t = emit t Insn.Ret
let fence t = emit t Insn.Fence
let flush t ra off = emit t (Insn.Flush (ra, off))
let syscall t = emit t Insn.Syscall
let sysret t = emit t Insn.Sysret
let halt t = emit t Insn.Halt

let finish t =
  if t.count > Layout.max_insns_per_func then
    invalid_arg "Asm.finish: body exceeds one code page";
  let resolve l =
    match Hashtbl.find_opt t.placed l with
    | Some pos -> pos
    | None -> invalid_arg "Asm.finish: unplaced label"
  in
  let arr = Array.make t.count Insn.Nop in
  List.iteri
    (fun rev_i item ->
      let i = t.count - 1 - rev_i in
      arr.(i) <-
        (match item with
        | Fixed insn -> insn
        | Br (c, r1, r2, l) -> Insn.Branch (c, r1, r2, resolve l)
        | Jmp l -> Insn.Jump (resolve l)))
    t.items;
  arr
