(** Tiny assembler with forward labels.

    Used by the kernel code generator, the workloads and the attack gadget
    builders to produce function bodies without hand-computing branch
    targets. *)

type label

type t

val create : unit -> t

val fresh_label : t -> label
(** A new, not-yet-placed label. *)

val place : t -> label -> unit
(** Bind a label to the current position.  A label may be placed only once. *)

val emit : t -> Insn.t -> unit

val here : t -> int
(** Index the next emitted instruction will have. *)

(* Convenience emitters. *)
val nop : t -> unit
val li : t -> Insn.reg -> int -> unit
val alu : t -> Insn.binop -> Insn.reg -> Insn.reg -> Insn.reg -> unit
val alui : t -> Insn.binop -> Insn.reg -> Insn.reg -> int -> unit
val load : t -> Insn.reg -> Insn.reg -> int -> unit
val store : t -> Insn.reg -> Insn.reg -> int -> unit
val branch : t -> Insn.cond -> Insn.reg -> Insn.reg -> label -> unit
val jump : t -> label -> unit
val call : t -> int -> unit
val icall : t -> Insn.reg -> unit
val ret : t -> unit
val fence : t -> unit
val flush : t -> Insn.reg -> int -> unit
val syscall : t -> unit
val sysret : t -> unit
val halt : t -> unit

val finish : t -> Insn.t array
(** Resolve all labels.  Raises [Invalid_argument] if a used label was never
    placed or the body exceeds one page. *)
