type reg = int

let num_regs = 16

type binop = Add | Sub | And | Or | Xor | Shl | Shr | Mul

type cond = Eq | Ne | Lt | Ge

type t =
  | Nop
  | Limm of reg * int
  | Alu of binop * reg * reg * reg
  | Alui of binop * reg * reg * int
  | Load of reg * reg * int
  | Store of reg * reg * int
  | Branch of cond * reg * reg * int
  | Jump of int
  | Call of int
  | Icall of reg
  | Ret
  | Fence
  | Flush of reg * int
  | Syscall
  | Sysret
  | Halt

let is_load = function Load _ -> true | _ -> false

let is_store = function Store _ -> true | _ -> false

let is_branch = function Branch _ -> true | _ -> false

let is_control = function
  | Branch _ | Jump _ | Call _ | Icall _ | Ret -> true
  | Nop | Limm _ | Alu _ | Alui _ | Load _ | Store _ | Fence | Flush _ | Syscall
  | Sysret | Halt ->
    false

let is_serializing = function
  | Syscall | Sysret | Halt | Fence -> true
  | Nop | Limm _ | Alu _ | Alui _ | Load _ | Store _ | Branch _ | Jump _
  | Call _ | Icall _ | Ret | Flush _ ->
    false

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 62)
  | Shr -> a lsr (b land 62)
  | Mul -> a * b

let eval_cond c a b =
  match c with Eq -> a = b | Ne -> a <> b | Lt -> a < b | Ge -> a >= b

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Mul -> "mul"

let cond_name = function Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Ge -> "ge"

let pp ppf = function
  | Nop -> Format.fprintf ppf "nop"
  | Limm (rd, v) -> Format.fprintf ppf "limm r%d, %d" rd v
  | Alu (op, rd, r1, r2) ->
    Format.fprintf ppf "%s r%d, r%d, r%d" (binop_name op) rd r1 r2
  | Alui (op, rd, r1, v) ->
    Format.fprintf ppf "%si r%d, r%d, %d" (binop_name op) rd r1 v
  | Load (rd, ra, off) -> Format.fprintf ppf "load r%d, [r%d+%d]" rd ra off
  | Store (ra, rv, off) -> Format.fprintf ppf "store [r%d+%d], r%d" ra off rv
  | Branch (c, r1, r2, tgt) ->
    Format.fprintf ppf "b%s r%d, r%d, @%d" (cond_name c) r1 r2 tgt
  | Jump tgt -> Format.fprintf ppf "jmp @%d" tgt
  | Call fid -> Format.fprintf ppf "call f%d" fid
  | Icall r -> Format.fprintf ppf "icall r%d" r
  | Ret -> Format.fprintf ppf "ret"
  | Fence -> Format.fprintf ppf "fence"
  | Flush (ra, off) -> Format.fprintf ppf "flush [r%d+%d]" ra off
  | Syscall -> Format.fprintf ppf "syscall"
  | Sysret -> Format.fprintf ppf "sysret"
  | Halt -> Format.fprintf ppf "halt"

let to_string i = Format.asprintf "%a" pp i
