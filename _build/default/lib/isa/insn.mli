(** The simulator's compact RISC-like instruction set.

    The synthetic kernel, the userspace workloads and the attack gadgets are
    all expressed in this ISA and executed either by the reference in-order
    interpreter ({!Iss}) or by the speculative out-of-order pipeline
    ({!Pv_uarch.Pipeline}).  Instructions are 4 bytes wide for address
    arithmetic; there is no binary encoding. *)

type reg = int
(** Register index, [0..num_regs-1]. *)

val num_regs : int
(** Number of architectural registers (16).  By convention [r0..r5] carry
    system-call number and arguments, [r15] is the return-value register. *)

type binop = Add | Sub | And | Or | Xor | Shl | Shr | Mul

type cond = Eq | Ne | Lt | Ge

type t =
  | Nop
  | Limm of reg * int  (** [rd <- imm] *)
  | Alu of binop * reg * reg * reg  (** [rd <- rs1 op rs2] *)
  | Alui of binop * reg * reg * int  (** [rd <- rs1 op imm] *)
  | Load of reg * reg * int  (** [rd <- mem\[rs1 + imm\]]; the transmitter class *)
  | Store of reg * reg * int  (** [mem\[rs1 + imm\] <- rs2] *)
  | Branch of cond * reg * reg * int  (** conditional branch to an instruction index in the same function *)
  | Jump of int  (** unconditional jump to an instruction index *)
  | Call of int  (** direct call to a function id *)
  | Icall of reg  (** indirect call through a register holding a function entry VA *)
  | Ret
  | Fence  (** lfence-like: younger instructions wait until it retires *)
  | Flush of reg * int  (** clflush of the line containing [rs1 + imm] *)
  | Syscall  (** trap to kernel; serializing *)
  | Sysret  (** return from kernel to user; serializing *)
  | Halt

val is_load : t -> bool
val is_store : t -> bool
val is_branch : t -> bool
(** [is_branch] covers only conditional branches. *)

val is_control : t -> bool
(** Any instruction that redirects fetch. *)

val is_serializing : t -> bool
(** [Syscall], [Sysret], [Halt] and [Fence]. *)

val eval_binop : binop -> int -> int -> int
val eval_cond : cond -> int -> int -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
