type trap_action =
  | Redirect of int * (Insn.reg * int) list
  | Skip
  | Stop

type hooks = {
  on_syscall : int array -> trap_action;
  on_sysret : int array -> trap_action;
  on_insn : (int -> int -> Insn.t -> unit) option;
}

let null_hooks =
  { on_syscall = (fun _ -> Skip); on_sysret = (fun _ -> Skip); on_insn = None }

type outcome = Halted | Out_of_fuel | Fault of string

type result = { outcome : outcome; steps : int; regs : int array }

let max_call_depth = 1024

let run ?(fuel = 1_000_000) ?regs ?(hooks = null_hooks) ~asid ~mem prog ~start =
  let regs = match regs with Some r -> Array.copy r | None -> Array.make Insn.num_regs 0 in
  let saved_user_regs = ref None in
  let stack = ref [] in
  let depth = ref 0 in
  let fid = ref start in
  let idx = ref 0 in
  let steps = ref 0 in
  let finish outcome = { outcome; steps = !steps; regs } in
  let exception Done of result in
  let fault msg = raise (Done (finish (Fault msg))) in
  let trap action =
    match action with
    | Skip -> incr idx
    | Stop -> raise (Done (finish Halted))
    | Redirect (f, assigns) ->
      saved_user_regs := Some (Array.copy regs);
      List.iter (fun (r, v) -> regs.(r) <- v) assigns;
      (* The kernel entry returns to the instruction after the trap. *)
      if !depth >= max_call_depth then fault "call stack overflow";
      stack := (!fid, !idx + 1) :: !stack;
      incr depth;
      fid := f;
      idx := 0
  in
  try
    while !steps < fuel do
      (match Program.fetch prog !fid !idx with
      | None -> fault (Printf.sprintf "fell off function f%d at %d" !fid !idx)
      | Some insn ->
        (match hooks.on_insn with Some f -> f !fid !idx insn | None -> ());
        incr steps;
        (match insn with
        | Insn.Nop | Insn.Fence | Insn.Flush _ -> incr idx
        | Insn.Limm (rd, v) ->
          regs.(rd) <- v;
          incr idx
        | Insn.Alu (op, rd, r1, r2) ->
          regs.(rd) <- Insn.eval_binop op regs.(r1) regs.(r2);
          incr idx
        | Insn.Alui (op, rd, r1, v) ->
          regs.(rd) <- Insn.eval_binop op regs.(r1) v;
          incr idx
        | Insn.Load (rd, ra, off) ->
          regs.(rd) <- Mem.load mem (Layout.phys_key ~asid (regs.(ra) + off));
          incr idx
        | Insn.Store (ra, rv, off) ->
          Mem.store mem (Layout.phys_key ~asid (regs.(ra) + off)) regs.(rv);
          incr idx
        | Insn.Branch (c, r1, r2, tgt) ->
          if Insn.eval_cond c regs.(r1) regs.(r2) then idx := tgt else incr idx
        | Insn.Jump tgt -> idx := tgt
        | Insn.Call callee ->
          if !depth >= max_call_depth then fault "call stack overflow";
          stack := (!fid, !idx + 1) :: !stack;
          incr depth;
          fid := callee;
          idx := 0
        | Insn.Icall r -> (
          match Layout.decode_code_va regs.(r) with
          | None -> fault (Printf.sprintf "icall to non-code VA %#x" regs.(r))
          | Some (space, f, i) ->
            let nfuncs = Program.length prog in
            if f < 0 || f >= nfuncs || (Program.func prog f).Program.space <> space then
              fault (Printf.sprintf "icall to unmapped function f%d" f)
            else begin
              if !depth >= max_call_depth then fault "call stack overflow";
              stack := (!fid, !idx + 1) :: !stack;
              incr depth;
              fid := f;
              idx := i
            end)
        | Insn.Ret -> (
          match !stack with
          | [] -> fault "ret with empty stack"
          | (rf, ri) :: rest ->
            stack := rest;
            decr depth;
            fid := rf;
            idx := ri)
        | Insn.Syscall -> trap (hooks.on_syscall regs)
        | Insn.Sysret -> (
          (match !saved_user_regs with
          | Some saved ->
            Array.blit saved 0 regs 0 (Array.length saved);
            saved_user_regs := None
          | None -> ());
          match hooks.on_sysret regs with
          | Skip | Redirect _ -> (
            (* Default Sysret semantics: return like Ret (the syscall pushed a
               frame); Redirect is not meaningful here and treated as return. *)
            match !stack with
            | [] -> fault "sysret with empty stack"
            | (rf, ri) :: rest ->
              stack := rest;
              decr depth;
              fid := rf;
              idx := ri)
          | Stop -> raise (Done (finish Halted)))
        | Insn.Halt -> raise (Done (finish Halted))))
    done;
    finish Out_of_fuel
  with Done r -> r
