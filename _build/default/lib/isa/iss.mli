(** Reference in-order instruction-set simulator.

    Executes programs with plain architectural semantics: no speculation, no
    caches, no timing.  It serves two purposes: (i) it is the correctness
    oracle for the out-of-order pipeline (both must compute identical
    architectural results on any program), and (ii) it provides fast
    functional execution for trace collection (dynamic ISVs). *)

type trap_action =
  | Redirect of int * (Insn.reg * int) list
      (** Jump to function id, after assigning the given registers. *)
  | Skip  (** Treat the trap as a no-op and fall through. *)
  | Stop  (** Terminate execution. *)

type hooks = {
  on_syscall : int array -> trap_action;
      (** Receives the architectural register file (mutable; assignments via
          [Redirect] are applied after the hook returns). *)
  on_sysret : int array -> trap_action;
  on_insn : (int -> int -> Insn.t -> unit) option;
      (** Optional per-instruction observer [(fid, idx, insn)], called before
          the instruction executes; used for tracing. *)
}

val null_hooks : hooks
(** Syscall/Sysret behave as no-ops; no tracing. *)

type outcome =
  | Halted
  | Out_of_fuel
  | Fault of string  (** e.g. return with empty stack, indirect call to a non-code VA *)

type result = {
  outcome : outcome;
  steps : int;
  regs : int array;  (** final architectural register file *)
}

val run :
  ?fuel:int ->
  ?regs:int array ->
  ?hooks:hooks ->
  asid:int ->
  mem:Mem.t ->
  Program.t ->
  start:int ->
  result
(** [run ~asid ~mem prog ~start] executes from instruction 0 of function
    [start] until [Halt], a fault, or [fuel] instructions (default 1_000_000).
    Registers start at 0 unless [regs] is given (it is copied). *)
