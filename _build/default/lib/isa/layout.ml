type space = Kernel | User

let insn_bytes = 4
let page_bytes = 4096
let line_bytes = 64
let max_insns_per_func = page_bytes / insn_bytes

(* User half below 0x4000_0000_0000, kernel half above. *)
let user_code_base = 0x0000_1000_0000
let user_data_base = 0x0000_8000_0000
let kernel_half_base = 0x4000_0000_0000
let kernel_code_base = 0x4000_0000_0000
let isv_page_offset = 0x0800_0000_0000
let direct_map_base = 0x5000_0000_0000
let kernel_global_base = 0x5800_0000_0000

let func_base space fid =
  match space with
  | Kernel -> kernel_code_base + (fid * page_bytes)
  | User -> user_code_base + (fid * page_bytes)

let insn_va space fid idx = func_base space fid + (idx * insn_bytes)

(* Code regions are bounded by the largest function count we ever synthesize;
   64K functions x 4 KiB = 256 MiB per space. *)
let code_region_bytes = 0x1000_0000

let decode_code_va va =
  let in_region base = va >= base && va < base + code_region_bytes in
  let decode base space =
    let off = va - base in
    Some (space, off / page_bytes, off mod page_bytes / insn_bytes)
  in
  if in_region kernel_code_base then decode kernel_code_base Kernel
  else if in_region user_code_base then decode user_code_base User
  else None

let space_of_va va = if va >= kernel_half_base then Kernel else User

let direct_map_va pa = direct_map_base + pa

let pa_of_direct_map va =
  if va >= direct_map_base && va < kernel_global_base then
    Some (va - direct_map_base)
  else None

let isv_page_va va = (va land lnot (page_bytes - 1)) + isv_page_offset

let phys_key ~asid va =
  match space_of_va va with
  | Kernel -> va
  | User -> va lxor (asid lsl 48)

let line_of addr = addr / line_bytes
let page_of addr = addr / page_bytes
