(** Virtual-address layout of the simulated machine.

    Every function occupies one 4 KiB code page (at most 1024 four-byte
    instructions), so function ids map to page-aligned bases.  The kernel half
    additionally holds the direct map (all physical frames) and the ISV pages,
    which mirror kernel code pages at a fixed offset as in the paper's
    Figure 6.1(a). *)

type space = Kernel | User

val insn_bytes : int
(** 4. *)

val page_bytes : int
(** 4096. *)

val line_bytes : int
(** Cache-line size, 64. *)

val max_insns_per_func : int
(** 1024. *)

val user_code_base : int
val kernel_code_base : int
val direct_map_base : int
val isv_page_offset : int
(** Fixed VA offset from a kernel code page to its ISV page. *)

val user_data_base : int
(** Base of per-process user heap/stack VAs. *)

val kernel_global_base : int
(** VA region for kernel global variables (outside the direct map): the
    source of "unknown" allocations. *)

val func_base : space -> int -> int
(** [func_base space fid] is the VA of instruction 0 of function [fid]. *)

val insn_va : space -> int -> int -> int
(** [insn_va space fid idx]. *)

val decode_code_va : int -> (space * int * int) option
(** Inverse of [insn_va]: [Some (space, fid, idx)] for a code VA. *)

val space_of_va : int -> space
(** [Kernel] for any VA at or above [kernel_code_base]'s half, [User]
    otherwise. *)

val direct_map_va : int -> int
(** VA of physical address [pa] in the direct map. *)

val pa_of_direct_map : int -> int option
(** Inverse of [direct_map_va] when the VA lies in the direct map. *)

val isv_page_va : int -> int
(** ISV page VA for the kernel code page containing the given code VA. *)

val phys_key : asid:int -> int -> int
(** Physical tag used by caches and backing memory.  Kernel-half VAs are
    shared across address spaces; user-half VAs are disambiguated by [asid],
    modelling per-process physical pages behind identical virtual layouts. *)

val line_of : int -> int
(** Cache-line index of an address ([addr / 64]). *)

val page_of : int -> int
(** Page index of an address ([addr / 4096]). *)
