type t = (int, int) Hashtbl.t

let create () = Hashtbl.create 4096

let word key = key lsr 3

let load t key = match Hashtbl.find_opt t (word key) with Some v -> v | None -> 0

let store t key v = Hashtbl.replace t (word key) v

let clear t = Hashtbl.reset t

let size t = Hashtbl.length t
