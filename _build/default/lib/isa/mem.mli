(** Sparse word-granular backing store for the simulated machine.

    Addresses are byte addresses; storage is at 8-byte word granularity
    (loads and stores ignore the low three address bits).  Keys are the
    physical keys produced by {!Layout.phys_key}, so one [Mem.t] backs all
    address spaces of a machine. *)

type t

val create : unit -> t
val load : t -> int -> int
(** [load t key] reads the word at [key]; uninitialized memory reads 0. *)

val store : t -> int -> int -> unit
val clear : t -> unit
val size : t -> int
(** Number of distinct words ever written. *)
