type func = {
  fid : int;
  name : string;
  space : Layout.space;
  body : Insn.t array;
}

type t = { funcs : func array }

let check_func nfuncs f =
  let n = Array.length f.body in
  if n > Layout.max_insns_per_func then
    Error (Printf.sprintf "function %s: %d instructions exceed page" f.name n)
  else
    let bad = ref None in
    let target_ok t = t >= 0 && t < n in
    Array.iteri
      (fun i insn ->
        if !bad = None then
          match insn with
          | Insn.Branch (_, _, _, t) | Insn.Jump t ->
            if not (target_ok t) then
              bad := Some (Printf.sprintf "%s@%d: target %d out of range" f.name i t)
          | Insn.Call fid ->
            if fid < 0 || fid >= nfuncs then
              bad := Some (Printf.sprintf "%s@%d: callee f%d out of range" f.name i fid)
          | Insn.Nop | Insn.Limm _ | Insn.Alu _ | Insn.Alui _ | Insn.Load _
          | Insn.Store _ | Insn.Icall _ | Insn.Ret | Insn.Fence | Insn.Flush _
          | Insn.Syscall | Insn.Sysret | Insn.Halt ->
            ())
      f.body;
    match !bad with None -> Ok () | Some msg -> Error msg

let validate t =
  let n = Array.length t.funcs in
  let rec go i =
    if i = n then Ok ()
    else if t.funcs.(i).fid <> i then
      Error (Printf.sprintf "function at index %d has fid %d" i t.funcs.(i).fid)
    else
      match check_func n t.funcs.(i) with Ok () -> go (i + 1) | Error e -> Error e
  in
  go 0

let of_funcs fl =
  let t = { funcs = Array.of_list fl } in
  match validate t with Ok () -> t | Error e -> invalid_arg ("Program.of_funcs: " ^ e)

let funcs t = t.funcs
let length t = Array.length t.funcs
let func t fid = t.funcs.(fid)

let fetch t fid idx =
  if fid < 0 || fid >= Array.length t.funcs then None
  else
    let body = t.funcs.(fid).body in
    if idx < 0 || idx >= Array.length body then None else Some body.(idx)

let entry_va t fid = Layout.func_base t.funcs.(fid).space fid

let find_by_name t name = Array.find_opt (fun f -> f.name = name) t.funcs
