(** Programs: an array of functions, each one page of instructions.

    A machine runs exactly one program containing both the synthetic kernel's
    executable functions and the userspace code of every process; the function
    id is the index into {!funcs} and determines the code VA via {!Layout}. *)

type func = {
  fid : int;
  name : string;
  space : Layout.space;
  body : Insn.t array;
}

type t

val of_funcs : func list -> t
(** Builds a program.  Raises [Invalid_argument] if ids are not dense from 0,
    a body exceeds {!Layout.max_insns_per_func}, or a branch/jump/call target
    is out of range. *)

val funcs : t -> func array
val length : t -> int
val func : t -> int -> func
val fetch : t -> int -> int -> Insn.t option
(** [fetch t fid idx]; [None] past the end of the body. *)

val entry_va : t -> int -> int
(** VA of instruction 0 of a function. *)

val find_by_name : t -> string -> func option

val validate : t -> (unit, string) result
(** Re-checks all structural invariants (used by tests). *)
