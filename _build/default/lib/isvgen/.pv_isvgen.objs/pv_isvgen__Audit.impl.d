lib/isvgen/audit.ml: List Perspective
