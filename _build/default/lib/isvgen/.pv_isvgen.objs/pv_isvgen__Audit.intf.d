lib/isvgen/audit.mli: Perspective
