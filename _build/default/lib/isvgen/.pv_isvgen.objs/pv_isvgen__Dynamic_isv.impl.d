lib/isvgen/dynamic_isv.ml: List Perspective Pv_kernel
