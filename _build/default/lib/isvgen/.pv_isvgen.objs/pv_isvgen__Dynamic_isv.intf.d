lib/isvgen/dynamic_isv.mli: Perspective Pv_kernel Pv_util
