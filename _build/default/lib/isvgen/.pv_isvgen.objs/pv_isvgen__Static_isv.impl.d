lib/isvgen/static_isv.ml: List Perspective Pv_kernel
