lib/isvgen/static_isv.mli: Perspective Pv_kernel Pv_util
