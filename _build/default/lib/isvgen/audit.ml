module Isv = Perspective.Isv

let harden isv ~gadget_nodes =
  let hardened = Isv.of_nodes Isv.Plus (Isv.nodes isv) in
  List.iter (fun node -> Isv.exclude hardened node) gadget_nodes;
  hardened

let blocked_gadgets isv ~gadget_nodes =
  List.length (List.filter (fun node -> not (Isv.member isv node)) gadget_nodes)
