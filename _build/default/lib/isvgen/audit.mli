(** Audit-hardened ISVs — ISV++ (paper §5.4, §6.1 "Enhancing ISVs with
    Auditing"): every kernel function the gadget scanner flags is excluded
    from the view, so all identified gadgets are blocked from speculative
    execution. *)

val harden :
  Perspective.Isv.t -> gadget_nodes:int list -> Perspective.Isv.t
(** A new [ISV++] view: the input view minus the flagged functions. *)

val blocked_gadgets :
  Perspective.Isv.t -> gadget_nodes:int list -> int
(** How many of the given gadget functions the view blocks (outside it). *)
