module Kernel = Pv_kernel.Kernel
module Trace = Pv_kernel.Trace

let profile kernel proc ~workload ~repetitions =
  for _ = 1 to repetitions do
    List.iter
      (fun (nr, args) -> ignore (Kernel.exec_syscall kernel proc ~nr ~args))
      workload
  done

let node_set kernel ~ctx = Trace.nodes (Kernel.trace kernel) ~ctx

let generate kernel ~ctx =
  Perspective.Isv.of_nodes Perspective.Isv.Dynamic (node_set kernel ~ctx)
