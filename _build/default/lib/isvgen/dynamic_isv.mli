(** Dynamic ISV generation from kernel traces (paper §5.3 "Dynamic ISVs").

    The traced function set of a context becomes its ISV: smaller than the
    static view (unused code paths drop out) yet able to include functions
    reachable only through indirect calls, which static analysis must
    exclude. *)

val profile :
  Pv_kernel.Kernel.t ->
  Pv_kernel.Process.t ->
  workload:(int * int array) list ->
  repetitions:int ->
  unit
(** Exercise the process with a syscall workload ((nr, args) list), feeding
    the kernel's tracing subsystem. *)

val node_set : Pv_kernel.Kernel.t -> ctx:int -> Pv_util.Bitset.t
(** Traced kernel functions of a context. *)

val generate : Pv_kernel.Kernel.t -> ctx:int -> Perspective.Isv.t
