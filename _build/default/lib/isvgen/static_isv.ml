module Callgraph = Pv_kernel.Callgraph

let node_set graph ~syscalls =
  let entries = List.map (Callgraph.entry_of_syscall graph) syscalls in
  Callgraph.static_reachable graph entries

let generate graph ~syscalls =
  Perspective.Isv.of_nodes Perspective.Isv.Static (node_set graph ~syscalls)
