(** Static ISV generation (paper §5.3 "Static ISVs", §6.1).

    The radare2 substitute: given the set of system calls an application
    binary can make, compute the kernel functions reachable over direct call
    edges.  Functions reachable only through indirect jumps cannot be
    resolved statically and are excluded — exactly the imprecision the paper
    attributes to static ISVs. *)

val node_set :
  Pv_kernel.Callgraph.t -> syscalls:int list -> Pv_util.Bitset.t
(** Entry nodes of [syscalls] plus their direct-edge closure. *)

val generate :
  Pv_kernel.Callgraph.t -> syscalls:int list -> Perspective.Isv.t
(** [node_set] wrapped as an [ISV-S] view. *)
