lib/kernel/callgraph.ml: Array Hashtbl List Printf Pv_util Queue Sysno
