lib/kernel/callgraph.mli: Pv_util
