lib/kernel/cgroup.ml: List
