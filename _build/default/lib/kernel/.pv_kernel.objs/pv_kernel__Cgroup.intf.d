lib/kernel/cgroup.mli:
