lib/kernel/codegen.ml: List Printf Pv_isa Pv_util
