lib/kernel/codegen.mli: Pv_isa Pv_util
