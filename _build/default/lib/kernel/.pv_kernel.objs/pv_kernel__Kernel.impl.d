lib/kernel/kernel.ml: Array Callgraph Cgroup Hashtbl List Physmem Process Pv_isa Pv_util Slab Sysno Trace
