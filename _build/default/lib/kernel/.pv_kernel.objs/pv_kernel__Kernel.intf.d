lib/kernel/kernel.mli: Callgraph Cgroup Physmem Process Slab Trace
