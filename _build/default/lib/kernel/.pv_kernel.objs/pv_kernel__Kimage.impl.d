lib/kernel/kimage.ml: Array Callgraph Codegen Hashtbl List Pv_isa Pv_util Queue Sysno
