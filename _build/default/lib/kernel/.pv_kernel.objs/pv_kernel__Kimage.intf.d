lib/kernel/kimage.mli: Callgraph Pv_isa
