lib/kernel/physmem.ml: Array Format Hashtbl Printf Pv_isa
