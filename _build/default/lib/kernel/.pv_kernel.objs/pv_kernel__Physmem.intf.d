lib/kernel/physmem.mli: Format
