lib/kernel/process.ml: Array Hashtbl List Pv_isa
