lib/kernel/process.mli:
