lib/kernel/slab.ml: Array Hashtbl List Physmem Pv_isa Seq
