lib/kernel/slab.mli: Physmem
