lib/kernel/sysno.ml: Array Printf
