lib/kernel/sysno.mli:
