lib/kernel/trace.ml: Array Callgraph Hashtbl List Pv_util Sysno
