lib/kernel/trace.mli: Callgraph Pv_util
