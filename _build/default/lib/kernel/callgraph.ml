module Rng = Pv_util.Rng
module Bitset = Pv_util.Bitset

type config = {
  nodes : int;
  shared_core : int;
  indirect_pool : int;
  core_fanout : int;
  entry_core_calls : int;
  cross_call_prob : float;
  icall_site_prob : float;
  icall_targets : int;
  cold_prob : float;
}

let default_config =
  {
    nodes = 28_000;
    shared_core = 1_200;
    indirect_pool = 2_600;
    core_fanout = 3;
    entry_core_calls = 3;
    cross_call_prob = 0.30;
    icall_site_prob = 0.06;
    icall_targets = 6;
    cold_prob = 0.15;
  }

type t = {
  cfg : config;
  names : string array;
  direct : int list array;
  indirect : int list array;
  entries : int array; (* syscall nr -> node *)
  cold : bool array;
  depths : int array;
  ind_only : bool array;
}

let nnodes t = Array.length t.names
let node_name t n = t.names.(n)
let entry_of_syscall t nr = t.entries.(nr)

let syscall_of_entry t node =
  let rec go i =
    if i = Array.length t.entries then None
    else if t.entries.(i) = node then Some i
    else go (i + 1)
  in
  go 0

let direct_callees t n = t.direct.(n)
let indirect_targets t n = t.indirect.(n)
let is_cold t n = t.cold.(n)
let depth t n = t.depths.(n)
let indirect_only t n = t.ind_only.(n)

(* Region boundaries inside the node id space:
   [0, nsys)                          syscall entries
   [nsys, nsys+core)                  shared core (layered)
   [nsys+core, nsys+core+ipool)       indirect pool
   [rest]                             per-syscall private subtrees *)

let synthesize ?(config = default_config) seed =
  let cfg = config in
  let rng = Rng.create seed in
  let nsys = Sysno.count in
  let n = cfg.nodes in
  if n < nsys + cfg.shared_core + cfg.indirect_pool + nsys then
    invalid_arg "Callgraph.synthesize: too few nodes";
  let core_lo = nsys in
  let core_hi = nsys + cfg.shared_core in
  let ipool_lo = core_hi in
  let ipool_hi = core_hi + cfg.indirect_pool in
  let priv_lo = ipool_hi in
  let direct = Array.make n [] in
  let indirect = Array.make n [] in
  let names =
    Array.init n (fun i ->
        if i < nsys then "sys_" ^ Sysno.name i
        else if i < core_hi then Printf.sprintf "core_%04d" (i - core_lo)
        else if i < ipool_hi then Printf.sprintf "ops_%04d" (i - ipool_lo)
        else Printf.sprintf "helper_%05d" (i - priv_lo))
  in
  let add_edge src dst = if src <> dst then direct.(src) <- dst :: direct.(src) in
  (* Shared core: 4 layers, calls flow to strictly deeper layers so the core
     is acyclic and entries reach a cone rather than the whole core. *)
  let layers = 4 in
  let layer_of i = (i - core_lo) * layers / cfg.shared_core in
  for i = core_lo to core_hi - 1 do
    let l = layer_of i in
    if l < layers - 1 then begin
      let fanout = Rng.int rng (cfg.core_fanout + 1) in
      for _ = 1 to fanout do
        (* A callee in a strictly deeper layer. *)
        let dl = l + 1 + Rng.int rng (layers - l - 1) in
        let lo = core_lo + (dl * cfg.shared_core / layers) in
        let hi = core_lo + (((dl + 1) * cfg.shared_core / layers) - 1) in
        if hi >= lo then add_edge i (Rng.in_range rng lo hi)
      done
    end
  done;
  (* Indirect pool nodes may call a couple of deep-core helpers. *)
  for i = ipool_lo to ipool_hi - 1 do
    let calls = Rng.int rng 3 in
    for _ = 1 to calls do
      let lo = core_lo + (cfg.shared_core / 2) in
      add_edge i (Rng.in_range rng lo (core_hi - 1))
    done
  done;
  (* Per-syscall private subtrees over an equal partition of the remaining
     nodes; each private node's parent is an earlier node of the same chunk
     (or the entry), giving a random recursive tree. *)
  let priv_total = n - priv_lo in
  let chunk = priv_total / nsys in
  for s = 0 to nsys - 1 do
    let lo = priv_lo + (s * chunk) in
    let hi = if s = nsys - 1 then n - 1 else lo + chunk - 1 in
    for i = lo to hi do
      let parent = if i = lo || Rng.chance rng 0.15 then s else Rng.in_range rng lo (i - 1) in
      add_edge parent i
    done;
    (* The entry also calls a few core roots (layer 0). *)
    let core_layer0_hi = core_lo + (cfg.shared_core / layers) - 1 in
    for _ = 1 to cfg.entry_core_calls do
      add_edge s (Rng.in_range rng core_lo core_layer0_hi)
    done
  done;
  (* Cross calls from private nodes into the core, and indirect dispatch
     sites on private and core nodes targeting the indirect pool. *)
  for i = core_lo to n - 1 do
    let private_node = i >= priv_lo in
    if private_node && Rng.chance rng cfg.cross_call_prob then
      add_edge i (Rng.in_range rng core_lo (core_hi - 1));
    if (private_node || (i >= core_lo && i < core_hi)) && Rng.chance rng cfg.icall_site_prob
    then begin
      let k = 2 + Rng.int rng (max 1 (cfg.icall_targets - 1)) in
      let targets = ref [] in
      for _ = 1 to k do
        targets := Rng.in_range rng ipool_lo (ipool_hi - 1) :: !targets
      done;
      indirect.(i) <- List.sort_uniq compare !targets
    end
  done;
  (* Cold labelling: entries are always hot. *)
  let cold = Array.init n (fun i -> i >= nsys && Rng.chance rng cfg.cold_prob) in
  (* Depths: BFS over direct edges from all entries. *)
  let depths = Array.make n max_int in
  let q = Queue.create () in
  for s = 0 to nsys - 1 do
    depths.(s) <- 0;
    Queue.add s q
  done;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if depths.(v) = max_int then begin
          depths.(v) <- depths.(u) + 1;
          Queue.add v q
        end)
      direct.(u)
  done;
  let ind_only = Array.init n (fun i -> depths.(i) = max_int) in
  { cfg; names; direct; indirect; entries = Array.init nsys (fun s -> s); cold; depths; ind_only }

let closure t ~follow_indirect entries =
  let seen = Bitset.create (nnodes t) in
  let q = Queue.create () in
  let push v =
    if not (Bitset.mem seen v) then begin
      Bitset.set seen v;
      Queue.add v q
    end
  in
  List.iter push entries;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter push t.direct.(u);
    if follow_indirect then List.iter push t.indirect.(u)
  done;
  seen

let static_reachable t entries = closure t ~follow_indirect:false entries

let reachable_with_indirect t entries = closure t ~follow_indirect:true entries

let sample_trace t rng ~syscall ~installed =
  let entry = entry_of_syscall t syscall in
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let rec walk u =
    if not (Hashtbl.mem seen u) then begin
      Hashtbl.replace seen u ();
      acc := u :: !acc;
      List.iter
        (fun v ->
          (* Cold paths are rarely exercised by real workloads. *)
          let p = if t.cold.(v) then 0.002 else 0.92 in
          if Rng.chance rng p then walk v)
        t.direct.(u);
      match installed u with
      | Some target when List.mem target t.indirect.(u) -> walk target
      | Some _ | None -> ()
    end
  in
  walk entry;
  List.rev !acc

let region t node =
  let nsys = Array.length t.entries in
  if node < nsys then `Entry
  else if node < nsys + t.cfg.shared_core then `Core
  else if node < nsys + t.cfg.shared_core + t.cfg.indirect_pool then `Ipool
  else `Private

let indirect_pool_bounds t =
  let nsys = Array.length t.entries in
  let lo = nsys + t.cfg.shared_core in
  (lo, lo + t.cfg.indirect_pool)

let default_installed t ~app_seed site =
  match t.indirect.(site) with
  | [] -> None
  | targets ->
    (* Deterministic per-app pick: which concrete ops table the app's file
       descriptors use at this dispatch site. *)
    let h = Rng.create (app_seed lxor (site * 2654435761)) in
    Some (List.nth targets (Rng.int h (List.length targets)))
