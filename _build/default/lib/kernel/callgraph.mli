(** Synthetic kernel call graph at paper scale (~28K functions).

    The graph is the substrate for everything ISV-related: static ISVs are
    reachability over direct edges from an application's syscall entry set
    (the radare2 substitute), dynamic ISVs come from traced executions, the
    Kasper-style scanner searches it for gadgets, and Table 8.1's attack
    surface is measured on it.

    Structure mirrors a monolithic kernel:
    - one entry node per system call;
    - a layered shared core (mm/vfs/net/sched helpers) reachable from most
      entries, with intra-core calls flowing toward deeper layers;
    - per-syscall private subtrees (the long tail of handler code);
    - an indirect pool: functions reachable {e only} through function-pointer
      dispatch sites (file_ops-style), invisible to static analysis;
    - hot/cold labelling that drives dynamic tracing. *)

type config = {
  nodes : int;
  shared_core : int;
  indirect_pool : int;
  core_fanout : int;  (** max callees of a core node *)
  entry_core_calls : int;  (** core roots each syscall entry calls *)
  cross_call_prob : float;  (** private node calls into the core *)
  icall_site_prob : float;  (** private/core node hosts an indirect dispatch site *)
  icall_targets : int;  (** candidate targets per dispatch site *)
  cold_prob : float;  (** fraction of non-entry nodes that are cold *)
}

val default_config : config
(** 28_000 nodes, 1_200 shared core, 2_600 indirect pool. *)

type t

val synthesize : ?config:config -> int -> t
(** [synthesize seed] builds the graph deterministically from [seed]. *)

val nnodes : t -> int
val node_name : t -> int -> string
val entry_of_syscall : t -> int -> int
(** Entry node of a syscall number. *)

val syscall_of_entry : t -> int -> int option
val direct_callees : t -> int -> int list
val indirect_targets : t -> int -> int list
(** Candidate targets of the dispatch site hosted by this node ([] if none). *)

val is_cold : t -> int -> bool
val depth : t -> int -> int
(** Shortest direct-edge distance from any syscall entry (max_int if
    unreachable directly). *)

val indirect_only : t -> int -> bool
(** True when the node is unreachable via direct edges from every entry. *)

val static_reachable : t -> int list -> Pv_util.Bitset.t
(** Direct-edge closure from the given entry nodes: the static-ISV node set
    (indirect targets excluded, as static analysis cannot resolve them). *)

val reachable_with_indirect : t -> int list -> Pv_util.Bitset.t
(** Closure following both direct edges and all indirect candidate edges:
    the speculatively reachable surface of the unprotected kernel. *)

val sample_trace : t -> Pv_util.Rng.t -> syscall:int -> installed:(int -> int option) -> int list
(** One dynamic execution of a syscall: walks direct edges, skipping cold
    children with high probability, and follows each dispatch site to its
    installed target ([installed site_node]).  Returns executed nodes. *)

val default_installed : t -> app_seed:int -> int -> int option
(** Deterministic per-application choice of the installed target for each
    dispatch site (which concrete file_ops the app's files use). *)

val region : t -> int -> [ `Entry | `Core | `Ipool | `Private ]
(** Which structural region of the synthetic kernel a node belongs to. *)

val indirect_pool_bounds : t -> int * int
(** [(lo, hi)] node-id bounds (inclusive lo, exclusive hi) of the indirect
    pool region. *)
