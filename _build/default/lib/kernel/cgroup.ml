type t = { mutable names : string list (* reversed, id = position + 1 *) }

let create () = { names = [] }

let add t name =
  t.names <- name :: t.names;
  List.length t.names

let name t id =
  let n = List.length t.names in
  if id < 1 || id > n then raise Not_found;
  List.nth t.names (n - id)

let count t = List.length t.names

let ids t = List.init (List.length t.names) (fun i -> i + 1)
