(** Control groups: the resource-tracking contexts Perspective associates
    DSVs with (paper §6.1).  Each container/workload runs in its own cgroup;
    kernel threads get distinct ids for improved isolation. *)

type t

val create : unit -> t

val add : t -> string -> int
(** Register a cgroup, returning its id (dense from 1; id 0 is reserved for
    the root/kernel context). *)

val name : t -> int -> string
(** Raises [Not_found] for unregistered ids. *)

val count : t -> int
val ids : t -> int list
