module I = Pv_isa.Insn
module Asm = Pv_isa.Asm
module Mem = Pv_isa.Mem
module Rng = Pv_util.Rng
module Layout = Pv_isa.Layout

type loop_spec = {
  trips_shift : int;
  min_trips : int;
  unroll : int;
  stride : int;
  dep_chain : bool;
  shared_every : int;
  unknown_every : int;
  store_every : int;
  branch_mask : int;
  alu_pad : int;
}

let simple_loop =
  {
    trips_shift = 0;
    min_trips = 1;
    unroll = 2;
    stride = 64;
    dep_chain = false;
    shared_every = 0;
    unknown_every = 0;
    store_every = 0;
    branch_mask = 0;
    alu_pad = 1;
  }

type shape =
  | Loop of loop_spec
  | Leaf of { loads : int; stores : int; alu : int; shared : bool }
  | Dispatch of { slots : int; post : loop_spec }

(* In-page masks keeping generated addresses inside one 4 KiB page. *)
let chase_mask = 4032 (* line-aligned offsets, leaves room for unrolled loads *)

let shared_mask = 1984

let unknown_mask = 4032

let check_pow2 name v =
  if v <> 0 && v land (v - 1) <> 0 then
    invalid_arg (Printf.sprintf "Codegen: %s must be 0 or a power of two" name)

let emit_loop a spec =
  check_pow2 "shared_every" spec.shared_every;
  check_pow2 "unknown_every" spec.unknown_every;
  check_pow2 "store_every" spec.store_every;
  let loop = Asm.fresh_label a in
  let done_ = Asm.fresh_label a in
  Asm.li a 14 0;
  Asm.li a 15 0;
  (* r1 <- max (r11 lsr trips_shift) min_trips *)
  Asm.alui a I.Shr 1 11 spec.trips_shift;
  Asm.li a 2 spec.min_trips;
  let trips_ok = Asm.fresh_label a in
  Asm.branch a I.Ge 1 2 trips_ok;
  Asm.alu a I.Add 1 2 14;
  Asm.place a trips_ok;
  Asm.li a 2 0;
  Asm.place a loop;
  Asm.branch a I.Ge 2 1 done_;
  Asm.alui a I.Mul 3 2 spec.stride;
  Asm.alui a I.And 3 3 chase_mask;
  Asm.alu a I.Add 4 8 3;
  for j = 0 to spec.unroll - 1 do
    let off = if spec.dep_chain then 0 else j * 8 in
    Asm.load a 5 4 off;
    Asm.alu a I.Add 15 15 5;
    if spec.dep_chain then begin
      Asm.alui a I.And 6 5 chase_mask;
      Asm.alu a I.Add 4 8 6
    end;
    if spec.branch_mask > 0 && j = spec.unroll - 1 then begin
      let skip = Asm.fresh_label a in
      Asm.alui a I.And 6 5 spec.branch_mask;
      Asm.branch a I.Ne 6 14 skip;
      Asm.alui a I.Add 15 15 1;
      Asm.place a skip
    end;
    for k = 1 to spec.alu_pad do
      Asm.alui a I.Add 7 15 k
    done
  done;
  if spec.shared_every > 0 then begin
    let no = Asm.fresh_label a in
    Asm.alui a I.And 6 2 (spec.shared_every - 1);
    Asm.branch a I.Ne 6 14 no;
    Asm.alui a I.And 5 3 shared_mask;
    Asm.alu a I.Add 5 9 5;
    Asm.load a 5 5 0;
    Asm.alu a I.Add 15 15 5;
    Asm.place a no
  end;
  if spec.unknown_every > 0 then begin
    let no = Asm.fresh_label a in
    Asm.alui a I.And 6 2 (spec.unknown_every - 1);
    Asm.branch a I.Ne 6 14 no;
    Asm.alui a I.And 5 3 unknown_mask;
    Asm.alu a I.Add 5 10 5;
    Asm.load a 5 5 0;
    Asm.alu a I.Add 15 15 5;
    Asm.place a no
  end;
  if spec.store_every > 0 then begin
    let no = Asm.fresh_label a in
    Asm.alui a I.And 6 2 (spec.store_every - 1);
    Asm.branch a I.Ne 6 14 no;
    Asm.store a 4 15 0;
    Asm.place a no
  end;
  Asm.alui a I.Add 2 2 1;
  Asm.jump a loop;
  Asm.place a done_

let emit_leaf a ~loads ~stores ~alu ~shared =
  let base = if shared then 9 else 8 in
  Asm.li a 15 0;
  for j = 0 to loads - 1 do
    Asm.load a 5 base (j * 64 mod 1024);
    Asm.alu a I.Add 15 15 5
  done;
  for k = 1 to alu do
    Asm.alui a I.Add 7 15 k
  done;
  for j = 0 to stores - 1 do
    Asm.store a 8 15 ((j * 64 mod 1024) + 2048)
  done

let emit_dispatch a ~slots =
  check_pow2 "slots" slots;
  Asm.alui a I.And 5 12 (slots - 1);
  Asm.alui a I.Mul 5 5 8;
  Asm.alu a I.Add 5 13 5;
  Asm.load a 14 5 0;
  Asm.icall a 14

let gen_body shape ~tail =
  let a = Asm.create () in
  (match shape with
  | Loop spec -> emit_loop a spec
  | Leaf { loads; stores; alu; shared } -> emit_leaf a ~loads ~stores ~alu ~shared
  | Dispatch { slots; post } ->
    emit_dispatch a ~slots;
    emit_loop a post);
  (match tail with `Ret -> Asm.ret a | `Sysret -> Asm.sysret a);
  Asm.finish a

let gen_entry ~callees =
  let a = Asm.create () in
  Asm.alui a I.Add 7 11 0;
  List.iter (fun fid -> Asm.call a fid) callees;
  Asm.sysret a;
  Asm.finish a

let seed_page mem rng base =
  for i = 0 to (Layout.page_bytes / 8) - 1 do
    Mem.store mem (base + (i * 8)) (Rng.int rng Layout.page_bytes)
  done
