(** ISA code generator for executable kernel functions.

    Only kernel functions on simulated hot paths get real instruction bodies;
    their shape is controlled by small specs so each system call's timing
    character matches its Linux counterpart (copy loops for read/write,
    dependent pointer chases with data-dependent branches for select/poll,
    cold-page touches for mmap/fork, function-pointer dispatch for vfs ops).

    Kernel-mode register convention (set up by the machine at syscall entry):
    - [r0]  syscall number (read-only)
    - [r8]  base VA of the context's own data (direct map, inside its DSV)
    - [r9]  base VA of kernel-shared data (outside the process DSV)
    - [r10] base VA of untracked/unknown memory (paper §6.1)
    - [r11] size parameter (loop trip counts)
    - [r12] per-invocation variant (rotates working sets and dispatch slots)
    - [r13] base VA of a function-pointer table seeded with target entry VAs
    - [r1..r7], [r14], [r15] scratch. *)

type loop_spec = {
  trips_shift : int;  (** trip count = r11 lsr trips_shift *)
  min_trips : int;
  unroll : int;  (** loads per iteration *)
  stride : int;  (** bytes between iterations' access bases *)
  dep_chain : bool;  (** each load's address derives from the previous value *)
  shared_every : int;  (** every 2^k-th iteration loads kernel-shared data (0 = never; must be a power of two otherwise) *)
  unknown_every : int;  (** likewise for unknown memory *)
  store_every : int;  (** likewise for stores to own data *)
  branch_mask : int;  (** data-dependent branch on (value land mask) = 0; 0 = none *)
  alu_pad : int;  (** extra ALU ops per iteration *)
}

val simple_loop : loop_spec
(** A bland copy-like loop: unroll 2, stride 64, no chains or branches. *)

type shape =
  | Loop of loop_spec
  | Leaf of { loads : int; stores : int; alu : int; shared : bool }
      (** Small straight-line helper; [shared] reads r9 instead of r8. *)
  | Dispatch of { slots : int; post : loop_spec }
      (** Indirect call through the r13 table at slot [r12 mod slots], then a
          loop.  [slots] must be a power of two. *)

val gen_body : shape -> tail:[ `Ret | `Sysret ] -> Pv_isa.Insn.t array

val gen_entry : callees:int list -> Pv_isa.Insn.t array
(** Entry function of a system call: direct calls to its helper fids, then
    [Sysret]. *)

val seed_page : Pv_isa.Mem.t -> Pv_util.Rng.t -> int -> unit
(** Fill the page at the given (physical-key) base with word values suitable
    as pointer-chase offsets (multiples of 8 within the page). *)
