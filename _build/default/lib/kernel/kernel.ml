module Layout = Pv_isa.Layout
module Rng = Pv_util.Rng

type config = {
  frames : int;
  slab_mode : Slab.mode;
  graph_config : Callgraph.config;
  data_frames_per_proc : int;
  resident_objects : int;
}

let default_config =
  {
    frames = 65_536;
    slab_mode = Slab.Secure;
    graph_config = Callgraph.default_config;
    data_frames_per_proc = 8;
    resident_objects = 192;
  }

type proc_state = {
  mutable rotor : int; (* round-robin index into working-set frames *)
  mutable counters : int array; (* per-syscall invocation counts *)
  mutable mmap_stack : (int * int list) list; (* (va, frames) *)
  mutable fork_frames : int list; (* freed on the next fork (child exited) *)
  mutable skbs : int list; (* transient network objects *)
}

type t = {
  cfg : config;
  phys : Physmem.t;
  slab : Slab.t;
  cgroups : Cgroup.t;
  graph : Callgraph.t;
  trace : Trace.t;
  rng : Rng.t;
  mutable procs : Process.t list;
  mutable next_pid : int;
  mutable next_asid : int;
  shared_va : int;
  states : (int, proc_state) Hashtbl.t; (* pid -> state *)
}

let create ?(config = default_config) ~seed () =
  let phys = Physmem.create ~frames:config.frames in
  let shared_frame =
    match Physmem.alloc_pages phys ~order:2 Physmem.Kernel with
    | Some f -> f
    | None -> invalid_arg "Kernel.create: not enough frames"
  in
  let graph = Callgraph.synthesize ~config:config.graph_config seed in
  {
    cfg = config;
    phys;
    slab = Slab.create ~mode:config.slab_mode phys;
    cgroups = Cgroup.create ();
    graph;
    trace = Trace.create graph;
    rng = Rng.create (seed lxor 0x4B65726E);
    procs = [];
    next_pid = 1;
    next_asid = 1;
    shared_va = Physmem.frame_va shared_frame;
    states = Hashtbl.create 8;
  }

let phys t = t.phys
let slab t = t.slab
let graph t = t.graph
let trace t = t.trace
let cgroups t = t.cgroups
let processes t = t.procs
let shared_base t = t.shared_va
let unknown_base _ = Layout.kernel_global_base

let state t p =
  match Hashtbl.find_opt t.states (Process.pid p) with
  | Some s -> s
  | None ->
    let s =
      {
        rotor = 0;
        counters = Array.make Sysno.count 0;
        mmap_stack = [];
        fork_frames = [];
        skbs = [];
      }
    in
    Hashtbl.replace t.states (Process.pid p) s;
    s

let alloc_frame_exn t owner =
  match Physmem.alloc_pages t.phys ~order:0 owner with
  | Some f -> f
  | None -> failwith "Kernel: out of physical memory"

let spawn t ~name =
  let cg = Cgroup.add t.cgroups name in
  let p = Process.create ~pid:t.next_pid ~asid:t.next_asid ~cgroup:cg in
  t.next_pid <- t.next_pid + 1;
  t.next_asid <- t.next_asid + 1;
  t.procs <- p :: t.procs;
  let owner = Physmem.Cgroup cg in
  (* Kernel stack (vmalloc-style, tracked into the DSV; paper §6.1). *)
  Process.set_kstack p (alloc_frame_exn t owner);
  (* Kernel-side working set. *)
  for _ = 1 to t.cfg.data_frames_per_proc do
    Process.note_data_frame p (alloc_frame_exn t owner)
  done;
  (* Resident slab objects (file table, task bookkeeping, ...). *)
  for i = 1 to t.cfg.resident_objects do
    let size = Slab.size_classes.(i mod Array.length Slab.size_classes) in
    ignore (Slab.kmalloc t.slab ~owner ~size)
  done;
  ignore (state t p);
  p

let owner_of_va t va =
  match Physmem.frame_of_va va with
  | Some frame -> Physmem.owner_of t.phys frame
  | None ->
    if va >= Layout.kernel_global_base then Some Physmem.Unknown
    else if Layout.space_of_va va = Layout.Kernel then Some Physmem.Unknown
    else None

type sys_effects = {
  ret : int;
  data_va : int;
  trips : int;
  variant : int;
  new_frames : int list;
  freed_frames : int list;
}

let installed_ops t p site =
  Callgraph.default_installed t.graph ~app_seed:(Process.cgroup p) site

let rotate_data t p =
  let s = state t p in
  let frames = Process.data_frames p in
  if Array.length frames = 0 then shared_base t
  else begin
    s.rotor <- s.rotor + 1;
    Physmem.frame_va frames.(s.rotor mod Array.length frames)
  end

(* Network-path object churn (skbs, sds strings): allocate a few transient
   objects per call and retire the oldest once the in-flight pool exceeds
   its cap.  Keeping a pool of live objects is what makes page returns to
   the buddy allocator rare (paper 9.2 "Domain Reassignment"). *)
let churn_pool_cap = 96

let kmalloc_churn t ~owner s ~count ~size_seed ~large =
  for i = 0 to count - 1 do
    let size =
      (* transient sizes follow the skb/sds mix: 64..256 bytes, so a slab
         page holds 16-64 of them and rarely drains completely.  Large
         payloads (redis values) add an occasional 1 KiB object whose
         4-object pages do drain - the source of redis's higher domain
         reassignment rate (paper 9.2). *)
      if large && (size_seed + i) mod 8 = 0 then 1024
      else Slab.size_classes.(3 + ((size_seed + i) mod 3))
    in
    match Slab.kmalloc t.slab ~owner ~size with
    | Some va -> s.skbs <- va :: s.skbs
    | None -> ()
  done;
  let rec retire l n =
    if n <= churn_pool_cap then l
    else
      match List.rev l with
      | [] -> l
      | oldest :: _ ->
        Slab.kfree t.slab oldest;
        retire (List.filter (( <> ) oldest) l) (n - 1)
  in
  s.skbs <- retire s.skbs (List.length s.skbs)

let exec_syscall t p ~nr ~args =
  let s = state t p in
  let owner = Physmem.Cgroup (Process.cgroup p) in
  let arg i = if i < Array.length args then args.(i) else 0 in
  s.counters.(nr) <- s.counters.(nr) + 1;
  let variant = s.counters.(nr) in
  Trace.record_syscall t.trace ~ctx:(Process.cgroup p) nr;
  Trace.record_nodes t.trace ~ctx:(Process.cgroup p)
    (Callgraph.sample_trace t.graph t.rng ~syscall:nr ~installed:(installed_ops t p));
  let default_effects ?(ret = 0) ?(trips = 16) ?new_frames () =
    {
      ret;
      data_va = rotate_data t p;
      trips;
      variant;
      new_frames = (match new_frames with Some f -> f | None -> []);
      freed_frames = [];
    }
  in
  if nr = Sysno.sys_getpid then default_effects ~ret:(Process.pid p) ~trips:4 ()
  else if nr = Sysno.sys_clock_gettime then default_effects ~trips:4 ()
  else if
    nr = Sysno.sys_read || nr = Sysno.sys_write || nr = Sysno.sys_writev
    || nr = Sysno.sys_fstat
  then
    let bytes = max 64 (arg 0) in
    default_effects ~ret:bytes ~trips:(bytes / 64) ()
  else if nr = Sysno.sys_send || nr = Sysno.sys_recv then begin
    let bytes = max 64 (arg 0) in
    kmalloc_churn t ~owner s ~count:(1 + (variant mod 3)) ~size_seed:variant
      ~large:(bytes >= 1024);
    (* arg 1 = value-churn hint: the app reallocates whole value buffers on
       this path (redis sds growth), which takes and returns page-order
       allocations - the paper's main source of domain reassignments. *)
    if arg 1 = 1 && variant mod 160 = 0 then (
      match Slab.kmalloc t.slab ~owner ~size:4096 with
      | Some va -> Slab.kfree t.slab va
      | None -> ());
    default_effects ~ret:bytes ~trips:(bytes / 64) ()
  end
  else if
    nr = Sysno.sys_select || nr = Sysno.sys_poll || nr = Sysno.sys_epoll_wait
  then begin
    let nfds = max 8 (arg 0) in
    (* Implicit allocation for fd metadata (paper Fig. 5.2), freed on exit. *)
    let md = Slab.kmalloc t.slab ~owner ~size:(min 2048 (nfds * 16)) in
    (match md with Some va -> Slab.kfree t.slab va | None -> ());
    default_effects ~ret:(nfds / 4) ~trips:nfds ()
  end
  else if nr = Sysno.sys_mmap || nr = Sysno.sys_brk || nr = Sysno.sys_mprotect
  then begin
    let pages = max 1 (arg 0) in
    let frames = List.init (min pages 64) (fun _ -> alloc_frame_exn t owner) in
    let va = Process.fresh_heap_va p ~pages in
    List.iteri
      (fun i f -> Process.map_page p ~va:(va + (i * Layout.page_bytes)) ~frame:f)
      frames;
    s.mmap_stack <- (va, frames) :: s.mmap_stack;
    let data_va = Physmem.frame_va (List.hd frames) in
    {
      ret = va;
      data_va;
      trips = 64 * min pages 4;
      variant;
      new_frames = frames;
      freed_frames = [];
    }
  end
  else if nr = Sysno.sys_munmap then begin
    let freed = ref [] in
    (match s.mmap_stack with
    | (va, frames) :: rest ->
      s.mmap_stack <- rest;
      List.iteri
        (fun i f ->
          ignore (Process.unmap_page p ~va:(va + (i * Layout.page_bytes)));
          Physmem.free_pages t.phys ~frame:f ~order:0;
          freed := f :: !freed)
        frames
    | [] -> ());
    { (default_effects ~trips:16 ()) with freed_frames = !freed }
  end
  else if nr = Sysno.sys_page_fault then begin
    let frame = alloc_frame_exn t owner in
    let va = Process.fresh_heap_va p ~pages:1 in
    Process.map_page p ~va ~frame;
    {
      ret = va;
      data_va = Physmem.frame_va frame;
      trips = 64;
      variant;
      new_frames = [ frame ];
      freed_frames = [];
    }
  end
  else if nr = Sysno.sys_fork || nr = Sysno.sys_thread_create then begin
    (* The previous child has exited: release its memory. *)
    let freed = s.fork_frames in
    List.iter (fun f -> Physmem.free_pages t.phys ~frame:f ~order:0) freed;
    let pages = max 2 (arg 0) in
    let frames = List.init (min pages 128) (fun _ -> alloc_frame_exn t owner) in
    s.fork_frames <- frames;
    {
      ret = t.next_pid;
      data_va = Physmem.frame_va (List.hd frames);
      trips = 32 * min pages 8;
      variant;
      new_frames = frames;
      freed_frames = freed;
    }
  end
  else if nr = Sysno.sys_context_switch then default_effects ~trips:8 ()
  else default_effects ~trips:8 ()
