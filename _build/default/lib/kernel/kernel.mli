(** The synthetic operating system: processes, cgroups, allocators, the
    callgraph, tracing, and functional system-call handlers.

    The kernel has two faces.  The {e functional} face (this module) performs
    the architectural effects of system calls — allocating and freeing frames
    through the buddy allocator, kmalloc/kfree through the (secure) slab
    allocator, mapping pages, recording traces.  The {e timing} face is the
    ISA code of {!Kimage}, executed on the pipeline by the machine in
    [Pv_sim]; {!exec_syscall} returns the parameters the machine loads into
    the kernel-mode registers before redirecting fetch to the entry. *)

type config = {
  frames : int;  (** physical frames (4 KiB each) *)
  slab_mode : Slab.mode;
  graph_config : Callgraph.config;
  data_frames_per_proc : int;  (** kernel-side working-set frames per process *)
  resident_objects : int;  (** long-lived kmalloc objects per process *)
}

val default_config : config

type t

val create : ?config:config -> seed:int -> unit -> t

val phys : t -> Physmem.t
val slab : t -> Slab.t
val graph : t -> Callgraph.t
val trace : t -> Trace.t
val cgroups : t -> Cgroup.t
val processes : t -> Process.t list

val shared_base : t -> int
(** Direct-map VA of kernel-shared data (outside every process DSV). *)

val unknown_base : t -> int
(** VA of untracked memory (paper §6.1 "unknown allocations"). *)

val spawn : t -> name:string -> Process.t
(** Create a cgroup + process with its kernel stack, working-set frames and
    resident slab objects. *)

val owner_of_va : t -> int -> Physmem.owner option
(** Ownership of the page behind a kernel VA: direct-map pages resolve
    through the buddy allocator; other kernel VAs are [Unknown]; user VAs are
    [None] (resolved per process through page tables). *)

type sys_effects = {
  ret : int;
  data_va : int;  (** value for r8: base of the data this call works on *)
  trips : int;  (** value for r11 *)
  variant : int;  (** value for r12 *)
  new_frames : int list;  (** frames allocated by this call (cold pages) *)
  freed_frames : int list;  (** frames released by this call *)
}

val exec_syscall : t -> Process.t -> nr:int -> args:int array -> sys_effects
(** Run the functional handler: performs allocations/frees, updates traces,
    and returns the register parameters for the timing run.  [args] meaning:
    read/write/send/recv: bytes; select/poll/epoll_wait: nfds;
    mmap/munmap/fork: pages. *)

val installed_ops : t -> Process.t -> int -> int option
(** The dispatch target the process's file descriptors use at a given
    callgraph dispatch site (deterministic per cgroup). *)
