module Program = Pv_isa.Program
module Layout = Pv_isa.Layout
module Rng = Pv_util.Rng

type sysdesc = {
  nr : int;
  entry_node : int;
  entry_fid : int;
  helper_fids : int list;
  table_nodes : int array;
}

type t = {
  mutable funcs_rev : Program.func list;
  mutable next : int;
  by_nr : (int, sysdesc) Hashtbl.t;
  node_fid : (int, int) Hashtbl.t;
  fid_node : (int, int) Hashtbl.t;
}

let table_slots = 8

(* --- per-syscall timing shapes ------------------------------------- *)

let copy_loop ~stores =
  Codegen.
    {
      trips_shift = 0;
      min_trips = 4;
      unroll = 4;
      stride = 64;
      dep_chain = false;
      shared_every = 4;
      unknown_every = 0;
      store_every = (if stores then 2 else 0);
      branch_mask = 63;
      alu_pad = 1;
    }

let scan_loop =
  Codegen.
    {
      trips_shift = 0;
      min_trips = 8;
      unroll = 2;
      stride = 64;
      dep_chain = true;
      shared_every = 4;
      unknown_every = 8;
      store_every = 0;
      branch_mask = 7;
      alu_pad = 1;
    }

let touch_loop =
  Codegen.
    {
      trips_shift = 0;
      min_trips = 8;
      unroll = 1;
      stride = 64;
      dep_chain = false;
      shared_every = 8;
      unknown_every = 8;
      store_every = 1;
      branch_mask = 31;
      alu_pad = 2;
    }

let meta_leaf = Codegen.Leaf { loads = 6; stores = 2; alu = 8; shared = false }

let shared_leaf = Codegen.Leaf { loads = 5; stores = 1; alu = 6; shared = true }

let tiny_leaf = Codegen.Leaf { loads = 2; stores = 0; alu = 4; shared = true }

(* Helper shapes per syscall, in call order.  A [Dispatch] shape hosts the
   function-pointer dispatch (vfs/socket ops). *)
let shapes_for nr =
  let open Codegen in
  if nr = Sysno.sys_getpid || nr = Sysno.sys_clock_gettime then [ tiny_leaf ]
  else if nr = Sysno.sys_read || nr = Sysno.sys_fstat then
    [ Dispatch { slots = table_slots; post = copy_loop ~stores:true }; shared_leaf ]
  else if nr = Sysno.sys_write || nr = Sysno.sys_writev then
    [ Dispatch { slots = table_slots; post = copy_loop ~stores:true }; shared_leaf ]
  else if nr = Sysno.sys_select || nr = Sysno.sys_poll || nr = Sysno.sys_epoll_wait
  then [ Dispatch { slots = table_slots; post = scan_loop }; meta_leaf ]
  else if
    nr = Sysno.sys_mmap || nr = Sysno.sys_brk || nr = Sysno.sys_mprotect
    || nr = Sysno.sys_page_fault
  then [ Loop touch_loop; shared_leaf ]
  else if nr = Sysno.sys_munmap then [ meta_leaf; shared_leaf ]
  else if nr = Sysno.sys_fork || nr = Sysno.sys_thread_create then
    [ Loop touch_loop; Loop touch_loop; shared_leaf ]
  else if nr = Sysno.sys_send || nr = Sysno.sys_recv then
    [ Dispatch { slots = table_slots; post = copy_loop ~stores:false }; shared_leaf; meta_leaf ]
  else if nr = Sysno.sys_context_switch then [ shared_leaf; meta_leaf ]
  else [ meta_leaf ]

let target_shape node =
  (* Dispatch-target bodies (concrete ops implementations), mildly varied. *)
  match node mod 3 with
  | 0 -> Codegen.Leaf { loads = 5; stores = 1; alu = 4; shared = false }
  | 1 -> Codegen.Leaf { loads = 8; stores = 0; alu = 6; shared = false }
  | _ -> Codegen.Leaf { loads = 4; stores = 2; alu = 3; shared = true }

(* --- image construction -------------------------------------------- *)

let add_func t graph node body =
  let fid = t.next in
  t.next <- fid + 1;
  let f =
    { Program.fid; name = "k_" ^ Callgraph.node_name graph node; space = Layout.Kernel; body }
  in
  t.funcs_rev <- f :: t.funcs_rev;
  Hashtbl.replace t.node_fid node fid;
  Hashtbl.replace t.fid_node fid node;
  fid

let realize_target t graph node =
  match Hashtbl.find_opt t.node_fid node with
  | Some fid -> fid
  | None -> add_func t graph node (Codegen.gen_body (target_shape node) ~tail:`Ret)

(* Helper nodes for a syscall: breadth-first over direct callees of the
   entry, skipping nodes already realized (they are reused as-is). *)
let helper_nodes graph entry n =
  let acc = ref [] in
  let seen = Hashtbl.create 16 in
  let q = Queue.create () in
  List.iter (fun v -> Queue.add v q) (Callgraph.direct_callees graph entry);
  while List.length !acc < n && not (Queue.is_empty q) do
    let u = Queue.pop q in
    if not (Hashtbl.mem seen u) then begin
      Hashtbl.replace seen u ();
      acc := u :: !acc;
      List.iter (fun v -> Queue.add v q) (Callgraph.direct_callees graph u)
    end
  done;
  List.rev !acc

let dispatch_targets graph rng site =
  let pool_lo, pool_hi = Callgraph.indirect_pool_bounds graph in
  let candidates =
    match Callgraph.indirect_targets graph site with
    | [] ->
      (* No static dispatch site on this node: draw concrete ops
         implementations straight from the indirect pool. *)
      List.init 3 (fun _ -> Rng.in_range rng pool_lo (pool_hi - 1))
    | ts -> ts
  in
  let arr = Array.of_list candidates in
  let n = Array.length arr in
  (* 6 of 8 slots hold the installed target; the rest hold alternates. *)
  Array.init table_slots (fun i ->
      if i < 6 || n = 1 then arr.(0) else arr.(1 + ((i - 6) mod (n - 1))))

let build graph ~seed ~fid_base ~syscalls =
  let rng = Rng.create (seed lxor 0x6B696D67) in
  let t =
    {
      funcs_rev = [];
      next = fid_base;
      by_nr = Hashtbl.create 32;
      node_fid = Hashtbl.create 256;
      fid_node = Hashtbl.create 256;
    }
  in
  let realize_syscall nr =
    if not (Hashtbl.mem t.by_nr nr) then begin
      let entry_node = Callgraph.entry_of_syscall graph nr in
      let shapes = shapes_for nr in
      let nodes = helper_nodes graph entry_node (List.length shapes) in
      let table = ref [||] in
      let n = min (List.length shapes) (List.length nodes) in
      let helper_fids =
        List.map2
          (fun node shape ->
            (match shape with
            | Codegen.Dispatch _ when !table = [||] ->
              let slots = dispatch_targets graph rng node in
              Array.iter (fun tgt -> ignore (realize_target t graph tgt)) slots;
              table := slots
            | Codegen.Dispatch _ | Codegen.Loop _ | Codegen.Leaf _ -> ());
            match Hashtbl.find_opt t.node_fid node with
            | Some fid -> fid
            | None -> add_func t graph node (Codegen.gen_body shape ~tail:`Ret))
          (List.filteri (fun i _ -> i < n) nodes)
          (List.filteri (fun i _ -> i < n) shapes)
      in
      let entry_fid =
        add_func t graph entry_node (Codegen.gen_entry ~callees:helper_fids)
      in
      Hashtbl.replace t.by_nr nr
        { nr; entry_node; entry_fid; helper_fids; table_nodes = !table }
    end
  in
  List.iter realize_syscall syscalls;
  t

let funcs t = List.rev t.funcs_rev
let next_fid t = t.next
let desc t nr = Hashtbl.find_opt t.by_nr nr

let realized_syscalls t =
  Hashtbl.fold (fun nr _ acc -> nr :: acc) t.by_nr [] |> List.sort compare

let fid_of_node t node = Hashtbl.find_opt t.node_fid node
let node_of_fid t fid = Hashtbl.find_opt t.fid_node fid
