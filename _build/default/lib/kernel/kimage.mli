(** Executable kernel image: ISA bodies for the kernel functions on simulated
    hot paths.

    The full 28K-node callgraph stays a graph; only the entry, helper and
    dispatch-target functions of the system calls a machine actually executes
    are realized as {!Pv_isa.Program} functions.  Function ids are allocated
    densely from [fid_base] so the image can be concatenated with userspace
    code into one program. *)

type sysdesc = {
  nr : int;
  entry_node : int;
  entry_fid : int;
  helper_fids : int list;
  table_nodes : int array;
      (** Dispatch-slot targets (callgraph nodes); [||] when the syscall has
          no indirect dispatch site.  Slot layout: majority slots hold the
          installed target, the rest alternates — rotating the slot index
          makes the BTB go stale, creating transient wrong-target execution. *)
}

type t

val build :
  Callgraph.t -> seed:int -> fid_base:int -> syscalls:int list -> t

val funcs : t -> Pv_isa.Program.func list
(** Kernel functions, fids dense in [fid_base, fid_base + length). *)

val next_fid : t -> int
val desc : t -> int -> sysdesc option
(** Descriptor for a realized syscall number. *)

val realized_syscalls : t -> int list
val fid_of_node : t -> int -> int option
val node_of_fid : t -> int -> int option
val table_slots : int
(** Number of function-pointer slots per dispatch table (8). *)
