module Layout = Pv_isa.Layout

type owner = Kernel | Cgroup of int | Unknown

let owner_equal a b =
  match (a, b) with
  | Kernel, Kernel | Unknown, Unknown -> true
  | Cgroup x, Cgroup y -> x = y
  | (Kernel | Cgroup _ | Unknown), _ -> false

let pp_owner ppf = function
  | Kernel -> Format.fprintf ppf "kernel"
  | Cgroup id -> Format.fprintf ppf "cgroup:%d" id
  | Unknown -> Format.fprintf ppf "unknown"

let max_order = 10

type frame_state =
  | Free_head of int (* order *)
  | Free_body
  | Alloc_head of int * owner
  | Alloc_body
  | Offline (* padding frames beyond the usable range *)

type t = {
  usable : int;
  pool : int; (* power-of-two pool size *)
  state : frame_state array;
  free_lists : (int, unit) Hashtbl.t array; (* per order: set of free block heads *)
  mutable free_count : int;
  mutable reassignments : int;
}

let rec pow2_at_least n p = if p >= n then p else pow2_at_least n (p * 2)

let create ~frames =
  if frames <= 0 then invalid_arg "Physmem.create: frames must be positive";
  let pool = pow2_at_least frames 1 in
  let t =
    {
      usable = frames;
      pool;
      state = Array.make pool Offline;
      free_lists = Array.init (max_order + 1) (fun _ -> Hashtbl.create 64);
      free_count = 0;
      reassignments = 0;
    }
  in
  (* Seed the free lists with maximal aligned blocks covering the usable
     range. *)
  let rec seed frame =
    if frame < frames then begin
      let rec largest o =
        if o = 0 then 0
        else if
          frame land ((1 lsl o) - 1) = 0
          && frame + (1 lsl o) <= frames
          && o <= max_order
        then o
        else largest (o - 1)
      in
      let o = largest max_order in
      t.state.(frame) <- Free_head o;
      for i = frame + 1 to frame + (1 lsl o) - 1 do
        t.state.(i) <- Free_body
      done;
      Hashtbl.replace t.free_lists.(o) frame ();
      t.free_count <- t.free_count + (1 lsl o);
      seed (frame + (1 lsl o))
    end
  in
  seed 0;
  t

let total_frames t = t.usable
let free_frames t = t.free_count
let allocated_frames t = t.usable - t.free_count

let take_any tbl = Hashtbl.fold (fun k () acc -> match acc with None -> Some k | s -> s) tbl None

let rec pop_block t order =
  if order > max_order then None
  else
    match take_any t.free_lists.(order) with
    | Some frame ->
      Hashtbl.remove t.free_lists.(order) frame;
      Some (frame, order)
    | None -> pop_block t (order + 1)

let alloc_pages t ~order owner =
  if order < 0 || order > max_order then invalid_arg "Physmem.alloc_pages: bad order";
  match pop_block t order with
  | None -> None
  | Some (frame, got) ->
    (* Split down to the requested order, returning upper halves. *)
    let o = ref got in
    while !o > order do
      decr o;
      let buddy = frame + (1 lsl !o) in
      t.state.(buddy) <- Free_head !o;
      for i = buddy + 1 to buddy + (1 lsl !o) - 1 do
        t.state.(i) <- Free_body
      done;
      Hashtbl.replace t.free_lists.(!o) buddy ()
    done;
    t.state.(frame) <- Alloc_head (order, owner);
    for i = frame + 1 to frame + (1 lsl order) - 1 do
      t.state.(i) <- Alloc_body
    done;
    t.free_count <- t.free_count - (1 lsl order);
    Some frame

let free_pages t ~frame ~order =
  (match t.state.(frame) with
  | Alloc_head (o, _) when o = order -> ()
  | Alloc_head (o, _) ->
    invalid_arg (Printf.sprintf "Physmem.free_pages: order mismatch (%d vs %d)" o order)
  | Free_head _ | Free_body -> invalid_arg "Physmem.free_pages: double free"
  | Alloc_body -> invalid_arg "Physmem.free_pages: not a block head"
  | Offline -> invalid_arg "Physmem.free_pages: offline frame");
  t.free_count <- t.free_count + (1 lsl order);
  (* Coalesce with free buddies as far as possible. *)
  let rec merge frame order =
    if order >= max_order then (frame, order)
    else
      let buddy = frame lxor (1 lsl order) in
      if
        buddy + (1 lsl order) <= t.pool
        && (match t.state.(buddy) with Free_head o when o = order -> true | _ -> false)
      then begin
        Hashtbl.remove t.free_lists.(order) buddy;
        let lo = min frame buddy in
        let hi = max frame buddy in
        t.state.(hi) <- Free_body;
        merge lo (order + 1)
      end
      else (frame, order)
  in
  t.state.(frame) <- Free_head order;
  for i = frame + 1 to frame + (1 lsl order) - 1 do
    t.state.(i) <- Free_body
  done;
  let f, o = merge frame order in
  t.state.(f) <- Free_head o;
  Hashtbl.replace t.free_lists.(o) f ()

let rec head_of t frame =
  if frame < 0 then None
  else
    match t.state.(frame) with
    | Alloc_head (o, owner) -> Some (frame, o, owner)
    | Alloc_body -> head_of t (frame - 1)
    | Free_head _ | Free_body | Offline -> None

let owner_of t frame =
  if frame < 0 || frame >= t.usable then None
  else
    match head_of t frame with
    | Some (head, o, owner) when frame < head + (1 lsl o) -> Some owner
    | Some _ | None -> None

let set_owner t ~frame ~order owner =
  match t.state.(frame) with
  | Alloc_head (o, _) when o = order ->
    t.state.(frame) <- Alloc_head (order, owner);
    t.reassignments <- t.reassignments + 1
  | Alloc_head _ | Free_head _ | Free_body | Alloc_body | Offline ->
    invalid_arg "Physmem.set_owner: not an allocated block head of this order"

let domain_reassignments t = t.reassignments

let frame_va f = Layout.direct_map_va (f * Layout.page_bytes)

let frame_of_va va =
  match Layout.pa_of_direct_map va with
  | Some pa -> Some (pa / Layout.page_bytes)
  | None -> None

let iter_allocated t f =
  for frame = 0 to t.usable - 1 do
    match t.state.(frame) with
    | Alloc_head (o, owner) ->
      for i = frame to frame + (1 lsl o) - 1 do
        if i < t.usable then f i owner
      done
    | Free_head _ | Free_body | Alloc_body | Offline -> ()
  done
