(** Physical memory: a frame pool managed by a binary-buddy allocator that
    tracks the owner of every allocation.

    Ownership tracking at allocation time is the foundation of DSVs (paper
    §5.2, §6.1): the buddy allocator obtains the cgroup of the requesting
    context and associates the allocated frames with that context's DSV for
    the corresponding direct-map pages. *)

type owner =
  | Kernel  (** kernel-owned: outside every process DSV *)
  | Cgroup of int  (** owned by a cgroup (container/process group) *)
  | Unknown  (** memory not allocated through tracked interfaces (§6.1) *)

val owner_equal : owner -> owner -> bool
val pp_owner : Format.formatter -> owner -> unit

type t

val create : frames:int -> t
(** [create ~frames] builds a pool of 4 KiB frames.  [frames] is rounded up
    to a power of two internally; only [frames] are usable. *)

val total_frames : t -> int
val free_frames : t -> int
val allocated_frames : t -> int
val max_order : int

val alloc_pages : t -> order:int -> owner -> int option
(** Allocate a naturally aligned block of [2^order] frames for [owner];
    returns the first frame index, or [None] when memory is exhausted. *)

val free_pages : t -> frame:int -> order:int -> unit
(** Free a block previously returned by {!alloc_pages} with the same order.
    Raises [Invalid_argument] on double-free or bad alignment. *)

val owner_of : t -> int -> owner option
(** Owner of a frame; [None] when the frame is free. *)

val set_owner : t -> frame:int -> order:int -> owner -> unit
(** Domain reassignment of a live block (secure-slab page recycling, §9.2);
    counted in {!domain_reassignments}. *)

val domain_reassignments : t -> int

val frame_va : int -> int
(** Direct-map VA of frame [f] (its byte 0). *)

val frame_of_va : int -> int option
(** Frame index for a direct-map VA. *)

val iter_allocated : t -> (int -> owner -> unit) -> unit
(** Iterate over allocated frames (frame index, owner). *)
