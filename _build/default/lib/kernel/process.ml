module Layout = Pv_isa.Layout

type t = {
  pid : int;
  asid : int;
  cgroup : int;
  page_table : (int, int) Hashtbl.t; (* user page VA -> frame *)
  mutable kstack : int option;
  mutable heap_next : int;
  mutable data : int list; (* reversed *)
}

let create ~pid ~asid ~cgroup =
  {
    pid;
    asid;
    cgroup;
    page_table = Hashtbl.create 64;
    kstack = None;
    heap_next = Layout.user_data_base;
    data = [];
  }

let pid t = t.pid
let asid t = t.asid
let cgroup t = t.cgroup

let page_va va = va land lnot (Layout.page_bytes - 1)

let map_page t ~va ~frame = Hashtbl.replace t.page_table (page_va va) frame

let unmap_page t ~va =
  let key = page_va va in
  match Hashtbl.find_opt t.page_table key with
  | Some frame ->
    Hashtbl.remove t.page_table key;
    Some frame
  | None -> None

let frame_for t ~va = Hashtbl.find_opt t.page_table (page_va va)

let mapped_count t = Hashtbl.length t.page_table

let owned_frames t = Hashtbl.fold (fun _ frame acc -> frame :: acc) t.page_table []

let set_kstack t frame = t.kstack <- Some frame

let kstack t = t.kstack

let fresh_heap_va t ~pages =
  let va = t.heap_next in
  t.heap_next <- t.heap_next + (pages * Layout.page_bytes);
  va

let note_data_frame t frame = t.data <- frame :: t.data

let data_frames t = Array.of_list (List.rev t.data)
