(** Userspace processes: an address space (asid), a cgroup, a page table for
    user pages, and a kernel stack frame tracked in the process DSV. *)

type t

val create : pid:int -> asid:int -> cgroup:int -> t

val pid : t -> int
val asid : t -> int
val cgroup : t -> int

val map_page : t -> va:int -> frame:int -> unit
val unmap_page : t -> va:int -> int option
(** Returns the frame that was mapped, if any. *)

val frame_for : t -> va:int -> int option
val mapped_count : t -> int
val owned_frames : t -> int list

val set_kstack : t -> int -> unit
val kstack : t -> int option

val fresh_heap_va : t -> pages:int -> int
(** Reserve a fresh, page-aligned user heap VA range. *)

val note_data_frame : t -> int -> unit
(** Register a frame as part of the process's kernel-side working set. *)

val data_frames : t -> int array
(** Frames usable as kernel-side data for this process (round-robin base). *)
