module Layout = Pv_isa.Layout

type mode = Shared | Secure

let size_classes = [| 8; 16; 32; 64; 128; 256; 512; 1024; 2048 |]

type page = {
  frame : int;
  cls : int; (* object size *)
  owners : Physmem.owner array; (* per-slot owner of live objects *)
  live : bool array;
  mutable inuse : int;
}

type domain_key = { dk_cls : int; dk_owner : Physmem.owner option }
(* [dk_owner = None] in Shared mode: one domain per class. *)

type t = {
  md : mode;
  phys : Physmem.t;
  pages : (int, page) Hashtbl.t; (* frame -> page *)
  partial : (domain_key, int list ref) Hashtbl.t; (* pages with free slots *)
  big : (int, int) Hashtbl.t; (* frame -> order, for oversize allocations *)
  mutable live_objects : int;
  mutable active_bytes : int;
  mutable frees : int;
  mutable page_returns : int;
  mutable peak_pages : int;
}

let create ~mode phys =
  {
    md = mode;
    phys;
    pages = Hashtbl.create 256;
    partial = Hashtbl.create 64;
    big = Hashtbl.create 16;
    live_objects = 0;
    active_bytes = 0;
    frees = 0;
    page_returns = 0;
    peak_pages = 0;
  }

let mode t = t.md

let class_for size =
  Array.to_seq size_classes |> Seq.find (fun c -> c >= size)

let domain_key t cls owner =
  { dk_cls = cls; dk_owner = (match t.md with Shared -> None | Secure -> Some owner) }

let partial_list t key =
  match Hashtbl.find_opt t.partial key with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.replace t.partial key l;
    l

let slots_per_page cls = Layout.page_bytes / cls

let obj_va page slot = Physmem.frame_va page.frame + (slot * page.cls)

let new_page t cls owner =
  match Physmem.alloc_pages t.phys ~order:0 owner with
  | None -> None
  | Some frame ->
    let n = slots_per_page cls in
    let page =
      { frame; cls; owners = Array.make n Physmem.Unknown; live = Array.make n false; inuse = 0 }
    in
    Hashtbl.replace t.pages frame page;
    t.peak_pages <- max t.peak_pages (Hashtbl.length t.pages);
    Some page

let find_free_slot page =
  let n = Array.length page.live in
  let rec go i = if i = n then None else if not page.live.(i) then Some i else go (i + 1) in
  go 0

let alloc_in_page t page owner =
  match find_free_slot page with
  | None -> None
  | Some slot ->
    page.live.(slot) <- true;
    page.owners.(slot) <- owner;
    page.inuse <- page.inuse + 1;
    t.live_objects <- t.live_objects + 1;
    t.active_bytes <- t.active_bytes + page.cls;
    Some (obj_va page slot)

let kmalloc t ~owner ~size =
  if size <= 0 then invalid_arg "Slab.kmalloc: non-positive size";
  match class_for size with
  | None ->
    (* Oversize: whole pages straight from the buddy allocator. *)
    let pages_needed = (size + Layout.page_bytes - 1) / Layout.page_bytes in
    let rec order_for o = if 1 lsl o >= pages_needed then o else order_for (o + 1) in
    let order = order_for 0 in
    (match Physmem.alloc_pages t.phys ~order owner with
    | None -> None
    | Some frame ->
      Hashtbl.replace t.big frame order;
      Some (Physmem.frame_va frame))
  | Some cls -> (
    let key = domain_key t cls owner in
    let plist = partial_list t key in
    let rec try_pages = function
      | [] -> None
      | frame :: rest -> (
        match Hashtbl.find_opt t.pages frame with
        | None -> try_pages rest
        | Some page -> (
          match alloc_in_page t page owner with
          | Some va ->
            (* Drop the page from the partial list once it fills up. *)
            if page.inuse = slots_per_page cls then plist := List.filter (( <> ) frame) !plist;
            Some va
          | None ->
            plist := List.filter (( <> ) frame) !plist;
            try_pages rest))
    in
    match try_pages !plist with
    | Some va -> Some va
    | None -> (
      match new_page t cls owner with
      | None -> None
      | Some page -> (
        match alloc_in_page t page owner with
        | Some va ->
          if page.inuse < slots_per_page cls then plist := page.frame :: !plist;
          Some va
        | None -> None)))

let locate t va =
  match Physmem.frame_of_va va with
  | None -> None
  | Some frame -> (
    match Hashtbl.find_opt t.pages frame with
    | None -> None
    | Some page ->
      let off = va - Physmem.frame_va frame in
      if off mod page.cls <> 0 then None else Some (page, off / page.cls))

let kfree t va =
  match locate t va with
  | Some (page, slot) ->
    if not page.live.(slot) then invalid_arg "Slab.kfree: double free";
    page.live.(slot) <- false;
    page.inuse <- page.inuse - 1;
    t.live_objects <- t.live_objects - 1;
    t.active_bytes <- t.active_bytes - page.cls;
    t.frees <- t.frees + 1;
    (* Slot-reuse affinity: the freed slot's page moves to the front of its
       domain's partial list, so the next allocation refills it.  This is
       what keeps draining pages alive and page returns to the buddy
       allocator rare (paper 9.2 "Domain Reassignment"). *)
    if page.inuse > 0 then begin
      let owner =
        match Physmem.owner_of t.phys page.frame with
        | Some o -> o
        | None -> Physmem.Unknown
      in
      let plist = partial_list t (domain_key t page.cls owner) in
      plist := page.frame :: List.filter (( <> ) page.frame) !plist
    end;
    if page.inuse = 0 then begin
      (* Last object gone: the page returns to the buddy allocator and will
         need a domain reassignment when reused (paper §9.2). *)
      Hashtbl.remove t.pages page.frame;
      let owner =
        match Physmem.owner_of t.phys page.frame with
        | Some o -> o
        | None -> Physmem.Unknown
      in
      let key = domain_key t page.cls owner in
      (match Hashtbl.find_opt t.partial key with
      | Some l -> l := List.filter (( <> ) page.frame) !l
      | None -> ());
      Physmem.free_pages t.phys ~frame:page.frame ~order:0;
      t.page_returns <- t.page_returns + 1
    end
  | None -> (
    (* Maybe an oversize allocation. *)
    match Physmem.frame_of_va va with
    | Some frame when Hashtbl.mem t.big frame ->
      let order = Hashtbl.find t.big frame in
      Hashtbl.remove t.big frame;
      Physmem.free_pages t.phys ~frame ~order;
      t.frees <- t.frees + 1;
      t.page_returns <- t.page_returns + 1
    | Some _ | None -> invalid_arg "Slab.kfree: not a live slab object")

let owner_of_object t va =
  match locate t va with
  | Some (page, slot) when page.live.(slot) -> Some page.owners.(slot)
  | Some _ -> None
  | None -> (
    match Physmem.frame_of_va va with
    | Some frame when Hashtbl.mem t.big frame -> Physmem.owner_of t.phys frame
    | Some _ | None -> None)

let shares_page_with_other_owner t va =
  match locate t va with
  | Some (page, slot) when page.live.(slot) ->
    let mine = page.owners.(slot) in
    let n = Array.length page.live in
    let rec go i =
      if i = n then false
      else if i <> slot && page.live.(i) && not (Physmem.owner_equal page.owners.(i) mine)
      then true
      else go (i + 1)
    in
    go 0
  | Some _ | None -> false

let live_objects t = t.live_objects
let active_bytes t = t.active_bytes

let slab_bytes t = Hashtbl.length t.pages * Layout.page_bytes

let utilization t =
  let total = slab_bytes t in
  if total = 0 then 1.0 else float_of_int t.active_bytes /. float_of_int total

let total_frees t = t.frees
let page_returns t = t.page_returns
let peak_pages t = t.peak_pages
