(** Slab allocator for implicit kernel allocations (kmalloc), with the secure
    per-context isolation Perspective introduces (paper §5.2, §6.1).

    In [Shared] mode (baseline Linux behaviour) objects of all contexts pack
    into the same pages — distrusting contexts can share even a cache line.
    In [Secure] mode every (size class, owner) pair has its own pages,
    eliminating collocation at page granularity.  When a page's last object
    is freed the page returns to the buddy allocator, which requires a domain
    reassignment on its next use (§9.2 "Domain Reassignment"). *)

type mode = Shared | Secure

type t

val create : mode:mode -> Physmem.t -> t
val mode : t -> mode

val size_classes : int array
(** Supported object sizes (bytes): 8 .. 2048, powers of two. *)

val kmalloc : t -> owner:Physmem.owner -> size:int -> int option
(** Allocate an object of at least [size] bytes for [owner]; returns its
    direct-map VA, or [None] when physical memory is exhausted.  [size] above
    the largest class falls back to whole pages from the buddy allocator. *)

val kfree : t -> int -> unit
(** Free an object by VA.  Raises [Invalid_argument] for a VA that was not
    returned by {!kmalloc} (or was already freed). *)

val owner_of_object : t -> int -> Physmem.owner option
(** Owner of the page backing the object at this VA. *)

val shares_page_with_other_owner : t -> int -> bool
(** Does the page backing this object currently also hold a live object of a
    different owner?  Always false in [Secure] mode — the property tests rely
    on this. *)

val live_objects : t -> int
val active_bytes : t -> int
(** Sum of sizes of live objects. *)

val slab_bytes : t -> int
(** Total bytes of pages currently held by the slab allocator. *)

val utilization : t -> float
(** [active_bytes / slab_bytes]; 1.0 when no pages are held. *)

val total_frees : t -> int

val page_returns : t -> int
(** Number of frees that caused a page to return to the buddy allocator. *)

val peak_pages : t -> int
(** High-water mark of pages simultaneously held by the slab allocator. *)
