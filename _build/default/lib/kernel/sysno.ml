let known =
  [|
    "read"; "write"; "open"; "close"; "stat"; "fstat"; "poll"; "select";
    "epoll_wait"; "epoll_ctl"; "mmap"; "munmap"; "brk"; "mprotect"; "getpid";
    "fork"; "thread_create"; "exit"; "send"; "recv"; "accept"; "socket";
    "page_fault"; "context_switch"; "futex"; "nanosleep"; "writev"; "sendfile";
    "ioctl"; "fcntl"; "getdents"; "clock_gettime"; "lseek"; "dup"; "pipe";
    "uname"; "getuid"; "setsockopt"; "getsockopt"; "bind"; "listen"; "connect";
    "shutdown"; "readv"; "pread"; "pwrite"; "access"; "sched_yield"; "kill";
    "wait4"; "chdir"; "rename"; "mkdir"; "rmdir"; "creat"; "link"; "unlink";
    "symlink"; "readlink"; "chmod"; "chown"; "umask"; "gettimeofday";
    "getrlimit"; "getrusage";
  |]

let count = 340

let name nr =
  if nr < 0 || nr >= count then invalid_arg "Sysno.name: out of range";
  if nr < Array.length known then known.(nr) else Printf.sprintf "sys_%03d" nr

let lookup n =
  let rec go i =
    if i = count then None else if name i = n then Some i else go (i + 1)
  in
  go 0

let index n =
  match lookup n with Some i -> i | None -> invalid_arg ("Sysno: unknown " ^ n)

let sys_read = index "read"
let sys_write = index "write"
let sys_open = index "open"
let sys_close = index "close"
let sys_stat = index "stat"
let sys_fstat = index "fstat"
let sys_poll = index "poll"
let sys_select = index "select"
let sys_epoll_wait = index "epoll_wait"
let sys_epoll_ctl = index "epoll_ctl"
let sys_mmap = index "mmap"
let sys_munmap = index "munmap"
let sys_brk = index "brk"
let sys_mprotect = index "mprotect"
let sys_getpid = index "getpid"
let sys_fork = index "fork"
let sys_thread_create = index "thread_create"
let sys_exit = index "exit"
let sys_send = index "send"
let sys_recv = index "recv"
let sys_accept = index "accept"
let sys_socket = index "socket"
let sys_page_fault = index "page_fault"
let sys_context_switch = index "context_switch"
let sys_futex = index "futex"
let sys_nanosleep = index "nanosleep"
let sys_writev = index "writev"
let sys_sendfile = index "sendfile"
let sys_ioctl = index "ioctl"
let sys_fcntl = index "fcntl"
let sys_getdents = index "getdents"
let sys_clock_gettime = index "clock_gettime"
