(** System-call numbers and names of the synthetic kernel.

    The first block mirrors well-known Linux system calls (so workloads and
    ISV profiles read naturally); the remainder are filler syscalls that pad
    the kernel's attack surface, mirroring the long tail of rarely used Linux
    entry points. *)

val count : int
(** Total number of system calls (340). *)

val name : int -> string
(** Raises [Invalid_argument] for out-of-range numbers. *)

val lookup : string -> int option

(* Well-known syscalls used by the workloads. *)
val sys_read : int
val sys_write : int
val sys_open : int
val sys_close : int
val sys_stat : int
val sys_fstat : int
val sys_poll : int
val sys_select : int
val sys_epoll_wait : int
val sys_epoll_ctl : int
val sys_mmap : int
val sys_munmap : int
val sys_brk : int
val sys_mprotect : int
val sys_getpid : int
val sys_fork : int
val sys_thread_create : int
val sys_exit : int
val sys_send : int
val sys_recv : int
val sys_accept : int
val sys_socket : int
val sys_page_fault : int
(** Not a real syscall: the page-fault handler entry, modelled as a kernel
    entry point like LEBench does. *)

val sys_context_switch : int
(** Scheduler entry used by the context-switch microbenchmark. *)

val sys_futex : int
val sys_nanosleep : int
val sys_writev : int
val sys_sendfile : int
val sys_ioctl : int
val sys_fcntl : int
val sys_getdents : int
val sys_clock_gettime : int
