module Bitset = Pv_util.Bitset

type profile = {
  nodes : Bitset.t;
  sys_used : bool array;
  mutable invocations : int;
}

type t = { nnodes : int; profiles : (int, profile) Hashtbl.t }

let create cg = { nnodes = Callgraph.nnodes cg; profiles = Hashtbl.create 8 }

let profile t ctx =
  match Hashtbl.find_opt t.profiles ctx with
  | Some p -> p
  | None ->
    let p =
      { nodes = Bitset.create t.nnodes; sys_used = Array.make Sysno.count false; invocations = 0 }
    in
    Hashtbl.replace t.profiles ctx p;
    p

let record_syscall t ~ctx nr =
  let p = profile t ctx in
  p.sys_used.(nr) <- true;
  p.invocations <- p.invocations + 1

let record_node t ~ctx node = Bitset.set (profile t ctx).nodes node

let record_nodes t ~ctx nodes = List.iter (record_node t ~ctx) nodes

let nodes t ~ctx =
  match Hashtbl.find_opt t.profiles ctx with
  | Some p -> Bitset.copy p.nodes
  | None -> Bitset.create t.nnodes

let syscalls_used t ~ctx =
  match Hashtbl.find_opt t.profiles ctx with
  | None -> []
  | Some p ->
    let acc = ref [] in
    for nr = Sysno.count - 1 downto 0 do
      if p.sys_used.(nr) then acc := nr :: !acc
    done;
    !acc

let syscall_count t ~ctx =
  match Hashtbl.find_opt t.profiles ctx with Some p -> p.invocations | None -> 0

let contexts t = Hashtbl.fold (fun k _ acc -> k :: acc) t.profiles [] |> List.sort compare

let reset t ~ctx = Hashtbl.remove t.profiles ctx
