(** Kernel tracing subsystem (the ftrace substitute).

    Records, per execution context (cgroup id), which system calls were made
    and which kernel functions ran.  Dynamic ISVs are generated from these
    profiles (paper §5.3, §6.1). *)

type t

val create : Callgraph.t -> t

val record_syscall : t -> ctx:int -> int -> unit
val record_node : t -> ctx:int -> int -> unit
val record_nodes : t -> ctx:int -> int list -> unit

val nodes : t -> ctx:int -> Pv_util.Bitset.t
(** Set of traced kernel functions for a context (empty set if never seen). *)

val syscalls_used : t -> ctx:int -> int list
(** Sorted syscall numbers the context has made. *)

val syscall_count : t -> ctx:int -> int
(** Total syscall invocations recorded. *)

val contexts : t -> int list
val reset : t -> ctx:int -> unit
