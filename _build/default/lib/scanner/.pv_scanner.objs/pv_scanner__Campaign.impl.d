lib/scanner/campaign.ml: Gadgets Hashtbl List Option Pv_kernel Pv_util
