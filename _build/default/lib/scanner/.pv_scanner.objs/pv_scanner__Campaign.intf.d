lib/scanner/campaign.mli: Gadgets Pv_kernel Pv_util
