lib/scanner/gadgets.ml: Array Hashtbl List Pv_kernel Pv_util
