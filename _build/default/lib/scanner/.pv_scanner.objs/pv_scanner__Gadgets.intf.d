lib/scanner/gadgets.mli: Pv_kernel Pv_util
