module Callgraph = Pv_kernel.Callgraph
module Rng = Pv_util.Rng
module Bitset = Pv_util.Bitset

type result = {
  space : int;
  examined : int;
  hours : float;
  found : int;
  rate : float;
  timeline : (float * int) list;
}

let run graph gadget_db ?scope ?(funcs_per_hour = 600) ~seed () =
  if funcs_per_hour <= 0 then invalid_arg "Campaign.run: non-positive throughput";
  let rng = Rng.create (seed lxor 0x6B617370) in
  let n = Callgraph.nnodes graph in
  let in_space node = match scope with None -> true | Some s -> Bitset.mem s node in
  let space_nodes =
    List.filter in_space (List.init n (fun i -> i))
  in
  (* Fuzzing reaches shallow, hot code first; deep cold code takes long to
     drag coverage into.  Exploration order = sort by depth + noise. *)
  let keyed =
    List.map
      (fun node ->
        let d = Callgraph.depth graph node in
        let d = if d = max_int then 8 else d in
        let cold_penalty = if Callgraph.is_cold graph node then 2.5 else 0.0 in
        (float_of_int d +. cold_penalty +. Rng.float rng 3.0, node))
      space_nodes
  in
  let order = List.map snd (List.sort compare keyed) in
  (* A function may host several gadgets (of different kinds); discovering
     the function discovers them all. *)
  let gadgets_at = Hashtbl.create 512 in
  List.iter
    (fun g ->
      let n = g.Gadgets.node in
      Hashtbl.replace gadgets_at n
        (1 + Option.value ~default:0 (Hashtbl.find_opt gadgets_at n)))
    (Gadgets.gadgets gadget_db);
  let found = ref 0 in
  let examined = ref 0 in
  let timeline = ref [] in
  List.iter
    (fun node ->
      incr examined;
      match Hashtbl.find_opt gadgets_at node with
      | Some k ->
        found := !found + k;
        timeline :=
          (float_of_int !examined /. float_of_int funcs_per_hour, !found) :: !timeline
      | None -> ())
    order;
  let hours = float_of_int !examined /. float_of_int funcs_per_hour in
  {
    space = List.length space_nodes;
    examined = !examined;
    hours;
    found = !found;
    rate = (if hours > 0.0 then float_of_int !found /. hours else 0.0);
    timeline = List.rev !timeline;
  }

let speedup ~bounded ~full = if full.rate = 0.0 then 0.0 else bounded.rate /. full.rate
