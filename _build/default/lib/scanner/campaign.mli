(** Fuzzing-campaign model: the Kasper + Syzkaller substitute.

    Kasper drives the kernel with Syzkaller and taint-tracks transient
    executions; its cost is dominated by how many kernel functions the fuzzer
    must drag coverage through.  We model a campaign as a depth-biased
    exploration over the search space at a fixed analysis throughput
    (functions/hour): a gadget is discovered when its function is reached.

    Bounding the search space to an ISV (paper §5.4, §8.2) shrinks the space
    ~20x while losing only the ~8% of gadgets that live inside the ISV —
    the net effect is the discovery-rate speedup of Figure 9.1. *)

type result = {
  space : int;  (** functions in the search space *)
  examined : int;
  hours : float;  (** time to cover the space *)
  found : int;
  rate : float;  (** gadgets discovered per hour *)
  timeline : (float * int) list;  (** (hour, cumulative found) samples *)
}

val run :
  Pv_kernel.Callgraph.t ->
  Gadgets.t ->
  ?scope:Pv_util.Bitset.t ->
  ?funcs_per_hour:int ->
  seed:int ->
  unit ->
  result
(** Without [scope], the campaign explores the whole kernel.  Default
    throughput: 600 functions/hour. *)

val speedup : bounded:result -> full:result -> float
(** Discovery-rate ratio (Figure 9.1's metric). *)
