(** The transient-execution gadget corpus (the Kasper ground truth).

    Kasper [NDSS'22] reported 1533 potential gadgets in Linux: 805 leaking
    through microarchitectural buffers (MDS), 509 through port contention and
    219 through cache covert channels (paper §8.2).  We plant the same
    population across the synthetic kernel, biased toward deep, cold
    functions — the paper's study found real gadgets "deeply buried within
    infrequently used modules". *)

type kind = Mds | Port | CacheChannel

val kind_name : kind -> string

type gadget = { node : int; kind : kind }

type t

val plant : Pv_kernel.Callgraph.t -> seed:int -> t
(** Standard population: 805 / 509 / 219. *)

val plant_counts :
  Pv_kernel.Callgraph.t -> seed:int -> mds:int -> port:int -> cache:int -> t

val total : t -> int
val count : t -> kind -> int
val gadgets : t -> gadget list
val nodes : t -> int list
val nodes_of_kind : t -> kind -> int list

val in_scope : t -> Pv_util.Bitset.t -> gadget list
(** Gadgets whose function lies inside the given node set. *)

val excluded_pct : t -> kind -> Pv_util.Bitset.t -> float
(** Percentage of gadgets of [kind] blocked by a view (outside the set):
    Table 8.2's metric. *)
