lib/sim/machine.ml: Array Hashtbl List Perspective Pv_isa Pv_isvgen Pv_kernel Pv_scanner Pv_uarch Pv_util
