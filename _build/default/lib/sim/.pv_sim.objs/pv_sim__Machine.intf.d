lib/sim/machine.mli: Perspective Pv_isa Pv_kernel Pv_uarch
