lib/uarch/btb.ml: Array Seq
