lib/uarch/btb.mli:
