lib/uarch/cache.mli:
