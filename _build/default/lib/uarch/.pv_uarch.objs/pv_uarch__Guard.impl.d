lib/uarch/guard.ml:
