lib/uarch/guard.mli:
