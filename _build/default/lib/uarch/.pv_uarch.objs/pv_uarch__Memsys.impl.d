lib/uarch/memsys.ml: Cache Pv_isa
