lib/uarch/memsys.mli: Cache Pv_isa
