lib/uarch/pipeline.ml: Array Btb Cache Guard List Memsys Printf Pv_isa Ras Tage
