lib/uarch/pipeline.mli: Btb Guard Memsys Pv_isa Ras
