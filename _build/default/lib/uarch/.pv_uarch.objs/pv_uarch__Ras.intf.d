lib/uarch/ras.mli:
