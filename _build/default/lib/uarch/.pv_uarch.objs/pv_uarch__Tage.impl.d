lib/uarch/tage.ml: Array List
