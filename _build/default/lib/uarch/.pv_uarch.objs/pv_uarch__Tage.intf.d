lib/uarch/tage.mli:
