type entry = { mutable tag : int; mutable target : int; mutable valid : bool; mutable lru : int }

type t = {
  nsets : int;
  nways : int;
  sets : entry array array;
  mutable tick : int;
}

let tag_bits = 12

let create ?(entries = 4096) ?(ways = 4) () =
  if entries mod ways <> 0 then invalid_arg "Btb.create: entries not divisible by ways";
  let nsets = entries / ways in
  {
    nsets;
    nways = ways;
    sets =
      Array.init nsets (fun _ ->
          Array.init ways (fun _ -> { tag = 0; target = 0; valid = false; lru = 0 }));
    tick = 0;
  }

let index_of t pc = (pc lsr 2) mod t.nsets

let tag_of t pc = ((pc lsr 2) / t.nsets) land ((1 lsl tag_bits) - 1)

let aliases t pc1 pc2 = index_of t pc1 = index_of t pc2 && tag_of t pc1 = tag_of t pc2

let lookup t pc =
  let set = t.sets.(index_of t pc) in
  let tag = tag_of t pc in
  let n = Array.length set in
  let rec go i =
    if i = n then None
    else if set.(i).valid && set.(i).tag = tag then begin
      t.tick <- t.tick + 1;
      set.(i).lru <- t.tick;
      Some set.(i).target
    end
    else go (i + 1)
  in
  go 0

let update t pc target =
  let set = t.sets.(index_of t pc) in
  let tag = tag_of t pc in
  let existing = Array.to_seq set |> Seq.find (fun e -> e.valid && e.tag = tag) in
  let e =
    match existing with
    | Some e -> e
    | None ->
      let best = ref set.(0) in
      Array.iter
        (fun w ->
          if not w.valid then best := w
          else if !best.valid && w.lru < !best.lru then best := w)
        set;
      !best
  in
  t.tick <- t.tick + 1;
  e.tag <- tag;
  e.target <- target;
  e.valid <- true;
  e.lru <- t.tick

let flush t = Array.iter (fun set -> Array.iter (fun e -> e.valid <- false) set) t.sets
