(** Branch target buffer for indirect calls.

    Set-associative, indexed and partially tagged by virtual address bits
    only — no address-space tag and no privilege tag.  Partial tagging means
    differently privileged code at aliasing addresses shares entries, which is
    the injection vector for Spectre-v2-style speculative control-flow
    hijacking (paper §4.1). *)

type t

val create : ?entries:int -> ?ways:int -> unit -> t
(** Defaults: 4096 entries, 4 ways (Table 7.1). *)

val lookup : t -> int -> int option
(** [lookup t pc] is the predicted target VA, if any. *)

val update : t -> int -> int -> unit
(** [update t pc target] trains the entry for [pc] (called at resolution). *)

val index_of : t -> int -> int
val tag_of : t -> int -> int
(** Exposed so attack builders can construct aliasing program points. *)

val aliases : t -> int -> int -> bool
(** Do two PCs map to the same set and partial tag? *)

val flush : t -> unit
