type way = { mutable tag : int; mutable valid : bool; mutable lru : int }

type t = {
  name : string;
  line_bytes : int;
  nsets : int;
  nways : int;
  latency : int;
  sets : way array array;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~name ~size_bytes ~line_bytes ~ways ~latency =
  if size_bytes <= 0 || line_bytes <= 0 || ways <= 0 then
    invalid_arg "Cache.create: non-positive parameter";
  let lines = size_bytes / line_bytes in
  if lines mod ways <> 0 || lines = 0 then
    invalid_arg "Cache.create: geometry does not divide";
  let nsets = lines / ways in
  {
    name;
    line_bytes;
    nsets;
    nways = ways;
    latency;
    sets =
      Array.init nsets (fun _ ->
          Array.init ways (fun _ -> { tag = 0; valid = false; lru = 0 }));
    tick = 0;
    hits = 0;
    misses = 0;
  }

let name t = t.name
let latency t = t.latency
let sets t = t.nsets
let ways t = t.nways

let locate t addr =
  let line = addr / t.line_bytes in
  let set = line mod t.nsets in
  let tag = line / t.nsets in
  (t.sets.(set), tag)

let find set tag =
  let n = Array.length set in
  let rec go i =
    if i = n then None
    else if set.(i).valid && set.(i).tag = tag then Some set.(i)
    else go (i + 1)
  in
  go 0

let victim set =
  let best = ref set.(0) in
  Array.iter
    (fun w ->
      if not w.valid then best := w
      else if !best.valid && w.lru < !best.lru then best := w)
    set;
  !best

let bump t w =
  t.tick <- t.tick + 1;
  w.lru <- t.tick

let fill t set tag =
  let w = victim set in
  w.tag <- tag;
  w.valid <- true;
  bump t w

let access t addr =
  let set, tag = locate t addr in
  match find set tag with
  | Some w ->
    t.hits <- t.hits + 1;
    bump t w;
    true
  | None ->
    t.misses <- t.misses + 1;
    fill t set tag;
    false

let access_no_lru t addr =
  let set, tag = locate t addr in
  match find set tag with
  | Some _ ->
    t.hits <- t.hits + 1;
    true
  | None ->
    t.misses <- t.misses + 1;
    fill t set tag;
    false

let touch t addr =
  let set, tag = locate t addr in
  match find set tag with Some w -> bump t w | None -> ()

let probe t addr =
  let set, tag = locate t addr in
  match find set tag with Some _ -> true | None -> false

let flush_line t addr =
  let set, tag = locate t addr in
  match find set tag with Some w -> w.valid <- false | None -> ()

let flush_all t =
  Array.iter (fun set -> Array.iter (fun w -> w.valid <- false) set) t.sets

let hits t = t.hits
let misses t = t.misses

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
