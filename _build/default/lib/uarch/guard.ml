type query = {
  insn_va : int;
  fid : int;
  addr : int;
  asid : int;
  kernel_mode : bool;
  speculative : bool;
  l1_hit : bool;
  tainted : bool;
}

type source = Isv | Dsv | Baseline

type decision = Allow | Block of source

type t = {
  name : string;
  check : query -> decision;
  notify_vp : (insn_va:int -> addr:int -> asid:int -> kernel_mode:bool -> unit) option;
}

let allow_all = { name = "unsafe"; check = (fun _ -> Allow); notify_vp = None }
