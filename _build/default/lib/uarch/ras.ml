type t = {
  slots : int array;
  mutable top : int;
  mutable count : int;
  mutable ever_pushed : bool;
}

let create ?(entries = 16) () =
  { slots = Array.make entries 0; top = 0; count = 0; ever_pushed = false }

let push t va =
  let n = Array.length t.slots in
  t.top <- (t.top + 1) mod n;
  t.slots.(t.top) <- va;
  t.ever_pushed <- true;
  if t.count < n then t.count <- t.count + 1

(* On underflow, real return predictors speculate from whatever stale value
   sits in the slot — the ret2spec/Spectre-RSB lever — so we serve the stale
   entry rather than stalling (entries are not erased by pops). *)
let pop t =
  if t.count = 0 then
    (* Serve the most recently vacated slot. *)
    if t.ever_pushed then Some t.slots.((t.top + 1) mod Array.length t.slots)
    else None
  else begin
    let v = t.slots.(t.top) in
    let n = Array.length t.slots in
    t.top <- (t.top + n - 1) mod n;
    t.count <- t.count - 1;
    Some v
  end

let depth t = t.count

let clear t =
  t.count <- 0;
  t.ever_pushed <- false;
  Array.fill t.slots 0 (Array.length t.slots) 0
