(** Return address stack used by the fetch stage to predict [Ret] targets.

    A fixed-depth circular stack with speculative push/pop at fetch and no
    repair on squash.  The lack of repair is a deliberate, documented
    simplification shared with several academic simulators: it makes the RAS
    poisonable by over-returning or by wrong-path calls, which is precisely
    the Spectre-RSB primitive (paper §2.2). *)

type t

val create : ?entries:int -> unit -> t
(** Default 16 entries (Table 7.1). *)

val push : t -> int -> unit
val pop : t -> int option
(** On underflow the stale slot value is served (entries are not erased by
    pops) — this is the ret2spec/Spectre-RSB poisoning lever.  [None] only
    before the first ever push. *)

val depth : t -> int
val clear : t -> unit
