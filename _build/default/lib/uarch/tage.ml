let history_lengths = [| 4; 12; 28; 60 |]

let num_tables = Array.length history_lengths

let table_bits = 10 (* 1024 entries per tagged table *)

let table_size = 1 lsl table_bits

let tag_bits = 9

let base_bits = 12 (* 4096-entry bimodal *)

type tagged_entry = { mutable tag : int; mutable ctr : int; mutable u : int }

type t = {
  base : int array; (* 2-bit counters, 0..3 *)
  tables : tagged_entry array array;
  mutable lookups : int;
  mutable alloc_tick : int; (* deterministic tie-breaking for allocation *)
}

type meta = {
  provider : int; (* table index, -1 = base *)
  provider_idx : int;
  alt_pred : bool;
  provider_pred : bool;
  indices : int array;
  tags : int array;
  base_idx : int;
}

let create () =
  {
    base = Array.make (1 lsl base_bits) 2;
    tables =
      Array.init num_tables (fun _ ->
          Array.init table_size (fun _ -> { tag = 0; ctr = 0; u = 0 }));
    lookups = 0;
    alloc_tick = 0;
  }

(* Fold [len] bits of history together with the pc into [bits] bits. *)
let fold pc hist len bits =
  let mask = (1 lsl bits) - 1 in
  let h = if len >= 63 then hist else hist land ((1 lsl len) - 1) in
  let rec go acc h = if h = 0 then acc else go (acc lxor (h land mask)) (h lsr bits) in
  let folded = go 0 h in
  (folded lxor (pc lsr 2) lxor (pc lsr (2 + bits))) land mask

let tag_of pc hist len =
  let mask = (1 lsl tag_bits) - 1 in
  (fold pc (hist * 3) len tag_bits lxor (pc lsr 4)) land mask

let base_index pc = (pc lsr 2) land ((1 lsl base_bits) - 1)

let predict t ~pc ~hist =
  t.lookups <- t.lookups + 1;
  let indices = Array.init num_tables (fun i -> fold pc hist history_lengths.(i) table_bits) in
  let tags = Array.init num_tables (fun i -> tag_of pc hist history_lengths.(i)) in
  let base_idx = base_index pc in
  let base_pred = t.base.(base_idx) >= 2 in
  (* Longest matching component provides; second longest is the alternate. *)
  let provider = ref (-1) in
  let altpred = ref base_pred in
  let pred = ref base_pred in
  for i = 0 to num_tables - 1 do
    let e = t.tables.(i).(indices.(i)) in
    if e.tag = tags.(i) then begin
      if !provider >= 0 then altpred := !pred;
      provider := i;
      pred := e.ctr >= 0
    end
  done;
  let meta =
    {
      provider = !provider;
      provider_idx = (if !provider >= 0 then indices.(!provider) else base_idx);
      alt_pred = !altpred;
      provider_pred = !pred;
      indices;
      tags;
      base_idx;
    }
  in
  (!pred, meta)

let sat_inc v hi = if v < hi then v + 1 else v

let sat_dec v lo = if v > lo then v - 1 else v

let update t ~pc:_ ~hist:_ meta ~taken =
  let mispred = meta.provider_pred <> taken in
  (* Update the provider (or base) counter. *)
  (if meta.provider >= 0 then begin
     let e = t.tables.(meta.provider).(meta.provider_idx) in
     e.ctr <- (if taken then sat_inc e.ctr 3 else sat_dec e.ctr (-4));
     (* Useful bit: provider differed from alternate and was right/wrong. *)
     if meta.provider_pred <> meta.alt_pred then
       e.u <- (if meta.provider_pred = taken then sat_inc e.u 3 else sat_dec e.u 0)
   end
   else
     t.base.(meta.base_idx) <-
       (if taken then sat_inc t.base.(meta.base_idx) 3
        else sat_dec t.base.(meta.base_idx) 0));
  (* Allocate a new entry in a longer-history table on misprediction. *)
  if mispred && meta.provider < num_tables - 1 then begin
    t.alloc_tick <- t.alloc_tick + 1;
    let start = meta.provider + 1 in
    let candidates = ref [] in
    for i = num_tables - 1 downto start do
      if t.tables.(i).(meta.indices.(i)).u = 0 then candidates := i :: !candidates
    done;
    match !candidates with
    | [] ->
      (* Nothing available: decay usefulness so progress is eventually made. *)
      for i = start to num_tables - 1 do
        let e = t.tables.(i).(meta.indices.(i)) in
        e.u <- sat_dec e.u 0
      done
    | cs ->
      let pick = List.nth cs (t.alloc_tick mod List.length cs) in
      let e = t.tables.(pick).(meta.indices.(pick)) in
      e.tag <- meta.tags.(pick);
      e.ctr <- (if taken then 0 else -1);
      e.u <- 0
  end

let lookups t = t.lookups
