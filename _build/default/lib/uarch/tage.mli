(** TAGE conditional-branch direction predictor (scaled-down L-TAGE).

    A bimodal base table plus four partially tagged tables indexed by
    geometrically increasing global-history lengths.  The pipeline owns the
    global history register (so it can checkpoint/restore it across
    squashes); prediction returns opaque metadata that must be passed back to
    {!update} when the branch resolves.

    The predictor is shared and untagged across address spaces — exactly the
    property Spectre-style mistraining relies on. *)

type t

type meta
(** Provider/alternate information captured at prediction time. *)

val create : unit -> t

val predict : t -> pc:int -> hist:int -> bool * meta

val update : t -> pc:int -> hist:int -> meta -> taken:bool -> unit
(** Train with the resolved outcome.  [pc] and [hist] must be the values used
    at prediction time. *)

val lookups : t -> int

val history_lengths : int array
(** History lengths of the tagged components. *)
