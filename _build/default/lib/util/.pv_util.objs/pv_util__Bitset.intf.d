lib/util/bitset.mli:
