lib/util/pool.mli:
