lib/util/rng.mli:
