lib/util/stats.mli:
