lib/util/tab.mli:
