type t = { n : int; words : int array }

let bits_per_word = 62

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative length";
  { n; words = Array.make ((n + bits_per_word - 1) / bits_per_word) 0 }

let length t = t.n

let check t i = if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let set t i =
  check t i;
  t.words.(i / bits_per_word) <-
    t.words.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))

let clear t i =
  check t i;
  t.words.(i / bits_per_word) <-
    t.words.(i / bits_per_word) land lnot (1 lsl (i mod bits_per_word))

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w lsr 1) (acc + (w land 1)) in
  go w 0

let count t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let copy t = { n = t.n; words = Array.copy t.words }

let binop name f a b =
  if a.n <> b.n then invalid_arg ("Bitset." ^ name ^ ": length mismatch");
  { n = a.n; words = Array.init (Array.length a.words) (fun i -> f a.words.(i) b.words.(i)) }

let union a b = binop "union" ( lor ) a b
let inter a b = binop "inter" ( land ) a b
let diff a b = binop "diff" (fun x y -> x land lnot y) a b

let subset a b =
  if a.n <> b.n then invalid_arg "Bitset.subset: length mismatch";
  let rec go i =
    i = Array.length a.words || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1))
  in
  go 0

let iter t f =
  for i = 0 to t.n - 1 do
    if t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0 then f i
  done

let elements t =
  let acc = ref [] in
  iter t (fun i -> acc := i :: !acc);
  List.rev !acc

let of_list n l =
  let t = create n in
  List.iter (set t) l;
  t

let equal a b = a.n = b.n && a.words = b.words
