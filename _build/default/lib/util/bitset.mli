(** Dense bitsets over [0 .. n-1], used for function sets (ISVs, reachability,
    traces) over the 28K-node kernel callgraph. *)

type t

val create : int -> t
(** All bits clear. *)

val length : t -> int
val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool
val count : t -> int
(** Number of set bits. *)

val copy : t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
(** [diff a b] is a \ b.  All binary operations require equal lengths. *)

val subset : t -> t -> bool
(** [subset a b]: every member of [a] is in [b]. *)

val iter : t -> (int -> unit) -> unit
(** Iterate set bits in increasing order. *)

val elements : t -> int list
val of_list : int -> int list -> t
val equal : t -> t -> bool
