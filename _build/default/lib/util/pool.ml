(* Domain pool with an ordered job/result protocol.

   Jobs are closures pushed onto a mutex-protected queue; workers (and the
   calling domain, during [map]) pop and run them.  Each job writes its
   result into a dedicated slot of a per-[map] results array, so completion
   order never influences result order.  Exceptions are captured per slot
   and re-raised — lowest job index first — only after every job of the
   batch has finished, which makes failure behaviour independent of the
   worker count. *)

type job = unit -> unit

type t = {
  size : int;
  lock : Mutex.t;
  work : Condition.t;  (* signalled when jobs arrive, a batch drains, or on shutdown *)
  pending : job Queue.t;
  mutable closed : bool;
  mutable domains : unit Domain.t array;
}

let default_jobs () = Domain.recommended_domain_count ()

let rec worker_loop t =
  Mutex.lock t.lock;
  let rec next () =
    if not (Queue.is_empty t.pending) then Some (Queue.pop t.pending)
    else if t.closed then None
    else begin
      Condition.wait t.work t.lock;
      next ()
    end
  in
  match next () with
  | None -> Mutex.unlock t.lock
  | Some job ->
    Mutex.unlock t.lock;
    job ();
    worker_loop t

let create ~jobs =
  let size = max 1 jobs in
  let t =
    {
      size;
      lock = Mutex.create ();
      work = Condition.create ();
      pending = Queue.create ();
      closed = false;
      domains = [||];
    }
  in
  t.domains <- Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.size

type 'b slot = Empty | Ok_r of 'b | Error_r of exn * Printexc.raw_backtrace

let map t f xs =
  if t.closed then invalid_arg "Pool.map: pool is shut down";
  match xs with
  | [] -> []
  | _ when t.size = 1 -> List.map f xs (* the exact serial path *)
  | xs ->
    let items = Array.of_list xs in
    let n = Array.length items in
    let results = Array.make n Empty in
    let remaining = Atomic.make n in
    let job i () =
      (results.(i) <-
        (try Ok_r (f items.(i))
         with e -> Error_r (e, Printexc.get_raw_backtrace ())));
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        (* Last job of the batch: wake the caller if it is waiting. *)
        Mutex.lock t.lock;
        Condition.broadcast t.work;
        Mutex.unlock t.lock
      end
    in
    Mutex.lock t.lock;
    for i = 0 to n - 1 do
      Queue.push (job i) t.pending
    done;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    (* The caller helps drain the queue... *)
    let rec help () =
      Mutex.lock t.lock;
      let j = if Queue.is_empty t.pending then None else Some (Queue.pop t.pending) in
      Mutex.unlock t.lock;
      match j with
      | Some job ->
        job ();
        help ()
      | None -> ()
    in
    help ();
    (* ...then waits for jobs still in flight on worker domains. *)
    Mutex.lock t.lock;
    while Atomic.get remaining > 0 do
      Condition.wait t.work t.lock
    done;
    Mutex.unlock t.lock;
    let collect i =
      match results.(i) with
      | Ok_r v -> v
      | Error_r (e, bt) -> Printexc.raise_with_backtrace e bt
      | Empty -> assert false
    in
    (* Re-raise the first failure in job order (collect is index-ordered). *)
    List.init n collect

let shutdown t =
  Mutex.lock t.lock;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  if not was_closed then Array.iter Domain.join t.domains

let run ?(jobs = 1) f xs =
  if jobs <= 1 then List.map f xs
  else begin
    let t = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> map t f xs)
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
