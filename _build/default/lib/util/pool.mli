(** Fixed-size worker pool over OCaml 5 domains, with an ordered job/result
    protocol.

    The pool exists to parallelize the experiment layer's embarrassingly
    parallel [Machine] runs without giving up the repository's bit-exact
    determinism guarantee.  The contract callers must uphold is that each job
    is {e self-contained}: it takes pure inputs (seed, config, workload spec)
    and touches no mutable state shared with any other job.  Under that
    contract the pool guarantees:

    - {b ordered results}: [map] returns results in the order of its input
      list, regardless of which worker ran which job or in what order jobs
      completed;
    - {b serial equivalence}: a pool of size 1 runs every job in the calling
      domain, in submission order — exactly the serial path;
    - {b deterministic errors}: if jobs raise, every job still runs to
      completion and the exception of the {e lowest-indexed} failing job is
      re-raised (with its backtrace) after all workers have drained, so the
      observable failure does not depend on the worker count.

    The calling domain participates in draining the job queue during [map],
    so a pool of size [n] uses [n-1] spawned domains plus the caller. *)

type t
(** A pool of worker domains.  Not itself thread-safe: drive a given pool
    from one domain at a time. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [-j] default of the CLI and
    bench harnesses. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [max jobs 1 - 1] worker domains.  [jobs = 1] spawns
    none: every subsequent [map] degenerates to [List.map]. *)

val size : t -> int
(** Total workers, including the calling domain. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] runs [f x] for every [x] of [xs] across the pool's
    workers and returns the results in the order of [xs].  Raises
    [Invalid_argument] if the pool has been shut down. *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent; the pool is unusable afterwards. *)

val run : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [create], [map], [shutdown].  [jobs] defaults to 1
    (the serial path) so that library callers stay serial unless a [-j] flag
    is threaded down to them explicitly. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool, shutting it down on the
    way out (also on exceptions). *)
