type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_seed t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

(* SplitMix64 finalizer. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t = mix (next_seed t)

let split t = { state = int64 t }

let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod n

let in_range t lo hi =
  if hi < lo then invalid_arg "Rng.in_range: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  let u = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  x *. (u /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (int64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_exp t mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let sample_geometric t p =
  let p = if p < 1e-9 then 1e-9 else if p > 1.0 then 1.0 else p in
  if p >= 1.0 then 0
  else
    let u = 1.0 -. float t 1.0 in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let pick_weighted t pairs =
  if Array.length pairs = 0 then invalid_arg "Rng.pick_weighted: empty array";
  let total = Array.fold_left (fun acc (_, w) -> acc +. Float.max w 0.0) 0.0 pairs in
  if total <= 0.0 then invalid_arg "Rng.pick_weighted: non-positive total weight";
  let target = float t total in
  let rec go i acc =
    if i = Array.length pairs - 1 then fst pairs.(i)
    else
      let _, w = pairs.(i) in
      let acc = acc +. Float.max w 0.0 in
      if target < acc then fst pairs.(i) else go (i + 1) acc
  in
  go 0 0.0
