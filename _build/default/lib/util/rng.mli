(** Deterministic pseudo-random number generation.

    All stochastic choices in the simulator flow through this module so that
    every experiment is reproducible bit-for-bit from its seed.  The generator
    is SplitMix64 (Steele, Lea & Flood, OOPSLA'14): tiny state, excellent
    statistical quality for simulation purposes, and trivially splittable. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds yield equal streams. *)

val copy : t -> t
(** Independent copy sharing no state with the original. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Streams of the
    parent and child are statistically independent. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** Next non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  Raises [Invalid_argument] if [n <= 0]. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to [\[0,1\]]). *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_exp : t -> float -> float
(** [sample_exp t mean] draws from an exponential distribution. *)

val sample_geometric : t -> float -> int
(** [sample_geometric t p] is the number of failures before the first success
    of a Bernoulli([p]) process; [p] is clamped away from 0. *)

val pick_weighted : t -> ('a * float) array -> 'a
(** Weighted choice over a non-empty array of (value, weight >= 0) pairs with
    positive total weight. *)
