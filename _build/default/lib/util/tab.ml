type align = Left | Right

type t = {
  title : string;
  header : (string * align) list;
  mutable rows : string list list; (* reversed *)
  mutable captions : string list; (* reversed *)
}

let create ~title ~header = { title; header; rows = []; captions = [] }

let row t cells = t.rows <- cells :: t.rows

let rowf t fmt = Printf.ksprintf (fun s -> row t [ s ]) fmt

let caption t s = t.captions <- s :: t.captions

let render t =
  let ncols = List.length t.header in
  let pad cells =
    let n = List.length cells in
    if n >= ncols then cells else cells @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.rev_map pad t.rows in
  let headers = List.map fst t.header in
  let widths = Array.of_list (List.map String.length headers) in
  let fit cells =
    List.iteri
      (fun i c -> if i < ncols then widths.(i) <- max widths.(i) (String.length c))
      cells
  in
  List.iter fit rows;
  let fmt_cell i c =
    let w = widths.(i) in
    let a = snd (List.nth t.header i) in
    match a with
    | Left -> Printf.sprintf "%-*s" w c
    | Right -> Printf.sprintf "%*s" w c
  in
  let fmt_row cells = "| " ^ String.concat " | " (List.mapi fmt_cell cells) ^ " |" in
  let sep =
    "+" ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)) ^ "+"
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (sep ^ "\n");
  Buffer.add_string buf (fmt_row headers ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (fmt_row r ^ "\n")) rows;
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun c -> Buffer.add_string buf ("  " ^ c ^ "\n")) (List.rev t.captions);
  Buffer.contents buf

let to_string = render

let csv_cell c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let to_csv t =
  let ncols = List.length t.header in
  let pad cells =
    let n = List.length cells in
    if n >= ncols then cells else cells @ List.init (ncols - n) (fun _ -> "")
  in
  let line cells = String.concat "," (List.map csv_cell cells) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (line (List.map fst t.header) ^ "\n");
  List.iter
    (fun r -> Buffer.add_string buf (line (pad r) ^ "\n"))
    (List.rev t.rows);
  Buffer.contents buf

let save_csv t path =
  let oc = open_out path in
  output_string oc (to_csv t);
  close_out oc

let print t = print_string (render t)

let pct x = Printf.sprintf "%.1f%%" x

let fl ?(dec = 2) x = Printf.sprintf "%.*f" dec x

let times x = Printf.sprintf "%.2fx" x
