(** Fixed-width text tables for experiment output.

    Every benchmark prints its table/figure through this module so all
    reproductions share one look: a title line, a header, aligned columns and
    an optional caption comparing against the paper's reported numbers. *)

type align = Left | Right

type t

val create : title:string -> header:(string * align) list -> t
(** New table with the given column headers. *)

val row : t -> string list -> unit
(** Append a row; short rows are padded with empty cells. *)

val rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** [rowf t fmt ...] appends a single-cell row (used for separators/notes). *)

val caption : t -> string -> unit
(** Add a caption line printed below the table. *)

val print : t -> unit
(** Render to stdout. *)

val to_string : t -> string
(** Render to a string. *)

val to_csv : t -> string
(** Comma-separated rendering (header + rows; captions omitted); cells
    containing commas or quotes are quoted. *)

val save_csv : t -> string -> unit
(** Write {!to_csv} to a file. *)

val pct : float -> string
(** Format a percentage with one decimal, e.g. ["3.5%"]. *)

val fl : ?dec:int -> float -> string
(** Format a float with [dec] decimals (default 2). *)

val times : float -> string
(** Format a speedup, e.g. ["1.57x"]. *)
