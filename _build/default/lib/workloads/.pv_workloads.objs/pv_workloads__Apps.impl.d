lib/workloads/apps.ml: Driver List Pv_kernel
