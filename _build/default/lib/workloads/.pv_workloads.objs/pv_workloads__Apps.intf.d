lib/workloads/apps.mli:
