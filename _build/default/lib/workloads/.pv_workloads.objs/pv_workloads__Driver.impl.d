lib/workloads/driver.ml: Array List Pv_isa
