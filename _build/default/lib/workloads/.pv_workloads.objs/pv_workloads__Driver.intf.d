lib/workloads/driver.mli: Pv_isa
