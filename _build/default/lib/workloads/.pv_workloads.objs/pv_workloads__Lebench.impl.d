lib/workloads/lebench.ml: Driver List Pv_kernel
