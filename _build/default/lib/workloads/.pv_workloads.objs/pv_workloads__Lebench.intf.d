lib/workloads/lebench.mli:
