module I = Pv_isa.Insn
module Asm = Pv_isa.Asm
module Layout = Pv_isa.Layout
module Program = Pv_isa.Program

let build ~iterations ~sequence ~user_work ~base_fid =
  let a = Asm.create () in
  let outer = Asm.fresh_label a in
  let outer_done = Asm.fresh_label a in
  Asm.li a 6 0;
  Asm.li a 7 iterations;
  Asm.li a 14 0;
  Asm.place a outer;
  Asm.branch a I.Ge 6 7 outer_done;
  (* User-mode compute: a small loop over the process's user buffer. *)
  if user_work > 0 then begin
    let inner = Asm.fresh_label a in
    let inner_done = Asm.fresh_label a in
    Asm.li a 4 0;
    Asm.li a 5 user_work;
    Asm.li a 9 Layout.user_data_base;
    Asm.place a inner;
    Asm.branch a I.Ge 4 5 inner_done;
    Asm.alui a I.Mul 10 4 64;
    Asm.alui a I.And 10 10 8128;
    Asm.alu a I.Add 10 9 10;
    Asm.load a 11 10 0;
    Asm.alu a I.Add 12 12 11;
    Asm.alui a I.Add 4 4 1;
    Asm.jump a inner;
    Asm.place a inner_done
  end;
  (* The system-call sequence. *)
  List.iter
    (fun (nr, args) ->
      Asm.li a 0 nr;
      let arg i = if i < Array.length args then args.(i) else 0 in
      Asm.li a 1 (arg 0);
      Asm.li a 2 (arg 1);
      Asm.li a 3 (arg 2);
      Asm.syscall a)
    sequence;
  Asm.alui a I.Add 6 6 1;
  Asm.jump a outer;
  Asm.place a outer_done;
  Asm.halt a;
  [
    {
      Program.fid = base_fid;
      name = "driver";
      space = Layout.User;
      body = Asm.finish a;
    };
  ]

let syscalls_of sequence = List.sort_uniq compare (List.map fst sequence)
