(** Userspace driver programs: a measurement loop that performs a fixed
    system-call sequence per iteration, interleaved with user-mode compute.

    The generated program is a single user function: per iteration it runs a
    small user compute loop (ALU + loads over the process's user buffer) and
    then issues each system call of the sequence with its arguments in
    [r0..r3].  The loop ends with [Halt]. *)

val build :
  iterations:int ->
  sequence:(int * int array) list ->
  user_work:int ->
  base_fid:int ->
  Pv_isa.Program.func list
(** [user_work] is the trip count of the per-iteration user compute loop
    (about 5 instructions including one load per trip). *)

val syscalls_of : (int * int array) list -> int list
(** Distinct syscall numbers of a sequence. *)
