module Sysno = Pv_kernel.Sysno

type test = {
  name : string;
  sequence : (int * int array) list;
  iterations : int;
  user_work : int;
}

let t name sequence iterations user_work = { name; sequence; iterations; user_work }

let tests =
  [
    t "ref" [ (Sysno.sys_getpid, [||]) ] 200 4;
    t "read" [ (Sysno.sys_read, [| 4096 |]) ] 60 6;
    t "big-read" [ (Sysno.sys_read, [| 16384 |]) ] 20 6;
    t "write" [ (Sysno.sys_write, [| 4096 |]) ] 60 6;
    t "big-write" [ (Sysno.sys_write, [| 16384 |]) ] 20 6;
    t "mmap" [ (Sysno.sys_mmap, [| 1 |]); (Sysno.sys_munmap, [||]) ] 40 4;
    t "big-mmap" [ (Sysno.sys_mmap, [| 16 |]); (Sysno.sys_munmap, [||]) ] 15 4;
    t "munmap" [ (Sysno.sys_mmap, [| 4 |]); (Sysno.sys_munmap, [||]) ] 30 4;
    t "page-fault" [ (Sysno.sys_page_fault, [||]) ] 60 4;
    t "big-page-fault"
      (List.init 8 (fun _ -> (Sysno.sys_page_fault, [||])))
      15 4;
    t "fork" [ (Sysno.sys_fork, [| 4 |]) ] 30 4;
    t "big-fork" [ (Sysno.sys_fork, [| 64 |]) ] 8 4;
    t "thread-create" [ (Sysno.sys_thread_create, [| 2 |]) ] 30 4;
    t "send" [ (Sysno.sys_send, [| 1024 |]) ] 60 6;
    t "recv" [ (Sysno.sys_recv, [| 1024 |]) ] 60 6;
    t "select" [ (Sysno.sys_select, [| 64 |]) ] 50 4;
    t "poll" [ (Sysno.sys_poll, [| 64 |]) ] 50 4;
    t "epoll" [ (Sysno.sys_epoll_wait, [| 64 |]) ] 50 4;
    t "context-switch" [ (Sysno.sys_context_switch, [||]) ] 100 4;
  ]

let find name = List.find (fun x -> x.name = name) tests

let syscalls test = Driver.syscalls_of test.sequence

let all_syscalls =
  List.sort_uniq compare (List.concat_map syscalls tests)

let scaled test ~factor =
  {
    test with
    iterations = max 2 (int_of_float (float_of_int test.iterations *. factor));
  }
