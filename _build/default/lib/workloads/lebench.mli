(** The LEBench microbenchmark suite (Ren et al., SOSP'19), as used in the
    paper's Figure 9.2: each test exercises one kernel operation in a tight
    measurement loop.  Iteration counts are scaled for simulation; relative
    latencies across defense schemes are what the experiment reports. *)

type test = {
  name : string;
  sequence : (int * int array) list;  (** system calls per iteration *)
  iterations : int;
  user_work : int;
}

val tests : test list
(** ref (getpid), read/big-read, write/big-write, mmap/big-mmap, munmap,
    page-fault/big-page-fault, fork/big-fork, thread-create, send, recv,
    select, poll, epoll, context-switch. *)

val find : string -> test
(** Raises [Not_found]. *)

val syscalls : test -> int list
val all_syscalls : int list
(** Union over the suite (for kernel-image realization). *)

val scaled : test -> factor:float -> test
(** Scale the iteration count (min 2). *)
