test/main.ml: Alcotest Test_attacks Test_core Test_experiments Test_isa Test_isvgen Test_kernel Test_oracle Test_pipeline Test_pool Test_scanner Test_sim Test_uarch Test_util
