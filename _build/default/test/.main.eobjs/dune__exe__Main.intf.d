test/main.mli:
