test/test_attacks.ml: Alcotest List Perspective Printf Pv_attacks
