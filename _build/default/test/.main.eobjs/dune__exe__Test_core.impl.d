test/test_core.ml: Alcotest Hashtbl List Option Perspective Pv_isa Pv_uarch Pv_util QCheck QCheck_alcotest
