test/test_experiments.ml: Alcotest Lazy List Printf Pv_experiments Pv_hwmodel Pv_util Pv_workloads String
