test/test_isa.ml: Alcotest Array List Pv_isa
