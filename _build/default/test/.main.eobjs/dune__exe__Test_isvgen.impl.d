test/test_isvgen.ml: Alcotest List Perspective Pv_isvgen Pv_kernel Pv_util
