test/test_kernel.ml: Alcotest Array List Option Printf Pv_isa Pv_kernel Pv_util Pv_workloads QCheck QCheck_alcotest
