test/test_oracle.ml: Alcotest Array List Printf Pv_isa Pv_uarch Pv_util
