test/test_pipeline.ml: Alcotest Array List Perspective Printf Pv_isa Pv_uarch QCheck QCheck_alcotest
