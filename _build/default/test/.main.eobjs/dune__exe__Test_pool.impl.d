test/test_pool.ml: Alcotest Atomic Domain Fun List Printf Pv_experiments Pv_uarch Pv_util Pv_workloads
