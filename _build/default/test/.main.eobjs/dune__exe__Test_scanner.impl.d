test/test_scanner.ml: Alcotest List Pv_kernel Pv_scanner Pv_util
