test/test_sim.ml: Alcotest Array List Perspective Printf Pv_isa Pv_kernel Pv_sim Pv_uarch Pv_util Pv_workloads
