test/test_uarch.ml: Alcotest List Printf Pv_isa Pv_uarch QCheck QCheck_alcotest
