test/test_util.ml: Alcotest Array Gen Hashtbl Int List Option Printf Pv_util QCheck QCheck_alcotest Set String
