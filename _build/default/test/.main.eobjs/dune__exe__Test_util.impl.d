test/test_util.ml: Alcotest Array Hashtbl List Option Pv_util QCheck QCheck_alcotest String
