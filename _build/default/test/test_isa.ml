(* Tests for Pv_isa: instruction semantics, address layout, memory,
   programs, the assembler and the reference interpreter. *)

module I = Pv_isa.Insn
module Layout = Pv_isa.Layout
module Mem = Pv_isa.Mem
module Program = Pv_isa.Program
module Asm = Pv_isa.Asm
module Iss = Pv_isa.Iss

let check = Alcotest.check

let test_eval_binop () =
  check Alcotest.int "add" 7 (I.eval_binop I.Add 3 4);
  check Alcotest.int "sub" (-1) (I.eval_binop I.Sub 3 4);
  check Alcotest.int "and" 2 (I.eval_binop I.And 3 6);
  check Alcotest.int "or" 7 (I.eval_binop I.Or 3 6);
  check Alcotest.int "xor" 5 (I.eval_binop I.Xor 3 6);
  check Alcotest.int "shl" 12 (I.eval_binop I.Shl 3 2);
  check Alcotest.int "shr" 1 (I.eval_binop I.Shr 6 2);
  check Alcotest.int "mul" 12 (I.eval_binop I.Mul 3 4)

let test_eval_cond () =
  Alcotest.(check bool) "eq" true (I.eval_cond I.Eq 3 3);
  Alcotest.(check bool) "ne" true (I.eval_cond I.Ne 3 4);
  Alcotest.(check bool) "lt" true (I.eval_cond I.Lt 3 4);
  Alcotest.(check bool) "ge" true (I.eval_cond I.Ge 4 4)

let test_classifiers () =
  Alcotest.(check bool) "load" true (I.is_load (I.Load (0, 1, 0)));
  Alcotest.(check bool) "store" true (I.is_store (I.Store (0, 1, 0)));
  Alcotest.(check bool) "branch" true (I.is_branch (I.Branch (I.Eq, 0, 1, 2)));
  Alcotest.(check bool) "jump is control" true (I.is_control (I.Jump 0));
  Alcotest.(check bool) "ret is control" true (I.is_control I.Ret);
  Alcotest.(check bool) "fence serializes" true (I.is_serializing I.Fence);
  Alcotest.(check bool) "alu not control" false (I.is_control (I.Alu (I.Add, 0, 1, 2)))

let test_pp () =
  check Alcotest.string "load pp" "load r1, [r2+8]" (I.to_string (I.Load (1, 2, 8)));
  check Alcotest.string "branch pp" "bge r1, r2, @5"
    (I.to_string (I.Branch (I.Ge, 1, 2, 5)))

let test_layout_roundtrip () =
  List.iter
    (fun (space, fid, idx) ->
      let va = Layout.insn_va space fid idx in
      match Layout.decode_code_va va with
      | Some (s, f, i) ->
        Alcotest.(check bool) "space" true (s = space);
        check Alcotest.int "fid" fid f;
        check Alcotest.int "idx" idx i
      | None -> Alcotest.fail "decode failed")
    [
      (Layout.Kernel, 0, 0);
      (Layout.Kernel, 123, 1023);
      (Layout.User, 0, 0);
      (Layout.User, 999, 511);
    ]

let test_layout_directmap () =
  let pa = 12345 * 4096 in
  let va = Layout.direct_map_va pa in
  check Alcotest.(option int) "inverse" (Some pa) (Layout.pa_of_direct_map va);
  check Alcotest.(option int) "non-dm" None (Layout.pa_of_direct_map Layout.user_data_base)

let test_layout_spaces () =
  Alcotest.(check bool) "kernel code is kernel" true
    (Layout.space_of_va Layout.kernel_code_base = Layout.Kernel);
  Alcotest.(check bool) "user data is user" true
    (Layout.space_of_va Layout.user_data_base = Layout.User);
  Alcotest.(check bool) "direct map is kernel" true
    (Layout.space_of_va (Layout.direct_map_va 0) = Layout.Kernel)

let test_phys_key_asid () =
  let uva = Layout.user_data_base + 64 in
  Alcotest.(check bool) "user keys differ per asid" true
    (Layout.phys_key ~asid:1 uva <> Layout.phys_key ~asid:2 uva);
  let kva = Layout.direct_map_va 4096 in
  check Alcotest.int "kernel keys shared" (Layout.phys_key ~asid:1 kva)
    (Layout.phys_key ~asid:2 kva)

let test_phys_key_no_collision () =
  (* User keys must never collide with kernel-half keys. *)
  let kva = Layout.kernel_code_base in
  for asid = 0 to 64 do
    let k = Layout.phys_key ~asid (Layout.user_data_base + (asid * 8)) in
    Alcotest.(check bool) "no kernel collision" true (k <> kva)
  done

let test_mem () =
  let m = Mem.create () in
  check Alcotest.int "default zero" 0 (Mem.load m 4096);
  Mem.store m 4096 42;
  check Alcotest.int "stored" 42 (Mem.load m 4096);
  check Alcotest.int "word granular" 42 (Mem.load m 4100);
  Mem.store m 4104 7;
  check Alcotest.int "distinct words" 42 (Mem.load m 4096);
  check Alcotest.int "size" 2 (Mem.size m);
  Mem.clear m;
  check Alcotest.int "cleared" 0 (Mem.load m 4096)

let test_asm_labels () =
  let a = Asm.create () in
  let l = Asm.fresh_label a in
  Asm.li a 1 0;
  Asm.branch a I.Eq 1 1 l;
  Asm.li a 2 5;
  Asm.place a l;
  Asm.halt a;
  let body = Asm.finish a in
  check Alcotest.int "length" 4 (Array.length body);
  (match body.(1) with
  | I.Branch (I.Eq, 1, 1, 3) -> ()
  | _ -> Alcotest.fail "branch target not resolved to 3");
  ()

let test_asm_unplaced_label () =
  let a = Asm.create () in
  let l = Asm.fresh_label a in
  Asm.jump a l;
  Alcotest.check_raises "unplaced" (Invalid_argument "Asm.finish: unplaced label")
    (fun () -> ignore (Asm.finish a))

let test_asm_double_place () =
  let a = Asm.create () in
  let l = Asm.fresh_label a in
  Asm.place a l;
  Alcotest.check_raises "double place" (Invalid_argument "Asm.place: label placed twice")
    (fun () -> Asm.place a l)

let func fid name space body = { Program.fid; name; space; body }

let test_program_validation () =
  let ok = Program.of_funcs [ func 0 "a" Layout.User [| I.Halt |] ] in
  check Alcotest.int "one func" 1 (Program.length ok);
  Alcotest.(check bool) "bad branch rejected" true
    (try
       ignore (Program.of_funcs [ func 0 "a" Layout.User [| I.Jump 5 |] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad callee rejected" true
    (try
       ignore (Program.of_funcs [ func 0 "a" Layout.User [| I.Call 3 |] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "sparse fids rejected" true
    (try
       ignore (Program.of_funcs [ { (func 0 "a" Layout.User [| I.Halt |]) with Program.fid = 1 } ]);
       false
     with Invalid_argument _ -> true)

let test_program_fetch () =
  let p = Program.of_funcs [ func 0 "a" Layout.User [| I.Nop; I.Halt |] ] in
  Alcotest.(check bool) "in range" true (Program.fetch p 0 1 = Some I.Halt);
  Alcotest.(check bool) "past end" true (Program.fetch p 0 2 = None);
  Alcotest.(check bool) "bad fid" true (Program.fetch p 1 0 = None)

let test_program_find () =
  let p = Program.of_funcs [ func 0 "alpha" Layout.User [| I.Halt |] ] in
  Alcotest.(check bool) "found" true (Program.find_by_name p "alpha" <> None);
  Alcotest.(check bool) "missing" true (Program.find_by_name p "beta" = None)

(* --- reference interpreter --- *)

let run_simple body =
  let p = Program.of_funcs [ func 0 "main" Layout.User body ] in
  Iss.run ~asid:1 ~mem:(Mem.create ()) p ~start:0

let test_iss_arith () =
  let r =
    run_simple
      [| I.Limm (1, 6); I.Limm (2, 7); I.Alu (I.Mul, 3, 1, 2); I.Halt |]
  in
  Alcotest.(check bool) "halted" true (r.Iss.outcome = Iss.Halted);
  check Alcotest.int "6*7" 42 r.Iss.regs.(3)

let test_iss_loop () =
  (* sum 0..9 *)
  let a = Asm.create () in
  let loop = Asm.fresh_label a in
  let done_ = Asm.fresh_label a in
  Asm.li a 1 0;
  Asm.li a 2 0;
  Asm.li a 3 10;
  Asm.place a loop;
  Asm.branch a I.Ge 1 3 done_;
  Asm.alu a I.Add 2 2 1;
  Asm.alui a I.Add 1 1 1;
  Asm.jump a loop;
  Asm.place a done_;
  Asm.halt a;
  let r = run_simple (Asm.finish a) in
  check Alcotest.int "sum" 45 r.Iss.regs.(2)

let test_iss_memory () =
  let r =
    run_simple
      [|
        I.Limm (1, Layout.user_data_base);
        I.Limm (2, 99);
        I.Store (1, 2, 8);
        I.Load (3, 1, 8);
        I.Halt;
      |]
  in
  check Alcotest.int "roundtrip" 99 r.Iss.regs.(3)

let test_iss_call_ret () =
  let main = [| I.Limm (1, 1); I.Call 1; I.Alui (I.Add, 1, 1, 100); I.Halt |] in
  let callee = [| I.Alui (I.Add, 1, 1, 10); I.Ret |] in
  let p =
    Program.of_funcs [ func 0 "main" Layout.User main; func 1 "callee" Layout.User callee ]
  in
  let r = Iss.run ~asid:1 ~mem:(Mem.create ()) p ~start:0 in
  check Alcotest.int "1+10+100" 111 r.Iss.regs.(1)

let test_iss_icall () =
  let target_va = Layout.func_base Layout.User 1 in
  let main = [| I.Limm (1, target_va); I.Icall 1; I.Halt |] in
  let callee = [| I.Limm (2, 55); I.Ret |] in
  let p =
    Program.of_funcs [ func 0 "main" Layout.User main; func 1 "callee" Layout.User callee ]
  in
  let r = Iss.run ~asid:1 ~mem:(Mem.create ()) p ~start:0 in
  check Alcotest.int "icall result" 55 r.Iss.regs.(2)

let test_iss_icall_invalid () =
  let r = run_simple [| I.Limm (1, 12345); I.Icall 1; I.Halt |] in
  Alcotest.(check bool) "faults" true
    (match r.Iss.outcome with Iss.Fault _ -> true | _ -> false)

let test_iss_ret_underflow () =
  let r = run_simple [| I.Ret |] in
  Alcotest.(check bool) "faults" true
    (match r.Iss.outcome with Iss.Fault _ -> true | _ -> false)

let test_iss_fuel () =
  let r =
    Iss.run ~fuel:10 ~asid:1 ~mem:(Mem.create ())
      (Program.of_funcs [ func 0 "spin" Layout.User [| I.Jump 0 |] ])
      ~start:0
  in
  Alcotest.(check bool) "out of fuel" true (r.Iss.outcome = Iss.Out_of_fuel);
  check Alcotest.int "steps" 10 r.Iss.steps

let test_iss_syscall_redirect_and_save () =
  (* Kernel clobbers registers; Sysret must restore them (except the hook's
     return-value assignment). *)
  let user =
    [| I.Limm (1, 5); I.Limm (2, 6); I.Syscall; I.Alu (I.Add, 3, 1, 2); I.Halt |]
  in
  let kernel = [| I.Limm (1, 999); I.Limm (2, 999); I.Sysret |] in
  let p =
    Program.of_funcs
      [ func 0 "user" Layout.User user; func 1 "k" Layout.Kernel kernel ]
  in
  let hooks =
    {
      Iss.on_syscall = (fun _ -> Iss.Redirect (1, []));
      on_sysret = (fun regs -> regs.(15) <- 77; Iss.Skip);
      on_insn = None;
    }
  in
  let r = Iss.run ~hooks ~asid:1 ~mem:(Mem.create ()) p ~start:0 in
  check Alcotest.int "restored regs" 11 r.Iss.regs.(3);
  check Alcotest.int "return value" 77 r.Iss.regs.(15)

let test_iss_trace_hook () =
  let seen = ref [] in
  let hooks =
    { Iss.null_hooks with Iss.on_insn = Some (fun fid idx _ -> seen := (fid, idx) :: !seen) }
  in
  let p = Program.of_funcs [ func 0 "m" Layout.User [| I.Nop; I.Halt |] ] in
  ignore (Iss.run ~hooks ~asid:1 ~mem:(Mem.create ()) p ~start:0);
  check Alcotest.int "two instructions observed" 2 (List.length !seen)

let suite =
  [
    ( "isa.insn",
      [
        Alcotest.test_case "binops" `Quick test_eval_binop;
        Alcotest.test_case "conds" `Quick test_eval_cond;
        Alcotest.test_case "classifiers" `Quick test_classifiers;
        Alcotest.test_case "pretty printing" `Quick test_pp;
      ] );
    ( "isa.layout",
      [
        Alcotest.test_case "va roundtrip" `Quick test_layout_roundtrip;
        Alcotest.test_case "direct map" `Quick test_layout_directmap;
        Alcotest.test_case "spaces" `Quick test_layout_spaces;
        Alcotest.test_case "phys keys per asid" `Quick test_phys_key_asid;
        Alcotest.test_case "no key collisions" `Quick test_phys_key_no_collision;
      ] );
    ("isa.mem", [ Alcotest.test_case "word store/load" `Quick test_mem ]);
    ( "isa.asm",
      [
        Alcotest.test_case "label resolution" `Quick test_asm_labels;
        Alcotest.test_case "unplaced label" `Quick test_asm_unplaced_label;
        Alcotest.test_case "double place" `Quick test_asm_double_place;
      ] );
    ( "isa.program",
      [
        Alcotest.test_case "validation" `Quick test_program_validation;
        Alcotest.test_case "fetch" `Quick test_program_fetch;
        Alcotest.test_case "find by name" `Quick test_program_find;
      ] );
    ( "isa.iss",
      [
        Alcotest.test_case "arithmetic" `Quick test_iss_arith;
        Alcotest.test_case "loop" `Quick test_iss_loop;
        Alcotest.test_case "memory" `Quick test_iss_memory;
        Alcotest.test_case "call/ret" `Quick test_iss_call_ret;
        Alcotest.test_case "icall" `Quick test_iss_icall;
        Alcotest.test_case "icall invalid" `Quick test_iss_icall_invalid;
        Alcotest.test_case "ret underflow" `Quick test_iss_ret_underflow;
        Alcotest.test_case "fuel" `Quick test_iss_fuel;
        Alcotest.test_case "syscall save/restore" `Quick test_iss_syscall_redirect_and_save;
        Alcotest.test_case "trace hook" `Quick test_iss_trace_hook;
      ] );
  ]
