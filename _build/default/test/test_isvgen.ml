(* Tests for ISV generation: static reachability, dynamic traces and
   audit-hardened views. *)

module Kernel = Pv_kernel.Kernel
module Callgraph = Pv_kernel.Callgraph
module Process = Pv_kernel.Process
module Sysno = Pv_kernel.Sysno
module Static_isv = Pv_isvgen.Static_isv
module Dynamic_isv = Pv_isvgen.Dynamic_isv
module Audit = Pv_isvgen.Audit
module Isv = Perspective.Isv
module Bitset = Pv_util.Bitset

let check = Alcotest.check

let kernel = Kernel.create ~seed:42 ()

let graph = Kernel.graph kernel

let workload =
  [ (Sysno.sys_read, [| 4096 |]); (Sysno.sys_poll, [| 64 |]); (Sysno.sys_mmap, [| 1 |]);
    (Sysno.sys_munmap, [||]) ]

let proc = Kernel.spawn kernel ~name:"isvgen-test"

let () = Dynamic_isv.profile kernel proc ~workload ~repetitions:40

let ctx = Process.cgroup proc

let syscalls = List.sort_uniq compare (List.map fst workload)

let test_static_kind_and_entries () =
  let isv = Static_isv.generate graph ~syscalls in
  Alcotest.(check bool) "kind" true (Isv.kind isv = Isv.Static);
  List.iter
    (fun nr ->
      Alcotest.(check bool) "entry in view" true
        (Isv.member isv (Callgraph.entry_of_syscall graph nr)))
    syscalls;
  Alcotest.(check bool) "unused syscall's entry outside" false
    (Isv.member isv (Callgraph.entry_of_syscall graph Sysno.sys_fork))

let test_static_excludes_indirect_pool () =
  let nodes = Static_isv.node_set graph ~syscalls in
  let lo, hi = Callgraph.indirect_pool_bounds graph in
  for n = lo to hi - 1 do
    if Bitset.mem nodes n then Alcotest.fail "indirect-only node in static ISV"
  done

let test_static_monotone_in_syscalls () =
  let small = Static_isv.node_set graph ~syscalls:[ Sysno.sys_read ] in
  let big = Static_isv.node_set graph ~syscalls:[ Sysno.sys_read; Sysno.sys_poll ] in
  Alcotest.(check bool) "more syscalls, larger view" true (Bitset.subset small big)

let test_dynamic_traced_and_smaller () =
  let dyn = Dynamic_isv.node_set kernel ~ctx in
  let sta = Static_isv.node_set graph ~syscalls in
  Alcotest.(check bool) "dynamic nonempty" true (Bitset.count dyn > 0);
  Alcotest.(check bool) "dynamic smaller than static" true
    (Bitset.count dyn < Bitset.count sta);
  let isv = Dynamic_isv.generate kernel ~ctx in
  Alcotest.(check bool) "kind" true (Isv.kind isv = Isv.Dynamic)

let test_dynamic_can_include_indirect_targets () =
  (* Dynamic views may contain indirect-pool functions that static analysis
     must exclude — the paper's key advantage of dynamic ISVs. *)
  let dyn = Dynamic_isv.node_set kernel ~ctx in
  let lo, hi = Callgraph.indirect_pool_bounds graph in
  let in_pool = ref 0 in
  for n = lo to hi - 1 do
    if Bitset.mem dyn n then incr in_pool
  done;
  Alcotest.(check bool) "traced indirect targets present" true (!in_pool > 0)

let test_audit_hardening () =
  let dyn = Dynamic_isv.generate kernel ~ctx in
  let some_members =
    List.filteri (fun i _ -> i < 5) (Bitset.elements (Isv.nodes dyn))
  in
  let gadget_nodes = some_members in
  let hardened = Audit.harden dyn ~gadget_nodes in
  Alcotest.(check bool) "kind ISV++" true (Isv.kind hardened = Isv.Plus);
  List.iter
    (fun n -> Alcotest.(check bool) "gadget excluded" false (Isv.member hardened n))
    some_members;
  check Alcotest.int "size shrank by members present"
    (Isv.size dyn - List.length some_members)
    (Isv.size hardened);
  Alcotest.(check bool) "original untouched" true
    (List.for_all (Isv.member dyn) some_members)

let test_audit_blocked_count () =
  let view = Isv.of_nodes Isv.Dynamic (Bitset.of_list 10 [ 1; 2 ]) in
  check Alcotest.int "blocked = outside" 2 (Audit.blocked_gadgets view ~gadget_nodes:[ 1; 5; 6 ])

let suite =
  [
    ( "isvgen.static",
      [
        Alcotest.test_case "entries and kind" `Quick test_static_kind_and_entries;
        Alcotest.test_case "indirect pool excluded" `Quick test_static_excludes_indirect_pool;
        Alcotest.test_case "monotone in syscalls" `Quick test_static_monotone_in_syscalls;
      ] );
    ( "isvgen.dynamic",
      [
        Alcotest.test_case "traced subset" `Quick test_dynamic_traced_and_smaller;
        Alcotest.test_case "indirect targets captured" `Quick
          test_dynamic_can_include_indirect_targets;
      ] );
    ( "isvgen.audit",
      [
        Alcotest.test_case "hardening" `Quick test_audit_hardening;
        Alcotest.test_case "blocked count" `Quick test_audit_blocked_count;
      ] );
  ]
