(* Tests for the synthetic kernel: buddy allocator, secure slab, cgroups,
   processes, syscall table, callgraph synthesis, tracing, code generation
   and the executable kernel image. *)

module Physmem = Pv_kernel.Physmem
module Slab = Pv_kernel.Slab
module Cgroup = Pv_kernel.Cgroup
module Process = Pv_kernel.Process
module Sysno = Pv_kernel.Sysno
module Callgraph = Pv_kernel.Callgraph
module Trace = Pv_kernel.Trace
module Kernel = Pv_kernel.Kernel
module Kimage = Pv_kernel.Kimage
module Codegen = Pv_kernel.Codegen
module Layout = Pv_isa.Layout
module Bitset = Pv_util.Bitset
module Rng = Pv_util.Rng

let check = Alcotest.check

(* --- buddy allocator --- *)

let test_buddy_basic () =
  let pm = Physmem.create ~frames:64 in
  check Alcotest.int "all free" 64 (Physmem.free_frames pm);
  let f = Option.get (Physmem.alloc_pages pm ~order:0 Physmem.Kernel) in
  check Alcotest.int "one allocated" 63 (Physmem.free_frames pm);
  Alcotest.(check bool) "owner" true
    (Physmem.owner_of pm f = Some Physmem.Kernel);
  Physmem.free_pages pm ~frame:f ~order:0;
  check Alcotest.int "freed" 64 (Physmem.free_frames pm);
  Alcotest.(check bool) "no owner" true (Physmem.owner_of pm f = None)

let test_buddy_alignment () =
  let pm = Physmem.create ~frames:64 in
  for order = 0 to 5 do
    match Physmem.alloc_pages pm ~order (Physmem.Cgroup 1) with
    | Some f ->
      check Alcotest.int (Printf.sprintf "order %d aligned" order) 0 (f mod (1 lsl order))
    | None -> Alcotest.fail "allocation failed"
  done

let test_buddy_exhaustion () =
  let pm = Physmem.create ~frames:4 in
  let a = Physmem.alloc_pages pm ~order:2 Physmem.Kernel in
  Alcotest.(check bool) "got block" true (a <> None);
  Alcotest.(check bool) "exhausted" true (Physmem.alloc_pages pm ~order:0 Physmem.Kernel = None)

let test_buddy_coalescing () =
  let pm = Physmem.create ~frames:8 in
  let fs = List.init 8 (fun _ -> Option.get (Physmem.alloc_pages pm ~order:0 Physmem.Kernel)) in
  Alcotest.(check bool) "full" true (Physmem.alloc_pages pm ~order:0 Physmem.Kernel = None);
  List.iter (fun f -> Physmem.free_pages pm ~frame:f ~order:0) fs;
  (* After freeing everything, a maximal block must be allocatable again. *)
  Alcotest.(check bool) "coalesced to order 3" true
    (Physmem.alloc_pages pm ~order:3 Physmem.Kernel <> None)

let test_buddy_double_free () =
  let pm = Physmem.create ~frames:8 in
  let f = Option.get (Physmem.alloc_pages pm ~order:0 Physmem.Kernel) in
  Physmem.free_pages pm ~frame:f ~order:0;
  Alcotest.(check bool) "double free rejected" true
    (try Physmem.free_pages pm ~frame:f ~order:0; false with Invalid_argument _ -> true)

let test_buddy_owner_per_block () =
  let pm = Physmem.create ~frames:16 in
  let f = Option.get (Physmem.alloc_pages pm ~order:2 (Physmem.Cgroup 7)) in
  for i = f to f + 3 do
    Alcotest.(check bool) "block frames owned" true
      (Physmem.owner_of pm i = Some (Physmem.Cgroup 7))
  done

let test_buddy_reassignment () =
  let pm = Physmem.create ~frames:8 in
  let f = Option.get (Physmem.alloc_pages pm ~order:0 (Physmem.Cgroup 1)) in
  Physmem.set_owner pm ~frame:f ~order:0 (Physmem.Cgroup 2);
  Alcotest.(check bool) "new owner" true (Physmem.owner_of pm f = Some (Physmem.Cgroup 2));
  check Alcotest.int "counted" 1 (Physmem.domain_reassignments pm)

let test_frame_va_roundtrip () =
  check Alcotest.(option int) "roundtrip" (Some 17) (Physmem.frame_of_va (Physmem.frame_va 17))

(* No overlap between concurrently live blocks, and frees restore everything:
   a property over random alloc/free traces. *)
let buddy_trace_prop =
  QCheck.Test.make ~name:"buddy: no overlap, conservation of frames" ~count:60
    QCheck.(small_list (pair (int_bound 3) bool))
    (fun ops ->
      let pm = Physmem.create ~frames:64 in
      let live = ref [] in
      let ok = ref true in
      List.iter
        (fun (order, do_free) ->
          if do_free then (
            match !live with
            | (f, o) :: rest ->
              Physmem.free_pages pm ~frame:f ~order:o;
              live := rest
            | [] -> ())
          else
            match Physmem.alloc_pages pm ~order Physmem.Kernel with
            | Some f ->
              (* overlap check against live blocks *)
              List.iter
                (fun (g, o) ->
                  let disjoint = f + (1 lsl order) <= g || g + (1 lsl o) <= f in
                  if not disjoint then ok := false)
                !live;
              live := (f, order) :: !live
            | None -> ())
        ops;
      let live_frames = List.fold_left (fun acc (_, o) -> acc + (1 lsl o)) 0 !live in
      !ok && Physmem.free_frames pm = 64 - live_frames)

(* --- slab allocator --- *)

let test_slab_class_rounding () =
  let pm = Physmem.create ~frames:64 in
  let s = Slab.create ~mode:Slab.Secure pm in
  let va = Option.get (Slab.kmalloc s ~owner:(Physmem.Cgroup 1) ~size:33) in
  Alcotest.(check bool) "owner tracked" true
    (Slab.owner_of_object s va = Some (Physmem.Cgroup 1));
  check Alcotest.int "one live" 1 (Slab.live_objects s);
  check Alcotest.int "rounded to 64" 64 (Slab.active_bytes s)

let test_slab_secure_isolation () =
  let pm = Physmem.create ~frames:256 in
  let s = Slab.create ~mode:Slab.Secure pm in
  let vas = ref [] in
  for i = 1 to 200 do
    let owner = Physmem.Cgroup (1 + (i mod 3)) in
    match Slab.kmalloc s ~owner ~size:32 with
    | Some va -> vas := va :: !vas
    | None -> Alcotest.fail "oom"
  done;
  List.iter
    (fun va ->
      Alcotest.(check bool) "no cross-owner collocation" false
        (Slab.shares_page_with_other_owner s va))
    !vas

let test_slab_shared_collocates () =
  let pm = Physmem.create ~frames:64 in
  let s = Slab.create ~mode:Slab.Shared pm in
  let a = Option.get (Slab.kmalloc s ~owner:(Physmem.Cgroup 1) ~size:8) in
  let _b = Option.get (Slab.kmalloc s ~owner:(Physmem.Cgroup 2) ~size:8) in
  Alcotest.(check bool) "distrusting objects share a page" true
    (Slab.shares_page_with_other_owner s a)

let test_slab_page_return () =
  let pm = Physmem.create ~frames:64 in
  let s = Slab.create ~mode:Slab.Secure pm in
  let free_before = Physmem.free_frames pm in
  let va = Option.get (Slab.kmalloc s ~owner:(Physmem.Cgroup 1) ~size:128) in
  check Alcotest.int "page taken" (free_before - 1) (Physmem.free_frames pm);
  Slab.kfree s va;
  check Alcotest.int "page returned" free_before (Physmem.free_frames pm);
  check Alcotest.int "return counted" 1 (Slab.page_returns s);
  check Alcotest.int "free counted" 1 (Slab.total_frees s)

let test_slab_double_free () =
  let pm = Physmem.create ~frames:64 in
  let s = Slab.create ~mode:Slab.Secure pm in
  let va = Option.get (Slab.kmalloc s ~owner:Physmem.Kernel ~size:64) in
  let vb = Option.get (Slab.kmalloc s ~owner:Physmem.Kernel ~size:64) in
  ignore vb;
  Slab.kfree s va;
  Alcotest.(check bool) "double free rejected" true
    (try Slab.kfree s va; false with Invalid_argument _ -> true)

let test_slab_oversize () =
  let pm = Physmem.create ~frames:64 in
  let s = Slab.create ~mode:Slab.Secure pm in
  let va = Option.get (Slab.kmalloc s ~owner:(Physmem.Cgroup 1) ~size:10_000) in
  Alcotest.(check bool) "owner known" true
    (Slab.owner_of_object s va = Some (Physmem.Cgroup 1));
  Slab.kfree s va;
  check Alcotest.int "all frames back" 64 (Physmem.free_frames pm)

let test_slab_utilization () =
  let pm = Physmem.create ~frames:64 in
  let s = Slab.create ~mode:Slab.Secure pm in
  check (Alcotest.float 0.0) "empty = 1.0" 1.0 (Slab.utilization s);
  let _ = Slab.kmalloc s ~owner:Physmem.Kernel ~size:2048 in
  check (Alcotest.float 1e-9) "half page" 0.5 (Slab.utilization s)

let slab_accounting_prop =
  QCheck.Test.make ~name:"slab: live bytes consistent over random traces" ~count:60
    QCheck.(small_list (pair (int_bound 7) bool))
    (fun ops ->
      let pm = Physmem.create ~frames:256 in
      let s = Slab.create ~mode:Slab.Secure pm in
      let live = ref [] in
      let expected = ref 0 in
      List.iter
        (fun (cls_idx, do_free) ->
          if do_free then (
            match !live with
            | (va, bytes) :: rest ->
              Slab.kfree s va;
              expected := !expected - bytes;
              live := rest
            | [] -> ())
          else
            let size = Slab.size_classes.(cls_idx) in
            match Slab.kmalloc s ~owner:(Physmem.Cgroup (1 + cls_idx)) ~size with
            | Some va ->
              expected := !expected + size;
              live := (va, size) :: !live
            | None -> ())
        ops;
      Slab.active_bytes s = !expected && Slab.live_objects s = List.length !live)

(* --- cgroups / processes / sysno --- *)

let test_cgroup () =
  let c = Cgroup.create () in
  let a = Cgroup.add c "web" in
  let b = Cgroup.add c "db" in
  check Alcotest.int "dense ids" 1 a;
  check Alcotest.int "dense ids" 2 b;
  check Alcotest.string "name" "web" (Cgroup.name c a);
  check Alcotest.int "count" 2 (Cgroup.count c);
  check Alcotest.(list int) "ids" [ 1; 2 ] (Cgroup.ids c)

let test_process_pages () =
  let p = Process.create ~pid:1 ~asid:1 ~cgroup:1 in
  Process.map_page p ~va:0x1000 ~frame:7;
  check Alcotest.(option int) "mapped" (Some 7) (Process.frame_for p ~va:0x1234);
  check Alcotest.(option int) "unmap returns" (Some 7) (Process.unmap_page p ~va:0x1000);
  check Alcotest.(option int) "gone" None (Process.frame_for p ~va:0x1000)

let test_process_heap () =
  let p = Process.create ~pid:1 ~asid:1 ~cgroup:1 in
  let a = Process.fresh_heap_va p ~pages:2 in
  let b = Process.fresh_heap_va p ~pages:1 in
  check Alcotest.int "no overlap" (a + (2 * Layout.page_bytes)) b

let test_sysno () =
  check Alcotest.int "count" 340 Sysno.count;
  check Alcotest.string "read" "read" (Sysno.name Sysno.sys_read);
  check Alcotest.(option int) "lookup" (Some Sysno.sys_poll) (Sysno.lookup "poll");
  Alcotest.(check bool) "unknown" true (Sysno.lookup "nonexistent" = None);
  Alcotest.(check bool) "generic names" true (Sysno.name 300 = "sys_300")

(* --- callgraph --- *)

let graph = Callgraph.synthesize 42

let test_graph_shape () =
  check Alcotest.int "nodes" 28_000 (Callgraph.nnodes graph);
  for nr = 0 to Sysno.count - 1 do
    let e = Callgraph.entry_of_syscall graph nr in
    Alcotest.(check bool) "entry region" true (Callgraph.region graph e = `Entry);
    check Alcotest.(option int) "entry inverse" (Some nr) (Callgraph.syscall_of_entry graph e)
  done

let test_graph_determinism () =
  let g2 = Callgraph.synthesize 42 in
  check Alcotest.(list int) "same edges" (Callgraph.direct_callees graph 100)
    (Callgraph.direct_callees g2 100);
  let g3 = Callgraph.synthesize 43 in
  Alcotest.(check bool) "different seed differs" true
    (List.exists
       (fun n -> Callgraph.direct_callees graph n <> Callgraph.direct_callees g3 n)
       (List.init 500 (fun i -> i)))

let test_graph_static_reachability () =
  let entry = Callgraph.entry_of_syscall graph Sysno.sys_read in
  let reach = Callgraph.static_reachable graph [ entry ] in
  Alcotest.(check bool) "entry reachable" true (Bitset.mem reach entry);
  List.iter
    (fun v -> Alcotest.(check bool) "children reachable" true (Bitset.mem reach v))
    (Callgraph.direct_callees graph entry);
  Alcotest.(check bool) "not the whole kernel" true
    (Bitset.count reach < Callgraph.nnodes graph / 4)

let test_graph_indirect_only () =
  (* Indirect-pool nodes are invisible to static analysis but reachable once
     indirect edges are followed. *)
  let entries = List.init Sysno.count (fun nr -> Callgraph.entry_of_syscall graph nr) in
  let static = Callgraph.static_reachable graph entries in
  let full = Callgraph.reachable_with_indirect graph entries in
  Alcotest.(check bool) "static subset of full" true (Bitset.subset static full);
  let lo, hi = Callgraph.indirect_pool_bounds graph in
  let pool_static = ref 0 and pool_full = ref 0 in
  for n = lo to hi - 1 do
    if Bitset.mem static n then incr pool_static;
    if Bitset.mem full n then incr pool_full
  done;
  check Alcotest.int "pool invisible statically" 0 !pool_static;
  Alcotest.(check bool) "pool visible with indirect edges" true (!pool_full > 0);
  for n = lo to hi - 1 do
    if not (Bitset.mem static n) then
      Alcotest.(check bool) "indirect_only flag" true (Callgraph.indirect_only graph n)
  done

let test_graph_trace_subset () =
  let rng = Rng.create 1 in
  let installed = Callgraph.default_installed graph ~app_seed:1 in
  let entry = Callgraph.entry_of_syscall graph Sysno.sys_poll in
  let static = Callgraph.static_reachable graph [ entry ] in
  let full = Callgraph.reachable_with_indirect graph [ entry ] in
  for _ = 1 to 10 do
    let nodes = Callgraph.sample_trace graph rng ~syscall:Sysno.sys_poll ~installed in
    List.iter
      (fun n ->
        Alcotest.(check bool) "trace within indirect closure" true (Bitset.mem full n))
      nodes;
    ignore static
  done

let test_graph_installed_deterministic () =
  let site =
    (* find some dispatch site *)
    let rec go n =
      if Callgraph.indirect_targets graph n <> [] then n else go (n + 1)
    in
    go 0
  in
  let a = Callgraph.default_installed graph ~app_seed:5 site in
  let b = Callgraph.default_installed graph ~app_seed:5 site in
  Alcotest.(check bool) "deterministic" true (a = b);
  (match a with
  | Some t ->
    Alcotest.(check bool) "installed among candidates" true
      (List.mem t (Callgraph.indirect_targets graph site))
  | None -> Alcotest.fail "no installed target")

let test_graph_depths () =
  check Alcotest.int "entries at depth 0" 0 (Callgraph.depth graph 0);
  let lo, _ = Callgraph.indirect_pool_bounds graph in
  Alcotest.(check bool) "pool unreachable directly" true
    (Callgraph.depth graph lo = max_int)

(* --- tracing --- *)

let test_trace () =
  let t = Trace.create graph in
  Trace.record_syscall t ~ctx:1 Sysno.sys_read;
  Trace.record_nodes t ~ctx:1 [ 5; 6; 5 ];
  check Alcotest.int "nodes" 2 (Bitset.count (Trace.nodes t ~ctx:1));
  check Alcotest.(list int) "syscalls" [ Sysno.sys_read ] (Trace.syscalls_used t ~ctx:1);
  check Alcotest.int "count" 1 (Trace.syscall_count t ~ctx:1);
  check Alcotest.int "other ctx empty" 0 (Bitset.count (Trace.nodes t ~ctx:2));
  Trace.reset t ~ctx:1;
  check Alcotest.int "reset" 0 (Bitset.count (Trace.nodes t ~ctx:1))

(* --- codegen --- *)

let test_codegen_bodies_valid () =
  let shapes =
    [
      Codegen.Loop Codegen.simple_loop;
      Codegen.Leaf { loads = 4; stores = 2; alu = 3; shared = true };
      Codegen.Dispatch { slots = 8; post = Codegen.simple_loop };
    ]
  in
  List.iter
    (fun shape ->
      let body = Codegen.gen_body shape ~tail:`Ret in
      Alcotest.(check bool) "non-empty" true (Array.length body > 0);
      Alcotest.(check bool) "fits page" true
        (Array.length body <= Layout.max_insns_per_func);
      Alcotest.(check bool) "ends with ret" true
        (body.(Array.length body - 1) = Pv_isa.Insn.Ret))
    shapes

let test_codegen_loop_runs () =
  (* A generated loop body must execute architecturally and terminate. *)
  let body = Codegen.gen_body (Codegen.Loop Codegen.simple_loop) ~tail:`Ret in
  let main =
    Array.append
      [|
        Pv_isa.Insn.Limm (8, Layout.direct_map_va 0);
        Pv_isa.Insn.Limm (9, Layout.direct_map_va 4096);
        Pv_isa.Insn.Limm (10, Layout.kernel_global_base);
        Pv_isa.Insn.Limm (11, 16);
        Pv_isa.Insn.Limm (12, 1);
        Pv_isa.Insn.Limm (13, Layout.direct_map_va 8192);
        Pv_isa.Insn.Call 1;
      |]
      [| Pv_isa.Insn.Halt |]
  in
  let prog =
    Pv_isa.Program.of_funcs
      [
        { Pv_isa.Program.fid = 0; name = "m"; space = Layout.Kernel; body = main };
        { Pv_isa.Program.fid = 1; name = "loop"; space = Layout.Kernel; body };
      ]
  in
  let mem = Pv_isa.Mem.create () in
  Codegen.seed_page mem (Rng.create 1) (Layout.direct_map_va 0);
  let r = Pv_isa.Iss.run ~asid:1 ~mem prog ~start:0 in
  Alcotest.(check bool) "halts" true (r.Pv_isa.Iss.outcome = Pv_isa.Iss.Halted)

let test_codegen_pow2_validation () =
  Alcotest.(check bool) "bad shared_every rejected" true
    (try
       ignore
         (Codegen.gen_body
            (Codegen.Loop { Codegen.simple_loop with Codegen.shared_every = 3 })
            ~tail:`Ret);
       false
     with Invalid_argument _ -> true)

(* --- kernel facade + kimage --- *)

let test_kernel_spawn () =
  let k = Kernel.create ~seed:1 () in
  let p = Kernel.spawn k ~name:"app" in
  Alcotest.(check bool) "has kstack" true (Process.kstack p <> None);
  Alcotest.(check bool) "has working set" true (Array.length (Process.data_frames p) > 0);
  Alcotest.(check bool) "kstack owned by cgroup" true
    (Physmem.owner_of (Kernel.phys k) (Option.get (Process.kstack p))
    = Some (Physmem.Cgroup (Process.cgroup p)))

let test_kernel_mmap_ownership () =
  let k = Kernel.create ~seed:1 () in
  let p = Kernel.spawn k ~name:"app" in
  let eff = Kernel.exec_syscall k p ~nr:Sysno.sys_mmap ~args:[| 4 |] in
  check Alcotest.int "four frames" 4 (List.length eff.Kernel.new_frames);
  List.iter
    (fun f ->
      Alcotest.(check bool) "owned by caller" true
        (Physmem.owner_of (Kernel.phys k) f = Some (Physmem.Cgroup (Process.cgroup p))))
    eff.Kernel.new_frames;
  let eff2 = Kernel.exec_syscall k p ~nr:Sysno.sys_munmap ~args:[||] in
  check Alcotest.int "frames freed" 4 (List.length eff2.Kernel.freed_frames);
  List.iter
    (fun f ->
      Alcotest.(check bool) "free after munmap" true
        (Physmem.owner_of (Kernel.phys k) f = None))
    eff2.Kernel.freed_frames

let test_kernel_trace_feeds () =
  let k = Kernel.create ~seed:1 () in
  let p = Kernel.spawn k ~name:"app" in
  ignore (Kernel.exec_syscall k p ~nr:Sysno.sys_read ~args:[| 4096 |]);
  let ctx = Process.cgroup p in
  Alcotest.(check bool) "nodes traced" true
    (Bitset.count (Trace.nodes (Kernel.trace k) ~ctx) > 0);
  check Alcotest.(list int) "syscall recorded" [ Sysno.sys_read ]
    (Trace.syscalls_used (Kernel.trace k) ~ctx)

let test_kernel_owner_of_va () =
  let k = Kernel.create ~seed:1 () in
  Alcotest.(check bool) "shared base is kernel-owned" true
    (Kernel.owner_of_va k (Kernel.shared_base k) = Some Physmem.Kernel);
  Alcotest.(check bool) "global region unknown" true
    (Kernel.owner_of_va k (Kernel.unknown_base k) = Some Physmem.Unknown);
  Alcotest.(check bool) "user VA unresolved" true
    (Kernel.owner_of_va k Layout.user_data_base = None)

let test_kimage_structure () =
  let k = Kernel.create ~seed:1 () in
  let syscalls = [ Sysno.sys_read; Sysno.sys_poll; Sysno.sys_getpid ] in
  let img = Kimage.build (Kernel.graph k) ~seed:1 ~fid_base:0 ~syscalls in
  check Alcotest.(list int) "realized" (List.sort compare syscalls)
    (Kimage.realized_syscalls img);
  let funcs = Kimage.funcs img in
  Alcotest.(check bool) "functions generated" true (List.length funcs > 5);
  List.iteri
    (fun i f -> check Alcotest.int "dense fids" i f.Pv_isa.Program.fid)
    funcs;
  (* every realized syscall has an entry whose node maps back *)
  List.iter
    (fun nr ->
      match Kimage.desc img nr with
      | Some d ->
        check Alcotest.(option int) "fid/node roundtrip" (Some d.Kimage.entry_node)
          (Kimage.node_of_fid img d.Kimage.entry_fid);
        Alcotest.(check bool) "helpers exist" true (d.Kimage.helper_fids <> [])
      | None -> Alcotest.fail "missing desc")
    syscalls;
  (* poll gets a dispatch table; getpid does not *)
  let poll = Option.get (Kimage.desc img Sysno.sys_poll) in
  check Alcotest.int "table slots" Kimage.table_slots (Array.length poll.Kimage.table_nodes);
  let getpid = Option.get (Kimage.desc img Sysno.sys_getpid) in
  check Alcotest.int "no table" 0 (Array.length getpid.Kimage.table_nodes)

let test_kimage_program_valid () =
  let k = Kernel.create ~seed:1 () in
  let img =
    Kimage.build (Kernel.graph k) ~seed:1 ~fid_base:0
      ~syscalls:Pv_workloads.Lebench.all_syscalls
  in
  let prog = Pv_isa.Program.of_funcs (Kimage.funcs img) in
  Alcotest.(check bool) "validates" true (Pv_isa.Program.validate prog = Ok ())

let suite =
  [
    ( "kernel.buddy",
      [
        Alcotest.test_case "alloc/free/owner" `Quick test_buddy_basic;
        Alcotest.test_case "alignment" `Quick test_buddy_alignment;
        Alcotest.test_case "exhaustion" `Quick test_buddy_exhaustion;
        Alcotest.test_case "coalescing" `Quick test_buddy_coalescing;
        Alcotest.test_case "double free" `Quick test_buddy_double_free;
        Alcotest.test_case "block ownership" `Quick test_buddy_owner_per_block;
        Alcotest.test_case "domain reassignment" `Quick test_buddy_reassignment;
        Alcotest.test_case "frame VA roundtrip" `Quick test_frame_va_roundtrip;
        QCheck_alcotest.to_alcotest buddy_trace_prop;
      ] );
    ( "kernel.slab",
      [
        Alcotest.test_case "class rounding" `Quick test_slab_class_rounding;
        Alcotest.test_case "secure isolation" `Quick test_slab_secure_isolation;
        Alcotest.test_case "shared collocates" `Quick test_slab_shared_collocates;
        Alcotest.test_case "page return" `Quick test_slab_page_return;
        Alcotest.test_case "double free" `Quick test_slab_double_free;
        Alcotest.test_case "oversize" `Quick test_slab_oversize;
        Alcotest.test_case "utilization" `Quick test_slab_utilization;
        QCheck_alcotest.to_alcotest slab_accounting_prop;
      ] );
    ( "kernel.procs",
      [
        Alcotest.test_case "cgroups" `Quick test_cgroup;
        Alcotest.test_case "process pages" `Quick test_process_pages;
        Alcotest.test_case "process heap" `Quick test_process_heap;
        Alcotest.test_case "syscall table" `Quick test_sysno;
      ] );
    ( "kernel.callgraph",
      [
        Alcotest.test_case "shape" `Quick test_graph_shape;
        Alcotest.test_case "determinism" `Quick test_graph_determinism;
        Alcotest.test_case "static reachability" `Quick test_graph_static_reachability;
        Alcotest.test_case "indirect pool invisibility" `Quick test_graph_indirect_only;
        Alcotest.test_case "trace subset" `Quick test_graph_trace_subset;
        Alcotest.test_case "installed determinism" `Quick test_graph_installed_deterministic;
        Alcotest.test_case "depths" `Quick test_graph_depths;
      ] );
    ("kernel.trace", [ Alcotest.test_case "recording" `Quick test_trace ]);
    ( "kernel.codegen",
      [
        Alcotest.test_case "bodies valid" `Quick test_codegen_bodies_valid;
        Alcotest.test_case "loop terminates" `Quick test_codegen_loop_runs;
        Alcotest.test_case "pow2 validation" `Quick test_codegen_pow2_validation;
      ] );
    ( "kernel.facade",
      [
        Alcotest.test_case "spawn" `Quick test_kernel_spawn;
        Alcotest.test_case "mmap ownership" `Quick test_kernel_mmap_ownership;
        Alcotest.test_case "tracing" `Quick test_kernel_trace_feeds;
        Alcotest.test_case "owner_of_va" `Quick test_kernel_owner_of_va;
      ] );
    ( "kernel.kimage",
      [
        Alcotest.test_case "structure" `Quick test_kimage_structure;
        Alcotest.test_case "program validates" `Quick test_kimage_program_valid;
      ] );
  ]
