(* Differential oracle: seeded random programs run through the in-order
   reference ISS and the out-of-order pipeline under UNSAFE must produce the
   same architectural *commit stream* — not just the same final state.  The
   ISS's per-instruction hook and the pipeline's commit hook both observe
   (fid, idx, insn) in architectural order, so any reorder, double-commit or
   dropped squash in the pipeline shows up as a stream divergence. *)

module I = Pv_isa.Insn
module Layout = Pv_isa.Layout
module Mem = Pv_isa.Mem
module Program = Pv_isa.Program
module Asm = Pv_isa.Asm
module Iss = Pv_isa.Iss
module Memsys = Pv_uarch.Memsys
module Pipeline = Pv_uarch.Pipeline
module Rng = Pv_util.Rng

let check = Alcotest.check

let func fid name space body = { Program.fid; name; space; body }

(* A random body instruction from the same pool the pipeline QCheck property
   uses, but drawn from our own SplitMix64 stream so the whole test is one
   seed.  Registers 8..10 and 14 are reserved for the loop harness. *)
let gen_insn rng =
  let reg () = Rng.in_range rng 1 7 in
  match Rng.int rng 21 with
  | 0 | 1 | 2 | 3 -> I.Limm (reg (), Rng.int rng 1000)
  | 4 | 5 | 6 ->
    I.Alu (Rng.choose rng [| I.Add; I.Sub; I.Mul; I.And; I.Or; I.Xor |], reg (), reg (), reg ())
  | 7 | 8 | 9 ->
    I.Alui (Rng.choose rng [| I.Add; I.Mul; I.And; I.Shr |], reg (), reg (), Rng.int rng 64)
  | 10 | 11 | 12 -> I.Load (reg (), 8, Rng.int rng 64 * 8)
  | 13 | 14 | 15 -> I.Store (8, reg (), Rng.int rng 64 * 8)
  | 16 -> I.Fence
  | 17 -> I.Flush (8, Rng.int rng 64 * 8)
  | _ -> I.Nop

(* Wrap a random body in a bounded countdown loop with a data-dependent
   branch (misprediction traffic), optionally calling a second random
   function each iteration. *)
let gen_program rng =
  let n = Rng.in_range rng 5 25 in
  let body = List.init n (fun _ -> gen_insn rng) in
  let with_call = Rng.bool rng in
  let br_reg = Rng.in_range rng 1 7 in
  let a = Asm.create () in
  let loop = Asm.fresh_label a in
  let done_ = Asm.fresh_label a in
  let skip = Asm.fresh_label a in
  Asm.li a 9 0;
  Asm.li a 10 (Rng.in_range rng 8 16);
  Asm.li a 8 Layout.user_data_base;
  Asm.li a 14 0;
  Asm.place a loop;
  Asm.branch a I.Ge 9 10 done_;
  List.iter (Asm.emit a) body;
  if with_call then Asm.call a 1;
  Asm.alui a I.And 6 br_reg 1;
  Asm.branch a I.Ne 6 14 skip;
  Asm.alui a I.Add 5 5 1;
  Asm.place a skip;
  Asm.alui a I.Add 9 9 1;
  Asm.jump a loop;
  Asm.place a done_;
  Asm.halt a;
  let main = func 0 "rand" Layout.User (Asm.finish a) in
  let funcs =
    if with_call then begin
      let m = Rng.in_range rng 2 6 in
      let cb = Array.init m (fun _ -> gen_insn rng) in
      [ main; func 1 "callee" Layout.User (Array.append cb [| I.Ret |]) ]
    end
    else [ main ]
  in
  Program.of_funcs funcs

(* One architectural event as observed at retirement. *)
let event_to_string (fid, idx) = Printf.sprintf "%d:%d" fid idx

let run_iss prog =
  let stream = ref [] in
  let mem = Mem.create () in
  let hooks =
    { Iss.null_hooks with Iss.on_insn = Some (fun fid idx _ -> stream := (fid, idx) :: !stream) }
  in
  let r = Iss.run ~hooks ~asid:1 ~mem prog ~start:0 in
  (r, List.rev !stream, mem)

let run_ooo prog =
  let stream = ref [] in
  let mem = Mem.create () in
  let ms = Memsys.create mem in
  let pipe = Pipeline.create ms prog in
  let hooks =
    {
      Pipeline.null_hooks with
      Pipeline.on_commit = Some (fun fid idx _ -> stream := (fid, idx) :: !stream);
    }
  in
  let r = Pipeline.run ~hooks pipe ~asid:1 ~start:0 in
  (r, List.rev !stream, mem)

let mem_words mem =
  List.init 64 (fun i -> Mem.load mem (Layout.phys_key ~asid:1 (Layout.user_data_base + (8 * i))))

let assert_same_commit_stream ~seed prog =
  let iss, iss_stream, iss_mem = run_iss prog in
  let ooo, ooo_stream, ooo_mem = run_ooo prog in
  let label fmt = Printf.sprintf ("seed %d: " ^^ fmt) seed in
  Alcotest.(check bool)
    (label "both halted")
    true
    (iss.Iss.outcome = Iss.Halted && ooo.Pipeline.outcome = Pipeline.Halted);
  check
    Alcotest.(list string)
    (label "commit streams identical")
    (List.map event_to_string iss_stream)
    (List.map event_to_string ooo_stream);
  check Alcotest.(array int) (label "final registers") iss.Iss.regs ooo.Pipeline.regs;
  check Alcotest.(list int) (label "memory words") (mem_words iss_mem) (mem_words ooo_mem)

let test_random_programs () =
  (* 60 seeded programs; any divergence names its seed for replay. *)
  for seed = 1 to 60 do
    let rng = Rng.create (0x0C0FFEE + seed) in
    assert_same_commit_stream ~seed (gen_program rng)
  done

let test_stream_matches_committed_count () =
  (* The commit stream length is the committed-instruction counter. *)
  let rng = Rng.create 99 in
  let prog = gen_program rng in
  let ooo, stream, _ = run_ooo prog in
  check Alcotest.int "stream length = committed" ooo.Pipeline.committed (List.length stream);
  let iss, istream, _ = run_iss prog in
  check Alcotest.int "iss stream length = steps" iss.Iss.steps (List.length istream)

let test_squashes_never_reach_stream () =
  (* Heavy misprediction traffic: wrong-path instructions must never appear
     in the commit stream, so the stream is squash-count independent. *)
  let a = Asm.create () in
  let loop = Asm.fresh_label a in
  let done_ = Asm.fresh_label a in
  let skip = Asm.fresh_label a in
  Asm.li a 1 0;
  Asm.li a 2 120;
  Asm.li a 7 1;
  Asm.li a 14 0;
  Asm.place a loop;
  Asm.branch a I.Ge 1 2 done_;
  Asm.alui a I.Mul 7 7 1103515245;
  Asm.alui a I.Add 7 7 12345;
  Asm.alui a I.Shr 6 7 16;
  Asm.alui a I.And 6 6 1;
  Asm.branch a I.Ne 6 14 skip;
  Asm.alui a I.Add 5 5 1;
  Asm.place a skip;
  Asm.alui a I.Add 1 1 1;
  Asm.jump a loop;
  Asm.place a done_;
  Asm.halt a;
  let prog = Program.of_funcs [ func 0 "m" Layout.User (Asm.finish a) ] in
  let iss, iss_stream, _ = run_iss prog in
  let ooo, ooo_stream, _ = run_ooo prog in
  Alcotest.(check bool) "halted" true (ooo.Pipeline.outcome = Pipeline.Halted);
  check
    Alcotest.(list string)
    "streams identical despite squashes"
    (List.map event_to_string iss_stream)
    (List.map event_to_string ooo_stream);
  check Alcotest.(array int) "registers" iss.Iss.regs ooo.Pipeline.regs

let suite =
  [
    ( "oracle.differential",
      [
        Alcotest.test_case "60 seeded random programs" `Slow test_random_programs;
        Alcotest.test_case "stream length = committed count" `Quick
          test_stream_matches_committed_count;
        Alcotest.test_case "squashed work never commits" `Quick
          test_squashes_never_reach_stream;
      ] );
  ]
