(* Tests for the Kasper-substitute: gadget corpus and fuzzing-campaign
   model. *)

module Callgraph = Pv_kernel.Callgraph
module Gadgets = Pv_scanner.Gadgets
module Campaign = Pv_scanner.Campaign
module Bitset = Pv_util.Bitset

let check = Alcotest.check

let graph = Callgraph.synthesize 42

let corpus = Gadgets.plant graph ~seed:42

let test_corpus_counts () =
  check Alcotest.int "total" 1533 (Gadgets.total corpus);
  check Alcotest.int "mds" 805 (Gadgets.count corpus Gadgets.Mds);
  check Alcotest.int "port" 509 (Gadgets.count corpus Gadgets.Port);
  check Alcotest.int "cache" 219 (Gadgets.count corpus Gadgets.CacheChannel)

let test_corpus_determinism () =
  let c2 = Gadgets.plant graph ~seed:42 in
  check Alcotest.(list int) "same nodes" (List.sort compare (Gadgets.nodes corpus))
    (List.sort compare (Gadgets.nodes c2))

let test_corpus_distinct_per_kind () =
  List.iter
    (fun kind ->
      let nodes = Gadgets.nodes_of_kind corpus kind in
      check Alcotest.int "no duplicate nodes within kind"
        (List.length nodes)
        (List.length (List.sort_uniq compare nodes)))
    [ Gadgets.Mds; Gadgets.Port; Gadgets.CacheChannel ]

let test_corpus_scoping () =
  let n = Callgraph.nnodes graph in
  let empty = Bitset.create n in
  let full = Bitset.of_list n (List.init n (fun i -> i)) in
  check Alcotest.int "empty scope: nothing in scope" 0
    (List.length (Gadgets.in_scope corpus empty));
  check Alcotest.int "full scope: everything" (Gadgets.total corpus)
    (List.length (Gadgets.in_scope corpus full));
  check (Alcotest.float 1e-9) "all excluded by empty view" 100.0
    (Gadgets.excluded_pct corpus Gadgets.Mds empty);
  check (Alcotest.float 1e-9) "none excluded by full view" 0.0
    (Gadgets.excluded_pct corpus Gadgets.Mds full)

let test_campaign_full_kernel () =
  let r = Campaign.run graph corpus ~seed:1 () in
  check Alcotest.int "covers the kernel" (Callgraph.nnodes graph) r.Campaign.examined;
  check Alcotest.int "finds every gadget" (Gadgets.total corpus) r.Campaign.found;
  Alcotest.(check bool) "positive rate" true (r.Campaign.rate > 0.0);
  Alcotest.(check bool) "timeline monotone" true
    (let rec mono = function
       | (h1, c1) :: ((h2, c2) :: _ as rest) -> h1 <= h2 && c1 <= c2 && mono rest
       | _ -> true
     in
     mono r.Campaign.timeline)

let test_campaign_bounded () =
  let entries = List.init 30 (fun nr -> Callgraph.entry_of_syscall graph nr) in
  let scope = Callgraph.static_reachable graph entries in
  let bounded = Campaign.run graph corpus ~scope ~seed:1 () in
  check Alcotest.int "space = scope size" (Bitset.count scope) bounded.Campaign.space;
  Alcotest.(check bool) "fewer gadgets discoverable" true
    (bounded.Campaign.found < Gadgets.total corpus);
  check Alcotest.int "exactly the in-scope gadgets"
    (List.length (Gadgets.in_scope corpus scope))
    bounded.Campaign.found;
  Alcotest.(check bool) "finishes sooner" true
    (bounded.Campaign.hours < (Campaign.run graph corpus ~seed:1 ()).Campaign.hours)

let test_campaign_speedup_definition () =
  let full = Campaign.run graph corpus ~seed:1 () in
  check (Alcotest.float 1e-9) "self speedup is 1" 1.0 (Campaign.speedup ~bounded:full ~full)

let test_campaign_throughput_scaling () =
  let slow = Campaign.run graph corpus ~funcs_per_hour:300 ~seed:1 () in
  let fast = Campaign.run graph corpus ~funcs_per_hour:600 ~seed:1 () in
  Alcotest.(check bool) "double throughput, double rate" true
    (abs_float ((fast.Campaign.rate /. slow.Campaign.rate) -. 2.0) < 0.01)

let suite =
  [
    ( "scanner.gadgets",
      [
        Alcotest.test_case "Kasper population" `Quick test_corpus_counts;
        Alcotest.test_case "determinism" `Quick test_corpus_determinism;
        Alcotest.test_case "distinct nodes" `Quick test_corpus_distinct_per_kind;
        Alcotest.test_case "scoping" `Quick test_corpus_scoping;
      ] );
    ( "scanner.campaign",
      [
        Alcotest.test_case "full kernel" `Quick test_campaign_full_kernel;
        Alcotest.test_case "bounded scan" `Quick test_campaign_bounded;
        Alcotest.test_case "speedup identity" `Quick test_campaign_speedup_definition;
        Alcotest.test_case "throughput scaling" `Quick test_campaign_throughput_scaling;
      ] );
  ]
