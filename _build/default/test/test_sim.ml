(* Full-system machine tests: lifecycle, syscall plumbing, defenses
   end-to-end, and workload/driver construction. *)

module Machine = Pv_sim.Machine
module Pipeline = Pv_uarch.Pipeline
module Kernel = Pv_kernel.Kernel
module Process = Pv_kernel.Process
module Sysno = Pv_kernel.Sysno
module Trace = Pv_kernel.Trace
module Defense = Perspective.Defense
module Isv = Perspective.Isv
module Driver = Pv_workloads.Driver
module Lebench = Pv_workloads.Lebench
module Apps = Pv_workloads.Apps
module Bitset = Pv_util.Bitset

let check = Alcotest.check

let make_machine ?(iterations = 5) ?(sequence = [ (Sysno.sys_getpid, [||]) ]) () =
  let m = Machine.create ~seed:11 ~syscalls:(Driver.syscalls_of sequence) () in
  let h =
    Machine.add_process m ~name:"t"
      ~user_funcs:(Driver.build ~iterations ~sequence ~user_work:3)
      ~entry:0
  in
  Machine.freeze m;
  (m, h)

let test_machine_lifecycle () =
  let m, h = make_machine () in
  let result, delta = Machine.run m h in
  Alcotest.(check bool) "halts" true (result.Pipeline.outcome = Pipeline.Halted);
  check Alcotest.int "five syscalls" 5 delta.Pipeline.syscalls;
  Alcotest.(check bool) "kernel instructions ran" true (delta.Pipeline.committed_kernel > 0)

let test_machine_getpid_return () =
  let sequence = [ (Sysno.sys_getpid, [||]) ] in
  let m, h = make_machine ~iterations:1 ~sequence () in
  let result, _ = Machine.run m h in
  (* r15 carries the last syscall's return value: the pid. *)
  check Alcotest.int "pid returned" (Process.pid (Machine.process h)) result.Pipeline.regs.(15)

let test_machine_freeze_discipline () =
  let m = Machine.create ~seed:1 ~syscalls:[ Sysno.sys_getpid ] () in
  Alcotest.(check bool) "freeze without processes rejected" true
    (try Machine.freeze m; false with Invalid_argument _ -> true);
  let m2 = Machine.create ~seed:1 ~syscalls:[ Sysno.sys_getpid ] () in
  let _ =
    Machine.add_process m2 ~name:"a"
      ~user_funcs:(Driver.build ~iterations:1 ~sequence:[] ~user_work:1)
      ~entry:0
  in
  Machine.freeze m2;
  Alcotest.(check bool) "double freeze rejected" true
    (try Machine.freeze m2; false with Invalid_argument _ -> true);
  Alcotest.(check bool) "add after freeze rejected" true
    (try
       ignore
         (Machine.add_process m2 ~name:"b"
            ~user_funcs:(Driver.build ~iterations:1 ~sequence:[] ~user_work:1)
            ~entry:0);
       false
     with Invalid_argument _ -> true)

let test_machine_profile_feeds_traces () =
  let sequence = [ (Sysno.sys_read, [| 4096 |]) ] in
  let m, h = make_machine ~sequence () in
  Machine.profile m h ~workload:sequence ~repetitions:10;
  let ctx = Process.cgroup (Machine.process h) in
  let traced = Trace.nodes (Kernel.trace (Machine.kernel m)) ~ctx in
  Alcotest.(check bool) "functions traced" true (Bitset.count traced > 0);
  (* Every realized kernel function of the read path must be traced —
     the trace is what executes. *)
  match Pv_kernel.Kimage.desc (Machine.kimage m) Sysno.sys_read with
  | Some d ->
    Alcotest.(check bool) "entry traced" true (Bitset.mem traced d.Pv_kernel.Kimage.entry_node);
    List.iter
      (fun fid ->
        match Pv_kernel.Kimage.node_of_fid (Machine.kimage m) fid with
        | Some n -> Alcotest.(check bool) "helper traced" true (Bitset.mem traced n)
        | None -> ())
      d.Pv_kernel.Kimage.helper_fids
  | None -> Alcotest.fail "read not realized"

let test_machine_defense_wiring () =
  let sequence = [ (Sysno.sys_poll, [| 64 |]) ] in
  let m, h = make_machine ~iterations:10 ~sequence () in
  Machine.profile m h ~workload:sequence ~repetitions:10;
  Machine.install_defense m (Defense.Perspective Isv.Dynamic);
  Alcotest.(check bool) "defense installed" true (Machine.defense m <> None);
  let result, delta = Machine.run m h in
  Alcotest.(check bool) "halts" true (result.Pipeline.outcome = Pipeline.Halted);
  Alcotest.(check bool) "view caches exercised" true
    (match Machine.defense m with
    | Some d ->
      Perspective.Svcache.hits (Defense.isv_cache d)
      + Perspective.Svcache.misses (Defense.isv_cache d)
      > 0
    | None -> false);
  ignore delta

let test_machine_determinism () =
  let run () =
    let m, h = make_machine ~iterations:8 ~sequence:[ (Sysno.sys_read, [| 4096 |]) ] () in
    let r, _ = Machine.run m h in
    r.Pipeline.cycles
  in
  check Alcotest.int "identical cycles across builds" (run ()) (run ())

let test_machine_table_va () =
  let sequence = [ (Sysno.sys_poll, [| 8 |]) ] in
  let m, h = make_machine ~sequence () in
  Alcotest.(check bool) "poll has a dispatch table" true
    (Machine.table_va m h Sysno.sys_poll <> None);
  Alcotest.(check bool) "unrealized syscall has none" true
    (Machine.table_va m h Sysno.sys_fork = None)

let test_unsafe_faster_than_fence () =
  let cycles scheme =
    let sequence = [ (Sysno.sys_select, [| 64 |]) ] in
    let m, h = make_machine ~iterations:15 ~sequence () in
    Machine.profile m h ~workload:sequence ~repetitions:10;
    Machine.install_defense m scheme;
    (fst (Machine.run m h)).Pipeline.cycles
  in
  let unsafe = cycles Defense.Unsafe in
  let fence = cycles Defense.Fence in
  let perspective = cycles (Defense.Perspective Isv.Dynamic) in
  Alcotest.(check bool)
    (Printf.sprintf "unsafe (%d) < perspective (%d) < fence (%d)" unsafe perspective fence)
    true
    (unsafe <= perspective && perspective < fence)

(* --- workloads --- *)

let test_driver_syscalls_of () =
  check Alcotest.(list int) "dedup sorted"
    (List.sort compare [ Sysno.sys_read; Sysno.sys_write ])
    (Driver.syscalls_of
       [ (Sysno.sys_write, [||]); (Sysno.sys_read, [||]); (Sysno.sys_read, [||]) ])

let test_lebench_suite () =
  check Alcotest.int "19 tests" 19 (List.length Lebench.tests);
  let names = List.map (fun t -> t.Lebench.name) Lebench.tests in
  check Alcotest.int "unique names" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun t ->
      Alcotest.(check bool) "has syscalls" true (t.Lebench.sequence <> []);
      Alcotest.(check bool) "positive iterations" true (t.Lebench.iterations > 0))
    Lebench.tests;
  Alcotest.(check bool) "find works" true ((Lebench.find "select").Lebench.name = "select");
  let scaled = Lebench.scaled (Lebench.find "ref") ~factor:0.1 in
  check Alcotest.int "scaling" 20 scaled.Lebench.iterations

let test_apps_definitions () =
  check Alcotest.int "four apps" 4 (List.length Apps.all);
  List.iter
    (fun app ->
      Alcotest.(check bool) "hot loop nonempty" true (app.Apps.request <> []);
      Alcotest.(check bool) "realistic footprint" true
        (List.length (Apps.footprint app) >= 15);
      Alcotest.(check bool) "baseline rps recorded" true (app.Apps.paper_unsafe_krps > 0.0))
    Apps.all

let test_driver_program_runs () =
  (* A driver must execute architecturally on the ISS with null syscalls. *)
  let funcs =
    Driver.build ~iterations:3
      ~sequence:[ (Sysno.sys_getpid, [||]) ]
      ~user_work:4 ~base_fid:0
  in
  let prog = Pv_isa.Program.of_funcs funcs in
  let r = Pv_isa.Iss.run ~asid:1 ~mem:(Pv_isa.Mem.create ()) prog ~start:0 in
  Alcotest.(check bool) "halts" true (r.Pv_isa.Iss.outcome = Pv_isa.Iss.Halted)

let suite =
  [
    ( "sim.machine",
      [
        Alcotest.test_case "lifecycle" `Quick test_machine_lifecycle;
        Alcotest.test_case "syscall return value" `Quick test_machine_getpid_return;
        Alcotest.test_case "freeze discipline" `Quick test_machine_freeze_discipline;
        Alcotest.test_case "profiling feeds traces" `Quick test_machine_profile_feeds_traces;
        Alcotest.test_case "defense wiring" `Quick test_machine_defense_wiring;
        Alcotest.test_case "determinism" `Quick test_machine_determinism;
        Alcotest.test_case "dispatch tables" `Quick test_machine_table_va;
        Alcotest.test_case "scheme ordering" `Quick test_unsafe_faster_than_fence;
      ] );
    ( "sim.workloads",
      [
        Alcotest.test_case "driver syscall extraction" `Quick test_driver_syscalls_of;
        Alcotest.test_case "LEBench suite" `Quick test_lebench_suite;
        Alcotest.test_case "app definitions" `Quick test_apps_definitions;
        Alcotest.test_case "driver runs" `Quick test_driver_program_runs;
      ] );
  ]
