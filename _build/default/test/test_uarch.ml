(* Tests for the microarchitecture blocks: caches, memory system, TAGE,
   BTB and RAS. *)

module Cache = Pv_uarch.Cache
module Memsys = Pv_uarch.Memsys
module Tage = Pv_uarch.Tage
module Btb = Pv_uarch.Btb
module Ras = Pv_uarch.Ras

let check = Alcotest.check

let small_cache () =
  Cache.create ~name:"t" ~size_bytes:512 ~line_bytes:64 ~ways:2 ~latency:2

let test_cache_miss_then_hit () =
  let c = small_cache () in
  Alcotest.(check bool) "first miss" false (Cache.access c 0);
  Alcotest.(check bool) "then hit" true (Cache.access c 0);
  Alcotest.(check bool) "same line" true (Cache.access c 63);
  Alcotest.(check bool) "next line misses" false (Cache.access c 64)

let test_cache_lru_eviction () =
  let c = small_cache () in
  (* 4 sets x 2 ways; lines 0, 4, 8 map to set 0. *)
  ignore (Cache.access c 0);
  ignore (Cache.access c (4 * 64));
  ignore (Cache.access c 0) (* 0 is now MRU *);
  ignore (Cache.access c (8 * 64)) (* evicts 4*64 *);
  Alcotest.(check bool) "0 survives" true (Cache.probe c 0);
  Alcotest.(check bool) "4*64 evicted" false (Cache.probe c (4 * 64));
  Alcotest.(check bool) "8*64 present" true (Cache.probe c (8 * 64))

let test_cache_probe_no_side_effect () =
  let c = small_cache () in
  Alcotest.(check bool) "probe misses" false (Cache.probe c 0);
  Alcotest.(check bool) "still missing" false (Cache.probe c 0);
  check Alcotest.int "no stats from probe" 0 (Cache.hits c + Cache.misses c)

let test_cache_flush () =
  let c = small_cache () in
  ignore (Cache.access c 0);
  Cache.flush_line c 0;
  Alcotest.(check bool) "flushed" false (Cache.probe c 0);
  ignore (Cache.access c 0);
  Cache.flush_all c;
  Alcotest.(check bool) "flushed all" false (Cache.probe c 0)

let test_cache_stats () =
  let c = small_cache () in
  ignore (Cache.access c 0);
  ignore (Cache.access c 0);
  ignore (Cache.access c 0);
  check Alcotest.int "hits" 2 (Cache.hits c);
  check Alcotest.int "misses" 1 (Cache.misses c);
  check (Alcotest.float 1e-9) "rate" (2.0 /. 3.0) (Cache.hit_rate c);
  Cache.reset_stats c;
  check Alcotest.int "reset" 0 (Cache.hits c)

let test_cache_geometry_validation () =
  Alcotest.(check bool) "bad geometry rejected" true
    (try
       ignore (Cache.create ~name:"x" ~size_bytes:100 ~line_bytes:64 ~ways:3 ~latency:1);
       false
     with Invalid_argument _ -> true)

let cache_lru_prop =
  QCheck.Test.make ~name:"most recently accessed line always survives" ~count:100
    QCheck.(small_list (int_bound 31))
    (fun lines ->
      let c = small_cache () in
      List.iter (fun l -> ignore (Cache.access c (l * 64))) lines;
      match List.rev lines with [] -> true | last :: _ -> Cache.probe c (last * 64))

let test_memsys_latencies () =
  let ms = Memsys.create (Pv_isa.Mem.create ()) in
  let lat1, hit1 = Memsys.data_read ms 0 in
  Alcotest.(check bool) "cold goes to DRAM" true (lat1 > 100 && not hit1);
  let lat2, hit2 = Memsys.data_read ms 0 in
  Alcotest.(check bool) "L1 hit after fill" true (lat2 = 2 && hit2);
  Memsys.flush_line ms 0;
  let lat3, _ = Memsys.data_read ms 0 in
  Alcotest.(check bool) "flush evicts everywhere" true (lat3 > 100)

let test_memsys_l2_path () =
  let ms = Memsys.create (Pv_isa.Mem.create ()) in
  ignore (Memsys.data_read ms 0);
  (* Evict from L1 (32KB, 8-way, 64 sets): 9 lines mapping to set 0. *)
  for i = 1 to 8 do
    ignore (Memsys.data_read ms (i * 64 * 64))
  done;
  let lat, hit = Memsys.data_read ms 0 in
  Alcotest.(check bool) "L2 hit" true ((not hit) && lat = 10)

let test_memsys_would_hit () =
  let ms = Memsys.create (Pv_isa.Mem.create ()) in
  Alcotest.(check bool) "cold" false (Memsys.would_hit_l1d ms 0);
  ignore (Memsys.data_read ms 0);
  Alcotest.(check bool) "warm" true (Memsys.would_hit_l1d ms 0)

let test_tage_learns_loop_branch () =
  let t = Tage.create () in
  let pc = 0x1000 in
  (* Pattern: taken 7x, not-taken 1x, repeating (a loop with 8 trips). *)
  let hist = ref 0 in
  let mispredicts = ref 0 in
  for i = 0 to 799 do
    let actual = i mod 8 <> 7 in
    let pred, meta = Tage.predict t ~pc ~hist:!hist in
    if pred <> actual then incr mispredicts;
    Tage.update t ~pc ~hist:!hist meta ~taken:actual;
    hist := (!hist lsl 1) lor (if actual then 1 else 0)
  done;
  (* After warmup the pattern is history-predictable. *)
  Alcotest.(check bool)
    (Printf.sprintf "few mispredicts (%d)" !mispredicts)
    true (!mispredicts < 120)

let test_tage_biased_branch () =
  let t = Tage.create () in
  let mis = ref 0 in
  for _ = 1 to 200 do
    let pred, meta = Tage.predict t ~pc:0x2000 ~hist:0 in
    if not pred then incr mis;
    Tage.update t ~pc:0x2000 ~hist:0 meta ~taken:true
  done;
  Alcotest.(check bool) "always-taken learned" true (!mis < 10)

let test_tage_mistraining () =
  (* The Spectre-v1 primitive: train not-taken, then the predictor keeps
     predicting not-taken on the out-of-bounds call. *)
  let t = Tage.create () in
  let hist = 0 in
  for _ = 1 to 64 do
    let _, meta = Tage.predict t ~pc:0x3000 ~hist in
    Tage.update t ~pc:0x3000 ~hist meta ~taken:false
  done;
  let pred, _ = Tage.predict t ~pc:0x3000 ~hist in
  Alcotest.(check bool) "predicts the trained direction" false pred

let test_btb_update_lookup () =
  let b = Btb.create () in
  Alcotest.(check bool) "cold" true (Btb.lookup b 0x4000 = None);
  Btb.update b 0x4000 0xBEEF0;
  check Alcotest.(option int) "trained" (Some 0xBEEF0) (Btb.lookup b 0x4000);
  Btb.update b 0x4000 0xCAFE0;
  check Alcotest.(option int) "retrained" (Some 0xCAFE0) (Btb.lookup b 0x4000)

let test_btb_aliasing () =
  let b = Btb.create () in
  (* Two PCs whose index and partial tag match alias to one entry — the
     cross-context injection vector. *)
  let pc1 = 0x4000 in
  let pc2 = pc1 + (1 lsl 40) (* beyond the 12-bit tag *) in
  Alcotest.(check bool) "aliases" true (Btb.aliases b pc1 pc2);
  Btb.update b pc1 (0x1234 * 4);
  Alcotest.(check bool) "poisoned entry shared" true (Btb.lookup b pc2 <> None)

let test_btb_flush () =
  let b = Btb.create () in
  Btb.update b 0x4000 1;
  Btb.flush b;
  Alcotest.(check bool) "flushed" true (Btb.lookup b 0x4000 = None)

let test_ras_lifo () =
  let r = Ras.create ~entries:4 () in
  Alcotest.(check bool) "empty" true (Ras.pop r = None);
  Ras.push r 10;
  Ras.push r 20;
  check Alcotest.(option int) "pop 20" (Some 20) (Ras.pop r);
  check Alcotest.(option int) "pop 10" (Some 10) (Ras.pop r)

let test_ras_overflow_wraps () =
  let r = Ras.create ~entries:2 () in
  Ras.push r 1;
  Ras.push r 2;
  Ras.push r 3 (* overwrites 1 *);
  check Alcotest.(option int) "top" (Some 3) (Ras.pop r);
  check Alcotest.(option int) "second" (Some 2) (Ras.pop r);
  check Alcotest.int "depth" 0 (Ras.depth r)

let test_ras_stale_on_underflow () =
  (* The ret2spec lever: after push/pop, the vacated slot is served again. *)
  let r = Ras.create ~entries:4 () in
  Ras.push r 42;
  check Alcotest.(option int) "pop" (Some 42) (Ras.pop r);
  check Alcotest.(option int) "stale value served" (Some 42) (Ras.pop r);
  Ras.clear r;
  Alcotest.(check bool) "cleared forgets" true (Ras.pop r = None)

let suite =
  [
    ( "uarch.cache",
      [
        Alcotest.test_case "miss then hit" `Quick test_cache_miss_then_hit;
        Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
        Alcotest.test_case "probe side-effect free" `Quick test_cache_probe_no_side_effect;
        Alcotest.test_case "flush" `Quick test_cache_flush;
        Alcotest.test_case "stats" `Quick test_cache_stats;
        Alcotest.test_case "geometry validation" `Quick test_cache_geometry_validation;
        QCheck_alcotest.to_alcotest cache_lru_prop;
      ] );
    ( "uarch.memsys",
      [
        Alcotest.test_case "latency ladder" `Quick test_memsys_latencies;
        Alcotest.test_case "L2 hit path" `Quick test_memsys_l2_path;
        Alcotest.test_case "would_hit probe" `Quick test_memsys_would_hit;
      ] );
    ( "uarch.tage",
      [
        Alcotest.test_case "learns loop pattern" `Quick test_tage_learns_loop_branch;
        Alcotest.test_case "biased branch" `Quick test_tage_biased_branch;
        Alcotest.test_case "mistraining sticks" `Quick test_tage_mistraining;
      ] );
    ( "uarch.btb",
      [
        Alcotest.test_case "update/lookup" `Quick test_btb_update_lookup;
        Alcotest.test_case "partial-tag aliasing" `Quick test_btb_aliasing;
        Alcotest.test_case "flush" `Quick test_btb_flush;
      ] );
    ( "uarch.ras",
      [
        Alcotest.test_case "LIFO" `Quick test_ras_lifo;
        Alcotest.test_case "overflow wraps" `Quick test_ras_overflow_wraps;
        Alcotest.test_case "stale underflow serves gadget" `Quick test_ras_stale_on_underflow;
      ] );
  ]
