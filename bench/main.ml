(* The full benchmark harness: regenerates every table and figure of the
   paper's evaluation (Tables 4.1, 7.1, 8.1, 8.2, 9.1, 10.1; Figures 9.1,
   9.2, 9.3; the Chapter 8 PoC study, the leakage-contract matrix, the 9.2 sensitivity analyses and the
   9.3-tail open-loop service curves), then runs Bechamel micro-benchmarks
   of Perspective's core primitives.

   Usage:
     bench/main.exe                 full reproduction (several minutes)
     bench/main.exe --quick         scaled-down run
     bench/main.exe --only fig-9.2  one experiment (see labels below)
     bench/main.exe -j N            run experiment jobs on N domains
     bench/main.exe --no-bechamel   skip the microbenchmarks

   Parallel runs are deterministic: each (workload x scheme) measurement is
   a self-contained Pv_sim.Machine job and results are merged in declaration
   order, so every table is byte-identical for any -j (see test_pool.ml). *)

module E = Pv_experiments
module Tab = Pv_util.Tab

let scale = ref 1.0

let jobs = ref (Pv_util.Pool.default_jobs ())

let only : string option ref = ref None

let run_bechamel = ref true

let csv_dir : string option ref = ref None

let metrics_file : string option ref = ref None

let trace_dir : string option ref = ref None

let cache_dir : string option ref = ref None

let no_cache = ref false

let cache_stats = ref false

let bench_out : string option ref = ref None

let bench_guard = ref false

(* The persistent result cache (used by the supervised fig-9.3-tail section;
   a warm run skips the expensive service-time calibrations). *)
let rescache () =
  match !cache_dir with
  | Some dir when not !no_cache -> Some (Pv_util.Rescache.open_dir dir)
  | _ -> None

let maybe_csv name tab =
  match !csv_dir with
  | Some dir -> Tab.save_csv tab (Filename.concat dir (name ^ ".csv"))
  | None -> ()

let want label = match !only with None -> true | Some l -> l = label

let section label title f =
  if want label then begin
    Printf.printf "\n###### [%s] %s ######\n\n%!" label title;
    f ()
  end

(* ------------------------------------------------------------------ *)
(* Experiment sections                                                  *)
(* ------------------------------------------------------------------ *)

let static_sections () =
  section "table-4.1" "Taxonomy of kernel CVEs" (fun () ->
      Tab.print (E.Security.cve_table ()));
  section "table-7.1" "Simulation parameters" (fun () ->
      Tab.print (E.Static_tables.sim_params ()));
  section "table-9.1" "View-cache hardware characterization" (fun () ->
      Tab.print (E.Static_tables.hw_characterization ());
      Tab.print (E.Static_tables.hw_sensitivity ()))

let isv_sections () =
  if want "table-8.1" || want "table-8.2" || want "fig-9.1" then begin
    let study = E.Isv_study.build () in
    section "table-8.1" "Attack surface reduction" (fun () ->
        Tab.print (E.Isv_study.surface_table study));
    section "table-8.2" "Gadget reduction" (fun () ->
        Tab.print (E.Isv_study.gadget_table study));
    section "fig-9.1" "Kasper discovery-rate speedup" (fun () ->
        Tab.print (E.Isv_study.speedup_table ~jobs:!jobs study))
  end

let poc_section () =
  section "poc-attacks" "Chapter 8 proof-of-concept attacks" (fun () ->
      Tab.print (E.Security.poc_table (E.Security.run_pocs ~jobs:!jobs ()));
      (* 5.4: swift gadget patching on a live system *)
      let d = Pv_attacks.Spectre_v2.run_patch_demo () in
      let verdict (o : Pv_attacks.Spectre_v2.outcome) =
        if o.Pv_attacks.Spectre_v2.success then "SECRET LEAKED" else "blocked"
      in
      Printf.printf
        "Swift patching (5.4): passive v2 with the gadget wrongly inside the\n\
        \ victim's ISV: %s; after excluding the function from the live view\n\
        \ (no kernel patch): %s\n\n"
        (verdict d.Pv_attacks.Spectre_v2.before_patch)
        (verdict d.Pv_attacks.Spectre_v2.after_patch);
      (* Table 4.1 gadget shapes as active-attack PoCs (8.1) *)
      let vtab =
        Tab.create ~title:"Active PoCs from the Table 4.1 gadget shapes"
          ~header:
            [ ("Gadget", Tab.Left); ("UNSAFE", Tab.Left); ("PERSPECTIVE", Tab.Left) ]
      in
      let v (o : Pv_attacks.Spectre_v1.outcome) =
        if o.Pv_attacks.Spectre_v1.success then "SECRET LEAKED" else "blocked"
      in
      List.iter
        (fun variant ->
          let u = Pv_attacks.Spectre_v1.run ~variant ~scheme:Perspective.Defense.Unsafe () in
          let p =
            Pv_attacks.Spectre_v1.run ~variant
              ~scheme:(Perspective.Defense.Perspective Perspective.Isv.Dynamic) ()
          in
          Tab.row vtab [ Pv_attacks.Spectre_v1.variant_name variant; v u; v p ])
        [
          Pv_attacks.Spectre_v1.Array_index;
          Pv_attacks.Spectre_v1.Pointer_arith;
          Pv_attacks.Spectre_v1.Type_confusion;
        ];
      Tab.print vtab)

let contracts_section () =
  section "contracts" "Empirical leakage-contract matrix" (fun () ->
      let module C = Pv_contracts.Contracts in
      let cache = rescache () in
      let config = { E.Supervise.default with jobs = !jobs; cache } in
      let sweep = E.Supervise.run ~config (C.cells ()) in
      let tab = C.matrix_table sweep.E.Supervise.results in
      Tab.print tab;
      maybe_csv "contracts" tab;
      E.Supervise.report ~label:"contracts" sweep;
      if !cache_stats then Option.iter Pv_util.Rescache.report cache)

let perf_sections () =
  let needed =
    List.exists want
      [ "fig-9.2"; "fig-9.3"; "table-10.1"; "comparisons"; "sensitivity" ]
  in
  if needed then begin
    let variants = E.Schemes.standard @ E.Schemes.hardware @ E.Schemes.spot in
    (* stderr, so stdout stays byte-identical for every -j value *)
    Printf.eprintf "\n(running the cycle-level performance matrices, scale=%.2f, -j %d...)\n%!"
      !scale !jobs;
    let t0 = Unix.gettimeofday () in
    let micro = E.Perf.lebench_matrix ~scale:!scale ~jobs:!jobs ~variants () in
    let macro = E.Perf.apps_matrix ~scale:!scale ~jobs:!jobs ~variants () in
    let elapsed = Unix.gettimeofday () -. t0 in
    (* Telemetry export: per-cell snapshots keyed like the supervised sweeps
       ("<family>/<workload>/<scheme>"), plus per-family summaries. *)
    (match !metrics_file with
    | Some file ->
      let cells_of family matrix =
        List.concat_map
          (fun (name, runs) ->
            List.map
              (fun r ->
                ( Printf.sprintf "%s/%s/%s" family name r.E.Perf.label,
                  Some r.E.Perf.metrics ))
              runs)
          matrix
      in
      E.Supervise.write_json ~file
        [
          E.Supervise.export_cells ~elapsed ~label:"lebench" (cells_of "lebench" micro);
          E.Supervise.export_cells ~elapsed ~label:"apps" (cells_of "apps" macro);
        ]
    | None -> ());
    (match !trace_dir with
    | Some dir ->
      (* The unsupervised matrices run untraced (tracing is a per-cell knob
         on the supervised path); re-run one representative traced cell so
         the harness still exercises the JSONL dump end to end. *)
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let r =
        E.Perf.run_lebench ~scale:(Float.min !scale 0.3) ~trace:true
          E.Schemes.perspective
          (Pv_workloads.Lebench.find "poll")
      in
      let oc = open_out (Filename.concat dir "lebench_poll_PERSPECTIVE.jsonl") in
      List.iter
        (fun ev ->
          output_string oc (Pv_uarch.Pipeline.event_to_json ev);
          output_char oc '\n')
        r.E.Perf.events;
      close_out oc
    | None -> ());
    section "fig-9.2" "LEBench normalized latency" (fun () ->
        let tab = E.Perf_report.fig_lebench micro in
        Tab.print tab;
        maybe_csv "fig-9.2" tab);
    section "fig-9.3" "Datacenter throughput" (fun () ->
        let tab = E.Perf_report.fig_apps macro in
        Tab.print tab;
        maybe_csv "fig-9.3" tab;
        Tab.print (E.Perf_report.kernel_time_table macro));
    section "table-10.1" "Fence breakdown (ISV vs DSV)" (fun () ->
        Tab.print (E.Perf_report.fence_breakdown (micro @ macro));
        Tab.print (E.Perf_report.stall_breakdown (micro @ macro)));
    section "comparisons" "Spot and hardware mitigation comparison" (fun () ->
        Tab.print (E.Perf_report.comparison_summary ~micro ~macro));
    section "sensitivity" "9.2 sensitivity analyses" (fun () ->
        Tab.print (E.Sensitivity.hit_rates ~micro ~macro);
        let tab, _ =
          E.Sensitivity.unknown_allocations ~scale:(Float.min !scale 0.5) ~jobs:!jobs ()
        in
        Tab.print tab;
        Tab.print
          (E.Sensitivity.fragmentation_table (E.Sensitivity.fragmentation ~jobs:!jobs ()));
        Tab.print (E.Sensitivity.domain_reassignment ~macro);
        Tab.print (E.Sensitivity.isv_metadata ~macro);
        Tab.print (E.Sensitivity.cache_size_sweep ~scale:(Float.min !scale 0.6) ~jobs:!jobs ()))
  end

let service_section () =
  section "fig-9.3-tail" "Open-loop load-latency curves" (fun () ->
      let requests = max 500 (int_of_float (5000.0 *. Float.min 1.0 !scale)) in
      let points = if !scale < 1.0 then 3 else 4 in
      let variants = E.Schemes.standard @ E.Schemes.hardware in
      let labels = List.map (fun v -> v.E.Schemes.label) variants in
      let apps = Pv_workloads.Apps.all in
      let loads = E.Loadsweep.default_loads in
      (* stderr, so stdout stays byte-identical for every -j value *)
      Printf.eprintf "\n(calibrating service-time cost models, -j %d...)\n%!" !jobs;
      let cache = rescache () in
      let config = { E.Supervise.default with jobs = !jobs; cache } in
      let outcome = E.Loadsweep.run ~config ~points ~requests ~loads ~apps ~variants () in
      let tab =
        E.Loadsweep.table ~requests ~apps ~labels ~loads outcome.E.Loadsweep.point_sweep
      in
      Tab.print tab;
      maybe_csv "fig-9.3-tail" tab;
      Tab.print (E.Loadsweep.knee_table ~apps ~labels ~loads outcome.E.Loadsweep.point_sweep);
      E.Supervise.report ~label:"service-cal" outcome.E.Loadsweep.cal_sweep;
      E.Supervise.report ~label:"service" outcome.E.Loadsweep.point_sweep;
      if !cache_stats then Option.iter Pv_util.Rescache.report cache)

(* ------------------------------------------------------------------ *)
(* Cycle-loop microbenchmark: the BENCH_<date>.json trajectory          *)
(* ------------------------------------------------------------------ *)

module Benchjson = Pv_util.Benchjson

(* The trajectory cells are PINNED — fixed workloads, schemes, seed and
   scale, independent of --quick/--scale — so simulated-cycles/sec is
   comparable across PRs.  Changing any input here breaks the trajectory;
   start a new label instead. *)
let bench_scale = 0.5

let bench_lebench = [ "read"; "select"; "poll" ]

let bench_schemes = [ "UNSAFE"; "FENCE"; "PERSPECTIVE" ]

let today () =
  let tm = Unix.localtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday

let measure_cell ~workload ~scheme run =
  let t0 = Unix.gettimeofday () in
  let r : E.Perf.run = run () in
  let wall_s = Unix.gettimeofday () -. t0 in
  Benchjson.cell ~workload ~scheme ~sim_cycles:r.E.Perf.cycles
    ~committed:r.E.Perf.committed ~wall_s

let cycles_section () =
  section "cycles" "Pipeline cycle-loop microbenchmark" (fun () ->
      let variants =
        try List.map E.Schemes.find bench_schemes
        with Invalid_argument msg ->
          Printf.eprintf "%s\n" msg;
          exit 2
      in
      let cells =
        List.concat_map
          (fun name ->
            let test = Pv_workloads.Lebench.find name in
            List.map
              (fun (v : E.Schemes.variant) ->
                measure_cell ~workload:name ~scheme:v.E.Schemes.label (fun () ->
                    E.Perf.run_lebench ~scale:bench_scale v test))
              variants)
          bench_lebench
        @ List.map
            (fun (v : E.Schemes.variant) ->
              measure_cell ~workload:"httpd" ~scheme:v.E.Schemes.label (fun () ->
                  E.Perf.run_app ~scale:bench_scale v Pv_workloads.Apps.httpd))
            variants
      in
      let date = today () in
      let entry = Benchjson.make ~date ~label:"cycles" ~scale:bench_scale ~jobs:1 cells in
      let tab =
        Tab.create ~title:"Pipeline cycle-loop speed (pinned cells, serial)"
          ~header:
            [
              ("Workload", Tab.Left); ("Scheme", Tab.Left); ("Sim cycles", Tab.Right);
              ("Committed", Tab.Right); ("Wall s", Tab.Right); ("Mcycles/s", Tab.Right);
            ]
      in
      List.iter
        (fun (c : Benchjson.cell) ->
          Tab.row tab
            [
              c.Benchjson.workload; c.Benchjson.scheme;
              string_of_int c.Benchjson.sim_cycles; string_of_int c.Benchjson.committed;
              Printf.sprintf "%.3f" c.Benchjson.wall_s;
              Printf.sprintf "%.2f" (c.Benchjson.cps /. 1e6);
            ])
        entry.Benchjson.cells;
      Tab.caption tab
        (Printf.sprintf "aggregate: %d simulated cycles in %.3f s = %.2f Mcycles/s"
           entry.Benchjson.total_sim_cycles entry.Benchjson.total_wall_s
           (entry.Benchjson.agg_cps /. 1e6));
      Tab.print tab;
      let path =
        match !bench_out with Some p -> p | None -> Benchjson.filename ~date
      in
      (match Benchjson.validate entry with
      | Ok () -> ()
      | Error msg ->
        Printf.eprintf "BENCH: refusing to emit invalid entry: %s\n%!" msg;
        exit 3);
      let prev =
        Benchjson.latest_in
          ~dir:(Filename.dirname path)
          ~excluding:(Filename.basename path) ~label:"cycles" ()
      in
      Benchjson.write ~path entry;
      Printf.printf "\nBENCH: wrote %s (%.2f Mcycles/s aggregate)\n" path
        (entry.Benchjson.agg_cps /. 1e6);
      match prev with
      | None -> Printf.printf "BENCH: no previous trajectory entry; guard skipped\n"
      | Some prev_path -> (
        match Benchjson.load ~path:prev_path with
        | Error msg ->
          Printf.eprintf "BENCH: previous entry %s unreadable (%s); guard skipped\n%!"
            prev_path msg
        | Ok prev ->
          let delta = Benchjson.delta_pct ~prev ~cur:entry in
          Printf.printf "BENCH: %+.1f%% cycles/sec vs %s (%.2f -> %.2f Mcycles/s)\n"
            delta prev_path
            (prev.Benchjson.agg_cps /. 1e6)
            (entry.Benchjson.agg_cps /. 1e6);
          if !bench_guard && delta < -20.0 then begin
            Printf.eprintf
              "BENCH: simulated-cycles/sec regressed %.1f%% (> 20%% guard) vs %s\n%!"
              (-.delta) prev_path;
            exit 3
          end))

(* ------------------------------------------------------------------ *)
(* Pool scheduler microbenchmark: the BENCH_pool_<date>.json trajectory *)
(* ------------------------------------------------------------------ *)

(* Work-stealing vs the frozen shared-queue pool on two adversarial shapes:
   10^4 tiny uniform cells (dequeue-rate bound — the PR 9 contract-matrix
   shape, where the shared queue serializes every pop on one lock) and
   4 huge + 96 tiny cells (skew bound — finishing the tiny tail early wins
   nothing unless someone steals the huge cells' neighbours).  Cells are
   pure LCG spins, so both pools compute identical results and the
   measurement isolates scheduling cost.  Everything is PINNED (shapes,
   iteration counts, jobs=8) — same trajectory discipline as [cycles]. *)
let pool_jobs = 8

let pool_reps = 25

let pool_tiny_iters = 20

let pool_huge_iters = 5_000_000

let spin_cell (iters, seed) =
  let r = ref seed in
  for _ = 1 to iters do
    r := (!r * 2862933555777941757) + 3037000493
  done;
  !r

let pool_shapes =
  [
    ("tiny-10k", List.init 10_000 (fun i -> (pool_tiny_iters, i)));
    ( "mixed-4huge-96tiny",
      List.init 100 (fun i ->
          ((if i < 4 then pool_huge_iters else pool_tiny_iters), i)) );
  ]

let pool_section () =
  section "pool" "Pool scheduler microbenchmark (work stealing vs shared queue)"
    (fun () ->
      let date = today () in
      let measured =
        List.map
          (fun (shape, items) ->
            let n = List.length items in
            (* Interleave the two schedulers rep by rep and keep each one's
               best wall time: machine-load noise only ever ADDS time, so
               best-of-N at alternating instants is far more stable than
               timing one scheduler's whole block after the other's. *)
            let ref_out = ref [] and ws_out = ref [] in
            let ref_wall = ref infinity and ws_wall = ref infinity in
            let ctr =
              Pv_util.Pool_ref.with_pool ~jobs:pool_jobs (fun pref ->
                  Pv_util.Pool.with_pool ~jobs:pool_jobs (fun pws ->
                      for _ = 1 to pool_reps do
                        let t0 = Unix.gettimeofday () in
                        ref_out := Pv_util.Pool_ref.map pref spin_cell items;
                        ref_wall := Float.min !ref_wall (Unix.gettimeofday () -. t0);
                        let t0 = Unix.gettimeofday () in
                        ws_out := Pv_util.Pool.map pws spin_cell items;
                        ws_wall := Float.min !ws_wall (Unix.gettimeofday () -. t0)
                      done;
                      Pv_util.Pool.counters pws))
            in
            if !ref_out <> !ws_out then begin
              Printf.eprintf
                "POOL: %s: work-stealing results differ from shared-queue\n%!"
                shape;
              exit 3
            end;
            let cell scheme wall_s =
              (* For this trajectory a "cycle" is one processed cell, so
                 cps reads as cells per second (best of [pool_reps] reps). *)
              Benchjson.cell ~workload:shape ~scheme ~sim_cycles:n ~committed:n
                ~wall_s
            in
            (shape, ctr, cell "shared-queue" !ref_wall, cell "work-stealing" !ws_wall))
          pool_shapes
      in
      let cells =
        List.concat_map (fun (_, _, r, w) -> [ r; w ]) measured
      in
      let entry =
        Benchjson.make ~date ~label:"pool" ~scale:1.0 ~jobs:pool_jobs cells
      in
      let tab =
        Tab.create
          ~title:
            (Printf.sprintf "Pool scheduler throughput (pinned shapes, -j %d)"
               pool_jobs)
          ~header:
            [
              ("Shape", Tab.Left); ("Scheduler", Tab.Left); ("Cells", Tab.Right);
              ("Wall s", Tab.Right); ("cells/s", Tab.Right);
            ]
      in
      List.iter
        (fun (c : Benchjson.cell) ->
          Tab.row tab
            [
              c.Benchjson.workload; c.Benchjson.scheme;
              string_of_int c.Benchjson.sim_cycles;
              Printf.sprintf "%.3f" c.Benchjson.wall_s;
              Printf.sprintf "%.0f" c.Benchjson.cps;
            ])
        entry.Benchjson.cells;
      Tab.caption tab "Schedulers compute identical results; higher cells/s is better.";
      Tab.print tab;
      List.iter
        (fun (shape, (ctr : Pv_util.Pool.counters), rf, ws) ->
          Printf.printf
            "POOL: %s: work-stealing %.0f cells/s vs shared-queue %.0f = %.2fx\n"
            shape ws.Benchjson.cps rf.Benchjson.cps
            (if rf.Benchjson.cps > 0.0 then ws.Benchjson.cps /. rf.Benchjson.cps
             else 0.0);
          Printf.printf
            "POOL: %s: scheduler counters: %d local pops, %d steals, %d failed \
             steals, %d parks, %d unparks\n"
            shape ctr.Pv_util.Pool.local_pops ctr.Pv_util.Pool.steals
            ctr.Pv_util.Pool.failed_steals ctr.Pv_util.Pool.parks
            ctr.Pv_util.Pool.unparks)
        measured;
      (match Benchjson.validate entry with
      | Ok () -> ()
      | Error msg ->
        Printf.eprintf "BENCH: refusing to emit invalid pool entry: %s\n%!" msg;
        exit 3);
      let path =
        (* --bench-out redirects this section's file only when the pool
           section was selected explicitly; a full run keeps the two
           trajectories in their own files. *)
        match (!bench_out, !only) with
        | Some p, Some "pool" -> p
        | _ -> Benchjson.filename_for ~label:"pool" ~date
      in
      let prev =
        Benchjson.latest_in
          ~dir:(Filename.dirname path)
          ~excluding:(Filename.basename path) ~label:"pool" ()
      in
      Benchjson.write ~path entry;
      Printf.printf "\nBENCH: wrote %s (%.0f cells/s aggregate)\n" path
        entry.Benchjson.agg_cps;
      match prev with
      | None -> Printf.printf "BENCH: no previous pool trajectory entry; guard skipped\n"
      | Some prev_path -> (
        match Benchjson.load ~path:prev_path with
        | Error msg ->
          Printf.eprintf "BENCH: previous entry %s unreadable (%s); guard skipped\n%!"
            prev_path msg
        | Ok prev ->
          let delta = Benchjson.delta_pct ~prev ~cur:entry in
          Printf.printf "BENCH: %+.1f%% cells/sec vs %s (%.0f -> %.0f cells/s)\n"
            delta prev_path prev.Benchjson.agg_cps entry.Benchjson.agg_cps;
          if !bench_guard && delta < -20.0 then begin
            Printf.eprintf
              "BENCH: pool cells/sec regressed %.1f%% (> 20%% guard) vs %s\n%!"
              (-.delta) prev_path;
            exit 3
          end))

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the core primitives                      *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  (* DSV/ISV cache lookup *)
  let svcache = Perspective.Svcache.create ~name:"bench" () in
  for i = 0 to 127 do
    Perspective.Svcache.install svcache ~asid:1 i (i mod 2 = 0)
  done;
  let t_svcache =
    Test.make ~name:"svcache-lookup"
      (Staged.stage (fun () -> ignore (Perspective.Svcache.lookup svcache ~asid:1 64)))
  in
  (* DSVMT walk *)
  let dsvmt = Perspective.Dsvmt.create ~ctx:1 ~oracle:(fun ~page -> page land 1 = 0) in
  let page = ref 0 in
  let t_dsvmt =
    Test.make ~name:"dsvmt-walk"
      (Staged.stage (fun () ->
           page := (!page + 97) land 0xFFFF;
           ignore (Perspective.Dsvmt.walk dsvmt ~page:!page)))
  in
  (* secure slab kmalloc/kfree *)
  let phys = Pv_kernel.Physmem.create ~frames:4096 in
  let slab = Pv_kernel.Slab.create ~mode:Pv_kernel.Slab.Secure phys in
  let t_slab =
    Test.make ~name:"secure-slab-kmalloc-kfree"
      (Staged.stage (fun () ->
           match Pv_kernel.Slab.kmalloc slab ~owner:(Pv_kernel.Physmem.Cgroup 1) ~size:64 with
           | Some va -> Pv_kernel.Slab.kfree slab va
           | None -> ()))
  in
  (* buddy allocator *)
  let t_buddy =
    Test.make ~name:"buddy-alloc-free"
      (Staged.stage (fun () ->
           match Pv_kernel.Physmem.alloc_pages phys ~order:0 Pv_kernel.Physmem.Kernel with
           | Some f -> Pv_kernel.Physmem.free_pages phys ~frame:f ~order:0
           | None -> ()))
  in
  (* pipeline throughput: one complete run of a 64-iteration loop *)
  let bench_prog =
    let a = Pv_isa.Asm.create () in
    let loop = Pv_isa.Asm.fresh_label a in
    let done_ = Pv_isa.Asm.fresh_label a in
    Pv_isa.Asm.li a 1 0;
    Pv_isa.Asm.li a 2 64;
    Pv_isa.Asm.li a 3 Pv_isa.Layout.user_data_base;
    Pv_isa.Asm.place a loop;
    Pv_isa.Asm.branch a Pv_isa.Insn.Ge 1 2 done_;
    Pv_isa.Asm.load a 4 3 0;
    Pv_isa.Asm.alui a Pv_isa.Insn.Add 1 1 1;
    Pv_isa.Asm.jump a loop;
    Pv_isa.Asm.place a done_;
    Pv_isa.Asm.halt a;
    Pv_isa.Program.of_funcs
      [
        {
          Pv_isa.Program.fid = 0;
          name = "bench";
          space = Pv_isa.Layout.User;
          body = Pv_isa.Asm.finish a;
        };
      ]
  in
  let t_pipeline =
    Test.make ~name:"pipeline-64-iter-loop"
      (Staged.stage (fun () ->
           let ms = Pv_uarch.Memsys.create (Pv_isa.Mem.create ()) in
           let pipe = Pv_uarch.Pipeline.create ms bench_prog in
           ignore (Pv_uarch.Pipeline.run pipe ~asid:1 ~start:0)))
  in
  let tests =
    Test.make_grouped ~name:"perspective-primitives"
      [ t_svcache; t_dsvmt; t_slab; t_buddy; t_pipeline ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\n###### [bechamel] Core primitive timings ######\n\n%!";
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Printf.printf "  %-50s %12.1f ns/run\n" name est
      | Some _ | None -> Printf.printf "  %-50s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)

let () =
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      scale := 0.3;
      parse rest
    | "--scale" :: v :: rest ->
      scale := float_of_string v;
      parse rest
    | "--only" :: l :: rest ->
      only := Some l;
      parse rest
    | ("-j" | "--jobs") :: n :: rest ->
      let n = int_of_string n in
      if n < 1 then begin
        Printf.eprintf "-j: need at least one worker\n";
        exit 2
      end;
      jobs := n;
      parse rest
    | "--no-bechamel" :: rest ->
      run_bechamel := false;
      parse rest
    | "--csv" :: dir :: rest ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      csv_dir := Some dir;
      parse rest
    | "--metrics" :: file :: rest ->
      metrics_file := Some file;
      parse rest
    | "--trace-dir" :: dir :: rest ->
      trace_dir := Some dir;
      parse rest
    | "--cache" :: dir :: rest ->
      cache_dir := Some dir;
      parse rest
    | "--no-cache" :: rest ->
      no_cache := true;
      parse rest
    | "--cache-stats" :: rest ->
      cache_stats := true;
      parse rest
    | "--bench-out" :: path :: rest ->
      bench_out := Some path;
      parse rest
    | "--bench-guard" :: rest ->
      bench_guard := true;
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "unknown argument %s\n\
         usage: main.exe [--quick] [--scale F] [--only LABEL] [-j N] [--no-bechamel] [--csv DIR]\n\
        \       [--metrics FILE.json] [--trace-dir DIR] [--cache DIR] [--no-cache] [--cache-stats]\n\
        \       [--bench-out FILE.json] [--bench-guard]\n\
         labels: table-4.1 table-7.1 table-8.1 table-8.2 table-9.1 table-10.1\n\
        \        fig-9.1 fig-9.2 fig-9.3 fig-9.3-tail poc-attacks contracts comparisons\n\
        \        sensitivity cycles pool\n"
        arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  Printf.printf "Perspective reproduction benchmark harness\n";
  Printf.printf "==========================================\n";
  static_sections ();
  isv_sections ();
  poc_section ();
  contracts_section ();
  perf_sections ();
  service_section ();
  cycles_section ();
  pool_section ();
  if !run_bechamel && !only = None then bechamel_suite ();
  Printf.printf "\nDone.\n"
