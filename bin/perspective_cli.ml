(* Command-line interface for the Perspective reproduction.

   Subcommands:
     attack       run the transient-execution PoCs under a chosen scheme
     surface      ISV attack-surface study (Tables 8.1/8.2, Figure 9.1)
     perf         cycle-level performance runs (Figures 9.2/9.3, Table 10.1)
     service      open-loop load-latency curves (Figure 9.3-tail)
     security     PoC verdict matrix as a supervised sweep (Chapter 8)
     contracts    empirical leakage-contract matrix (attacks x schemes)
     sensitivity  view-cache capacity sweep, supervised
     hw           view-cache hardware characterization (Table 9.1)
     params       simulation parameters (Table 7.1)
     cves         the kernel CVE taxonomy (Table 4.1) *)

module E = Pv_experiments
module Tab = Pv_util.Tab
module Defense = Perspective.Defense
module Isv = Perspective.Isv
open Cmdliner

let scheme_conv =
  let parse s =
    match String.uppercase_ascii s with
    | "UNSAFE" -> Ok Defense.Unsafe
    | "FENCE" -> Ok Defense.Fence
    | "DOM" -> Ok Defense.Dom
    | "STT" -> Ok Defense.Stt
    | "PERSPECTIVE-STATIC" -> Ok (Defense.Perspective Isv.Static)
    | "PERSPECTIVE" -> Ok (Defense.Perspective Isv.Dynamic)
    | "PERSPECTIVE++" -> Ok (Defense.Perspective Isv.Plus)
    | "PERSPECTIVE-ALL" | "DSV-ONLY" -> Ok (Defense.Perspective Isv.All)
    | "SAFESPEC" -> Ok Defense.Safespec
    | "SPECBOX" -> Ok Defense.Specbox
    | _ -> Error (`Msg ("unknown scheme: " ^ s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Defense.scheme_name s))

let scheme_arg =
  Arg.(
    value
    & opt (some scheme_conv) None
    & info [ "s"; "scheme" ] ~docv:"SCHEME"
        ~doc:
          "Defense scheme: unsafe, fence, dom, stt, perspective-static, perspective, \
           perspective++, dsv-only, safespec, specbox.  Default: run all.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let scale_arg =
  Arg.(
    value & opt float 1.0
    & info [ "scale" ] ~docv:"F" ~doc:"Workload scale factor (iterations/requests).")

let jobs_arg =
  Arg.(
    value
    & opt int (Pv_util.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the experiment runs.  Results are deterministic: \
           any N produces output identical to -j 1 (the serial path).  Default: \
           the recommended domain count of this machine.")

(* --- supervision flags (perf, surface, security, sensitivity, service) --- *)

type sup = {
  retries : int;
  fault : Pv_util.Fault.t;
  max_cycles : int option;
  checkpoint : string option;
  resume : bool;
  cache_dir : string option;
  no_cache : bool;
  cache_stats : bool;
  workers : int;
  hosts : string option;
  pool_stats : bool;
}

let fault_conv =
  let parse s =
    let module F = Pv_util.Fault in
    try
      let specs =
        List.map
          (fun item ->
            match String.split_on_char '@' item with
            | [ kind; index ] ->
              let index = int_of_string index in
              let kind, first_attempts =
                match kind with
                | "crash" -> (F.Crash, F.always)
                | "flaky" -> (F.Crash, 1)
                | "slow" -> (F.Slow, F.always)
                | "poison" -> (F.Poison, F.always)
                | "livelock" -> (F.Livelock, F.always)
                (* kill is flaky by construction: the lost attempt re-queues
                   on a respawned worker, where the next attempt number no
                   longer matches — a persistent kill would only burn the
                   respawn budget. *)
                | "kill" -> (F.Kill, 1)
                | _ -> failwith kind
              in
              { F.index; kind; first_attempts }
            | _ -> failwith item)
          (String.split_on_char ',' (String.trim s))
      in
      Ok (F.plan specs)
    with _ ->
      Error
        (`Msg
           (Printf.sprintf
              "bad fault spec %S (expected KIND@INDEX[,KIND@INDEX...] with KIND one of \
               crash, flaky, slow, poison, livelock, kill)"
              s))
  in
  Arg.conv
    ( parse,
      fun ppf f ->
        Format.pp_print_string ppf (if Pv_util.Fault.is_none f then "none" else "<plan>") )

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:"Extra attempts for transiently failing cells (crashes) before giving up.")

let fault_arg =
  Arg.(
    value
    & opt fault_conv Pv_util.Fault.none
    & info [ "fault" ] ~docv:"SPEC"
        ~doc:
          "Deterministic fault injection, e.g. $(b,crash@2,livelock@1): job index 2 \
           crashes on every attempt, job 1 livelocks (its run hits the cycle watchdog).  \
           $(b,flaky@N) crashes once and succeeds on retry; $(b,slow@N) and \
           $(b,poison@N) are also available.  With $(b,--workers), $(b,kill@N) \
           SIGKILLs the worker process mid-cell (after it writes a deliberately \
           torn journal record); the coordinator respawns it and retries.  \
           Indices are positions in the sweep's cell list, so a spec is \
           reproducible for any -j and any --workers.")

let max_cycles_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-cycles" ] ~docv:"N"
        ~doc:
          "Cycle budget per simulation cell; a cell that exhausts it fails with a \
           structured timeout instead of hanging the sweep.  Default: the \
           simulator's own watchdog.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Journal completed cells to $(docv) as they finish.  Without $(b,--resume) \
           a stale journal is removed first.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Serve cells already present in the $(b,--checkpoint) journal instead of \
           re-running them; only the missing (e.g. previously failed or \
           interrupted) cells execute.")

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Persistent result cache: before running, each cell looks its canonical \
           input descriptor up in $(docv) (reported as CACHED; fault injection and \
           retries are skipped), and stores its result after.  A warm re-run of an \
           unchanged sweep performs zero simulation and produces byte-identical \
           tables and metrics.  Corrupt or version-mismatched entries are dropped \
           and recomputed, never trusted.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:"Ignore $(b,--cache): neither consult nor write the result cache.")

let cache_stats_arg =
  Arg.(
    value & flag
    & info [ "cache-stats" ]
        ~doc:
          "After the run, print one line of result-cache counters \
           (hits/misses/writes/evictions/corrupt_dropped) to stderr.  Requires \
           $(b,--cache).")

let workers_arg =
  Arg.(
    value & opt int 1
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Run sweep cells on $(docv) worker $(i,processes) (the CLI re-executes \
           itself in a hidden worker mode) instead of in-process domains.  The \
           coordinator survives worker death — including injected \
           $(b,--fault kill@I) — by respawning workers (bounded) and recovering \
           completed cells from each worker's crash-safe journal; tables and \
           $(b,--metrics) output are byte-identical to $(b,--workers 1).  \
           Composes with $(b,--cache): racing workers claim cells through the \
           shared result cache (lease, compute, atomic commit) instead of \
           double-computing.  With $(b,--hosts), $(docv) is the count of \
           $(i,local) workers and may be 0 (remote-only execution).")

let hosts_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "hosts" ] ~docv:"HOST:PORT[,HOST:PORT...]"
        ~doc:
          "Also dispatch sweep cells to standing remote workers started with \
           $(b,perspective_cli __worker --listen HOST:PORT), one connection per \
           listed address, over TCP.  Results never travel inside the control \
           protocol: each remote worker journals results locally and the \
           coordinator reads them from the shared filesystem (shared \
           $(b,--cache)/scratch) or pulls the journal's checksummed bytes over \
           the same connection after the sweep.  A dropped connection or \
           handshake timeout is arbitrated exactly like a killed local worker \
           (journal decides the in-flight cell), with a bounded per-host \
           reconnect budget; lost hosts are named on stderr and the sweep \
           completes on the remaining workers.")

let pool_stats_arg =
  Arg.(
    value & flag
    & info [ "pool-stats" ]
        ~doc:
          "Print the in-process pool's work-stealing scheduler counters (local \
           pops, steals, failed steals, parks, unparks) to stderr after each \
           sweep.  Diagnostics only: the counts depend on runtime \
           interleaving, so they never appear in tables or $(b,--metrics) \
           output.")

let sup_term =
  let mk retries fault max_cycles checkpoint resume cache_dir no_cache cache_stats workers
      hosts pool_stats =
    {
      retries;
      fault;
      max_cycles;
      checkpoint;
      resume;
      cache_dir;
      no_cache;
      cache_stats;
      workers;
      hosts;
      pool_stats;
    }
  in
  Cmdliner.Term.(
    const mk $ retries_arg $ fault_arg $ max_cycles_arg $ checkpoint_arg $ resume_arg
    $ cache_arg $ no_cache_arg $ cache_stats_arg $ workers_arg $ hosts_arg
    $ pool_stats_arg)

(* Validate the supervision flags, build the config, run [f] with it, and
   print the cache counters afterwards if asked.  Validation failures are
   one-line stderr diagnostics with exit code 2 (usage error) — notably a
   --resume pointing at a missing, empty or fully-torn checkpoint, which
   must not surface as an exception backtrace. *)
let with_sup_config sup ~jobs f =
  let usage fmt = Printf.ksprintf (fun m -> Printf.eprintf "%s\n" m; 2) fmt in
  if sup.resume && sup.checkpoint = None then
    usage "--resume requires --checkpoint FILE"
  else if sup.cache_stats && (sup.cache_dir = None || sup.no_cache) then
    usage "--cache-stats requires --cache DIR (and not --no-cache)"
  else if sup.workers < 0 then usage "--workers must be >= 0"
  else if sup.workers = 0 && sup.hosts = None then
    usage "--workers 0 requires --hosts (no workers to run cells on)"
  else
    match
      match sup.hosts with
      | None -> Ok []
      | Some spec -> Pv_util.Transport.parse_hostspecs spec
    with
    | Error msg -> usage "%s" msg
    | Ok hosts ->
    if hosts = [] && sup.hosts <> None then usage "--hosts lists no addresses"
    else
    let resume_ok =
      match sup.checkpoint with
      | Some file when sup.resume -> (
        match Pv_util.Journal.resume_status file with
        | Pv_util.Journal.Usable { records; distinct } ->
          (* distinct is what the sweep will actually skip: duplicate keys
             arise when a cell re-ran after an earlier resume. *)
          Printf.eprintf "resuming from %S: %d record%s, %d distinct cell%s\n%!" file
            records
            (if records = 1 then "" else "s")
            distinct
            (if distinct = 1 then "" else "s");
          Ok ()
        | Pv_util.Journal.Missing ->
          Error (Printf.sprintf "cannot resume: checkpoint %S does not exist" file)
        | Pv_util.Journal.Unusable why ->
          Error (Printf.sprintf "cannot resume from %S: %s" file why))
      | _ -> Ok ()
    in
    match resume_ok with
    | Error msg -> usage "%s" msg
    | Ok () ->
      (* A fresh checkpointed run must not inherit a previous run's cells.
         Never in a worker: the "stale" file is the coordinator's live
         journal, and workers keep their own (PV_WORKER_JOURNAL). *)
      (match sup.checkpoint with
      | Some f
        when (not sup.resume) && (not (Pv_util.Procpool.in_worker ()))
             && Sys.file_exists f ->
        Sys.remove f
      | _ -> ());
      let cache =
        match sup.cache_dir with
        | Some dir when not sup.no_cache -> Some (Pv_util.Rescache.open_dir dir)
        | _ -> None
      in
      let config =
        {
          E.Supervise.default with
          jobs;
          retries = sup.retries;
          fault = sup.fault;
          max_cycles = sup.max_cycles;
          checkpoint = sup.checkpoint;
          resume = sup.resume;
          cache;
          workers = sup.workers;
          hosts;
          pool_stats = sup.pool_stats;
        }
      in
      let code = f config in
      if sup.cache_stats then Option.iter Pv_util.Rescache.report cache;
      code

(* --- telemetry flags (perf) --- *)

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Export every cell's metric snapshot plus per-sweep summaries as JSON to \
           $(docv).  Deterministic: for a fixed workload the file is byte-identical \
           for any -j once the single wall-clock member is stripped \
           ($(b,grep -v '\"elapsed_s\"')).")

let trace_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-dir" ] ~docv:"DIR"
        ~doc:
          "Record the pipeline's bounded event trace (squashes, fences, VP releases \
           with cycle stamps) for every cell and dump one JSONL file per cell into \
           $(docv).")

let write_traces ~dir (sweep : _ E.Supervise.sweep) =
  if Pv_util.Procpool.in_worker () then ()
  else begin
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  List.iter
    (fun (key, run) ->
      match run with
      | None -> ()
      | Some r ->
        let file =
          Filename.concat dir
            (String.map (fun c -> if c = '/' then '_' else c) key ^ ".jsonl")
        in
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            List.iter
              (fun ev ->
                output_string oc (Pv_uarch.Pipeline.event_to_json ev);
                output_char oc '\n')
              r.E.Perf.events))
    sweep.E.Supervise.results
  end

(* --- attack --- *)

let attack_kinds = [ "v1"; "v2"; "rsb"; "all" ]

let attack_cmd =
  let kind =
    Arg.(
      value & pos 0 (enum (List.map (fun k -> (k, k)) attack_kinds)) "all"
      & info [] ~docv:"ATTACK" ~doc:"v1 (active), v2 (passive), rsb (passive), or all.")
  in
  let run kind scheme seed =
    let verdict label secret leaked fences =
      Printf.printf "  %-22s secret=%3d leaked=%-4s fences=%-3d -> %s\n" label secret
        (match leaked with Some v -> string_of_int v | None -> "none")
        fences
        (if leaked = Some secret then "SECRET LEAKED" else "blocked")
    in
    let v1 s =
      let o = Pv_attacks.Spectre_v1.run ~seed ~scheme:s () in
      verdict o.Pv_attacks.Spectre_v1.scheme o.Pv_attacks.Spectre_v1.secret
        o.Pv_attacks.Spectre_v1.leaked o.Pv_attacks.Spectre_v1.fences
    in
    let v2 s =
      let o = Pv_attacks.Spectre_v2.run ~seed ~scheme:s () in
      verdict o.Pv_attacks.Spectre_v2.scheme o.Pv_attacks.Spectre_v2.secret
        o.Pv_attacks.Spectre_v2.leaked o.Pv_attacks.Spectre_v2.fences
    in
    let rsb s =
      let o = Pv_attacks.Spectre_rsb.run ~seed ~scheme:s () in
      verdict o.Pv_attacks.Spectre_rsb.scheme o.Pv_attacks.Spectre_rsb.secret
        o.Pv_attacks.Spectre_rsb.leaked o.Pv_attacks.Spectre_rsb.fences
    in
    let schemes =
      match scheme with
      | Some s -> [ s ]
      | None ->
        [
          Defense.Unsafe; Defense.Fence; Defense.Dom; Defense.Stt;
          Defense.Perspective Isv.All; Defense.Perspective Isv.Static;
          Defense.Perspective Isv.Dynamic; Defense.Perspective Isv.Plus;
          Defense.Safespec; Defense.Specbox;
        ]
    in
    let section name f =
      Printf.printf "%s:\n" name;
      List.iter f schemes
    in
    (match kind with
    | "v1" -> section "Spectre v1 (active)" v1
    | "v2" -> section "Spectre v2 (passive, type confusion)" v2
    | "rsb" -> section "Spectre-RSB (passive, ret2spec)" rsb
    | _ ->
      section "Spectre v1 (active)" v1;
      section "Spectre v2 (passive, type confusion)" v2;
      section "Spectre-RSB (passive, ret2spec)" rsb);
    0
  in
  let doc = "Run transient-execution attack PoCs on the simulator." in
  Cmd.v (Cmd.info "attack" ~doc) Term.(const run $ kind $ scheme_arg $ seed_arg)

(* --- surface --- *)

let surface_cmd =
  let run seed jobs sup =
    with_sup_config sup ~jobs (fun config ->
        let study = E.Isv_study.build ~seed () in
        Tab.print (E.Isv_study.surface_table study);
        Tab.print (E.Isv_study.gadget_table study);
        let sweep = E.Supervise.run ~config (E.Isv_study.speedup_cells ~seed study) in
        Tab.print (E.Isv_study.speedup_table_rows sweep.E.Supervise.results);
        E.Supervise.report ~label:"surface" sweep;
        E.Supervise.exit_code [ sweep ])
  in
  let doc = "ISV attack-surface study: Tables 8.1/8.2 and Figure 9.1." in
  Cmd.v (Cmd.info "surface" ~doc) Term.(const run $ seed_arg $ jobs_arg $ sup_term)

(* --- perf --- *)

let perf_cmd =
  let workload =
    Arg.(
      value & opt (some string) None
      & info [ "w"; "workload" ] ~docv:"NAME"
          ~doc:"One LEBench test or app name; default: everything.")
  in
  let run workload scheme seed scale jobs sup metrics_file trace_dir =
    let variants =
      match scheme with
      | Some s ->
        (* UNSAFE is always prepended as the baseline; keep only the other
           variants of the requested scheme, so `-s unsafe` does not produce
           two UNSAFE cells (duplicate keys abort the sweep). *)
        E.Schemes.unsafe
        :: List.filter
             (fun v ->
               v.E.Schemes.scheme = s && v.E.Schemes.label <> E.Schemes.unsafe.E.Schemes.label)
             (E.Schemes.standard @ E.Schemes.hardware)
      | None -> E.Schemes.standard @ E.Schemes.hardware
    in
    let micro_tests =
      match workload with
      | None -> Pv_workloads.Lebench.tests
      | Some w -> (
        match List.find_opt (fun t -> t.Pv_workloads.Lebench.name = w) Pv_workloads.Lebench.tests with
        | Some t -> [ t ]
        | None -> [])
    in
    let apps =
      match workload with
      | None -> Pv_workloads.Apps.all
      | Some w -> List.filter (fun a -> a.Pv_workloads.Apps.name = w) Pv_workloads.Apps.all
    in
    if micro_tests = [] && apps = [] then begin
      Printf.eprintf "unknown workload\n";
      2
    end
    else
      (* The two sweeps share the checkpoint journal (their key spaces are
         disjoint), so the stale-journal removal must happen exactly once. *)
      with_sup_config sup ~jobs (fun config ->
      let trace = trace_dir <> None in
      let labels = List.map (fun v -> v.E.Schemes.label) variants in
      let width = List.length variants in
      let sweeps = ref [] in
      let exports = ref [] in
      let supervised ~label cells =
        let t0 = Unix.gettimeofday () in
        let sweep = E.Supervise.run ~config cells in
        (if metrics_file <> None then
           let elapsed = Unix.gettimeofday () -. t0 in
           exports :=
             E.Supervise.export ~elapsed
               ~metrics_of:(fun r -> r.E.Perf.metrics)
               ~label sweep
             :: !exports);
        Option.iter (fun dir -> write_traces ~dir sweep) trace_dir;
        sweep
      in
      if micro_tests <> [] then begin
        let sweep =
          supervised ~label:"lebench"
            (E.Perf.lebench_cells ~seed ~scale ~trace ~tests:micro_tests ~variants ())
        in
        let names = List.map (fun t -> t.Pv_workloads.Lebench.name) micro_tests in
        Tab.print
          (E.Perf_report.fig_lebench_partial ~labels
             (E.Perf.matrix_of_sweep ~names ~width sweep));
        E.Supervise.report ~label:"lebench" sweep;
        sweeps := sweep :: !sweeps
      end;
      if apps <> [] then begin
        let sweep =
          supervised ~label:"apps"
            (E.Perf.apps_cells ~seed ~scale ~trace ~apps ~variants ())
        in
        let names = List.map (fun a -> a.Pv_workloads.Apps.name) apps in
        Tab.print
          (E.Perf_report.fig_apps_partial ~labels
             (E.Perf.matrix_of_sweep ~names ~width sweep));
        E.Supervise.report ~label:"apps" sweep;
        sweeps := sweep :: !sweeps
      end;
      Option.iter (fun file -> E.Supervise.write_json ~file (List.rev !exports)) metrics_file;
      E.Supervise.exit_code !sweeps)
  in
  let doc = "Cycle-level performance runs (Figures 9.2/9.3)." in
  Cmd.v
    (Cmd.info "perf" ~doc)
    Term.(
      const run $ workload $ scheme_arg $ seed_arg $ scale_arg $ jobs_arg $ sup_term
      $ metrics_arg $ trace_dir_arg)

(* --- service --- *)

let split_commas s =
  String.split_on_char ',' s |> List.map String.trim |> List.filter (fun x -> x <> "")

let service_cmd =
  let app_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "app" ] ~docv:"NAMES"
          ~doc:"Comma-separated datacenter app names.  Default: all apps.")
  in
  let schemes_arg =
    Arg.(
      value
      & opt string "UNSAFE,FENCE,PERSPECTIVE"
      & info [ "schemes" ] ~docv:"LABELS"
          ~doc:
            "Comma-separated scheme labels (UNSAFE, FENCE, PERSPECTIVE-STATIC, \
             PERSPECTIVE, PERSPECTIVE++, DOM, STT).  UNSAFE is always included: it \
             calibrates the capacity every load fraction is relative to.")
  in
  let loads_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "load" ] ~docv:"FRACTIONS"
          ~doc:
            "Comma-separated offered loads as fractions of the app's UNSAFE \
             capacity, e.g. $(b,0.5,0.9,1.2).  Default: \
             0.3,0.5,0.7,0.85,0.95,1.1,1.3.")
  in
  let cores_arg =
    Arg.(value & opt int 4 & info [ "cores" ] ~docv:"N" ~doc:"Simulated server cores.")
  in
  let queue_bound_arg =
    Arg.(
      value & opt int 32
      & info [ "queue-bound" ] ~docv:"N"
          ~doc:
            "Per-core admission bound (counting the request in service); an arrival \
             finding a full queue is shed.")
  in
  let dispatch_arg =
    Arg.(
      value & opt string "rr"
      & info [ "dispatch" ] ~docv:"POLICY"
          ~doc:"Dispatch policy: $(b,rr) (round-robin) or $(b,jsq) (join-shortest-queue).")
  in
  let requests_arg =
    Arg.(
      value & opt int 5000
      & info [ "requests" ] ~docv:"N" ~doc:"Open-loop arrivals per load point.")
  in
  let run app schemes loads cores queue_bound dispatch requests seed jobs sup metrics_file =
    let usage fmt = Printf.ksprintf (fun m -> Printf.eprintf "%s\n" m; 2) fmt in
    match E.Loadsweep.Server.dispatch_of_string dispatch with
    | Error e -> usage "%s" e
    | Ok dispatch -> (
      let apps =
        match app with
        | None -> Ok Pv_workloads.Apps.all
        | Some names ->
          List.fold_left
            (fun acc name ->
              Result.bind acc (fun apps ->
                  match
                    List.find_opt
                      (fun a -> a.Pv_workloads.Apps.name = name)
                      Pv_workloads.Apps.all
                  with
                  | Some a -> Ok (apps @ [ a ])
                  | None -> Error name))
            (Ok []) (split_commas names)
      in
      match apps with
      | Error name -> usage "unknown app %S" name
      | Ok [] -> usage "no apps selected"
      | Ok apps -> (
        let labels = List.map String.uppercase_ascii (split_commas schemes) in
        let labels = if List.mem "UNSAFE" labels then labels else "UNSAFE" :: labels in
        (* First occurrence wins: a repeated label would declare duplicate
           cell keys and abort the sweep. *)
        let labels =
          List.rev
            (List.fold_left
               (fun acc l -> if List.mem l acc then acc else l :: acc)
               [] labels)
        in
        let variants =
          List.fold_left
            (fun acc label ->
              Result.bind acc (fun vs ->
                  match
                    List.find_opt
                      (fun v -> v.E.Schemes.label = label)
                      (E.Schemes.standard @ E.Schemes.hardware)
                  with
                  | Some v -> Ok (vs @ [ v ])
                  | None -> Error label))
            (Ok []) labels
        in
        match variants with
        | Error label -> usage "unknown scheme label %S for the service model" label
        | Ok variants -> (
          let loads =
            match loads with
            | None -> Ok E.Loadsweep.default_loads
            | Some s -> (
              try
                let ls = List.map float_of_string (split_commas s) in
                if ls = [] || List.exists (fun l -> Float.is_nan l || l <= 0.0) ls then
                  Error s
                else Ok ls
              with _ -> Error s)
          in
          match loads with
          | Error s -> usage "bad load list %S (expected positive fractions)" s
          | Ok loads ->
            if cores <= 0 then usage "--cores must be positive"
            else if queue_bound < 0 then
              usage "--queue-bound must be non-negative (0 sheds every arrival)"
            else if requests <= 0 then usage "--requests must be positive"
            else
              with_sup_config sup ~jobs (fun config ->
              let server = { E.Loadsweep.Server.cores; queue_bound; dispatch } in
              let t0 = Unix.gettimeofday () in
              let outcome =
                E.Loadsweep.run ~config ~seed ~requests ~server ~loads ~apps ~variants ()
              in
              Tab.print
                (E.Loadsweep.table ~server ~requests ~apps ~labels ~loads
                   outcome.E.Loadsweep.point_sweep);
              Tab.print
                (E.Loadsweep.knee_table ~apps ~labels ~loads
                   outcome.E.Loadsweep.point_sweep);
              E.Supervise.report ~label:"service-cal" outcome.E.Loadsweep.cal_sweep;
              E.Supervise.report ~label:"service" outcome.E.Loadsweep.point_sweep;
              Option.iter
                (fun file ->
                  let elapsed = Unix.gettimeofday () -. t0 in
                  E.Supervise.write_json ~file (E.Loadsweep.exports ~elapsed outcome))
                metrics_file;
              E.Loadsweep.exit_code outcome))))
  in
  let doc =
    "Open-loop request serving: load-latency curves, saturation knees and overload \
     shedding per defense scheme (Figure 9.3-tail)."
  in
  Cmd.v
    (Cmd.info "service" ~doc)
    Term.(
      const run $ app_arg $ schemes_arg $ loads_arg $ cores_arg $ queue_bound_arg
      $ dispatch_arg $ requests_arg $ seed_arg $ jobs_arg $ sup_term $ metrics_arg)

(* --- security --- *)

let security_cmd =
  let attacks_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "attacks" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated attack families to run ($(b,v1), $(b,v2), $(b,rsb)).  \
             Default: all three.")
  in
  let run seed attacks jobs sup =
    let usage fmt = Printf.ksprintf (fun m -> Printf.eprintf "%s\n" m; 2) fmt in
    let attacks = Option.map split_commas attacks in
    if attacks = Some [] then usage "--attacks lists no attack families"
    else
      match
        try Ok (E.Security.run_pocs_cells ~seed ?attacks ())
        with Invalid_argument msg -> Error msg
      with
      | Error msg -> usage "%s" msg
      | Ok cells ->
        with_sup_config sup ~jobs (fun config ->
            let sweep = E.Supervise.run ~config cells in
            Tab.print (E.Security.poc_table_partial sweep.E.Supervise.results);
            E.Supervise.report ~label:"pocs" sweep;
            E.Supervise.exit_code [ sweep ])
  in
  let doc =
    "Proof-of-concept transient-execution attacks under every scheme (Chapter 8), \
     as a supervised sweep."
  in
  Cmd.v (Cmd.info "security" ~doc)
    Term.(const run $ seed_arg $ attacks_arg $ jobs_arg $ sup_term)

(* --- contracts --- *)

let contracts_cmd =
  let module C = Pv_contracts.Contracts in
  let attacks_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "attacks" ] ~docv:"NAMES"
          ~doc:
            (Printf.sprintf "Comma-separated attack names (%s).  Default: all."
               (String.concat ", " C.attack_names)))
  in
  let schemes_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "schemes" ] ~docv:"LABELS"
          ~doc:
            (Printf.sprintf "Comma-separated scheme labels (%s).  Default: all."
               (String.concat ", " C.scheme_labels)))
  in
  let csv_arg =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the matrix as CSV to $(docv).")
  in
  let run seed attacks schemes csv jobs sup =
    let usage fmt = Printf.ksprintf (fun m -> Printf.eprintf "%s\n" m; 2) fmt in
    let attacks = Option.map split_commas attacks in
    let schemes = Option.map split_commas schemes in
    if attacks = Some [] then usage "--attacks lists no attack names"
    else if schemes = Some [] then usage "--schemes lists no scheme labels"
    else
      match
        (* Normalize scheme labels through the registry so matrix lookups
           match the canonical cell keys whatever the input case. *)
        try
          let schemes =
            Option.map (List.map (fun l -> Defense.scheme_name (C.find_scheme l))) schemes
          in
          Ok (schemes, C.cells ~seed ?attacks ?schemes ())
        with Invalid_argument msg -> Error msg
      with
      | Error msg -> usage "%s" msg
      | Ok (schemes, cells) ->
        with_sup_config sup ~jobs (fun config ->
            let sweep = E.Supervise.run ~config cells in
            let results = sweep.E.Supervise.results in
            Tab.print (C.matrix_table ?attacks ?schemes results);
            Option.iter
              (fun file ->
                let oc = open_out file in
                output_string oc (C.matrix_csv ?attacks ?schemes results);
                close_out oc)
              csv;
            E.Supervise.report ~label:"contracts" sweep;
            E.Supervise.exit_code [ sweep ])
  in
  let doc =
    "Empirical leakage-contract matrix: run every attack twice with differing \
     planted secrets under every scheme, diff the canonical observation traces \
     and classify each cell as ARCH-SEQ, CT-SEQ or CT-SPEC."
  in
  Cmd.v (Cmd.info "contracts" ~doc)
    Term.(const run $ seed_arg $ attacks_arg $ schemes_arg $ csv_arg $ jobs_arg $ sup_term)

(* --- sensitivity --- *)

let sensitivity_cmd =
  let run seed scale jobs sup =
    with_sup_config sup ~jobs (fun config ->
        let sweep = E.Supervise.run ~config (E.Sensitivity.cache_size_cells ~seed ~scale ()) in
        Tab.print (E.Sensitivity.cache_size_table sweep.E.Supervise.results);
        E.Supervise.report ~label:"cache-size" sweep;
        E.Supervise.exit_code [ sweep ])
  in
  let scale_arg =
    Arg.(
      value & opt float 0.6
      & info [ "scale" ] ~docv:"F" ~doc:"Workload scale factor (iterations/requests).")
  in
  let doc = "View-cache capacity sensitivity sweep (32..512 entries), supervised." in
  Cmd.v
    (Cmd.info "sensitivity" ~doc)
    Term.(const run $ seed_arg $ scale_arg $ jobs_arg $ sup_term)

(* --- small static commands --- *)

let table_cmd name doc table =
  let run () =
    Tab.print (table ());
    0
  in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ const ())

let hw_cmd = table_cmd "hw" "View-cache hardware characterization (Table 9.1)."
    E.Static_tables.hw_characterization

let params_cmd = table_cmd "params" "Simulation parameters (Table 7.1)." E.Static_tables.sim_params

let cves_cmd = table_cmd "cves" "Kernel CVE taxonomy (Table 4.1)." E.Security.cve_table

let () =
  let doc = "Perspective: pliable and secure speculation in operating systems (reproduction)" in
  let info = Cmd.info "perspective" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        attack_cmd; surface_cmd; perf_cmd; service_cmd; security_cmd; contracts_cmd;
        sensitivity_cmd; hw_cmd; params_cmd; cves_cmd;
      ]
  in
  (* Exit codes: 0 clean, 1 a sweep had failed cells (commands return it),
     2 usage error, 125 unexpected exception. *)
  let eval_list args =
    let argv =
      Array.of_list
        ((if Array.length Sys.argv > 0 then Sys.argv.(0) else "perspective") :: args)
    in
    match Cmd.eval_value ~argv group with
    | Ok (`Ok code) -> code
    | Ok (`Version | `Help) -> 0
    | Error (`Parse | `Term) -> 2
    | Error `Exn -> 125
  in
  (* Multi-process mode: a worker is this same binary re-executed with a
     hidden __worker argv marker; it parses the identical command line (so
     it rebuilds the identical sweep) but Supervise hands its cells out of
     the coordinator's pipe instead of running the whole sweep.  The
     original argv is recorded either way — it is what the coordinator
     re-executes under --workers N and ships in the HELLO under --hosts.
     `__worker --listen HOST:PORT` instead starts a standing TCP worker
     that serves coordinators forever, evaluating each HELLO's argv. *)
  let args = match Array.to_list Sys.argv with _ :: rest -> rest | [] -> [] in
  let args =
    match args with
    | marker :: rest when marker = Pv_util.Procpool.worker_arg -> (
      match rest with
      | l :: spec :: _ when l = Pv_util.Procpool.listen_arg ->
        Pv_util.Procpool.standing_worker ~listen:spec ~run:(fun ~argv ->
            Pv_util.Procpool.set_reexec_argv argv;
            eval_list argv)
      | _ ->
        ignore (Pv_util.Procpool.worker_init ());
        rest)
    | _ -> args
  in
  Pv_util.Procpool.set_reexec_argv args;
  exit (eval_list args)
