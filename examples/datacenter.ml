(* Datacenter scenario: a throughput-oriented comparison of defense schemes
   on the four server applications of the paper's evaluation.

     dune exec examples/datacenter.exe [--quick]

   For each app the request loop runs under UNSAFE, FENCE, DOM, STT and
   PERSPECTIVE; throughput is derived from simulated cycles per request at
   2 GHz and shown normalized to UNSAFE, next to the paper's baseline
   numbers.  A second part serves redis from an open-loop arrival process
   through the pv_service queueing model, showing how each scheme's tail
   latency and shedding behave as offered load crosses saturation. *)

module E = Pv_experiments
module Apps = Pv_workloads.Apps

let () =
  let scale = if Array.length Sys.argv > 1 && Sys.argv.(1) = "--quick" then 0.2 else 0.5 in
  let variants =
    [ E.Schemes.unsafe; E.Schemes.fence; E.Schemes.dom; E.Schemes.stt; E.Schemes.perspective ]
  in
  Printf.printf "%-10s %-12s %10s %10s %8s %s\n" "app" "scheme" "cyc/req" "kRPS@2GHz"
    "norm" "";
  Printf.printf "%s\n" (String.make 64 '-');
  List.iter
    (fun app ->
      let runs = List.map (fun v -> E.Perf.run_app ~scale v app) variants in
      let base = List.hd runs in
      List.iter
        (fun (r : E.Perf.run) ->
          let cpr = float_of_int r.E.Perf.cycles /. float_of_int r.E.Perf.units in
          let krps = 2.0e6 /. cpr in
          Printf.printf "%-10s %-12s %10.0f %10.1f %8.2f %s\n"
            (if r.E.Perf.label = "UNSAFE" then app.Apps.name else "")
            r.E.Perf.label cpr krps
            (E.Perf.normalized_throughput ~baseline:base r)
            (if r.E.Perf.label = "UNSAFE" then
               Printf.sprintf "(paper baseline: %.1f kRPS)" app.Apps.paper_unsafe_krps
             else "")
        )
        runs;
      Printf.printf "%s\n" (String.make 64 '-'))
    Apps.all;
  Printf.printf
    "Simulated requests are scaled down, so absolute kRPS exceeds the paper's\n\
     testbed numbers; the normalized column is the reproduction target\n\
     (paper: FENCE ~0.94, PERSPECTIVE ~0.99 on average).\n";
  (* Part 2: the same schemes serving redis open-loop.  Loads are fractions
     of the UNSAFE capacity, so FENCE's fatter service times push it past
     saturation (bounded p99, rising shed) while PERSPECTIVE tracks UNSAFE. *)
  Printf.printf "\nOpen-loop service model (redis, 4 cores, queue bound 32):\n\n";
  let svc_variants = [ E.Schemes.unsafe; E.Schemes.fence; E.Schemes.perspective ] in
  let labels = List.map (fun v -> v.E.Schemes.label) svc_variants in
  let loads = [ 0.5; 0.9; 1.2 ] in
  let redis = [ Apps.redis ] in
  let outcome =
    E.Loadsweep.run ~points:3 ~requests:2000 ~loads ~apps:redis ~variants:svc_variants ()
  in
  Pv_util.Tab.print
    (E.Loadsweep.table ~requests:2000 ~apps:redis ~labels ~loads
       outcome.E.Loadsweep.point_sweep);
  Pv_util.Tab.print
    (E.Loadsweep.knee_table ~apps:redis ~labels ~loads outcome.E.Loadsweep.point_sweep)
