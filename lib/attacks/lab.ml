module Physmem = Pv_kernel.Physmem
module Mem = Pv_isa.Mem
module Memsys = Pv_uarch.Memsys
module Pipeline = Pv_uarch.Pipeline
module Defense = Perspective.Defense
module View_manager = Perspective.View_manager
module Isv = Perspective.Isv
module Bitset = Pv_util.Bitset

type t = {
  phys : Physmem.t;
  mem : Mem.t;
  ms : Memsys.t;
  pipe : Pipeline.t;
  node_of_fid : int -> int option;
  nnodes : int;
  mutable defense : Defense.t option;
}

let create ~prog ~node_of_fid ~nnodes ?(frames = 1024) ?(trace = false) ~seed () =
  ignore seed;
  let phys = Physmem.create ~frames in
  let mem = Mem.create () in
  let ms = Memsys.create mem in
  let config =
    if trace then
      { Pipeline.default_config with trace_events = true; trace_capacity = 65536 }
    else Pipeline.default_config
  in
  let pipe = Pipeline.create ~config ms prog in
  { phys; mem; ms; pipe; node_of_fid; nnodes; defense = None }

let phys t = t.phys
let mem t = t.mem
let memsys t = t.ms
let pipeline t = t.pipe

let alloc t ~owner ~count =
  List.init count (fun _ ->
      match Physmem.alloc_pages t.phys ~order:0 owner with
      | Some f -> Physmem.frame_va f
      | None -> failwith "Lab.alloc: out of frames")

let install t ~scheme ~views =
  let oracle ~ctx ~page =
    match Physmem.owner_of t.phys page with
    | Some (Physmem.Cgroup c) -> c = ctx
    | Some Physmem.Kernel | Some Physmem.Unknown | None -> false
  in
  let vm = View_manager.create ~nnodes:t.nnodes ~oracle in
  List.iter
    (fun (asid, ctx, nodes) ->
      let kind =
        match scheme with
        | Defense.Perspective k -> k
        | Defense.Unsafe | Defense.Fence | Defense.Dom | Defense.Stt
        | Defense.Safespec | Defense.Specbox ->
          Isv.All
      in
      View_manager.register vm ~asid ~ctx ~isv:(Isv.of_nodes kind nodes))
    views;
  let d =
    Defense.build ~scheme ~vm ~node_of_fid:t.node_of_fid ~block_unknown:true
      ~memsys:t.ms ()
  in
  t.defense <- Some d;
  Pipeline.set_guard t.pipe (Defense.guard d)

let defense t = t.defense

let flush t va = Memsys.flush_line t.ms va

let warm t va = ignore (Memsys.data_read t.ms va)

let warm_code t ~asid va =
  ignore (Memsys.inst_read t.ms (Pv_isa.Layout.phys_key ~asid va))

let reload_cycles t va = Memsys.reload_latency t.ms va

(* Anything faster than an L2 round trip counts as a cache hit for the
   reload decoder. *)
let hit_threshold = 9

let hot_slots t ~base ~slots =
  let hits = ref [] in
  for s = slots - 1 downto 0 do
    if reload_cycles t (base + (s * 64)) < hit_threshold then hits := s :: !hits
  done;
  !hits

let store t va v = Mem.store t.mem va v

let load t va = Mem.load t.mem va
