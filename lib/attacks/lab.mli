(** Shared scaffolding for attack proof-of-concepts.

    A lab is a miniature machine — physical memory with owned frames, the
    memory hierarchy, a pipeline, and an installable defense — plus the
    attacker-side primitives: cache-line eviction ("flush") and the reload
    half of flush+reload.  Reloads probe physical keys (the direct-map
    alias of the line the gadget touched), which is how a real attacker's
    user mapping and the kernel's direct-map access meet at the same
    physical set. *)

type t

val create :
  prog:Pv_isa.Program.t ->
  node_of_fid:(int -> int option) ->
  nnodes:int ->
  ?frames:int ->
  ?trace:bool ->
  seed:int ->
  unit ->
  t
(** [trace] (default false) turns on the pipeline's event-trace ring with a
    64 K capacity — the contract checker's observation tap. *)

val phys : t -> Pv_kernel.Physmem.t
val mem : t -> Pv_isa.Mem.t
val memsys : t -> Pv_uarch.Memsys.t
val pipeline : t -> Pv_uarch.Pipeline.t

val alloc : t -> owner:Pv_kernel.Physmem.owner -> count:int -> int list
(** Allocate [count] single frames; returns direct-map VAs. *)

val install :
  t ->
  scheme:Perspective.Defense.scheme ->
  views:(int * int * Pv_util.Bitset.t) list ->
  unit
(** [views] is [(asid, ctx, isv_nodes)] per context.  Non-Perspective schemes
    ignore the views. *)

val defense : t -> Perspective.Defense.t option

val flush : t -> int -> unit
(** Evict the line holding this VA from the whole hierarchy. *)

val warm : t -> int -> unit
(** Bring the line holding this VA into the caches. *)

val warm_code : t -> asid:int -> int -> unit
(** Warm the instruction line holding a code VA for the given address space
    (models gadget code living in a hot shared-library text page). *)

val reload_cycles : t -> int -> int

val hot_slots : t -> base:int -> slots:int -> int list
(** Reload-timing sweep over [slots] 64-byte slots; returns those that hit
    (latency below the L2 threshold). *)

val store : t -> int -> int -> unit
val load : t -> int -> int
