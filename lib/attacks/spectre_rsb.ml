module I = Pv_isa.Insn
module Asm = Pv_isa.Asm
module Layout = Pv_isa.Layout
module Program = Pv_isa.Program
module Iss = Pv_isa.Iss
module Pipeline = Pv_uarch.Pipeline
module Physmem = Pv_kernel.Physmem
module Defense = Perspective.Defense
module Isv = Perspective.Isv
module Bitset = Pv_util.Bitset
module Rng = Pv_util.Rng

type outcome = {
  scheme : string;
  secret : int;
  leaked : int option;
  success : bool;
  fences : int;
  hot_slot_count : int;
}

(* fids: 0 = victim syscall V (kernel), 1 = small callee D (user),
   2 = attacker poisoner with embedded gadget (user), 3 = victim driver. *)
let v_fid = 0

let d_fid = 1

let poison_fid = 2

let victim_fid = 3

(* V loads the secret reference and returns with an unbalanced Ret: the
   syscall entry pushed no RAS entry, so the return predictor serves
   whatever the attacker left behind. *)
let v_body () =
  let a = Asm.create () in
  Asm.load a 1 9 16;
  Asm.ret a;
  Asm.finish a

let d_body () =
  let a = Asm.create () in
  Asm.alui a I.Add 15 15 1;
  Asm.ret a;
  Asm.finish a

(* The poisoner calls D; the instructions after the call — the gadget — are
   the return address D's Ret leaves in the RAS slot.  The attacker also
   executes them architecturally (with its own junk in r1), which is
   harmless. *)
let poison_body () =
  let a = Asm.create () in
  Asm.li a 1 Layout.user_data_base (* junk reference for the architectural pass *);
  Asm.li a 10 Layout.user_data_base;
  Asm.call a d_fid;
  (* --- gadget: transiently reached via the stale RAS entry --- *)
  Asm.load a 4 1 0;
  Asm.alui a I.And 4 4 255;
  Asm.alui a I.Mul 4 4 64;
  Asm.alu a I.Add 5 10 4;
  Asm.load a 6 5 0;
  (* --- end gadget --- *)
  Asm.halt a;
  Asm.finish a

let victim_driver () =
  let a = Asm.create () in
  Asm.li a 0 0;
  Asm.syscall a;
  Asm.halt a;
  Asm.finish a

let attacker_asid = 1

let victim_asid = 2

let attacker_ctx = 1

let victim_ctx = 2

let node_of_fid fid = if fid = v_fid then Some 0 else None

let run ?(seed = 13) ?secret ?(trace = false) ?on_commit ?observe ~scheme () =
  let rng = Rng.create seed in
  let secret = match secret with Some s -> s land 255 | None -> Rng.int rng 256 in
  let prog =
    Program.of_funcs
      [
        { Program.fid = v_fid; name = "k_unbalanced_ret"; space = Layout.Kernel; body = v_body () };
        { Program.fid = d_fid; name = "poison_callee"; space = Layout.User; body = d_body () };
        { Program.fid = poison_fid; name = "attacker_poison"; space = Layout.User; body = poison_body () };
        { Program.fid = victim_fid; name = "victim"; space = Layout.User; body = victim_driver () };
      ]
  in
  let lab = Lab.create ~prog ~node_of_fid ~nnodes:2 ~trace ~seed () in
  let alloc1 owner =
    match Lab.alloc lab ~owner ~count:1 with [ va ] -> va | _ -> assert false
  in
  let vic_params = alloc1 (Physmem.Cgroup victim_ctx) in
  let vic_secret = alloc1 (Physmem.Cgroup victim_ctx) in
  let transmit =
    match Physmem.alloc_pages (Lab.phys lab) ~order:2 (Physmem.Cgroup victim_ctx) with
    | Some f -> Physmem.frame_va f
    | None -> failwith "no frames"
  in
  Lab.store lab vic_secret secret;
  Lab.store lab (vic_params + 16) vic_secret;
  let vic_isv = Bitset.of_list 2 [ 0 ] in
  let att_isv = Bitset.of_list 2 [ 0 ] in
  Lab.install lab ~scheme
    ~views:[ (attacker_asid, attacker_ctx, att_isv); (victim_asid, victim_ctx, vic_isv) ];
  let pipe = Lab.pipeline lab in
  let hooks =
    {
      Pipeline.on_syscall =
        (fun _ -> Iss.Redirect (v_fid, [ (9, vic_params); (10, transmit) ]));
      on_sysret = (fun _ -> Iss.Skip);
      on_commit;
    }
  in
  (* 1. Attacker leaves the gadget VA in the return address stack. *)
  let poison = Pipeline.run ~hooks pipe ~asid:attacker_asid ~start:poison_fid in
  (match poison.Pipeline.outcome with
  | Pipeline.Halted -> ()
  | Pipeline.Out_of_fuel | Pipeline.Fault _ -> failwith "rsb: poison run failed");
  (* 2. Evict the victim's return-stack line (slow return resolution) and
     the covert channel; keep the secret warm. *)
  Lab.flush lab (Pipeline.ret_stack_va ~asid:victim_asid ~depth:1);
  for s = 0 to 255 do
    Lab.flush lab (transmit + (s * 64))
  done;
  Lab.warm lab vic_secret;
  Lab.warm lab vic_params;
  (* The gadget sits in shared-library text: physically one page, hot from
     the attacker's own execution. *)
  for idx = 3 to 8 do
    Lab.warm_code lab ~asid:victim_asid (Layout.insn_va Layout.User poison_fid idx)
  done;
  let before = Pipeline.copy_counters (Pipeline.counters pipe) in
  (* 3. The victim's innocent system call. *)
  let victim = Pipeline.run ~hooks pipe ~asid:victim_asid ~start:victim_fid in
  (match victim.Pipeline.outcome with
  | Pipeline.Halted -> ()
  | Pipeline.Out_of_fuel | Pipeline.Fault _ -> failwith "rsb: victim run failed");
  let delta = Pipeline.diff_counters (Pipeline.counters pipe) before in
  (* Observation point for the contract checker (pre-reload). *)
  (match observe with Some f -> f lab | None -> ());
  let hot = Lab.hot_slots lab ~base:transmit ~slots:256 in
  let leaked = match hot with [ s ] -> Some s | _ -> None in
  {
    scheme = Defense.scheme_name scheme;
    secret;
    leaked;
    success = leaked = Some secret;
    fences = Pipeline.total_fences delta;
    hot_slot_count = List.length hot;
  }

let run_all ?(seed = 13) () =
  let schemes =
    [
      Defense.Unsafe;
      Defense.Fence;
      Defense.Dom;
      Defense.Stt;
      Defense.Perspective Perspective.Isv.Static;
      Defense.Perspective Perspective.Isv.Dynamic;
      Defense.Perspective Perspective.Isv.Plus;
      Defense.Safespec;
      Defense.Specbox;
    ]
  in
  List.map (fun scheme -> run ~seed ~scheme ()) schemes
