(** Passive transient-execution attack: Spectre-RSB / ret2spec.

    The return address stack predicts from stale entries on underflow.  The
    attacker runs first, leaving the VA of a gadget in its own user code at
    the top of the RAS.  The victim's system call ends in a return whose
    stack line the attacker evicted: while the return resolves, fetch
    speculates to the stale RAS entry — the attacker's user-space gadget —
    which runs transiently {e in kernel context} with the victim's secret
    reference still live in a register, and transmits it.

    The victim's ISV cannot contain attacker user code, so Perspective fences
    the gadget's transmitters regardless of how the ISV was generated. *)

type outcome = {
  scheme : string;
  secret : int;
  leaked : int option;
  success : bool;
  fences : int;
  hot_slot_count : int;
}

val run :
  ?seed:int ->
  ?secret:int ->
  ?trace:bool ->
  ?on_commit:(int -> int -> Pv_isa.Insn.t -> unit) ->
  ?observe:(Lab.t -> unit) ->
  scheme:Perspective.Defense.scheme ->
  unit ->
  outcome
(** [secret] overrides the seed-derived planted byte (masked to 0–255;
    layout is secret-independent).  [trace]/[on_commit]/[observe] are the
    contract checker's observation taps — see {!Spectre_v1.run}. *)

val run_all : ?seed:int -> unit -> outcome list
