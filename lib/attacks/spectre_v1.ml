module I = Pv_isa.Insn
module Asm = Pv_isa.Asm
module Layout = Pv_isa.Layout
module Program = Pv_isa.Program
module Iss = Pv_isa.Iss
module Pipeline = Pv_uarch.Pipeline
module Physmem = Pv_kernel.Physmem
module Defense = Perspective.Defense
module Bitset = Pv_util.Bitset
module Rng = Pv_util.Rng

type variant = Array_index | Pointer_arith | Type_confusion

let variant_name = function
  | Array_index -> "array-index (CVE-2022-27223)"
  | Pointer_arith -> "pointer-arith (eBPF CVEs)"
  | Type_confusion -> "type-confusion (CVE-2021-33624)"

type outcome = {
  scheme : string;
  secret : int;
  leaked : int option;
  success : bool;
  fences : int;
  hot_slot_count : int;
}

(* Function ids: 0 = vulnerable syscall (kernel), 1 = attacker train loop
   (user), 2 = attacker out-of-bounds trigger (user). *)
let vuln_fid = 0

let train_fid = 1

let trigger_fid = 2

let transmit_tail a =
  (* r4 holds the speculatively accessed word: transmit its low byte. *)
  Asm.alui a I.And 4 4 255;
  Asm.alui a I.Mul 4 4 64;
  Asm.alu a I.Add 5 10 4;
  Asm.load a 6 5 0;
  ()

(* Kernel registers at entry: r1 = attacker-controlled argument, r8 = object
   base, r9 = bound/type-tag location, r10 = covert-channel array base. *)
let vuln_body variant =
  let a = Asm.create () in
  let out = Asm.fresh_label a in
  (match variant with
  | Array_index ->
    Asm.load a 2 9 0 (* array1_size; the attacker evicts this line *);
    Asm.branch a I.Ge 1 2 out (* bounds check, mistrained *);
    Asm.alu a I.Add 3 8 1;
    Asm.load a 4 3 0 (* access: out of bounds reads the victim's word *);
    transmit_tail a
  | Pointer_arith ->
    Asm.load a 2 9 0 (* element count; evicted *);
    Asm.branch a I.Ge 1 2 out;
    (* The check validated the index, but the pointer is scaled by the
       element size - in-bounds-looking arithmetic escapes the object. *)
    Asm.alui a I.Mul 3 1 512;
    Asm.alu a I.Add 3 8 3;
    Asm.load a 4 3 0;
    transmit_tail a
  | Type_confusion ->
    Asm.load a 2 9 0 (* the object's type tag; evicted *);
    Asm.li a 14 0;
    Asm.branch a I.Ne 2 14 out (* trained: tag = 0 = "r1 is a buffer pointer" *);
    Asm.load a 4 1 0 (* dereference the attacker-supplied scalar *);
    transmit_tail a);
  Asm.place a out;
  Asm.sysret a;
  Asm.finish a

let user_loop ~count ~idx =
  let a = Asm.create () in
  let loop = Asm.fresh_label a in
  let done_ = Asm.fresh_label a in
  Asm.li a 6 0;
  Asm.li a 7 count;
  Asm.place a loop;
  Asm.branch a I.Ge 6 7 done_;
  Asm.li a 0 0;
  Asm.li a 1 idx;
  Asm.syscall a;
  Asm.alui a I.Add 6 6 1;
  Asm.jump a loop;
  Asm.place a done_;
  Asm.halt a;
  Asm.finish a

let attacker_asid = 1

let victim_ctx = 2

let attacker_ctx = 1

(* Memory layout is allocated deterministically, so the lab can be rebuilt
   with the final program once the attack argument (which depends on the
   victim's address) is known. *)
let build_lab ?(trace = false) ~seed ~variant ~train_idx ~attack_idx () =
  let prog =
    Program.of_funcs
      [
        {
          Program.fid = vuln_fid;
          name = "k_vuln_" ^ (match variant with
                             | Array_index -> "read"
                             | Pointer_arith -> "bpf"
                             | Type_confusion -> "ioctl");
          space = Layout.Kernel;
          body = vuln_body variant;
        };
        { Program.fid = train_fid; name = "attacker_train"; space = Layout.User;
          body = user_loop ~count:64 ~idx:train_idx };
        { Program.fid = trigger_fid; name = "attacker_trigger"; space = Layout.User;
          body = user_loop ~count:1 ~idx:attack_idx };
      ]
  in
  let lab =
    Lab.create ~prog
      ~node_of_fid:(fun fid -> if fid = vuln_fid then Some 0 else None)
      ~nnodes:4 ~trace ~seed ()
  in
  let alloc1 owner =
    match Lab.alloc lab ~owner ~count:1 with [ va ] -> va | _ -> assert false
  in
  let array1 = alloc1 (Physmem.Cgroup attacker_ctx) in
  let bound_va = alloc1 (Physmem.Cgroup attacker_ctx) in
  let transmit =
    match Physmem.alloc_pages (Lab.phys lab) ~order:2 (Physmem.Cgroup attacker_ctx) with
    | Some f -> Physmem.frame_va f
    | None -> failwith "no frames"
  in
  let secret_va = alloc1 (Physmem.Cgroup victim_ctx) in
  (lab, array1, bound_va, transmit, secret_va)

let run ?(seed = 7) ?(variant = Array_index) ?secret ?(trace = false) ?on_commit
    ?observe ~scheme () =
  let rng = Rng.create seed in
  let secret = match secret with Some s -> s land 255 | None -> Rng.int rng 256 in
  (* First pass discovers the address layout; second pass bakes the real
     attack argument into the trigger program. *)
  let _, array1_0, _, _, secret_va_0 =
    build_lab ~seed ~variant ~train_idx:0 ~attack_idx:0 ()
  in
  let train_idx, attack_idx =
    match variant with
    | Array_index -> (8, secret_va_0 - array1_0)
    | Pointer_arith -> (1, (secret_va_0 - array1_0) / 512)
    | Type_confusion -> (array1_0 (* its own buffer, a legal pointer *), secret_va_0)
  in
  let lab, array1, bound_va, transmit, secret_va =
    build_lab ~trace ~seed ~variant ~train_idx ~attack_idx ()
  in
  assert (array1 = array1_0 && secret_va = secret_va_0);
  (match variant with
  | Array_index -> Lab.store lab bound_va 64
  | Pointer_arith ->
    (* Few elements: the scaled attack index always fails the check
       architecturally, so the out-of-object read is transient-only. *)
    Lab.store lab bound_va 4
  | Type_confusion -> Lab.store lab bound_va 0 (* tag: buffer type *));
  Lab.store lab secret_va secret;
  for i = 0 to 63 do
    Lab.store lab (array1 + (i * 8)) 0
  done;
  (* Both contexts trust the vulnerable syscall: it is inside the attacker's
     ISV - active attacks are the DSV's job. *)
  let isv = Bitset.of_list 4 [ 0; 1; 2; 3 ] in
  Lab.install lab ~scheme ~views:[ (attacker_asid, attacker_ctx, isv) ];
  let pipe = Lab.pipeline lab in
  let hooks =
    {
      Pipeline.on_syscall =
        (fun _regs ->
          Iss.Redirect (vuln_fid, [ (8, array1); (9, bound_va); (10, transmit) ]));
      on_sysret = (fun _ -> Iss.Skip);
      on_commit;
    }
  in
  (* 1. Mistrain the guarding branch with benign calls. *)
  let train = Pipeline.run ~hooks pipe ~asid:attacker_asid ~start:train_fid in
  (match train.Pipeline.outcome with
  | Pipeline.Halted -> ()
  | Pipeline.Out_of_fuel | Pipeline.Fault _ -> failwith "v1: training run failed");
  (* 2. For the type-confusion variant, the object's type changes between
     check and use (the kernel-state flip the CVE exploits). *)
  (match variant with
  | Type_confusion -> Lab.store lab bound_va 1
  | Array_index | Pointer_arith -> ());
  (* 3. Evict the bound/tag and the covert channel; the secret stays warm
     (the victim used it recently). *)
  Lab.flush lab bound_va;
  for s = 0 to 255 do
    Lab.flush lab (transmit + (s * 64))
  done;
  Lab.warm lab secret_va;
  let before = Pipeline.copy_counters (Pipeline.counters pipe) in
  (* 4. One malicious call. *)
  let attack = Pipeline.run ~hooks pipe ~asid:attacker_asid ~start:trigger_fid in
  (match attack.Pipeline.outcome with
  | Pipeline.Halted -> ()
  | Pipeline.Out_of_fuel | Pipeline.Fault _ -> failwith "v1: attack run failed");
  let delta = Pipeline.diff_counters (Pipeline.counters pipe) before in
  (* Observation point: the machine state is pristine post-attack — the
     contract checker snapshots cache signatures here, before the reload
     sweep perturbs them. *)
  (match observe with Some f -> f lab | None -> ());
  (* 5. Reload: which covert-channel line became hot? *)
  let hot = Lab.hot_slots lab ~base:transmit ~slots:256 in
  let leaked = match hot with [ s ] -> Some s | _ -> None in
  {
    scheme = Defense.scheme_name scheme;
    secret;
    leaked;
    success = leaked = Some secret;
    fences = Pipeline.total_fences delta;
    hot_slot_count = List.length hot;
  }

let run_all ?(seed = 7) () =
  let schemes =
    [
      Defense.Unsafe;
      Defense.Fence;
      Defense.Dom;
      Defense.Stt;
      Defense.Perspective Perspective.Isv.Static;
      Defense.Perspective Perspective.Isv.Dynamic;
      Defense.Perspective Perspective.Isv.Plus;
      Defense.Safespec;
      Defense.Specbox;
    ]
  in
  List.map (fun scheme -> run ~seed ~scheme ()) schemes

let run_variants ?(seed = 7) ~scheme () =
  List.map
    (fun variant -> run ~seed ~variant ~scheme ())
    [ Array_index; Pointer_arith; Type_confusion ]
