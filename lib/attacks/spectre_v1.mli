(** Active transient-execution attack: Spectre v1 in a kernel system call
    (paper Figure 4.1).

    The attacker's own kernel thread executes a bounds-check gadget with an
    attacker-controlled index.  After mistraining the bounds check with
    in-bounds calls, an out-of-bounds index makes the kernel speculatively
    read a word owned by the {e victim} (out of the attacker's DSV) and
    transmit it through a cache covert channel that the attacker decodes with
    flush+reload.

    The outcome is read back from simulated microarchitectural state —
    success and failure are measured, never asserted. *)

type variant =
  | Array_index
      (** Table 4.1 row 1 (CVE-2022-27223): an array index from a syscall
          argument is never validated against the bound that gates it. *)
  | Pointer_arith
      (** Table 4.1 row 3 (eBPF verifier CVEs): the bounds check validates a
          length while the gadget offsets a pointer by a {e scaled} index,
          so in-bounds-looking arithmetic still walks out of the object. *)
  | Type_confusion
      (** Table 4.1 row 4 (CVE-2021-33624): a mistrained type-tag branch
          makes the kernel interpret an attacker-controlled scalar as a
          pointer and dereference it. *)

val variant_name : variant -> string

type outcome = {
  scheme : string;
  secret : int;  (** the planted secret byte *)
  leaked : int option;  (** what flush+reload recovered, if anything *)
  success : bool;  (** [leaked = Some secret] *)
  fences : int;  (** fences during the attack run *)
  hot_slot_count : int;  (** covert-channel lines observed hot *)
}

val run :
  ?seed:int ->
  ?variant:variant ->
  ?secret:int ->
  ?trace:bool ->
  ?on_commit:(int -> int -> Pv_isa.Insn.t -> unit) ->
  ?observe:(Lab.t -> unit) ->
  scheme:Perspective.Defense.scheme ->
  unit ->
  outcome
(** Default variant: [Array_index].  [secret] overrides the seed-derived
    planted byte (masked to 0–255); the memory layout is secret-independent,
    which is what makes the contract checker's two-secret diff meaningful.
    [trace] turns on the lab pipeline's event ring; [on_commit] taps the
    commit stream; [observe] runs after the attack but {e before} the
    flush+reload sweep, on pristine post-attack cache state. *)

val run_all : ?seed:int -> unit -> outcome list
(** One outcome per scheme in {!Perspective.Defense.all_schemes}. *)

val run_variants : ?seed:int -> scheme:Perspective.Defense.scheme -> unit -> outcome list
(** All three Table 4.1 gadget shapes under one scheme. *)
