module I = Pv_isa.Insn
module Asm = Pv_isa.Asm
module Layout = Pv_isa.Layout
module Program = Pv_isa.Program
module Iss = Pv_isa.Iss
module Pipeline = Pv_uarch.Pipeline
module Physmem = Pv_kernel.Physmem
module Defense = Perspective.Defense
module Isv = Perspective.Isv
module Bitset = Pv_util.Bitset
module Rng = Pv_util.Rng

type outcome = {
  scheme : string;
  secret : int;
  leaked : int option;
  success : bool;
  fences : int;
  hot_slot_count : int;
}

(* fids: 0 = dispatching syscall V (kernel), 1 = benign ops T (kernel),
   2 = gadget ops G (kernel), 3 = attacker driver, 4 = victim driver. *)
let v_fid = 0

let t_fid = 1

let g_fid = 2

let attacker_fid = 3

let victim_fid = 4

(* V: load the caller's data reference, then dispatch through the caller's
   ops table.  r9 = per-context parameter block, r13 = ops table. *)
let v_body () =
  let a = Asm.create () in
  Asm.load a 1 9 16 (* reference to the caller's buffer / secret *);
  Asm.load a 14 13 0 (* function pointer; evicted by the attacker *);
  Asm.icall a 14;
  Asm.sysret a;
  Asm.finish a

let t_body () =
  let a = Asm.create () in
  Asm.load a 4 1 0 (* benign ops: uses the reference legitimately *);
  Asm.alui a I.Add 15 4 1;
  Asm.ret a;
  Asm.finish a

(* G: the transient-execution gadget — dereference the (type-confused)
   reference in r1 and transmit it.  r10 = covert-channel base. *)
let g_body () =
  let a = Asm.create () in
  Asm.load a 4 1 0;
  Asm.alui a I.And 4 4 255;
  Asm.alui a I.Mul 4 4 64;
  Asm.alu a
I.Add 5 10 4;
  Asm.load a 6 5 0;
  Asm.ret a;
  Asm.finish a

let driver ~count =
  let a = Asm.create () in
  let loop = Asm.fresh_label a in
  let done_ = Asm.fresh_label a in
  Asm.li a 6 0;
  Asm.li a 7 count;
  Asm.place a loop;
  Asm.branch a I.Ge 6 7 done_;
  Asm.li a 0 0;
  Asm.syscall a;
  Asm.alui a I.Add 6 6 1;
  Asm.jump a loop;
  Asm.place a done_;
  Asm.halt a;
  Asm.finish a

let attacker_asid = 1

let victim_asid = 2

let attacker_ctx = 1

let victim_ctx = 2

let node_of_fid fid =
  if fid = v_fid then Some 0
  else if fid = t_fid then Some 1
  else if fid = g_fid then Some 2
  else None

let run ?(seed = 11) ?secret ?(trace = false) ?on_commit ?observe ~scheme () =
  let rng = Rng.create seed in
  let secret = match secret with Some s -> s land 255 | None -> Rng.int rng 256 in
  let prog =
    Program.of_funcs
      [
        { Program.fid = v_fid; name = "k_vfs_dispatch"; space = Layout.Kernel; body = v_body () };
        { Program.fid = t_fid; name = "k_benign_ops"; space = Layout.Kernel; body = t_body () };
        { Program.fid = g_fid; name = "k_gadget_ops"; space = Layout.Kernel; body = g_body () };
        { Program.fid = attacker_fid; name = "attacker"; space = Layout.User; body = driver ~count:64 };
        { Program.fid = victim_fid; name = "victim"; space = Layout.User; body = driver ~count:1 };
      ]
  in
  let lab = Lab.create ~prog ~node_of_fid ~nnodes:4 ~trace ~seed () in
  let alloc1 owner =
    match Lab.alloc lab ~owner ~count:1 with [ va ] -> va | _ -> assert false
  in
  (* Per-context parameter blocks and ops tables. *)
  let att_params = alloc1 (Physmem.Cgroup attacker_ctx) in
  let att_table = alloc1 (Physmem.Cgroup attacker_ctx) in
  let att_buffer = alloc1 (Physmem.Cgroup attacker_ctx) in
  let vic_params = alloc1 (Physmem.Cgroup victim_ctx) in
  let vic_table = alloc1 (Physmem.Cgroup victim_ctx) in
  let vic_secret = alloc1 (Physmem.Cgroup victim_ctx) in
  (* The covert channel lives in victim-owned memory so that every gadget
     access stays inside the victim's DSV (the attacker reloads through the
     shared physical lines). *)
  let transmit =
    match Physmem.alloc_pages (Lab.phys lab) ~order:2 (Physmem.Cgroup victim_ctx) with
    | Some f -> Physmem.frame_va f
    | None -> failwith "no frames"
  in
  Lab.store lab vic_secret secret;
  Lab.store lab att_buffer 0;
  Lab.store lab (att_params + 16) att_buffer;
  Lab.store lab (vic_params + 16) vic_secret;
  (* The attacker's file type uses the gadget ops; the victim's uses the
     benign ops. *)
  Lab.store lab att_table (Layout.func_base Layout.Kernel g_fid);
  Lab.store lab vic_table (Layout.func_base Layout.Kernel t_fid);
  (* Views: the victim's ISV holds only the functions it uses (V, T); the
     attacker's also holds G, which it calls legitimately. *)
  let att_isv = Bitset.of_list 4 [ 0; 1; 2 ] in
  let vic_isv =
    (* The DSV-only configuration models an ISV that admits everything. *)
    match scheme with
    | Defense.Perspective Isv.All -> Bitset.of_list 4 [ 0; 1; 2; 3 ]
    | Defense.Perspective (Isv.Static | Isv.Dynamic | Isv.Plus)
    | Defense.Unsafe | Defense.Fence | Defense.Dom | Defense.Stt
    | Defense.Safespec | Defense.Specbox ->
      Bitset.of_list 4 [ 0; 1 ]
  in
  Lab.install lab ~scheme
    ~views:[ (attacker_asid, attacker_ctx, att_isv); (victim_asid, victim_ctx, vic_isv) ];
  let pipe = Lab.pipeline lab in
  let hooks_for params table =
    {
      Pipeline.on_syscall =
        (fun _ -> Iss.Redirect (v_fid, [ (9, params); (10, transmit); (13, table) ]));
      on_sysret = (fun _ -> Iss.Skip);
      on_commit;
    }
  in
  (* 1. Attacker trains the BTB entry of V's indirect call toward G by
     making the same syscall with its own (gadget-bound) ops table. *)
  let train =
    Pipeline.run ~hooks:(hooks_for att_params att_table) pipe ~asid:attacker_asid
      ~start:attacker_fid
  in
  (match train.Pipeline.outcome with
  | Pipeline.Halted -> ()
  | Pipeline.Out_of_fuel | Pipeline.Fault _ -> failwith "v2: training run failed");
  (* 2. Evict the victim's function pointer (wide transient window) and the
     covert channel; the secret stays warm. *)
  Lab.flush lab vic_table;
  for s = 0 to 255 do
    Lab.flush lab (transmit + (s * 64))
  done;
  Lab.warm lab vic_secret;
  Lab.warm lab vic_params;
  let before = Pipeline.copy_counters (Pipeline.counters pipe) in
  (* 3. The victim makes one innocent syscall. *)
  let victim =
    Pipeline.run ~hooks:(hooks_for vic_params vic_table) pipe ~asid:victim_asid
      ~start:victim_fid
  in
  (match victim.Pipeline.outcome with
  | Pipeline.Halted -> ()
  | Pipeline.Out_of_fuel | Pipeline.Fault _ -> failwith "v2: victim run failed");
  let delta = Pipeline.diff_counters (Pipeline.counters pipe) before in
  (* Observation point for the contract checker (pre-reload). *)
  (match observe with Some f -> f lab | None -> ());
  (* 4. Attacker decodes the covert channel. *)
  let hot = Lab.hot_slots lab ~base:transmit ~slots:256 in
  let leaked = match hot with [ s ] -> Some s | _ -> None in
  {
    scheme = Defense.scheme_name scheme;
    secret;
    leaked;
    success = leaked = Some secret;
    fences = Pipeline.total_fences delta;
    hot_slot_count = List.length hot;
  }

let run_all ?(seed = 11) () =
  let schemes =
    [
      Defense.Unsafe;
      Defense.Fence;
      Defense.Dom;
      Defense.Stt;
      Defense.Perspective Isv.All;
      Defense.Perspective Isv.Static;
      Defense.Perspective Isv.Dynamic;
      Defense.Perspective Isv.Plus;
      Defense.Safespec;
      Defense.Specbox;
    ]
  in
  List.map (fun scheme -> run ~seed ~scheme ()) schemes

type patch_outcome = { before_patch : outcome; after_patch : outcome }

let run_patch_demo ?(seed = 17) () =
  let rng = Rng.create seed in
  let secret = Rng.int rng 256 in
  let prog =
    Program.of_funcs
      [
        { Program.fid = v_fid; name = "k_vfs_dispatch"; space = Layout.Kernel; body = v_body () };
        { Program.fid = t_fid; name = "k_benign_ops"; space = Layout.Kernel; body = t_body () };
        { Program.fid = g_fid; name = "k_gadget_ops"; space = Layout.Kernel; body = g_body () };
        { Program.fid = attacker_fid; name = "attacker"; space = Layout.User; body = driver ~count:64 };
        { Program.fid = victim_fid; name = "victim"; space = Layout.User; body = driver ~count:1 };
      ]
  in
  let lab = Lab.create ~prog ~node_of_fid ~nnodes:4 ~seed () in
  let alloc1 owner =
    match Lab.alloc lab ~owner ~count:1 with [ va ] -> va | _ -> assert false
  in
  let att_params = alloc1 (Physmem.Cgroup attacker_ctx) in
  let att_table = alloc1 (Physmem.Cgroup attacker_ctx) in
  let att_buffer = alloc1 (Physmem.Cgroup attacker_ctx) in
  let vic_params = alloc1 (Physmem.Cgroup victim_ctx) in
  let vic_table = alloc1 (Physmem.Cgroup victim_ctx) in
  let vic_secret = alloc1 (Physmem.Cgroup victim_ctx) in
  let transmit =
    match Physmem.alloc_pages (Lab.phys lab) ~order:2 (Physmem.Cgroup victim_ctx) with
    | Some f -> Physmem.frame_va f
    | None -> failwith "no frames"
  in
  Lab.store lab vic_secret secret;
  Lab.store lab att_buffer 0;
  Lab.store lab (att_params + 16) att_buffer;
  Lab.store lab (vic_params + 16) vic_secret;
  Lab.store lab att_table (Layout.func_base Layout.Kernel g_fid);
  Lab.store lab vic_table (Layout.func_base Layout.Kernel t_fid);
  (* The victim's profile wrongly included the gadget function (say, it was
     traced once during profiling): node 2 is in the view. *)
  let scheme = Defense.Perspective Isv.Dynamic in
  let att_isv = Bitset.of_list 4 [ 0; 1; 2 ] in
  let vic_isv_bits = Bitset.of_list 4 [ 0; 1; 2 ] in
  Lab.install lab ~scheme
    ~views:[ (attacker_asid, attacker_ctx, att_isv); (victim_asid, victim_ctx, vic_isv_bits) ];
  let pipe = Lab.pipeline lab in
  let hooks_for params table =
    {
      Pipeline.on_syscall =
        (fun _ -> Iss.Redirect (v_fid, [ (9, params); (10, transmit); (13, table) ]));
      on_sysret = (fun _ -> Iss.Skip);
      on_commit = None;
    }
  in
  let attack () =
    let train =
      Pipeline.run ~hooks:(hooks_for att_params att_table) pipe ~asid:attacker_asid
        ~start:attacker_fid
    in
    (match train.Pipeline.outcome with
    | Pipeline.Halted -> ()
    | Pipeline.Out_of_fuel | Pipeline.Fault _ -> failwith "patch demo: training failed");
    Lab.flush lab vic_table;
    for s = 0 to 255 do
      Lab.flush lab (transmit + (s * 64))
    done;
    Lab.warm lab vic_secret;
    Lab.warm lab vic_params;
    let before = Pipeline.copy_counters (Pipeline.counters pipe) in
    let victim =
      Pipeline.run ~hooks:(hooks_for vic_params vic_table) pipe ~asid:victim_asid
        ~start:victim_fid
    in
    (match victim.Pipeline.outcome with
    | Pipeline.Halted -> ()
    | Pipeline.Out_of_fuel | Pipeline.Fault _ -> failwith "patch demo: victim failed");
    let delta = Pipeline.diff_counters (Pipeline.counters pipe) before in
    let hot = Lab.hot_slots lab ~base:transmit ~slots:256 in
    let leaked = match hot with [ s ] -> Some s | _ -> None in
    {
      scheme = Defense.scheme_name scheme;
      secret;
      leaked;
      success = leaked = Some secret;
      fences = Pipeline.total_fences delta;
      hot_slot_count = List.length hot;
    }
  in
  let before_patch = attack () in
  (* A CVE lands for k_gadget_ops: exclude it from the victim's live view
     and drop the now-stale hardware state - no kernel patch, no reboot. *)
  (match Lab.defense lab with
  | Some d ->
    (match
       Perspective.View_manager.isv_of_ctx (Defense.view_manager d) victim_ctx
     with
    | Some isv -> Isv.exclude isv 2
    | None -> ());
    Defense.note_view_changed d ~insn_va:(Layout.insn_va Layout.Kernel g_fid 0)
  | None -> ());
  let after_patch = attack () in
  { before_patch; after_patch }
