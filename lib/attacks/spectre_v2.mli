(** Passive transient-execution attack: Spectre-v2 speculative control-flow
    hijacking with type confusion (paper Figure 4.2).

    A shared kernel function dispatches through a function pointer after
    loading a reference to the caller's data.  The attacker first calls the
    same syscall with {e its} file type bound to a gadget-shaped ops
    implementation, training the (VA-indexed, untagged) BTB entry of the
    kernel's indirect call toward the gadget.  When the {e victim} then makes
    the syscall, the indirect call — its function-pointer load evicted, so
    resolution is slow — is predicted into the gadget, which dereferences the
    victim's in-flight pointer (speculative type confusion) and transmits the
    victim's secret through the cache.

    Every access in the gadget touches {e victim-owned} data, so DSVs alone
    cannot stop it ([Perspective Isv.All] leaks); the victim's ISV — which
    does not contain the gadget function — does (paper §5.1). *)

type outcome = {
  scheme : string;
  secret : int;
  leaked : int option;
  success : bool;
  fences : int;
  hot_slot_count : int;
}

val run :
  ?seed:int ->
  ?secret:int ->
  ?trace:bool ->
  ?on_commit:(int -> int -> Pv_isa.Insn.t -> unit) ->
  ?observe:(Lab.t -> unit) ->
  scheme:Perspective.Defense.scheme ->
  unit ->
  outcome
(** [secret] overrides the seed-derived planted byte (masked to 0–255;
    layout is secret-independent).  [trace]/[on_commit]/[observe] are the
    contract checker's observation taps — see {!Spectre_v1.run}. *)

val run_all : ?seed:int -> unit -> outcome list
(** All baseline schemes, the DSV-only configuration
    ([Perspective Isv.All]) and the ISV configurations. *)

type patch_outcome = {
  before_patch : outcome;  (** gadget (wrongly) trusted by the victim's ISV *)
  after_patch : outcome;  (** same live system after excluding the gadget *)
}

val run_patch_demo : ?seed:int -> unit -> patch_outcome
(** The paper's "swiftly patching gadgets" workflow (§5.4): start from a
    victim ISV that mistakenly trusts the gadget function — the passive
    attack leaks even under PERSPECTIVE — then exclude the function from the
    live view (no kernel patch, no downtime) and re-run the attack: blocked. *)
