module Defense = Perspective.Defense
module Isv = Perspective.Isv
module Pipeline = Pv_uarch.Pipeline
module Cache = Pv_uarch.Cache
module Memsys = Pv_uarch.Memsys
module Checksum = Pv_util.Checksum
module Tab = Pv_util.Tab
module Supervise = Pv_experiments.Supervise
module Lab = Pv_attacks.Lab
module V1 = Pv_attacks.Spectre_v1
module V2 = Pv_attacks.Spectre_v2
module Rsb = Pv_attacks.Spectre_rsb

(* ------------------------------------------------------------------ *)
(* Attack and scheme registries                                        *)
(* ------------------------------------------------------------------ *)

type attack = A_v1 of V1.variant | A_v2 | A_rsb

(* Seed offsets mirror Security.families: v1 = seed, v2 = seed+1,
   rsb = seed+2, so a contract run and a security run of the same seed
   exercise identical machines. *)
let attacks =
  [
    ("v1-index", A_v1 V1.Array_index, 0);
    ("v1-ptr", A_v1 V1.Pointer_arith, 0);
    ("v1-type", A_v1 V1.Type_confusion, 0);
    ("v2", A_v2, 1);
    ("rsb", A_rsb, 2);
  ]

let attack_names = List.map (fun (n, _, _) -> n) attacks

let find_attack name =
  match List.find_opt (fun (n, _, _) -> n = name) attacks with
  | Some (_, a, off) -> (a, off)
  | None ->
    invalid_arg
      (Printf.sprintf "unknown attack %S (valid: %s)" name
         (String.concat ", " attack_names))

let schemes =
  [
    Defense.Unsafe;
    Defense.Fence;
    Defense.Dom;
    Defense.Stt;
    Defense.Perspective Isv.Static;
    Defense.Perspective Isv.Dynamic;
    Defense.Perspective Isv.Plus;
    Defense.Perspective Isv.All;
    Defense.Safespec;
    Defense.Specbox;
  ]

let scheme_labels = List.map Defense.scheme_name schemes

let find_scheme label =
  let label = String.uppercase_ascii label in
  match List.find_opt (fun s -> Defense.scheme_name s = label) schemes with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "unknown scheme label %S (valid: %s)" label
         (String.concat ", " scheme_labels))

(* ------------------------------------------------------------------ *)
(* Observation capture                                                 *)
(* ------------------------------------------------------------------ *)

type obs = {
  commit_digest : string;
  event_digest : string;
  cache_digest : string;
  leaked : int option;
  hot_slots : int;
  spec_loads : int;
  fences : int;
}

(* Run one attack once with a planted secret and capture the canonical
   observation trace: the commit stream (architectural control flow), the
   event ring (squash / fence / VP-release / dload), and a digest of the
   post-attack cache state taken *before* the attacker's reload sweep
   perturbs it.  Commit digests cover (fid, idx) pairs only — the victim
   legitimately loads its own secret, so committed *values* are not part of
   any observation an attacker can see. *)
let observe_run ~attack ~scheme ~seed ~secret =
  let commit_buf = Buffer.create 4096 in
  let on_commit fid idx _insn =
    Buffer.add_string commit_buf (string_of_int fid);
    Buffer.add_char commit_buf '.';
    Buffer.add_string commit_buf (string_of_int idx);
    Buffer.add_char commit_buf ';'
  in
  let captured = ref None in
  let observe lab =
    let pipe = Lab.pipeline lab in
    let ms = Lab.memsys lab in
    let caches =
      String.concat "|"
        [
          Cache.state_signature (Memsys.l1d ms);
          Cache.state_signature (Memsys.l2 ms);
          Cache.state_signature (Memsys.l1i ms);
        ]
    in
    let events =
      String.concat "\n" (List.map Pipeline.event_to_json (Pipeline.events pipe))
    in
    let c = Pipeline.counters pipe in
    captured :=
      Some
        ( Checksum.digest_hex caches,
          Checksum.digest_hex events,
          c.Pipeline.spec_loads,
          Pipeline.total_fences c )
  in
  let leaked, hot_slots =
    match attack with
    | A_v1 variant ->
      let o =
        V1.run ~seed ~variant ~secret ~trace:true ~on_commit ~observe ~scheme ()
      in
      (o.V1.leaked, o.V1.hot_slot_count)
    | A_v2 ->
      let o = V2.run ~seed ~secret ~trace:true ~on_commit ~observe ~scheme () in
      (o.V2.leaked, o.V2.hot_slot_count)
    | A_rsb ->
      let o = Rsb.run ~seed ~secret ~trace:true ~on_commit ~observe ~scheme () in
      (o.Rsb.leaked, o.Rsb.hot_slot_count)
  in
  match !captured with
  | None -> failwith "Contracts.observe_run: attack never reached its observation point"
  | Some (cache_digest, event_digest, spec_loads, fences) ->
    {
      commit_digest = Checksum.digest_hex (Buffer.contents commit_buf);
      event_digest;
      cache_digest;
      leaked;
      hot_slots;
      spec_loads;
      fences;
    }

(* ------------------------------------------------------------------ *)
(* Contract lattice                                                    *)
(* ------------------------------------------------------------------ *)

type verdict = Arch_seq | Ct_seq | Ct_spec

let verdict_name = function
  | Arch_seq -> "ARCH-SEQ"
  | Ct_seq -> "CT-SEQ"
  | Ct_spec -> "CT-SPEC"

let leaks = function Ct_spec -> true | Arch_seq | Ct_seq -> false

type result = {
  attack : string;
  scheme : string;
  verdict : verdict;
  diffs : string list;  (** observation components that depended on the secret *)
  obs_lo : obs;
  obs_hi : obs;
}

let classify a b =
  let d name x y = if x <> y then [ name ] else [] in
  let diffs =
    d "commits" a.commit_digest b.commit_digest
    @ d "events" a.event_digest b.event_digest
    @ d "caches" a.cache_digest b.cache_digest
    @ d "readout" (a.leaked, a.hot_slots) (b.leaked, b.hot_slots)
    @ d "counters" (a.spec_loads, a.fences) (b.spec_loads, b.fences)
  in
  if diffs <> [] then (Ct_spec, diffs)
  else if a.spec_loads > 0 then (Ct_seq, [])
  else (Arch_seq, [])

let default_secrets = (0x2A, 0xAB)

let check ?(seed = 7) ?(secrets = default_secrets) ~attack:name ~scheme:label () =
  let attack, seed_off = find_attack name in
  let scheme = find_scheme label in
  let seed = seed + seed_off in
  let lo, hi = secrets in
  let obs_lo = observe_run ~attack ~scheme ~seed ~secret:lo in
  let obs_hi = observe_run ~attack ~scheme ~seed ~secret:hi in
  let verdict, diffs = classify obs_lo obs_hi in
  { attack = name; scheme = Defense.scheme_name scheme; verdict; diffs; obs_lo; obs_hi }

(* ------------------------------------------------------------------ *)
(* Supervised matrix                                                   *)
(* ------------------------------------------------------------------ *)

let key ~attack ~scheme = Printf.sprintf "contract/%s/%s" attack scheme

let cells ?(seed = 7) ?(secrets = default_secrets) ?(attacks = attack_names)
    ?(schemes = scheme_labels) () =
  (* Validate every label up front so a typo is one friendly error, not a
     matrix of failed cells. *)
  List.iter (fun a -> ignore (find_attack a)) attacks;
  let schemes = List.map (fun s -> Defense.scheme_name (find_scheme s)) schemes in
  let lo, hi = secrets in
  List.concat_map
    (fun attack ->
      List.map
        (fun scheme ->
          Supervise.cell
            ~cache:
              (Printf.sprintf "contracts/matrix|attack=%s|scheme=%s|seed=%d|secrets=%d,%d"
                 attack scheme seed lo hi)
            (key ~attack ~scheme)
            (fun ~fuel:_ -> check ~seed ~secrets ~attack ~scheme ()))
        schemes)
    attacks

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let matrix_table ?(attacks = attack_names) ?(schemes = scheme_labels) results =
  let tab =
    Tab.create ~title:"Empirical leakage contracts (two-secret observation diff)"
      ~header:(("Scheme", Tab.Left) :: List.map (fun a -> (a, Tab.Left)) attacks)
  in
  let lookup attack scheme =
    match List.assoc_opt (key ~attack ~scheme) results with
    | Some (Some r) ->
      verdict_name r.verdict
      ^ (if leaks r.verdict then Printf.sprintf " (%s)" (String.concat "," r.diffs)
         else "")
    | Some None -> "FAILED"
    | None -> "-"
  in
  List.iter
    (fun scheme -> Tab.row tab (scheme :: List.map (fun a -> lookup a scheme) attacks))
    schemes;
  Tab.caption tab
    "Each cell runs the attack twice with different planted secrets and diffs the \
     canonical observation trace (commit stream, event ring, cache-state digests, \
     covert-channel readout).  ARCH-SEQ: observations secret-independent and no \
     speculative load ever issued.  CT-SEQ: speculation occurred but observations \
     stay secret-independent (the scheme enforces the sequential leakage contract).  \
     CT-SPEC: observations depend on the secret - the scheme leaks under this \
     attack, via the listed components.";
  tab

let matrix_csv ?(attacks = attack_names) ?(schemes = scheme_labels) results =
  Tab.to_csv (matrix_table ~attacks ~schemes results)
