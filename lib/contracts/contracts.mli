(** Empirical hardware-software leakage contracts (Guarnieri et al., see
    PAPERS.md), measured instead of asserted.

    For one (attack, scheme) pair the checker runs the attacker program twice
    with two different planted secrets and captures a {e canonical
    observation trace} per run:

    - the commit stream — (fid, idx) of every committed instruction, the
      architectural control-flow observation;
    - the pipeline event ring — squashes, fences, VP releases and the
      [Ev_dload] D-cache access trace (the sequential projection of the
      memory access stream);
    - digests of the L1D/L2/L1I {!Pv_uarch.Cache.state_signature}s taken at
      the attack's observation point, {e before} the flush+reload sweep
      perturbs them — the microarchitectural state a cache attacker probes;
    - the covert-channel readout (leaked byte, hot-slot count) and the
      speculation counters.

    Diffing the two runs places the scheme on a small contract lattice:

    - [Arch_seq] — observations are secret-independent and no speculative
      load ever issued: the scheme exposes at most the architectural
      sequential trace (FENCE lands here).
    - [Ct_seq] — speculation happened, but every observation is
      secret-independent: the scheme enforces the {e sequential}
      constant-time contract (DOM, STT, SafeSpec, SpecBox, and Perspective
      when its views exclude the gadget).
    - [Ct_spec] — some observation depends on the secret: the scheme's
      contract exposes speculative execution and the attack leaks (UNSAFE;
      DSV-only Perspective under the passive v2 attack).

    Every matrix cell is a {!Pv_experiments.Supervise} cell with a canonical
    {!Pv_util.Rescache} descriptor, so the matrix runs under [-j],
    [--workers], [--hosts], [--fault] and [--checkpoint/--resume],
    byte-identical in every configuration. *)

(** {1 Registries} *)

val attack_names : string list
(** ["v1-index"; "v1-ptr"; "v1-type"; "v2"; "rsb"] — the three Table 4.1
    Spectre-v1 gadget shapes, BTB poisoning, and RAS poisoning. *)

val scheme_labels : string list
(** All ten pipeline schemes (the five standard configurations,
    PERSPECTIVE-ALL, DOM, STT, SAFESPEC, SPECBOX). *)

val find_scheme : string -> Perspective.Defense.scheme
(** Case-insensitive label lookup.  Raises [Invalid_argument] naming the bad
    label and listing the valid ones. *)

(** {1 Observations and verdicts} *)

type obs = {
  commit_digest : string;
  event_digest : string;
  cache_digest : string;
  leaked : int option;
  hot_slots : int;
  spec_loads : int;
  fences : int;
}

type verdict = Arch_seq | Ct_seq | Ct_spec

val verdict_name : verdict -> string
(** ["ARCH-SEQ"], ["CT-SEQ"], ["CT-SPEC"]. *)

val leaks : verdict -> bool
(** [true] only for [Ct_spec]. *)

type result = {
  attack : string;
  scheme : string;
  verdict : verdict;
  diffs : string list;  (** observation components that depended on the secret *)
  obs_lo : obs;
  obs_hi : obs;
}

val default_secrets : int * int
(** [(0x2A, 0xAB)] — the two planted secret bytes. *)

val check :
  ?seed:int -> ?secrets:int * int -> attack:string -> scheme:string -> unit -> result
(** One matrix cell: run [attack] twice under [scheme] with the two planted
    secrets and classify.  Raises [Invalid_argument] on unknown labels.
    Deterministic: equal inputs give byte-equal results. *)

(** {1 Supervised matrix} *)

val key : attack:string -> scheme:string -> string
(** The cell key, ["contract/<attack>/<scheme>"]. *)

val cells :
  ?seed:int ->
  ?secrets:int * int ->
  ?attacks:string list ->
  ?schemes:string list ->
  unit ->
  result Pv_experiments.Supervise.cell list
(** The full (or filtered) matrix as supervised cells, attack-major in
    registry order.  Labels are validated up front — an unknown name raises
    [Invalid_argument] before any cell runs. *)

val matrix_table :
  ?attacks:string list ->
  ?schemes:string list ->
  (string * result option) list ->
  Pv_util.Tab.t
(** Render a sweep's results as the schemes × attacks matrix (rows =
    schemes, columns = attacks); failed cells render as ["FAILED"]. *)

val matrix_csv :
  ?attacks:string list -> ?schemes:string list -> (string * result option) list -> string
