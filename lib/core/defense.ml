module Guard = Pv_uarch.Guard
module Layout = Pv_isa.Layout

type scheme =
  | Unsafe
  | Fence
  | Dom
  | Stt
  | Perspective of Isv.kind
  | Safespec
  | Specbox

let scheme_name = function
  | Unsafe -> "UNSAFE"
  | Fence -> "FENCE"
  | Dom -> "DOM"
  | Stt -> "STT"
  | Perspective Isv.Static -> "PERSPECTIVE-STATIC"
  | Perspective Isv.Dynamic -> "PERSPECTIVE"
  | Perspective Isv.Plus -> "PERSPECTIVE++"
  | Perspective Isv.All -> "PERSPECTIVE-ALL"
  | Safespec -> "SAFESPEC"
  | Specbox -> "SPECBOX"

let all_schemes =
  [
    Unsafe;
    Fence;
    Perspective Isv.Static;
    Perspective Isv.Dynamic;
    Perspective Isv.Plus;
  ]

type t = {
  scheme : scheme;
  guard : Guard.t;
  isv_cache : Svcache.t;
  dsv_cache : Svcache.t;
  isv_pages : Isv_pages.t;
  vm : View_manager.t;
  shadow : Shadow.t option;
}

let isv_key_of_va va = va / Layout.line_bytes

let dsv_key_of_page page = page

let perspective_guard ~vm ~node_of_fid ~block_unknown ~isv_cache ~dsv_cache ~isv_pages
    name =
  let dsv_check q ctx =
    match Layout.pa_of_direct_map q.Guard.addr with
    | Some pa -> (
      let page = pa / Layout.page_bytes in
      let key = dsv_key_of_page page in
      match Svcache.lookup dsv_cache ~asid:q.Guard.asid key with
      | Svcache.Hit true -> Guard.Allow
      | Svcache.Hit false -> Guard.Block Guard.Dsv
      | Svcache.Miss ->
        (* DSVMT walk + refill; the miss itself conservatively fences. *)
        let bit = Dsvmt.walk (View_manager.dsvmt vm ~ctx) ~page in
        Svcache.install ~speculative:q.Guard.speculative dsv_cache ~asid:q.Guard.asid
          key bit;
        Guard.Block Guard.Dsv)
    | None ->
      (* Not direct-map memory: either an "unknown" allocation (globals,
         boot-time per-cpu areas) or a wild address.  No DSV covers it. *)
      if q.Guard.addr >= Layout.kernel_global_base then
        if block_unknown then Guard.Block Guard.Dsv else Guard.Allow
      else Guard.Block Guard.Dsv
  in
  let check q =
    if (not q.Guard.kernel_mode) || not q.Guard.speculative then Guard.Allow
    else
      match View_manager.ctx_of_asid vm q.Guard.asid with
      | None ->
        (* Unregistered context: no views installed, fence conservatively. *)
        Guard.Block Guard.Isv
      | Some ctx -> (
        let key = isv_key_of_va q.Guard.insn_va in
        let isv_membership () =
          match (View_manager.isv_of_ctx vm ctx, node_of_fid q.Guard.fid) with
          | Some isv, Some node -> Isv.member isv node
          | Some _, None -> false
          | None, _ -> false
        in
        match Svcache.lookup isv_cache ~asid:q.Guard.asid key with
        | Svcache.Hit true -> dsv_check q ctx
        | Svcache.Hit false -> Guard.Block Guard.Isv
        | Svcache.Miss ->
          (* Refill from the (demand-populated) ISV metadata page; the miss
             itself conservatively fences. *)
          let bit =
            Isv_pages.lookup isv_pages ~ctx ~insn_va:q.Guard.insn_va
              ~member:isv_membership
          in
          Svcache.install ~speculative:q.Guard.speculative isv_cache
            ~asid:q.Guard.asid key bit;
          Guard.Block Guard.Isv)
  in
  let notify_vp ~insn_va ~addr ~asid ~kernel_mode =
    if kernel_mode then begin
      Svcache.touch isv_cache ~asid (isv_key_of_va insn_va);
      match Layout.pa_of_direct_map addr with
      | Some pa -> Svcache.touch dsv_cache ~asid (dsv_key_of_page (pa / Layout.page_bytes))
      | None -> ()
    end
  in
  {
    Guard.name;
    check;
    notify_vp = Some notify_vp;
    spec_read = None;
    notify_squash = None;
    shadow_btb = false;
  }

(* A shadow guard never blocks: speculative loads execute against the shadow
   table ([spec_read]) and are promoted into the real hierarchy at the
   Visibility Point; a squash discards them ([notify_squash]). *)
let shadow_guard shadow name =
  {
    Guard.name;
    check = (fun _ -> Guard.Allow);
    notify_vp =
      Some
        (fun ~insn_va:_ ~addr ~asid ~kernel_mode:_ ->
          Shadow.promote shadow ~key:(Layout.phys_key ~asid addr) ~asid);
    spec_read = Some (fun ~key ~asid -> Shadow.spec_read shadow ~key ~asid);
    notify_squash = Some (fun ~asid -> Shadow.squash shadow ~asid);
    shadow_btb = true;
  }

let build ~scheme ~vm ~node_of_fid ~block_unknown ?(isv_cache_entries = 128)
    ?(dsv_cache_entries = 128) ?memsys () =
  let isv_cache = Svcache.create ~entries:isv_cache_entries ~name:"ISV cache" () in
  let dsv_cache = Svcache.create ~entries:dsv_cache_entries ~name:"DSV cache" () in
  let isv_pages = Isv_pages.create () in
  let shadow_of mode =
    match memsys with
    | Some ms -> Shadow.create ~mode ms
    | None ->
      invalid_arg
        (Printf.sprintf "Defense.build: scheme %s needs ~memsys (shadow structures probe the real hierarchy)"
           (scheme_name scheme))
  in
  let shadow =
    match scheme with
    | Safespec -> Some (shadow_of Shadow.Shared)
    | Specbox -> Some (shadow_of Shadow.Labeled)
    | Unsafe | Fence | Dom | Stt | Perspective _ -> None
  in
  let guard =
    match scheme with
    | Unsafe -> Guard.allow_all
    | Fence ->
      {
        Guard.name = "fence";
        check =
          (fun q -> if q.Guard.speculative then Guard.Block Guard.Baseline else Guard.Allow);
        notify_vp = None;
        spec_read = None;
        notify_squash = None;
        shadow_btb = false;
      }
    | Dom ->
      {
        Guard.name = "dom";
        check =
          (fun q ->
            if q.Guard.speculative && not q.Guard.l1_hit then Guard.Block Guard.Baseline
            else Guard.Allow);
        notify_vp = None;
        spec_read = None;
        notify_squash = None;
        shadow_btb = false;
      }
    | Stt ->
      {
        Guard.name = "stt";
        check =
          (fun q -> if q.Guard.tainted then Guard.Block Guard.Baseline else Guard.Allow);
        notify_vp = None;
        spec_read = None;
        notify_squash = None;
        shadow_btb = false;
      }
    | Perspective _ ->
      perspective_guard ~vm ~node_of_fid ~block_unknown ~isv_cache ~dsv_cache
        ~isv_pages (scheme_name scheme)
    | Safespec | Specbox -> (
      match shadow with
      | Some sh -> shadow_guard sh (String.lowercase_ascii (scheme_name scheme))
      | None -> assert false)
  in
  { scheme; guard; isv_cache; dsv_cache; isv_pages; vm; shadow }

let guard t = t.guard
let scheme t = t.scheme
let shadow t = t.shadow
let isv_cache t = t.isv_cache
let dsv_cache t = t.dsv_cache

let isv_pages t = t.isv_pages

let view_manager t = t.vm

let note_freed_page t ~page =
  Svcache.invalidate t.dsv_cache (dsv_key_of_page page);
  View_manager.invalidate_page t.vm ~page

let note_view_changed t ~insn_va =
  let page_base = insn_va land lnot (Layout.page_bytes - 1) in
  for line = 0 to (Layout.page_bytes / Layout.line_bytes) - 1 do
    Svcache.invalidate t.isv_cache (isv_key_of_va (page_base + (line * Layout.line_bytes)))
  done;
  Isv_pages.invalidate_page t.isv_pages ~code_page_va:insn_va
