(** Defense schemes as pipeline guards (paper Chapter 7's configurations).

    - [Unsafe]: the unprotected baseline.
    - [Fence]: hardware-only — every speculative load waits for all older
      branches to resolve.
    - [Dom]: Delay-on-Miss — speculative loads that miss the L1 wait for
      their Visibility Point; L1 hits proceed.
    - [Stt]: Speculative Taint Tracking — only transmitters whose operands
      derive from a not-yet-visible speculative load are delayed.
    - [Perspective kind]: the paper's scheme — in kernel mode, a speculative
      load is fenced when the instruction is outside the context's ISV
      (checked through the ISV cache) or the data is outside its DSV
      (checked through the DSV cache backed by DSVMT walks).  A view-cache
      miss conservatively fences and refills (§6.2).
    - [Safespec]: shadow structures — speculative loads fill a shared shadow
      table (and the BTB trains only at commit); squash discards everything,
      the Visibility Point promotes survivors into the real hierarchy.
    - [Specbox]: like [Safespec] but shadow entries are labeled per ASID:
      hits require a label match and a squash flushes only the squashing
      domain's entries. *)

type scheme =
  | Unsafe
  | Fence
  | Dom
  | Stt
  | Perspective of Isv.kind
  | Safespec
  | Specbox

val scheme_name : scheme -> string
val all_schemes : scheme list
(** The five configurations of Chapter 7 (with [Perspective All] omitted). *)

type t

val build :
  scheme:scheme ->
  vm:View_manager.t ->
  node_of_fid:(int -> int option) ->
  block_unknown:bool ->
  ?isv_cache_entries:int ->
  ?dsv_cache_entries:int ->
  ?memsys:Pv_uarch.Memsys.t ->
  unit ->
  t
(** Instantiate a defense.  [vm], [node_of_fid] are only consulted by
    Perspective guards; pass a throwaway view manager for the others.
    Cache capacities default to the paper's 128 entries.  [memsys] (the
    core's memory hierarchy) is required by the shadow schemes
    [Safespec]/[Specbox] — raises [Invalid_argument] when omitted for those
    — and ignored by every other scheme. *)

val guard : t -> Pv_uarch.Guard.t
val scheme : t -> scheme

val shadow : t -> Shadow.t option
(** The shadow table behind a [Safespec]/[Specbox] guard ([None] for other
    schemes) — exposed for tests and counters. *)

val isv_cache : t -> Svcache.t
val dsv_cache : t -> Svcache.t

val isv_pages : t -> Isv_pages.t
(** The demand-populated ISV metadata pages behind the ISV cache. *)

val view_manager : t -> View_manager.t
(** The registry of live views this defense consults (for runtime
    reconfiguration). *)

val note_freed_page : t -> page:int -> unit
(** Frame freed / owner changed: invalidate the DSV cache entry and every
    DSVMT leaf for that physical page. *)

val note_view_changed : t -> insn_va:int -> unit
(** A function's ISV membership changed at runtime (shrink / gadget patch):
    drop the stale ISV-cache entries and shadow-page bits for its code
    page. *)

val isv_key_of_va : int -> int
(** ISV-cache key of an instruction VA (line granularity). *)

val dsv_key_of_page : int -> int
