open Pv_uarch

type mode = Shared | Labeled

type t = {
  mode : mode;
  ms : Memsys.t;
  tbl : (int, int) Hashtbl.t; (* physical line -> label *)
  mutable fills : int;
  mutable discards : int;
  mutable promotions : int;
}

let create ~mode ms = { mode; ms; tbl = Hashtbl.create 64; fills = 0; discards = 0; promotions = 0 }

let mode t = t.mode

let label_of t ~asid = match t.mode with Shared -> 0 | Labeled -> asid

let line_of key = key / Pv_isa.Layout.line_bytes

(* Latency a demand access would see right now, without mutating any level:
   mirrors Memsys.read_lat's walk (L1 hit; L1+L2; L1+L2+DRAM). *)
let probe_latency t key =
  let l1 = Memsys.l1d t.ms and l2 = Memsys.l2 t.ms in
  if Cache.probe l1 key then Cache.latency l1
  else if Cache.probe l2 key then Cache.latency l1 + Cache.latency l2
  else Cache.latency l1 + Cache.latency l2 + Memsys.dram_latency t.ms

let spec_read t ~key ~asid =
  let line = line_of key in
  let lbl = label_of t ~asid in
  match Hashtbl.find_opt t.tbl line with
  | Some l when l = lbl ->
    (* Shadow hit: serviced at L1 speed, still invisible architecturally. *)
    Cache.latency (Memsys.l1d t.ms)
  | _ ->
    let lat = probe_latency t key in
    Hashtbl.replace t.tbl line lbl;
    t.fills <- t.fills + 1;
    lat

let promote t ~key ~asid =
  let line = line_of key in
  let lbl = label_of t ~asid in
  match Hashtbl.find_opt t.tbl line with
  | Some l when l = lbl ->
    Hashtbl.remove t.tbl line;
    t.promotions <- t.promotions + 1;
    ignore (Memsys.data_read t.ms key)
  | Some _ | None -> ()

let squash t ~asid =
  match t.mode with
  | Shared ->
    t.discards <- t.discards + Hashtbl.length t.tbl;
    Hashtbl.reset t.tbl
  | Labeled ->
    let lbl = asid in
    let doomed =
      Hashtbl.fold (fun line l acc -> if l = lbl then line :: acc else acc) t.tbl []
    in
    List.iter
      (fun line ->
        Hashtbl.remove t.tbl line;
        t.discards <- t.discards + 1)
      doomed

let size t = Hashtbl.length t.tbl
let fills t = t.fills
let discards t = t.discards
let promotions t = t.promotions
