(** Shadow speculative-load structures for SafeSpec/SpecBox-style schemes.

    Instead of {e blocking} speculative loads (FENCE/DOM/STT/Perspective), a
    shadow scheme lets them execute but redirects their fills into a private
    side table that the real cache hierarchy never sees.  On squash the shadow
    entries are discarded — transient fills leave no trace an attacker's
    flush+reload can observe.  When a load reaches its Visibility Point its
    line (if still shadowed) is promoted: removed from the table and filled
    into the real hierarchy with a genuine access, exactly as a
    non-speculative load would have done.

    Two flavours share the implementation:
    - {b Shared} (SafeSpec): one unlabeled shadow; any squash flushes it all.
    - {b Labeled} (SpecBox): entries are tagged with the filling ASID; hits
      require a label match and a squash flushes only the squashing ASID's
      entries — isolation between security domains rather than a global
      purge. *)

type mode = Shared | Labeled

type t

val create : mode:mode -> Pv_uarch.Memsys.t -> t
(** The memory system is only {e probed} (never mutated) on the speculative
    path; mutation happens solely in {!promote}. *)

val mode : t -> mode

val spec_read : t -> key:int -> asid:int -> int
(** Latency of a speculative load of physical key [key]: a label-matching
    shadow hit is serviced at L1 latency; otherwise the latency the real
    hierarchy would charge right now (non-mutating probe walk), and the line
    enters the shadow.  Wired into {!Pv_uarch.Guard.t.spec_read}. *)

val promote : t -> key:int -> asid:int -> unit
(** Visibility-Point commit: if [key]'s line is shadowed under this label,
    remove it and perform the real hierarchy fill.  Loads that never hit the
    shadow (store-forwarded, non-speculative, or flushed by an unrelated
    squash) are left alone.  Wired into {!Pv_uarch.Guard.t.notify_vp}. *)

val squash : t -> asid:int -> unit
(** Discard speculative fills: everything in [Shared] mode, only [asid]'s
    entries in [Labeled] mode.  Wired into
    {!Pv_uarch.Guard.t.notify_squash}. *)

val size : t -> int
val fills : t -> int
val discards : t -> int
val promotions : t -> int
