type entry = {
  mutable valid : bool;
  mutable tag : int;
  mutable asid : int;
  mutable bit : bool;
  mutable lru : int;
}

type t = {
  name : string;
  nsets : int;
  sets : entry array array;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(entries = 128) ?(ways = 4) ~name () =
  if entries mod ways <> 0 then invalid_arg "Svcache.create: entries/ways mismatch";
  let nsets = entries / ways in
  {
    name;
    nsets;
    sets =
      Array.init nsets (fun _ ->
          Array.init ways (fun _ ->
              { valid = false; tag = 0; asid = -1; bit = false; lru = 0 }));
    tick = 0;
    hits = 0;
    misses = 0;
  }

let name t = t.name

type lookup = Hit of bool | Miss

let set_of t key = t.sets.(key mod t.nsets)

let tag_of t key = key / t.nsets

let find t ~asid key =
  let set = set_of t key in
  let tag = tag_of t key in
  let n = Array.length set in
  let rec go i =
    if i = n then None
    else
      let e = set.(i) in
      if e.valid && e.tag = tag && e.asid = asid then Some e else go (i + 1)
  in
  go 0

let lookup t ~asid key =
  match find t ~asid key with
  | Some e ->
    t.hits <- t.hits + 1;
    Hit e.bit
  | None ->
    t.misses <- t.misses + 1;
    Miss

(* LRU state is frozen until the access reaches its Visibility Point: a
   speculative install fills the line (the walk result must be usable) but
   leaves the replacement order exactly as a non-speculative observer would
   see it — the filled line inherits the victim's LRU stamp, so until
   [touch] promotes it at the VP it stays the set's next victim and a
   squashed path has not perturbed which line gets evicted. *)
let install ?(speculative = false) t ~asid key bit =
  let set = set_of t key in
  match find t ~asid key with
  | Some e ->
    e.bit <- bit;
    if not speculative then begin
      t.tick <- t.tick + 1;
      e.lru <- t.tick
    end
  | None ->
    let victim = ref set.(0) in
    Array.iter
      (fun e ->
        if not e.valid then victim := e
        else if !victim.valid && e.lru < !victim.lru then victim := e)
      set;
    let e = !victim in
    e.valid <- true;
    e.tag <- tag_of t key;
    e.asid <- asid;
    e.bit <- bit;
    if not speculative then begin
      t.tick <- t.tick + 1;
      e.lru <- t.tick
    end

let touch t ~asid key =
  match find t ~asid key with
  | Some e ->
    t.tick <- t.tick + 1;
    e.lru <- t.tick
  | None -> ()

let invalidate t key =
  let set = set_of t key in
  let tag = tag_of t key in
  Array.iter (fun e -> if e.valid && e.tag = tag then e.valid <- false) set

let flush t = Array.iter (fun set -> Array.iter (fun e -> e.valid <- false) set) t.sets

let hits t = t.hits
let misses t = t.misses
let accesses t = t.hits + t.misses

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then None else Some (float_of_int t.hits /. float_of_int total)

let observe_metrics reg ~prefix t =
  let open Pv_util in
  Metrics.set_int reg (prefix ^ ".hits") t.hits;
  Metrics.set_int reg (prefix ^ ".misses") t.misses;
  Metrics.set_int reg (prefix ^ ".accesses") (accesses t);
  (* hit_rate is only meaningful once the cache has been probed; an absent
     key is the snapshot-level rendering of "no accesses". *)
  match hit_rate t with
  | Some r -> Metrics.set_float reg (prefix ^ ".hit_rate") r
  | None -> ()

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
