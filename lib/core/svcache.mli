(** The speculation-view hardware caches (paper §6.2, Figure 6.1(b)).

    A small set-associative cache holding one view bit per entry, tagged with
    the address-space id so context switches need no flush.  Used both as the
    ISV cache (keyed by instruction-VA line) and the DSV cache (keyed by data
    page).  Matching the paper's conservative design, LRU promotion can be
    deferred to the load's Visibility Point via {!touch}. *)

type t

val create : ?entries:int -> ?ways:int -> name:string -> unit -> t
(** Defaults: 128 entries, 4 ways (Table 7.1). *)

val name : t -> string

type lookup = Hit of bool | Miss

val lookup : t -> asid:int -> int -> lookup
(** [lookup t ~asid key] probes without LRU promotion (deferred to VP). *)

val install : ?speculative:bool -> t -> asid:int -> int -> bool -> unit
(** Fill after a DSVMT walk / ISV-page fetch, evicting the set's LRU entry.
    With [~speculative:true] (the state every defense-guard fill is actually
    in), replacement state stays {e frozen}: the filled line inherits the
    evicted victim's LRU stamp, so it remains the set's next victim until
    {!touch} promotes it at the Visibility Point.  A squashed speculative
    walk therefore cannot change which line a later access evicts — the LRU
    channel the paper closes.  Default [false] (architectural fill). *)

val touch : t -> asid:int -> int -> unit
(** LRU promotion at the Visibility Point. *)

val invalidate : t -> int -> unit
(** Drop all entries for a key across all ASIDs (view reconfiguration,
    page frees). *)

val flush : t -> unit
val hits : t -> int
val misses : t -> int

val accesses : t -> int
(** [hits + misses]. *)

val hit_rate : t -> float option
(** [None] on an untouched cache — distinguishable from [Some 0.]
    (a 100%-miss cache), which the §9.2 reporting must not conflate. *)

val observe_metrics : Pv_util.Metrics.t -> prefix:string -> t -> unit
(** Register [<prefix>.hits], [<prefix>.misses], [<prefix>.accesses] and —
    only when the cache has been accessed — [<prefix>.hit_rate]. *)

val reset_stats : t -> unit
