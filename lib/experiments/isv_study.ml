module Kernel = Pv_kernel.Kernel
module Callgraph = Pv_kernel.Callgraph
module Gadgets = Pv_scanner.Gadgets
module Campaign = Pv_scanner.Campaign
module Bitset = Pv_util.Bitset
module Tab = Pv_util.Tab
module Stats = Pv_util.Stats

type workload_views = {
  name : string;
  static_nodes : Bitset.t;
  dynamic_nodes : Bitset.t;
  plus_nodes : Bitset.t;
}

type t = {
  kernel : Kernel.t;
  corpus : Gadgets.t;
  views : workload_views list;
  build_seed : int;  (* pins kernel/corpus/views for cache descriptors *)
}

let build ?(seed = 42) () =
  let kernel = Kernel.create ~seed () in
  let graph = Kernel.graph kernel in
  let corpus = Gadgets.plant graph ~seed in
  let views =
    List.map
      (fun (w : Workset.w) ->
        let proc = Kernel.spawn kernel ~name:w.Workset.name in
        for _ = 1 to w.Workset.repetitions do
          List.iter
            (fun (nr, args) -> ignore (Kernel.exec_syscall kernel proc ~nr ~args))
            w.Workset.sequence
        done;
        let ctx = Pv_kernel.Process.cgroup proc in
        let static_nodes =
          Pv_isvgen.Static_isv.node_set graph ~syscalls:(Workset.syscalls w)
        in
        let dynamic_nodes = Pv_isvgen.Dynamic_isv.node_set kernel ~ctx in
        (* ISV++: the bounded audit finds every gadget inside the dynamic
           view; exclude them. *)
        let in_view =
          List.filter_map
            (fun g ->
              if Bitset.mem dynamic_nodes g.Gadgets.node then Some g.Gadgets.node
              else None)
            (Gadgets.gadgets corpus)
        in
        let plus_nodes =
          let b = Bitset.copy dynamic_nodes in
          List.iter (Bitset.clear b) in_view;
          b
        in
        { name = w.Workset.name; static_nodes; dynamic_nodes; plus_nodes })
      Workset.all
  in
  { kernel; corpus; views; build_seed = seed }

(* --- Table 8.1 ------------------------------------------------------ *)

type surface_row = {
  workload : string;
  isv_s_reduction : float;
  isv_reduction : float;
  static_size : int;
  dynamic_size : int;
  kernel_functions : int;
}

let reduction ~total size = 100.0 *. (1.0 -. (float_of_int size /. float_of_int total))

let surface_rows t =
  let total = Callgraph.nnodes (Kernel.graph t.kernel) in
  List.map
    (fun v ->
      let s = Bitset.count v.static_nodes in
      let d = Bitset.count v.dynamic_nodes in
      {
        workload = v.name;
        isv_s_reduction = reduction ~total s;
        isv_reduction = reduction ~total d;
        static_size = s;
        dynamic_size = d;
        kernel_functions = total;
      })
    t.views

let surface_table t =
  let tab =
    Tab.create ~title:"Table 8.1: Attack surface reduction with Perspective"
      ~header:
        [
          ("Config", Tab.Left);
          ("LEBench", Tab.Right);
          ("httpd", Tab.Right);
          ("nginx", Tab.Right);
          ("memcached", Tab.Right);
          ("redis", Tab.Right);
        ]
  in
  let rows = surface_rows t in
  let line name f = name :: List.map (fun r -> Tab.pct (f r)) rows in
  Tab.row tab (line "ISV-S" (fun r -> r.isv_s_reduction));
  Tab.row tab (line "ISV" (fun r -> r.isv_reduction));
  Tab.caption tab "Paper: ISV-S 90-92%, ISV 94-96% across all workloads.";
  (match rows with
  | r :: _ ->
    Tab.caption tab
      (Printf.sprintf "Kernel functions: %d; e.g. %s static ISV %d, dynamic ISV %d."
         r.kernel_functions r.workload r.static_size r.dynamic_size)
  | [] -> ());
  tab

(* --- Table 8.2 ------------------------------------------------------ *)

type gadget_row = {
  workload : string;
  isv_s_pct : float * float * float;
  isv_pct : float * float * float;
  plus_pct : float * float * float;
}

let kinds_pct corpus scope =
  ( Gadgets.excluded_pct corpus Gadgets.Mds scope,
    Gadgets.excluded_pct corpus Gadgets.Port scope,
    Gadgets.excluded_pct corpus Gadgets.CacheChannel scope )

let gadget_rows t =
  List.map
    (fun v ->
      {
        workload = v.name;
        isv_s_pct = kinds_pct t.corpus v.static_nodes;
        isv_pct = kinds_pct t.corpus v.dynamic_nodes;
        plus_pct = kinds_pct t.corpus v.plus_nodes;
      })
    t.views

let fmt3 (a, b, c) = Printf.sprintf "%.0f%% / %.0f%% / %.0f%%" a b c

let gadget_table t =
  let tab =
    Tab.create ~title:"Table 8.2: Perspective's MDS/Port/Cache gadget reduction"
      ~header:
        [
          ("Benchmark", Tab.Left);
          ("ISV-S", Tab.Right);
          ("ISV", Tab.Right);
          ("ISV++", Tab.Right);
        ]
  in
  List.iter
    (fun r -> Tab.row tab [ r.workload; fmt3 r.isv_s_pct; fmt3 r.isv_pct; fmt3 r.plus_pct ])
    (gadget_rows t);
  Tab.caption tab
    (Printf.sprintf "Corpus: %d gadgets (%d MDS / %d Port / %d Cache), as Kasper reports."
       (Gadgets.total t.corpus)
       (Gadgets.count t.corpus Gadgets.Mds)
       (Gadgets.count t.corpus Gadgets.Port)
       (Gadgets.count t.corpus Gadgets.CacheChannel));
  Tab.caption tab "Paper: ISV-S 78-87%, ISV 91-93%, ISV++ 100% across workloads.";
  tab

(* --- Figure 9.1 ------------------------------------------------------ *)

type speedup_row = {
  workload : string;
  full_rate : float;
  bounded_rate : float;
  speedup : float;
}

let speedup_rows ?(seed = 42) ?(jobs = 1) t =
  let graph = Kernel.graph t.kernel in
  let full = Campaign.run graph t.corpus ~seed () in
  (* Campaign.run only reads the shared graph/corpus (its own state is
     local), so the per-workload bounded campaigns are pool-safe jobs. *)
  Pv_util.Pool.run ~jobs
    (fun v ->
      let bounded = Campaign.run graph t.corpus ~scope:v.dynamic_nodes ~seed () in
      {
        workload = v.name;
        full_rate = full.Campaign.rate;
        bounded_rate = bounded.Campaign.rate;
        speedup = Campaign.speedup ~bounded ~full;
      })
    t.views

let average_speedup rows = Stats.mean (List.map (fun r -> r.speedup) rows)

(* Supervised form: one cell per workload's bounded campaign.  The full-
   kernel campaign is shared, computed up front (outside supervision — if it
   fails nothing downstream is meaningful). *)
let speedup_cells ?(seed = 42) t =
  let graph = Kernel.graph t.kernel in
  let full = Campaign.run graph t.corpus ~seed () in
  List.map
    (fun v ->
      Supervise.cell
        ~cache:
          (Printf.sprintf "isv-study/speedup|workload=%s|build_seed=%d|seed=%d"
             v.name t.build_seed seed)
        ("speedup/" ^ v.name)
        (fun ~fuel:_ ->
          let bounded = Campaign.run graph t.corpus ~scope:v.dynamic_nodes ~seed () in
          {
            workload = v.name;
            full_rate = full.Campaign.rate;
            bounded_rate = bounded.Campaign.rate;
            speedup = Campaign.speedup ~bounded ~full;
          }))
    t.views

let speedup_table_rows rows =
  let tab =
    Tab.create ~title:"Figure 9.1: Speedup of Kasper's gadget discovery rate (gadgets/hour)"
      ~header:
        [
          ("Workload", Tab.Left);
          ("Full kernel (g/h)", Tab.Right);
          ("ISV-bounded (g/h)", Tab.Right);
          ("Speedup", Tab.Right);
        ]
  in
  let present = List.filter_map snd rows in
  List.iter
    (fun (key, row) ->
      match row with
      | Some r ->
        Tab.row tab
          [ r.workload; Tab.fl r.full_rate; Tab.fl r.bounded_rate; Tab.times r.speedup ]
      | None -> Tab.row tab [ Filename.basename key; "FAILED"; "-"; "-" ])
    rows;
  (* An all-failed sweep has no speedup series: say so, don't omit the row
     (and never average a plausible-looking 0). *)
  (match Stats.mean_opt (List.map (fun r -> r.speedup) present) with
  | Some avg -> Tab.row tab [ "average"; ""; ""; Tab.times avg ]
  | None -> Tab.row tab [ "average"; ""; ""; "n/a" ]);
  Tab.caption tab "Paper: 1.14-2.23x across workloads, 1.57x on average.";
  tab

let speedup_table ?(seed = 42) ?(jobs = 1) t =
  let rows = speedup_rows ~seed ~jobs t in
  speedup_table_rows (List.map (fun r -> (r.workload, Some r)) rows)
