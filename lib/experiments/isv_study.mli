(** The ISV security study: Table 8.1 (attack-surface reduction), Table 8.2
    (gadget reduction per ISV flavour) and Figure 9.1 (Kasper discovery-rate
    speedup under ISV-bounded scanning).

    One synthetic kernel hosts all five workloads (each in its own cgroup);
    static ISVs come from each workload's syscall set, dynamic ISVs from
    functional traces, ISV++ from excluding the gadgets the bounded scan
    finds. *)

type workload_views = {
  name : string;
  static_nodes : Pv_util.Bitset.t;
  dynamic_nodes : Pv_util.Bitset.t;
  plus_nodes : Pv_util.Bitset.t;
}

type t = {
  kernel : Pv_kernel.Kernel.t;
  corpus : Pv_scanner.Gadgets.t;
  views : workload_views list;
  build_seed : int;
      (** the seed {!build} was given; pins kernel/corpus/views in result-
          cache descriptors *)
}

val build : ?seed:int -> unit -> t

(* Table 8.1 *)
type surface_row = {
  workload : string;
  isv_s_reduction : float;
  isv_reduction : float;
  static_size : int;
  dynamic_size : int;
  kernel_functions : int;
}

val surface_rows : t -> surface_row list
val surface_table : t -> Pv_util.Tab.t

(* Table 8.2 *)
type gadget_row = {
  workload : string;
  isv_s_pct : float * float * float;  (** MDS / Port / Cache excluded *)
  isv_pct : float * float * float;
  plus_pct : float * float * float;
}

val gadget_rows : t -> gadget_row list
val gadget_table : t -> Pv_util.Tab.t

(* Figure 9.1 *)
type speedup_row = {
  workload : string;
  full_rate : float;
  bounded_rate : float;
  speedup : float;
}

val speedup_rows : ?seed:int -> ?jobs:int -> t -> speedup_row list
(** [jobs] parallelizes the per-workload bounded campaigns (read-only over
    the shared kernel graph and corpus); row order is workload order. *)

val speedup_table : ?seed:int -> ?jobs:int -> t -> Pv_util.Tab.t
val average_speedup : speedup_row list -> float
(** Arithmetic mean of the rows' speedups.  Raises [Invalid_argument] on an
    empty row list (the table renders that case as ["n/a"]). *)

val speedup_cells : ?seed:int -> t -> speedup_row Supervise.cell list
(** Figure 9.1 as supervised cells (keys ["speedup/<workload>"]); the
    shared full-kernel campaign runs up front, each cell runs one
    workload's ISV-bounded campaign. *)

val speedup_table_rows : (string * speedup_row option) list -> Pv_util.Tab.t
(** Render a (possibly degraded) supervised Figure 9.1; failed workloads
    keep their row, marked FAILED, and the average covers survivors. *)
