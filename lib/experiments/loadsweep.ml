module Apps = Pv_workloads.Apps
module Costmodel = Pv_service.Costmodel
module Arrivals = Pv_service.Arrivals
module Server = Pv_service.Server
module Latency = Pv_service.Latency
module Rng = Pv_util.Rng
module Metrics = Pv_util.Metrics
module Tab = Pv_util.Tab

type point = {
  app : string;
  scheme : string;
  load : float;
  offered_krps : float;
  (* [None] = nothing was served (e.g. an all-shed overload point): there is
     no latency distribution, and the table renders "n/a". *)
  p50_us : float option;
  p95_us : float option;
  p99_us : float option;
  p999_us : float option;
  goodput_krps : float;
  offered : int;
  served : int;
  shed : int;
  metrics : Metrics.snapshot;
}

let default_loads = [ 0.3; 0.5; 0.7; 0.85; 0.95; 1.1; 1.3 ]

let cal_key app label = Printf.sprintf "service-cal/%s/%s" app label
let point_key app label load = Printf.sprintf "service/%s/%s/%.2f" app label load

(* Deterministic seed derivation from strings: load points must agree on
   their arrival/service streams across cells, worker domains and resumes,
   so nothing here may depend on hashing internals or execution order. *)
let key_seed base s =
  String.fold_left (fun acc c -> ((acc * 131) + Char.code c) land 0x3FFFFFFF) base s

(* Cache descriptors: the canonical serialization of every input of the
   measurement.  The app contributes its request mix implicitly through its
   name plus the two knobs scaling can change (requests, user_work); the
   calibration knobs warm/chunk/block_unknown are this family's fixed
   defaults, folded into Rescache.code_salt.  Fuel only decides failure and
   successes alone are stored, so it stays out of the key. *)
let cal_descriptor ~points ~seed (a : Apps.app) label =
  Printf.sprintf "service-cal|app=%s|req=%d|uw=%d|scheme=%s|seed=%d|points=%d"
    a.Apps.name a.Apps.requests a.Apps.user_work label seed
    (Option.value points ~default:4)

let calibration_cells ?(seed = 42) ?points ~apps ~variants () =
  List.concat_map
    (fun (a : Apps.app) ->
      List.map
        (fun (v : Schemes.variant) ->
          Supervise.cell
            ~cache:(cal_descriptor ~points ~seed a v.Schemes.label)
            (cal_key a.Apps.name v.Schemes.label)
            (fun ~fuel ->
              Costmodel.calibrate ~seed ?points ?fuel ~scheme:v.Schemes.scheme
                ~label:v.Schemes.label a))
        variants)
    apps

let find_model models key =
  match List.assoc_opt key models with
  | Some (Some m) -> m
  | Some None | None ->
    failwith (Printf.sprintf "Loadsweep: no calibrated cost model for %s" key)

(* cycles -> microseconds at the simulator's 2 GHz clock *)
let us_of_cycles c = c /. 2000.0

let measure_point ~seed ~requests ~server ~models (a : Apps.app)
    (v : Schemes.variant) ~load =
  let cm = find_model models (cal_key a.Apps.name v.Schemes.label) in
  let base = find_model models (cal_key a.Apps.name "UNSAFE") in
  (* Offered rate = load fraction of the UNSAFE saturation throughput, so
     every scheme of an app is presented the *same* absolute load and the
     scheme with the fatter service time saturates first. *)
  let rate_rps = load *. Costmodel.capacity_rps base ~cores:server.Server.cores in
  let mean_ia = 2.0e9 /. rate_rps in
  let arrivals =
    Arrivals.times ~seed:(key_seed seed a.Apps.name) ~mean:mean_ia ~n:requests
  in
  let svc_rng = Rng.create (key_seed (key_seed seed a.Apps.name) v.Schemes.label) in
  let service = Array.init requests (fun _ -> Costmodel.sample cm svc_rng) in
  let r = Server.simulate ~config:server ~arrivals ~service:(fun i -> service.(i)) () in
  let pct p = Option.map us_of_cycles (Latency.percentile_opt r.Server.latency ~p) in
  let goodput_krps = Server.goodput_rps r /. 1000.0 in
  let reg = Metrics.create () in
  Metrics.set_int reg "service.offered" r.Server.offered;
  Metrics.set_int reg "service.served" r.Server.served;
  Metrics.set_int reg "service.shed" r.Server.shed;
  Metrics.set_float reg "service.load_fraction" load;
  Metrics.set_float reg "service.offered_krps" (rate_rps /. 1000.0);
  Metrics.set_float reg "service.goodput_krps" goodput_krps;
  Metrics.set_float reg "service.utilization" (Server.utilization r);
  (* Percentile keys are simply absent for an all-shed point — there is no
     latency distribution to report, and the key-set difference is itself a
     deterministic function of the inputs. *)
  let set_pct name p =
    match pct p with Some v -> Metrics.set_float reg name v | None -> ()
  in
  set_pct "service.p50_us" 50.0;
  set_pct "service.p95_us" 95.0;
  set_pct "service.p99_us" 99.0;
  set_pct "service.p999_us" 99.9;
  Latency.observe_metrics reg ~prefix:"service.latency_cycles" r.Server.latency;
  {
    app = a.Apps.name;
    scheme = v.Schemes.label;
    load;
    offered_krps = rate_rps /. 1000.0;
    p50_us = pct 50.0;
    p95_us = pct 95.0;
    p99_us = pct 99.0;
    p999_us = pct 99.9;
    goodput_krps;
    offered = r.Server.offered;
    served = r.Server.served;
    shed = r.Server.shed;
    metrics = Metrics.snapshot reg;
  }

let check_loads loads =
  if loads = [] then invalid_arg "Loadsweep: loads must be non-empty";
  List.iter
    (fun l ->
      if Float.is_nan l || l <= 0.0 then
        invalid_arg "Loadsweep: loads must be positive")
    loads

let check_variants variants =
  if not (List.exists (fun (v : Schemes.variant) -> v.Schemes.label = "UNSAFE") variants)
  then invalid_arg "Loadsweep: variants must include UNSAFE (the capacity baseline)"

(* A point's result is a function of the calibration models too; they are
   not in scope as data here, but they are pinned by the same (app, scheme,
   seed, points) tuple that keyed the calibration cells, so including
   [points] pins them transitively.  Callers must pass the same [points]
   they calibrated with ({!run} does). *)
let point_descriptor ~points ~seed ~requests ~(server : Server.config) (a : Apps.app)
    label ~load =
  Printf.sprintf
    "service|app=%s|req=%d|uw=%d|scheme=%s|seed=%d|points=%d|requests=%d|cores=%d|qb=%d|disp=%s|load=%.17g"
    a.Apps.name a.Apps.requests a.Apps.user_work label seed
    (Option.value points ~default:4)
    requests server.Server.cores server.Server.queue_bound
    (Server.dispatch_to_string server.Server.dispatch)
    load

let point_cells ?(seed = 42) ?points ?(requests = 5000) ?(server = Server.default_config)
    ~loads ~models ~apps ~variants () =
  check_loads loads;
  check_variants variants;
  if requests <= 0 then invalid_arg "Loadsweep: requests must be positive";
  List.concat_map
    (fun (a : Apps.app) ->
      List.concat_map
        (fun (v : Schemes.variant) ->
          List.map
            (fun load ->
              Supervise.cell
                ~cache:
                  (point_descriptor ~points ~seed ~requests ~server a
                     v.Schemes.label ~load)
                (point_key a.Apps.name v.Schemes.label load)
                (fun ~fuel:_ ->
                  measure_point ~seed ~requests ~server ~models a v ~load))
            loads)
        variants)
    apps

type outcome = {
  cal_sweep : Costmodel.t Supervise.sweep;
  point_sweep : point Supervise.sweep;
}

let run ?(config = Supervise.default) ?seed ?points ?requests ?server ?(loads = default_loads)
    ~apps ~variants () =
  check_loads loads;
  check_variants variants;
  let cal_sweep = Supervise.run ~config (calibration_cells ?seed ?points ~apps ~variants ()) in
  let point_sweep =
    Supervise.run ~config
      (point_cells ?seed ?points ?requests ?server ~loads
         ~models:cal_sweep.Supervise.results ~apps ~variants ())
  in
  { cal_sweep; point_sweep }

(* --- rendering -------------------------------------------------------- *)

let lookup sweep key = Option.join (List.assoc_opt key sweep.Supervise.results)

let table ?(server = Server.default_config) ?(requests = 5000) ~apps ~labels ~loads sweep =
  let tab =
    Tab.create
      ~title:
        (Printf.sprintf
           "Figure 9.3-tail: open-loop load-latency curves (%d cores, queue bound %d, \
            dispatch %s)"
           server.Server.cores server.Server.queue_bound
           (Server.dispatch_to_string server.Server.dispatch))
      ~header:
        [
          ("App", Tab.Left);
          ("Scheme", Tab.Left);
          ("load", Tab.Right);
          ("offered kRPS", Tab.Right);
          ("p50 us", Tab.Right);
          ("p95 us", Tab.Right);
          ("p99 us", Tab.Right);
          ("p99.9 us", Tab.Right);
          ("goodput kRPS", Tab.Right);
          ("shed", Tab.Right);
        ]
  in
  List.iter
    (fun (a : Apps.app) ->
      List.iteri
        (fun vi label ->
          List.iteri
            (fun li load ->
              let app_col = if vi = 0 && li = 0 then a.Apps.name else "" in
              let scheme_col = if li = 0 then label else "" in
              match lookup sweep (point_key a.Apps.name label load) with
              | Some p ->
                let us = function Some v -> Tab.fl ~dec:1 v | None -> "n/a" in
                Tab.row tab
                  [
                    app_col;
                    scheme_col;
                    Tab.fl load;
                    Tab.fl ~dec:1 p.offered_krps;
                    us p.p50_us;
                    us p.p95_us;
                    us p.p99_us;
                    us p.p999_us;
                    Tab.fl ~dec:1 p.goodput_krps;
                    Tab.pct (100.0 *. float_of_int p.shed /. float_of_int (max 1 p.offered));
                  ]
              | None ->
                Tab.row tab
                  (app_col :: scheme_col :: Tab.fl load
                  :: List.init 7 (fun _ -> "FAILED")))
            loads)
        labels)
    apps;
  Tab.caption tab
    (Printf.sprintf
       "Loads are fractions of each app's calibrated UNSAFE capacity; %d open-loop \
        requests per point, service times calibrated from cycle-level runs.  Admission \
        control sheds past the queue bound, so overload degrades to bounded p99 + \
        measured goodput instead of unbounded latency."
       requests);
  tab

let knee_table ~apps ~labels ~loads sweep =
  let loads = List.sort compare loads in
  let top = List.nth loads (List.length loads - 1) in
  let tab =
    Tab.create
      ~title:"Saturation knee per scheme (highest load with <= 1% shed)"
      ~header:
        [
          ("App", Tab.Left);
          ("Scheme", Tab.Left);
          ("knee load", Tab.Right);
          ("knee kRPS", Tab.Right);
          ("goodput@top kRPS", Tab.Right);
          ("shed@top", Tab.Right);
        ]
  in
  List.iter
    (fun (a : Apps.app) ->
      List.iteri
        (fun vi label ->
          let points =
            List.filter_map (fun l -> lookup sweep (point_key a.Apps.name label l)) loads
          in
          let app_col = if vi = 0 then a.Apps.name else "" in
          if points = [] then Tab.row tab [ app_col; label; "FAILED" ]
          else begin
            let knee =
              List.fold_left
                (fun acc p ->
                  if float_of_int p.shed <= 0.01 *. float_of_int (max 1 p.offered) then
                    Some p
                  else acc)
                None
                (List.sort (fun a b -> compare a.load b.load) points)
            in
            let at_top = List.find_opt (fun p -> p.load = top) points in
            Tab.row tab
              [
                app_col;
                label;
                (match knee with Some p -> Tab.fl p.load | None -> "-");
                (match knee with Some p -> Tab.fl ~dec:1 p.offered_krps | None -> "-");
                (match at_top with
                | Some p -> Tab.fl ~dec:1 p.goodput_krps
                | None -> "-");
                (match at_top with
                | Some p ->
                  Tab.pct (100.0 *. float_of_int p.shed /. float_of_int (max 1 p.offered))
                | None -> "-");
              ]
          end)
        labels)
    apps;
  Tab.caption tab
    "A scheme with fatter per-request service times saturates at a lower offered \
     kRPS; past the knee, goodput holds at capacity while admission control sheds \
     the excess.";
  tab

let exports ?elapsed o =
  [
    Supervise.export ?elapsed ~metrics_of:Costmodel.snapshot ~label:"service-cal" o.cal_sweep;
    Supervise.export ?elapsed
      ~metrics_of:(fun (p : point) -> p.metrics)
      ~label:"service" o.point_sweep;
  ]

let exit_code o =
  max (Supervise.exit_code [ o.cal_sweep ]) (Supervise.exit_code [ o.point_sweep ])
