module Apps = Pv_workloads.Apps
module Costmodel = Pv_service.Costmodel
module Arrivals = Pv_service.Arrivals
module Server = Pv_service.Server
module Latency = Pv_service.Latency
module Rng = Pv_util.Rng
module Metrics = Pv_util.Metrics
module Tab = Pv_util.Tab

type point = {
  app : string;
  scheme : string;
  load : float;
  offered_krps : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  p999_us : float;
  goodput_krps : float;
  offered : int;
  served : int;
  shed : int;
  metrics : Metrics.snapshot;
}

let default_loads = [ 0.3; 0.5; 0.7; 0.85; 0.95; 1.1; 1.3 ]

let cal_key app label = Printf.sprintf "service-cal/%s/%s" app label
let point_key app label load = Printf.sprintf "service/%s/%s/%.2f" app label load

(* Deterministic seed derivation from strings: load points must agree on
   their arrival/service streams across cells, worker domains and resumes,
   so nothing here may depend on hashing internals or execution order. *)
let key_seed base s =
  String.fold_left (fun acc c -> ((acc * 131) + Char.code c) land 0x3FFFFFFF) base s

let calibration_cells ?(seed = 42) ?points ~apps ~variants () =
  List.concat_map
    (fun (a : Apps.app) ->
      List.map
        (fun (v : Schemes.variant) ->
          Supervise.cell
            (cal_key a.Apps.name v.Schemes.label)
            (fun ~fuel ->
              Costmodel.calibrate ~seed ?points ?fuel ~scheme:v.Schemes.scheme
                ~label:v.Schemes.label a))
        variants)
    apps

let find_model models key =
  match List.assoc_opt key models with
  | Some (Some m) -> m
  | Some None | None ->
    failwith (Printf.sprintf "Loadsweep: no calibrated cost model for %s" key)

(* cycles -> microseconds at the simulator's 2 GHz clock *)
let us_of_cycles c = c /. 2000.0

let measure_point ~seed ~requests ~server ~models (a : Apps.app)
    (v : Schemes.variant) ~load =
  let cm = find_model models (cal_key a.Apps.name v.Schemes.label) in
  let base = find_model models (cal_key a.Apps.name "UNSAFE") in
  (* Offered rate = load fraction of the UNSAFE saturation throughput, so
     every scheme of an app is presented the *same* absolute load and the
     scheme with the fatter service time saturates first. *)
  let rate_rps = load *. Costmodel.capacity_rps base ~cores:server.Server.cores in
  let mean_ia = 2.0e9 /. rate_rps in
  let arrivals =
    Arrivals.times ~seed:(key_seed seed a.Apps.name) ~mean:mean_ia ~n:requests
  in
  let svc_rng = Rng.create (key_seed (key_seed seed a.Apps.name) v.Schemes.label) in
  let service = Array.init requests (fun _ -> Costmodel.sample cm svc_rng) in
  let r = Server.simulate ~config:server ~arrivals ~service:(fun i -> service.(i)) () in
  let pct p =
    if Latency.count r.Server.latency = 0 then 0.0
    else us_of_cycles (Latency.percentile r.Server.latency ~p)
  in
  let goodput_krps = Server.goodput_rps r /. 1000.0 in
  let reg = Metrics.create () in
  Metrics.set_int reg "service.offered" r.Server.offered;
  Metrics.set_int reg "service.served" r.Server.served;
  Metrics.set_int reg "service.shed" r.Server.shed;
  Metrics.set_float reg "service.load_fraction" load;
  Metrics.set_float reg "service.offered_krps" (rate_rps /. 1000.0);
  Metrics.set_float reg "service.goodput_krps" goodput_krps;
  Metrics.set_float reg "service.utilization" (Server.utilization r);
  Metrics.set_float reg "service.p50_us" (pct 50.0);
  Metrics.set_float reg "service.p95_us" (pct 95.0);
  Metrics.set_float reg "service.p99_us" (pct 99.0);
  Metrics.set_float reg "service.p999_us" (pct 99.9);
  Latency.observe_metrics reg ~prefix:"service.latency_cycles" r.Server.latency;
  {
    app = a.Apps.name;
    scheme = v.Schemes.label;
    load;
    offered_krps = rate_rps /. 1000.0;
    p50_us = pct 50.0;
    p95_us = pct 95.0;
    p99_us = pct 99.0;
    p999_us = pct 99.9;
    goodput_krps;
    offered = r.Server.offered;
    served = r.Server.served;
    shed = r.Server.shed;
    metrics = Metrics.snapshot reg;
  }

let check_loads loads =
  if loads = [] then invalid_arg "Loadsweep: loads must be non-empty";
  List.iter
    (fun l ->
      if Float.is_nan l || l <= 0.0 then
        invalid_arg "Loadsweep: loads must be positive")
    loads

let check_variants variants =
  if not (List.exists (fun (v : Schemes.variant) -> v.Schemes.label = "UNSAFE") variants)
  then invalid_arg "Loadsweep: variants must include UNSAFE (the capacity baseline)"

let point_cells ?(seed = 42) ?(requests = 5000) ?(server = Server.default_config)
    ~loads ~models ~apps ~variants () =
  check_loads loads;
  check_variants variants;
  if requests <= 0 then invalid_arg "Loadsweep: requests must be positive";
  List.concat_map
    (fun (a : Apps.app) ->
      List.concat_map
        (fun (v : Schemes.variant) ->
          List.map
            (fun load ->
              Supervise.cell
                (point_key a.Apps.name v.Schemes.label load)
                (fun ~fuel:_ ->
                  measure_point ~seed ~requests ~server ~models a v ~load))
            loads)
        variants)
    apps

type outcome = {
  cal_sweep : Costmodel.t Supervise.sweep;
  point_sweep : point Supervise.sweep;
}

let run ?(config = Supervise.default) ?seed ?points ?requests ?server ?(loads = default_loads)
    ~apps ~variants () =
  check_loads loads;
  check_variants variants;
  let cal_sweep = Supervise.run ~config (calibration_cells ?seed ?points ~apps ~variants ()) in
  let point_sweep =
    Supervise.run ~config
      (point_cells ?seed ?requests ?server ~loads ~models:cal_sweep.Supervise.results ~apps
         ~variants ())
  in
  { cal_sweep; point_sweep }

(* --- rendering -------------------------------------------------------- *)

let lookup sweep key = Option.join (List.assoc_opt key sweep.Supervise.results)

let table ?(server = Server.default_config) ?(requests = 5000) ~apps ~labels ~loads sweep =
  let tab =
    Tab.create
      ~title:
        (Printf.sprintf
           "Figure 9.3-tail: open-loop load-latency curves (%d cores, queue bound %d, \
            dispatch %s)"
           server.Server.cores server.Server.queue_bound
           (Server.dispatch_to_string server.Server.dispatch))
      ~header:
        [
          ("App", Tab.Left);
          ("Scheme", Tab.Left);
          ("load", Tab.Right);
          ("offered kRPS", Tab.Right);
          ("p50 us", Tab.Right);
          ("p95 us", Tab.Right);
          ("p99 us", Tab.Right);
          ("p99.9 us", Tab.Right);
          ("goodput kRPS", Tab.Right);
          ("shed", Tab.Right);
        ]
  in
  List.iter
    (fun (a : Apps.app) ->
      List.iteri
        (fun vi label ->
          List.iteri
            (fun li load ->
              let app_col = if vi = 0 && li = 0 then a.Apps.name else "" in
              let scheme_col = if li = 0 then label else "" in
              match lookup sweep (point_key a.Apps.name label load) with
              | Some p ->
                Tab.row tab
                  [
                    app_col;
                    scheme_col;
                    Tab.fl load;
                    Tab.fl ~dec:1 p.offered_krps;
                    Tab.fl ~dec:1 p.p50_us;
                    Tab.fl ~dec:1 p.p95_us;
                    Tab.fl ~dec:1 p.p99_us;
                    Tab.fl ~dec:1 p.p999_us;
                    Tab.fl ~dec:1 p.goodput_krps;
                    Tab.pct (100.0 *. float_of_int p.shed /. float_of_int (max 1 p.offered));
                  ]
              | None ->
                Tab.row tab
                  (app_col :: scheme_col :: Tab.fl load
                  :: List.init 7 (fun _ -> "FAILED")))
            loads)
        labels)
    apps;
  Tab.caption tab
    (Printf.sprintf
       "Loads are fractions of each app's calibrated UNSAFE capacity; %d open-loop \
        requests per point, service times calibrated from cycle-level runs.  Admission \
        control sheds past the queue bound, so overload degrades to bounded p99 + \
        measured goodput instead of unbounded latency."
       requests);
  tab

let knee_table ~apps ~labels ~loads sweep =
  let loads = List.sort compare loads in
  let top = List.nth loads (List.length loads - 1) in
  let tab =
    Tab.create
      ~title:"Saturation knee per scheme (highest load with <= 1% shed)"
      ~header:
        [
          ("App", Tab.Left);
          ("Scheme", Tab.Left);
          ("knee load", Tab.Right);
          ("knee kRPS", Tab.Right);
          ("goodput@top kRPS", Tab.Right);
          ("shed@top", Tab.Right);
        ]
  in
  List.iter
    (fun (a : Apps.app) ->
      List.iteri
        (fun vi label ->
          let points =
            List.filter_map (fun l -> lookup sweep (point_key a.Apps.name label l)) loads
          in
          let app_col = if vi = 0 then a.Apps.name else "" in
          if points = [] then Tab.row tab [ app_col; label; "FAILED" ]
          else begin
            let knee =
              List.fold_left
                (fun acc p ->
                  if float_of_int p.shed <= 0.01 *. float_of_int (max 1 p.offered) then
                    Some p
                  else acc)
                None
                (List.sort (fun a b -> compare a.load b.load) points)
            in
            let at_top = List.find_opt (fun p -> p.load = top) points in
            Tab.row tab
              [
                app_col;
                label;
                (match knee with Some p -> Tab.fl p.load | None -> "-");
                (match knee with Some p -> Tab.fl ~dec:1 p.offered_krps | None -> "-");
                (match at_top with
                | Some p -> Tab.fl ~dec:1 p.goodput_krps
                | None -> "-");
                (match at_top with
                | Some p ->
                  Tab.pct (100.0 *. float_of_int p.shed /. float_of_int (max 1 p.offered))
                | None -> "-");
              ]
          end)
        labels)
    apps;
  Tab.caption tab
    "A scheme with fatter per-request service times saturates at a lower offered \
     kRPS; past the knee, goodput holds at capacity while admission control sheds \
     the excess.";
  tab

let exports ?elapsed o =
  [
    Supervise.export ?elapsed ~metrics_of:Costmodel.snapshot ~label:"service-cal" o.cal_sweep;
    Supervise.export ?elapsed
      ~metrics_of:(fun (p : point) -> p.metrics)
      ~label:"service" o.point_sweep;
  ]

let exit_code o =
  max (Supervise.exit_code [ o.cal_sweep ]) (Supervise.exit_code [ o.point_sweep ])
