(** "Figure 9.3-tail": load-latency curves for the datacenter apps under
    each defense scheme.

    The paper's Figure 9.3 (and our {!Perf} reproduction of it) reports only
    average throughput of a closed request loop.  This experiment serves the
    same apps from an {e open-loop} arrival process through the
    {!Pv_service} subsystem instead: per-(app, scheme) service times are
    calibrated from real cycle-level runs ({!Pv_service.Costmodel}), offered
    load sweeps a fraction of the app's UNSAFE saturation throughput, and
    each (app, scheme, load) point reports exact nearest-rank p50/p95/p99/
    p99.9 sojourn times, goodput and the shed fraction of a bounded-queue
    multi-core server model.

    Both phases run as supervised cells — keys [service-cal/<app>/<scheme>]
    and [service/<app>/<scheme>/<load>] — so sweeps checkpoint, resume and
    degrade per cell like every other experiment, and all output obeys the
    byte-identity-for-any-[-j] contract. *)

module Costmodel = Pv_service.Costmodel
module Server = Pv_service.Server

type point = {
  app : string;
  scheme : string;
  load : float;  (** offered load as a fraction of UNSAFE capacity *)
  offered_krps : float;
  p50_us : float option;
      (** [None] = nothing was served (an all-shed overload point has no
          latency distribution); the table renders [n/a] *)
  p95_us : float option;
  p99_us : float option;
  p999_us : float option;
  goodput_krps : float;
  offered : int;
  served : int;
  shed : int;
  metrics : Pv_util.Metrics.snapshot;
}

val default_loads : float list
(** [0.3; 0.5; 0.7; 0.85; 0.95; 1.1; 1.3] — straddles every scheme's knee. *)

val calibration_cells :
  ?seed:int ->
  ?points:int ->
  apps:Pv_workloads.Apps.app list ->
  variants:Schemes.variant list ->
  unit ->
  Costmodel.t Supervise.cell list
(** One cell per (app, variant), keyed [service-cal/<app>/<label>]; the
    supervisor's fuel budget bounds each calibration run. *)

val point_cells :
  ?seed:int ->
  ?points:int ->
  ?requests:int ->
  ?server:Server.config ->
  loads:float list ->
  models:(string * Costmodel.t option) list ->
  apps:Pv_workloads.Apps.app list ->
  variants:Schemes.variant list ->
  unit ->
  point Supervise.cell list
(** One cell per (app, variant, load), keyed [service/<app>/<label>/<load>]
    ([load] printed as [%.2f]).  [models] is the calibration sweep's
    [results]; a point whose own or UNSAFE model is missing fails with a
    structured error (degrading to a [FAILED] table entry).  Arrival seeds
    depend only on (seed, app) and service-draw seeds only on (seed, app,
    scheme), so all loads of a curve share common random numbers and every
    scheme of an app sees the same arrival pattern.  [points] is only used
    to key the result cache (a point's value depends on the calibration,
    which [points] pins transitively) — pass the value the models were
    calibrated with, as {!run} does.  Raises [Invalid_argument] if
    [variants] lacks UNSAFE or [loads] is empty or non-positive. *)

type outcome = {
  cal_sweep : Costmodel.t Supervise.sweep;
  point_sweep : point Supervise.sweep;
}

val run :
  ?config:Supervise.config ->
  ?seed:int ->
  ?points:int ->
  ?requests:int ->
  ?server:Server.config ->
  ?loads:float list ->
  apps:Pv_workloads.Apps.app list ->
  variants:Schemes.variant list ->
  unit ->
  outcome
(** Calibrate, then sweep: two supervised runs sharing [config] (and hence
    its checkpoint journal — the key spaces are disjoint). *)

val table :
  ?server:Server.config ->
  ?requests:int ->
  apps:Pv_workloads.Apps.app list ->
  labels:string list ->
  loads:float list ->
  point Supervise.sweep ->
  Pv_util.Tab.t
(** The load-latency table: one row per (app, scheme, load), failed cells
    rendered as [FAILED]. *)

val knee_table :
  apps:Pv_workloads.Apps.app list ->
  labels:string list ->
  loads:float list ->
  point Supervise.sweep ->
  Pv_util.Tab.t
(** Saturation summary per (app, scheme): the knee (highest offered load
    with shed fraction <= 1%) and the overload behaviour at the top load
    point. *)

val exports : ?elapsed:float -> outcome -> Supervise.exported list
(** The [--metrics] payload: the calibration sweep (cost-model snapshots)
    and the point sweep (per-point latency/goodput metrics). *)

val exit_code : outcome -> int
