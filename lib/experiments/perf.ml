module Machine = Pv_sim.Machine
module Pipeline = Pv_uarch.Pipeline
module Kernel = Pv_kernel.Kernel
module Slab = Pv_kernel.Slab
module Lebench = Pv_workloads.Lebench
module Apps = Pv_workloads.Apps
module Driver = Pv_workloads.Driver
module Defense = Perspective.Defense
module Svcache = Perspective.Svcache

type run = {
  label : string;
  workload : string;
  cycles : int;
  committed : int;
  counters : Pipeline.counters;
  kernel_cycle_fraction : float;
  isv_hit_rate : float option;  (* None: the cache was never accessed *)
  dsv_hit_rate : float option;
  slab_utilization : float;
  slab_frees : int;
  slab_page_returns : int;
  isv_pages_populated : int;
  isv_metadata_bytes : int;
  units : int;
  metrics : Pv_util.Metrics.snapshot;
  events : Pipeline.event list;  (* [] unless the cell ran with ~trace:true *)
}

let fences_per_kiloinstr run =
  let k = float_of_int (max 1 run.counters.Pipeline.committed_kernel) /. 1000.0 in
  ( float_of_int run.counters.Pipeline.fences_isv /. k,
    float_of_int run.counters.Pipeline.fences_dsv /. k )

let profile_reps = 25

(* Each measurement is one self-contained Machine job: pure inputs in, a
   [run] record out.  Nothing here may touch state shared across runs — the
   parallel matrices below ship these to worker domains.  [fuel] is the
   supervisor's cycle budget; a run that exhausts it raises the structured
   Machine.Run_timeout instead of spinning forever. *)
let execute ?fuel ?(trace = false) ?on_commit ~seed ~block_unknown ~view_cache_entries
    ~syscalls ~sequence ~iterations ~user_work ~workload_name (variant : Schemes.variant) =
  let pipe_config = variant.Schemes.transform Pipeline.default_config in
  let pipe_config = { pipe_config with Pipeline.trace_events = trace } in
  let plant_gadgets =
    match variant.Schemes.scheme with
    | Defense.Perspective Perspective.Isv.Plus -> true
    | Defense.Perspective (Perspective.Isv.Static | Perspective.Isv.Dynamic | Perspective.Isv.All)
    | Defense.Unsafe | Defense.Fence | Defense.Dom | Defense.Stt
    | Defense.Safespec | Defense.Specbox ->
      false
  in
  let m, h, result, delta =
    Machine.run_job ?fuel ?on_commit
      (Machine.job ~pipe_config ~profile:sequence ~profile_reps ~plant_gadgets
         ~block_unknown ~isv_cache_entries:view_cache_entries
         ~dsv_cache_entries:view_cache_entries ~seed ~syscalls ~name:workload_name
         ~user_funcs:(Driver.build ~iterations ~sequence ~user_work)
         ~entry:0 variant.Schemes.scheme)
  in
  Machine.check_result ~name:(workload_name ^ "/" ^ variant.Schemes.label) result;
  let slab = Kernel.slab (Machine.kernel m) in
  let hit_rate cache_of =
    match Machine.defense m with
    | Some d -> Svcache.hit_rate (cache_of d)
    | None -> None
  in
  let ctx = Pv_kernel.Process.cgroup (Machine.process h) in
  let pages, meta_bytes =
    match Machine.defense m with
    | Some d ->
      ( Perspective.Isv_pages.populated_pages (Defense.isv_pages d) ~ctx,
        Perspective.Isv_pages.metadata_bytes (Defense.isv_pages d) ~ctx )
    | None -> (0, 0)
  in
  (* One registry per cell: everything in it is a function of the (pure)
     job inputs, so the snapshot obeys the -j byte-identity contract. *)
  let reg = Pv_util.Metrics.create () in
  Pipeline.observe_metrics reg delta;
  (match Machine.defense m with
  | Some d ->
    Svcache.observe_metrics reg ~prefix:"svcache.isv" (Defense.isv_cache d);
    Svcache.observe_metrics reg ~prefix:"svcache.dsv" (Defense.dsv_cache d)
  | None -> ());
  Pv_util.Metrics.set_float reg "slab.secure.utilization" (Slab.utilization slab);
  Pv_util.Metrics.set_int reg "slab.secure.active_bytes" (Slab.active_bytes slab);
  Pv_util.Metrics.set_int reg "slab.secure.frag_bytes"
    (Slab.slab_bytes slab - Slab.active_bytes slab);
  Pv_util.Metrics.set_int reg "slab.secure.frees" (Slab.total_frees slab);
  Pv_util.Metrics.set_int reg "slab.secure.page_returns" (Slab.page_returns slab);
  Pv_util.Metrics.set_int reg "slab.secure.peak_pages" (Slab.peak_pages slab);
  Pv_util.Metrics.set_int reg "isv_pages.populated" pages;
  Pv_util.Metrics.set_int reg "isv_pages.metadata_bytes" meta_bytes;
  Pv_util.Metrics.set_int reg "workload.units" iterations;
  {
    label = variant.Schemes.label;
    workload = workload_name;
    cycles = result.Pipeline.cycles;
    committed = result.Pipeline.committed;
    counters = delta;
    kernel_cycle_fraction =
      float_of_int delta.Pipeline.kernel_cycles
      /. float_of_int (max 1 delta.Pipeline.cycles);
    isv_hit_rate = hit_rate Defense.isv_cache;
    dsv_hit_rate = hit_rate Defense.dsv_cache;
    slab_utilization = Slab.utilization slab;
    slab_frees = Slab.total_frees slab;
    slab_page_returns = Slab.page_returns slab;
    isv_pages_populated = pages;
    isv_metadata_bytes = meta_bytes;
    units = iterations;
    metrics = Pv_util.Metrics.snapshot reg;
    events = (if trace then Pipeline.events (Machine.pipeline m) else []);
  }

let run_lebench ?(seed = 42) ?(scale = 1.0) ?(block_unknown = true)
    ?(view_cache_entries = 128) ?fuel ?trace ?on_commit variant test =
  let test = Lebench.scaled test ~factor:scale in
  execute ?fuel ?trace ?on_commit ~seed ~block_unknown ~view_cache_entries
    ~syscalls:Lebench.all_syscalls ~sequence:test.Lebench.sequence
    ~iterations:test.Lebench.iterations ~user_work:test.Lebench.user_work
    ~workload_name:test.Lebench.name variant

let run_app ?(seed = 42) ?(scale = 1.0) ?(block_unknown = true)
    ?(view_cache_entries = 128) ?fuel ?trace ?on_commit variant app =
  let app = Apps.scaled app ~factor:scale in
  execute ?fuel ?trace ?on_commit ~seed ~block_unknown ~view_cache_entries
    ~syscalls:Apps.all_syscalls ~sequence:app.Apps.request
    ~iterations:app.Apps.requests ~user_work:app.Apps.user_work
    ~workload_name:app.Apps.name variant

(* Deterministic merge: jobs are declared row-major (workload outer, variant
   inner) and Pool.map returns results in declaration order, so the
   reassembled matrix — and any table rendered from it — is byte-identical
   for every worker count. *)
let split_rows names ~width runs =
  let rec take k l =
    if k = 0 then ([], l)
    else
      match l with
      | [] -> invalid_arg "Perf.split_rows: short result list"
      | x :: r ->
        let row, rest = take (k - 1) r in
        (x :: row, rest)
  in
  let rec go names runs =
    match names with
    | [] ->
      if runs <> [] then invalid_arg "Perf.split_rows: excess results";
      []
    | name :: tl ->
      let row, rest = take width runs in
      (name, row) :: go tl rest
  in
  go names runs

let lebench_matrix ?(seed = 42) ?(scale = 1.0) ?(jobs = 1) ?(tests = Lebench.tests)
    ~variants () =
  let specs = List.concat_map (fun t -> List.map (fun v -> (t, v)) variants) tests in
  let runs = Pv_util.Pool.run ~jobs (fun (t, v) -> run_lebench ~seed ~scale v t) specs in
  split_rows (List.map (fun t -> t.Lebench.name) tests) ~width:(List.length variants) runs

let apps_matrix ?(seed = 42) ?(scale = 1.0) ?(jobs = 1) ?(apps = Apps.all) ~variants () =
  let specs = List.concat_map (fun a -> List.map (fun v -> (a, v)) variants) apps in
  let runs = Pv_util.Pool.run ~jobs (fun (a, v) -> run_app ~seed ~scale v a) specs in
  split_rows (List.map (fun a -> a.Apps.name) apps) ~width:(List.length variants) runs

(* --- supervised sweeps ----------------------------------------------- *)

(* Cell keys are stable identities: "<family>/<workload>/<scheme label>".
   They key the checkpoint journal, so renaming one invalidates resumes.

   Cache descriptors are different: the canonical serialization of *every*
   input of the measurement (workload, scheme label — which determines the
   pipeline transform for the standard variants — seed, scale, the fixed
   block_unknown/view-cache defaults of this sweep family, and whether the
   event trace was on, since it lands in the result record).  Fuel is
   deliberately absent: it only decides whether the cell fails, and only
   successes are ever stored. *)
let perf_descriptor ~family ~workload ~label ~seed ~scale ~trace =
  Printf.sprintf "perf/%s|w=%s|scheme=%s|seed=%d|scale=%.17g|bu=true|vce=128|trace=%b"
    family workload label seed scale
    (trace = Some true)

let lebench_cells ?(seed = 42) ?(scale = 1.0) ?trace ?(tests = Lebench.tests) ~variants
    () =
  List.concat_map
    (fun t ->
      List.map
        (fun v ->
          Supervise.cell
            ~cache:
              (perf_descriptor ~family:"lebench" ~workload:t.Lebench.name
                 ~label:v.Schemes.label ~seed ~scale ~trace)
            (Printf.sprintf "lebench/%s/%s" t.Lebench.name v.Schemes.label)
            (fun ~fuel -> run_lebench ~seed ~scale ?fuel ?trace v t))
        variants)
    tests

let apps_cells ?(seed = 42) ?(scale = 1.0) ?trace ?(apps = Apps.all) ~variants () =
  List.concat_map
    (fun a ->
      List.map
        (fun v ->
          Supervise.cell
            ~cache:
              (perf_descriptor ~family:"apps" ~workload:a.Apps.name
                 ~label:v.Schemes.label ~seed ~scale ~trace)
            (Printf.sprintf "apps/%s/%s" a.Apps.name v.Schemes.label)
            (fun ~fuel -> run_app ~seed ~scale ?fuel ?trace v a))
        variants)
    apps

(* Reassemble a sweep's declaration-ordered results into the row-major
   (workload x variant) matrix shape, failed cells as None. *)
let matrix_of_sweep ~names ~width (sweep : _ Supervise.sweep) =
  split_rows names ~width (List.map snd sweep.Supervise.results)

let overhead_pct ~baseline run =
  (float_of_int run.cycles /. float_of_int baseline.cycles -. 1.0) *. 100.0

let normalized_latency ~baseline run =
  float_of_int run.cycles /. float_of_int baseline.cycles

let normalized_throughput ~baseline run =
  float_of_int baseline.cycles /. float_of_int run.cycles
