(** Cycle-level performance runs: the measurement engine behind Figures 9.2
    and 9.3, Table 10.1 and the §9.2 sensitivity studies.

    Each run builds a fresh machine (so no microarchitectural state leaks
    between schemes), functionally profiles the workload to feed dynamic
    ISVs, plants the gadget corpus (for ISV++), installs the defense variant
    and executes the workload's driver on the pipeline. *)

type run = {
  label : string;
  workload : string;
  cycles : int;
  committed : int;
  counters : Pv_uarch.Pipeline.counters;
  kernel_cycle_fraction : float;
  isv_hit_rate : float option;
      (** [None] when the ISV cache was never accessed (e.g. UNSAFE) —
          distinct from [Some 0.], a 100%-miss cache *)
  dsv_hit_rate : float option;
  slab_utilization : float;
  slab_frees : int;
  slab_page_returns : int;
  isv_pages_populated : int;  (** demand-populated ISV metadata pages *)
  isv_metadata_bytes : int;
  units : int;  (** iterations (LEBench) or requests (apps) *)
  metrics : Pv_util.Metrics.snapshot;
      (** the cell's full telemetry ([pipeline.*], [svcache.*],
          [slab.secure.*], [isv_pages.*], [workload.*]) — pure function of
          the job inputs, so byte-identical for any [-j] *)
  events : Pv_uarch.Pipeline.event list;
      (** cycle-stamped trace, [[]] unless the run was traced *)
}

val fences_per_kiloinstr : run -> float * float
(** (ISV, DSV) fences per thousand committed kernel instructions. *)

val run_lebench :
  ?seed:int ->
  ?scale:float ->
  ?block_unknown:bool ->
  ?view_cache_entries:int ->
  ?fuel:int ->
  ?trace:bool ->
  ?on_commit:(int -> int -> Pv_isa.Insn.t -> unit) ->
  Schemes.variant ->
  Pv_workloads.Lebench.test ->
  run
(** [fuel] bounds the run's cycles (default: the machine watchdog); a run
    that exhausts it raises {!Pv_sim.Machine.Run_timeout}.  [trace] turns on
    the pipeline's bounded event ring and fills the run's [events].
    [on_commit] observes the architectural commit stream (equivalence
    suite). *)

val run_app :
  ?seed:int ->
  ?scale:float ->
  ?block_unknown:bool ->
  ?view_cache_entries:int ->
  ?fuel:int ->
  ?trace:bool ->
  ?on_commit:(int -> int -> Pv_isa.Insn.t -> unit) ->
  Schemes.variant ->
  Pv_workloads.Apps.app ->
  run

val lebench_matrix :
  ?seed:int ->
  ?scale:float ->
  ?jobs:int ->
  ?tests:Pv_workloads.Lebench.test list ->
  variants:Schemes.variant list ->
  unit ->
  (string * run list) list
(** One row per LEBench test, one run per variant (same order).  [jobs > 1]
    fans the (workload x variant) runs out over a {!Pv_util.Pool} of that
    many domains; results are merged back in declaration order, so the
    matrix is identical for every [jobs] value ([1], the default, is the
    serial path). *)

val apps_matrix :
  ?seed:int ->
  ?scale:float ->
  ?jobs:int ->
  ?apps:Pv_workloads.Apps.app list ->
  variants:Schemes.variant list ->
  unit ->
  (string * run list) list
(** Same contract as {!lebench_matrix} over the datacenter apps. *)

(** {1 Supervised sweeps}

    Cell-per-(workload, scheme) versions of the matrices for
    {!Supervise.run}: a failing cell degrades to a [None] entry of the
    reassembled matrix instead of aborting the sweep.  Cell keys
    (["lebench/<test>/<label>"], ["apps/<app>/<label>"]) are the checkpoint
    identities. *)

val lebench_cells :
  ?seed:int ->
  ?scale:float ->
  ?trace:bool ->
  ?tests:Pv_workloads.Lebench.test list ->
  variants:Schemes.variant list ->
  unit ->
  run Supervise.cell list
(** Row-major (test outer, variant inner), matching {!lebench_matrix}. *)

val apps_cells :
  ?seed:int ->
  ?scale:float ->
  ?trace:bool ->
  ?apps:Pv_workloads.Apps.app list ->
  variants:Schemes.variant list ->
  unit ->
  run Supervise.cell list

val matrix_of_sweep :
  names:string list ->
  width:int ->
  run Supervise.sweep ->
  (string * run option list) list
(** Reassemble a sweep of {!lebench_cells}/{!apps_cells} into matrix shape;
    failed cells are [None]. *)

val overhead_pct : baseline:run -> run -> float
(** Execution-time overhead vs the baseline run. *)

val normalized_latency : baseline:run -> run -> float

val normalized_throughput : baseline:run -> run -> float
(** Requests/second normalized: baseline cycles / run cycles. *)
