module Tab = Pv_util.Tab
module Stats = Pv_util.Stats
module Pipeline = Pv_uarch.Pipeline

let baseline_of = function
  | base :: _ when base.Perf.label = "UNSAFE" -> base
  | _ -> invalid_arg "Perf_report: first run of each row must be UNSAFE"

let labels_of matrix =
  match matrix with
  | (_, runs) :: _ -> List.map (fun r -> r.Perf.label) runs
  | [] -> []

let per_scheme_stats matrix f =
  let labels = labels_of matrix in
  List.mapi
    (fun i label ->
      let values =
        List.map
          (fun (_, runs) ->
            let base = baseline_of runs in
            f ~base (List.nth runs i))
          matrix
      in
      (label, Stats.mean values))
    labels

let average_overhead matrix =
  per_scheme_stats matrix (fun ~base run -> Perf.overhead_pct ~baseline:base run)

let average_throughput_overhead matrix =
  per_scheme_stats matrix (fun ~base run ->
      (1.0 -. Perf.normalized_throughput ~baseline:base run) *. 100.0)

let fig_lebench matrix =
  let labels = labels_of matrix in
  let tab =
    Tab.create ~title:"Figure 9.2: LEBench normalized latency (lower is better)"
      ~header:(("Test", Tab.Left) :: List.map (fun l -> (l, Tab.Right)) labels)
  in
  List.iter
    (fun (name, runs) ->
      let base = baseline_of runs in
      Tab.row tab
        (name
        :: List.map (fun r -> Tab.fl (Perf.normalized_latency ~baseline:base r)) runs))
    matrix;
  Tab.row tab
    ("avg overhead"
    :: List.map (fun (_, o) -> Tab.pct o) (average_overhead matrix));
  Tab.caption tab
    "Paper averages: FENCE 47.5% (select/poll up to 228%), PERSPECTIVE-STATIC 4.1%, \
     PERSPECTIVE 3.6%, PERSPECTIVE++ 3.5%; DOM 23.1%, STT 3.7%.";
  tab

let fig_apps matrix =
  let labels = labels_of matrix in
  let tab =
    Tab.create
      ~title:"Figure 9.3: Datacenter requests/second normalized to UNSAFE (higher is better)"
      ~header:(("App", Tab.Left) :: List.map (fun l -> (l, Tab.Right)) labels)
  in
  List.iter
    (fun (name, runs) ->
      let base = baseline_of runs in
      Tab.row tab
        (name
        :: List.map (fun r -> Tab.fl (Perf.normalized_throughput ~baseline:base r)) runs))
    matrix;
  Tab.row tab
    ("avg overhead"
    :: List.map (fun (_, o) -> Tab.pct o) (average_throughput_overhead matrix));
  Tab.caption tab
    "Paper averages: FENCE 5.7%; PERSPECTIVE-STATIC 1.3%, PERSPECTIVE 1.2%, \
     PERSPECTIVE++ 1.2%.";
  tab

(* --- partial (supervised) figures ------------------------------------ *)

(* Degraded rendering for supervised sweeps: a failed cell prints FAILED; a
   row whose UNSAFE baseline failed cannot be normalized, so its surviving
   cells print "-" (their absolute numbers are still in the checkpoint).
   Scheme averages are taken over the rows where both the baseline and the
   scheme's cell survived; with no failures these figures are byte-identical
   to the uninterrupted ones. *)
let failed_cell = "FAILED"

let partial_scheme_stats ~labels matrix f =
  List.mapi
    (fun i _ ->
      let values =
        List.filter_map
          (fun (_, runs) ->
            match runs with
            | Some base :: _ -> (
              match List.nth runs i with Some r -> Some (f ~base r) | None -> None)
            | _ -> None)
          matrix
      in
      if values = [] then None else Some (Stats.mean values))
    labels

let partial_fig ~title ~col0 ~labels ~cell ~avg matrix =
  let tab =
    Tab.create ~title ~header:((col0, Tab.Left) :: List.map (fun l -> (l, Tab.Right)) labels)
  in
  List.iter
    (fun (name, runs) ->
      match runs with
      | Some base :: _ when base.Perf.label <> "UNSAFE" ->
        invalid_arg "Perf_report: first run of each row must be UNSAFE"
      | Some base :: _ ->
        Tab.row tab
          (name
          :: List.map (function Some r -> cell ~base r | None -> failed_cell) runs)
      | None :: _ ->
        Tab.row tab
          (name :: List.map (function Some _ -> "-" | None -> failed_cell) runs)
      | [] -> Tab.row tab [ name ])
    matrix;
  Tab.row tab
    ("avg overhead"
    :: List.map
         (function Some o -> Tab.pct o | None -> "-")
         (partial_scheme_stats ~labels matrix avg));
  tab

let fig_lebench_partial ~labels matrix =
  let tab =
    partial_fig ~title:"Figure 9.2: LEBench normalized latency (lower is better)"
      ~col0:"Test" ~labels
      ~cell:(fun ~base r -> Tab.fl (Perf.normalized_latency ~baseline:base r))
      ~avg:(fun ~base run -> Perf.overhead_pct ~baseline:base run)
      matrix
  in
  Tab.caption tab
    "Paper averages: FENCE 47.5% (select/poll up to 228%), PERSPECTIVE-STATIC 4.1%, \
     PERSPECTIVE 3.6%, PERSPECTIVE++ 3.5%; DOM 23.1%, STT 3.7%.";
  tab

let fig_apps_partial ~labels matrix =
  let tab =
    partial_fig
      ~title:"Figure 9.3: Datacenter requests/second normalized to UNSAFE (higher is better)"
      ~col0:"App" ~labels
      ~cell:(fun ~base r -> Tab.fl (Perf.normalized_throughput ~baseline:base r))
      ~avg:(fun ~base run -> (1.0 -. Perf.normalized_throughput ~baseline:base run) *. 100.0)
      matrix
  in
  Tab.caption tab
    "Paper averages: FENCE 5.7%; PERSPECTIVE-STATIC 1.3%, PERSPECTIVE 1.2%, \
     PERSPECTIVE++ 1.2%.";
  tab

let fence_breakdown matrix =
  let labels = labels_of matrix in
  let tab =
    Tab.create
      ~title:"Table 10.1: Share of fenced loads caused by ISVs vs DSVs (and fences/kinstr)"
      ~header:
        [
          ("Config", Tab.Left);
          ("ISV share", Tab.Right);
          ("DSV share", Tab.Right);
          ("ISV fences/kinstr", Tab.Right);
          ("DSV fences/kinstr", Tab.Right);
        ]
  in
  List.iteri
    (fun i label ->
      if String.length label >= 11 && String.sub label 0 11 = "PERSPECTIVE" then begin
        let isv_tot = ref 0 and dsv_tot = ref 0 in
        let per_k_isv = ref [] and per_k_dsv = ref [] in
        List.iter
          (fun (_, runs) ->
            let r = List.nth runs i in
            isv_tot := !isv_tot + r.Perf.counters.Pipeline.fences_isv;
            dsv_tot := !dsv_tot + r.Perf.counters.Pipeline.fences_dsv;
            let ki, kd = Perf.fences_per_kiloinstr r in
            per_k_isv := ki :: !per_k_isv;
            per_k_dsv := kd :: !per_k_dsv)
          matrix;
        let total = max 1 (!isv_tot + !dsv_tot) in
        Tab.row tab
          [
            label;
            Tab.pct (100.0 *. float_of_int !isv_tot /. float_of_int total);
            Tab.pct (100.0 *. float_of_int !dsv_tot /. float_of_int total);
            Tab.fl (Stats.mean !per_k_isv);
            Tab.fl (Stats.mean !per_k_dsv);
          ]
      end)
    labels;
  Tab.caption tab
    "Paper: ISV 13-27% / DSV 73-87% of fences; about 9 (ISV) and 37 (DSV) \
     fences per kilo-instruction.";
  tab

let stall_breakdown matrix =
  let labels = labels_of matrix in
  let tab =
    Tab.create
      ~title:"Table 10.1 (ext): Stall-cycle attribution per scheme (summed over workloads)"
      ~header:
        (("Config", Tab.Left)
        :: List.map
             (fun (name, _) -> (name, Tab.Right))
             (Pipeline.stall_classes (Pipeline.zero_counters ()))
        @ [ ("total stalls", Tab.Right); ("of cycles", Tab.Right) ])
  in
  List.iteri
    (fun i label ->
      let acc = Pipeline.zero_counters () in
      List.iter
        (fun (_, runs) -> Pipeline.add_counters acc (List.nth runs i).Perf.counters)
        matrix;
      let total = acc.Pipeline.stall_total in
      let share v =
        if total = 0 then "-" else Tab.pct (Stats.ratio_pct ~num:v ~den:total)
      in
      let of_cycles =
        if acc.Pipeline.cycles = 0 then "-"
        else Tab.pct (Stats.ratio_pct ~num:total ~den:acc.Pipeline.cycles)
      in
      Tab.row tab
        (label
        :: List.map (fun (_, v) -> share v) (Pipeline.stall_classes acc)
        @ [ string_of_int total; of_cycles ]))
    labels;
  Tab.caption tab
    "Every zero-commit cycle is charged to exactly one class (DESIGN.md §7), \
     so the class shares sum to 100% of total stalls; fence_isv/fence_dsv are \
     the cycles the schemes' view misses actually cost, complementing the \
     fence counts above.";
  tab

let comparison_summary ~micro ~macro =
  let tab =
    Tab.create ~title:"9.1: Average execution overhead vs UNSAFE (micro / macro)"
      ~header:
        [
          ("Scheme", Tab.Left);
          ("LEBench", Tab.Right);
          ("Datacenter", Tab.Right);
          ("Paper (micro/macro)", Tab.Right);
        ]
  in
  let micro_ov = average_overhead micro in
  let macro_ov = average_throughput_overhead macro in
  let paper = function
    | "UNSAFE" -> "0% / 0%"
    | "FENCE" -> "47.5% / 5.7%"
    | "DOM" -> "23.1% / 1.7%"
    | "STT" -> "3.7% / 0.4%"
    | "PERSPECTIVE-STATIC" -> "4.1% / 1.3%"
    | "PERSPECTIVE" -> "3.6% / 1.2%"
    | "PERSPECTIVE++" -> "3.5% / 1.2%"
    | "RETPOLINE" -> "6.6% / 1.2%"
    | "KPTI+RETPOLINE" -> "14.5% / 5%"
    | _ -> "-"
  in
  List.iter
    (fun (label, mo) ->
      let ao = try List.assoc label macro_ov with Not_found -> nan in
      Tab.row tab
        [
          label;
          Tab.pct mo;
          (if Float.is_nan ao then "-" else Tab.pct ao);
          paper label;
        ])
    micro_ov;
  tab

let kernel_time_table matrix =
  let tab =
    Tab.create ~title:"Chapter 7: Fraction of time spent in the OS (UNSAFE)"
      ~header:[ ("App", Tab.Left); ("Kernel time", Tab.Right); ("Paper", Tab.Right) ]
  in
  let paper = function
    | "httpd" -> "50%"
    | "nginx" -> "65%"
    | "memcached" -> "65%"
    | "redis" -> "53%"
    | _ -> "-"
  in
  List.iter
    (fun (name, runs) ->
      let base = baseline_of runs in
      Tab.row tab
        [ name; Tab.pct (100.0 *. base.Perf.kernel_cycle_fraction); paper name ])
    matrix;
  tab
