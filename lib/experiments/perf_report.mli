(** Renderers for the performance evaluation: Figure 9.2 (LEBench normalized
    latency), Figure 9.3 (datacenter throughput), the §9.1 spot/hardware
    mitigation comparisons, and Table 10.1 (fence breakdown). *)

val fig_lebench : (string * Perf.run list) list -> Pv_util.Tab.t
(** Normalized latency per test per scheme; the first run of each row must be
    the UNSAFE baseline.  Ends with the per-scheme averages. *)

val fig_apps : (string * Perf.run list) list -> Pv_util.Tab.t
(** Normalized requests/second per app per scheme. *)

val fig_lebench_partial :
  labels:string list -> (string * Perf.run option list) list -> Pv_util.Tab.t
(** Figure 9.2 from a supervised (possibly degraded) sweep: failed cells
    print [FAILED]; a row whose UNSAFE baseline failed prints ["-"] for its
    surviving cells; per-scheme averages cover only complete pairs.  With no
    failures the rendering is byte-identical to {!fig_lebench}.  [labels]
    names the scheme columns (a fully failed column has no run to read a
    label from). *)

val fig_apps_partial :
  labels:string list -> (string * Perf.run option list) list -> Pv_util.Tab.t
(** Figure 9.3, degraded rendering; see {!fig_lebench_partial}. *)

val average_overhead : (string * Perf.run list) list -> (string * float) list
(** Per-scheme average execution overhead (%) vs the leading UNSAFE run. *)

val average_throughput_overhead :
  (string * Perf.run list) list -> (string * float) list
(** Per-scheme average throughput loss (%) vs UNSAFE. *)

val fence_breakdown : (string * Perf.run list) list -> Pv_util.Tab.t
(** Table 10.1: per Perspective variant, the ISV/DSV share of fences and the
    fences per kilo-instruction, averaged over the workloads. *)

val stall_breakdown : (string * Perf.run list) list -> Pv_util.Tab.t
(** Table 10.1 extension: per scheme, the share of stall (zero-commit)
    cycles attributed to each class ({e fetch}, {e rob_full}, {e lsq},
    {e fence_isv}, {e fence_dsv}, {e fence_baseline}, {e dram}, {e exec}),
    summed over the workloads.  The classes partition the stall cycles, so
    shares sum to 100%. *)

val comparison_summary :
  micro:(string * Perf.run list) list ->
  macro:(string * Perf.run list) list ->
  Pv_util.Tab.t
(** §9.1: average overheads of every scheme on microbenchmarks and
    datacenter applications side by side with the paper's numbers. *)

val kernel_time_table : (string * Perf.run list) list -> Pv_util.Tab.t
(** Chapter 7: fraction of execution time spent in the OS per application. *)
