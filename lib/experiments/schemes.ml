(** Labelled defense configurations used across the evaluation: the paper's
    five schemes (Chapter 7), the hardware-only comparisons DOM/STT, and the
    deployed software "spot" mitigations (§9.1). *)

module Defense = Perspective.Defense
module Isv = Perspective.Isv
module Pipeline = Pv_uarch.Pipeline

type variant = {
  label : string;
  scheme : Defense.scheme;
  transform : Pipeline.config -> Pipeline.config;
}

let plain label scheme = { label; scheme; transform = (fun c -> c) }

let unsafe = plain "UNSAFE" Defense.Unsafe

let fence = plain "FENCE" Defense.Fence

let perspective_static = plain "PERSPECTIVE-STATIC" (Defense.Perspective Isv.Static)

let perspective = plain "PERSPECTIVE" (Defense.Perspective Isv.Dynamic)

let perspective_plus = plain "PERSPECTIVE++" (Defense.Perspective Isv.Plus)

let dom = plain "DOM" Defense.Dom

let stt = plain "STT" Defense.Stt

let safespec = plain "SAFESPEC" Defense.Safespec

let specbox = plain "SPECBOX" Defense.Specbox

let retpoline =
  { label = "RETPOLINE"; scheme = Defense.Unsafe; transform = Perspective.Spot.retpoline }

let kpti_retpoline =
  {
    label = "KPTI+RETPOLINE";
    scheme = Defense.Unsafe;
    transform = Perspective.Spot.kpti_retpoline;
  }

let standard = [ unsafe; fence; perspective_static; perspective; perspective_plus ]

let hardware = [ dom; stt; safespec; specbox ]

let spot = [ retpoline; kpti_retpoline ]

let everything = standard @ hardware @ spot

let valid_labels () = List.map (fun v -> v.label) everything

let find_opt label = List.find_opt (fun v -> v.label = label) everything

let find label =
  match find_opt label with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "unknown scheme label %S (valid: %s)" label
         (String.concat ", " (valid_labels ())))
