module Tab = Pv_util.Tab

type poc = {
  attack : string;
  scheme : string;
  leaked : bool;
  correct : bool;
  fences : int;
}

(* Each PoC family is one self-contained job (a family's run_all builds a
   fresh machine per scheme and shares nothing); the merge concatenates in
   declaration order, so the verdict list is identical for every [jobs]. *)
let families ?(seed = 7) () =
  let v1 () =
    List.map
      (fun (o : Pv_attacks.Spectre_v1.outcome) ->
        {
          attack = "Spectre v1 (active)";
          scheme = o.scheme;
          leaked = o.leaked <> None;
          correct = o.success;
          fences = o.fences;
        })
      (Pv_attacks.Spectre_v1.run_all ~seed ())
  in
  let v2 () =
    List.map
      (fun (o : Pv_attacks.Spectre_v2.outcome) ->
        {
          attack = "Spectre v2 (passive)";
          scheme = o.scheme;
          leaked = o.leaked <> None;
          correct = o.success;
          fences = o.fences;
        })
      (Pv_attacks.Spectre_v2.run_all ~seed:(seed + 1) ())
  in
  let rsb () =
    List.map
      (fun (o : Pv_attacks.Spectre_rsb.outcome) ->
        {
          attack = "Spectre-RSB (passive)";
          scheme = o.scheme;
          leaked = o.leaked <> None;
          correct = o.success;
          fences = o.fences;
        })
      (Pv_attacks.Spectre_rsb.run_all ~seed:(seed + 2) ())
  in
  [ ("v1", v1); ("v2", v2); ("rsb", rsb) ]

let run_pocs ?(seed = 7) ?(jobs = 1) () =
  List.concat
    (Pv_util.Pool.run ~jobs (fun (_, family) -> family ()) (families ~seed ()))

let family_names = [ "v1"; "v2"; "rsb" ]

let run_pocs_cells ?(seed = 7) ?(attacks = family_names) () =
  List.iter
    (fun a ->
      if not (List.mem a family_names) then
        invalid_arg
          (Printf.sprintf "unknown attack family %S (valid: %s)" a
             (String.concat ", " family_names)))
    attacks;
  List.filter_map
    (fun (name, family) ->
      if not (List.mem name attacks) then None
      else
        Some
          (Supervise.cell
             ~cache:(Printf.sprintf "security/pocs|family=%s|seed=%d" name seed)
             ("pocs/" ^ name)
             (fun ~fuel:_ -> family ())))
    (families ~seed ())

let poc_table pocs =
  let tab =
    Tab.create ~title:"Chapter 8: Proof-of-concept attacks (measured from the covert channel)"
      ~header:
        [
          ("Attack", Tab.Left);
          ("Scheme", Tab.Left);
          ("Result", Tab.Left);
          ("Fences", Tab.Right);
        ]
  in
  List.iter
    (fun p ->
      Tab.row tab
        [
          p.attack;
          p.scheme;
          (if p.correct then "SECRET LEAKED"
           else if p.leaked then "noise"
           else "blocked");
          string_of_int p.fences;
        ])
    pocs;
  Tab.caption tab
    "Paper: DSVs eliminate all active attacks; ISVs block passive attacks whose \
     gadgets are outside the view. DSV-only (PERSPECTIVE-ALL) cannot stop the \
     passive v2 attack - exactly the taxonomy's prediction.";
  tab

let poc_table_partial results =
  let pocs = List.concat_map (fun (_, o) -> Option.value ~default:[] o) results in
  let tab = poc_table pocs in
  List.iter
    (fun (key, o) ->
      if o = None then
        Tab.caption tab (Printf.sprintf "%s: FAILED - this family's verdicts are missing." key))
    results;
  tab

let cve_table () =
  let tab =
    Tab.create
      ~title:"Table 4.1: Speculative-execution vulnerabilities targeting the Linux kernel"
      ~header:
        [
          ("#", Tab.Right);
          ("Attack primitive", Tab.Left);
          ("Insufficient mitigation", Tab.Left);
          ("CVEs and papers", Tab.Left);
          ("Description", Tab.Left);
          ("Origin", Tab.Left);
        ]
  in
  List.iter
    (fun (r : Pv_attacks.Cve_study.row) ->
      Tab.row tab
        [
          string_of_int r.index;
          Pv_attacks.Cve_study.primitive_name r.primitive;
          Pv_attacks.Cve_study.insufficiency_name r.insufficiency;
          String.concat ", " r.references;
          r.description;
          r.origin;
        ])
    Pv_attacks.Cve_study.rows;
  tab
