(** Chapter 8 security evaluation: proof-of-concept transient-execution
    attacks under every defense scheme (active Spectre v1; passive Spectre v2
    with type confusion; passive Spectre-RSB), plus the Table 4.1 CVE study
    rendering. *)

type poc = {
  attack : string;
  scheme : string;
  leaked : bool;
  correct : bool;  (** the leaked value equalled the planted secret *)
  fences : int;
}

val run_pocs : ?seed:int -> ?jobs:int -> unit -> poc list
(** [jobs] parallelizes the three attack families over a {!Pv_util.Pool};
    the verdict list is identical for every [jobs] value. *)

val poc_table : poc list -> Pv_util.Tab.t

val family_names : string list
(** [["v1"; "v2"; "rsb"]], in declaration order. *)

val run_pocs_cells : ?seed:int -> ?attacks:string list -> unit -> poc list Supervise.cell list
(** The three attack families as supervised cells (keys ["pocs/v1"],
    ["pocs/v2"], ["pocs/rsb"]) for {!Supervise.run}: a crashing family
    degrades to a missing section instead of aborting the evaluation.
    [attacks] restricts the sweep to the named families (registry order is
    kept); an unknown name raises [Invalid_argument] listing the valid ones. *)

val poc_table_partial : (string * poc list option) list -> Pv_util.Tab.t
(** {!poc_table} over the surviving families of a supervised sweep; failed
    families are called out in the captions. *)

val cve_table : unit -> Pv_util.Tab.t
(** Table 4.1. *)
