module Tab = Pv_util.Tab
module Stats = Pv_util.Stats
module Rng = Pv_util.Rng
module Slab = Pv_kernel.Slab
module Physmem = Pv_kernel.Physmem
module Lebench = Pv_workloads.Lebench

let perspective_runs runs =
  List.filter (fun r -> r.Perf.label = "PERSPECTIVE") runs

let hit_rates ~micro ~macro =
  let tab =
    Tab.create ~title:"9.2: View-cache hit rates under PERSPECTIVE"
      ~header:
        [ ("Workloads", Tab.Left); ("ISV cache", Tab.Right); ("DSV cache", Tab.Right) ]
  in
  (* A cache that was never accessed (hit_rate = None) contributes no sample;
     a row with no samples at all renders "n/a", not a fake 0%. *)
  let mean_rate get rs =
    match List.filter_map get rs with
    | [] -> "n/a"
    | rates -> Tab.pct (100.0 *. Stats.mean rates)
  in
  let add name matrix =
    let rs = List.concat_map (fun (_, runs) -> perspective_runs runs) matrix in
    if rs <> [] then
      Tab.row tab
        [
          name;
          mean_rate (fun r -> r.Perf.isv_hit_rate) rs;
          mean_rate (fun r -> r.Perf.dsv_hit_rate) rs;
        ]
  in
  add "LEBench" micro;
  add "datacenter apps" macro;
  Tab.caption tab "Paper: both caches hit close to 99%.";
  Tab.caption tab
    "Scaled-down LEBench iteration counts inflate compulsory misses; the \
     datacenter rows, with more invocations per machine, show the steady state.";
  tab

let unknown_allocations ?(seed = 42) ?(scale = 1.0) ?(jobs = 1) () =
  let variant = Schemes.perspective in
  let unsafe = Schemes.unsafe in
  (* One pure job per (blocking mode x test): a baseline/variant run pair. *)
  let specs =
    List.concat_map
      (fun block_unknown -> List.map (fun test -> (block_unknown, test)) Lebench.tests)
      [ true; false ]
  in
  let overheads =
    Pv_util.Pool.run ~jobs
      (fun (block_unknown, test) ->
        let base = Perf.run_lebench ~seed ~scale ~block_unknown unsafe test in
        let run = Perf.run_lebench ~seed ~scale ~block_unknown variant test in
        Perf.overhead_pct ~baseline:base run)
      specs
  in
  let ntests = List.length Lebench.tests in
  let with_blocking = Stats.mean (List.filteri (fun i _ -> i < ntests) overheads) in
  let without = Stats.mean (List.filteri (fun i _ -> i >= ntests) overheads) in
  let attributable = with_blocking -. without in
  let tab =
    Tab.create ~title:"9.2: Overhead attributable to unknown allocations (LEBench)"
      ~header:[ ("Configuration", Tab.Left); ("Avg overhead", Tab.Right) ]
  in
  Tab.row tab [ "PERSPECTIVE (blocking unknown)"; Tab.pct with_blocking ];
  Tab.row tab [ "PERSPECTIVE (unknown allowed)"; Tab.pct without ];
  Tab.row tab [ "attributable to unknown allocations"; Tab.pct attributable ];
  Tab.caption tab "Paper: unknown allocations account for about 1.5% on LEBench.";
  (tab, attributable)

type fragmentation_result = {
  shared_utilization : float;
  secure_utilization : float;
  shared_pages : int;
  secure_pages : int;
  memory_overhead_pct : float;
}

(* Replay one allocation trace against both slab modes: four tenants with
   app-like mixes of resident objects and request churn.  Frees pick random
   live objects (object lifetimes are not stack-like in a kernel), which is
   what creates the partial-page fragmentation the secure allocator pays
   for. *)
let fragmentation ?(seed = 42) ?(jobs = 1) () =
  let run_mode mode =
    let phys = Physmem.create ~frames:16_384 in
    let slab = Slab.create ~mode phys in
    let rng = Rng.create seed in
    let ntenants = 4 in
    (* Per-tenant growable object array with O(1) swap-remove. *)
    let live = Array.init ntenants (fun _ -> ref (Array.make 64 0)) in
    let len = Array.make ntenants 0 in
    let push t va =
      let arr = live.(t) in
      if len.(t) = Array.length !arr then begin
        let bigger = Array.make (2 * Array.length !arr) 0 in
        Array.blit !arr 0 bigger 0 len.(t);
        arr := bigger
      end;
      !arr.(len.(t)) <- va;
      len.(t) <- len.(t) + 1
    in
    let remove_random t =
      if len.(t) > 0 then begin
        let i = Rng.int rng len.(t) in
        let arr = !(live.(t)) in
        let va = arr.(i) in
        arr.(i) <- arr.(len.(t) - 1);
        len.(t) <- len.(t) - 1;
        Slab.kfree slab va
      end
    in
    (* Resident objects. *)
    for t = 0 to ntenants - 1 do
      for _ = 1 to 2_000 do
        let size = Slab.size_classes.(Rng.int rng 6) in
        match Slab.kmalloc slab ~owner:(Physmem.Cgroup (t + 1)) ~size with
        | Some va -> push t va
        | None -> ()
      done
    done;
    (* Request churn. *)
    for _ = 1 to 30_000 do
      let t = Rng.int rng ntenants in
      if Rng.chance rng 0.5 || len.(t) = 0 then begin
        let size = Slab.size_classes.(Rng.int rng (Array.length Slab.size_classes)) in
        match Slab.kmalloc slab ~owner:(Physmem.Cgroup (t + 1)) ~size with
        | Some va -> push t va
        | None -> ()
      end
      else remove_random t
    done;
    (Slab.utilization slab, Slab.peak_pages slab)
  in
  let shared_utilization, shared_pages, secure_utilization, secure_pages =
    match Pv_util.Pool.run ~jobs run_mode [ Slab.Shared; Slab.Secure ] with
    | [ (su, sp); (eu, ep) ] -> (su, sp, eu, ep)
    | _ -> assert false
  in
  {
    shared_utilization;
    secure_utilization;
    shared_pages;
    secure_pages;
    memory_overhead_pct =
      100.0
      *. (float_of_int secure_pages -. float_of_int shared_pages)
      /. float_of_int (max 1 shared_pages);
  }

let fragmentation_table r =
  let tab =
    Tab.create ~title:"9.2: Secure slab allocator memory fragmentation"
      ~header:[ ("Metric", Tab.Left); ("Shared slab", Tab.Right); ("Secure slab", Tab.Right) ]
  in
  Tab.row tab
    [
      "utilization (active/total)";
      Tab.pct (100.0 *. r.shared_utilization);
      Tab.pct (100.0 *. r.secure_utilization);
    ];
  Tab.row tab
    [ "peak slab pages"; string_of_int r.shared_pages; string_of_int r.secure_pages ];
  Tab.row tab [ "memory overhead"; ""; Tab.pct r.memory_overhead_pct ];
  Tab.caption tab "Paper: the secure slab allocator costs 0.91% extra memory.";
  tab

let domain_reassignment ~macro =
  let tab =
    Tab.create ~title:"9.2: Domain reassignment (slab pages returned to the buddy allocator)"
      ~header:
        [
          ("App", Tab.Left);
          ("Frees", Tab.Right);
          ("Page returns", Tab.Right);
          ("Return ratio", Tab.Right);
          ("Returns/s @2GHz", Tab.Right);
          ("Paper", Tab.Right);
        ]
  in
  let paper = function
    | "httpd" -> "0.01% / 4 per s"
    | "nginx" -> "0.01% / 3 per s"
    | "memcached" -> "0.003% / 2 per s"
    | "redis" -> "0.23% / 96 per s"
    | _ -> "-"
  in
  List.iter
    (fun (name, runs) ->
      match perspective_runs runs with
      | r :: _ ->
        let seconds = float_of_int r.Perf.cycles /. 2.0e9 in
        Tab.row tab
          [
            name;
            string_of_int r.Perf.slab_frees;
            string_of_int r.Perf.slab_page_returns;
            Tab.pct
              (Stats.ratio_pct ~num:r.Perf.slab_page_returns ~den:(max 1 r.Perf.slab_frees));
            Tab.fl ~dec:0 (float_of_int r.Perf.slab_page_returns /. seconds);
            paper name;
          ]
      | [] -> ())
    macro;
  Tab.caption tab
    "Rates are per simulated second; the scaled-down request footprints make \
     absolute rates higher than the paper's wall-clock rates.";
  tab

let cache_size_entries = [ 32; 64; 128; 256; 512 ]

type cache_size_point = int * Perf.run * Perf.run * Perf.run * Perf.run

(* One sweep point: a baseline/PERSPECTIVE pair on the cache-hostile
   microbenchmark and on redis, at one view-cache capacity. *)
let cache_size_point ?(seed = 42) ?(scale = 0.6) ?fuel entries =
  let test = Lebench.find "select" in
  let app = Pv_workloads.Apps.redis in
  let ub = Perf.run_lebench ~seed ~scale ~view_cache_entries:entries ?fuel Schemes.unsafe test in
  let pb =
    Perf.run_lebench ~seed ~scale ~view_cache_entries:entries ?fuel Schemes.perspective test
  in
  let ua = Perf.run_app ~seed ~scale ~view_cache_entries:entries ?fuel Schemes.unsafe app in
  let pa =
    Perf.run_app ~seed ~scale ~view_cache_entries:entries ?fuel Schemes.perspective app
  in
  (entries, ub, pb, ua, pa)

let cache_size_cells ?(seed = 42) ?(scale = 0.6) () =
  List.map
    (fun entries ->
      Supervise.cell
        ~cache:
          (Printf.sprintf "sensitivity/cache-size|entries=%d|seed=%d|scale=%.17g"
             entries seed scale)
        (Printf.sprintf "cache-size/%d" entries)
        (fun ~fuel -> cache_size_point ~seed ~scale ?fuel entries))
    cache_size_entries

let cache_size_table rows =
  let tab =
    Tab.create ~title:"View-cache capacity sweep under PERSPECTIVE (extension)"
      ~header:
        [
          ("Entries", Tab.Right);
          ("select: ISV/DSV hit", Tab.Right);
          ("select overhead", Tab.Right);
          ("redis: ISV/DSV hit", Tab.Right);
          ("redis tput loss", Tab.Right);
        ]
  in
  List.iter
    (fun (key, point) ->
      match point with
      | Some (entries, ub, pb, ua, pa) ->
        (* "n/a": the cache was never accessed, which is not a 0% hit rate *)
        let rate = function
          | Some r -> Printf.sprintf "%.1f%%" (100.0 *. r)
          | None -> "n/a"
        in
        let rates r =
          Printf.sprintf "%s / %s" (rate r.Perf.isv_hit_rate) (rate r.Perf.dsv_hit_rate)
        in
        Tab.row tab
          [
            string_of_int entries;
            rates pb;
            Tab.pct (Perf.overhead_pct ~baseline:ub pb);
            rates pa;
            Tab.pct ((1.0 -. Perf.normalized_throughput ~baseline:ua pa) *. 100.0);
          ]
      | None ->
        (* keep the row so the sweep's shape survives a failed point *)
        Tab.row tab [ Filename.basename key; "FAILED"; "-"; "FAILED"; "-" ])
    rows;
  Tab.caption tab
    "Paper 9.2: 128 entries already reach ~99% hit rates because the kernel \
     working set per context is small; the sweep shows where that breaks down.";
  tab

let cache_size_sweep ?(seed = 42) ?(scale = 0.6) ?(jobs = 1) () =
  let rows =
    Pv_util.Pool.run ~jobs (fun entries -> cache_size_point ~seed ~scale entries)
      cache_size_entries
  in
  cache_size_table
    (List.map (fun ((entries, _, _, _, _) as p) -> (string_of_int entries, Some p)) rows)

let isv_metadata ~macro =
  let tab =
    Tab.create ~title:"ISV metadata pages populated on demand (Figure 6.1(a), extension)"
      ~header:
        [
          ("App", Tab.Left);
          ("Shadow pages", Tab.Right);
          ("Metadata bytes", Tab.Right);
        ]
  in
  List.iter
    (fun (name, runs) ->
      match perspective_runs runs with
      | r :: _ ->
        Tab.row tab
          [
            name;
            string_of_int r.Perf.isv_pages_populated;
            string_of_int r.Perf.isv_metadata_bytes;
          ]
      | [] -> ())
    macro;
  Tab.caption tab
    "One 128-byte shadow bitmap per touched kernel code page: the ISV \
     interface costs kilobytes per context, not a kernel's worth of metadata.";
  tab
