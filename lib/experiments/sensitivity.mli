(** §9.2 sensitivity analysis: view-cache hit rates, the cost of blocking
    unknown allocations, secure-slab memory fragmentation, and domain
    reassignment frequency. *)

val hit_rates :
  micro:(string * Perf.run list) list ->
  macro:(string * Perf.run list) list ->
  Pv_util.Tab.t
(** ISV/DSV cache hit rates of the PERSPECTIVE runs (paper: ~99%). *)

val unknown_allocations :
  ?seed:int -> ?scale:float -> ?jobs:int -> unit -> Pv_util.Tab.t * float
(** LEBench under PERSPECTIVE with and without blocking of unknown
    allocations; returns the table and the average overhead attributable to
    unknown allocations (paper: 1.5%).  [jobs] parallelizes the per-test
    run pairs; results are order-merged, so output is [jobs]-independent. *)

type fragmentation_result = {
  shared_utilization : float;
  secure_utilization : float;
  shared_pages : int;  (** peak pages held *)
  secure_pages : int;
  memory_overhead_pct : float;
}

val fragmentation : ?seed:int -> ?jobs:int -> unit -> fragmentation_result
(** The same allocation trace against the shared and the secure slab
    allocator (paper: 0.91% memory overhead). *)

val fragmentation_table : fragmentation_result -> Pv_util.Tab.t

val domain_reassignment : macro:(string * Perf.run list) list -> Pv_util.Tab.t
(** Slab frees that return a page to the buddy allocator, per app (paper:
    redis 0.23% / 96 per second; others at most 0.01% / 4 per second). *)

val cache_size_sweep : ?seed:int -> ?scale:float -> ?jobs:int -> unit -> Pv_util.Tab.t
(** Extension: PERSPECTIVE's view caches swept from 32 to 512 entries on a
    cache-hostile microbenchmark (select) and a server (redis) — hit rates
    and execution overhead vs the 128-entry design point of Table 7.1. *)

type cache_size_point = int * Perf.run * Perf.run * Perf.run * Perf.run
(** [(entries, select UNSAFE, select PERSPECTIVE, redis UNSAFE,
    redis PERSPECTIVE)]. *)

val cache_size_cells :
  ?seed:int -> ?scale:float -> unit -> cache_size_point Supervise.cell list
(** The capacity sweep as supervised cells (keys ["cache-size/<entries>"]). *)

val cache_size_table : (string * cache_size_point option) list -> Pv_util.Tab.t
(** Render a (possibly degraded) supervised capacity sweep; failed points
    keep their row, marked FAILED. *)

val isv_metadata : macro:(string * Perf.run list) list -> Pv_util.Tab.t
(** Extension: demand-populated ISV shadow pages (Figure 6.1(a)) and their
    per-context memory footprint — the cost of exposing ISVs to hardware. *)
