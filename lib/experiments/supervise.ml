(* Supervised sweep driver: Pool.map_results + Fault + Journal glued into
   the experiment layer's unit of work (the keyed cell).

   Livelock faults are realized here rather than in the pool: a livelocked
   simulation cannot be faked by an exception, so the supervisor starves the
   cell's cycle fuel and lets the pipeline's max_cycles watchdog produce the
   structured Machine.Run_timeout. *)

module Pool = Pv_util.Pool
module Fault = Pv_util.Fault
module Journal = Pv_util.Journal
module Rescache = Pv_util.Rescache
module Procpool = Pv_util.Procpool

type 'a cell = { key : string; cache : string option; run : fuel:int option -> 'a }

let cell ?cache key run = { key; cache; run }

type failure = { key : string; attempts : int; elapsed : float; reason : string }

type 'a sweep = {
  results : (string * 'a option) list;
  failures : failure list;
  restored : int;
  cached : int;
  deduped : int;
  executed : int;
}

type config = {
  jobs : int;
  retries : int;
  fault : Fault.t;
  max_cycles : int option;
  livelock_fuel : int;
  checkpoint : string option;
  resume : bool;
  cache : Rescache.t option;
  workers : int;
  respawns : int;
  hosts : (string * int) list;
  pool_stats : bool;
}

let default =
  {
    jobs = 1;
    retries = 0;
    fault = Fault.none;
    max_cycles = None;
    livelock_fuel = 5_000;
    checkpoint = None;
    resume = false;
    cache = None;
    workers = 1;
    respawns = 8;
    hosts = [];
    pool_stats = false;
  }

(* --- multi-process plumbing -------------------------------------------- *)

(* Every Supervise.run call in a process gets an ordinal, counted identically
   in the coordinator and in each worker (both execute the same CLI code
   path).  A worker spawned for sweep [k] replays sweeps [< k] from the
   coordinator's combined journal — dependent sweeps (calibration -> points)
   capture earlier results in their closures, so the replay must reproduce
   them — and serves cells for sweep [k] itself. *)
let sweep_counter = ref 0

let rm_rf_shallow dir =
  match Sys.readdir dir with
  | names ->
    Array.iter
      (fun n ->
        let p = Filename.concat dir n in
        if Sys.is_directory p then begin
          (match Sys.readdir p with
          | inner ->
            Array.iter
              (fun m -> try Sys.remove (Filename.concat p m) with Sys_error _ -> ())
              inner
          | exception Sys_error _ -> ());
          try Unix.rmdir p with Unix.Unix_error _ -> ()
        end
        else try Sys.remove p with Sys_error _ -> ())
      names;
    (try Unix.rmdir dir with Unix.Unix_error _ -> ())
  | exception Sys_error _ -> ()

let scratch_dir =
  lazy
    (let d =
       Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "pv-procpool-%d" (Unix.getpid ()))
     in
     (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
     at_exit (fun () -> rm_rf_shallow d);
     d)

let combined_journal () = Filename.concat (Lazy.force scratch_dir) "combined.journal"

let fuel_for config index =
  (* attempt 0 suffices: livelock decisions are attempt-independent in
     seeded plans, and a planned flaky livelock makes little sense. *)
  match Fault.decide config.fault ~index ~attempt:0 with
  | Some Fault.Livelock -> Some config.livelock_fuel
  | _ -> config.max_cycles

(* Worker role, earlier sweep: serve every cell from the combined journal.
   Failures of the original run come back as [None] rows, same as the
   coordinator saw them. *)
let replay_sweep (ctx : Procpool.ctx) (cells : 'a cell list) =
  let tbl : (string, 'a) Hashtbl.t =
    match ctx.Procpool.replay with
    | Some path -> Journal.load_table path
    | None -> Hashtbl.create 0
  in
  let restored = ref 0 in
  let results =
    List.map
      (fun (c : 'a cell) ->
        match Hashtbl.find_opt tbl c.key with
        | Some v ->
          incr restored;
          (c.key, Some v)
        | None -> (c.key, None))
      cells
  in
  {
    results;
    failures = [];
    restored = !restored;
    cached = 0;
    deduped = 0;
    executed = 0;
  }

(* Worker role, target sweep: serve RUN commands until FIN, then leave the
   process — continuing the CLI past this sweep would re-run later sweeps
   as a bogus coordinator.  Cells are addressed by key (stable across
   processes); the index in each command is the cell's position in the
   *coordinator's* runnable list and exists only to key fault decisions. *)
let serve_worker (ctx : Procpool.ctx) config (cells : 'a cell list) : 'b =
  let by_key : (string, 'a cell) Hashtbl.t = Hashtbl.create (List.length cells) in
  List.iter (fun (c : 'a cell) -> Hashtbl.replace by_key c.key c) cells;
  let writer = Journal.open_writer ctx.Procpool.journal in
  let classify_fail e =
    Procpool.Fail
      {
        transient = Pool.default_classify e = Pool.Transient;
        reason = Printexc.to_string e;
      }
  in
  let execute ~index (c : 'a cell) =
    match
      match (config.cache, c.cache) with
      | Some rc, Some desc ->
        (* Two-phase commit through the shared cache: claim the lease,
           compute, store via atomic rename, release.  Racing workers (in
           this run or a concurrent one) dedup instead of double-computing. *)
        fst
          (Rescache.compute_through rc ~key:desc (fun () ->
               c.run ~fuel:(fuel_for config index)))
      | _ -> c.run ~fuel:(fuel_for config index)
    with
    | v ->
      Journal.append writer ~key:c.key v;
      Procpool.Done
    | exception e -> classify_fail e
  in
  let handle ~index ~attempt ~key =
    match Hashtbl.find_opt by_key key with
    | None ->
      Procpool.Fail
        { transient = false; reason = Printf.sprintf "unknown cell key %S" key }
    | Some c -> (
      match Fault.decide config.fault ~index ~attempt with
      | Some Fault.Kill ->
        (* Real process death, mid-append: compute (burning the same work a
           genuine mid-cell kill would), write a deliberately torn journal
           record, and SIGKILL ourselves.  The coordinator reaps the corpse,
           finds no committed record, and retries on a respawned worker —
           whose open_writer quarantines the torn bytes. *)
        let v = c.run ~fuel:(fuel_for config index) in
        Journal.append_torn writer ~key:c.key v;
        Unix.kill (Unix.getpid ()) Sys.sigkill;
        assert false
      | Some Fault.Crash -> classify_fail (Fault.Crashed { index; attempt })
      | Some Fault.Poison ->
        (match c.run ~fuel:(fuel_for config index) with
        | _ -> ()
        | exception _ -> ());
        classify_fail (Fault.Poisoned { index; attempt })
      | Some Fault.Slow ->
        Fault.spin ();
        execute ~index c
      | Some Fault.Livelock | None -> execute ~index c)
  in
  Procpool.serve ctx ~handle;
  Journal.close writer;
  exit 0

(* Coordinator role: run the runnable cells on the process pool instead of
   the in-process domain pool, then lift worker-journal values back into
   Pool.outcome records so everything downstream (checkpointing, result
   assembly, failure reports) is shared with the single-process path. *)
let run_procpool config ~ordinal (runnable : 'a cell list) : 'a Pool.outcome list =
  let scratch =
    let d =
      Filename.concat (Lazy.force scratch_dir) (Printf.sprintf "sweep-%d" ordinal)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let combined = combined_journal () in
  let replay = if Sys.file_exists combined then Some combined else None in
  let keys = Array.of_list (List.map (fun (c : 'a cell) -> c.key) runnable) in
  let outs, journals, dead_hosts =
    Procpool.run_jobs ~hosts:config.hosts
      ~connect:(Procpool.tcp_connector ~sweep:ordinal ~replay)
      ~workers:config.workers ~respawns:config.respawns
      ~retries:config.retries ~scratch
      ~spawn:(Procpool.reexec_spawner ~sweep:ordinal ~replay)
      ~keys ()
  in
  (* Stderr, not stdout: the result tables must stay byte-identical to a
     serial run even when a host died mid-sweep and its cells were
     recovered elsewhere. *)
  List.iter
    (fun (d : Procpool.dead_host) ->
      Printf.eprintf "supervise: host %s:%d lost: %s\n%!" d.Procpool.dh_host
        d.Procpool.dh_port d.Procpool.dh_reason)
    dead_hosts;
  let values : (string, 'a) Hashtbl.t = Hashtbl.create (Array.length keys) in
  List.iter
    (fun j ->
      List.iter (fun (k, v) -> Hashtbl.replace values k v) (Journal.load j))
    journals;
  let lift i (c : 'a cell) : 'a Pool.outcome =
    match outs.(i) with
    | Procpool.Completed { attempts } -> (
      match Hashtbl.find_opt values c.key with
      | Some v -> { Pool.result = Ok v; attempts; elapsed = 0.0 }
      | None ->
        {
          Pool.result =
            Error
              {
                Pool.exn =
                  Procpool.Worker_failure
                    (Printf.sprintf "completed cell %S missing from worker journals"
                       c.key);
                backtrace = Printexc.get_callstack 0;
                classification = Pool.Permanent;
              };
          attempts;
          elapsed = 0.0;
        })
    | Procpool.Failed { attempts; transient; reason } ->
      {
        Pool.result =
          Error
            {
              Pool.exn = Procpool.Worker_failure reason;
              backtrace = Printexc.get_callstack 0;
              classification = (if transient then Pool.Transient else Pool.Permanent);
            };
        attempts;
        elapsed = 0.0;
      }
  in
  List.mapi lift runnable

let run_coordinator ~config ~ordinal (cells : 'a cell list) =
  let keys = List.map (fun (c : 'a cell) -> c.key) cells in
  let distinct = List.sort_uniq compare keys in
  if List.length distinct <> List.length keys then
    invalid_arg "Supervise.run: duplicate cell keys";
  let restored_tbl =
    match config.checkpoint with
    | Some path when config.resume -> Journal.load_table path
    | _ -> Hashtbl.create 0
  in
  let todo = List.filter (fun (c : 'a cell) -> not (Hashtbl.mem restored_tbl c.key)) cells in
  (* Result-cache hits: consulted before the pool, so a hit skips fault
     injection, retries and livelock fuel entirely — the cell never becomes
     pool work.  Declaration order of the lookups keeps the cache's own
     hit/miss counters deterministic for any [jobs]. *)
  let cached_tbl = Hashtbl.create 16 in
  (match config.cache with
  | None -> ()
  | Some rc ->
    List.iter
      (fun (c : 'a cell) ->
        match c.cache with
        | None -> ()
        | Some desc -> (
          match Rescache.find rc ~key:desc with
          | Some v -> Hashtbl.replace cached_tbl c.key v
          | None -> ()))
      todo);
  let todo = List.filter (fun (c : 'a cell) -> not (Hashtbl.mem cached_tbl c.key)) todo in
  (* In-run dedup: two cells declaring the same canonical descriptor are the
     same simulation; the first becomes the representative, later ones alias
     its outcome.  Active even without a cache directory. *)
  let rep_of_desc = Hashtbl.create 16 in
  let alias = Hashtbl.create 16 in
  let runnable =
    List.filter
      (fun (c : 'a cell) ->
        match c.cache with
        | None -> true
        | Some desc -> (
          match Hashtbl.find_opt rep_of_desc desc with
          | None ->
            Hashtbl.add rep_of_desc desc c.key;
            true
          | Some rep ->
            Hashtbl.replace alias c.key rep;
            false))
      todo
  in
  let runnable_arr = Array.of_list runnable in
  let writer = Option.map Journal.open_writer config.checkpoint in
  let on_outcome index (o : _ Pool.outcome) =
    match o.Pool.result with
    | Ok v ->
      let c = runnable_arr.(index) in
      Option.iter (fun w -> Journal.append w ~key:c.key v) writer;
      (match (config.cache, c.cache) with
      | Some rc, Some desc -> Rescache.store rc ~key:desc v
      | _ -> ())
    | Error _ -> ()
  in
  let use_procpool =
    (config.workers > 1 || config.hosts <> [])
    && runnable <> []
    &&
    if Procpool.reexec_available () then true
    else begin
      Printf.eprintf
        "supervise: --workers %d%s requested but no re-exec argv is registered \
         (library caller?); falling back to the in-process pool\n%!"
        config.workers
        (if config.hosts = [] then "" else " with --hosts");
      false
    end
  in
  let outcomes =
    Fun.protect
      ~finally:(fun () -> Option.iter Journal.close writer)
      (fun () ->
        let outcomes =
          if use_procpool then begin
            let outcomes = run_procpool config ~ordinal runnable in
            (* Fold every worker journal into the user checkpoint (raw frame
               merge), so a later --resume has one authoritative source just
               like the single-process path.  Values were cached worker-side
               through the lease protocol, so no store here. *)
            Option.iter
              (fun w ->
                let scratch =
                  Filename.concat (Lazy.force scratch_dir)
                    (Printf.sprintf "sweep-%d" ordinal)
                in
                match Sys.readdir scratch with
                | names ->
                  Array.to_list names |> List.sort compare
                  |> List.iter (fun n ->
                         if Filename.check_suffix n ".journal" then
                           ignore
                             (Journal.merge_into w (Filename.concat scratch n)))
                | exception Sys_error _ -> ())
              writer;
            outcomes
          end
          else
            Pool.with_pool ~jobs:config.jobs (fun p ->
                let outcomes =
                  Pool.map_results ~retries:config.retries ~fault:config.fault
                    ~on_outcome p
                    (fun (i, c) -> c.run ~fuel:(fuel_for config i))
                    (List.mapi (fun i c -> (i, c)) runnable)
                in
                (* Scheduler telemetry is stderr-only and opt-in: steal and
                   park counts depend on runtime interleaving, so they must
                   never reach the byte-identical tables or --metrics. *)
                if config.pool_stats then begin
                  let c = Pool.counters p in
                  Printf.eprintf
                    "supervise: pool stats (-j %d): %d local pops, %d steals, \
                     %d failed steals, %d parks, %d unparks\n%!"
                    config.jobs c.Pool.local_pops c.Pool.steals
                    c.Pool.failed_steals c.Pool.parks c.Pool.unparks
                end;
                outcomes)
        in
        (* Cache hits and dedup aliases still belong in the checkpoint: a
           later --resume must serve them without needing the cache. *)
        Option.iter
          (fun w ->
            let ok = Hashtbl.create 16 in
            List.iter2
              (fun (c : 'a cell) (o : _ Pool.outcome) ->
                match o.Pool.result with
                | Ok v -> Hashtbl.replace ok c.key v
                | Error _ -> ())
              runnable outcomes;
            List.iter
              (fun (c : 'a cell) ->
                match Hashtbl.find_opt cached_tbl c.key with
                | Some v -> Journal.append w ~key:c.key v
                | None -> (
                  match Hashtbl.find_opt alias c.key with
                  | None -> ()
                  | Some rep -> (
                    match Hashtbl.find_opt ok rep with
                    | Some v -> Journal.append w ~key:c.key v
                    | None -> ())))
              cells)
          writer;
        outcomes)
  in
  let ran = Hashtbl.create (List.length runnable) in
  List.iter2 (fun (c : 'a cell) o -> Hashtbl.replace ran c.key o) runnable outcomes;
  let restored = ref 0 and cached = ref 0 and deduped = ref 0 in
  let results, failures =
    List.fold_left
      (fun (res, fails) (c : 'a cell) ->
        match Hashtbl.find_opt restored_tbl c.key with
        | Some v ->
          incr restored;
          ((c.key, Some v) :: res, fails)
        | None -> (
          match Hashtbl.find_opt cached_tbl c.key with
          | Some v ->
            incr cached;
            ((c.key, Some v) :: res, fails)
          | None -> (
            let report_key, own = match Hashtbl.find_opt alias c.key with
              | Some rep -> (rep, false)
              | None -> (c.key, true)
            in
            if not own then incr deduped;
            let o = Hashtbl.find ran report_key in
            match o.Pool.result with
            | Ok v -> ((c.key, Some v) :: res, fails)
            | Error e ->
              let f =
                {
                  key = c.key;
                  attempts = o.Pool.attempts;
                  elapsed = o.Pool.elapsed;
                  reason = Printexc.to_string e.Pool.exn;
                }
              in
              ((c.key, None) :: res, f :: fails))))
      ([], []) cells
  in
  let sweep =
    {
      results = List.rev results;
      failures = List.rev failures;
      restored = !restored;
      cached = !cached;
      deduped = !deduped;
      executed = List.length runnable;
    }
  in
  (* Multi-process mode: record this sweep's values (whatever their
     provenance) in the combined journal, so workers spawned for a *later*
     sweep can replay this one — dependent sweeps capture these results in
     their cell closures. *)
  if
    (config.workers > 1 || config.hosts <> []) && Procpool.reexec_available ()
  then begin
    let w = Journal.open_writer (combined_journal ()) in
    Fun.protect
      ~finally:(fun () -> Journal.close w)
      (fun () ->
        List.iter
          (fun (k, v) -> match v with Some v -> Journal.append w ~key:k v | None -> ())
          sweep.results)
  end;
  sweep

let run ?(config = default) (cells : 'a cell list) =
  let ordinal = !sweep_counter in
  incr sweep_counter;
  match Procpool.worker_ctx () with
  | Some ctx when ordinal < ctx.Procpool.sweep -> replay_sweep ctx cells
  | Some ctx -> serve_worker ctx config cells (* never returns: exits 0 *)
  | None -> run_coordinator ~config ~ordinal cells

let failed s = List.length s.failures

let exit_code sweeps = if List.exists (fun s -> failed s > 0) sweeps then 1 else 0

(* --- telemetry export ------------------------------------------------- *)

module Metrics = Pv_util.Metrics

type exported = {
  label : string;
  cells : (string * Metrics.snapshot option) list;
  summary : Metrics.snapshot;
}

(* The sweep-level registry: cell counts plus a log2 histogram of per-cell
   cycle costs read back from each cell's own snapshot.  [elapsed] is the
   only wall-clock datum in an export; it renders on its own JSON line so
   byte-identity checks can strip it with grep.  Provenance counts
   (restored/cached/deduped/executed) deliberately do NOT appear here: they
   differ between a cold and a warm run of the same sweep, and the metrics
   export must stay byte-identical; they live in the stderr {!report}. *)
let summary_snapshot ?elapsed cells =
  let reg = Metrics.create () in
  Metrics.set_int reg "supervise.cells" (List.length cells);
  Metrics.set_int reg "supervise.failed"
    (List.length (List.filter (fun (_, s) -> s = None) cells));
  Metrics.declare_hist reg "supervise.cell_cycles";
  List.iter
    (fun (_, snap) ->
      match snap with
      | Some s -> (
        match Metrics.find s "pipeline.cycles" with
        | Some (Metrics.Int c) -> Metrics.observe reg "supervise.cell_cycles" c
        | Some _ | None -> ())
      | None -> ())
    cells;
  Option.iter (fun e -> Metrics.set_float reg "elapsed_s" e) elapsed;
  Metrics.snapshot reg

let export_cells ?elapsed ~label cells =
  { label; cells; summary = summary_snapshot ?elapsed cells }

let export ?elapsed ~metrics_of ~label s =
  export_cells ?elapsed ~label
    (List.map (fun (k, v) -> (k, Option.map metrics_of v)) s.results)

let render_json exports =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"sweeps\": {\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (Printf.sprintf "    %S: {\n" e.label);
      Buffer.add_string buf "      \"summary\": ";
      Buffer.add_string buf (Metrics.snapshot_to_json ~indent:8 e.summary);
      Buffer.add_string buf ",\n      \"cells\": {\n";
      List.iteri
        (fun j (k, snap) ->
          if j > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (Printf.sprintf "        %S: " k);
          match snap with
          | None -> Buffer.add_string buf "null"
          | Some s -> Buffer.add_string buf (Metrics.snapshot_to_json ~indent:10 s))
        e.cells;
      Buffer.add_string buf "\n      }\n    }")
    exports;
  Buffer.add_string buf "\n  }\n}\n";
  Buffer.contents buf

let write_json ~file exports =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render_json exports))

let report ?(out = stderr) ~label s =
  Printf.fprintf out
    "%s: %d cells, %d restored from checkpoint, %d CACHED, %d deduped, %d executed, %d failed\n"
    label
    (List.length s.results)
    s.restored s.cached s.deduped s.executed (failed s);
  List.iter
    (fun f ->
      Printf.fprintf out "  FAILED %s after %d attempt%s (%.2fs): %s\n" f.key f.attempts
        (if f.attempts = 1 then "" else "s")
        f.elapsed f.reason)
    s.failures;
  flush out
