(* Supervised sweep driver: Pool.map_results + Fault + Journal glued into
   the experiment layer's unit of work (the keyed cell).

   Livelock faults are realized here rather than in the pool: a livelocked
   simulation cannot be faked by an exception, so the supervisor starves the
   cell's cycle fuel and lets the pipeline's max_cycles watchdog produce the
   structured Machine.Run_timeout. *)

module Pool = Pv_util.Pool
module Fault = Pv_util.Fault
module Journal = Pv_util.Journal
module Rescache = Pv_util.Rescache

type 'a cell = { key : string; cache : string option; run : fuel:int option -> 'a }

let cell ?cache key run = { key; cache; run }

type failure = { key : string; attempts : int; elapsed : float; reason : string }

type 'a sweep = {
  results : (string * 'a option) list;
  failures : failure list;
  restored : int;
  cached : int;
  deduped : int;
  executed : int;
}

type config = {
  jobs : int;
  retries : int;
  fault : Fault.t;
  max_cycles : int option;
  livelock_fuel : int;
  checkpoint : string option;
  resume : bool;
  cache : Rescache.t option;
}

let default =
  {
    jobs = 1;
    retries = 0;
    fault = Fault.none;
    max_cycles = None;
    livelock_fuel = 5_000;
    checkpoint = None;
    resume = false;
    cache = None;
  }

let run ?(config = default) (cells : 'a cell list) =
  let keys = List.map (fun (c : 'a cell) -> c.key) cells in
  let distinct = List.sort_uniq compare keys in
  if List.length distinct <> List.length keys then
    invalid_arg "Supervise.run: duplicate cell keys";
  let restored_tbl =
    match config.checkpoint with
    | Some path when config.resume -> Journal.load_table path
    | _ -> Hashtbl.create 0
  in
  let todo = List.filter (fun (c : 'a cell) -> not (Hashtbl.mem restored_tbl c.key)) cells in
  (* Result-cache hits: consulted before the pool, so a hit skips fault
     injection, retries and livelock fuel entirely — the cell never becomes
     pool work.  Declaration order of the lookups keeps the cache's own
     hit/miss counters deterministic for any [jobs]. *)
  let cached_tbl = Hashtbl.create 16 in
  (match config.cache with
  | None -> ()
  | Some rc ->
    List.iter
      (fun (c : 'a cell) ->
        match c.cache with
        | None -> ()
        | Some desc -> (
          match Rescache.find rc ~key:desc with
          | Some v -> Hashtbl.replace cached_tbl c.key v
          | None -> ()))
      todo);
  let todo = List.filter (fun (c : 'a cell) -> not (Hashtbl.mem cached_tbl c.key)) todo in
  (* In-run dedup: two cells declaring the same canonical descriptor are the
     same simulation; the first becomes the representative, later ones alias
     its outcome.  Active even without a cache directory. *)
  let rep_of_desc = Hashtbl.create 16 in
  let alias = Hashtbl.create 16 in
  let runnable =
    List.filter
      (fun (c : 'a cell) ->
        match c.cache with
        | None -> true
        | Some desc -> (
          match Hashtbl.find_opt rep_of_desc desc with
          | None ->
            Hashtbl.add rep_of_desc desc c.key;
            true
          | Some rep ->
            Hashtbl.replace alias c.key rep;
            false))
      todo
  in
  let runnable_arr = Array.of_list runnable in
  let writer = Option.map Journal.open_writer config.checkpoint in
  let fuel_for index =
    (* attempt 0 suffices: livelock decisions are attempt-independent in
       seeded plans, and a planned flaky livelock makes little sense. *)
    match Fault.decide config.fault ~index ~attempt:0 with
    | Some Fault.Livelock -> Some config.livelock_fuel
    | _ -> config.max_cycles
  in
  let on_outcome index (o : _ Pool.outcome) =
    match o.Pool.result with
    | Ok v ->
      let c = runnable_arr.(index) in
      Option.iter (fun w -> Journal.append w ~key:c.key v) writer;
      (match (config.cache, c.cache) with
      | Some rc, Some desc -> Rescache.store rc ~key:desc v
      | _ -> ())
    | Error _ -> ()
  in
  let outcomes =
    Fun.protect
      ~finally:(fun () -> Option.iter Journal.close writer)
      (fun () ->
        let outcomes =
          Pool.with_pool ~jobs:config.jobs (fun p ->
              Pool.map_results ~retries:config.retries ~fault:config.fault ~on_outcome p
                (fun (i, c) -> c.run ~fuel:(fuel_for i))
                (List.mapi (fun i c -> (i, c)) runnable))
        in
        (* Cache hits and dedup aliases still belong in the checkpoint: a
           later --resume must serve them without needing the cache. *)
        Option.iter
          (fun w ->
            let ok = Hashtbl.create 16 in
            List.iter2
              (fun (c : 'a cell) (o : _ Pool.outcome) ->
                match o.Pool.result with
                | Ok v -> Hashtbl.replace ok c.key v
                | Error _ -> ())
              runnable outcomes;
            List.iter
              (fun (c : 'a cell) ->
                match Hashtbl.find_opt cached_tbl c.key with
                | Some v -> Journal.append w ~key:c.key v
                | None -> (
                  match Hashtbl.find_opt alias c.key with
                  | None -> ()
                  | Some rep -> (
                    match Hashtbl.find_opt ok rep with
                    | Some v -> Journal.append w ~key:c.key v
                    | None -> ())))
              cells)
          writer;
        outcomes)
  in
  let ran = Hashtbl.create (List.length runnable) in
  List.iter2 (fun (c : 'a cell) o -> Hashtbl.replace ran c.key o) runnable outcomes;
  let restored = ref 0 and cached = ref 0 and deduped = ref 0 in
  let results, failures =
    List.fold_left
      (fun (res, fails) (c : 'a cell) ->
        match Hashtbl.find_opt restored_tbl c.key with
        | Some v ->
          incr restored;
          ((c.key, Some v) :: res, fails)
        | None -> (
          match Hashtbl.find_opt cached_tbl c.key with
          | Some v ->
            incr cached;
            ((c.key, Some v) :: res, fails)
          | None -> (
            let report_key, own = match Hashtbl.find_opt alias c.key with
              | Some rep -> (rep, false)
              | None -> (c.key, true)
            in
            if not own then incr deduped;
            let o = Hashtbl.find ran report_key in
            match o.Pool.result with
            | Ok v -> ((c.key, Some v) :: res, fails)
            | Error e ->
              let f =
                {
                  key = c.key;
                  attempts = o.Pool.attempts;
                  elapsed = o.Pool.elapsed;
                  reason = Printexc.to_string e.Pool.exn;
                }
              in
              ((c.key, None) :: res, f :: fails))))
      ([], []) cells
  in
  {
    results = List.rev results;
    failures = List.rev failures;
    restored = !restored;
    cached = !cached;
    deduped = !deduped;
    executed = List.length runnable;
  }

let failed s = List.length s.failures

let exit_code sweeps = if List.exists (fun s -> failed s > 0) sweeps then 1 else 0

(* --- telemetry export ------------------------------------------------- *)

module Metrics = Pv_util.Metrics

type exported = {
  label : string;
  cells : (string * Metrics.snapshot option) list;
  summary : Metrics.snapshot;
}

(* The sweep-level registry: cell counts plus a log2 histogram of per-cell
   cycle costs read back from each cell's own snapshot.  [elapsed] is the
   only wall-clock datum in an export; it renders on its own JSON line so
   byte-identity checks can strip it with grep.  Provenance counts
   (restored/cached/deduped/executed) deliberately do NOT appear here: they
   differ between a cold and a warm run of the same sweep, and the metrics
   export must stay byte-identical; they live in the stderr {!report}. *)
let summary_snapshot ?elapsed cells =
  let reg = Metrics.create () in
  Metrics.set_int reg "supervise.cells" (List.length cells);
  Metrics.set_int reg "supervise.failed"
    (List.length (List.filter (fun (_, s) -> s = None) cells));
  Metrics.declare_hist reg "supervise.cell_cycles";
  List.iter
    (fun (_, snap) ->
      match snap with
      | Some s -> (
        match Metrics.find s "pipeline.cycles" with
        | Some (Metrics.Int c) -> Metrics.observe reg "supervise.cell_cycles" c
        | Some _ | None -> ())
      | None -> ())
    cells;
  Option.iter (fun e -> Metrics.set_float reg "elapsed_s" e) elapsed;
  Metrics.snapshot reg

let export_cells ?elapsed ~label cells =
  { label; cells; summary = summary_snapshot ?elapsed cells }

let export ?elapsed ~metrics_of ~label s =
  export_cells ?elapsed ~label
    (List.map (fun (k, v) -> (k, Option.map metrics_of v)) s.results)

let render_json exports =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"sweeps\": {\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (Printf.sprintf "    %S: {\n" e.label);
      Buffer.add_string buf "      \"summary\": ";
      Buffer.add_string buf (Metrics.snapshot_to_json ~indent:8 e.summary);
      Buffer.add_string buf ",\n      \"cells\": {\n";
      List.iteri
        (fun j (k, snap) ->
          if j > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (Printf.sprintf "        %S: " k);
          match snap with
          | None -> Buffer.add_string buf "null"
          | Some s -> Buffer.add_string buf (Metrics.snapshot_to_json ~indent:10 s))
        e.cells;
      Buffer.add_string buf "\n      }\n    }")
    exports;
  Buffer.add_string buf "\n  }\n}\n";
  Buffer.contents buf

let write_json ~file exports =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render_json exports))

let report ?(out = stderr) ~label s =
  Printf.fprintf out
    "%s: %d cells, %d restored from checkpoint, %d CACHED, %d deduped, %d executed, %d failed\n"
    label
    (List.length s.results)
    s.restored s.cached s.deduped s.executed (failed s);
  List.iter
    (fun f ->
      Printf.fprintf out "  FAILED %s after %d attempt%s (%.2fs): %s\n" f.key f.attempts
        (if f.attempts = 1 then "" else "s")
        f.elapsed f.reason)
    s.failures;
  flush out
