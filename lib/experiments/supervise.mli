(** Supervised experiment sweeps: fault-tolerant, checkpointed, resumable.

    A sweep is a list of {e cells} — self-contained measurement jobs with a
    stable string key (e.g. ["lebench/select/PERSPECTIVE"]).  {!run} executes
    them on a {!Pv_util.Pool} via [map_results], so a raising, poisoned or
    livelocked cell degrades to a per-cell failure instead of aborting the
    sweep; completed cells are checkpointed to a {!Pv_util.Journal} as they
    finish, and a [resume] run serves checkpointed cells from the journal and
    executes only the rest.

    Determinism: cell values are pure functions of their inputs, fault
    injection is keyed on the cell's index, and results are merged in
    declaration order — so for a fixed fault plan the sweep's outcome (up to
    wall-clock fields) is identical for every worker count, and a resumed
    sweep converges to exactly the table an uninterrupted run produces. *)

type 'a cell = {
  key : string;  (** stable identity: also the checkpoint-journal key *)
  cache : string option;
      (** canonical input descriptor for the persistent result cache: a
          string spelling out {e every} input of the measurement, such that
          equal descriptors imply equal results.  [None] = never cached. *)
  run : fuel:int option -> 'a;
      (** the measurement; [fuel] is the cycle budget the supervisor imposes
          ([None] = the simulator's own default watchdog) *)
}

val cell : ?cache:string -> string -> (fuel:int option -> 'a) -> 'a cell

type failure = {
  key : string;
  attempts : int;
  elapsed : float;  (** wall clock, informational only *)
  reason : string;  (** deterministic rendering of the final exception *)
}

type 'a sweep = {
  results : (string * 'a option) list;
      (** every cell in declaration order; [None] = failed *)
  failures : failure list;  (** declaration order *)
  restored : int;  (** cells served from the checkpoint journal *)
  cached : int;  (** cells served from the persistent result cache *)
  deduped : int;
      (** cells aliased to another cell with the same descriptor this run *)
  executed : int;  (** cells actually run by this invocation *)
}

type config = {
  jobs : int;  (** pool size; [1] is the exact serial path *)
  retries : int;  (** extra attempts for transient failures *)
  fault : Pv_util.Fault.t;  (** deterministic fault injection *)
  max_cycles : int option;  (** per-cell cycle budget ([None]: default) *)
  livelock_fuel : int;
      (** the starved budget given to a [Livelock]-faulted cell so the
          pipeline watchdog fires quickly *)
  checkpoint : string option;  (** journal path; [None] disables *)
  resume : bool;  (** serve already-journaled cells from the checkpoint *)
  cache : Pv_util.Rescache.t option;
      (** persistent result cache; cells with a descriptor consult it before
          running and store their results after *)
  workers : int;
      (** [> 1] (or any value with [hosts] non-empty): execute runnable
          cells on a {!Pv_util.Procpool} of worker {e processes} (spawned
          by re-exec; requires [Procpool.set_reexec_argv], else falls back
          to the in-process pool with a warning).  Workers survive SIGKILL
          injection ([--fault kill@i]): each keeps a crash-safe journal
          that the coordinator folds into the checkpoint, and results are
          byte-identical to [workers = 1] up to wall-clock fields. *)
  respawns : int;  (** total dead-worker replacements allowed per sweep *)
  hosts : (string * int) list;
      (** standing remote workers ([pv_cli __worker --listen HOST:PORT])
          to dispatch cells to over TCP, in addition to the [workers]
          local processes (which may then be [0]).  Node loss (dropped
          connection, handshake timeout) is arbitrated like a killed local
          worker — the host's journal decides the in-flight cell's fate —
          with a bounded per-host reconnect budget; abandoned hosts are
          reported on stderr ([supervise: host H:P lost: ...]) while the
          sweep completes on the remaining workers. *)
  pool_stats : bool;
      (** print the in-process pool's scheduler counters (local pops,
          steals, failed steals, parks, unparks) to stderr after the sweep.
          Stderr-only by design: the counts depend on runtime interleaving,
          so they are excluded from every byte-identity artifact. *)
}

val default : config
(** [jobs = 1], [retries = 0], no fault, no cycle override, no checkpoint,
    no cache, [workers = 1], [respawns = 8], [hosts = []],
    [pool_stats = false]. *)

val run : ?config:config -> 'a cell list -> 'a sweep
(** Execute the sweep under supervision.  Cell keys must be unique.  With a
    checkpoint configured, each completed cell is appended (and flushed) from
    the domain that ran it, so a crash or Ctrl-C loses at most in-flight
    cells; the journal file is opened in append mode — callers starting a
    {e fresh} checkpointed sweep should remove a stale file first (the CLI
    does this when [--resume] is not given).

    Ordering with a cache configured: checkpoint-restored cells are served
    first, then result-cache hits (counted [cached]; they skip fault
    injection and retries entirely — a cache hit never becomes pool work),
    then cells whose descriptor equals an earlier cell's this run are
    aliased to it (counted [deduped]; one simulation, many rows), and only
    the remainder executes on the pool.  Fault-plan indices refer to
    positions in that remainder.  Cache hits and aliases are journaled too,
    so a later [--resume] works without the cache.  The table a sweep
    produces is byte-identical whether its cells were executed, restored,
    cached or deduped — provenance shows up only in {!report} and
    {!sweep} counts. *)

val failed : _ sweep -> int
(** Number of failed cells. *)

val exit_code : _ sweep list -> int
(** [0] if every sweep is clean, [1] if any had failed cells — the CLI's
    degraded-run signal. *)

val report : ?out:out_channel -> label:string -> _ sweep -> unit
(** Print the failure report (one summary line; one line per failed cell)
    to [out] (default [stderr]). *)

(** {1 Telemetry export}

    A sweep's per-cell metric snapshots plus a sweep-level summary
    (cell/failed counts and a log2 histogram of per-cell
    [pipeline.cycles]), rendered as deterministic JSON for [--metrics].
    Provenance counts (restored/cached/deduped/executed) are deliberately
    absent — they differ between a cold and a warm run of the same sweep,
    and the export must be byte-identical across both; read them from
    {!report} / the {!sweep} record instead.  The only wall-clock datum is
    the optional [elapsed] seconds, which renders as an ["elapsed_s"] member
    on its own line so byte-identity checks can strip it (e.g.
    [grep -v '"elapsed_s"']); everything else is identical for any [-j]. *)

type exported = {
  label : string;  (** sweep name, e.g. ["lebench"] *)
  cells : (string * Pv_util.Metrics.snapshot option) list;
      (** declaration order; [None] = the cell failed *)
  summary : Pv_util.Metrics.snapshot;
}

val export :
  ?elapsed:float ->
  metrics_of:('a -> Pv_util.Metrics.snapshot) ->
  label:string ->
  'a sweep ->
  exported

val export_cells :
  ?elapsed:float ->
  label:string ->
  (string * Pv_util.Metrics.snapshot option) list ->
  exported
(** Build an export directly from keyed snapshots (for unsupervised
    matrices). *)

val render_json : exported list -> string
(** The [--metrics] JSON document ([{"sweeps": {<label>: {"summary": ...,
    "cells": ...}}}]), deterministic bytes. *)

val write_json : file:string -> exported list -> unit
