module Callgraph = Pv_kernel.Callgraph
module Rng = Pv_util.Rng
module Bitset = Pv_util.Bitset

type kind = Mds | Port | CacheChannel

let kind_name = function Mds -> "MDS" | Port -> "Port" | CacheChannel -> "Cache"

type gadget = { node : int; kind : kind }

type t = { all : gadget list; nnodes : int }

(* Gadget placement weight.  Kasper's corpus concentrates in the shared
   mm/vfs/net core (complex, pointer-heavy, reached by every fuzzed syscall)
   and, within a region, in cold code that auditing rarely visits. *)
let weight graph node =
  let region_w =
    match Callgraph.region graph node with
    | `Core -> 3.2
    | `Entry -> 0.4
    | `Ipool -> 1.0
    | `Private -> 0.8
  in
  let cold_w = if Callgraph.is_cold graph node then 1.6 else 0.55 in
  (* The hottest, most-audited functions right below the syscall entries
     rarely harbour surviving gadgets. *)
  let d = Callgraph.depth graph node in
  let depth_w = if d <= 1 then 0.25 else 1.0 in
  region_w *. cold_w *. depth_w

let plant_counts graph ~seed ~mds ~port ~cache =
  let rng = Rng.create (seed lxor 0x67616467) in
  let n = Callgraph.nnodes graph in
  let weighted = Array.init n (fun i -> (i, weight graph i)) in
  let pick_nodes count =
    let chosen = Hashtbl.create count in
    let rec go remaining guardrail =
      if remaining > 0 && guardrail > 0 then begin
        let node = Rng.pick_weighted rng weighted in
        if Hashtbl.mem chosen node then go remaining (guardrail - 1)
        else begin
          Hashtbl.replace chosen node ();
          go (remaining - 1) guardrail
        end
      end
    in
    go count (count * 100);
    Hashtbl.fold (fun node () acc -> node :: acc) chosen []
  in
  let tag kind nodes = List.map (fun node -> { node; kind }) nodes in
  {
    all =
      tag Mds (pick_nodes mds) @ tag Port (pick_nodes port)
      @ tag CacheChannel (pick_nodes cache);
    nnodes = n;
  }

let plant graph ~seed = plant_counts graph ~seed ~mds:805 ~port:509 ~cache:219

let total t = List.length t.all

let count t kind = List.length (List.filter (fun g -> g.kind = kind) t.all)

let gadgets t = t.all

let nodes t = List.map (fun g -> g.node) t.all

let nodes_of_kind t kind =
  List.filter_map (fun g -> if g.kind = kind then Some g.node else None) t.all

let in_scope t scope = List.filter (fun g -> Bitset.mem scope g.node) t.all

let excluded_pct t kind scope =
  match List.filter (fun g -> g.kind = kind) t.all with
  | [] -> 0.0 (* no gadgets of this kind: nothing is in scope to exclude *)
  | of_kind ->
      let blocked = List.filter (fun g -> not (Bitset.mem scope g.node)) of_kind in
      Pv_util.Stats.ratio_pct ~num:(List.length blocked) ~den:(List.length of_kind)
