module Rng = Pv_util.Rng

type t = { rng : Rng.t; mean : float; mutable clock : float }

let create ~seed ~mean =
  if Float.is_nan mean || mean <= 0.0 then
    invalid_arg "Arrivals.create: mean inter-arrival must be positive";
  { rng = Rng.create seed; mean; clock = 0.0 }

let next t =
  t.clock <- t.clock +. Rng.sample_exp t.rng t.mean;
  t.clock

let times ~seed ~mean ~n =
  let t = create ~seed ~mean in
  Array.init n (fun _ -> next t)
