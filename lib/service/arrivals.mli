(** Open-loop arrival process: deterministic exponential inter-arrivals
    drawn from the repo's seeded SplitMix64 stream ({!Pv_util.Rng}).

    The generator is built for {e common random numbers} across offered
    loads: [sample_exp] scales a fixed uniform draw by the mean, so for a
    given [seed] the arrival times at two different loads are exact scalar
    multiples of each other.  Sweeping the load therefore compares the same
    arrival pattern, only compressed — which is what makes the load-latency
    curves monotone instead of jittering between load points. *)

type t

val create : seed:int -> mean:float -> t
(** [create ~seed ~mean] is a fresh stream of arrivals with exponential
    inter-arrival times of mean [mean] (cycles).  Raises [Invalid_argument]
    when [mean] is not positive. *)

val next : t -> float
(** Absolute arrival time (cycles) of the next request; strictly
    increasing. *)

val times : seed:int -> mean:float -> n:int -> float array
(** [times ~seed ~mean ~n] is the first [n] arrival times of
    [create ~seed ~mean], ascending. *)
