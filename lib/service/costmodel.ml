module Machine = Pv_sim.Machine
module Pipeline = Pv_uarch.Pipeline
module Apps = Pv_workloads.Apps
module Driver = Pv_workloads.Driver
module Defense = Perspective.Defense
module Rng = Pv_util.Rng
module Metrics = Pv_util.Metrics

type t = {
  app : string;
  scheme : string;
  samples : float array;
  mean_cycles : float;
}

(* Mirrors Perf.execute's job construction (profile before the defense is
   installed so dynamic ISVs see the trace; gadgets planted only for
   PERSPECTIVE++), minus the per-run telemetry we do not need here. *)
let profile_reps = 25

let total_cycles ?fuel ~seed ~block_unknown ~scheme ~label (app : Apps.app) ~requests =
  let plant_gadgets =
    match scheme with
    | Defense.Perspective Perspective.Isv.Plus -> true
    | Defense.Perspective
        (Perspective.Isv.Static | Perspective.Isv.Dynamic | Perspective.Isv.All)
    | Defense.Unsafe | Defense.Fence | Defense.Dom | Defense.Stt
    | Defense.Safespec | Defense.Specbox ->
      false
  in
  let _m, _h, result, _delta =
    Machine.run_job ?fuel
      (Machine.job ~profile:app.Apps.request ~profile_reps ~plant_gadgets ~block_unknown
         ~seed ~syscalls:Apps.all_syscalls ~name:app.Apps.name
         ~user_funcs:
           (Driver.build ~iterations:requests ~sequence:app.Apps.request
              ~user_work:app.Apps.user_work)
         ~entry:0 scheme)
  in
  Machine.check_result ~name:(Printf.sprintf "%s/%s" app.Apps.name label) result;
  result.Pipeline.cycles

let calibrate ?(seed = 42) ?(points = 4) ?(warm = 4) ?(chunk = 8) ?(block_unknown = true)
    ?fuel ~scheme ~label (app : Apps.app) =
  if points <= 0 then invalid_arg "Costmodel.calibrate: points must be positive";
  if warm <= 0 then invalid_arg "Costmodel.calibrate: warm must be positive";
  if chunk <= 0 then invalid_arg "Costmodel.calibrate: chunk must be positive";
  (* Per-point machine seeds from a SplitMix64 stream keyed off the base
     seed: every point measures a differently laid-out machine, so the
     marginal costs form a real distribution rather than one repeated
     value. *)
  let stream = Rng.create (seed lxor 0x73766373 (* "svcs" *)) in
  let samples =
    Array.init points (fun _ ->
        let point_seed = Rng.bits stream in
        let short =
          total_cycles ?fuel ~seed:point_seed ~block_unknown ~scheme ~label app
            ~requests:warm
        in
        let long =
          total_cycles ?fuel ~seed:point_seed ~block_unknown ~scheme ~label app
            ~requests:(warm + chunk)
        in
        (* A defense cannot make the longer run cheaper; clamp at one cycle
           anyway so a degenerate model can never divide by zero. *)
        Float.max 1.0 (float_of_int (long - short) /. float_of_int chunk))
  in
  Array.sort compare samples;
  let mean_cycles =
    Array.fold_left ( +. ) 0.0 samples /. float_of_int (Array.length samples)
  in
  { app = app.Apps.name; scheme = label; samples; mean_cycles }

let sample t rng = t.samples.(Rng.int rng (Array.length t.samples))

let capacity_rps t ~cores =
  if cores <= 0 then invalid_arg "Costmodel.capacity_rps: cores must be positive";
  float_of_int cores *. 2.0e9 /. t.mean_cycles

let snapshot t =
  let reg = Metrics.create () in
  Metrics.set_int reg "costmodel.samples" (Array.length t.samples);
  Metrics.set_float reg "costmodel.mean_cycles" t.mean_cycles;
  Metrics.set_float reg "costmodel.min_cycles" t.samples.(0);
  Metrics.set_float reg "costmodel.max_cycles" t.samples.(Array.length t.samples - 1);
  let h = Metrics.hist reg "costmodel.service_cycles" in
  Array.iter
    (fun s -> Metrics.hist_observe h (int_of_float (Float.round s)))
    t.samples;
  Metrics.snapshot reg
