(** Per-(app, scheme) service-time calibration for the request-serving
    simulator.

    The datacenter models ({!Pv_workloads.Apps}) are closed request loops;
    this module turns them into a {e service-time distribution} by running a
    sample of real requests through the cycle-level stack
    ({!Pv_sim.Machine.run_job}) and bucketing the per-request cycle costs:
    for each of [points] seeds (drawn from a SplitMix64 stream of the base
    seed) it measures a short run and a longer run of the same machine and
    takes the marginal cycles per request between them — isolating the
    steady-state request cost from image build, warmup and profiling.

    A model is plain marshalable data, so calibration runs as a supervised
    sweep cell (key [service-cal/<app>/<scheme>]) and rides the checkpoint
    journal like any other measurement. *)

type t = {
  app : string;
  scheme : string;  (** scheme label, e.g. ["FENCE"] *)
  samples : float array;  (** per-request service cycles, ascending, all > 0 *)
  mean_cycles : float;
}

val calibrate :
  ?seed:int ->
  ?points:int ->
  ?warm:int ->
  ?chunk:int ->
  ?block_unknown:bool ->
  ?fuel:int ->
  scheme:Perspective.Defense.scheme ->
  label:string ->
  Pv_workloads.Apps.app ->
  t
(** [calibrate ~scheme ~label app] builds the model from [points] sample
    pairs (default 4): each pair runs the app's request loop for [warm]
    requests (default 4) and for [warm + chunk] requests (default [chunk =
    8]) on the same machine seed, contributing [(cycles(warm+chunk) -
    cycles(warm)) / chunk] as one service-time sample.  [fuel] is the
    supervisor's per-run cycle budget ({!Pv_sim.Machine.Run_timeout} on
    exhaustion).  Deterministic for a fixed seed.  Raises
    [Invalid_argument] when [points], [warm] or [chunk] is not positive. *)

val sample : t -> Pv_util.Rng.t -> float
(** Draw one service time: a uniform seeded pick from the empirical
    samples. *)

val capacity_rps : t -> cores:int -> float
(** Saturation throughput in requests per simulated second at 2 GHz:
    [cores * 2e9 / mean_cycles]. *)

val snapshot : t -> Pv_util.Metrics.snapshot
(** Deterministic metric snapshot of the model (sample count, mean, min and
    max service cycles, log2 histogram of the samples) — the calibration
    sweep's [--metrics] payload. *)
