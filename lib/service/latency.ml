module Metrics = Pv_util.Metrics

type t = {
  mutable buf : float array;
  mutable n : int;
  mutable sorted : float array option;  (* memoized; invalidated by observe *)
}

let create () = { buf = Array.make 64 0.0; n = 0; sorted = None }

let observe t x =
  if t.n = Array.length t.buf then begin
    let bigger = Array.make (2 * t.n) 0.0 in
    Array.blit t.buf 0 bigger 0 t.n;
    t.buf <- bigger
  end;
  t.buf.(t.n) <- x;
  t.n <- t.n + 1;
  t.sorted <- None

let count t = t.n

let samples t = Array.sub t.buf 0 t.n

let mean t =
  if t.n = 0 then 0.0
  else begin
    let s = ref 0.0 in
    for i = 0 to t.n - 1 do
      s := !s +. t.buf.(i)
    done;
    !s /. float_of_int t.n
  end

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = samples t in
    Array.sort compare a;
    t.sorted <- Some a;
    a

let max_value t =
  if t.n = 0 then invalid_arg "Latency.max_value: no samples";
  let a = sorted t in
  a.(t.n - 1)

(* Same nearest-rank definition as Stats.percentile (shared integer rank
   computation), but on the memoized sorted array so the four tail
   quantiles of a cell cost one sort. *)
let percentile t ~p =
  if t.n = 0 then invalid_arg "Latency.percentile: no samples";
  if Float.is_nan p || p < 0.0 || p > 100.0 then
    invalid_arg "Latency.percentile: p outside [0,100]";
  let a = sorted t in
  a.(Pv_util.Stats.nearest_rank ~p ~n:t.n - 1)

let percentile_opt t ~p = if t.n = 0 then None else Some (percentile t ~p)

let observe_metrics reg ~prefix t =
  let h = Metrics.hist reg prefix in
  for i = 0 to t.n - 1 do
    Metrics.hist_observe h (int_of_float (Float.round t.buf.(i)))
  done;
  Metrics.set_int reg (prefix ^ ".count") t.n
