(** Latency recorder for the request-serving simulator: keeps the raw
    per-request sojourn times (cycles) so tail percentiles are {e exact}
    nearest-rank statistics, and mirrors them into the fixed log2-bucket
    shape of {!Pv_util.Metrics} for the deterministic JSON export.

    Everything here is plain data and arithmetic — no clocks, no global
    state — so two identical simulations produce byte-identical renderings
    for any worker count. *)

type t

val create : unit -> t

val observe : t -> float -> unit
(** Record one sojourn time (cycles). *)

val count : t -> int

val mean : t -> float
(** Arithmetic mean; [0.] when empty. *)

val max_value : t -> float
(** Largest recorded sample.  Raises [Invalid_argument] when empty. *)

val percentile : t -> p:float -> float
(** Exact nearest-rank percentile over the raw samples (see
    {!Pv_util.Stats.percentile}).  Raises [Invalid_argument] when empty or
    [p] is outside [[0, 100]]. *)

val percentile_opt : t -> p:float -> float option
(** {!percentile} with the empty recorder degrading to [None] — an all-shed
    load point serves nothing and must render as [n/a], not raise.  Still
    raises on [p] outside [[0, 100]]. *)

val samples : t -> float array
(** The recorded samples in observation order (a copy). *)

val observe_metrics : Pv_util.Metrics.t -> prefix:string -> t -> unit
(** Export under [prefix]: a log2 histogram [<prefix>] of the samples
    (rounded to integer cycles) plus [<prefix>.count].  The histogram is
    declared even when empty so the snapshot key set is shape-stable. *)
