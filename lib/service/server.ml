type dispatch = Round_robin | Join_shortest_queue

let dispatch_of_string s =
  match String.lowercase_ascii s with
  | "rr" | "round-robin" -> Ok Round_robin
  | "jsq" | "join-shortest-queue" -> Ok Join_shortest_queue
  | _ -> Error (Printf.sprintf "unknown dispatch policy %S (expected rr or jsq)" s)

let dispatch_to_string = function
  | Round_robin -> "rr"
  | Join_shortest_queue -> "jsq"

type config = { cores : int; queue_bound : int; dispatch : dispatch }

let default_config = { cores = 4; queue_bound = 32; dispatch = Round_robin }

type result = {
  offered : int;
  served : int;
  shed : int;
  horizon : float;
  latency : Latency.t;
  per_core_served : int array;
  busy_cycles : float array;
}

(* Per-core state: a FIFO of completion times of the requests queued or in
   service.  Draining entries <= now yields the live backlog; the last
   entry (if any) is when the core frees up. *)
let backlog q ~now =
  while (not (Queue.is_empty q)) && Queue.peek q <= now do
    ignore (Queue.pop q)
  done;
  Queue.length q

let simulate ?(config = default_config) ~arrivals ~service () =
  if config.cores <= 0 then invalid_arg "Server.simulate: cores must be positive";
  if config.queue_bound < 0 then
    invalid_arg "Server.simulate: queue_bound must be non-negative";
  let n = Array.length arrivals in
  for i = 1 to n - 1 do
    if arrivals.(i) < arrivals.(i - 1) then
      invalid_arg "Server.simulate: arrivals must be ascending"
  done;
  let queues = Array.init config.cores (fun _ -> Queue.create ()) in
  let last_completion = Array.make config.cores 0.0 in
  let per_core_served = Array.make config.cores 0 in
  let busy_cycles = Array.make config.cores 0.0 in
  let latency = Latency.create () in
  let served = ref 0 and shed = ref 0 and horizon = ref 0.0 in
  Array.iteri
    (fun i t ->
      let s = service i in
      if Float.is_nan s || s <= 0.0 then
        invalid_arg "Server.simulate: service times must be positive";
      let core =
        match config.dispatch with
        | Round_robin ->
          let c = i mod config.cores in
          ignore (backlog queues.(c) ~now:t);
          c
        | Join_shortest_queue ->
          let best = ref 0 and best_len = ref max_int in
          Array.iteri
            (fun c q ->
              let len = backlog q ~now:t in
              if len < !best_len then begin
                best := c;
                best_len := len
              end)
            queues;
          !best
      in
      if Queue.length queues.(core) >= config.queue_bound then incr shed
      else begin
        let start = Float.max t last_completion.(core) in
        let completion = start +. s in
        Queue.push completion queues.(core);
        last_completion.(core) <- completion;
        per_core_served.(core) <- per_core_served.(core) + 1;
        busy_cycles.(core) <- busy_cycles.(core) +. s;
        Latency.observe latency (completion -. t);
        incr served;
        if completion > !horizon then horizon := completion
      end)
    arrivals;
  {
    offered = n;
    served = !served;
    shed = !shed;
    horizon = !horizon;
    latency;
    per_core_served;
    busy_cycles;
  }

let goodput_rps r = if r.served = 0 then 0.0 else float_of_int r.served *. 2.0e9 /. r.horizon

let shed_fraction r =
  if r.offered = 0 then 0.0 else float_of_int r.shed /. float_of_int r.offered

let utilization r =
  if r.served = 0 then 0.0
  else
    Array.fold_left ( +. ) 0.0 r.busy_cycles
    /. (float_of_int (Array.length r.busy_cycles) *. r.horizon)
