(** Deterministic discrete-event model of a request-serving machine:
    [cores] simulated cores, each with a bounded FIFO queue, a pluggable
    dispatch policy, and admission control that sheds arrivals once the
    target queue is full — so overload degrades to a bounded tail latency
    plus measured goodput instead of an unbounded queue.

    The simulation is exact (no time stepping): arrivals are processed in
    time order, each core is FIFO, and a request's sojourn time is fully
    determined by its arrival time, its service time and the backlog of the
    core it joins.  Everything is a pure function of the inputs, preserving
    the repo's byte-identity contract. *)

type dispatch =
  | Round_robin
      (** Core [i mod cores] for the [i]-th arrival.  The mapping depends
          only on the arrival index, so a load sweep with common random
          numbers keeps per-core arrival patterns comparable across loads. *)
  | Join_shortest_queue
      (** The core with the smallest backlog at arrival time (ties to the
          lowest core index). *)

val dispatch_of_string : string -> (dispatch, string) result
(** ["rr"] / ["round-robin"] or ["jsq"] / ["join-shortest-queue"]. *)

val dispatch_to_string : dispatch -> string

type config = {
  cores : int;
  queue_bound : int;
      (** Admission bound per core, counting the request in service: an
          arrival finding [queue_bound] requests at its target core is
          shed. *)
  dispatch : dispatch;
}

val default_config : config
(** 4 cores, queue bound 32, round-robin. *)

type result = {
  offered : int;  (** arrivals presented *)
  served : int;
  shed : int;  (** arrivals rejected by admission control *)
  horizon : float;
      (** completion time (cycles) of the last served request; the span
          goodput is measured over *)
  latency : Latency.t;  (** sojourn times (queueing + service) of served requests *)
  per_core_served : int array;
  busy_cycles : float array;  (** per-core total service time *)
}

val simulate :
  ?config:config -> arrivals:float array -> service:(int -> float) -> unit -> result
(** [simulate ~arrivals ~service ()] serves the requests arriving at the
    (ascending) times [arrivals], request [i] costing [service i] cycles.
    [service] is consulted for every arrival index — shed or not — so a
    pre-drawn service stream stays aligned across load points.
    [queue_bound = 0] is legal and sheds every arrival: the result degrades
    to zero goodput with an empty latency recorder (percentiles are [n/a]),
    which the reporting layer must render rather than crash on.  Raises
    [Invalid_argument] on a non-positive [cores], a negative [queue_bound],
    unsorted arrivals or a non-positive service time. *)

val goodput_rps : result -> float
(** Served requests per simulated second at 2 GHz ([0.] when nothing was
    served). *)

val shed_fraction : result -> float
(** [shed / offered] ([0.] when nothing arrived). *)

val utilization : result -> float
(** Mean per-core busy fraction over the horizon ([0.] when nothing was
    served). *)
