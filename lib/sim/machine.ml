module Insn = Pv_isa.Insn
module Layout = Pv_isa.Layout
module Program = Pv_isa.Program
module Mem = Pv_isa.Mem
module Iss = Pv_isa.Iss
module Memsys = Pv_uarch.Memsys
module Pipeline = Pv_uarch.Pipeline
module Kernel = Pv_kernel.Kernel
module Kimage = Pv_kernel.Kimage
module Process = Pv_kernel.Process
module Physmem = Pv_kernel.Physmem
module Trace = Pv_kernel.Trace
module Codegen = Pv_kernel.Codegen
module Callgraph = Pv_kernel.Callgraph
module Rng = Pv_util.Rng

type handle = {
  proc : Process.t;
  build : base_fid:int -> Program.func list;
  entry_rel : int;
  mutable base_fid : int;
  mutable entry_fid_v : int;
  mutable table_frame : int;
  tables : (int, int) Hashtbl.t; (* syscall nr -> r13 VA *)
}

type t = {
  seed : int;
  kernel : Kernel.t;
  kimage : Kimage.t;
  pipe_config : Pipeline.config;
  mem_config : Memsys.config;
  rng : Rng.t;
  mutable handles : handle list; (* reversed *)
  mutable frozen :
    (Program.t * Memsys.t * Pipeline.t) option;
  mutable defense : Perspective.Defense.t option;
  mutable vm : Perspective.View_manager.t;
  seeded : (int, unit) Hashtbl.t;
  mutable pending_ret : int;
}

let create ?kernel_config ?(pipe_config = Pipeline.default_config)
    ?(mem_config = Memsys.default_config) ~seed ~syscalls () =
  let kernel =
    match kernel_config with
    | Some c -> Kernel.create ~config:c ~seed ()
    | None -> Kernel.create ~seed ()
  in
  let kimage = Kimage.build (Kernel.graph kernel) ~seed ~fid_base:0 ~syscalls in
  {
    seed;
    kernel;
    kimage;
    pipe_config;
    mem_config;
    rng = Rng.create (seed lxor 0x6D616368);
    handles = [];
    frozen = None;
    defense = None;
    vm =
      Perspective.View_manager.create
        ~nnodes:(Callgraph.nnodes (Kernel.graph kernel))
        ~oracle:(fun ~ctx:_ ~page:_ -> false);
    seeded = Hashtbl.create 256;
    pending_ret = 0;
  }

let kernel t = t.kernel
let kimage t = t.kimage

let add_process t ~name ~user_funcs ~entry =
  if t.frozen <> None then invalid_arg "Machine.add_process: already frozen";
  let proc = Kernel.spawn t.kernel ~name in
  let h =
    {
      proc;
      build = user_funcs;
      entry_rel = entry;
      base_fid = -1;
      entry_fid_v = -1;
      table_frame = -1;
      tables = Hashtbl.create 8;
    }
  in
  t.handles <- h :: t.handles;
  h

let process h = h.proc
let entry_fid h = h.entry_fid_v
let user_base_fid h = h.base_fid

let frozen_exn t =
  match t.frozen with
  | Some f -> f
  | None -> invalid_arg "Machine: freeze must be called first"

let program t = let p, _, _ = frozen_exn t in p
let pipeline t = let _, _, p = frozen_exn t in p
let memsys t = let _, m, _ = frozen_exn t in m
let mem t = Memsys.mem (memsys t)

let seed_frame t frame =
  if not (Hashtbl.mem t.seeded frame) then begin
    Hashtbl.replace t.seeded frame ();
    Codegen.seed_page (mem t) t.rng (Physmem.frame_va frame)
  end

let table_va t h nr =
  ignore t;
  Hashtbl.find_opt h.tables nr

let alloc_frame_for t h =
  match
    Physmem.alloc_pages (Kernel.phys t.kernel) ~order:0
      (Physmem.Cgroup (Process.cgroup h.proc))
  with
  | Some f -> f
  | None -> failwith "Machine: out of physical memory"

let setup_tables t h =
  let realized = Kimage.realized_syscalls t.kimage in
  let with_tables =
    List.filter
      (fun nr ->
        match Kimage.desc t.kimage nr with
        | Some d -> Array.length d.Kimage.table_nodes > 0
        | None -> false)
      realized
  in
  if List.length with_tables > Layout.page_bytes / 64 then
    invalid_arg "Machine: too many dispatch tables for one page";
  h.table_frame <- alloc_frame_for t h;
  let base = Physmem.frame_va h.table_frame in
  List.iteri
    (fun k nr ->
      match Kimage.desc t.kimage nr with
      | None -> ()
      | Some d ->
        let tva = base + (k * 64) in
        Hashtbl.replace h.tables nr tva;
        Array.iteri
          (fun slot node ->
            match Kimage.fid_of_node t.kimage node with
            | Some fid ->
              let target_va = Layout.func_base Layout.Kernel fid in
              Mem.store (mem t) (tva + (slot * 8)) target_va
            | None -> ())
          d.Kimage.table_nodes)
    with_tables

let freeze t =
  if t.frozen <> None then invalid_arg "Machine.freeze: already frozen";
  let handles = List.rev t.handles in
  if handles = [] then invalid_arg "Machine.freeze: no processes";
  let kernel_funcs = Kimage.funcs t.kimage in
  let next = ref (Kimage.next_fid t.kimage) in
  let user_funcs =
    List.concat_map
      (fun h ->
        let base = !next in
        h.base_fid <- base;
        let funcs = h.build ~base_fid:base in
        List.iteri
          (fun i f ->
            if f.Program.fid <> base + i then
              invalid_arg "Machine.freeze: user fids must be dense from base_fid")
          funcs;
        h.entry_fid_v <- base + h.entry_rel;
        next := base + List.length funcs;
        funcs)
      handles
  in
  let prog = Program.of_funcs (kernel_funcs @ user_funcs) in
  let memory = Mem.create () in
  let ms = Memsys.create ~config:t.mem_config memory in
  let pipe = Pipeline.create ~config:t.pipe_config ms prog in
  t.frozen <- Some (prog, ms, pipe);
  (* Seed kernel-shared data and per-process working sets; build dispatch
     tables. *)
  let shared_frame =
    match Physmem.frame_of_va (Kernel.shared_base t.kernel) with
    | Some f -> f
    | None -> assert false
  in
  for i = 0 to 3 do
    seed_frame t (shared_frame + i)
  done;
  List.iter
    (fun h ->
      Array.iter (seed_frame t) (Process.data_frames h.proc);
      setup_tables t h)
    handles

(* Tracing sees exactly what executes: the syscall entry, its realized
   helpers and the dispatch target selected by this invocation's variant. *)
let record_dispatch t h nr variant =
  match Kimage.desc t.kimage nr with
  | Some d ->
    let ctx = Process.cgroup h.proc in
    let record node = Trace.record_node (Kernel.trace t.kernel) ~ctx node in
    record d.Kimage.entry_node;
    List.iter
      (fun fid ->
        match Kimage.node_of_fid t.kimage fid with Some n -> record n | None -> ())
      d.Kimage.helper_fids;
    if Array.length d.Kimage.table_nodes > 0 then
      record d.Kimage.table_nodes.(variant land (Kimage.table_slots - 1))
  | None -> ()

let profile t h ~workload ~repetitions =
  for _ = 1 to repetitions do
    List.iter
      (fun (nr, args) ->
        let eff = Kernel.exec_syscall t.kernel h.proc ~nr ~args in
        record_dispatch t h nr eff.Kernel.variant)
      workload
  done

let view_manager t = t.vm
let defense t = t.defense

let install_defense t ?(gadget_nodes = []) ?(block_unknown = true)
    ?(isv_cache_entries = 128) ?(dsv_cache_entries = 128) scheme =
  let graph = Kernel.graph t.kernel in
  let phys = Kernel.phys t.kernel in
  let oracle ~ctx ~page =
    match Physmem.owner_of phys page with
    | Some (Physmem.Cgroup c) -> c = ctx
    | Some Physmem.Kernel | Some Physmem.Unknown | None -> false
  in
  let vm = Perspective.View_manager.create ~nnodes:(Callgraph.nnodes graph) ~oracle in
  t.vm <- vm;
  let handles = List.rev t.handles in
  List.iter
    (fun h ->
      let ctx = Process.cgroup h.proc in
      let used =
        match Trace.syscalls_used (Kernel.trace t.kernel) ~ctx with
        | [] -> Kimage.realized_syscalls t.kimage
        | l -> l
      in
      let isv =
        match scheme with
        | Perspective.Defense.Perspective Perspective.Isv.Static ->
          Pv_isvgen.Static_isv.generate graph ~syscalls:used
        | Perspective.Defense.Perspective Perspective.Isv.Dynamic ->
          Pv_isvgen.Dynamic_isv.generate t.kernel ~ctx
        | Perspective.Defense.Perspective Perspective.Isv.Plus ->
          Pv_isvgen.Audit.harden (Pv_isvgen.Dynamic_isv.generate t.kernel ~ctx) ~gadget_nodes
        | Perspective.Defense.Perspective Perspective.Isv.All
        | Perspective.Defense.Unsafe | Perspective.Defense.Fence
        | Perspective.Defense.Dom | Perspective.Defense.Stt
        | Perspective.Defense.Safespec | Perspective.Defense.Specbox ->
          Perspective.Isv.all ~nnodes:(Callgraph.nnodes graph)
      in
      Perspective.View_manager.register vm ~asid:(Process.asid h.proc) ~ctx ~isv)
    handles;
  let d =
    Perspective.Defense.build ~scheme ~vm
      ~node_of_fid:(Kimage.node_of_fid t.kimage)
      ~block_unknown ~isv_cache_entries ~dsv_cache_entries ~memsys:(memsys t) ()
  in
  t.defense <- Some d;
  Pipeline.set_guard (pipeline t) (Perspective.Defense.guard d)

let hooks_for ?on_commit t h =
  let on_syscall regs =
    let nr = regs.(0) in
    if nr < 0 || nr >= Pv_kernel.Sysno.count then Iss.Skip
    else begin
      let args = [| regs.(1); regs.(2); regs.(3) |] in
      let eff = Kernel.exec_syscall t.kernel h.proc ~nr ~args in
      List.iter (seed_frame t) eff.Kernel.new_frames;
      (match t.defense with
      | Some d ->
        List.iter
          (fun frame -> Perspective.Defense.note_freed_page d ~page:frame)
          eff.Kernel.freed_frames
      | None -> ());
      record_dispatch t h nr eff.Kernel.variant;
      t.pending_ret <- eff.Kernel.ret;
      match Kimage.desc t.kimage nr with
      | Some d ->
        let r13 =
          match table_va t h nr with Some va -> va | None -> Kernel.shared_base t.kernel
        in
        Iss.Redirect
          ( d.Kimage.entry_fid,
            [
              (8, eff.Kernel.data_va);
              (9, Kernel.shared_base t.kernel);
              (10, Kernel.unknown_base t.kernel);
              (11, eff.Kernel.trips);
              (12, eff.Kernel.variant);
              (13, r13);
            ] )
      | None ->
        regs.(15) <- eff.Kernel.ret;
        Iss.Skip
    end
  in
  let on_sysret regs =
    regs.(15) <- t.pending_ret;
    Iss.Skip
  in
  { Pipeline.on_syscall; on_sysret; on_commit }

let run ?fuel ?regs ?on_commit t h =
  let pipe = pipeline t in
  (* The machine-level watchdog: a full run spans many syscalls, so its
     default budget is twice the pipeline's per-run [max_cycles] (with the
     stock config that is the historical 40M-cycle ceiling). *)
  let fuel =
    match fuel with Some f -> f | None -> 2 * (Pipeline.config pipe).Pipeline.max_cycles
  in
  let before = Pipeline.copy_counters (Pipeline.counters pipe) in
  let result =
    Pipeline.run ?regs ~fuel ~hooks:(hooks_for ?on_commit t h) pipe ~asid:(Process.asid h.proc)
      ~start:h.entry_fid_v
  in
  let delta = Pipeline.diff_counters (Pipeline.counters pipe) before in
  (result, delta)

(* --- structured run outcomes ----------------------------------------- *)

exception Run_timeout of { name : string; cycles : int; committed : int }
exception Run_fault of { name : string; msg : string }

let () =
  Printexc.register_printer (function
    | Run_timeout { name; cycles; committed } ->
      Some
        (Printf.sprintf "%s: watchdog timeout after %d cycles (%d committed)" name cycles
           committed)
    | Run_fault { name; msg } -> Some (Printf.sprintf "%s: machine fault: %s" name msg)
    | _ -> None)

let check_result ~name (r : Pipeline.result) =
  match r.Pipeline.outcome with
  | Pipeline.Halted -> ()
  | Pipeline.Out_of_fuel ->
    raise
      (Run_timeout { name; cycles = r.Pipeline.cycles; committed = r.Pipeline.committed })
  | Pipeline.Fault msg -> raise (Run_fault { name; msg })

(* --- self-contained job entry point ---------------------------------- *)

(* A job bundles every input of a single-workload measurement run.  All
   fields are plain data (or pure closures), so a job can be shipped to any
   domain of a Pv_util.Pool: run_job builds a private machine — kernel,
   memory, pipeline, RNGs, view caches — from scratch and shares nothing
   with concurrent jobs. *)
type job = {
  job_seed : int;
  job_syscalls : int list;
  job_pipe_config : Pipeline.config;
  job_name : string;
  job_user_funcs : base_fid:int -> Program.func list;
  job_entry : int;
  job_profile : (int * int array) list;
  job_profile_reps : int;
  job_scheme : Perspective.Defense.scheme;
  job_plant_gadgets : bool;
  job_block_unknown : bool;
  job_isv_cache_entries : int;
  job_dsv_cache_entries : int;
}

let job ?(pipe_config = Pipeline.default_config) ?(profile = []) ?(profile_reps = 0)
    ?(plant_gadgets = false) ?(block_unknown = true) ?(isv_cache_entries = 128)
    ?(dsv_cache_entries = 128) ~seed ~syscalls ~name ~user_funcs ~entry scheme =
  {
    job_seed = seed;
    job_syscalls = syscalls;
    job_pipe_config = pipe_config;
    job_name = name;
    job_user_funcs = user_funcs;
    job_entry = entry;
    job_profile = profile;
    job_profile_reps = profile_reps;
    job_scheme = scheme;
    job_plant_gadgets = plant_gadgets;
    job_block_unknown = block_unknown;
    job_isv_cache_entries = isv_cache_entries;
    job_dsv_cache_entries = dsv_cache_entries;
  }

let run_job ?fuel ?on_commit (j : job) =
  let m = create ~pipe_config:j.job_pipe_config ~seed:j.job_seed ~syscalls:j.job_syscalls () in
  let h = add_process m ~name:j.job_name ~user_funcs:j.job_user_funcs ~entry:j.job_entry in
  freeze m;
  if j.job_profile_reps > 0 && j.job_profile <> [] then
    profile m h ~workload:j.job_profile ~repetitions:j.job_profile_reps;
  let gadget_nodes =
    if j.job_plant_gadgets then
      let corpus = Pv_scanner.Gadgets.plant (Kernel.graph m.kernel) ~seed:j.job_seed in
      Pv_scanner.Gadgets.nodes corpus
    else []
  in
  install_defense m ~gadget_nodes ~block_unknown:j.job_block_unknown
    ~isv_cache_entries:j.job_isv_cache_entries ~dsv_cache_entries:j.job_dsv_cache_entries
    j.job_scheme;
  let result, delta = run ?fuel ?on_commit m h in
  (m, h, result, delta)
