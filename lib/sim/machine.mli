(** The full-system machine: one OOO core ({!Pv_uarch.Pipeline}), the
    synthetic kernel ({!Pv_kernel.Kernel} + {!Pv_kernel.Kimage}), and an
    installed defense ({!Perspective.Defense}).

    Lifecycle:
    + {!create} with the set of system calls to realize in the kernel image;
    + {!add_process} for each workload (user ISA code is supplied as a
      function of the allocated base fid);
    + {!freeze} to build the program, memory system and pipeline;
    + optionally {!profile} workloads functionally (feeds dynamic ISVs);
    + {!install_defense};
    + {!run} user entry points on the pipeline.

    Microarchitectural state persists across runs; {!run} returns the
    per-run counter delta alongside the pipeline result. *)

type t

type handle
(** A spawned process together with its user code. *)

val create :
  ?kernel_config:Pv_kernel.Kernel.config ->
  ?pipe_config:Pv_uarch.Pipeline.config ->
  ?mem_config:Pv_uarch.Memsys.config ->
  seed:int ->
  syscalls:int list ->
  unit ->
  t

val kernel : t -> Pv_kernel.Kernel.t
val kimage : t -> Pv_kernel.Kimage.t

val add_process :
  t ->
  name:string ->
  user_funcs:(base_fid:int -> Pv_isa.Program.func list) ->
  entry:int ->
  handle
(** [entry] is the index (within the returned list) of the run entry
    function.  Must be called before {!freeze}. *)

val process : handle -> Pv_kernel.Process.t
val entry_fid : handle -> int
val user_base_fid : handle -> int

val freeze : t -> unit
(** Build the program and pipeline; seeds per-process dispatch tables and
    working-set memory.  Raises if called twice or before any process. *)

val program : t -> Pv_isa.Program.t
val pipeline : t -> Pv_uarch.Pipeline.t
val memsys : t -> Pv_uarch.Memsys.t
val mem : t -> Pv_isa.Mem.t

val profile :
  t -> handle -> workload:(int * int array) list -> repetitions:int -> unit
(** Functional-only workload execution feeding the tracing subsystem
    (dynamic ISV profiles), including dispatch-target accounting. *)

val install_defense :
  t ->
  ?gadget_nodes:int list ->
  ?block_unknown:bool ->
  ?isv_cache_entries:int ->
  ?dsv_cache_entries:int ->
  Perspective.Defense.scheme ->
  unit
(** Build views for every process from its traced (or realized) syscall set
    and install the scheme's guard on the pipeline.  [gadget_nodes] feeds
    ISV++ hardening. *)

val defense : t -> Perspective.Defense.t option
val view_manager : t -> Perspective.View_manager.t

val run :
  ?fuel:int ->
  ?regs:int array ->
  ?on_commit:(int -> int -> Pv_isa.Insn.t -> unit) ->
  t ->
  handle ->
  Pv_uarch.Pipeline.result * Pv_uarch.Pipeline.counters
(** Execute the process's user entry until [Halt]; returns the result and
    this run's counter delta.  [fuel] defaults to twice the pipeline
    config's [max_cycles] watchdog (a full run spans many syscalls), i.e.
    40M cycles with the stock config.  [on_commit] observes every committed
    [(fid, idx, insn)] in architectural order — the equivalence suite uses
    it to digest the commit stream of a full machine run. *)

exception Run_timeout of { name : string; cycles : int; committed : int }
(** A run hit its cycle-fuel watchdog: the structured form of a livelocked
    simulation.  Registered with a human-readable [Printexc] printer. *)

exception Run_fault of { name : string; msg : string }
(** A run committed a fault. *)

val check_result : name:string -> Pv_uarch.Pipeline.result -> unit
(** [check_result ~name r] is the supervision bridge: it turns a non-[Halted]
    pipeline outcome into {!Run_timeout} / {!Run_fault} so the experiment
    layer's supervisor can classify and report it per cell. *)

val seed_frame : t -> int -> unit
(** Idempotently fill a frame with pointer-chase-friendly values. *)

(** {1 Self-contained jobs}

    A {!job} captures every input of one measurement run as plain data, so
    the experiment layer can fan runs out across {!Pv_util.Pool} domains:
    {!run_job} executes the whole lifecycle (create, add_process, freeze,
    profile, install_defense, run) on a {e private} machine, sharing no
    mutable state — kernel, memory, pipeline, RNG, view caches — with any
    concurrent job.  Equal jobs yield bit-identical results on any domain. *)

type job = {
  job_seed : int;
  job_syscalls : int list;
  job_pipe_config : Pv_uarch.Pipeline.config;
  job_name : string;
  job_user_funcs : base_fid:int -> Pv_isa.Program.func list;
  job_entry : int;
  job_profile : (int * int array) list;  (** functional profiling workload *)
  job_profile_reps : int;  (** 0 disables profiling *)
  job_scheme : Perspective.Defense.scheme;
  job_plant_gadgets : bool;
      (** plant the Kasper gadget corpus and feed its nodes to ISV++ *)
  job_block_unknown : bool;
  job_isv_cache_entries : int;
  job_dsv_cache_entries : int;
}

val job :
  ?pipe_config:Pv_uarch.Pipeline.config ->
  ?profile:(int * int array) list ->
  ?profile_reps:int ->
  ?plant_gadgets:bool ->
  ?block_unknown:bool ->
  ?isv_cache_entries:int ->
  ?dsv_cache_entries:int ->
  seed:int ->
  syscalls:int list ->
  name:string ->
  user_funcs:(base_fid:int -> Pv_isa.Program.func list) ->
  entry:int ->
  Perspective.Defense.scheme ->
  job

val run_job :
  ?fuel:int ->
  ?on_commit:(int -> int -> Pv_isa.Insn.t -> unit) ->
  job ->
  t * handle * Pv_uarch.Pipeline.result * Pv_uarch.Pipeline.counters
(** Build a fresh machine from the job spec and execute it; the returned
    machine and handle let callers extract post-run statistics (slab, view
    caches, ISV metadata). *)

val table_va : t -> handle -> int -> int option
(** VA of the process's dispatch table for a realized syscall (r13). *)
