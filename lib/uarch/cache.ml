type way = { mutable tag : int; mutable valid : bool; mutable lru : int }

type t = {
  name : string;
  line_bytes : int;
  nsets : int;
  nways : int;
  latency : int;
  sets : way array array;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~name ~size_bytes ~line_bytes ~ways ~latency =
  if size_bytes <= 0 || line_bytes <= 0 || ways <= 0 then
    invalid_arg "Cache.create: non-positive parameter";
  let lines = size_bytes / line_bytes in
  if lines mod ways <> 0 || lines = 0 then
    invalid_arg "Cache.create: geometry does not divide";
  let nsets = lines / ways in
  {
    name;
    line_bytes;
    nsets;
    nways = ways;
    latency;
    sets =
      Array.init nsets (fun _ ->
          Array.init ways (fun _ -> { tag = 0; valid = false; lru = 0 }));
    tick = 0;
    hits = 0;
    misses = 0;
  }

let name t = t.name
let latency t = t.latency
let sets t = t.nsets
let ways t = t.nways

(* Way index of [tag] in [set], -1 when absent — index-based so the hit
   path (one lookup per simulated memory access) allocates nothing. *)
let find_idx set tag =
  let n = Array.length set in
  let rec go i =
    if i >= n then -1
    else
      let w = Array.unsafe_get set i in
      if w.valid && w.tag = tag then i else go (i + 1)
  in
  go 0

let victim set =
  let best = ref set.(0) in
  Array.iter
    (fun w ->
      if not w.valid then best := w
      else if !best.valid && w.lru < !best.lru then best := w)
    set;
  !best

let bump t w =
  t.tick <- t.tick + 1;
  w.lru <- t.tick

let fill t set tag =
  let w = victim set in
  w.tag <- tag;
  w.valid <- true;
  bump t w

let access t addr =
  let line = addr / t.line_bytes in
  let set = t.sets.(line mod t.nsets) in
  let tag = line / t.nsets in
  let i = find_idx set tag in
  if i >= 0 then begin
    t.hits <- t.hits + 1;
    bump t (Array.unsafe_get set i);
    true
  end
  else begin
    t.misses <- t.misses + 1;
    fill t set tag;
    false
  end

let access_no_lru t addr =
  let line = addr / t.line_bytes in
  let set = t.sets.(line mod t.nsets) in
  let tag = line / t.nsets in
  if find_idx set tag >= 0 then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    fill t set tag;
    false
  end

let touch t addr =
  let line = addr / t.line_bytes in
  let set = t.sets.(line mod t.nsets) in
  let tag = line / t.nsets in
  let i = find_idx set tag in
  if i >= 0 then bump t (Array.unsafe_get set i)

let probe t addr =
  let line = addr / t.line_bytes in
  let tag = line / t.nsets in
  find_idx t.sets.(line mod t.nsets) tag >= 0

let flush_line t addr =
  let line = addr / t.line_bytes in
  let set = t.sets.(line mod t.nsets) in
  let tag = line / t.nsets in
  let i = find_idx set tag in
  if i >= 0 then (Array.unsafe_get set i).valid <- false

let flush_all t =
  Array.iter (fun set -> Array.iter (fun w -> w.valid <- false) set) t.sets

let state_signature t =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun si set ->
      Array.iteri
        (fun wi w ->
          if w.valid then begin
            (* Recency as ordinal rank within the set, not the raw tick, so
               two caches holding the same lines in the same order render
               identically regardless of access counts. *)
            let rank =
              Array.fold_left
                (fun acc o -> if o.valid && o.lru < w.lru then acc + 1 else acc)
                0 set
            in
            Buffer.add_string buf (Printf.sprintf "%d.%d:%d@%d;" si wi w.tag rank)
          end)
        set)
    t.sets;
  Buffer.contents buf

let hits t = t.hits
let misses t = t.misses

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
