(** Set-associative cache with true-LRU replacement.

    Caches hold only presence (tags), never data — data lives in {!Pv_isa.Mem}.
    Crucially for transient-execution modelling, a fill performed by a
    speculatively executed load persists after a squash; that persistence is
    the covert channel every attack in this repository uses. *)

type t

val create :
  name:string -> size_bytes:int -> line_bytes:int -> ways:int -> latency:int -> t
(** Raises [Invalid_argument] unless sizes are positive and divide evenly. *)

val name : t -> string
val latency : t -> int
val sets : t -> int
val ways : t -> int

val access : t -> int -> bool
(** [access t addr] looks up the line containing [addr]: on hit, updates LRU
    and returns [true]; on miss, fills (evicting LRU) and returns [false]. *)

val access_no_lru : t -> int -> bool
(** Like {!access} but on a hit does not update recency — Perspective's
    DSV/ISV caches defer LRU updates until the Visibility Point (§6.2). *)

val touch : t -> int -> unit
(** Promote a resident line to most-recently-used (the deferred LRU update);
    no effect if absent. *)

val probe : t -> int -> bool
(** Presence check with no side effects. *)

val flush_line : t -> int -> unit
val flush_all : t -> unit

val state_signature : t -> string
(** Canonical rendering of the cache's architectural state: every resident
    line as [set.way:tag@rank;] where [rank] is the line's LRU ordinal within
    its set (0 = least recent).  Two caches holding the same lines with the
    same relative recency produce identical signatures regardless of how many
    accesses built that state — the contract checker diffs these across runs
    with different secrets. *)

val hits : t -> int
val misses : t -> int
val hit_rate : t -> float
val reset_stats : t -> unit
