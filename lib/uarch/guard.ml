type query = {
  insn_va : int;
  fid : int;
  addr : int;
  asid : int;
  kernel_mode : bool;
  speculative : bool;
  l1_hit : bool;
  tainted : bool;
}

type source = Isv | Dsv | Baseline

type decision = Allow | Block of source

type t = {
  name : string;
  check : query -> decision;
  notify_vp : (insn_va:int -> addr:int -> asid:int -> kernel_mode:bool -> unit) option;
  spec_read : (key:int -> asid:int -> int) option;
  notify_squash : (asid:int -> unit) option;
  shadow_btb : bool;
}

let allow_all =
  {
    name = "unsafe";
    check = (fun _ -> Allow);
    notify_vp = None;
    spec_read = None;
    notify_squash = None;
    shadow_btb = false;
  }
