(** The pliable software/hardware interface of the pipeline.

    Before a load issues speculatively, the pipeline consults the installed
    guard; the guard decides whether the load may execute (and thus leave
    microarchitectural side effects) or must be fenced until its Visibility
    Point.  Every defense scheme in this repository — FENCE, DOM, STT and the
    Perspective variants — is an implementation of this one interface. *)

type query = {
  insn_va : int;  (** VA of the load instruction *)
  fid : int;  (** function id of the load instruction *)
  addr : int;  (** effective (virtual) address being accessed *)
  asid : int;  (** current address-space id *)
  kernel_mode : bool;  (** CPU privilege mode (kernel execution covers transient wrong-path user code reached from kernel context) *)
  speculative : bool;  (** does an older unresolved control-flow instruction exist? *)
  l1_hit : bool;  (** would the access hit in the L1D right now? *)
  tainted : bool;  (** do the address operands derive from a speculative load? *)
}

type source =
  | Isv  (** fenced because the instruction is outside the ISV *)
  | Dsv  (** fenced because the data is outside the DSV *)
  | Baseline  (** fenced by a view-agnostic scheme (FENCE/DOM/STT) *)

type decision = Allow | Block of source

type t = {
  name : string;
  check : query -> decision;
  notify_vp : (insn_va:int -> addr:int -> asid:int -> kernel_mode:bool -> unit) option;
      (** Called once when a load reaches its Visibility Point; Perspective
          uses it for the deferred LRU update of its view caches (§6.2). *)
  spec_read : (key:int -> asid:int -> int) option;
      (** When set, a speculative load's memory access is redirected here
          instead of filling the real cache hierarchy: the guard returns the
          access latency and tracks the line in its own shadow structures
          (SafeSpec/SpecBox).  Non-speculative loads always use the real
          hierarchy.  [key] is the physical line key
          ([Layout.phys_key ~asid addr]). *)
  notify_squash : (asid:int -> unit) option;
      (** Called once per pipeline squash, before re-steer; shadow-structure
          schemes discard speculative fills here. *)
  shadow_btb : bool;
      (** When true the BTB is treated as a shadow structure: speculative
          resolve-time updates are suppressed and the BTB learns indirect
          targets only at commit (SafeSpec shadow BTB). *)
}

val allow_all : t
(** The UNSAFE configuration: never blocks anything. *)
