type config = {
  l1i_bytes : int;
  l1i_ways : int;
  l1i_latency : int;
  l1d_bytes : int;
  l1d_ways : int;
  l1d_latency : int;
  l2_bytes : int;
  l2_ways : int;
  l2_latency : int;
  line_bytes : int;
  dram_latency : int;
}

let default_config =
  {
    l1i_bytes = 32 * 1024;
    l1i_ways = 4;
    l1i_latency = 2;
    l1d_bytes = 32 * 1024;
    l1d_ways = 8;
    l1d_latency = 2;
    l2_bytes = 2 * 1024 * 1024;
    l2_ways = 16;
    l2_latency = 8;
    line_bytes = 64;
    dram_latency = 100;
  }

type t = {
  mem : Pv_isa.Mem.t;
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  dram_latency : int;
}

let create ?(config = default_config) mem =
  let c = config in
  {
    mem;
    l1i =
      Cache.create ~name:"L1I" ~size_bytes:c.l1i_bytes ~line_bytes:c.line_bytes
        ~ways:c.l1i_ways ~latency:c.l1i_latency;
    l1d =
      Cache.create ~name:"L1D" ~size_bytes:c.l1d_bytes ~line_bytes:c.line_bytes
        ~ways:c.l1d_ways ~latency:c.l1d_latency;
    l2 =
      Cache.create ~name:"L2" ~size_bytes:c.l2_bytes ~line_bytes:c.line_bytes
        ~ways:c.l2_ways ~latency:c.l2_latency;
    dram_latency = c.dram_latency;
  }

let mem t = t.mem
let l1i t = t.l1i
let l1d t = t.l1d
let l2 t = t.l2
let dram_latency t = t.dram_latency

(* Latency-only walk: the pipeline's per-cycle paths use this so a cache
   access never allocates a result tuple. *)
let read_lat t l1 key =
  if Cache.access l1 key then Cache.latency l1
  else if Cache.access t.l2 key then Cache.latency l1 + Cache.latency t.l2
  else Cache.latency l1 + Cache.latency t.l2 + t.dram_latency

let data_read t key =
  let l1_hit = Cache.probe t.l1d key in
  (read_lat t t.l1d key, l1_hit)

let data_read_lat t key = read_lat t t.l1d key

let data_write t key = ignore (read_lat t t.l1d key)

let inst_read t key = read_lat t t.l1i key

let would_hit_l1d t key = Cache.probe t.l1d key

let reload_latency t key = data_read_lat t key

let flush_line t key =
  Cache.flush_line t.l1i key;
  Cache.flush_line t.l1d key;
  Cache.flush_line t.l2 key

let flush_data_caches t =
  Cache.flush_all t.l1d;
  Cache.flush_all t.l2
