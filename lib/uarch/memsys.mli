(** The memory hierarchy of one simulated core: L1I + L1D, a shared L2 and a
    flat DRAM latency, in front of the sparse backing store.

    All addresses passed here are physical keys ({!Pv_isa.Layout.phys_key}). *)

type config = {
  l1i_bytes : int;
  l1i_ways : int;
  l1i_latency : int;
  l1d_bytes : int;
  l1d_ways : int;
  l1d_latency : int;
  l2_bytes : int;
  l2_ways : int;
  l2_latency : int;
  line_bytes : int;
  dram_latency : int;
}

val default_config : config
(** Table 7.1: 32 KiB 4-way L1I, 32 KiB 8-way L1D (2-cycle), 2 MiB 16-way L2
    (8-cycle), 64 B lines, 100-cycle DRAM (50 ns at 2 GHz). *)

type t

val create : ?config:config -> Pv_isa.Mem.t -> t

val mem : t -> Pv_isa.Mem.t
val l1i : t -> Cache.t
val l1d : t -> Cache.t
val l2 : t -> Cache.t
val dram_latency : t -> int

val data_read : t -> int -> int * bool
(** [data_read t key] performs a load access: returns (round-trip latency,
    L1D hit?) and updates all levels (fills on miss).  The architectural value
    is read separately via {!Pv_isa.Mem}. *)

val data_read_lat : t -> int -> int
(** {!data_read} without the hit flag (and without allocating the result
    pair) — the load path the pipeline's cycle loop uses. *)

val data_write : t -> int -> unit
(** Write-allocate access performed at store commit (timing ignored). *)

val inst_read : t -> int -> int
(** Instruction-fetch access latency for the line containing [key]. *)

val would_hit_l1d : t -> int -> bool
(** Non-mutating L1D presence check (used by the DOM guard). *)

val reload_latency : t -> int -> int
(** Latency an attacker's reload of [key] would observe; performs a real
    access (fills caches), exactly like the reload half of flush+reload. *)

val flush_line : t -> int -> unit
(** clflush: evict the line from every level. *)

val flush_data_caches : t -> unit
