module Insn = Pv_isa.Insn
module Layout = Pv_isa.Layout
module Program = Pv_isa.Program
module Mem = Pv_isa.Mem
module Iss = Pv_isa.Iss

type config = {
  fetch_width : int;
  issue_width : int;
  commit_width : int;
  rob_entries : int;
  lq_entries : int;
  sq_entries : int;
  btb_entries : int;
  ras_entries : int;
  branch_latency : int;
  mispredict_penalty : int;
  retpoline : bool;
  kernel_entry_cycles : int;
  kernel_exit_cycles : int;
  max_cycles : int;
  trace_events : bool;
  trace_capacity : int;
}

let default_config =
  {
    fetch_width = 8;
    issue_width = 8;
    commit_width = 8;
    rob_entries = 192;
    lq_entries = 62;
    sq_entries = 32;
    btb_entries = 4096;
    ras_entries = 16;
    branch_latency = 6;
    mispredict_penalty = 8;
    retpoline = false;
    kernel_entry_cycles = 120;
    kernel_exit_cycles = 90;
    max_cycles = 20_000_000;
    trace_events = false;
    trace_capacity = 4096;
  }

type counters = {
  mutable cycles : int;
  mutable kernel_cycles : int;
  mutable committed : int;
  mutable committed_kernel : int;
  mutable committed_loads : int;
  mutable committed_kernel_loads : int;
  mutable syscalls : int;
  mutable squashes : int;
  mutable branch_mispredicts : int;
  mutable spec_loads : int;
  mutable fences_isv : int;
  mutable fences_dsv : int;
  mutable fences_baseline : int;
  (* Stall attribution: every zero-commit cycle of a live run is charged to
     exactly one class, so the eight classes sum to [stall_total]. *)
  mutable stall_total : int;
  mutable stall_fetch : int;
  mutable stall_rob_full : int;
  mutable stall_lsq : int;
  mutable stall_fence_isv : int;
  mutable stall_fence_dsv : int;
  mutable stall_fence_baseline : int;
  mutable stall_dram : int;
  mutable stall_exec : int;
}

let zero_counters () =
  {
    cycles = 0;
    kernel_cycles = 0;
    committed = 0;
    committed_kernel = 0;
    committed_loads = 0;
    committed_kernel_loads = 0;
    syscalls = 0;
    squashes = 0;
    branch_mispredicts = 0;
    spec_loads = 0;
    fences_isv = 0;
    fences_dsv = 0;
    fences_baseline = 0;
    stall_total = 0;
    stall_fetch = 0;
    stall_rob_full = 0;
    stall_lsq = 0;
    stall_fence_isv = 0;
    stall_fence_dsv = 0;
    stall_fence_baseline = 0;
    stall_dram = 0;
    stall_exec = 0;
  }

let add_counters a c =
  a.cycles <- a.cycles + c.cycles;
  a.kernel_cycles <- a.kernel_cycles + c.kernel_cycles;
  a.committed <- a.committed + c.committed;
  a.committed_kernel <- a.committed_kernel + c.committed_kernel;
  a.committed_loads <- a.committed_loads + c.committed_loads;
  a.committed_kernel_loads <- a.committed_kernel_loads + c.committed_kernel_loads;
  a.syscalls <- a.syscalls + c.syscalls;
  a.squashes <- a.squashes + c.squashes;
  a.branch_mispredicts <- a.branch_mispredicts + c.branch_mispredicts;
  a.spec_loads <- a.spec_loads + c.spec_loads;
  a.fences_isv <- a.fences_isv + c.fences_isv;
  a.fences_dsv <- a.fences_dsv + c.fences_dsv;
  a.fences_baseline <- a.fences_baseline + c.fences_baseline;
  a.stall_total <- a.stall_total + c.stall_total;
  a.stall_fetch <- a.stall_fetch + c.stall_fetch;
  a.stall_rob_full <- a.stall_rob_full + c.stall_rob_full;
  a.stall_lsq <- a.stall_lsq + c.stall_lsq;
  a.stall_fence_isv <- a.stall_fence_isv + c.stall_fence_isv;
  a.stall_fence_dsv <- a.stall_fence_dsv + c.stall_fence_dsv;
  a.stall_fence_baseline <- a.stall_fence_baseline + c.stall_fence_baseline;
  a.stall_dram <- a.stall_dram + c.stall_dram;
  a.stall_exec <- a.stall_exec + c.stall_exec

let copy_counters c =
  {
    cycles = c.cycles;
    kernel_cycles = c.kernel_cycles;
    committed = c.committed;
    committed_kernel = c.committed_kernel;
    committed_loads = c.committed_loads;
    committed_kernel_loads = c.committed_kernel_loads;
    syscalls = c.syscalls;
    squashes = c.squashes;
    branch_mispredicts = c.branch_mispredicts;
    spec_loads = c.spec_loads;
    fences_isv = c.fences_isv;
    fences_dsv = c.fences_dsv;
    fences_baseline = c.fences_baseline;
    stall_total = c.stall_total;
    stall_fetch = c.stall_fetch;
    stall_rob_full = c.stall_rob_full;
    stall_lsq = c.stall_lsq;
    stall_fence_isv = c.stall_fence_isv;
    stall_fence_dsv = c.stall_fence_dsv;
    stall_fence_baseline = c.stall_fence_baseline;
    stall_dram = c.stall_dram;
    stall_exec = c.stall_exec;
  }

let diff_counters a b =
  {
    cycles = a.cycles - b.cycles;
    kernel_cycles = a.kernel_cycles - b.kernel_cycles;
    committed = a.committed - b.committed;
    committed_kernel = a.committed_kernel - b.committed_kernel;
    committed_loads = a.committed_loads - b.committed_loads;
    committed_kernel_loads = a.committed_kernel_loads - b.committed_kernel_loads;
    syscalls = a.syscalls - b.syscalls;
    squashes = a.squashes - b.squashes;
    branch_mispredicts = a.branch_mispredicts - b.branch_mispredicts;
    spec_loads = a.spec_loads - b.spec_loads;
    fences_isv = a.fences_isv - b.fences_isv;
    fences_dsv = a.fences_dsv - b.fences_dsv;
    fences_baseline = a.fences_baseline - b.fences_baseline;
    stall_total = a.stall_total - b.stall_total;
    stall_fetch = a.stall_fetch - b.stall_fetch;
    stall_rob_full = a.stall_rob_full - b.stall_rob_full;
    stall_lsq = a.stall_lsq - b.stall_lsq;
    stall_fence_isv = a.stall_fence_isv - b.stall_fence_isv;
    stall_fence_dsv = a.stall_fence_dsv - b.stall_fence_dsv;
    stall_fence_baseline = a.stall_fence_baseline - b.stall_fence_baseline;
    stall_dram = a.stall_dram - b.stall_dram;
    stall_exec = a.stall_exec - b.stall_exec;
  }

let total_fences c = c.fences_isv + c.fences_dsv + c.fences_baseline

(* The stall classes by attributed cycles, in rendering order.  Their sum
   equals [stall_total] by construction (see [classify_stall]). *)
let stall_classes c =
  [
    ("fetch", c.stall_fetch);
    ("rob_full", c.stall_rob_full);
    ("lsq", c.stall_lsq);
    ("fence_isv", c.stall_fence_isv);
    ("fence_dsv", c.stall_fence_dsv);
    ("fence_baseline", c.stall_fence_baseline);
    ("dram", c.stall_dram);
    ("exec", c.stall_exec);
  ]

let observe_metrics reg c =
  let set = Pv_util.Metrics.set_int reg in
  set "pipeline.cycles" c.cycles;
  set "pipeline.kernel_cycles" c.kernel_cycles;
  set "pipeline.committed" c.committed;
  set "pipeline.committed_kernel" c.committed_kernel;
  set "pipeline.committed_loads" c.committed_loads;
  set "pipeline.committed_kernel_loads" c.committed_kernel_loads;
  set "pipeline.syscalls" c.syscalls;
  set "pipeline.squashes" c.squashes;
  set "pipeline.branch_mispredicts" c.branch_mispredicts;
  set "pipeline.spec_loads" c.spec_loads;
  set "pipeline.fences.isv" c.fences_isv;
  set "pipeline.fences.dsv" c.fences_dsv;
  set "pipeline.fences.baseline" c.fences_baseline;
  set "pipeline.fences.total" (total_fences c);
  set "pipeline.stall.total" c.stall_total;
  List.iter (fun (name, v) -> set ("pipeline.stall." ^ name) v) (stall_classes c)

(* ------------------------------------------------------------------ *)
(* Packed entry flags                                                   *)
(* ------------------------------------------------------------------ *)

(* Every boolean and small-enum field of a ROB entry lives in one immediate
   int, so the cycle loop tests and updates them with mask arithmetic on a
   single word instead of loading a spread of record fields.  Layout:

     bits 0-1   state         (0 waiting, 1 issued, 2 completed)
     bit  2     is_ctrl
     bit  3     pred_taken
     bit  4     actual_taken
     bit  5     resolved
     bit  6     spec_at_issue
     bit  7     vp_done
     bit  8     addr_known
     bit  9     kernel
     bits 10-11 blocked_src   (0 none, 1 isv, 2 dsv, 3 baseline)
     bit  12    is_load       (instruction class, fixed at dispatch: the
     bit  13    is_store       per-entry scans test these instead of
     bit  14    is_fence       matching on the instruction variant)

   The encoding is exposed in the mli so property tests can prove that any
   combination of fields round-trips and that fields never alias. *)
module Pack = struct
  type t = int

  let bits = 15
  let empty = 0

  let state_waiting = 0
  let state_issued = 1
  let state_completed = 2

  let blocked_none = 0
  let blocked_isv = 1
  let blocked_dsv = 2
  let blocked_baseline = 3

  let state f = f land 0x3
  let with_state f s = f land lnot 0x3 lor s

  let is_ctrl f = f land 0x4 <> 0
  let with_is_ctrl f b = if b then f lor 0x4 else f land lnot 0x4

  let pred_taken f = f land 0x8 <> 0
  let with_pred_taken f b = if b then f lor 0x8 else f land lnot 0x8

  let actual_taken f = f land 0x10 <> 0
  let with_actual_taken f b = if b then f lor 0x10 else f land lnot 0x10

  let resolved f = f land 0x20 <> 0
  let with_resolved f b = if b then f lor 0x20 else f land lnot 0x20

  let spec_at_issue f = f land 0x40 <> 0
  let with_spec_at_issue f b = if b then f lor 0x40 else f land lnot 0x40

  let vp_done f = f land 0x80 <> 0
  let with_vp_done f b = if b then f lor 0x80 else f land lnot 0x80

  let addr_known f = f land 0x100 <> 0
  let with_addr_known f b = if b then f lor 0x100 else f land lnot 0x100

  let kernel f = f land 0x200 <> 0
  let with_kernel f b = if b then f lor 0x200 else f land lnot 0x200

  let blocked_src f = (f lsr 10) land 0x3
  let with_blocked_src f s = f land lnot 0xC00 lor (s lsl 10)

  let is_load f = f land 0x1000 <> 0
  let with_is_load f b = if b then f lor 0x1000 else f land lnot 0x1000

  let is_store f = f land 0x2000 <> 0
  let with_is_store f b = if b then f lor 0x2000 else f land lnot 0x2000

  let is_fence f = f land 0x4000 <> 0
  let with_is_fence f b = if b then f lor 0x4000 else f land lnot 0x4000
end

let blocked_code_of_source = function
  | Guard.Isv -> Pack.blocked_isv
  | Guard.Dsv -> Pack.blocked_dsv
  | Guard.Baseline -> Pack.blocked_baseline

(* ROB entries are preallocated once per pipeline and reused in place: the
   cycle loop never allocates one.  All scalar fields are mutable ints (the
   packed [flags] word holds the booleans); only the squash snapshots
   ([stack_snap], [tage_meta]) and the rare [fault] remain boxed. *)
type entry = {
  mutable seq : int;
  mutable e_fid : int;
  mutable e_idx : int;
  mutable va : int;
  mutable insn : Insn.t;
  mutable dest : int;
  (* flattened operands: seq of in-flight producer (-1 when the value is
     captured) and the captured value, for each of the two source slots *)
  mutable src_seq0 : int;
  mutable src_seq1 : int;
  mutable src_val0 : int;
  mutable src_val1 : int;
  mutable flags : Pack.t;
  mutable done_at : int;
  mutable value : int;
  mutable eff_addr : int;
  mutable store_val : int;
  mutable pred_target_va : int; (* -1 when fetch stalled on this entry *)
  mutable actual_target_va : int;
  mutable tage_meta : Tage.meta option;
  mutable ghr_snap : int;
  mutable stack_snap : int list;
  mutable depth_snap : int;
  mutable ret_target : int;
  mutable ret_depth : int;
  mutable taint_root : int;
  (* Dataflow parking: the value of [t.wake_epoch] at the last issue attempt
     that failed purely on unavailable operands (-1 = not parked).  While the
     stamp still matches, re-attempting is provably a no-op — a failed
     operand capture has no side effects and its outcome can only change
     when some entry completes — so the scan skips the whole dispatch. *)
  mutable park_stamp : int;
  (* Sharper parking for operand waits: the seq of the producer the failed
     capture short-circuited on (-1 = none).  The dispatch attempt is skipped
     with a single state test until that producer completes or retires, so an
     unrelated completion does not wake the whole ROB. *)
  mutable park_seq : int;
  mutable fault : string option;
}

type fetch_state =
  | Fetching of int * int
  | Stalled_ctrl of int (* seq *)
  | Stalled_serial
  | Stopped

type hooks = {
  on_syscall : int array -> Iss.trap_action;
  on_sysret : int array -> Iss.trap_action;
  on_commit : (int -> int -> Insn.t -> unit) option;
}

let null_hooks =
  { on_syscall = (fun _ -> Iss.Skip); on_sysret = (fun _ -> Iss.Skip); on_commit = None }

type outcome = Halted | Out_of_fuel | Fault of string

type result = { outcome : outcome; cycles : int; committed : int; regs : int array }

(* Bounded event trace: cycle-stamped pipeline events kept in a ring of
   [trace_capacity] entries when [config.trace_events] is on.  A fence event
   (Ev_fence Isv/Dsv) is exactly a view miss — the guard blocked the load
   because the ISV/DSV lookup said "out of view". *)
type event_kind =
  | Ev_squash
  | Ev_fence of Guard.source
  | Ev_vp_release
  | Ev_dload of int  (* physical line key; recorded at the Visibility Point *)

type event = { ev_cycle : int; ev_kind : event_kind; ev_va : int; ev_seq : int }

let dummy_event = { ev_cycle = 0; ev_kind = Ev_squash; ev_va = 0; ev_seq = -1 }

type t = {
  cfg : config;
  memsys : Memsys.t;
  prog : Program.t;
  tage : Tage.t;
  btb : Btb.t;
  ras : Ras.t;
  ctrs : counters;
  mutable guard : Guard.t;
  (* run state *)
  rob : entry array; (* preallocated pool; head/count delimit the live window *)
  retired_seq : int array;
  retired_val : int array;
  arf : int array;
  rat : int array;
  (* store-to-load forwarding scratch, rebuilt by each issue pass: word
     addresses and values of older address-known stores, oldest first (so a
     backward scan finds the youngest match).  Bounded by [sq_entries]. *)
  fwd_word : int array;
  fwd_val : int array;
  mutable fwd_len : int;
  mutable head : int;
  mutable count : int;
  mutable next_seq : int;
  mutable ghr : int;
  mutable fetch : fetch_state;
  mutable fetch_ready_at : int;
  mutable last_fetch_line : int;
  mutable dispatch_stack : int list;
  mutable dispatch_depth : int;
  mutable commit_stack : int list;
  mutable commit_depth : int;
  mutable lq_used : int;
  mutable sq_used : int;
  (* Lower bound on the earliest [done_at] of any Issued entry: the
     completion scan runs only when a completion can actually be due, so a
     long-latency stall (DRAM, fence) costs no per-cycle ROB walks. *)
  mutable next_done_at : int;
  (* Issue-scan elision bookkeeping (see [issue_step]): the whole pass is
     skipped when every Waiting entry is parked under the current completion
     epoch, no load is awaiting its visibility-point transition, and no
     guard-blocked load needs its per-cycle re-query. *)
  mutable wake_epoch : int; (* bumped on completion, store issue, store retire *)
  (* Actionable list: seqs (strictly increasing) of the entries the issue
     scan still needs to visit — Waiting entries, in-flight stores (they
     feed store-to-load forwarding until retirement), unresolved controls,
     incomplete fences and loads short of their visibility point.  Entries
     are appended at dispatch and dropped lazily once no future visit can
     matter, so the scan walks this list instead of the whole ROB. *)
  act : int array;
  mutable act_len : int;
  mutable waiting_count : int; (* entries in state Waiting *)
  mutable parked_current : int; (* Waiting entries parked at this epoch *)
  mutable vp_pending : int; (* issued/completed loads without vp_done *)
  mutable blocked_waiting : int; (* Waiting loads parked by the guard *)
  mutable now : int;
  mutable asid : int;
  mutable kernel_mode : bool;
  mutable run_outcome : outcome option;
  mutable saved_user_regs : int array option;
  mutable hooks : hooks;
  (* [| |] when tracing is off, so the disabled path costs one length test *)
  trace_buf : event array;
  mutable trace_count : int;
}

let fresh_entry () =
  {
    seq = -1;
    e_fid = 0;
    e_idx = 0;
    va = 0;
    insn = Insn.Nop;
    dest = -1;
    src_seq0 = -1;
    src_seq1 = -1;
    src_val0 = 0;
    src_val1 = 0;
    flags = Pack.empty;
    done_at = 0;
    value = 0;
    eff_addr = 0;
    store_val = 0;
    pred_target_va = -1;
    actual_target_va = -1;
    tage_meta = None;
    ghr_snap = 0;
    stack_snap = [];
    depth_snap = 0;
    ret_target = -1;
    ret_depth = 0;
    taint_root = -1;
    park_stamp = -1;
    park_seq = -1;
    fault = None;
  }

let create ?(config = default_config) memsys prog =
  let cap = config.rob_entries in
  {
    cfg = config;
    memsys;
    prog;
    tage = Tage.create ();
    btb = Btb.create ~entries:config.btb_entries ();
    ras = Ras.create ~entries:config.ras_entries ();
    ctrs = zero_counters ();
    guard = Guard.allow_all;
    rob = Array.init cap (fun _ -> fresh_entry ());
    retired_seq = Array.make cap (-1);
    retired_val = Array.make cap 0;
    arf = Array.make Insn.num_regs 0;
    rat = Array.make Insn.num_regs (-1);
    fwd_word = Array.make (max 1 config.sq_entries) 0;
    fwd_val = Array.make (max 1 config.sq_entries) 0;
    fwd_len = 0;
    head = 0;
    count = 0;
    next_seq = 0;
    ghr = 0;
    fetch = Stopped;
    fetch_ready_at = 0;
    last_fetch_line = -1;
    dispatch_stack = [];
    dispatch_depth = 0;
    commit_stack = [];
    commit_depth = 0;
    lq_used = 0;
    sq_used = 0;
    next_done_at = max_int;
    wake_epoch = 0;
    act = Array.make (2 * cap) 0;
    act_len = 0;
    waiting_count = 0;
    parked_current = 0;
    vp_pending = 0;
    blocked_waiting = 0;
    now = 0;
    asid = 0;
    kernel_mode = false;
    run_outcome = None;
    saved_user_regs = None;
    hooks = null_hooks;
    trace_buf =
      (if config.trace_events && config.trace_capacity > 0 then
         Array.make config.trace_capacity dummy_event
       else [||]);
    trace_count = 0;
  }

let config t = t.cfg
let memsys t = t.memsys
let btb t = t.btb
let ras t = t.ras
let counters t = t.ctrs
let set_guard t g = t.guard <- g
let guard t = t.guard

let record_event t kind ~va ~seq =
  let n = Array.length t.trace_buf in
  if n > 0 then begin
    t.trace_buf.(t.trace_count mod n) <-
      { ev_cycle = t.now; ev_kind = kind; ev_va = va; ev_seq = seq };
    t.trace_count <- t.trace_count + 1
  end

let events t =
  let n = Array.length t.trace_buf in
  if n = 0 then []
  else begin
    let len = min t.trace_count n in
    let start = t.trace_count - len in
    List.init len (fun i -> t.trace_buf.((start + i) mod n))
  end

let source_name = function
  | Guard.Isv -> "isv"
  | Guard.Dsv -> "dsv"
  | Guard.Baseline -> "baseline"

let event_to_json ev =
  match ev.ev_kind with
  | Ev_squash ->
    Printf.sprintf {|{"cycle":%d,"kind":"squash","va":%d,"seq":%d}|} ev.ev_cycle
      ev.ev_va ev.ev_seq
  | Ev_fence src ->
    Printf.sprintf {|{"cycle":%d,"kind":"fence","source":"%s","va":%d,"seq":%d}|}
      ev.ev_cycle (source_name src) ev.ev_va ev.ev_seq
  | Ev_vp_release ->
    Printf.sprintf {|{"cycle":%d,"kind":"vp_release","va":%d,"seq":%d}|} ev.ev_cycle
      ev.ev_va ev.ev_seq
  | Ev_dload line ->
    Printf.sprintf {|{"cycle":%d,"kind":"dload","line":%d,"va":%d,"seq":%d}|}
      ev.ev_cycle line ev.ev_va ev.ev_seq

let ret_stack_base = 0x5F00_0000_0000

let ret_stack_va ~asid ~depth = ret_stack_base + (asid lsl 24) + (depth * 8)

let cap t = Array.length t.rob

let head_seq t = t.next_seq - t.count

let pos_of_seq t s = s - head_seq t

(* [pos] is always within the live window, and head + pos < 2*capacity, so
   the ring wrap is a compare-and-subtract rather than a division. *)
let entry_at t pos =
  let c = Array.length t.rob in
  let i = t.head + pos in
  Array.unsafe_get t.rob (if i >= c then i - c else i)

let func_space t fid = (Program.func t.prog fid).Program.space

let is_kernel_fid t fid = func_space t fid = Layout.Kernel

let insn_va_of t fid idx = Layout.insn_va (func_space t fid) fid idx

(* A taint root is an in-flight speculative load that has not yet reached its
   Visibility Point. *)
let root_active t root =
  if root < 0 then false
  else
    let pos = pos_of_seq t root in
    if pos < 0 || pos >= t.count then false
    else
      let e = entry_at t pos in
      e.seq = root && not (Pack.vp_done e.flags)

(* Whether an entry still needs issue-scan visits.  False is final: an
   issued non-load (other than stores, unresolved controls and incomplete
   fences) and a load past its visibility point can never matter to a later
   pass, so it can leave the actionable list for good. *)
let act_keep fl =
  Pack.state fl = Pack.state_waiting
  || (Pack.is_load fl && not (Pack.vp_done fl))
  || Pack.is_store fl
  || (Pack.is_ctrl fl && not (Pack.resolved fl))
  || (Pack.is_fence fl && Pack.state fl <> Pack.state_completed)

(* Squeeze retired and drop-safe seqs out of the actionable list; called when
   an append finds the array full (the live subset always fits). *)
let compact_act t =
  let out = ref 0 in
  for k = 0 to t.act_len - 1 do
    let seq = t.act.(k) in
    let pos = pos_of_seq t seq in
    if pos >= 0 && pos < t.count && act_keep (entry_at t pos).flags then begin
      t.act.(!out) <- seq;
      incr out
    end
  done;
  t.act_len <- !out

let src_info insn =
  (* (dest, src0, src1) register indices, -1 when absent. *)
  match insn with
  | Insn.Nop | Insn.Fence | Insn.Syscall | Insn.Sysret | Insn.Halt | Insn.Ret
  | Insn.Jump _ | Insn.Call _ ->
    (-1, -1, -1)
  | Insn.Limm (rd, _) -> (rd, -1, -1)
  | Insn.Alu (_, rd, r1, r2) -> (rd, r1, r2)
  | Insn.Alui (_, rd, r1, _) -> (rd, r1, -1)
  | Insn.Load (rd, ra, _) -> (rd, ra, -1)
  | Insn.Store (ra, rv, _) -> (-1, ra, rv)
  | Insn.Branch (_, r1, r2, _) -> (-1, r1, r2)
  | Insn.Icall r -> (-1, r, -1)
  | Insn.Flush (ra, _) -> (-1, ra, -1)

(* Reinitialize the pool entry at the ROB tail — the allocation-free
   equivalent of the seed model's fresh record per fetched instruction.
   [va] is the already-computed VA of (fid, idx). *)
let make_entry t fid idx ~va insn =
  let dest, s0, s1 = src_info insn in
  let e = entry_at t t.count in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  e.seq <- seq;
  e.e_fid <- fid;
  e.e_idx <- idx;
  e.va <- va;
  e.insn <- insn;
  e.dest <- dest;
  (if s0 >= 0 then begin
     let p = t.rat.(s0) in
     if p >= 0 then begin
       e.src_seq0 <- p;
       e.src_val0 <- 0
     end
     else begin
       e.src_seq0 <- -1;
       e.src_val0 <- t.arf.(s0)
     end
   end
   else begin
     e.src_seq0 <- -1;
     e.src_val0 <- 0
   end);
  (if s1 >= 0 then begin
     let p = t.rat.(s1) in
     if p >= 0 then begin
       e.src_seq1 <- p;
       e.src_val1 <- 0
     end
     else begin
       e.src_seq1 <- -1;
       e.src_val1 <- t.arf.(s1)
     end
   end
   else begin
     e.src_seq1 <- -1;
     e.src_val1 <- 0
   end);
  e.flags <-
    (let f =
       Pack.with_kernel
         (Pack.with_is_ctrl Pack.empty
            (match insn with
            | Insn.Branch _ | Insn.Icall _ | Insn.Ret -> true
            | _ -> false))
         (is_kernel_fid t fid)
     in
     match insn with
     | Insn.Load _ -> Pack.with_is_load f true
     | Insn.Store _ -> Pack.with_is_store f true
     | Insn.Fence -> Pack.with_is_fence f true
     | _ -> f);
  e.done_at <- 0;
  e.value <- 0;
  e.eff_addr <- 0;
  e.store_val <- 0;
  e.pred_target_va <- -1;
  e.actual_target_va <- -1;
  e.tage_meta <- None;
  e.ghr_snap <- 0;
  e.stack_snap <- [];
  e.depth_snap <- 0;
  e.ret_target <- -1;
  e.ret_depth <- 0;
  e.taint_root <- -1;
  e.park_stamp <- -1;
  e.park_seq <- -1;
  e.fault <- None;
  if dest >= 0 then t.rat.(dest) <- seq;
  t.count <- t.count + 1;
  t.waiting_count <- t.waiting_count + 1;
  if t.act_len >= Array.length t.act then compact_act t;
  t.act.(t.act_len) <- seq;
  t.act_len <- t.act_len + 1;
  (match insn with
  | Insn.Load _ -> t.lq_used <- t.lq_used + 1
  | Insn.Store _ -> t.sq_used <- t.sq_used + 1
  | _ -> ());
  e

let rebuild_rat t =
  Array.fill t.rat 0 (Array.length t.rat) (-1);
  for i = 0 to t.count - 1 do
    let e = entry_at t i in
    if e.dest >= 0 then t.rat.(e.dest) <- e.seq
  done

(* Remove all entries younger than position [pos] (exclusive). *)
let truncate_rob t pos =
  for i = pos + 1 to t.count - 1 do
    let e = entry_at t i in
    let fl = e.flags in
    (match e.insn with
    | Insn.Load _ -> t.lq_used <- t.lq_used - 1
    | Insn.Store _ -> t.sq_used <- t.sq_used - 1
    | _ -> ());
    if Pack.state fl = Pack.state_waiting then begin
      t.waiting_count <- t.waiting_count - 1;
      if e.park_stamp = t.wake_epoch then
        t.parked_current <- t.parked_current - 1;
      if Pack.blocked_src fl <> Pack.blocked_none then
        t.blocked_waiting <- t.blocked_waiting - 1
    end
    else if Pack.is_load fl && not (Pack.vp_done fl) then
      t.vp_pending <- t.vp_pending - 1
  done;
  let removed = t.count - pos - 1 in
  t.count <- pos + 1;
  t.next_seq <- t.next_seq - removed;
  (* Squashed seqs are a suffix of the (sorted) actionable list. *)
  while t.act_len > 0 && t.act.(t.act_len - 1) >= t.next_seq do
    t.act_len <- t.act_len - 1
  done;
  rebuild_rat t

let redirect_fetch t va delay =
  (match Layout.decode_code_va va with
  | Some (_, fid, idx) -> t.fetch <- Fetching (fid, idx)
  | None -> t.fetch <- Stopped);
  t.fetch_ready_at <- t.now + delay;
  t.last_fetch_line <- -1

(* Resolution of a completed control-flow instruction at ROB position [pos].
   Returns true if younger entries were squashed. *)
let resolve_ctrl t pos e =
  e.flags <- Pack.with_resolved e.flags true;
  let squash target_va restore_stack restore_depth restore_ghr =
    t.ctrs.squashes <- t.ctrs.squashes + 1;
    record_event t Ev_squash ~va:e.va ~seq:e.seq;
    (match t.guard.Guard.notify_squash with
    | Some f -> f ~asid:t.asid
    | None -> ());
    truncate_rob t pos;
    t.dispatch_stack <- restore_stack;
    t.dispatch_depth <- restore_depth;
    t.ghr <- restore_ghr;
    if target_va >= 0 then redirect_fetch t target_va t.cfg.mispredict_penalty
    else t.fetch <- Stopped
  in
  match e.insn with
  | Insn.Branch _ ->
    (match e.tage_meta with
    | Some meta ->
      Tage.update t.tage ~pc:e.va ~hist:e.ghr_snap meta
        ~taken:(Pack.actual_taken e.flags)
    | None -> ());
    if Pack.actual_taken e.flags <> Pack.pred_taken e.flags then begin
      t.ctrs.branch_mispredicts <- t.ctrs.branch_mispredicts + 1;
      let ghr' =
        (e.ghr_snap lsl 1) lor (if Pack.actual_taken e.flags then 1 else 0)
      in
      squash e.actual_target_va e.stack_snap e.depth_snap ghr';
      true
    end
    else false
  | Insn.Icall _ ->
    (* Shadow-BTB schemes defer BTB training to commit: a squashed (transient)
       indirect call must leave no predictor state behind. *)
    if e.actual_target_va >= 0 && not t.guard.Guard.shadow_btb then
      Btb.update t.btb e.va e.actual_target_va;
    let stack' = (e.va + Layout.insn_bytes) :: e.stack_snap in
    let depth' = e.depth_snap + 1 in
    if e.pred_target_va = -1 then begin
      (* Fetch was stalled on this instruction: resume, no squash. *)
      (match t.fetch with
      | Stalled_ctrl s when s = e.seq ->
        if e.fault <> None then t.fetch <- Stopped
        else begin
          Ras.push t.ras (e.va + Layout.insn_bytes);
          (* A retpolined indirect call pays for the capture sequence. *)
          redirect_fetch t e.actual_target_va (if t.cfg.retpoline then 24 else 1)
        end
      | Fetching _ | Stalled_ctrl _ | Stalled_serial | Stopped -> ());
      false
    end
    else if e.fault <> None then begin
      squash (-1) stack' depth' t.ghr;
      true
    end
    else if e.actual_target_va <> e.pred_target_va then begin
      t.ctrs.branch_mispredicts <- t.ctrs.branch_mispredicts + 1;
      squash e.actual_target_va stack' depth' t.ghr;
      true
    end
    else false
  | Insn.Ret ->
    let stack' = match e.stack_snap with [] -> [] | _ :: rest -> rest in
    let depth' = max 0 (e.depth_snap - 1) in
    if e.pred_target_va = -1 then begin
      (match t.fetch with
      | Stalled_ctrl s when s = e.seq ->
        if e.fault <> None then t.fetch <- Stopped
        else redirect_fetch t e.actual_target_va 1
      | Fetching _ | Stalled_ctrl _ | Stalled_serial | Stopped -> ());
      false
    end
    else if e.fault <> None then begin
      squash (-1) stack' depth' t.ghr;
      true
    end
    else if e.actual_target_va <> e.pred_target_va then begin
      t.ctrs.branch_mispredicts <- t.ctrs.branch_mispredicts + 1;
      squash e.actual_target_va stack' depth' t.ghr;
      true
    end
    else false
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Completion: turn finished executions into Completed entries and resolve
   control flow, oldest first.                                          *)
(* ------------------------------------------------------------------ *)

(* No-op unless a completion can be due ([next_done_at] is a sound lower
   bound: every issue site raises awareness via the end of [issue_step], and
   entry removal only ever raises the true minimum).  When the scan does
   run it recomputes the exact bound over the surviving entries — a squash
   only removes entries younger than the stop position, so every survivor
   was visited. *)
let completion_step t =
  if t.now >= t.next_done_at then begin
    let nxt = ref max_int in
    let i = ref 0 in
    let stop = ref false in
    while (not !stop) && !i < t.count do
      let e = entry_at t !i in
      if Pack.state e.flags = Pack.state_issued then begin
        if e.done_at <= t.now then begin
          e.flags <- Pack.with_state e.flags Pack.state_completed;
          (* A completion opens a new parking epoch: operand captures that
             failed before may now succeed, so every parked entry must
             re-attempt. *)
          t.wake_epoch <- t.wake_epoch + 1;
          t.parked_current <- 0;
          if Pack.is_ctrl e.flags then if resolve_ctrl t !i e then stop := true
        end
        else if e.done_at < !nxt then nxt := e.done_at
      end;
      incr i
    done;
    t.next_done_at <- !nxt
  end

(* ------------------------------------------------------------------ *)
(* Commit                                                               *)
(* ------------------------------------------------------------------ *)

let retire_bookkeeping t e =
  let slot = e.seq mod cap t in
  t.retired_seq.(slot) <- e.seq;
  t.retired_val.(slot) <- e.value;
  if e.dest >= 0 then begin
    t.arf.(e.dest) <- e.value;
    if t.rat.(e.dest) = e.seq then t.rat.(e.dest) <- -1
  end;
  (match e.insn with
  | Insn.Load _ ->
    t.lq_used <- t.lq_used - 1;
    (* A load can retire without ever reaching its visibility point (it
       completed and committed in the same cycle, before the issue scan). *)
    if not (Pack.vp_done e.flags) then t.vp_pending <- t.vp_pending - 1
  | Insn.Store _ ->
    t.sq_used <- t.sq_used - 1;
    (* A retiring store leaves the forwarding window: loads it was hiding
       now access memory, so parked store-gated loads must re-attempt. *)
    t.wake_epoch <- t.wake_epoch + 1;
    t.parked_current <- 0
  | _ -> ());
  let h = t.head + 1 in
  t.head <- (if h >= cap t then 0 else h);
  t.count <- t.count - 1

let commit_step t =
  let budget = ref t.cfg.commit_width in
  let stop = ref false in
  while (not !stop) && !budget > 0 && t.count > 0 && t.run_outcome = None do
    let e = entry_at t 0 in
    if Pack.state e.flags <> Pack.state_completed then stop := true
    else begin
      decr budget;
      (match e.fault with
      | Some msg -> t.run_outcome <- Some (Fault msg)
      | None -> ());
      if t.run_outcome = None then begin
        t.ctrs.committed <- t.ctrs.committed + 1;
        if Pack.kernel e.flags then
          t.ctrs.committed_kernel <- t.ctrs.committed_kernel + 1;
        (match t.hooks.on_commit with
        | Some f -> f e.e_fid e.e_idx e.insn
        | None -> ());
        (match e.insn with
        | Insn.Load _ ->
          t.ctrs.committed_loads <- t.ctrs.committed_loads + 1;
          if Pack.kernel e.flags then
            t.ctrs.committed_kernel_loads <- t.ctrs.committed_kernel_loads + 1
        | Insn.Store _ ->
          let key = Layout.phys_key ~asid:t.asid e.eff_addr in
          Mem.store (Memsys.mem t.memsys) key e.store_val;
          Memsys.data_write t.memsys key
        | Insn.Flush _ ->
          Memsys.flush_line t.memsys (Layout.phys_key ~asid:t.asid e.eff_addr)
        | Insn.Call _ ->
          t.commit_stack <- (e.va + Layout.insn_bytes) :: t.commit_stack;
          t.commit_depth <- t.commit_depth + 1
        | Insn.Icall _ ->
          (* Shadow-BTB commit: the predictor learns the indirect target only
             once the call is architecturally real. *)
          if t.guard.Guard.shadow_btb && e.actual_target_va >= 0 then
            Btb.update t.btb e.va e.actual_target_va;
          t.commit_stack <- (e.va + Layout.insn_bytes) :: t.commit_stack;
          t.commit_depth <- t.commit_depth + 1
        | Insn.Ret -> (
          match t.commit_stack with
          | [] -> t.run_outcome <- Some (Fault "ret with empty stack")
          | _ :: rest ->
            t.commit_stack <- rest;
            t.commit_depth <- t.commit_depth - 1)
        | Insn.Syscall -> (
          t.ctrs.syscalls <- t.ctrs.syscalls + 1;
          match t.hooks.on_syscall t.arf with
          | Iss.Stop -> t.run_outcome <- Some Halted
          | Iss.Skip ->
            t.fetch <- Fetching (e.e_fid, e.e_idx + 1);
            t.fetch_ready_at <- t.now + 1;
            t.last_fetch_line <- -1
          | Iss.Redirect (f, assigns) ->
            t.saved_user_regs <- Some (Array.copy t.arf);
            List.iter (fun (r, v) -> t.arf.(r) <- v) assigns;
            t.commit_stack <- (e.va + Layout.insn_bytes) :: t.commit_stack;
            t.commit_depth <- t.commit_depth + 1;
            t.dispatch_stack <- t.commit_stack;
            t.dispatch_depth <- t.commit_depth;
            t.kernel_mode <- true;
            t.fetch <- Fetching (f, 0);
            t.fetch_ready_at <- t.now + t.cfg.kernel_entry_cycles;
            t.last_fetch_line <- -1)
        | Insn.Sysret -> (
          (match t.saved_user_regs with
          | Some saved ->
            Array.blit saved 0 t.arf 0 (Array.length saved);
            t.saved_user_regs <- None
          | None -> ());
          match t.hooks.on_sysret t.arf with
          | Iss.Stop -> t.run_outcome <- Some Halted
          | Iss.Skip | Iss.Redirect _ -> (
            match t.commit_stack with
            | [] -> t.run_outcome <- Some (Fault "sysret with empty stack")
            | rva :: rest ->
              t.commit_stack <- rest;
              t.commit_depth <- t.commit_depth - 1;
              t.dispatch_stack <- t.commit_stack;
              t.dispatch_depth <- t.commit_depth;
              (match Layout.decode_code_va rva with
              | Some (space, _, _) -> t.kernel_mode <- space = Layout.Kernel
              | None -> ());
              redirect_fetch t rva t.cfg.kernel_exit_cycles))
        | Insn.Halt -> t.run_outcome <- Some Halted
        | Insn.Nop | Insn.Limm _ | Insn.Alu _ | Insn.Alui _ | Insn.Branch _
        | Insn.Jump _ | Insn.Fence ->
          ());
        retire_bookkeeping t e
      end
    end
  done

(* ------------------------------------------------------------------ *)
(* Issue                                                                *)
(* ------------------------------------------------------------------ *)

(* Operand capture, one specialized copy per source slot so the common case
   (value already captured) is a single int compare. *)
let capture_operand0 t e =
  let s = e.src_seq0 in
  if s < 0 then true
  else
    let pos = pos_of_seq t s in
    if pos < 0 then begin
      let slot = s mod cap t in
      if t.retired_seq.(slot) = s then begin
        e.src_val0 <- t.retired_val.(slot);
        e.src_seq0 <- -1;
        true
      end
      else false
    end
    else
      let p = entry_at t pos in
      if Pack.state p.flags = Pack.state_completed then begin
        e.src_val0 <- p.value;
        e.src_seq0 <- -1;
        if root_active t p.taint_root then
          e.taint_root <- max e.taint_root p.taint_root;
        true
      end
      else false

let capture_operand1 t e =
  let s = e.src_seq1 in
  if s < 0 then true
  else
    let pos = pos_of_seq t s in
    if pos < 0 then begin
      let slot = s mod cap t in
      if t.retired_seq.(slot) = s then begin
        e.src_val1 <- t.retired_val.(slot);
        e.src_seq1 <- -1;
        true
      end
      else false
    end
    else
      let p = entry_at t pos in
      if Pack.state p.flags = Pack.state_completed then begin
        e.src_val1 <- p.value;
        e.src_seq1 <- -1;
        if root_active t p.taint_root then
          e.taint_root <- max e.taint_root p.taint_root;
        true
      end
      else false

let operands_ready t e = capture_operand0 t e && capture_operand1 t e

let count_fence t src =
  match src with
  | Guard.Isv -> t.ctrs.fences_isv <- t.ctrs.fences_isv + 1
  | Guard.Dsv -> t.ctrs.fences_dsv <- t.ctrs.fences_dsv + 1
  | Guard.Baseline -> t.ctrs.fences_baseline <- t.ctrs.fences_baseline + 1

let issue_load_to_memory t e ~speculative =
  let key = Layout.phys_key ~asid:t.asid e.eff_addr in
  let lat =
    match t.guard.Guard.spec_read with
    | Some f when speculative -> f ~key ~asid:t.asid
    | _ -> Memsys.data_read_lat t.memsys key
  in
  e.value <- Mem.load (Memsys.mem t.memsys) key;
  e.done_at <- t.now + lat;
  t.vp_pending <- t.vp_pending + 1;
  if Pack.blocked_src e.flags <> Pack.blocked_none then
    t.blocked_waiting <- t.blocked_waiting - 1;
  e.flags <-
    Pack.with_spec_at_issue
      (Pack.with_state e.flags Pack.state_issued)
      speculative;
  if speculative then begin
    t.ctrs.spec_loads <- t.ctrs.spec_loads + 1;
    e.taint_root <- max e.taint_root e.seq
  end

(* Youngest older store to [word], or -1: the scratch arrays are filled in
   scan order (oldest first), so the backward scan matches the head-first
   lookup of an assoc list consed youngest-first. *)
let fwd_find t word =
  let rec go j =
    if j < 0 then -1
    else if Array.unsafe_get t.fwd_word j = word then j
    else go (j - 1)
  in
  go (t.fwd_len - 1)

let fwd_push t word v =
  t.fwd_word.(t.fwd_len) <- word;
  t.fwd_val.(t.fwd_len) <- v;
  t.fwd_len <- t.fwd_len + 1

(* Park an entry whose operand capture failed purely (a producer has not
   completed).  A failed capture has no side effects and its outcome can only
   change when some entry completes, so the dispatch attempt is skipped until
   the completion epoch moves. *)
let park t e =
  if e.park_stamp <> t.wake_epoch then begin
    e.park_stamp <- t.wake_epoch;
    t.parked_current <- t.parked_current + 1
  end

(* Operand-wait parking: additionally remember which producer the failed
   capture short-circuited on, so only that producer's completion (or
   retirement) wakes the entry — not every epoch bump. *)
let park_dep t e =
  e.park_seq <- (if e.src_seq0 >= 0 then e.src_seq0 else e.src_seq1);
  park t e

(* Exact serialization check for a fence at position [pos]: every strictly
   older entry is completed.  Evaluated directly against the ROB prefix, and
   only on a fence's (epoch-gated, hence rare) dispatch attempts. *)
let older_all_completed t pos =
  let rec go k =
    k >= pos
    || (Pack.state (entry_at t k).flags = Pack.state_completed && go (k + 1))
  in
  go 0

let issue_step t =
  (* The whole pass is elided when it is provably a no-op: every Waiting
     entry is parked under the current completion epoch, no issued load is
     awaiting its visibility-point transition, and no guard-blocked load
     needs its per-cycle guard re-query (those re-queries mutate view-cache
     statistics, so they are architecturally observable and cannot be
     skipped).  Long DRAM and fence stalls then cost no ROB walk at all. *)
  if
    t.waiting_count = t.parked_current
    && t.vp_pending = 0
    && t.blocked_waiting = 0
  then ()
  else begin
  let budget = ref t.cfg.issue_width in
  let older_unresolved_ctrl = ref false in
  let older_fence_incomplete = ref false in
  let older_store_unknown = ref false in
  t.fwd_len <- 0;
  let k = ref 0 in
  let out = ref 0 in
  (* Walk the actionable list (ascending seq = ROB order), compacting it in
     place.  The running prefix flags stay exact because every entry that
     can contribute to them is kept on the list.  Once the issue budget is
     spent AND an older control is unresolved, the rest of the scan is
     provably a no-op: both issue branches are budget-gated, visibility
     points are disabled while speculative, and the running flags only feed
     those disabled paths — so stop walking. *)
  while !k < t.act_len && not (!budget = 0 && !older_unresolved_ctrl) do
    let seq = Array.unsafe_get t.act !k in
    let pos = pos_of_seq t seq in
    (* A negative position is a retired store still on the list: drop it. *)
    if pos >= 0 then begin
    let e = entry_at t pos in
    let speculative = !older_unresolved_ctrl in
    (* Visibility point: no older instruction can squash this one. *)
    (let fl = e.flags in
     let st = Pack.state fl in
     if
       Pack.is_load fl
       && not (Pack.vp_done fl)
       && (st = Pack.state_issued || st = Pack.state_completed)
       && not speculative
     then begin
       e.flags <- Pack.with_vp_done fl true;
       t.vp_pending <- t.vp_pending - 1;
       (* Only architecturally-surviving loads reach here, so the dload trace
          is the sequential projection of the D-cache access stream. *)
       if Array.length t.trace_buf > 0 && Pack.addr_known fl then
         record_event t
           (Ev_dload (Layout.phys_key ~asid:t.asid e.eff_addr / Layout.line_bytes))
           ~va:e.va ~seq:e.seq;
       match t.guard.Guard.notify_vp with
       | Some f when Pack.addr_known fl ->
         f ~insn_va:e.va ~addr:e.eff_addr ~asid:t.asid
           ~kernel_mode:(Pack.kernel fl)
       | Some _ | None -> ()
     end);
    if
      Pack.state e.flags = Pack.state_waiting
      && !budget > 0
      && not !older_fence_incomplete
    then begin
      let parked =
        if e.park_seq >= 0 then begin
          let pos = pos_of_seq t e.park_seq in
          if
            pos >= 0
            && Pack.state (entry_at t pos).flags <> Pack.state_completed
          then begin
            (* Producer still executing: re-stamp so the pass-elision gate
               sees this entry as settled for the current epoch. *)
            park t e;
            true
          end
          else begin
            e.park_seq <- -1;
            false
          end
        end
        else e.park_stamp = t.wake_epoch
      in
      if not parked then begin
      match e.insn with
      | Insn.Nop | Insn.Jump _ | Insn.Call _ | Insn.Syscall | Insn.Sysret
      | Insn.Halt ->
        decr budget;
        e.flags <- Pack.with_state e.flags Pack.state_issued;
        e.done_at <- t.now + 1
      | Insn.Fence ->
        (* The serialization condition can only flip on a completion, so a
           gated fence parks under the same epoch discipline as operand
           waits. *)
        if older_all_completed t pos then begin
          decr budget;
          e.flags <- Pack.with_state e.flags Pack.state_issued;
          e.done_at <- t.now + 1
        end
        else park t e
      | Insn.Limm (_, v) ->
        decr budget;
        e.value <- v;
        e.flags <- Pack.with_state e.flags Pack.state_issued;
        e.done_at <- t.now + 1
      | Insn.Alu (op, _, _, _) ->
        if operands_ready t e then begin
          decr budget;
          e.value <- Insn.eval_binop op e.src_val0 e.src_val1;
          e.flags <- Pack.with_state e.flags Pack.state_issued;
          e.done_at <- t.now + 1
        end
        else park_dep t e
      | Insn.Alui (op, _, _, v) ->
        if operands_ready t e then begin
          decr budget;
          e.value <- Insn.eval_binop op e.src_val0 v;
          e.flags <- Pack.with_state e.flags Pack.state_issued;
          e.done_at <- t.now + 1
        end
        else park_dep t e
      | Insn.Branch (c, _, _, tgt) ->
        if operands_ready t e then begin
          decr budget;
          let taken = Insn.eval_cond c e.src_val0 e.src_val1 in
          e.flags <- Pack.with_actual_taken e.flags taken;
          let next_idx = if taken then tgt else e.e_idx + 1 in
          e.actual_target_va <- insn_va_of t e.e_fid next_idx;
          e.flags <- Pack.with_state e.flags Pack.state_issued;
          e.done_at <- t.now + t.cfg.branch_latency
        end
        else park_dep t e
      | Insn.Icall _ ->
        if operands_ready t e then begin
          decr budget;
          let target = e.src_val0 in
          (match Layout.decode_code_va target with
          | Some (space, f, _)
            when f < Program.length t.prog && func_space t f = space ->
            e.actual_target_va <- target
          | Some _ | None ->
            e.fault <- Some (Printf.sprintf "icall to invalid VA %#x" target));
          e.flags <- Pack.with_state e.flags Pack.state_issued;
          e.done_at <- t.now + t.cfg.branch_latency
        end
        else park_dep t e
      | Insn.Ret ->
        decr budget;
        (if e.ret_target < 0 then e.fault <- Some "ret with empty stack"
         else e.actual_target_va <- e.ret_target);
        (* Returning reads the architectural stack: a flushed stack line
           delays resolution, widening the transient window (Spectre-RSB). *)
        let key = ret_stack_va ~asid:t.asid ~depth:e.ret_depth in
        let lat = Memsys.data_read_lat t.memsys key in
        e.flags <- Pack.with_state e.flags Pack.state_issued;
        e.done_at <- t.now + lat
      | Insn.Flush (_, off) ->
        if operands_ready t e then begin
          decr budget;
          e.eff_addr <- e.src_val0 + off;
          e.flags <-
            Pack.with_state (Pack.with_addr_known e.flags true) Pack.state_issued;
          e.done_at <- t.now + 1
        end
        else park_dep t e
      | Insn.Store (_, _, off) ->
        if operands_ready t e then begin
          decr budget;
          e.eff_addr <- e.src_val0 + off;
          e.store_val <- e.src_val1;
          e.flags <-
            Pack.with_state (Pack.with_addr_known e.flags true) Pack.state_issued;
          e.done_at <- t.now + 1;
          (* The store's address is now known: younger loads parked behind
             [older_store_unknown] must re-attempt. *)
          t.wake_epoch <- t.wake_epoch + 1;
          t.parked_current <- 0
        end
        else park_dep t e
      | Insn.Load (_, _, off) ->
        if operands_ready t e then begin
          if not !older_store_unknown then begin
          e.eff_addr <- e.src_val0 + off;
          e.flags <- Pack.with_addr_known e.flags true;
          let word = e.eff_addr lsr 3 in
          let j = fwd_find t word in
          if j >= 0 then begin
            (* Store-to-load forwarding: no cache access. *)
            decr budget;
            e.value <- Array.unsafe_get t.fwd_val j;
            t.vp_pending <- t.vp_pending + 1;
            if Pack.blocked_src e.flags <> Pack.blocked_none then
              t.blocked_waiting <- t.blocked_waiting - 1;
            e.flags <-
              Pack.with_spec_at_issue
                (Pack.with_state e.flags Pack.state_issued)
                speculative;
            e.done_at <- t.now + 1
          end
          else begin
            let query =
              {
                Guard.insn_va = e.va;
                fid = e.e_fid;
                addr = e.eff_addr;
                asid = t.asid;
                kernel_mode = t.kernel_mode;
                speculative;
                l1_hit =
                  Memsys.would_hit_l1d t.memsys
                    (Layout.phys_key ~asid:t.asid e.eff_addr);
                tainted = root_active t e.taint_root;
              }
            in
            match t.guard.Guard.check query with
            | Guard.Allow ->
              decr budget;
              issue_load_to_memory t e ~speculative
            | Guard.Block src ->
              if Pack.blocked_src e.flags = Pack.blocked_none then begin
                e.flags <-
                  Pack.with_blocked_src e.flags (blocked_code_of_source src);
                t.blocked_waiting <- t.blocked_waiting + 1;
                count_fence t src;
                record_event t (Ev_fence src) ~va:e.va ~seq:e.seq
              end
          end
          end
          (* Operands ready but fenced behind a store with unknown address:
             that status can only change when a store issues or retires or
             an entry completes — all of which bump the wake epoch. *)
          else park t e
        end
        else park_dep t e
      end
    end
    else if
      Pack.state e.flags = Pack.state_waiting
      && !budget > 0
      && Pack.blocked_src e.flags <> Pack.blocked_none
      && not speculative
    then begin
      (* A fenced load at its visibility point issues non-speculatively. *)
      decr budget;
      record_event t Ev_vp_release ~va:e.va ~seq:e.seq;
      issue_load_to_memory t e ~speculative:false
    end;
    (* Update running flags with this entry included. *)
    let fl = e.flags in
    if Pack.is_ctrl fl && not (Pack.resolved fl) then older_unresolved_ctrl := true;
    (if Pack.is_fence fl then begin
       if Pack.state fl <> Pack.state_completed then older_fence_incomplete := true
     end
     else if Pack.is_store fl then
       if Pack.addr_known fl then fwd_push t (e.eff_addr lsr 3) e.store_val
       else older_store_unknown := true);
    if act_keep fl then begin
      Array.unsafe_set t.act !out seq;
      incr out
    end
    end;
    incr k
  done;
  (* On an early exit the unprocessed tail is kept verbatim. *)
  while !k < t.act_len do
    Array.unsafe_set t.act !out (Array.unsafe_get t.act !k);
    incr out;
    incr k
  done;
  t.act_len <- !out;
  (* Every spent unit of issue budget moved exactly one entry out of
     Waiting, so the count is settled once per pass. *)
  t.waiting_count <- t.waiting_count - (t.cfg.issue_width - !budget);
  (* Anything issued this pass finishes no earlier than the next cycle; the
     next completion scan recomputes the exact bound. *)
  if !budget < t.cfg.issue_width && t.now + 1 < t.next_done_at then
    t.next_done_at <- t.now + 1
  end

(* ------------------------------------------------------------------ *)
(* Fetch / dispatch                                                     *)
(* ------------------------------------------------------------------ *)

let fetch_step t =
  let budget = ref t.cfg.fetch_width in
  let continue_fetch = ref true in
  while
    !continue_fetch && !budget > 0 && t.count < cap t
    && t.fetch_ready_at <= t.now
  do
    match t.fetch with
    | Stopped | Stalled_ctrl _ | Stalled_serial -> continue_fetch := false
    | Fetching (fid, idx) -> (
      match Program.fetch t.prog fid idx with
      | None ->
        (* Fell off the end of a function body: architectural fault if it
           commits; on a wrong path the squash will discard it. *)
        let e = make_entry t fid idx ~va:(insn_va_of t fid idx) Insn.Halt in
        e.fault <- Some (Printf.sprintf "fell off function f%d at %d" fid idx);
        e.flags <- Pack.with_state e.flags Pack.state_issued;
        t.waiting_count <- t.waiting_count - 1;
        e.done_at <- t.now + 1;
        if t.now + 1 < t.next_done_at then t.next_done_at <- t.now + 1;
        t.fetch <- Stopped;
        continue_fetch := false
      | Some insn ->
        let va = insn_va_of t fid idx in
        let line = Layout.line_of (Layout.phys_key ~asid:t.asid va) in
        if line <> t.last_fetch_line then begin
          let lat = Memsys.inst_read t.memsys (Layout.phys_key ~asid:t.asid va) in
          t.last_fetch_line <- line;
          if lat > Cache.latency (Memsys.l1i t.memsys) then begin
            t.fetch_ready_at <- t.now + lat;
            continue_fetch := false
          end
        end;
        if !continue_fetch then begin
          let lq_full = Insn.is_load insn && t.lq_used >= t.cfg.lq_entries in
          let sq_full = Insn.is_store insn && t.sq_used >= t.cfg.sq_entries in
          if lq_full || sq_full then continue_fetch := false
          else begin
            decr budget;
            let e = make_entry t fid idx ~va insn in
            match insn with
            | Insn.Branch (_, _, _, tgt) ->
              let pred, meta = Tage.predict t.tage ~pc:va ~hist:t.ghr in
              e.flags <- Pack.with_pred_taken e.flags pred;
              e.tage_meta <- Some meta;
              e.ghr_snap <- t.ghr;
              e.stack_snap <- t.dispatch_stack;
              e.depth_snap <- t.dispatch_depth;
              e.pred_target_va <- 0;
              t.ghr <- ((t.ghr lsl 1) lor if pred then 1 else 0) land max_int;
              t.fetch <- Fetching (fid, if pred then tgt else idx + 1)
            | Insn.Jump tgt -> t.fetch <- Fetching (fid, tgt)
            | Insn.Call callee ->
              Ras.push t.ras (va + Layout.insn_bytes);
              t.dispatch_stack <- (va + Layout.insn_bytes) :: t.dispatch_stack;
              t.dispatch_depth <- t.dispatch_depth + 1;
              t.fetch <- Fetching (callee, 0)
            | Insn.Icall _ -> (
              e.ghr_snap <- t.ghr;
              e.stack_snap <- t.dispatch_stack;
              e.depth_snap <- t.dispatch_depth;
              t.dispatch_stack <- (va + Layout.insn_bytes) :: t.dispatch_stack;
              t.dispatch_depth <- t.dispatch_depth + 1;
              match (if t.cfg.retpoline then None else Btb.lookup t.btb va) with
              | Some target -> (
                match Layout.decode_code_va target with
                | Some (_, tf, ti) ->
                  e.pred_target_va <- target;
                  Ras.push t.ras (va + Layout.insn_bytes);
                  t.fetch <- Fetching (tf, ti)
                | None ->
                  t.fetch <- Stalled_ctrl e.seq;
                  continue_fetch := false)
              | None ->
                t.fetch <- Stalled_ctrl e.seq;
                continue_fetch := false)
            | Insn.Ret -> (
              e.ghr_snap <- t.ghr;
              e.stack_snap <- t.dispatch_stack;
              e.depth_snap <- t.dispatch_depth;
              e.ret_depth <- t.dispatch_depth;
              (match t.dispatch_stack with
              | [] -> e.ret_target <- -1
              | target :: rest ->
                e.ret_target <- target;
                t.dispatch_stack <- rest;
                t.dispatch_depth <- t.dispatch_depth - 1);
              match Ras.pop t.ras with
              | Some pred_va -> (
                match Layout.decode_code_va pred_va with
                | Some (_, pf, pi) ->
                  e.pred_target_va <- pred_va;
                  t.fetch <- Fetching (pf, pi)
                | None ->
                  t.fetch <- Stalled_ctrl e.seq;
                  continue_fetch := false)
              | None ->
                t.fetch <- Stalled_ctrl e.seq;
                continue_fetch := false)
            | Insn.Syscall | Insn.Sysret | Insn.Halt ->
              t.fetch <- Stalled_serial;
              continue_fetch := false
            | Insn.Nop | Insn.Limm _ | Insn.Alu _ | Insn.Alui _ | Insn.Load _
            | Insn.Store _ | Insn.Fence | Insn.Flush _ ->
              t.fetch <- Fetching (fid, idx + 1)
          end
        end)
  done

(* ------------------------------------------------------------------ *)
(* Top-level run loop                                                   *)
(* ------------------------------------------------------------------ *)

let reset_run_state t ~asid ~start regs =
  (* Pool entries need no clearing: [make_entry] reinitializes every field
     and nothing reads outside the head/count window. *)
  Array.fill t.retired_seq 0 (cap t) (-1);
  Array.blit regs 0 t.arf 0 Insn.num_regs;
  Array.fill t.rat 0 Insn.num_regs (-1);
  t.fwd_len <- 0;
  t.head <- 0;
  t.count <- 0;
  t.next_seq <- 0;
  t.ghr <- 0;
  t.fetch <- Fetching (start, 0);
  t.fetch_ready_at <- 0;
  t.last_fetch_line <- -1;
  t.dispatch_stack <- [];
  t.dispatch_depth <- 0;
  t.commit_stack <- [];
  t.commit_depth <- 0;
  t.lq_used <- 0;
  t.sq_used <- 0;
  t.next_done_at <- max_int;
  t.act_len <- 0;
  t.waiting_count <- 0;
  t.parked_current <- 0;
  t.vp_pending <- 0;
  t.blocked_waiting <- 0;
  t.asid <- asid;
  t.kernel_mode <- is_kernel_fid t start;
  t.run_outcome <- None

(* Charge a zero-commit cycle to one stall class by inspecting the ROB head,
   root cause first: an empty ROB is a fetch stall; a head load parked by the
   guard is a fence stall of that source; a head still executing is memory
   (loads/returns) or execution latency; otherwise back-pressure (ROB/LSQ
   full) and finally the residual [exec] class (e.g. operands in flight), so
   the classes always sum to [stall_total]. *)
let classify_stall t =
  let c = t.ctrs in
  c.stall_total <- c.stall_total + 1;
  if t.count = 0 then c.stall_fetch <- c.stall_fetch + 1
  else begin
    let e = entry_at t 0 in
    let fl = e.flags in
    let b = Pack.blocked_src fl in
    if b <> Pack.blocked_none && Pack.state fl <> Pack.state_completed then begin
      (* Still blocked at the guard (Waiting), or released at the
         visibility point and now waiting out memory latency the fence
         exposed by delaying the issue (Issued): either way the fence is
         what keeps the head from committing, so it gets the cycle. *)
      if b = Pack.blocked_isv then c.stall_fence_isv <- c.stall_fence_isv + 1
      else if b = Pack.blocked_dsv then c.stall_fence_dsv <- c.stall_fence_dsv + 1
      else c.stall_fence_baseline <- c.stall_fence_baseline + 1
    end
    else if Pack.state fl = Pack.state_issued then (
      match e.insn with
      | Insn.Load _ | Insn.Ret -> c.stall_dram <- c.stall_dram + 1
      | _ -> c.stall_exec <- c.stall_exec + 1)
    else if t.count = cap t then c.stall_rob_full <- c.stall_rob_full + 1
    else if t.lq_used >= t.cfg.lq_entries || t.sq_used >= t.cfg.sq_entries then
      c.stall_lsq <- c.stall_lsq + 1
    else c.stall_exec <- c.stall_exec + 1
  end

let run ?fuel ?regs ?(hooks = null_hooks) t ~asid ~start =
  let fuel = match fuel with Some f -> f | None -> t.cfg.max_cycles in
  let regs =
    match regs with Some r -> Array.copy r | None -> Array.make Insn.num_regs 0
  in
  reset_run_state t ~asid ~start regs;
  t.hooks <- hooks;
  let start_cycles = t.ctrs.cycles in
  let start_committed = t.ctrs.committed in
  let elapsed () = t.ctrs.cycles - start_cycles in
  while t.run_outcome = None && elapsed () < fuel do
    t.now <- t.now + 1;
    t.ctrs.cycles <- t.ctrs.cycles + 1;
    if t.kernel_mode then t.ctrs.kernel_cycles <- t.ctrs.kernel_cycles + 1;
    completion_step t;
    let committed_before = t.ctrs.committed in
    commit_step t;
    if t.run_outcome = None then begin
      if t.ctrs.committed = committed_before then classify_stall t;
      issue_step t;
      fetch_step t
    end
  done;
  let outcome = match t.run_outcome with Some o -> o | None -> Out_of_fuel in
  {
    outcome;
    cycles = elapsed ();
    committed = t.ctrs.committed - start_committed;
    regs = Array.copy t.arf;
  }
