(** Cycle-level out-of-order speculative pipeline (the gem5 substitute).

    Models the parts of an OOO core that matter for transient-execution
    attacks and defenses:

    - fetch along the predicted path (TAGE direction prediction, BTB for
      indirect calls, RAS for returns, L1I timing);
    - register renaming, a reorder buffer, load/store queues with
      store-to-load forwarding, out-of-order issue, in-order commit;
    - squash on branch/indirect/return misprediction with precise
      architectural state recovery — but {e microarchitectural} state
      (cache fills performed by transient loads, predictor updates) survives
      the squash: that residue is the covert channel;
    - a pluggable {!Guard} consulted before any load issues speculatively:
      this is the hardware half of Perspective's pliable interface.  Blocked
      loads wait for their Visibility Point (no older instruction can squash
      them) and then issue non-speculatively, as in §6.2 of the paper.

    Microarchitectural state (caches, predictors, counters) persists across
    {!run} calls so that one process can mistrain structures that a later run
    of another process consults. *)

type config = {
  fetch_width : int;
  issue_width : int;
  commit_width : int;
  rob_entries : int;
  lq_entries : int;
  sq_entries : int;
  btb_entries : int;
  ras_entries : int;
  branch_latency : int;
      (** cycles from issue to resolution of branches and indirect calls —
          the execute-depth that opens the speculation window *)
  mispredict_penalty : int;  (** front-end refill cycles after a squash *)
  retpoline : bool;
      (** software Spectre-v2 spot mitigation: indirect calls bypass the BTB
          and stall fetch until they resolve *)
  kernel_entry_cycles : int;  (** user->kernel transition cost *)
  kernel_exit_cycles : int;  (** kernel->user transition cost *)
  max_cycles : int;
      (** cycle-fuel watchdog: the default fuel of {!run}, so a livelocked
          simulation terminates with a structured [Out_of_fuel] outcome
          instead of spinning forever *)
  trace_events : bool;
      (** record squash / fence / VP-release events in a bounded ring (off by
          default: the disabled path is a single array-length test) *)
  trace_capacity : int;  (** ring size when tracing; the last N events win *)
}

val default_config : config
(** Table 7.1: 8-issue, 192 ROB, 62 LQ, 32 SQ, 4096-entry BTB, 16-entry RAS;
    [max_cycles = 20_000_000]. *)

type counters = {
  mutable cycles : int;
  mutable kernel_cycles : int;
  mutable committed : int;
  mutable committed_kernel : int;
  mutable committed_loads : int;
  mutable committed_kernel_loads : int;
  mutable syscalls : int;
  mutable squashes : int;
  mutable branch_mispredicts : int;
  mutable spec_loads : int;  (** loads issued while speculative *)
  mutable fences_isv : int;
  mutable fences_dsv : int;
  mutable fences_baseline : int;
  mutable stall_total : int;
      (** zero-commit cycles of a live run; equals the sum of the eight
          stall classes below, each zero-commit cycle being charged to
          exactly one class by root cause (see DESIGN.md §7) *)
  mutable stall_fetch : int;  (** ROB empty: the front end starved commit *)
  mutable stall_rob_full : int;
  mutable stall_lsq : int;
  mutable stall_fence_isv : int;
      (** head load parked by an ISV view miss, or waiting out memory
          latency that fence exposed by delaying its issue *)
  mutable stall_fence_dsv : int;  (** as [stall_fence_isv], for DSV misses *)
  mutable stall_fence_baseline : int;  (** as above, for FENCE/DOM/STT guards *)
  mutable stall_dram : int;
      (** head load/return waiting on the memory system (never fenced) *)
  mutable stall_exec : int;
      (** residual execution latency (branch resolution, ALU, operands in
          flight) — kept explicit so the breakdown always sums to
          [stall_total] *)
}

val zero_counters : unit -> counters
val add_counters : counters -> counters -> unit
(** [add_counters acc c] accumulates [c] into [acc]. *)

val diff_counters : counters -> counters -> counters
(** [diff_counters after before]. *)

val copy_counters : counters -> counters
val total_fences : counters -> int

val stall_classes : counters -> (string * int) list
(** The eight stall classes as [(name, cycles)] in rendering order; sums to
    [stall_total]. *)

val observe_metrics : Pv_util.Metrics.t -> counters -> unit
(** Register every counter under [pipeline.*] names ([pipeline.cycles],
    [pipeline.fences.dsv], [pipeline.stall.fence_isv], ...). *)

(** {2 Packed entry flags}

    Every boolean and small-enum field of a ROB entry is packed into one
    immediate int, so the cycle loop reads and updates them with mask
    arithmetic on a single word.  The accessors below are the complete
    encoding; property tests prove that each field round-trips and that no
    two fields alias (see test/test_pack.ml).  States and blocked-source
    codes are small ints rather than variants so they pack directly. *)
module Pack : sig
  type t = int
  (** One flag word.  Only the low {!bits} bits are used. *)

  val bits : int
  (** Number of significant bits in a flag word (15). *)

  val empty : t
  (** All fields zero: state {!state_waiting}, every boolean false,
      blocked source {!blocked_none}. *)

  val state_waiting : int
  val state_issued : int
  val state_completed : int

  val state : t -> int
  val with_state : t -> int -> t

  val is_ctrl : t -> bool
  val with_is_ctrl : t -> bool -> t

  val pred_taken : t -> bool
  val with_pred_taken : t -> bool -> t

  val actual_taken : t -> bool
  val with_actual_taken : t -> bool -> t

  val resolved : t -> bool
  val with_resolved : t -> bool -> t

  val spec_at_issue : t -> bool
  val with_spec_at_issue : t -> bool -> t

  val vp_done : t -> bool
  val with_vp_done : t -> bool -> t

  val addr_known : t -> bool
  val with_addr_known : t -> bool -> t

  val kernel : t -> bool
  val with_kernel : t -> bool -> t

  val blocked_none : int
  val blocked_isv : int
  val blocked_dsv : int
  val blocked_baseline : int

  val blocked_src : t -> int
  val with_blocked_src : t -> int -> t

  (** Instruction class, fixed at dispatch — lets the per-entry scans avoid
      re-matching the instruction variant every cycle. *)

  val is_load : t -> bool
  val with_is_load : t -> bool -> t

  val is_store : t -> bool
  val with_is_store : t -> bool -> t

  val is_fence : t -> bool
  val with_is_fence : t -> bool -> t
end

type t

val create : ?config:config -> Memsys.t -> Pv_isa.Program.t -> t
val config : t -> config
val memsys : t -> Memsys.t
val btb : t -> Btb.t
val ras : t -> Ras.t
val counters : t -> counters
(** Cumulative across runs; copy before/after a run and use
    {!diff_counters} for per-run numbers. *)

val set_guard : t -> Guard.t -> unit
val guard : t -> Guard.t

val ret_stack_va : asid:int -> depth:int -> int
(** VA of the return-stack slot a [Ret] at call depth [depth] reads; flushing
    this line widens the return's transient window (the Spectre-RSB lever). *)

type hooks = {
  on_syscall : int array -> Pv_isa.Iss.trap_action;
  on_sysret : int array -> Pv_isa.Iss.trap_action;
  on_commit : (int -> int -> Pv_isa.Insn.t -> unit) option;
      (** [(fid, idx, insn)] for each committed instruction. *)
}

val null_hooks : hooks

type outcome = Halted | Out_of_fuel | Fault of string

type result = {
  outcome : outcome;
  cycles : int;
  committed : int;
  regs : int array;
}

val run :
  ?fuel:int ->
  ?regs:int array ->
  ?hooks:hooks ->
  t ->
  asid:int ->
  start:int ->
  result
(** Execute from instruction 0 of function [start] until a [Halt] commits, a
    fault commits, a [Stop] trap action, or [fuel] cycles elapse (default:
    the config's [max_cycles] watchdog). *)

(** {2 Event trace}

    A bounded ring of cycle-stamped events, recorded only when
    [config.trace_events] is set.  [Ev_fence Isv]/[Ev_fence Dsv] {e is} the
    view-miss event: the guard parked the load because the speculation-view
    lookup failed. *)

type event_kind =
  | Ev_squash
  | Ev_fence of Guard.source
  | Ev_vp_release
  | Ev_dload of int
      (** D-cache access by an architecturally-surviving load, recorded at its
          Visibility Point; the payload is the physical line index.  Squashed
          transient loads never appear, so this trace is the sequential
          projection of the access stream — the contract checker's CT-seq
          observation. *)

type event = {
  ev_cycle : int;
  ev_kind : event_kind;
  ev_va : int;  (** VA of the instruction the event is about *)
  ev_seq : int;  (** its ROB sequence number *)
}

val events : t -> event list
(** The retained events, oldest first ([[]] when tracing is off).  At most
    [trace_capacity] events are kept; older ones are overwritten. *)

val event_to_json : event -> string
(** One JSONL line, deterministic bytes. *)
