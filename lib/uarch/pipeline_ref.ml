(* Frozen record-based reference pipeline: a verbatim copy of the seed
   [Pipeline] implementation, kept as the equivalence oracle for the
   int-packed/preallocated fast path that replaced it.  The equivalence and
   QCheck suites (test_equiv.ml, test_pipeline.ml) run programs through both
   and assert identical commit streams, cycle counts, architectural state and
   stall attribution.  Do not optimize this module — its value is that it
   stays byte-for-byte the seed model. *)

module Insn = Pv_isa.Insn
module Layout = Pv_isa.Layout
module Program = Pv_isa.Program
module Mem = Pv_isa.Mem
module Iss = Pv_isa.Iss

type config = {
  fetch_width : int;
  issue_width : int;
  commit_width : int;
  rob_entries : int;
  lq_entries : int;
  sq_entries : int;
  btb_entries : int;
  ras_entries : int;
  branch_latency : int;
  mispredict_penalty : int;
  retpoline : bool;
  kernel_entry_cycles : int;
  kernel_exit_cycles : int;
  max_cycles : int;
  trace_events : bool;
  trace_capacity : int;
}

let default_config =
  {
    fetch_width = 8;
    issue_width = 8;
    commit_width = 8;
    rob_entries = 192;
    lq_entries = 62;
    sq_entries = 32;
    btb_entries = 4096;
    ras_entries = 16;
    branch_latency = 6;
    mispredict_penalty = 8;
    retpoline = false;
    kernel_entry_cycles = 120;
    kernel_exit_cycles = 90;
    max_cycles = 20_000_000;
    trace_events = false;
    trace_capacity = 4096;
  }

type counters = {
  mutable cycles : int;
  mutable kernel_cycles : int;
  mutable committed : int;
  mutable committed_kernel : int;
  mutable committed_loads : int;
  mutable committed_kernel_loads : int;
  mutable syscalls : int;
  mutable squashes : int;
  mutable branch_mispredicts : int;
  mutable spec_loads : int;
  mutable fences_isv : int;
  mutable fences_dsv : int;
  mutable fences_baseline : int;
  (* Stall attribution: every zero-commit cycle of a live run is charged to
     exactly one class, so the eight classes sum to [stall_total]. *)
  mutable stall_total : int;
  mutable stall_fetch : int;
  mutable stall_rob_full : int;
  mutable stall_lsq : int;
  mutable stall_fence_isv : int;
  mutable stall_fence_dsv : int;
  mutable stall_fence_baseline : int;
  mutable stall_dram : int;
  mutable stall_exec : int;
}

let zero_counters () =
  {
    cycles = 0;
    kernel_cycles = 0;
    committed = 0;
    committed_kernel = 0;
    committed_loads = 0;
    committed_kernel_loads = 0;
    syscalls = 0;
    squashes = 0;
    branch_mispredicts = 0;
    spec_loads = 0;
    fences_isv = 0;
    fences_dsv = 0;
    fences_baseline = 0;
    stall_total = 0;
    stall_fetch = 0;
    stall_rob_full = 0;
    stall_lsq = 0;
    stall_fence_isv = 0;
    stall_fence_dsv = 0;
    stall_fence_baseline = 0;
    stall_dram = 0;
    stall_exec = 0;
  }

let add_counters a c =
  a.cycles <- a.cycles + c.cycles;
  a.kernel_cycles <- a.kernel_cycles + c.kernel_cycles;
  a.committed <- a.committed + c.committed;
  a.committed_kernel <- a.committed_kernel + c.committed_kernel;
  a.committed_loads <- a.committed_loads + c.committed_loads;
  a.committed_kernel_loads <- a.committed_kernel_loads + c.committed_kernel_loads;
  a.syscalls <- a.syscalls + c.syscalls;
  a.squashes <- a.squashes + c.squashes;
  a.branch_mispredicts <- a.branch_mispredicts + c.branch_mispredicts;
  a.spec_loads <- a.spec_loads + c.spec_loads;
  a.fences_isv <- a.fences_isv + c.fences_isv;
  a.fences_dsv <- a.fences_dsv + c.fences_dsv;
  a.fences_baseline <- a.fences_baseline + c.fences_baseline;
  a.stall_total <- a.stall_total + c.stall_total;
  a.stall_fetch <- a.stall_fetch + c.stall_fetch;
  a.stall_rob_full <- a.stall_rob_full + c.stall_rob_full;
  a.stall_lsq <- a.stall_lsq + c.stall_lsq;
  a.stall_fence_isv <- a.stall_fence_isv + c.stall_fence_isv;
  a.stall_fence_dsv <- a.stall_fence_dsv + c.stall_fence_dsv;
  a.stall_fence_baseline <- a.stall_fence_baseline + c.stall_fence_baseline;
  a.stall_dram <- a.stall_dram + c.stall_dram;
  a.stall_exec <- a.stall_exec + c.stall_exec

let copy_counters c =
  {
    cycles = c.cycles;
    kernel_cycles = c.kernel_cycles;
    committed = c.committed;
    committed_kernel = c.committed_kernel;
    committed_loads = c.committed_loads;
    committed_kernel_loads = c.committed_kernel_loads;
    syscalls = c.syscalls;
    squashes = c.squashes;
    branch_mispredicts = c.branch_mispredicts;
    spec_loads = c.spec_loads;
    fences_isv = c.fences_isv;
    fences_dsv = c.fences_dsv;
    fences_baseline = c.fences_baseline;
    stall_total = c.stall_total;
    stall_fetch = c.stall_fetch;
    stall_rob_full = c.stall_rob_full;
    stall_lsq = c.stall_lsq;
    stall_fence_isv = c.stall_fence_isv;
    stall_fence_dsv = c.stall_fence_dsv;
    stall_fence_baseline = c.stall_fence_baseline;
    stall_dram = c.stall_dram;
    stall_exec = c.stall_exec;
  }

let diff_counters a b =
  {
    cycles = a.cycles - b.cycles;
    kernel_cycles = a.kernel_cycles - b.kernel_cycles;
    committed = a.committed - b.committed;
    committed_kernel = a.committed_kernel - b.committed_kernel;
    committed_loads = a.committed_loads - b.committed_loads;
    committed_kernel_loads = a.committed_kernel_loads - b.committed_kernel_loads;
    syscalls = a.syscalls - b.syscalls;
    squashes = a.squashes - b.squashes;
    branch_mispredicts = a.branch_mispredicts - b.branch_mispredicts;
    spec_loads = a.spec_loads - b.spec_loads;
    fences_isv = a.fences_isv - b.fences_isv;
    fences_dsv = a.fences_dsv - b.fences_dsv;
    fences_baseline = a.fences_baseline - b.fences_baseline;
    stall_total = a.stall_total - b.stall_total;
    stall_fetch = a.stall_fetch - b.stall_fetch;
    stall_rob_full = a.stall_rob_full - b.stall_rob_full;
    stall_lsq = a.stall_lsq - b.stall_lsq;
    stall_fence_isv = a.stall_fence_isv - b.stall_fence_isv;
    stall_fence_dsv = a.stall_fence_dsv - b.stall_fence_dsv;
    stall_fence_baseline = a.stall_fence_baseline - b.stall_fence_baseline;
    stall_dram = a.stall_dram - b.stall_dram;
    stall_exec = a.stall_exec - b.stall_exec;
  }

let total_fences c = c.fences_isv + c.fences_dsv + c.fences_baseline

(* The stall classes by attributed cycles, in rendering order.  Their sum
   equals [stall_total] by construction (see [classify_stall]). *)
let stall_classes c =
  [
    ("fetch", c.stall_fetch);
    ("rob_full", c.stall_rob_full);
    ("lsq", c.stall_lsq);
    ("fence_isv", c.stall_fence_isv);
    ("fence_dsv", c.stall_fence_dsv);
    ("fence_baseline", c.stall_fence_baseline);
    ("dram", c.stall_dram);
    ("exec", c.stall_exec);
  ]

let observe_metrics reg c =
  let set = Pv_util.Metrics.set_int reg in
  set "pipeline.cycles" c.cycles;
  set "pipeline.kernel_cycles" c.kernel_cycles;
  set "pipeline.committed" c.committed;
  set "pipeline.committed_kernel" c.committed_kernel;
  set "pipeline.committed_loads" c.committed_loads;
  set "pipeline.committed_kernel_loads" c.committed_kernel_loads;
  set "pipeline.syscalls" c.syscalls;
  set "pipeline.squashes" c.squashes;
  set "pipeline.branch_mispredicts" c.branch_mispredicts;
  set "pipeline.spec_loads" c.spec_loads;
  set "pipeline.fences.isv" c.fences_isv;
  set "pipeline.fences.dsv" c.fences_dsv;
  set "pipeline.fences.baseline" c.fences_baseline;
  set "pipeline.fences.total" (total_fences c);
  set "pipeline.stall.total" c.stall_total;
  List.iter (fun (name, v) -> set ("pipeline.stall." ^ name) v) (stall_classes c)

type estate = Waiting | Issued | Completed

type entry = {
  seq : int;
  e_fid : int;
  e_idx : int;
  va : int;
  insn : Insn.t;
  kernel : bool;
  dest : int;
  src_reg : int array; (* -1 for unused slots *)
  src_seq : int array;
  src_val : int array;
  mutable state : estate;
  mutable done_at : int;
  mutable value : int;
  mutable eff_addr : int;
  mutable addr_known : bool;
  mutable store_val : int;
  is_ctrl : bool;
  mutable pred_taken : bool;
  mutable pred_target_va : int; (* -1 when fetch stalled on this entry *)
  mutable actual_taken : bool;
  mutable actual_target_va : int;
  mutable resolved : bool;
  mutable tage_meta : Tage.meta option;
  mutable ghr_snap : int;
  mutable stack_snap : int list;
  mutable depth_snap : int;
  mutable ret_target : int;
  mutable ret_depth : int;
  mutable blocked_src : Guard.source option;
  mutable spec_at_issue : bool;
  mutable vp_done : bool;
  mutable taint_root : int;
  mutable fault : string option;
}

type fetch_state =
  | Fetching of int * int
  | Stalled_ctrl of int (* seq *)
  | Stalled_serial
  | Stopped

type hooks = {
  on_syscall : int array -> Iss.trap_action;
  on_sysret : int array -> Iss.trap_action;
  on_commit : (int -> int -> Insn.t -> unit) option;
}

let null_hooks =
  { on_syscall = (fun _ -> Iss.Skip); on_sysret = (fun _ -> Iss.Skip); on_commit = None }

type outcome = Halted | Out_of_fuel | Fault of string

type result = { outcome : outcome; cycles : int; committed : int; regs : int array }

(* Bounded event trace: cycle-stamped pipeline events kept in a ring of
   [trace_capacity] entries when [config.trace_events] is on.  A fence event
   (Ev_fence Isv/Dsv) is exactly a view miss — the guard blocked the load
   because the ISV/DSV lookup said "out of view". *)
type event_kind =
  | Ev_squash
  | Ev_fence of Guard.source
  | Ev_vp_release
  | Ev_dload of int  (* physical line key; recorded at the Visibility Point *)

type event = { ev_cycle : int; ev_kind : event_kind; ev_va : int; ev_seq : int }

let dummy_event = { ev_cycle = 0; ev_kind = Ev_squash; ev_va = 0; ev_seq = -1 }

type t = {
  cfg : config;
  memsys : Memsys.t;
  prog : Program.t;
  tage : Tage.t;
  btb : Btb.t;
  ras : Ras.t;
  ctrs : counters;
  mutable guard : Guard.t;
  (* run state *)
  rob : entry option array;
  retired_seq : int array;
  retired_val : int array;
  arf : int array;
  rat : int array;
  mutable head : int;
  mutable count : int;
  mutable next_seq : int;
  mutable ghr : int;
  mutable fetch : fetch_state;
  mutable fetch_ready_at : int;
  mutable last_fetch_line : int;
  mutable dispatch_stack : int list;
  mutable dispatch_depth : int;
  mutable commit_stack : int list;
  mutable commit_depth : int;
  mutable lq_used : int;
  mutable sq_used : int;
  mutable now : int;
  mutable asid : int;
  mutable kernel_mode : bool;
  mutable run_outcome : outcome option;
  mutable saved_user_regs : int array option;
  mutable hooks : hooks;
  (* [| |] when tracing is off, so the disabled path costs one length test *)
  trace_buf : event array;
  mutable trace_count : int;
}

let create ?(config = default_config) memsys prog =
  let cap = config.rob_entries in
  {
    cfg = config;
    memsys;
    prog;
    tage = Tage.create ();
    btb = Btb.create ~entries:config.btb_entries ();
    ras = Ras.create ~entries:config.ras_entries ();
    ctrs = zero_counters ();
    guard = Guard.allow_all;
    rob = Array.make cap None;
    retired_seq = Array.make cap (-1);
    retired_val = Array.make cap 0;
    arf = Array.make Insn.num_regs 0;
    rat = Array.make Insn.num_regs (-1);
    head = 0;
    count = 0;
    next_seq = 0;
    ghr = 0;
    fetch = Stopped;
    fetch_ready_at = 0;
    last_fetch_line = -1;
    dispatch_stack = [];
    dispatch_depth = 0;
    commit_stack = [];
    commit_depth = 0;
    lq_used = 0;
    sq_used = 0;
    now = 0;
    asid = 0;
    kernel_mode = false;
    run_outcome = None;
    saved_user_regs = None;
    hooks = null_hooks;
    trace_buf =
      (if config.trace_events && config.trace_capacity > 0 then
         Array.make config.trace_capacity dummy_event
       else [||]);
    trace_count = 0;
  }

let config t = t.cfg
let memsys t = t.memsys
let btb t = t.btb
let ras t = t.ras
let counters t = t.ctrs
let set_guard t g = t.guard <- g
let guard t = t.guard

let record_event t kind ~va ~seq =
  let n = Array.length t.trace_buf in
  if n > 0 then begin
    t.trace_buf.(t.trace_count mod n) <-
      { ev_cycle = t.now; ev_kind = kind; ev_va = va; ev_seq = seq };
    t.trace_count <- t.trace_count + 1
  end

let events t =
  let n = Array.length t.trace_buf in
  if n = 0 then []
  else begin
    let len = min t.trace_count n in
    let start = t.trace_count - len in
    List.init len (fun i -> t.trace_buf.((start + i) mod n))
  end

let source_name = function
  | Guard.Isv -> "isv"
  | Guard.Dsv -> "dsv"
  | Guard.Baseline -> "baseline"

let event_to_json ev =
  match ev.ev_kind with
  | Ev_squash ->
    Printf.sprintf {|{"cycle":%d,"kind":"squash","va":%d,"seq":%d}|} ev.ev_cycle
      ev.ev_va ev.ev_seq
  | Ev_fence src ->
    Printf.sprintf {|{"cycle":%d,"kind":"fence","source":"%s","va":%d,"seq":%d}|}
      ev.ev_cycle (source_name src) ev.ev_va ev.ev_seq
  | Ev_vp_release ->
    Printf.sprintf {|{"cycle":%d,"kind":"vp_release","va":%d,"seq":%d}|} ev.ev_cycle
      ev.ev_va ev.ev_seq
  | Ev_dload line ->
    Printf.sprintf {|{"cycle":%d,"kind":"dload","line":%d,"va":%d,"seq":%d}|}
      ev.ev_cycle line ev.ev_va ev.ev_seq

let ret_stack_base = 0x5F00_0000_0000

let ret_stack_va ~asid ~depth = ret_stack_base + (asid lsl 24) + (depth * 8)

let cap t = Array.length t.rob

let head_seq t = t.next_seq - t.count

let pos_of_seq t s = s - head_seq t

let entry_at t pos =
  match t.rob.((t.head + pos) mod cap t) with
  | Some e -> e
  | None -> assert false

let func_space t fid = (Program.func t.prog fid).Program.space

let is_kernel_fid t fid = func_space t fid = Layout.Kernel

let insn_va_of t fid idx = Layout.insn_va (func_space t fid) fid idx

(* Retire-value lookup for operands whose producer already committed. *)
let retired_value t s =
  let slot = s mod cap t in
  if t.retired_seq.(slot) = s then Some t.retired_val.(slot) else None

(* A taint root is an in-flight speculative load that has not yet reached its
   Visibility Point. *)
let root_active t root =
  if root < 0 then false
  else
    let pos = pos_of_seq t root in
    if pos < 0 || pos >= t.count then false
    else
      let e = entry_at t pos in
      e.seq = root && not e.vp_done

let src_info insn =
  (* (dest, src0, src1) register indices, -1 when absent. *)
  match insn with
  | Insn.Nop | Insn.Fence | Insn.Syscall | Insn.Sysret | Insn.Halt | Insn.Ret
  | Insn.Jump _ | Insn.Call _ ->
    (-1, -1, -1)
  | Insn.Limm (rd, _) -> (rd, -1, -1)
  | Insn.Alu (_, rd, r1, r2) -> (rd, r1, r2)
  | Insn.Alui (_, rd, r1, _) -> (rd, r1, -1)
  | Insn.Load (rd, ra, _) -> (rd, ra, -1)
  | Insn.Store (ra, rv, _) -> (-1, ra, rv)
  | Insn.Branch (_, r1, r2, _) -> (-1, r1, r2)
  | Insn.Icall r -> (-1, r, -1)
  | Insn.Flush (ra, _) -> (-1, ra, -1)

let make_entry t fid idx insn =
  let dest, s0, s1 = src_info insn in
  let src_reg = [| s0; s1 |] in
  let src_seq = [| -1; -1 |] in
  let src_val = [| 0; 0 |] in
  for i = 0 to 1 do
    let r = src_reg.(i) in
    if r >= 0 then
      if t.rat.(r) >= 0 then src_seq.(i) <- t.rat.(r) else src_val.(i) <- t.arf.(r)
  done;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let e =
    {
      seq;
      e_fid = fid;
      e_idx = idx;
      va = insn_va_of t fid idx;
      insn;
      kernel = is_kernel_fid t fid;
      dest;
      src_reg;
      src_seq;
      src_val;
      state = Waiting;
      done_at = 0;
      value = 0;
      eff_addr = 0;
      addr_known = false;
      store_val = 0;
      is_ctrl =
        (match insn with Insn.Branch _ | Insn.Icall _ | Insn.Ret -> true | _ -> false);
      pred_taken = false;
      pred_target_va = -1;
      actual_taken = false;
      actual_target_va = -1;
      resolved = false;
      tage_meta = None;
      ghr_snap = 0;
      stack_snap = [];
      depth_snap = 0;
      ret_target = -1;
      ret_depth = 0;
      blocked_src = None;
      spec_at_issue = false;
      vp_done = false;
      taint_root = -1;
      fault = None;
    }
  in
  if dest >= 0 then t.rat.(dest) <- seq;
  t.rob.((t.head + t.count) mod cap t) <- Some e;
  t.count <- t.count + 1;
  (match insn with
  | Insn.Load _ -> t.lq_used <- t.lq_used + 1
  | Insn.Store _ -> t.sq_used <- t.sq_used + 1
  | _ -> ());
  e

let rebuild_rat t =
  Array.fill t.rat 0 (Array.length t.rat) (-1);
  for i = 0 to t.count - 1 do
    let e = entry_at t i in
    if e.dest >= 0 then t.rat.(e.dest) <- e.seq
  done

(* Remove all entries younger than position [pos] (exclusive). *)
let truncate_rob t pos =
  for i = pos + 1 to t.count - 1 do
    let e = entry_at t i in
    (match e.insn with
    | Insn.Load _ -> t.lq_used <- t.lq_used - 1
    | Insn.Store _ -> t.sq_used <- t.sq_used - 1
    | _ -> ());
    t.rob.((t.head + i) mod cap t) <- None
  done;
  let removed = t.count - pos - 1 in
  t.count <- pos + 1;
  t.next_seq <- t.next_seq - removed;
  rebuild_rat t

let redirect_fetch t va delay =
  (match Layout.decode_code_va va with
  | Some (_, fid, idx) -> t.fetch <- Fetching (fid, idx)
  | None -> t.fetch <- Stopped);
  t.fetch_ready_at <- t.now + delay;
  t.last_fetch_line <- -1

(* Resolution of a completed control-flow instruction at ROB position [pos].
   Returns true if younger entries were squashed. *)
let resolve_ctrl t pos e =
  e.resolved <- true;
  let squash target_va restore_stack restore_depth restore_ghr =
    t.ctrs.squashes <- t.ctrs.squashes + 1;
    record_event t Ev_squash ~va:e.va ~seq:e.seq;
    (match t.guard.Guard.notify_squash with
    | Some f -> f ~asid:t.asid
    | None -> ());
    truncate_rob t pos;
    t.dispatch_stack <- restore_stack;
    t.dispatch_depth <- restore_depth;
    t.ghr <- restore_ghr;
    if target_va >= 0 then redirect_fetch t target_va t.cfg.mispredict_penalty
    else t.fetch <- Stopped
  in
  match e.insn with
  | Insn.Branch _ ->
    (match e.tage_meta with
    | Some meta -> Tage.update t.tage ~pc:e.va ~hist:e.ghr_snap meta ~taken:e.actual_taken
    | None -> ());
    if e.actual_taken <> e.pred_taken then begin
      t.ctrs.branch_mispredicts <- t.ctrs.branch_mispredicts + 1;
      let ghr' = (e.ghr_snap lsl 1) lor (if e.actual_taken then 1 else 0) in
      squash e.actual_target_va e.stack_snap e.depth_snap ghr';
      true
    end
    else false
  | Insn.Icall _ ->
    (* Shadow-BTB schemes defer BTB training to commit: a squashed (transient)
       indirect call must leave no predictor state behind. *)
    if e.actual_target_va >= 0 && not t.guard.Guard.shadow_btb then
      Btb.update t.btb e.va e.actual_target_va;
    let stack' = (e.va + Layout.insn_bytes) :: e.stack_snap in
    let depth' = e.depth_snap + 1 in
    if e.pred_target_va = -1 then begin
      (* Fetch was stalled on this instruction: resume, no squash. *)
      (match t.fetch with
      | Stalled_ctrl s when s = e.seq ->
        if e.fault <> None then t.fetch <- Stopped
        else begin
          Ras.push t.ras (e.va + Layout.insn_bytes);
          (* A retpolined indirect call pays for the capture sequence. *)
          redirect_fetch t e.actual_target_va (if t.cfg.retpoline then 24 else 1)
        end
      | Fetching _ | Stalled_ctrl _ | Stalled_serial | Stopped -> ());
      false
    end
    else if e.fault <> None then begin
      squash (-1) stack' depth' t.ghr;
      true
    end
    else if e.actual_target_va <> e.pred_target_va then begin
      t.ctrs.branch_mispredicts <- t.ctrs.branch_mispredicts + 1;
      squash e.actual_target_va stack' depth' t.ghr;
      true
    end
    else false
  | Insn.Ret ->
    let stack' = match e.stack_snap with [] -> [] | _ :: rest -> rest in
    let depth' = max 0 (e.depth_snap - 1) in
    if e.pred_target_va = -1 then begin
      (match t.fetch with
      | Stalled_ctrl s when s = e.seq ->
        if e.fault <> None then t.fetch <- Stopped
        else redirect_fetch t e.actual_target_va 1
      | Fetching _ | Stalled_ctrl _ | Stalled_serial | Stopped -> ());
      false
    end
    else if e.fault <> None then begin
      squash (-1) stack' depth' t.ghr;
      true
    end
    else if e.actual_target_va <> e.pred_target_va then begin
      t.ctrs.branch_mispredicts <- t.ctrs.branch_mispredicts + 1;
      squash e.actual_target_va stack' depth' t.ghr;
      true
    end
    else false
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Completion: turn finished executions into Completed entries and resolve
   control flow, oldest first.                                          *)
(* ------------------------------------------------------------------ *)

let completion_step t =
  let i = ref 0 in
  let stop = ref false in
  while (not !stop) && !i < t.count do
    let e = entry_at t !i in
    if e.state = Issued && e.done_at <= t.now then begin
      e.state <- Completed;
      if e.is_ctrl then if resolve_ctrl t !i e then stop := true
    end;
    incr i
  done

(* ------------------------------------------------------------------ *)
(* Commit                                                               *)
(* ------------------------------------------------------------------ *)

let retire_bookkeeping t e =
  let slot = e.seq mod cap t in
  t.retired_seq.(slot) <- e.seq;
  t.retired_val.(slot) <- e.value;
  if e.dest >= 0 then begin
    t.arf.(e.dest) <- e.value;
    if t.rat.(e.dest) = e.seq then t.rat.(e.dest) <- -1
  end;
  (match e.insn with
  | Insn.Load _ -> t.lq_used <- t.lq_used - 1
  | Insn.Store _ -> t.sq_used <- t.sq_used - 1
  | _ -> ());
  t.rob.(t.head) <- None;
  t.head <- (t.head + 1) mod cap t;
  t.count <- t.count - 1

let commit_step t =
  let budget = ref t.cfg.commit_width in
  let stop = ref false in
  while (not !stop) && !budget > 0 && t.count > 0 && t.run_outcome = None do
    let e = entry_at t 0 in
    if e.state <> Completed then stop := true
    else begin
      decr budget;
      (match e.fault with
      | Some msg -> t.run_outcome <- Some (Fault msg)
      | None -> ());
      if t.run_outcome = None then begin
        t.ctrs.committed <- t.ctrs.committed + 1;
        if e.kernel then t.ctrs.committed_kernel <- t.ctrs.committed_kernel + 1;
        (match t.hooks.on_commit with
        | Some f -> f e.e_fid e.e_idx e.insn
        | None -> ());
        (match e.insn with
        | Insn.Load _ ->
          t.ctrs.committed_loads <- t.ctrs.committed_loads + 1;
          if e.kernel then
            t.ctrs.committed_kernel_loads <- t.ctrs.committed_kernel_loads + 1
        | Insn.Store _ ->
          let key = Layout.phys_key ~asid:t.asid e.eff_addr in
          Mem.store (Memsys.mem t.memsys) key e.store_val;
          Memsys.data_write t.memsys key
        | Insn.Flush _ ->
          Memsys.flush_line t.memsys (Layout.phys_key ~asid:t.asid e.eff_addr)
        | Insn.Call _ ->
          t.commit_stack <- (e.va + Layout.insn_bytes) :: t.commit_stack;
          t.commit_depth <- t.commit_depth + 1
        | Insn.Icall _ ->
          (* Shadow-BTB commit: the predictor learns the indirect target only
             once the call is architecturally real. *)
          if t.guard.Guard.shadow_btb && e.actual_target_va >= 0 then
            Btb.update t.btb e.va e.actual_target_va;
          t.commit_stack <- (e.va + Layout.insn_bytes) :: t.commit_stack;
          t.commit_depth <- t.commit_depth + 1
        | Insn.Ret -> (
          match t.commit_stack with
          | [] -> t.run_outcome <- Some (Fault "ret with empty stack")
          | _ :: rest ->
            t.commit_stack <- rest;
            t.commit_depth <- t.commit_depth - 1)
        | Insn.Syscall -> (
          t.ctrs.syscalls <- t.ctrs.syscalls + 1;
          match t.hooks.on_syscall t.arf with
          | Iss.Stop -> t.run_outcome <- Some Halted
          | Iss.Skip ->
            t.fetch <- Fetching (e.e_fid, e.e_idx + 1);
            t.fetch_ready_at <- t.now + 1;
            t.last_fetch_line <- -1
          | Iss.Redirect (f, assigns) ->
            t.saved_user_regs <- Some (Array.copy t.arf);
            List.iter (fun (r, v) -> t.arf.(r) <- v) assigns;
            t.commit_stack <- (e.va + Layout.insn_bytes) :: t.commit_stack;
            t.commit_depth <- t.commit_depth + 1;
            t.dispatch_stack <- t.commit_stack;
            t.dispatch_depth <- t.commit_depth;
            t.kernel_mode <- true;
            t.fetch <- Fetching (f, 0);
            t.fetch_ready_at <- t.now + t.cfg.kernel_entry_cycles;
            t.last_fetch_line <- -1)
        | Insn.Sysret -> (
          (match t.saved_user_regs with
          | Some saved ->
            Array.blit saved 0 t.arf 0 (Array.length saved);
            t.saved_user_regs <- None
          | None -> ());
          match t.hooks.on_sysret t.arf with
          | Iss.Stop -> t.run_outcome <- Some Halted
          | Iss.Skip | Iss.Redirect _ -> (
            match t.commit_stack with
            | [] -> t.run_outcome <- Some (Fault "sysret with empty stack")
            | rva :: rest ->
              t.commit_stack <- rest;
              t.commit_depth <- t.commit_depth - 1;
              t.dispatch_stack <- t.commit_stack;
              t.dispatch_depth <- t.commit_depth;
              (match Layout.decode_code_va rva with
              | Some (space, _, _) -> t.kernel_mode <- space = Layout.Kernel
              | None -> ());
              redirect_fetch t rva t.cfg.kernel_exit_cycles))
        | Insn.Halt -> t.run_outcome <- Some Halted
        | Insn.Nop | Insn.Limm _ | Insn.Alu _ | Insn.Alui _ | Insn.Branch _
        | Insn.Jump _ | Insn.Fence ->
          ());
        retire_bookkeeping t e
      end
    end
  done

(* ------------------------------------------------------------------ *)
(* Issue                                                                *)
(* ------------------------------------------------------------------ *)

let capture_operand t e i =
  (* Returns true when operand [i] is available (capturing it if needed). *)
  let s = e.src_seq.(i) in
  if s < 0 then true
  else
    let pos = pos_of_seq t s in
    if pos < 0 then (
      match retired_value t s with
      | Some v ->
        e.src_val.(i) <- v;
        e.src_seq.(i) <- -1;
        true
      | None -> false)
    else
      let p = entry_at t pos in
      if p.state = Completed then begin
        e.src_val.(i) <- p.value;
        e.src_seq.(i) <- -1;
        if root_active t p.taint_root then
          e.taint_root <- max e.taint_root p.taint_root;
        true
      end
      else false

let operands_ready t e = capture_operand t e 0 && capture_operand t e 1

let count_fence t src =
  match src with
  | Guard.Isv -> t.ctrs.fences_isv <- t.ctrs.fences_isv + 1
  | Guard.Dsv -> t.ctrs.fences_dsv <- t.ctrs.fences_dsv + 1
  | Guard.Baseline -> t.ctrs.fences_baseline <- t.ctrs.fences_baseline + 1

let issue_load_to_memory t e ~speculative =
  let key = Layout.phys_key ~asid:t.asid e.eff_addr in
  let lat =
    match t.guard.Guard.spec_read with
    | Some f when speculative -> f ~key ~asid:t.asid
    | _ ->
      let lat, _hit = Memsys.data_read t.memsys key in
      lat
  in
  e.value <- Mem.load (Memsys.mem t.memsys) key;
  e.done_at <- t.now + lat;
  e.state <- Issued;
  e.spec_at_issue <- speculative;
  if speculative then begin
    t.ctrs.spec_loads <- t.ctrs.spec_loads + 1;
    e.taint_root <- max e.taint_root e.seq
  end

let issue_step t =
  let budget = ref t.cfg.issue_width in
  let older_unresolved_ctrl = ref false in
  let older_fence_incomplete = ref false in
  let all_older_completed = ref true in
  let older_store_unknown = ref false in
  let store_fwd = ref [] in
  (* (word address, value), youngest first *)
  for i = 0 to t.count - 1 do
    let e = entry_at t i in
    let speculative = !older_unresolved_ctrl in
    (* Visibility point: no older instruction can squash this one. *)
    if
      Insn.is_load e.insn && not e.vp_done
      && (e.state = Issued || e.state = Completed)
      && not speculative
    then begin
      e.vp_done <- true;
      (* Only architecturally-surviving loads reach here, so the dload trace
         is the sequential projection of the D-cache access stream. *)
      if Array.length t.trace_buf > 0 && e.addr_known then
        record_event t
          (Ev_dload (Layout.phys_key ~asid:t.asid e.eff_addr / Layout.line_bytes))
          ~va:e.va ~seq:e.seq;
      match t.guard.Guard.notify_vp with
      | Some f when e.addr_known ->
        f ~insn_va:e.va ~addr:e.eff_addr ~asid:t.asid ~kernel_mode:e.kernel
      | Some _ | None -> ()
    end;
    if e.state = Waiting && !budget > 0 && not !older_fence_incomplete then begin
      match e.insn with
      | Insn.Nop | Insn.Jump _ | Insn.Call _ | Insn.Syscall | Insn.Sysret
      | Insn.Halt ->
        decr budget;
        e.state <- Issued;
        e.done_at <- t.now + 1
      | Insn.Fence ->
        if !all_older_completed then begin
          decr budget;
          e.state <- Issued;
          e.done_at <- t.now + 1
        end
      | Insn.Limm (_, v) ->
        decr budget;
        e.value <- v;
        e.state <- Issued;
        e.done_at <- t.now + 1
      | Insn.Alu (op, _, _, _) ->
        if operands_ready t e then begin
          decr budget;
          e.value <- Insn.eval_binop op e.src_val.(0) e.src_val.(1);
          e.state <- Issued;
          e.done_at <- t.now + 1
        end
      | Insn.Alui (op, _, _, v) ->
        if operands_ready t e then begin
          decr budget;
          e.value <- Insn.eval_binop op e.src_val.(0) v;
          e.state <- Issued;
          e.done_at <- t.now + 1
        end
      | Insn.Branch (c, _, _, tgt) ->
        if operands_ready t e then begin
          decr budget;
          e.actual_taken <- Insn.eval_cond c e.src_val.(0) e.src_val.(1);
          let next_idx = if e.actual_taken then tgt else e.e_idx + 1 in
          e.actual_target_va <- insn_va_of t e.e_fid next_idx;
          e.state <- Issued;
          e.done_at <- t.now + t.cfg.branch_latency
        end
      | Insn.Icall _ ->
        if operands_ready t e then begin
          decr budget;
          let target = e.src_val.(0) in
          (match Layout.decode_code_va target with
          | Some (space, f, _)
            when f < Program.length t.prog && func_space t f = space ->
            e.actual_target_va <- target
          | Some _ | None ->
            e.fault <- Some (Printf.sprintf "icall to invalid VA %#x" target));
          e.state <- Issued;
          e.done_at <- t.now + t.cfg.branch_latency
        end
      | Insn.Ret ->
        decr budget;
        (if e.ret_target < 0 then e.fault <- Some "ret with empty stack"
         else e.actual_target_va <- e.ret_target);
        (* Returning reads the architectural stack: a flushed stack line
           delays resolution, widening the transient window (Spectre-RSB). *)
        let key = ret_stack_va ~asid:t.asid ~depth:e.ret_depth in
        let lat, _ = Memsys.data_read t.memsys key in
        e.state <- Issued;
        e.done_at <- t.now + lat
      | Insn.Flush (_, off) ->
        if operands_ready t e then begin
          decr budget;
          e.eff_addr <- e.src_val.(0) + off;
          e.addr_known <- true;
          e.state <- Issued;
          e.done_at <- t.now + 1
        end
      | Insn.Store (_, _, off) ->
        if operands_ready t e then begin
          decr budget;
          e.eff_addr <- e.src_val.(0) + off;
          e.store_val <- e.src_val.(1);
          e.addr_known <- true;
          e.state <- Issued;
          e.done_at <- t.now + 1
        end
      | Insn.Load (_, _, off) ->
        if operands_ready t e && not !older_store_unknown then begin
          e.eff_addr <- e.src_val.(0) + off;
          e.addr_known <- true;
          let word = e.eff_addr lsr 3 in
          match List.assoc_opt word !store_fwd with
          | Some v ->
            (* Store-to-load forwarding: no cache access. *)
            decr budget;
            e.value <- v;
            e.state <- Issued;
            e.done_at <- t.now + 1;
            e.spec_at_issue <- speculative
          | None ->
            let query =
              {
                Guard.insn_va = e.va;
                fid = e.e_fid;
                addr = e.eff_addr;
                asid = t.asid;
                kernel_mode = t.kernel_mode;
                speculative;
                l1_hit =
                  Memsys.would_hit_l1d t.memsys
                    (Layout.phys_key ~asid:t.asid e.eff_addr);
                tainted = root_active t e.taint_root;
              }
            in
            (match t.guard.Guard.check query with
            | Guard.Allow ->
              decr budget;
              issue_load_to_memory t e ~speculative
            | Guard.Block src ->
              if e.blocked_src = None then begin
                e.blocked_src <- Some src;
                count_fence t src;
                record_event t (Ev_fence src) ~va:e.va ~seq:e.seq
              end)
        end
    end
    else if
      e.state = Waiting && !budget > 0 && e.blocked_src <> None && not speculative
    then begin
      (* A fenced load at its visibility point issues non-speculatively. *)
      decr budget;
      record_event t Ev_vp_release ~va:e.va ~seq:e.seq;
      issue_load_to_memory t e ~speculative:false
    end;
    (* Update running flags with this entry included. *)
    if e.is_ctrl && not e.resolved then older_unresolved_ctrl := true;
    (match e.insn with
    | Insn.Fence when e.state <> Completed -> older_fence_incomplete := true
    | Insn.Store _ ->
      if e.addr_known then store_fwd := (e.eff_addr lsr 3, e.store_val) :: !store_fwd
      else older_store_unknown := true
    | _ -> ());
    if e.state <> Completed then all_older_completed := false
  done

(* ------------------------------------------------------------------ *)
(* Fetch / dispatch                                                     *)
(* ------------------------------------------------------------------ *)

let fetch_step t =
  let budget = ref t.cfg.fetch_width in
  let continue_fetch = ref true in
  while
    !continue_fetch && !budget > 0 && t.count < cap t
    && t.fetch_ready_at <= t.now
  do
    match t.fetch with
    | Stopped | Stalled_ctrl _ | Stalled_serial -> continue_fetch := false
    | Fetching (fid, idx) -> (
      match Program.fetch t.prog fid idx with
      | None ->
        (* Fell off the end of a function body: architectural fault if it
           commits; on a wrong path the squash will discard it. *)
        let e = make_entry t fid idx Insn.Halt in
        e.fault <- Some (Printf.sprintf "fell off function f%d at %d" fid idx);
        e.state <- Issued;
        e.done_at <- t.now + 1;
        t.fetch <- Stopped;
        continue_fetch := false
      | Some insn ->
        let va = insn_va_of t fid idx in
        let line = Layout.line_of (Layout.phys_key ~asid:t.asid va) in
        if line <> t.last_fetch_line then begin
          let lat = Memsys.inst_read t.memsys (Layout.phys_key ~asid:t.asid va) in
          t.last_fetch_line <- line;
          if lat > Cache.latency (Memsys.l1i t.memsys) then begin
            t.fetch_ready_at <- t.now + lat;
            continue_fetch := false
          end
        end;
        if !continue_fetch then begin
          let lq_full = Insn.is_load insn && t.lq_used >= t.cfg.lq_entries in
          let sq_full = Insn.is_store insn && t.sq_used >= t.cfg.sq_entries in
          if lq_full || sq_full then continue_fetch := false
          else begin
            decr budget;
            let e = make_entry t fid idx insn in
            match insn with
            | Insn.Branch (_, _, _, tgt) ->
              let pred, meta = Tage.predict t.tage ~pc:va ~hist:t.ghr in
              e.pred_taken <- pred;
              e.tage_meta <- Some meta;
              e.ghr_snap <- t.ghr;
              e.stack_snap <- t.dispatch_stack;
              e.depth_snap <- t.dispatch_depth;
              e.pred_target_va <- 0;
              t.ghr <- ((t.ghr lsl 1) lor if pred then 1 else 0) land max_int;
              t.fetch <- Fetching (fid, if pred then tgt else idx + 1)
            | Insn.Jump tgt -> t.fetch <- Fetching (fid, tgt)
            | Insn.Call callee ->
              Ras.push t.ras (va + Layout.insn_bytes);
              t.dispatch_stack <- (va + Layout.insn_bytes) :: t.dispatch_stack;
              t.dispatch_depth <- t.dispatch_depth + 1;
              t.fetch <- Fetching (callee, 0)
            | Insn.Icall _ -> (
              e.ghr_snap <- t.ghr;
              e.stack_snap <- t.dispatch_stack;
              e.depth_snap <- t.dispatch_depth;
              t.dispatch_stack <- (va + Layout.insn_bytes) :: t.dispatch_stack;
              t.dispatch_depth <- t.dispatch_depth + 1;
              match (if t.cfg.retpoline then None else Btb.lookup t.btb va) with
              | Some target -> (
                match Layout.decode_code_va target with
                | Some (_, tf, ti) ->
                  e.pred_target_va <- target;
                  Ras.push t.ras (va + Layout.insn_bytes);
                  t.fetch <- Fetching (tf, ti)
                | None ->
                  t.fetch <- Stalled_ctrl e.seq;
                  continue_fetch := false)
              | None ->
                t.fetch <- Stalled_ctrl e.seq;
                continue_fetch := false)
            | Insn.Ret -> (
              e.ghr_snap <- t.ghr;
              e.stack_snap <- t.dispatch_stack;
              e.depth_snap <- t.dispatch_depth;
              e.ret_depth <- t.dispatch_depth;
              (match t.dispatch_stack with
              | [] -> e.ret_target <- -1
              | target :: rest ->
                e.ret_target <- target;
                t.dispatch_stack <- rest;
                t.dispatch_depth <- t.dispatch_depth - 1);
              match Ras.pop t.ras with
              | Some pred_va -> (
                match Layout.decode_code_va pred_va with
                | Some (_, pf, pi) ->
                  e.pred_target_va <- pred_va;
                  t.fetch <- Fetching (pf, pi)
                | None ->
                  t.fetch <- Stalled_ctrl e.seq;
                  continue_fetch := false)
              | None ->
                t.fetch <- Stalled_ctrl e.seq;
                continue_fetch := false)
            | Insn.Syscall | Insn.Sysret | Insn.Halt ->
              t.fetch <- Stalled_serial;
              continue_fetch := false
            | Insn.Nop | Insn.Limm _ | Insn.Alu _ | Insn.Alui _ | Insn.Load _
            | Insn.Store _ | Insn.Fence | Insn.Flush _ ->
              t.fetch <- Fetching (fid, idx + 1)
          end
        end)
  done

(* ------------------------------------------------------------------ *)
(* Top-level run loop                                                   *)
(* ------------------------------------------------------------------ *)

let reset_run_state t ~asid ~start regs =
  Array.fill t.rob 0 (cap t) None;
  Array.fill t.retired_seq 0 (cap t) (-1);
  Array.blit regs 0 t.arf 0 Insn.num_regs;
  Array.fill t.rat 0 Insn.num_regs (-1);
  t.head <- 0;
  t.count <- 0;
  t.next_seq <- 0;
  t.ghr <- 0;
  t.fetch <- Fetching (start, 0);
  t.fetch_ready_at <- 0;
  t.last_fetch_line <- -1;
  t.dispatch_stack <- [];
  t.dispatch_depth <- 0;
  t.commit_stack <- [];
  t.commit_depth <- 0;
  t.lq_used <- 0;
  t.sq_used <- 0;
  t.asid <- asid;
  t.kernel_mode <- is_kernel_fid t start;
  t.run_outcome <- None

(* Charge a zero-commit cycle to one stall class by inspecting the ROB head,
   root cause first: an empty ROB is a fetch stall; a head load parked by the
   guard is a fence stall of that source; a head still executing is memory
   (loads/returns) or execution latency; otherwise back-pressure (ROB/LSQ
   full) and finally the residual [exec] class (e.g. operands in flight), so
   the classes always sum to [stall_total]. *)
let classify_stall t =
  let c = t.ctrs in
  c.stall_total <- c.stall_total + 1;
  if t.count = 0 then c.stall_fetch <- c.stall_fetch + 1
  else begin
    let e = entry_at t 0 in
    match e.blocked_src with
    | Some src when e.state <> Completed -> (
      (* Still blocked at the guard (Waiting), or released at the
         visibility point and now waiting out memory latency the fence
         exposed by delaying the issue (Issued): either way the fence is
         what keeps the head from committing, so it gets the cycle. *)
      match src with
      | Guard.Isv -> c.stall_fence_isv <- c.stall_fence_isv + 1
      | Guard.Dsv -> c.stall_fence_dsv <- c.stall_fence_dsv + 1
      | Guard.Baseline -> c.stall_fence_baseline <- c.stall_fence_baseline + 1)
    | _ ->
      if e.state = Issued then (
        match e.insn with
        | Insn.Load _ | Insn.Ret -> c.stall_dram <- c.stall_dram + 1
        | _ -> c.stall_exec <- c.stall_exec + 1)
      else if t.count = cap t then c.stall_rob_full <- c.stall_rob_full + 1
      else if t.lq_used >= t.cfg.lq_entries || t.sq_used >= t.cfg.sq_entries then
        c.stall_lsq <- c.stall_lsq + 1
      else c.stall_exec <- c.stall_exec + 1
  end

let run ?fuel ?regs ?(hooks = null_hooks) t ~asid ~start =
  let fuel = match fuel with Some f -> f | None -> t.cfg.max_cycles in
  let regs =
    match regs with Some r -> Array.copy r | None -> Array.make Insn.num_regs 0
  in
  reset_run_state t ~asid ~start regs;
  t.hooks <- hooks;
  let start_cycles = t.ctrs.cycles in
  let start_committed = t.ctrs.committed in
  let elapsed () = t.ctrs.cycles - start_cycles in
  while t.run_outcome = None && elapsed () < fuel do
    t.now <- t.now + 1;
    t.ctrs.cycles <- t.ctrs.cycles + 1;
    if t.kernel_mode then t.ctrs.kernel_cycles <- t.ctrs.kernel_cycles + 1;
    completion_step t;
    let committed_before = t.ctrs.committed in
    commit_step t;
    if t.run_outcome = None then begin
      if t.ctrs.committed = committed_before then classify_stall t;
      issue_step t;
      fetch_step t
    end
  done;
  let outcome = match t.run_outcome with Some o -> o | None -> Out_of_fuel in
  {
    outcome;
    cycles = elapsed ();
    committed = t.ctrs.committed - start_committed;
    regs = Array.copy t.arf;
  }
