(* BENCH_<date>.json trajectory entries: see benchjson.mli for the contract.
   The JSON subset used here (objects, arrays, strings, numbers, and nothing
   else) is parsed by a small recursive-descent reader so the repo keeps its
   zero-JSON-dependency rule. *)

type cell = {
  workload : string;
  scheme : string;
  sim_cycles : int;
  committed : int;
  wall_s : float;
  cps : float;
}

type t = {
  schema_version : int;
  date : string;
  label : string;
  scale : float;
  jobs : int;
  cells : cell list;
  total_sim_cycles : int;
  total_wall_s : float;
  agg_cps : float;
}

let schema_version = 1

let cps_of ~sim_cycles ~wall_s =
  if wall_s <= 0.0 then 0.0 else float_of_int sim_cycles /. wall_s

let cell ~workload ~scheme ~sim_cycles ~committed ~wall_s =
  { workload; scheme; sim_cycles; committed; wall_s; cps = cps_of ~sim_cycles ~wall_s }

let make ~date ~label ~scale ~jobs cells =
  let total_sim_cycles = List.fold_left (fun a c -> a + c.sim_cycles) 0 cells in
  let total_wall_s = List.fold_left (fun a c -> a +. c.wall_s) 0.0 cells in
  {
    schema_version;
    date;
    label;
    scale;
    jobs;
    cells;
    total_sim_cycles;
    total_wall_s;
    agg_cps = cps_of ~sim_cycles:total_sim_cycles ~wall_s:total_wall_s;
  }

(* --- emission ----------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_str f = Printf.sprintf "%.6f" f

let cell_to_json c =
  Printf.sprintf
    {|{"workload":"%s","scheme":"%s","sim_cycles":%d,"committed":%d,"wall_s":%s,"cps":%s}|}
    (escape c.workload) (escape c.scheme) c.sim_cycles c.committed
    (float_str c.wall_s) (float_str c.cps)

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"schema_version\": %d,\n" t.schema_version);
  Buffer.add_string buf (Printf.sprintf "  \"date\": \"%s\",\n" (escape t.date));
  Buffer.add_string buf (Printf.sprintf "  \"label\": \"%s\",\n" (escape t.label));
  Buffer.add_string buf (Printf.sprintf "  \"scale\": %s,\n" (float_str t.scale));
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" t.jobs);
  Buffer.add_string buf "  \"cells\": [\n";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf ("    " ^ cell_to_json c))
    t.cells;
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"total_sim_cycles\": %d,\n" t.total_sim_cycles);
  Buffer.add_string buf
    (Printf.sprintf "  \"total_wall_s\": %s,\n" (float_str t.total_wall_s));
  Buffer.add_string buf (Printf.sprintf "  \"agg_cps\": %s\n" (float_str t.agg_cps));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write ~path t =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "bench" ".tmp" in
  let oc = open_out tmp in
  output_string oc (to_json t);
  close_out oc;
  Sys.rename tmp path

(* --- minimal JSON reader ------------------------------------------------ *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "bad \\u escape";
          let code = int_of_string ("0x" ^ String.sub s !pos 4) in
          pos := !pos + 4;
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_char buf '?';
          go ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when numchar c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Jobj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Jobj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Jarr []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        Jarr (elems [])
      end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> Jnum (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- decoding ----------------------------------------------------------- *)

let known_entry_fields =
  [ "schema_version"; "date"; "label"; "scale"; "jobs"; "cells";
    "total_sim_cycles"; "total_wall_s"; "agg_cps" ]

let known_cell_fields =
  [ "workload"; "scheme"; "sim_cycles"; "committed"; "wall_s"; "cps" ]

let get fields name =
  match List.assoc_opt name fields with
  | Some v -> v
  | None -> raise (Bad ("missing field " ^ name))

let as_str name = function
  | Jstr s -> s
  | _ -> raise (Bad (name ^ ": expected string"))

let as_float name = function
  | Jnum f -> f
  | _ -> raise (Bad (name ^ ": expected number"))

let as_int name j =
  let f = as_float name j in
  if Float.is_integer f then int_of_float f
  else raise (Bad (name ^ ": expected integer"))

let reject_unknown ~known ~what fields =
  List.iter
    (fun (k, _) ->
      if not (List.mem k known) then
        raise (Bad (Printf.sprintf "unknown %s field %S" what k)))
    fields

let decode_cell = function
  | Jobj fields ->
    reject_unknown ~known:known_cell_fields ~what:"cell" fields;
    {
      workload = as_str "workload" (get fields "workload");
      scheme = as_str "scheme" (get fields "scheme");
      sim_cycles = as_int "sim_cycles" (get fields "sim_cycles");
      committed = as_int "committed" (get fields "committed");
      wall_s = as_float "wall_s" (get fields "wall_s");
      cps = as_float "cps" (get fields "cps");
    }
  | _ -> raise (Bad "cell: expected object")

let decode = function
  | Jobj fields ->
    reject_unknown ~known:known_entry_fields ~what:"entry" fields;
    let cells =
      match get fields "cells" with
      | Jarr l -> List.map decode_cell l
      | _ -> raise (Bad "cells: expected array")
    in
    {
      schema_version = as_int "schema_version" (get fields "schema_version");
      date = as_str "date" (get fields "date");
      label = as_str "label" (get fields "label");
      scale = as_float "scale" (get fields "scale");
      jobs = as_int "jobs" (get fields "jobs");
      cells;
      total_sim_cycles = as_int "total_sim_cycles" (get fields "total_sim_cycles");
      total_wall_s = as_float "total_wall_s" (get fields "total_wall_s");
      agg_cps = as_float "agg_cps" (get fields "agg_cps");
    }
  | _ -> raise (Bad "entry: expected object")

let parse text =
  match decode (parse_json text) with
  | t -> Ok t
  | exception Bad msg -> Error msg

let load ~path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    text
  with
  | text -> parse text
  | exception Sys_error msg -> Error msg

(* --- validation --------------------------------------------------------- *)

let close_enough a b =
  Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let validate t =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if t.schema_version <> schema_version then
    err "unsupported schema_version %d (want %d)" t.schema_version schema_version
  else if String.length t.date <> 10 then err "date %S is not YYYY-MM-DD" t.date
  else if t.label = "" then err "empty label"
  else if t.cells = [] then err "no cells"
  else if t.jobs < 1 then err "jobs < 1"
  else
    let rec check_cells = function
      | [] -> Ok ()
      | c :: rest ->
        if c.workload = "" || c.scheme = "" then err "cell with empty workload/scheme"
        else if c.sim_cycles < 0 || c.committed < 0 then
          err "%s/%s: negative counters" c.workload c.scheme
        else if c.wall_s < 0.0 then err "%s/%s: negative wall_s" c.workload c.scheme
        else if not (close_enough c.cps (cps_of ~sim_cycles:c.sim_cycles ~wall_s:c.wall_s))
        then err "%s/%s: cps inconsistent with sim_cycles/wall_s" c.workload c.scheme
        else check_cells rest
    in
    match check_cells t.cells with
    | Error _ as e -> e
    | Ok () ->
      let total_cycles = List.fold_left (fun a c -> a + c.sim_cycles) 0 t.cells in
      let total_wall = List.fold_left (fun a c -> a +. c.wall_s) 0.0 t.cells in
      if total_cycles <> t.total_sim_cycles then
        err "total_sim_cycles %d <> sum of cells %d" t.total_sim_cycles total_cycles
      else if not (close_enough total_wall t.total_wall_s) then
        err "total_wall_s inconsistent with cells"
      else if
        not (close_enough t.agg_cps (cps_of ~sim_cycles:total_cycles ~wall_s:total_wall))
      then err "agg_cps inconsistent with totals"
      else Ok ()

(* --- trajectory --------------------------------------------------------- *)

let filename ~date = Printf.sprintf "BENCH_%s.json" date

(* Secondary trajectories (label <> "cycles") carry the label in the
   basename so the families never collide on a date. *)
let filename_for ~label ~date =
  if label = "cycles" then filename ~date
  else Printf.sprintf "BENCH_%s_%s.json" label date

let is_bench_file name =
  String.length name > String.length "BENCH_.json"
  && String.sub name 0 6 = "BENCH_"
  && Filename.check_suffix name ".json"

let latest_in ~dir ?excluding ?label () =
  match Sys.readdir dir with
  | entries ->
    let candidates =
      Array.to_list entries
      |> List.filter (fun name -> is_bench_file name && Some name <> excluding)
      (* Newest first.  Within one label family the basenames share a prefix,
         so lexicographic order is date order; across families the [label]
         filter below decides, never the name comparison. *)
      |> List.sort (fun a b -> String.compare b a)
    in
    let wanted name =
      match label with
      | None -> true
      | Some l -> (
        match load ~path:(Filename.concat dir name) with
        | Ok t -> t.label = l
        | Error _ -> false)
    in
    Option.map (Filename.concat dir) (List.find_opt wanted candidates)
  | exception Sys_error _ -> None

let delta_pct ~prev ~cur =
  if prev.agg_cps <= 0.0 then 0.0
  else (cur.agg_cps /. prev.agg_cps -. 1.0) *. 100.0
