(** The [BENCH_<date>.json] speed-trajectory format.

    Every run of [bench --only cycles] emits one trajectory entry at the
    repository root: a set of pinned (workload x scheme) cells with their
    simulated-cycle counts, wall-clock seconds and derived simulated-cycles
    per wall-second, plus whole-run aggregates.  Successive PRs extend the
    trajectory (one file per date), so a speed regression is a diff against
    the previous committed entry — {!latest_in} finds it, {!delta_pct}
    quantifies it, and the CI guard fails the build past a threshold.

    The format is deliberately self-contained: {!parse} is a minimal JSON
    reader with no external dependency, and {!validate} is the schema check
    CI runs against freshly emitted files. *)

type cell = {
  workload : string;
  scheme : string;  (** defense-scheme label, e.g. "UNSAFE", "PERSPECTIVE" *)
  sim_cycles : int;  (** simulated cycles consumed by the cell's run *)
  committed : int;  (** committed (architectural) instructions *)
  wall_s : float;  (** wall-clock seconds for the cell *)
  cps : float;  (** [sim_cycles /. wall_s]: simulated cycles per second *)
}

type t = {
  schema_version : int;
  date : string;  (** YYYY-MM-DD *)
  label : string;  (** emitting harness, e.g. "cycles" *)
  scale : float;  (** pinned workload scale the cells ran at *)
  jobs : int;
  cells : cell list;
  total_sim_cycles : int;
  total_wall_s : float;
  agg_cps : float;  (** [total_sim_cycles /. total_wall_s] *)
}

val schema_version : int

val make :
  date:string -> label:string -> scale:float -> jobs:int -> cell list -> t
(** Build an entry; totals and aggregate cps are computed from the cells. *)

val cell :
  workload:string -> scheme:string -> sim_cycles:int -> committed:int ->
  wall_s:float -> cell
(** One measured cell; [cps] is derived (0 when [wall_s] is 0). *)

val to_json : t -> string
(** Deterministic rendering (fields in fixed order, [%.6f] walls). *)

val write : path:string -> t -> unit
(** Atomic temp-file + rename write of {!to_json}. *)

val parse : string -> (t, string) result
(** Parse JSON text; [Error] carries a human-readable reason.  Unknown
    fields are rejected — the schema is closed. *)

val load : path:string -> (t, string) result

val validate : t -> (unit, string) result
(** Schema check: supported version, non-empty date/cells, non-negative
    measurements, totals consistent with the cells (1e-6 relative
    tolerance on aggregates). *)

val filename : date:string -> string
(** ["BENCH_<date>.json"] — the primary ("cycles") trajectory. *)

val filename_for : label:string -> date:string -> string
(** {!filename} for label ["cycles"]; ["BENCH_<label>_<date>.json"] for any
    other label, so secondary trajectories (e.g. "pool") never collide with
    the primary one on a date. *)

val is_bench_file : string -> bool
(** Recognizes basenames of trajectory entries ([BENCH_*.json]). *)

val latest_in : dir:string -> ?excluding:string -> ?label:string -> unit -> string option
(** Path of the newest trajectory entry in [dir] (dates sort
    lexicographically within a label family), skipping the basename
    [excluding] — pass the file being emitted to find the {e previous}
    entry.  [label] restricts the search to entries whose parsed [label]
    field matches (unparsable files are skipped); without it every
    trajectory file competes, which is only safe while one label exists.
    [None] when the trajectory is empty. *)

val delta_pct : prev:t -> cur:t -> float
(** Aggregate cycles/sec change in percent, positive = faster than [prev]. *)
