(* FNV-1a 64 and the hex codec, shared by Journal, Rescache and Procpool. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let digest_hex s = Printf.sprintf "%016Lx" (fnv1a64 s)

let hex_of_string s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let string_of_hex h =
  let n = String.length h in
  if n mod 2 <> 0 then None
  else
    let digit c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | _ -> None
    in
    let b = Bytes.create (n / 2) in
    let ok = ref true in
    for i = 0 to (n / 2) - 1 do
      match (digit h.[2 * i], digit h.[(2 * i) + 1]) with
      | Some hi, Some lo -> Bytes.set b i (Char.chr ((hi lsl 4) lor lo))
      | _ -> ok := false
    done;
    if !ok then Some (Bytes.to_string b) else None
