(** FNV-1a 64-bit checksums and the hex codec shared by the persistence
    layer ({!Journal} record framing, {!Rescache} entry digests and payload
    checksums, {!Procpool} wire encoding).

    FNV-1a is not cryptographic; it is an integrity check against torn
    writes, bit rot and truncation, chosen because it is tiny, allocation
    free and byte-for-byte reproducible across platforms — the same reasons
    the result cache already used it for content addressing. *)

val fnv1a64 : string -> int64
(** The FNV-1a 64-bit hash of the bytes of [s]. *)

val digest_hex : string -> string
(** {!fnv1a64} rendered as 16 lowercase hex characters (filename-safe). *)

val hex_of_string : string -> string
(** Lowercase hex encoding of arbitrary bytes (2 chars per byte). *)

val string_of_hex : string -> string option
(** Inverse of {!hex_of_string}; [None] on odd length or a non-hex digit. *)
