(* Deterministic fault injection: a pure decision function from
   (plan, job index, attempt) to an optional misbehaviour.  Decisions never
   depend on execution order, domain ids or time, so an injected fault
   pattern is reproducible for every worker count. *)

type kind = Crash | Slow | Poison | Livelock | Kill

exception Crashed of { index : int; attempt : int }
exception Poisoned of { index : int; attempt : int }
exception Killed of { index : int; attempt : int }

let () =
  Printexc.register_printer (function
    | Crashed { index; attempt } ->
      Some (Printf.sprintf "injected crash (job %d, attempt %d)" index attempt)
    | Poisoned { index; attempt } ->
      Some (Printf.sprintf "injected poisoned result (job %d, attempt %d)" index attempt)
    | Killed { index; attempt } ->
      Some (Printf.sprintf "injected worker kill (job %d, attempt %d)" index attempt)
    | _ -> None)

type spec = { index : int; kind : kind; first_attempts : int }

type t =
  | None_
  | Plan of spec list
  | Seeded of {
      seed : int;
      crash : float;
      slow : float;
      poison : float;
      livelock : float;
      transient_attempts : int;
    }

let none = None_
let is_none = function None_ -> true | Plan _ | Seeded _ -> false
let always = max_int
let plan specs = if specs = [] then None_ else Plan specs

let seeded ~seed ?(crash = 0.0) ?(slow = 0.0) ?(poison = 0.0) ?(livelock = 0.0)
    ?(transient_attempts = 1) () =
  Seeded { seed; crash; slow; poison; livelock; transient_attempts }

let decide t ~index ~attempt =
  match t with
  | None_ -> None
  | Plan specs ->
    List.find_map
      (fun s -> if s.index = index && attempt < s.first_attempts then Some s.kind else None)
      specs
  | Seeded { seed; crash; slow; poison; livelock; transient_attempts } ->
    (* One SplitMix64 stream per job index; draws consumed in a fixed order
       so adding a probability never reshuffles the others' decisions. *)
    let rng = Rng.create (seed lxor (index * 0x9E3779B9) lxor 0x5DEECE66D) in
    let p_live = Rng.chance rng livelock in
    let p_crash = Rng.chance rng crash in
    let p_slow = Rng.chance rng slow in
    let p_poison = Rng.chance rng poison in
    if p_live then Some Livelock
    else if p_crash && attempt < transient_attempts then Some Crash
    else if p_slow then Some Slow
    else if p_poison then Some Poison
    else None

let spin () =
  for _ = 1 to 200_000 do
    Domain.cpu_relax ()
  done
