(** Deterministic fault injection for the supervised experiment runner.

    A fault plan decides, purely from a job's {e index} in its batch (and the
    attempt number), whether that job should misbehave — and how.  Because the
    decision is a pure function of [(plan, index, attempt)], the injected
    failure pattern is identical for every worker count and every execution
    order: the supervisor's retry and degradation paths can be exercised by
    ordinary deterministic tests instead of being believed.

    Kinds of misbehaviour:

    - {b Crash} — the job raises {!Crashed} instead of running.  Classified
      transient by {!Pool.map_results}' default policy, so bounded retry
      applies; a plan can make the crash stop after N attempts (a flaky job
      that succeeds on retry) or persist forever (a truly dead job).
    - {b Slow} — the job busy-spins for a while before running normally.
      Exercises the pool's tolerance of stragglers without changing results.
    - {b Poison} — the job runs to completion but its result is discarded and
      {!Poisoned} is raised: a simulation that terminates with garbage output
      that validation rejects.  Classified permanent (retrying a
      deterministic job cannot un-corrupt it).
    - {b Livelock} — the job's simulation never terminates on its own.  The
      pool cannot fake this one; the supervisor implements it by starving the
      job's cycle fuel so the {!Pv_uarch.Pipeline} watchdog fires and the run
      ends in a structured timeout.
    - {b Kill} — process-level death.  Under the multi-process runner
      ([--workers N]) the worker assigned the job writes a deliberately torn
      journal record and SIGKILLs itself mid-cell, exercising the
      coordinator's respawn and the journal's torn-write recovery; the
      coordinator reports the lost attempt as {!Killed} (transient, so the
      respawned worker retries).  Under the in-process pool, [Kill] degrades
      to the same behaviour as [Crash] but raising {!Killed} — an OCaml
      domain cannot be SIGKILLed individually. *)

type kind = Crash | Slow | Poison | Livelock | Kill

exception Crashed of { index : int; attempt : int }
(** Raised (by the pool) in place of running a [Crash]-faulted job. *)

exception Poisoned of { index : int; attempt : int }
(** Raised (by the pool) after running a [Poison]-faulted job. *)

exception Killed of { index : int; attempt : int }
(** Raised (by the pool or coordinator) for a [Kill]-faulted job's lost
    attempt. *)

type t
(** An immutable fault plan.  Consulted, never mutated: sharing one plan
    across domains is safe. *)

val none : t
(** The empty plan: no job ever misbehaves. *)

val is_none : t -> bool

type spec = { index : int; kind : kind; first_attempts : int }
(** One planned fault: job [index] suffers [kind] while its attempt number is
    [< first_attempts].  [first_attempts = max_int] (see {!always}) makes the
    fault persistent; [1] makes it flaky — it fails once and succeeds on
    retry. *)

val always : int
(** [max_int]: a [first_attempts] value meaning "every attempt". *)

val plan : spec list -> t
(** Explicit per-index faults; indices not listed behave normally. *)

val seeded :
  seed:int ->
  ?crash:float ->
  ?slow:float ->
  ?poison:float ->
  ?livelock:float ->
  ?transient_attempts:int ->
  unit ->
  t
(** Probabilistic plan: each job index draws independently (SplitMix64 keyed
    on [seed] and the index) whether it is livelocked, crashed, slowed or
    poisoned, with the given probabilities (all default [0.0]).  Crashes
    apply only while [attempt < transient_attempts] (default [1], i.e. flaky:
    one failure, then success), the other kinds are attempt-independent.
    Equal seeds give equal fault patterns on any worker count. *)

val decide : t -> index:int -> attempt:int -> kind option
(** The pure decision function. *)

val spin : unit -> unit
(** The [Slow] payload: a fixed busy-wait (no sleeping, so a slowed job still
    makes progress and cannot wedge a shutdown). *)
