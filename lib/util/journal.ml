(* Append-only journal of marshalled (key, value) records.  Each append is
   one Marshal block followed by a flush, so the file is always a valid
   prefix of records plus at most one torn tail; load stops at the tear,
   and open_writer truncates the tear away before appending — otherwise the
   new records would land after unreadable bytes and be lost to every
   subsequent load. *)

type writer = { ch : out_channel; lock : Mutex.t }

(* Records in write order plus the byte length of the clean prefix (the
   offset just past the last record that unmarshals). *)
let load_clean path =
  if not (Sys.file_exists path) then ([], 0)
  else begin
    let ic = open_in_bin path in
    let rec go acc clean =
      match (Marshal.from_channel ic : string * _) with
      | kv -> go (kv :: acc) (pos_in ic)
      | exception (End_of_file | Failure _) ->
        (* clean EOF, or a record torn by a mid-write kill: keep the prefix *)
        (List.rev acc, clean)
    in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> go [] 0)
  end

let open_writer path =
  let _, clean = load_clean path in
  if Sys.file_exists path && (Unix.stat path).Unix.st_size > clean then
    Unix.truncate path clean;
  let ch = open_out_gen [ Open_wronly; Open_creat; Open_binary ] 0o644 path in
  seek_out ch clean;
  { ch; lock = Mutex.create () }

let append w ~key v =
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      Marshal.to_channel w.ch (key, v) [];
      flush w.ch)

let close w =
  Mutex.lock w.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock w.lock) (fun () -> close_out w.ch)

let load path = fst (load_clean path)

type resume_status = Missing | Unusable of string | Usable of int

let resume_status path =
  match Unix.stat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Missing
  | exception Unix.Unix_error (err, _, _) -> Unusable (Unix.error_message err)
  | st ->
    if st.Unix.st_size = 0 then Unusable "checkpoint file is empty"
    else begin
      match load_clean path with
      | [], _ -> Unusable "checkpoint contains no complete record (fully torn?)"
      | records, _ -> Usable (List.length records)
      | exception Sys_error msg -> Unusable msg
    end

let load_table path =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) (load path);
  tbl
