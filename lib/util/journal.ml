(* Append-only journal of marshalled (key, value) records.  Each append is
   one Marshal block followed by a flush, so the file is always a valid
   prefix of records plus at most one torn tail; load stops at the tear. *)

type writer = { ch : out_channel; lock : Mutex.t }

let open_writer path =
  let ch = open_out_gen [ Open_wronly; Open_creat; Open_append; Open_binary ] 0o644 path in
  { ch; lock = Mutex.create () }

let append w ~key v =
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      Marshal.to_channel w.ch (key, v) [];
      flush w.ch)

let close w =
  Mutex.lock w.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock w.lock) (fun () -> close_out w.ch)

let load path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let rec go acc =
      match (Marshal.from_channel ic : string * _) with
      | kv -> go (kv :: acc)
      | exception (End_of_file | Failure _) ->
        (* clean EOF, or a record torn by a mid-write kill: keep the prefix *)
        List.rev acc
    in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> go [])
  end

let load_table path =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) (load path);
  tbl
