(* Append-only journal of checksummed (key, value) records — the FSCQ-style
   framing: a file-level magic header, then one frame per record of

       length (4 bytes LE) | FNV-1a 64 of payload (8 bytes LE) | payload

   where payload is one Marshal block of [(key, value)].  Recovery trusts
   exactly the checksummed prefix: scanning stops at the first frame whose
   header is short, whose length is implausible, whose payload is short, or
   whose checksum does not match — everything from that point on is
   quarantined (copied to <path>.quarantine by the next writer, never
   parsed).  This is strictly stronger than the PR 2/3 format, which could
   only detect a torn *tail* (Marshal parse failure) and would silently
   accept a bit-flip that still unmarshalled. *)

let magic = "pvjrnl2\n"
let magic_len = String.length magic

(* Sanity bound on the length field: a frame larger than this is damage
   (a flipped high bit), not a record. *)
let max_record = 1 lsl 28

exception Incompatible of string

let () =
  Printexc.register_printer (function
    | Incompatible msg -> Some (Printf.sprintf "incompatible journal: %s" msg)
    | _ -> None)

type writer = { ch : out_channel; lock : Mutex.t; path : string }

let frame ~key v =
  let payload = Marshal.to_string (key, v) [] in
  let n = String.length payload in
  let b = Bytes.create (12 + n) in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.set_int64_le b 4 (Checksum.fnv1a64 payload);
  Bytes.blit_string payload 0 b 12 n;
  Bytes.unsafe_to_string b

(* The old (PR 2..6) format was a bare sequence of Marshal blocks; its first
   bytes are OCaml's marshal magic.  Recognizing it turns "garbage" into a
   one-line migration diagnostic. *)
let looks_marshalled body =
  String.length body >= 3
  && body.[0] = '\x84' && body.[1] = '\x95' && body.[2] = '\xa6'

type 'a scanned = {
  s_records : (string * 'a) list;  (** verified records, in write order *)
  s_clean : int;  (** byte offset just past the last verified record *)
  s_body : string;  (** the raw file bytes *)
}

(* Scan the whole file, verifying every frame.  Raises [Incompatible] when
   the file is not a checksummed journal at all (wrong or missing magic on a
   file big enough to carry one); a file shorter than the magic is treated
   as a fully torn journal (clean prefix of zero records). *)
let scan path : _ scanned =
  if not (Sys.file_exists path) then { s_records = []; s_clean = 0; s_body = "" }
  else begin
    let body =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let len = String.length body in
    if len = 0 then { s_records = []; s_clean = 0; s_body = body }
    else if len < magic_len then
      (* a kill during the very first header write *)
      { s_records = []; s_clean = 0; s_body = body }
    else if String.sub body 0 magic_len <> magic then
      raise
        (Incompatible
           (if looks_marshalled body then
              Printf.sprintf
                "%S uses the pre-checksum journal format (bare Marshal records); \
                 it cannot be resumed safely — delete it and re-run"
                path
            else Printf.sprintf "%S is not a journal (missing %S header)" path magic))
    else begin
      let rec go acc off =
        if off + 12 > len then (List.rev acc, off)
        else
          let n = Int32.to_int (String.get_int32_le body off) in
          if n < 0 || n > max_record || off + 12 + n > len then (List.rev acc, off)
          else
            let payload = String.sub body (off + 12) n in
            if Checksum.fnv1a64 payload <> String.get_int64_le body (off + 4) then
              (List.rev acc, off)
            else
              match (Marshal.from_string payload 0 : string * _) with
              | kv -> go (kv :: acc) (off + 12 + n)
              | exception _ ->
                (* checksum ok but unparseable: a writer bug, not damage —
                   still never trusted *)
                (List.rev acc, off)
      in
      let records, clean = go [] magic_len in
      { s_records = records; s_clean = clean; s_body = body }
    end
  end

let quarantine_path path = path ^ ".quarantine"

let open_writer path =
  let { s_clean; s_body; _ } = scan path in
  let size = String.length s_body in
  (* Quarantine, then truncate away, everything after the checksummed
     prefix: the bytes are preserved for post-mortems but will never be
     parsed, and appends land on a frame boundary. *)
  let clean = if s_clean < magic_len then 0 else s_clean in
  if size > clean then begin
    (try
       let oc = open_out_bin (quarantine_path path) in
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () -> output_string oc (String.sub s_body clean (size - clean)))
     with Sys_error _ -> ());
    Unix.truncate path clean
  end;
  let ch = open_out_gen [ Open_wronly; Open_creat; Open_binary ] 0o644 path in
  seek_out ch clean;
  if clean = 0 then begin
    output_string ch magic;
    flush ch
  end;
  { ch; lock = Mutex.create (); path }

let append w ~key v =
  let fr = frame ~key v in
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      output_string w.ch fr;
      flush w.ch)

let append_torn w ~key v =
  let fr = frame ~key v in
  let cut = 12 + ((String.length fr - 12) / 2) in
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      output_string w.ch (String.sub fr 0 cut);
      flush w.ch)

let merge_into w src =
  match scan src with
  | { s_records = []; _ } -> 0
  | { s_records; s_clean; s_body } ->
    (* Raw frame copy of the verified prefix: no re-marshalling, so the
       merged bytes are exactly the worker's committed bytes. *)
    let frames = String.sub s_body magic_len (s_clean - magic_len) in
    Mutex.lock w.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock w.lock)
      (fun () ->
        output_string w.ch frames;
        flush w.ch);
    List.length s_records

let close w =
  Mutex.lock w.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock w.lock) (fun () -> close_out w.ch)

let path w = w.path

let load p = (scan p).s_records

let load_table p =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) (load p);
  tbl

type resume_status =
  | Missing
  | Unusable of string
  | Usable of { records : int; distinct : int }

let resume_status path =
  match Unix.stat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Missing
  | exception Unix.Unix_error (err, _, _) -> Unusable (Unix.error_message err)
  | st ->
    if st.Unix.st_size = 0 then Unusable "checkpoint file is empty"
    else begin
      match scan path with
      | { s_records = []; _ } ->
        Unusable "checkpoint contains no complete record (fully torn?)"
      | { s_records; _ } ->
        let keys = List.map fst s_records in
        Usable
          {
            records = List.length keys;
            distinct = List.length (List.sort_uniq compare keys);
          }
      | exception Incompatible msg -> Unusable msg
      | exception Sys_error msg -> Unusable msg
    end
