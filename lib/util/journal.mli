(** Append-only checkpoint journal for experiment sweeps.

    A journal is a sequence of marshalled [(key, value)] records.  The
    supervised runner appends one record per completed sweep cell (from
    whichever domain ran it — {!append} is thread-safe and flushes), so a
    crashed or interrupted sweep can be resumed: {!load} returns every record
    whose bytes made it to disk, and a torn trailing record — the signature
    of a mid-write kill — is silently dropped.

    {b Type safety.} Values go through [Marshal] untyped, exactly like any
    on-disk cache; a journal must only ever be read back at the type it was
    written with.  The supervised runner guarantees this by prefixing every
    key with its sweep family (["lebench/..."], ["speedup/..."]) and keeping
    one value type per family. *)

type writer

val open_writer : string -> writer
(** Open (creating if needed) for append.  Existing complete records are
    kept — the caller decides whether an old journal is a resume source or
    stale (the CLI removes the file when starting a fresh checkpointed
    sweep) — but a torn trailing record left by a mid-write kill is
    truncated away first, so records appended after a resume stay readable
    instead of landing behind unreadable bytes. *)

val append : writer -> key:string -> 'a -> unit
(** Append one record and flush.  Safe to call from multiple domains. *)

val close : writer -> unit

val load : string -> (string * 'a) list
(** All complete records, in write order; [[]] if the file does not exist.
    Duplicate keys are possible (a cell re-run after a resume); later records
    supersede earlier ones. *)

val load_table : string -> (string, 'a) Hashtbl.t
(** {!load} into a last-wins table. *)

(** Pre-flight classification of a journal named as a resume source, so the
    CLI can print one diagnostic line instead of resuming from nothing (or
    surfacing an exception).  [Usable n] means [n] complete records are
    available; [Missing] the file does not exist; [Unusable] it exists but
    holds no complete record (zero bytes, or a single fully-torn record) or
    cannot be read. *)
type resume_status = Missing | Unusable of string | Usable of int

val resume_status : string -> resume_status
