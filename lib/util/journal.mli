(** Append-only, checksummed checkpoint journal for experiment sweeps.

    A journal is a magic header ([pvjrnl2] + newline) followed by framed
    records: each frame is a 4-byte little-endian payload length, an 8-byte
    little-endian FNV-1a 64 checksum of the payload, and the payload itself
    (one marshalled [(key, value)] pair).  The supervised runner appends one
    record per completed sweep cell (from whichever domain ran it —
    {!append} is thread-safe and flushes), so a crashed or interrupted sweep
    can be resumed.

    {b Crash-consistency model (FSCQ-style).}  Recovery replays exactly the
    checksummed prefix: {!load} and {!open_writer} verify every frame in
    order and stop at the first frame that is short, has an implausible
    length, or whose checksum does not match.  Everything after that point
    is untrusted — {!open_writer} copies it to [<path>.quarantine] for
    post-mortems and truncates it away, so appends after a resume always
    land on a frame boundary.  This catches not only torn tails (mid-write
    kills) but mid-file bit-flips, which the pre-checksum format would have
    silently accepted.

    {b Migration.}  Journals written before the checksummed format (bare
    concatenated Marshal blocks) are detected by their leading Marshal magic
    and rejected with {!Incompatible} rather than misparsed; the CLI turns
    this into a one-line diagnostic and exit code 2.

    {b Type safety.} Values go through [Marshal] untyped, exactly like any
    on-disk cache; a journal must only ever be read back at the type it was
    written with.  The supervised runner guarantees this by prefixing every
    key with its sweep family (["lebench/..."], ["speedup/..."]) and keeping
    one value type per family. *)

exception Incompatible of string
(** The file exists and is large enough to carry a header, but does not
    start with the journal magic — it is some other format (notably the
    pre-checksum journal format) and must not be parsed. *)

val magic : string
(** The 8-byte file header ["pvjrnl2\n"]. *)

type writer

val open_writer : string -> writer
(** Open (creating if needed) for append.  Existing verified records are
    kept — the caller decides whether an old journal is a resume source or
    stale (the CLI removes the file when starting a fresh checkpointed
    sweep) — but everything after the first bad frame is quarantined to
    [<path>.quarantine] and truncated away first.  Raises {!Incompatible}
    on a non-journal file. *)

val append : writer -> key:string -> 'a -> unit
(** Append one record and flush.  Safe to call from multiple domains. *)

val append_torn : writer -> key:string -> 'a -> unit
(** Deliberately write only a prefix of the record's frame (header plus
    half the payload) and flush.  This is a fault-injection aid: it leaves
    the journal in exactly the state a mid-append SIGKILL would, so kill
    injection and the recovery tests exercise the real torn-write path.  The
    writer must not be used again afterwards. *)

val merge_into : writer -> string -> int
(** [merge_into w src] appends every verified record of the journal file
    [src] to [w] as a raw frame copy (no re-marshalling) and returns how
    many records were merged; [0] if [src] does not exist or holds no
    complete record.  Used by the multi-process coordinator to fold worker
    journals into the user-visible checkpoint.  Raises {!Incompatible} if
    [src] is a foreign format. *)

val close : writer -> unit

val path : writer -> string
(** The file this writer appends to. *)

val load : string -> (string * 'a) list
(** All verified records, in write order; [[]] if the file does not exist.
    Duplicate keys are possible (a cell re-run after a resume); later records
    supersede earlier ones.  Raises {!Incompatible} on a foreign format. *)

val load_table : string -> (string, 'a) Hashtbl.t
(** {!load} into a last-wins table. *)

(** Pre-flight classification of a journal named as a resume source, so the
    CLI can print one diagnostic line instead of resuming from nothing (or
    surfacing an exception).  [Usable] reports both the verified record
    count and the number of distinct keys — the latter is what a resumed
    sweep will actually skip (duplicate keys arise when a cell re-ran after
    an earlier resume).  [Missing]: the file does not exist.  [Unusable]:
    it exists but holds no complete record, cannot be read, or is a foreign
    format (including the pre-checksum journal format). *)
type resume_status =
  | Missing
  | Unusable of string
  | Usable of { records : int; distinct : int }

val resume_status : string -> resume_status
