(* Typed metric registry.  See metrics.mli for the contract; the key design
   constraint is determinism: snapshots are name-sorted and floats render
   through a fixed round-trip format, so exported JSON is byte-identical
   for any -j. *)

let nbuckets = 32

type hist_state = { counts : int array; mutable total : int; mutable sum : int }

type instrument =
  | I_int of int ref
  | I_float of float ref
  | I_hist of hist_state

type value =
  | Int of int
  | Float of float
  | Hist of { counts : int array; total : int; sum : int }

type snapshot = (string * value) list

type t = { tbl : (string, instrument) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let type_conflict name =
  invalid_arg (Printf.sprintf "Metrics: %S already registered with another type" name)

let int_ref t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_int r) -> r
  | Some _ -> type_conflict name
  | None ->
      let r = ref 0 in
      Hashtbl.replace t.tbl name (I_int r);
      r

let incr ?(by = 1) t name =
  let r = int_ref t name in
  r := !r + by

let set_int t name v = int_ref t name := v

let set_float t name v =
  if not (Float.is_finite v) then
    invalid_arg (Printf.sprintf "Metrics: %S set to a non-finite float" name);
  match Hashtbl.find_opt t.tbl name with
  | Some (I_float r) -> r := v
  | Some _ -> type_conflict name
  | None -> Hashtbl.replace t.tbl name (I_float (ref v))

(* Bucket 0: v <= 0.  Bucket i >= 1: 2^(i-1) <= v <= 2^i - 1, i.e. i is the
   bit-length of v; the last bucket absorbs the overflow.  Computed in O(1)
   via a byte-wide bit-length table: values of 25+ bits all land in the
   overflow bucket (nbuckets = 32), so three shifts cover the whole range. *)
let msb8 =
  Array.init 256 (fun i ->
      let bits = ref 0 and x = ref i in
      while !x > 0 do
        bits := !bits + 1;
        x := !x lsr 1
      done;
      !bits)

let bucket_of v =
  if v <= 0 then 0
  else if v lsr 8 = 0 then Array.unsafe_get msb8 v
  else if v lsr 16 = 0 then 8 + Array.unsafe_get msb8 (v lsr 8)
  else if v lsr 24 = 0 then 16 + Array.unsafe_get msb8 (v lsr 16)
  else if v lsr 31 = 0 then 24 + Array.unsafe_get msb8 (v lsr 24)
  else nbuckets - 1

let bucket_lo i =
  if i <= 0 then min_int
  else 1 lsl (i - 1)

let hist_state t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (I_hist h) -> h
  | Some _ -> type_conflict name
  | None ->
      let h = { counts = Array.make nbuckets 0; total = 0; sum = 0 } in
      Hashtbl.replace t.tbl name (I_hist h);
      h

type hist = hist_state

let hist = hist_state

let hist_observe h v =
  let b = bucket_of v in
  Array.unsafe_set h.counts b (Array.unsafe_get h.counts b + 1);
  h.total <- h.total + 1;
  h.sum <- h.sum + v

let observe t name v = hist_observe (hist_state t name) v

let declare_hist t name = ignore (hist_state t name)

let snapshot t =
  Hashtbl.fold
    (fun name ins acc ->
      let v =
        match ins with
        | I_int r -> Int !r
        | I_float r -> Float !r
        | I_hist h -> Hist { counts = Array.copy h.counts; total = h.total; sum = h.sum }
      in
      (name, v) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find snap name = List.assoc_opt name snap

(* %.17g round-trips any finite double and maps equal doubles to equal
   strings, which is all the determinism contract needs. *)
let float_to_json f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let value_to_json = function
  | Int n -> string_of_int n
  | Float f -> float_to_json f
  | Hist { counts; total; sum } ->
      let buf = Buffer.create 128 in
      Buffer.add_string buf "{\"buckets\":[";
      Array.iteri
        (fun i c ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int c))
        counts;
      Buffer.add_string buf (Printf.sprintf "],\"total\":%d,\"sum\":%d}" total sum);
      Buffer.contents buf

let json_escape name =
  (* Metric names are plain dotted identifiers, but render defensively. *)
  let buf = Buffer.create (String.length name + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    name;
  Buffer.contents buf

let snapshot_to_json ?(indent = 2) snap =
  let pad = String.make indent ' ' in
  let close_pad = String.make (max 0 (indent - 2)) ' ' in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf pad;
      Buffer.add_string buf (Printf.sprintf "\"%s\": %s" (json_escape name) (value_to_json v)))
    snap;
  Buffer.add_char buf '\n';
  Buffer.add_string buf close_pad;
  Buffer.add_char buf '}';
  Buffer.contents buf
