(** Typed metric registry: the uniform collection point for the simulator's
    counters, gauges and histograms.

    Components register values under hierarchical dotted names
    ([pipeline.fences.dsv], [svcache.isv.hit_rate],
    [slab.secure.frag_bytes]); a registry is snapshot-able as plain data and
    renders to JSON deterministically, so exported metrics obey the repo's
    byte-identity contract: for a fixed workload the snapshot (and its JSON)
    is identical for any [-j], because nothing in here reads the clock or
    the scheduler.

    Histograms use fixed log2 buckets: bucket 0 counts observations [<= 0],
    bucket [i >= 1] counts observations in [[2^(i-1), 2^i - 1]], and the
    last bucket absorbs everything larger.  The edges are compile-time
    constants so two registries always agree on shape. *)

type t

(** A snapshot value.  [Hist] carries the raw bucket counts (length
    {!nbuckets}), the observation count and the running sum. *)
type value =
  | Int of int
  | Float of float
  | Hist of { counts : int array; total : int; sum : int }

(** Snapshots are sorted by metric name (ascending, [String.compare]). *)
type snapshot = (string * value) list

val create : unit -> t

(** [incr ?by t name] bumps the integer counter [name] (creating it at 0).
    @raise Invalid_argument if [name] exists with a non-integer type. *)
val incr : ?by:int -> t -> string -> unit

(** [set_int t name v] sets the integer gauge [name].
    @raise Invalid_argument on a type conflict. *)
val set_int : t -> string -> int -> unit

(** [set_float t name v] sets the float gauge [name].
    @raise Invalid_argument on a type conflict or a non-finite [v] (NaN and
    infinities have no deterministic JSON rendering). *)
val set_float : t -> string -> float -> unit

(** [observe t name v] records [v] into the log2 histogram [name]
    (creating it empty).
    @raise Invalid_argument on a type conflict. *)
val observe : t -> string -> int -> unit

(** A resolved histogram handle: the name lookup done once.  Observing
    through a handle is O(1) and allocation-free — one table-lookup bucket
    computation and three in-place updates — so it is safe on simulation
    hot paths that record per-event latencies. *)
type hist

(** [hist t name] resolves (creating if needed) the histogram [name].
    Snapshots see observations made through the handle and through
    {!observe} identically.
    @raise Invalid_argument on a type conflict. *)
val hist : t -> string -> hist

(** [hist_observe h v] records [v] into [h]'s histogram. *)
val hist_observe : hist -> int -> unit

(** [declare_hist t name] ensures the histogram [name] exists (possibly
    empty), so a snapshot's key set does not depend on whether any
    observation happened. *)
val declare_hist : t -> string -> unit

(** Number of log2 buckets (fixed). *)
val nbuckets : int

(** [bucket_of v] is the index of the bucket [v] falls into. *)
val bucket_of : int -> int

(** [bucket_lo i] is the smallest value counted by bucket [i]
    (for rendering bucket edges). *)
val bucket_lo : int -> int

(** Name-sorted snapshot of the registry. *)
val snapshot : t -> snapshot

val find : snapshot -> string -> value option

(** Deterministic JSON rendering of one value (single line, no spaces
    inside histograms). *)
val value_to_json : value -> string

(** [snapshot_to_json ~indent snap] renders the snapshot as a JSON object,
    one ["name": value] member per line, each line prefixed by [indent]
    spaces; the closing brace is indented by [indent - 2].  Keys come out
    in snapshot (i.e. name) order, so the bytes are deterministic. *)
val snapshot_to_json : ?indent:int -> snapshot -> string
