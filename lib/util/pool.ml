(* Domain pool with an ordered job/result protocol.

   Jobs are closures pushed onto a mutex-protected queue; workers (and the
   calling domain, during [map]) pop and run them.  Each job writes its
   result into a dedicated slot of a per-[map] results array, so completion
   order never influences result order.  Exceptions are captured per slot
   and re-raised — lowest job index first — only after every job of the
   batch has finished, which makes failure behaviour independent of the
   worker count. *)

type job = unit -> unit

type t = {
  size : int;
  lock : Mutex.t;
  work : Condition.t;  (* signalled when jobs arrive, a batch drains, or on shutdown *)
  pending : job Queue.t;
  mutable closed : bool;
  mutable domains : unit Domain.t array;
}

let default_jobs () = Domain.recommended_domain_count ()

let rec worker_loop t =
  Mutex.lock t.lock;
  let rec next () =
    if not (Queue.is_empty t.pending) then Some (Queue.pop t.pending)
    else if t.closed then None
    else begin
      Condition.wait t.work t.lock;
      next ()
    end
  in
  match next () with
  | None -> Mutex.unlock t.lock
  | Some job ->
    Mutex.unlock t.lock;
    (* A job may never kill its domain: [map]'s jobs capture their own
       exceptions, but a raw [submit]ed closure might not — swallowing here
       keeps the domain serving the queue instead of dying silently and
       deadlocking a later batch. *)
    (try job () with _ -> ());
    worker_loop t

let create ~jobs =
  let size = max 1 jobs in
  let t =
    {
      size;
      lock = Mutex.create ();
      work = Condition.create ();
      pending = Queue.create ();
      closed = false;
      domains = [||];
    }
  in
  t.domains <- Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.size

type 'b slot = Empty | Ok_r of 'b | Error_r of exn * Printexc.raw_backtrace

let map t f xs =
  if t.closed then invalid_arg "Pool.map: pool is shut down";
  match xs with
  | [] -> []
  | _ when t.size = 1 -> List.map f xs (* the exact serial path *)
  | xs ->
    let items = Array.of_list xs in
    let n = Array.length items in
    let results = Array.make n Empty in
    let remaining = Atomic.make n in
    let job i () =
      (results.(i) <-
        (try Ok_r (f items.(i))
         with e -> Error_r (e, Printexc.get_raw_backtrace ())));
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        (* Last job of the batch: wake the caller if it is waiting. *)
        Mutex.lock t.lock;
        Condition.broadcast t.work;
        Mutex.unlock t.lock
      end
    in
    Mutex.lock t.lock;
    for i = 0 to n - 1 do
      Queue.push (job i) t.pending
    done;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    (* The caller helps drain the queue.  The swallow guard matters for raw
       [submit]ted closures still queued ahead of this batch: [map]'s own
       jobs capture their exceptions in their slot and never raise here. *)
    let rec help () =
      Mutex.lock t.lock;
      let j = if Queue.is_empty t.pending then None else Some (Queue.pop t.pending) in
      Mutex.unlock t.lock;
      match j with
      | Some job ->
        (try job () with _ -> ());
        help ()
      | None -> ()
    in
    help ();
    (* ...then waits for jobs still in flight on worker domains. *)
    Mutex.lock t.lock;
    while Atomic.get remaining > 0 do
      Condition.wait t.work t.lock
    done;
    Mutex.unlock t.lock;
    let collect i =
      match results.(i) with
      | Ok_r v -> v
      | Error_r (e, bt) -> Printexc.raise_with_backtrace e bt
      | Empty -> assert false
    in
    (* Re-raise the first failure in job order (collect is index-ordered). *)
    List.init n collect

(* --- supervised mapping ---------------------------------------------- *)

type classification = Transient | Permanent

type error = {
  exn : exn;
  backtrace : Printexc.raw_backtrace;
  classification : classification;
}

type 'b outcome = { result : ('b, error) result; attempts : int; elapsed : float }

let default_classify = function
  | Fault.Crashed _ | Fault.Killed _ -> Transient
  | _ -> Permanent

(* Deterministic backoff: a bounded busy-wait (doubling per attempt) rather
   than a sleep, so retry timing can neither deadlock a shutdown nor leak
   nondeterminism into anything observable. *)
let backoff_spin attempt =
  for _ = 1 to 1_000 * (1 lsl min attempt 10) do
    Domain.cpu_relax ()
  done

let map_results ?(retries = 0) ?(classify = default_classify) ?(fault = Fault.none)
    ?on_outcome t f xs =
  if retries < 0 then invalid_arg "Pool.map_results: negative retries";
  let attempt_one index x =
    let t0 = Unix.gettimeofday () in
    let rec go attempt =
      let res =
        match Fault.decide fault ~index ~attempt with
        | Some Fault.Crash ->
          Error (Fault.Crashed { index; attempt }, Printexc.get_callstack 8)
        | Some Fault.Kill ->
          (* A domain cannot be SIGKILLed on its own; in-process, Kill is a
             crash-shaped transient loss.  The real process death happens in
             the multi-process worker (Procpool). *)
          Error (Fault.Killed { index; attempt }, Printexc.get_callstack 8)
        | Some Fault.Poison ->
          (* The job "completes" — burning the same work — but its result is
             rejected as corrupt. *)
          (match f x with _ -> () | exception _ -> ());
          Error (Fault.Poisoned { index; attempt }, Printexc.get_callstack 8)
        | Some Fault.Slow ->
          Fault.spin ();
          (try Ok (f x) with e -> Error (e, Printexc.get_raw_backtrace ()))
        | Some Fault.Livelock | None -> (
          (* Livelock is realized above the pool (fuel starvation); here the
             job just runs and the simulator's watchdog produces the error. *)
          try Ok (f x) with e -> Error (e, Printexc.get_raw_backtrace ()))
      in
      match res with
      | Ok v -> { result = Ok v; attempts = attempt + 1; elapsed = Unix.gettimeofday () -. t0 }
      | Error (exn, backtrace) ->
        let classification = classify exn in
        if classification = Transient && attempt < retries then begin
          backoff_spin attempt;
          go (attempt + 1)
        end
        else
          {
            result = Error { exn; backtrace; classification };
            attempts = attempt + 1;
            elapsed = Unix.gettimeofday () -. t0;
          }
    in
    let outcome = go 0 in
    (match on_outcome with
    | Some hook -> ( try hook index outcome with _ -> ())
    | None -> ());
    outcome
  in
  map t (fun (i, x) -> attempt_one i x) (List.mapi (fun i x -> (i, x)) xs)

let submit t job =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push job t.pending;
  Condition.signal t.work;
  Mutex.unlock t.lock

let shutdown t =
  Mutex.lock t.lock;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  if not was_closed then begin
    (* Accepted jobs are never lost: the caller helps drain whatever is
       still queued (essential for fire-and-forget [submit]s on a pool of
       size 1, which has no worker domains), then joins the workers — who
       also drain the queue before exiting. *)
    let rec drain () =
      Mutex.lock t.lock;
      let j = if Queue.is_empty t.pending then None else Some (Queue.pop t.pending) in
      Mutex.unlock t.lock;
      match j with
      | Some job ->
        (try job () with _ -> ());
        drain ()
      | None -> ()
    in
    drain ();
    Array.iter Domain.join t.domains
  end

let run ?(jobs = 1) f xs =
  if jobs <= 1 then List.map f xs
  else begin
    let t = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> map t f xs)
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
