(* Domain pool with an ordered job/result protocol over work-stealing
   per-domain deques.

   Scheduling: every participant (the calling domain plus each worker
   domain) owns one bounded-growable deque.  The owner pushes and pops at
   its own tail (LIFO, cache-warm); an idle participant steals from a
   victim's head (FIFO, oldest job first), probing victims round-robin from
   its own slot.  Each deque is guarded by its own mutex — the Chase–Lev
   lock-free refinement can replace the lock without touching any caller —
   so producers and thieves contend per-deque instead of serializing on one
   global queue.

   Determinism is unchanged from the shared-queue pool: each job writes its
   result into a dedicated slot of a per-[map] results array, so scheduling
   order never influences result order, and exceptions are re-raised —
   lowest job index first — only after the whole batch has finished.  The
   scheduler decides only *where* a job runs, never what it computes or
   where its result lands.

   Parking: an idle domain that finds every deque empty sleeps on the pool
   condition variable.  The sleeper count and the queued-job count are
   atomics written on opposite sides of the classic flag/flag handshake
   (producer: publish job, then read [sleepers]; consumer: increment
   [sleepers] under the lock, then read [pending]) so at least one side
   always observes the other and no wakeup is lost. *)

type job = unit -> unit

let dummy_job : job = fun () -> ()

(* --- per-domain deque -------------------------------------------------- *)

type deque = {
  dlock : Mutex.t;
  mutable buf : job array;  (* power-of-two ring, indexed by absolute counters *)
  mutable head : int;  (* absolute index of the oldest job *)
  mutable tail : int;  (* absolute index one past the newest job *)
}

let deque_create () =
  { dlock = Mutex.create (); buf = Array.make 64 dummy_job; head = 0; tail = 0 }

let deque_grow d =
  let old = d.buf in
  let cap = Array.length old in
  let nb = Array.make (2 * cap) dummy_job in
  for i = d.head to d.tail - 1 do
    nb.(i land ((2 * cap) - 1)) <- old.(i land (cap - 1))
  done;
  d.buf <- nb

let deque_push_unlocked d job =
  if d.tail - d.head = Array.length d.buf then deque_grow d;
  d.buf.(d.tail land (Array.length d.buf - 1)) <- job;
  d.tail <- d.tail + 1

let deque_push d job =
  Mutex.lock d.dlock;
  deque_push_unlocked d job;
  Mutex.unlock d.dlock

(* Push jobs [mk lo], [mk (lo+stride)], ... (indexes < n) under ONE lock
   acquisition — batch submission pays per-deque, not per-job, locking. *)
let deque_push_strided d mk lo stride n =
  Mutex.lock d.dlock;
  let i = ref lo in
  while !i < n do
    deque_push_unlocked d (mk !i);
    i := !i + stride
  done;
  Mutex.unlock d.dlock

(* Takes are batched: a participant moves up to [stash_max] jobs per lock
   acquisition into a private stash and runs them lock-free, so the per-job
   cost of a drained batch is one ring read instead of one mutex round
   trip.  The stash is invisible to thieves, which is fine: it never holds
   more than [stash_max] tiny units of work, and stealing takes half the
   victim's *deque*, keeping redistribution exponential. *)
let stash_max = 32

(* Owner: up to [k] jobs, LIFO from the tail, into [dst.(0..)]. *)
let deque_pop_upto d dst k =
  Mutex.lock d.dlock;
  let avail = d.tail - d.head in
  let n = if avail < k then avail else k in
  for j = 0 to n - 1 do
    d.tail <- d.tail - 1;
    let i = d.tail land (Array.length d.buf - 1) in
    dst.(j) <- d.buf.(i);
    d.buf.(i) <- dummy_job
  done;
  Mutex.unlock d.dlock;
  n

(* Thief: up to half the victim's jobs (capped at [k]), FIFO from the
   head — the oldest jobs, which under round-robin placement are the ones
   the owner would reach last anyway. *)
let deque_steal_upto d dst k =
  Mutex.lock d.dlock;
  let avail = d.tail - d.head in
  let half = (avail + 1) / 2 in
  let n = if half < k then half else k in
  for j = 0 to n - 1 do
    let i = d.head land (Array.length d.buf - 1) in
    dst.(j) <- d.buf.(i);
    d.buf.(i) <- dummy_job;
    d.head <- d.head + 1
  done;
  Mutex.unlock d.dlock;
  n

(* --- pool -------------------------------------------------------------- *)

type counters = {
  local_pops : int;
  steals : int;
  failed_steals : int;
  parks : int;
  unparks : int;
}

type t = {
  size : int;
  deques : deque array;  (* slot 0: the calling domain; slot i+1: worker i *)
  lock : Mutex.t;
  work : Condition.t;  (* signalled on new work, batch completion, shutdown *)
  pending : int Atomic.t;  (* queued (not yet taken) jobs, up to transient skew *)
  sleepers : int Atomic.t;  (* workers blocked in Condition.wait *)
  rr : int Atomic.t;  (* round-robin cursor for [submit] placement *)
  c_local : int Atomic.t;
  c_steals : int Atomic.t;
  c_failed : int Atomic.t;
  c_parks : int Atomic.t;
  c_unparks : int Atomic.t;
  mutable closed : bool;
  mutable domains : unit Domain.t array;
}

let default_jobs () = Domain.recommended_domain_count ()

(* Runtime-fatal exceptions must not vanish: a sweep that silently survives
   Out_of_memory reports success on garbage.  Ordinary job exceptions keep
   the domain alive ([map]'s jobs capture their own; a raw [submit]ed
   closure that leaks one gets a once-per-process stderr warning). *)
let fatal = function Out_of_memory | Stack_overflow -> true | _ -> false

let warned = Atomic.make false

let run_isolated job =
  try job ()
  with e when not (fatal e) ->
    if not (Atomic.exchange warned true) then
      Printf.eprintf
        "pool: submitted job raised %s (swallowed; further warnings suppressed)\n%!"
        (Printexc.to_string e)

(* Take work as participant [me] into [dst]: own deque first, then steal
   round-robin from the other participants.  Returns the number of jobs
   taken (0 = nothing anywhere at probe time). *)
let try_take t me dst =
  let got = deque_pop_upto t.deques.(me) dst stash_max in
  if got > 0 then begin
    ignore (Atomic.fetch_and_add t.pending (-got));
    ignore (Atomic.fetch_and_add t.c_local got);
    got
  end
  else begin
    let n = t.size in
    let rec probe k =
      if k >= n then 0
      else begin
        let got = deque_steal_upto t.deques.((me + k) mod n) dst stash_max in
        if got > 0 then begin
          ignore (Atomic.fetch_and_add t.pending (-got));
          ignore (Atomic.fetch_and_add t.c_steals got);
          got
        end
        else begin
          Atomic.incr t.c_failed;
          probe (k + 1)
        end
      end
    in
    probe 1
  end

let run_stash dst n =
  for j = 0 to n - 1 do
    let job = dst.(j) in
    dst.(j) <- dummy_job;
    run_isolated job
  done

let rec worker_loop t me dst =
  let n = try_take t me dst in
  if n > 0 then begin
    run_stash dst n;
    worker_loop t me dst
  end
  else begin
    Mutex.lock t.lock;
    (* Order matters: advertise the sleeper *before* re-reading [pending],
       mirroring producers who publish work before reading [sleepers]. *)
    Atomic.incr t.sleepers;
    if Atomic.get t.pending > 0 then begin
      (* Queued work we failed to find: a concurrent take raced us between
         the probe and here.  Retry immediately — takes are batched, so
         these races are rare and short-lived. *)
      Atomic.decr t.sleepers;
      Mutex.unlock t.lock;
      Domain.cpu_relax ();
      worker_loop t me dst
    end
    else if t.closed then begin
      Atomic.decr t.sleepers;
      Mutex.unlock t.lock
    end
    else begin
      Atomic.incr t.c_parks;
      Condition.wait t.work t.lock;
      Atomic.incr t.c_unparks;
      Atomic.decr t.sleepers;
      Mutex.unlock t.lock;
      worker_loop t me dst
    end
  end

let create ~jobs =
  let size = max 1 jobs in
  let t =
    {
      size;
      deques = Array.init size (fun _ -> deque_create ());
      lock = Mutex.create ();
      work = Condition.create ();
      pending = Atomic.make 0;
      sleepers = Atomic.make 0;
      rr = Atomic.make 0;
      c_local = Atomic.make 0;
      c_steals = Atomic.make 0;
      c_failed = Atomic.make 0;
      c_parks = Atomic.make 0;
      c_unparks = Atomic.make 0;
      closed = false;
      domains = [||];
    }
  in
  t.domains <-
    Array.init (size - 1)
      (fun i ->
        Domain.spawn (fun () ->
            worker_loop t (i + 1) (Array.make stash_max dummy_job)));
  t

let size t = t.size

let counters t =
  {
    local_pops = Atomic.get t.c_local;
    steals = Atomic.get t.c_steals;
    failed_steals = Atomic.get t.c_failed;
    parks = Atomic.get t.c_parks;
    unparks = Atomic.get t.c_unparks;
  }

let observe_metrics t reg =
  let c = counters t in
  Metrics.set_int reg "pool.local_pops" c.local_pops;
  Metrics.set_int reg "pool.steals" c.steals;
  Metrics.set_int reg "pool.failed_steals" c.failed_steals;
  Metrics.set_int reg "pool.parks" c.parks;
  Metrics.set_int reg "pool.unparks" c.unparks

let wake_all t =
  Mutex.lock t.lock;
  Condition.broadcast t.work;
  Mutex.unlock t.lock

type 'b slot = Empty | Ok_r of 'b | Error_r of exn * Printexc.raw_backtrace

let map t f xs =
  if t.closed then invalid_arg "Pool.map: pool is shut down";
  match xs with
  | [] -> []
  | _ when t.size = 1 -> List.map f xs (* the exact serial path *)
  | xs ->
    let items = Array.of_list xs in
    let n = Array.length items in
    let results = Array.make n Empty in
    (* Loop grain: one queued job covers a contiguous index range of up to
       [8 * size] chunks' worth of items, so per-item scheduling overhead
       (closure, deque slot, completion decrement) is amortized while small
       or skewed batches still split into one item per job.  Chunking does
       not touch the determinism contract — every item writes its own slot,
       whatever chunk ran it. *)
    let chunk =
      let per = n / (t.size * 8) in
      if per < 1 then 1 else if per > 64 then 64 else per
    in
    let nchunks = (n + chunk - 1) / chunk in
    let remaining = Atomic.make nchunks in
    let job c () =
      let lo = c * chunk in
      let hi = min n (lo + chunk) in
      for i = lo to hi - 1 do
        results.(i) <-
          (try Ok_r (f items.(i))
           with e -> Error_r (e, Printexc.get_raw_backtrace ()))
      done;
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        (* Last chunk of the batch: wake the caller if it is waiting. *)
        Mutex.lock t.lock;
        Condition.broadcast t.work;
        Mutex.unlock t.lock
      end
    in
    (* Round-robin initial placement: chunk c starts on deque (c mod size),
       so a uniform batch begins balanced and stealing only has to fix up
       cost skew, not distribution.  Each deque's slice goes in under one
       lock. *)
    for d = 0 to t.size - 1 do
      deque_push_strided t.deques.(d) job d t.size nchunks
    done;
    ignore (Atomic.fetch_and_add t.pending nchunks);
    wake_all t;
    (* The caller participates as deque owner 0 until the batch drains.
       [pending <= 0] means nothing is queued anywhere (takers decrement
       only after removal, so the count never under-reports a queued job);
       whatever remains is in flight on workers and the last job's broadcast
       ends the wait. *)
    let dst = Array.make stash_max dummy_job in
    let rec drive () =
      let got = try_take t 0 dst in
      if got > 0 then begin
        run_stash dst got;
        drive ()
      end
      else if Atomic.get remaining > 0 then begin
        Mutex.lock t.lock;
        if Atomic.get remaining > 0 && Atomic.get t.pending <= 0 then
          Condition.wait t.work t.lock;
        Mutex.unlock t.lock;
        drive ()
      end
    in
    drive ();
    let collect i =
      match results.(i) with
      | Ok_r v -> v
      | Error_r (e, bt) -> Printexc.raise_with_backtrace e bt
      | Empty -> assert false
    in
    (* Re-raise the first failure in job order (collect is index-ordered). *)
    List.init n collect

(* --- supervised mapping ---------------------------------------------- *)

type classification = Transient | Permanent

type error = {
  exn : exn;
  backtrace : Printexc.raw_backtrace;
  classification : classification;
}

type 'b outcome = { result : ('b, error) result; attempts : int; elapsed : float }

let default_classify = function
  | Fault.Crashed _ | Fault.Killed _ -> Transient
  | _ -> Permanent

(* Deterministic backoff: a bounded busy-wait (doubling per attempt) rather
   than a sleep, so retry timing can neither deadlock a shutdown nor leak
   nondeterminism into anything observable. *)
let backoff_spin attempt =
  for _ = 1 to 1_000 * (1 lsl min attempt 10) do
    Domain.cpu_relax ()
  done

let map_results ?(retries = 0) ?(classify = default_classify) ?(fault = Fault.none)
    ?on_outcome t f xs =
  if retries < 0 then invalid_arg "Pool.map_results: negative retries";
  let attempt_one index x =
    let t0 = Unix.gettimeofday () in
    let rec go attempt =
      let res =
        match Fault.decide fault ~index ~attempt with
        | Some Fault.Crash ->
          Error (Fault.Crashed { index; attempt }, Printexc.get_callstack 8)
        | Some Fault.Kill ->
          (* A domain cannot be SIGKILLed on its own; in-process, Kill is a
             crash-shaped transient loss.  The real process death happens in
             the multi-process worker (Procpool). *)
          Error (Fault.Killed { index; attempt }, Printexc.get_callstack 8)
        | Some Fault.Poison ->
          (* The job "completes" — burning the same work — but its result is
             rejected as corrupt. *)
          (match f x with _ -> () | exception _ -> ());
          Error (Fault.Poisoned { index; attempt }, Printexc.get_callstack 8)
        | Some Fault.Slow ->
          Fault.spin ();
          (try Ok (f x) with e -> Error (e, Printexc.get_raw_backtrace ()))
        | Some Fault.Livelock | None -> (
          (* Livelock is realized above the pool (fuel starvation); here the
             job just runs and the simulator's watchdog produces the error. *)
          try Ok (f x) with e -> Error (e, Printexc.get_raw_backtrace ()))
      in
      match res with
      | Ok v -> { result = Ok v; attempts = attempt + 1; elapsed = Unix.gettimeofday () -. t0 }
      | Error (exn, backtrace) ->
        let classification = classify exn in
        if classification = Transient && attempt < retries then begin
          backoff_spin attempt;
          go (attempt + 1)
        end
        else
          {
            result = Error { exn; backtrace; classification };
            attempts = attempt + 1;
            elapsed = Unix.gettimeofday () -. t0;
          }
    in
    let outcome = go 0 in
    (match on_outcome with
    | Some hook -> ( try hook index outcome with _ -> ())
    | None -> ());
    outcome
  in
  map t (fun (i, x) -> attempt_one i x) (List.mapi (fun i x -> (i, x)) xs)

let submit t job =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  let k = Atomic.fetch_and_add t.rr 1 in
  deque_push t.deques.(k mod t.size) job;
  Atomic.incr t.pending;
  Condition.signal t.work;
  Mutex.unlock t.lock

let shutdown t =
  Mutex.lock t.lock;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  if not was_closed then begin
    (* Accepted jobs are never lost: the caller helps drain every deque
       (essential for fire-and-forget [submit]s on a pool of size 1, which
       has no worker domains), then joins the workers — who also drain
       before exiting.  [pending > 0] with empty deques is the transient
       taken-but-not-yet-decremented skew; spin it out rather than joining
       while the count still claims queued work. *)
    let dst = Array.make stash_max dummy_job in
    let rec drain () =
      let got = try_take t 0 dst in
      if got > 0 then begin
        run_stash dst got;
        drain ()
      end
      else if Atomic.get t.pending > 0 then begin
        Domain.cpu_relax ();
        drain ()
      end
    in
    drain ();
    (* A worker that died of a runtime-fatal exception re-raises it here. *)
    Array.iter Domain.join t.domains
  end

let run ?(jobs = 1) f xs =
  if jobs <= 1 then List.map f xs
  else begin
    let t = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> map t f xs)
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
