(** Fixed-size worker pool over OCaml 5 domains, with an ordered job/result
    protocol.

    The pool exists to parallelize the experiment layer's embarrassingly
    parallel [Machine] runs without giving up the repository's bit-exact
    determinism guarantee.  The contract callers must uphold is that each job
    is {e self-contained}: it takes pure inputs (seed, config, workload spec)
    and touches no mutable state shared with any other job.  Under that
    contract the pool guarantees:

    - {b ordered results}: [map] returns results in the order of its input
      list, regardless of which worker ran which job or in what order jobs
      completed;
    - {b serial equivalence}: a pool of size 1 runs every job in the calling
      domain, in submission order — exactly the serial path;
    - {b deterministic errors}: if jobs raise, every job still runs to
      completion and the exception of the {e lowest-indexed} failing job is
      re-raised (with its backtrace) after all workers have drained, so the
      observable failure does not depend on the worker count.

    The calling domain participates in draining the work during [map], so a
    pool of size [n] uses [n-1] spawned domains plus the caller.

    {b Scheduling} is work stealing over per-domain deques: every
    participant owns a deque, pushes/pops its own tail, and steals from a
    victim's head when idle; [map] round-robins a batch's initial placement
    across the deques.  Scheduling decides only {e where} a job runs — the
    results contract above is independent of it, so [-j 1] and [-j N]
    output stay byte-identical.

    {b Fatal exceptions}: [Out_of_memory] and [Stack_overflow] escaping a
    raw {!submit}ted job are never swallowed — they kill the worker domain
    (re-raised by {!shutdown}'s join) or propagate directly from the
    calling domain.  Any other exception escaping a submitted job keeps the
    domain alive and triggers a once-per-process stderr warning.  [map]'s
    own jobs capture every exception into their result slot, fatal ones
    included, preserving the lowest-index re-raise. *)

type t
(** A pool of worker domains.  Not itself thread-safe: drive a given pool
    from one domain at a time. *)

type counters = {
  local_pops : int;  (** jobs a participant took from its own deque *)
  steals : int;  (** jobs taken from another participant's deque *)
  failed_steals : int;  (** victim probes that found an empty deque *)
  parks : int;  (** times a worker went to sleep for lack of work *)
  unparks : int;  (** times a sleeping worker was woken *)
}
(** Scheduler telemetry.  Genuinely nondeterministic (timing-dependent), so
    it is exposed on demand rather than folded into any deterministic
    metrics snapshot; the invariant [local_pops + steals = jobs executed]
    holds at quiescence. *)

val counters : t -> counters
(** Snapshot of the pool's scheduler counters since {!create}. *)

val observe_metrics : t -> Metrics.t -> unit
(** [observe_metrics t reg] publishes {!counters} into [reg] as the integer
    gauges [pool.local_pops], [pool.steals], [pool.failed_steals],
    [pool.parks], [pool.unparks].  Callers must keep these out of registries
    that feed byte-identity checks — steal counts vary run to run. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [-j] default of the CLI and
    bench harnesses. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [max jobs 1 - 1] worker domains.  [jobs = 1] spawns
    none: every subsequent [map] degenerates to [List.map]. *)

val size : t -> int
(** Total workers, including the calling domain. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] runs [f x] for every [x] of [xs] across the pool's
    workers and returns the results in the order of [xs].  Raises
    [Invalid_argument] if the pool has been shut down. *)

(** {1 Supervised mapping}

    {!map} makes one job's exception the whole batch's exception.  The
    supervised variant {!map_results} never raises on a job failure: every
    job yields an {!outcome}, failed jobs classified transient are retried
    (bounded, with deterministic busy-wait backoff), and the caller decides
    how to degrade.  This is the substrate of the experiment layer's
    checkpointed, fault-tolerant sweeps. *)

type classification =
  | Transient  (** worth retrying: injected crashes, flaky infrastructure *)
  | Permanent  (** retrying a deterministic job cannot help *)

type error = {
  exn : exn;
  backtrace : Printexc.raw_backtrace;
  classification : classification;
}

type 'b outcome = {
  result : ('b, error) result;
  attempts : int;  (** total attempts made, [>= 1] *)
  elapsed : float;
      (** wall-clock seconds across all attempts.  Informational only —
          excluded from every determinism contract. *)
}

val default_classify : exn -> classification
(** {!Fault.Crashed} and {!Fault.Killed} are [Transient]; everything else
    [Permanent]. *)

val map_results :
  ?retries:int ->
  ?classify:(exn -> classification) ->
  ?fault:Fault.t ->
  ?on_outcome:(int -> 'b outcome -> unit) ->
  t ->
  ('a -> 'b) ->
  'a list ->
  'b outcome list
(** [map_results pool f xs] is {!map} with per-job supervision: each job's
    exceptions are captured, jobs whose error classifies [Transient] are
    re-attempted up to [retries] extra times (default [0]) with a
    deterministic doubling busy-wait between attempts, and the per-job
    {!outcome}s come back in input order.  [fault] (default {!Fault.none})
    injects deterministic misbehaviour keyed on the job's input index —
    identical for every worker count, which is what makes the fault-injected
    determinism tests possible.  [on_outcome] is invoked with [(index,
    outcome)] on the domain that ran the job, once per job, after its final
    attempt — the checkpoint-journal hook; exceptions it raises are ignored.
    Outcome lists are deterministic up to the [elapsed] field. *)

val submit : t -> (unit -> unit) -> unit
(** Fire-and-forget: enqueue a raw job on the next deque round-robin.  A
    non-fatal exception escaping the job is swallowed (with a warn-once
    stderr line) and the domain keeps serving work; [Out_of_memory] and
    [Stack_overflow] propagate (see the module preamble).  Raises
    [Invalid_argument] after {!shutdown}. *)

val shutdown : t -> unit
(** Close the pool, drain every still-pending job (no accepted job is
    lost — the caller helps, so this also works on a size-1 pool with no
    worker domains), then join all worker domains.  A worker domain killed
    by a runtime-fatal exception re-raises it here.  Idempotent; the pool
    is unusable afterwards. *)

val run : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [create], [map], [shutdown].  [jobs] defaults to 1
    (the serial path) so that library callers stay serial unless a [-j] flag
    is threaded down to them explicitly. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool, shutting it down on the
    way out (also on exceptions). *)
