(* Frozen copy of the pre-work-stealing shared-queue pool.

   Kept verbatim (minus supervised mapping, which is scheduler-agnostic) as
   the comparison baseline for [bench --only pool]: the speedup claims in
   BENCH_pool_<date>.json are measured against this implementation, not a
   reconstruction.  Do not "improve" this file — its value is that it does
   not change. *)

type job = unit -> unit

type t = {
  size : int;
  lock : Mutex.t;
  work : Condition.t;
  pending : job Queue.t;
  mutable closed : bool;
  mutable domains : unit Domain.t array;
}

let rec worker_loop t =
  Mutex.lock t.lock;
  let rec next () =
    if not (Queue.is_empty t.pending) then Some (Queue.pop t.pending)
    else if t.closed then None
    else begin
      Condition.wait t.work t.lock;
      next ()
    end
  in
  match next () with
  | None -> Mutex.unlock t.lock
  | Some job ->
    Mutex.unlock t.lock;
    (try job () with _ -> ());
    worker_loop t

let create ~jobs =
  let size = max 1 jobs in
  let t =
    {
      size;
      lock = Mutex.create ();
      work = Condition.create ();
      pending = Queue.create ();
      closed = false;
      domains = [||];
    }
  in
  t.domains <- Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.size

type 'b slot = Empty | Ok_r of 'b | Error_r of exn * Printexc.raw_backtrace

let map t f xs =
  if t.closed then invalid_arg "Pool_ref.map: pool is shut down";
  match xs with
  | [] -> []
  | _ when t.size = 1 -> List.map f xs
  | xs ->
    let items = Array.of_list xs in
    let n = Array.length items in
    let results = Array.make n Empty in
    let remaining = Atomic.make n in
    let job i () =
      (results.(i) <-
        (try Ok_r (f items.(i))
         with e -> Error_r (e, Printexc.get_raw_backtrace ())));
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock t.lock;
        Condition.broadcast t.work;
        Mutex.unlock t.lock
      end
    in
    Mutex.lock t.lock;
    for i = 0 to n - 1 do
      Queue.push (job i) t.pending
    done;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    let rec help () =
      Mutex.lock t.lock;
      let j = if Queue.is_empty t.pending then None else Some (Queue.pop t.pending) in
      Mutex.unlock t.lock;
      match j with
      | Some job ->
        (try job () with _ -> ());
        help ()
      | None -> ()
    in
    help ();
    Mutex.lock t.lock;
    while Atomic.get remaining > 0 do
      Condition.wait t.work t.lock
    done;
    Mutex.unlock t.lock;
    let collect i =
      match results.(i) with
      | Ok_r v -> v
      | Error_r (e, bt) -> Printexc.raise_with_backtrace e bt
      | Empty -> assert false
    in
    List.init n collect

let shutdown t =
  Mutex.lock t.lock;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  if not was_closed then begin
    let rec drain () =
      Mutex.lock t.lock;
      let j = if Queue.is_empty t.pending then None else Some (Queue.pop t.pending) in
      Mutex.unlock t.lock;
      match j with
      | Some job ->
        (try job () with _ -> ());
        drain ()
      | None -> ()
    in
    drain ();
    Array.iter Domain.join t.domains
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
