(** Frozen shared-queue pool, kept as the measurement baseline for
    [bench --only pool].

    This is the pre-work-stealing {!Pool} implementation (single
    mutex-guarded [Queue.t], every dequeue serializing on one lock), with the
    same ordered job/result protocol: results in input order, size-1 pools
    run the exact serial path, lowest-index failure re-raised after the batch
    drains.  It exists so the speedup recorded in BENCH_pool_<date>.json is
    measured against the real historical scheduler rather than a synthetic
    strawman.  Production code must use {!Pool}. *)

type t

val create : jobs:int -> t
val size : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Ordered parallel map over the shared queue; same contract as
    {!Pool.map}. *)

val shutdown : t -> unit
val with_pool : jobs:int -> (t -> 'a) -> 'a
