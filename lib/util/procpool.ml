(* Coordinator/worker process pool.  See procpool.mli for the execution
   model; this file is deliberately mechanical — what a cell *is* and how a
   verdict is produced live in the experiment layer (Supervise), which hands
   [serve] a [handle] callback and interprets [run_jobs]' outcomes.

   Wire protocol (newline-framed ASCII over two pipes per worker):

     coordinator -> worker   RUN <index> <attempt> <hex key>
                             FIN
     worker -> coordinator   RDY
                             OK <index>
                             ERR <index> <T|P> <hex reason>

   Keys and failure reasons travel hex-encoded so they can never smuggle a
   newline or space into the framing.  Results never travel over the pipe:
   a worker journals the value, replies [OK], and the coordinator reads the
   value back from the worker's journal — so a kill between journal append
   and reply loses only the reply, and the coordinator recovers the value
   from the journal when it reaps the corpse. *)

exception Worker_failure of string

let () =
  Printexc.register_printer (function
    (* The reason is a worker-side [Printexc.to_string]; printing it
       verbatim keeps multi-process failure reports byte-identical to
       single-process ones. *)
    | Worker_failure reason -> Some reason
    | _ -> None)

(* --- worker-side context ----------------------------------------------- *)

type ctx = {
  wid : int;
  journal : string;
  sweep : int;
  replay : string option;
  cmd_in : in_channel;
  reply_out : out_channel;
}

let worker : ctx option ref = ref None
let worker_ctx () = !worker
let in_worker () = !worker <> None

let worker_arg = "__worker"

let worker_init () =
  let getenv name =
    match Sys.getenv_opt name with
    | Some v -> v
    | None ->
      Printf.eprintf "procpool worker: missing %s in environment\n%!" name;
      exit 70
  in
  let wid =
    match int_of_string_opt (getenv "PV_WORKER_ID") with
    | Some w -> w
    | None ->
      Printf.eprintf "procpool worker: malformed PV_WORKER_ID\n%!";
      exit 70
  in
  let journal = getenv "PV_WORKER_JOURNAL" in
  let sweep =
    match int_of_string_opt (getenv "PV_WORKER_SWEEP") with
    | Some s -> s
    | None ->
      Printf.eprintf "procpool worker: malformed PV_WORKER_SWEEP\n%!";
      exit 70
  in
  let replay =
    match Sys.getenv_opt "PV_WORKER_REPLAY" with
    | Some "" | None -> None
    | Some p -> Some p
  in
  (* The reply channel is a private dup of stdout taken *before* stdout is
     pointed at /dev/null: the worker re-runs the whole CLI code path, which
     prints tables and reports as it goes, and none of that may leak into
     the protocol stream (or the user's terminal). *)
  let reply_fd = Unix.dup Unix.stdout in
  Unix.set_close_on_exec reply_fd;
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  if Sys.getenv_opt "PV_PROCPOOL_DEBUG" = None then Unix.dup2 devnull Unix.stderr;
  Unix.close devnull;
  let ctx =
    {
      wid;
      journal;
      sweep;
      replay;
      cmd_in = Unix.in_channel_of_descr Unix.stdin;
      reply_out = Unix.out_channel_of_descr reply_fd;
    }
  in
  worker := Some ctx;
  ctx

(* --- worker-side serving ----------------------------------------------- *)

type verdict = Done | Fail of { transient : bool; reason : string }

let send_line oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let serve ctx ~handle =
  send_line ctx.reply_out "RDY";
  let rec loop () =
    match input_line ctx.cmd_in with
    | exception End_of_file -> ()
    | "FIN" -> ()
    | line -> (
      match String.split_on_char ' ' line with
      | [ "RUN"; idx; att; hexkey ] -> (
        match
          (int_of_string_opt idx, int_of_string_opt att, Checksum.string_of_hex hexkey)
        with
        | Some index, Some attempt, Some key ->
          (match handle ~index ~attempt ~key with
          | Done -> send_line ctx.reply_out (Printf.sprintf "OK %d" index)
          | Fail { transient; reason } ->
            send_line ctx.reply_out
              (Printf.sprintf "ERR %d %s %s" index
                 (if transient then "T" else "P")
                 (Checksum.hex_of_string reason)));
          loop ()
        | _ -> loop () (* malformed command: skip, stay alive *))
      | _ -> loop ())
  in
  loop ()

(* --- spawners ----------------------------------------------------------- *)

type spawned = { pid : int; send : Unix.file_descr; recv : Unix.file_descr }
type spawner = wid:int -> journal:string -> spawned

let make_pipes () =
  let cmd_r, cmd_w = Unix.pipe () in
  let reply_r, reply_w = Unix.pipe () in
  (* Parent ends must not leak into workers spawned later: a worker holding
     a sibling's write end would keep that sibling's reply pipe open past
     its death.  (Only protects exec-based spawning; the fork spawner's
     coordinator relies on waitpid, not EOF, for death detection.) *)
  Unix.set_close_on_exec cmd_w;
  Unix.set_close_on_exec reply_r;
  (cmd_r, cmd_w, reply_r, reply_w)

let fork_spawner f : spawner =
 fun ~wid ~journal ->
  let cmd_r, cmd_w, reply_r, reply_w = make_pipes () in
  match Unix.fork () with
  | 0 ->
    Unix.close cmd_w;
    Unix.close reply_r;
    let ctx =
      {
        wid;
        journal;
        sweep = 0;
        replay = None;
        cmd_in = Unix.in_channel_of_descr cmd_r;
        reply_out = Unix.out_channel_of_descr reply_w;
      }
    in
    (match f ctx with () -> Unix._exit 0 | exception _ -> Unix._exit 71)
  | pid ->
    Unix.close cmd_r;
    Unix.close reply_w;
    { pid; send = cmd_w; recv = reply_r }

let reexec_argv : string list option ref = ref None
let set_reexec_argv args = reexec_argv := Some args
let reexec_available () = !reexec_argv <> None

let reexec_spawner ~sweep ~replay : spawner =
 fun ~wid ~journal ->
  let argv =
    match !reexec_argv with
    | Some a -> a
    | None -> invalid_arg "Procpool.reexec_spawner: set_reexec_argv not called"
  in
  let cmd_r, cmd_w, reply_r, reply_w = make_pipes () in
  let prog = Sys.executable_name in
  let args = Array.of_list (prog :: worker_arg :: argv) in
  let keep =
    Unix.environment () |> Array.to_list
    |> List.filter (fun kv ->
           not
             (String.length kv >= 10 && String.sub kv 0 10 = "PV_WORKER_"))
  in
  let env =
    Array.of_list
      (keep
      @ [
          Printf.sprintf "PV_WORKER_ID=%d" wid;
          Printf.sprintf "PV_WORKER_JOURNAL=%s" journal;
          Printf.sprintf "PV_WORKER_SWEEP=%d" sweep;
          Printf.sprintf "PV_WORKER_REPLAY=%s" (Option.value replay ~default:"");
        ])
  in
  let pid = Unix.create_process_env prog args env cmd_r reply_w Unix.stderr in
  Unix.close cmd_r;
  Unix.close reply_w;
  { pid; send = cmd_w; recv = reply_r }

(* --- coordinator -------------------------------------------------------- *)

type outcome =
  | Completed of { attempts : int }
  | Failed of { attempts : int; transient : bool; reason : string }

type wstate = {
  ws_wid : int;
  ws_journal : string;
  mutable ws_pid : int;
  mutable ws_send : Unix.file_descr;
  mutable ws_recv : Unix.file_descr;
  ws_buf : Buffer.t;
  mutable ws_ready : bool;  (* sent RDY and has no inflight cell *)
  mutable ws_inflight : (int * int) option;  (* index, attempt *)
  mutable ws_alive : bool;
}

let journal_has path key =
  match Journal.load path with
  | records -> List.exists (fun (k, _) -> k = key) records
  | exception (Journal.Incompatible _ | Sys_error _) -> false

let run_jobs ~workers ~respawns ~retries ~scratch ~spawn ~(keys : string array) =
  if workers < 1 then invalid_arg "Procpool.run_jobs: workers must be >= 1";
  let n = Array.length keys in
  let outcomes : outcome option array = Array.make n None in
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    Queue.add (i, 0) queue
  done;
  let old_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> None
  in
  let respawn_budget = ref respawns in
  let nworkers = min workers (max 1 n) in
  let journal_for wid = Filename.concat scratch (Printf.sprintf "worker-%d.journal" wid) in
  let spawn_one wid =
    let journal = journal_for wid in
    let { pid; send; recv } = spawn ~wid ~journal in
    {
      ws_wid = wid;
      ws_journal = journal;
      ws_pid = pid;
      ws_send = send;
      ws_recv = recv;
      ws_buf = Buffer.create 256;
      ws_ready = false;
      ws_inflight = None;
      ws_alive = true;
    }
  in
  let pool = Array.init nworkers spawn_one in
  let unresolved () = Array.exists (fun o -> o = None) outcomes in
  let resolve idx o = if outcomes.(idx) = None then outcomes.(idx) <- Some o in
  let fail_or_retry idx attempt ~transient ~reason =
    if transient && attempt < retries then Queue.add (idx, attempt + 1) queue
    else resolve idx (Failed { attempts = attempt + 1; transient; reason })
  in
  let handle_reply w line =
    match String.split_on_char ' ' line with
    | [ "RDY" ] -> w.ws_ready <- true
    | [ "OK"; idx ] -> (
      match int_of_string_opt idx with
      | Some i ->
        (match w.ws_inflight with
        | Some (j, attempt) when j = i ->
          resolve i (Completed { attempts = attempt + 1 });
          w.ws_inflight <- None;
          w.ws_ready <- true
        | _ -> resolve i (Completed { attempts = 1 }))
      | None -> ())
    | [ "ERR"; idx; cls; hexreason ] -> (
      match (int_of_string_opt idx, Checksum.string_of_hex hexreason) with
      | Some i, Some reason ->
        let transient = cls = "T" in
        let attempt =
          match w.ws_inflight with Some (j, a) when j = i -> a | _ -> 0
        in
        (match w.ws_inflight with
        | Some (j, _) when j = i ->
          w.ws_inflight <- None;
          w.ws_ready <- true
        | _ -> ());
        fail_or_retry i attempt ~transient ~reason
      | _ -> ())
    | _ -> ()
  in
  let drain_buffer w =
    let rec next () =
      let s = Buffer.contents w.ws_buf in
      match String.index_opt s '\n' with
      | None -> ()
      | Some nl ->
        let line = String.sub s 0 nl in
        Buffer.clear w.ws_buf;
        Buffer.add_string w.ws_buf (String.sub s (nl + 1) (String.length s - nl - 1));
        handle_reply w line;
        next ()
    in
    next ()
  in
  let read_some w =
    let b = Bytes.create 4096 in
    match Unix.read w.ws_recv b 0 4096 with
    | 0 -> false
    | k ->
      Buffer.add_subbytes w.ws_buf b 0 k;
      drain_buffer w;
      true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      false
    | exception Unix.Unix_error _ -> false
  in
  let send_to w line =
    let data = line ^ "\n" in
    match Unix.write_substring w.ws_send data 0 (String.length data) with
    | _ -> true
    | exception Unix.Unix_error _ -> false
  in
  let close_fds w =
    (try Unix.close w.ws_send with Unix.Unix_error _ -> ());
    try Unix.close w.ws_recv with Unix.Unix_error _ -> ()
  in
  let reap_death w =
    (* Drain any replies that raced the death (an OK written just before a
       kill), then decide the fate of the inflight cell: if its record made
       it into the worker's journal the work *happened* — a kill between
       journal append and reply loses nothing. *)
    (try Unix.set_nonblock w.ws_recv with Unix.Unix_error _ -> ());
    let rec drain () = if read_some w then drain () in
    (try drain () with _ -> ());
    (match w.ws_inflight with
    | Some (idx, attempt) when outcomes.(idx) = None ->
      if journal_has w.ws_journal keys.(idx) then
        resolve idx (Completed { attempts = attempt + 1 })
      else
        fail_or_retry idx attempt ~transient:true
          ~reason:(Printexc.to_string (Fault.Killed { index = idx; attempt }))
    | _ -> ());
    w.ws_inflight <- None;
    w.ws_alive <- false;
    w.ws_ready <- false;
    close_fds w
  in
  let poll_deaths () =
    Array.iteri
      (fun i w ->
        if w.ws_alive then
          match Unix.waitpid [ Unix.WNOHANG ] w.ws_pid with
          | 0, _ -> ()
          | _ ->
            reap_death w;
            (* Respawn into the same slot (and the same journal: the fresh
               worker's open_writer quarantines and truncates any torn
               record — the production torn-write recovery path). *)
            if unresolved () && !respawn_budget > 0 then begin
              decr respawn_budget;
              let fresh = spawn_one w.ws_wid in
              pool.(i) <- fresh
            end
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> reap_death w
          | exception Unix.Unix_error _ -> ())
      pool
  in
  let dispatch () =
    Array.iter
      (fun w ->
        if w.ws_alive && w.ws_ready && w.ws_inflight = None && not (Queue.is_empty queue)
        then begin
          let idx, attempt = Queue.pop queue in
          if outcomes.(idx) <> None then ()
          else if
            send_to w (Printf.sprintf "RUN %d %d %s" idx attempt
                         (Checksum.hex_of_string keys.(idx)))
          then begin
            w.ws_ready <- false;
            w.ws_inflight <- Some (idx, attempt)
          end
          else (* dead pipe: requeue, the death poll will reap it *)
            Queue.add (idx, attempt) queue
        end)
      pool
  in
  let select_replies () =
    let fds =
      Array.to_list pool
      |> List.filter_map (fun w -> if w.ws_alive then Some w.ws_recv else None)
    in
    if fds <> [] then
      match Unix.select fds [] [] 0.2 with
      | readable, _, _ ->
        Array.iter
          (fun w -> if w.ws_alive && List.mem w.ws_recv readable then ignore (read_some w))
          pool
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  (* Main loop: runs until every cell has an outcome or the pool is
     unrecoverable (all workers dead, respawn budget spent). *)
  (* Invariants: every unresolved cell is queued or inflight on a live
     worker; reaping a death either requeues/resolves its inflight cell and
     respawns (budget permitting) or leaves the slot dead — so "unresolved
     but no live worker" is exactly the unrecoverable state. *)
  while unresolved () && Array.exists (fun w -> w.ws_alive) pool do
    poll_deaths ();
    dispatch ();
    select_replies ()
  done;
  (* Anything still unresolved lost its workers: fail it rather than hang. *)
  Queue.iter
    (fun (idx, attempt) ->
      resolve idx
        (Failed
           {
             attempts = attempt;
             transient = true;
             reason = "worker pool exhausted (respawn budget spent)";
           }))
    queue;
  Array.iteri
    (fun idx o ->
      if o = None then
        outcomes.(idx) <-
          Some
            (Failed
               {
                 attempts = 0;
                 transient = true;
                 reason = "worker pool exhausted (respawn budget spent)";
               }))
    outcomes;
  (* Orderly shutdown: FIN, grace period, then SIGKILL stragglers. *)
  Array.iter (fun w -> if w.ws_alive then ignore (send_to w "FIN")) pool;
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec wait_exits () =
    let pending = Array.exists (fun w -> w.ws_alive) pool in
    if pending then begin
      Array.iter
        (fun w ->
          if w.ws_alive then
            match Unix.waitpid [ Unix.WNOHANG ] w.ws_pid with
            | 0, _ -> ()
            | _ ->
              w.ws_alive <- false;
              close_fds w
            | exception Unix.Unix_error _ ->
              w.ws_alive <- false;
              close_fds w)
        pool;
      if Array.exists (fun w -> w.ws_alive) pool then
        if Unix.gettimeofday () > deadline then
          Array.iter
            (fun w ->
              if w.ws_alive then begin
                (try Unix.kill w.ws_pid Sys.sigkill with Unix.Unix_error _ -> ());
                (try ignore (Unix.waitpid [] w.ws_pid) with Unix.Unix_error _ -> ());
                w.ws_alive <- false;
                close_fds w
              end)
            pool
        else begin
          Unix.sleepf 0.02;
          wait_exits ()
        end
    end
  in
  wait_exits ();
  (match old_sigpipe with
  | Some b -> (try Sys.set_signal Sys.sigpipe b with Invalid_argument _ -> ())
  | None -> ());
  let final =
    Array.map
      (function
        | Some o -> o
        | None ->
          Failed { attempts = 0; transient = true; reason = "unresolved cell" })
      outcomes
  in
  let journals =
    List.init nworkers journal_for |> List.filter Sys.file_exists
  in
  (final, journals)
