(* Coordinator/worker process pool.  See procpool.mli for the execution
   model; this file is deliberately mechanical — what a cell *is* and how a
   verdict is produced live in the experiment layer (Supervise), which hands
   [serve] a [handle] callback and interprets [run_jobs]' outcomes.

   Wire protocol (newline-framed ASCII, over two pipes per local worker or
   one TCP socket per remote one — see Transport):

     coordinator -> worker   HELLO <ver> <wid> <sweep> <journal> <replay> <argv...>
                                                    (TCP only, on connect)
                             RUN <index> <attempt> <hex key>
                             PULL
                             FIN
     worker -> coordinator   RDY
                             OK <index>
                             ERR <index> <T|P> <hex reason>
                             JNL <nbytes> followed by nbytes of raw journal

   Keys, failure reasons, paths and argv travel hex-encoded so they can
   never smuggle a newline or space into the framing.  Results never travel
   inside the control protocol: a worker journals the value, replies [OK],
   and the coordinator reads the value back from the worker's journal (on a
   shared filesystem) or pulls the journal's raw checksummed bytes with
   [PULL] after the sweep — so a kill between journal append and reply
   loses only the reply, and the coordinator recovers the value from the
   journal when it reaps the corpse. *)

exception Worker_failure of string

let () =
  Printexc.register_printer (function
    (* The reason is a worker-side [Printexc.to_string]; printing it
       verbatim keeps multi-process failure reports byte-identical to
       single-process ones. *)
    | Worker_failure reason -> Some reason
    | _ -> None)

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> (
    match float_of_string_opt s with Some f when f > 0.0 -> f | _ -> default)
  | None -> default

let default_drain_timeout () = env_float "PV_PROCPOOL_DRAIN_S" 10.0
let default_handshake_timeout () = env_float "PV_PROCPOOL_HANDSHAKE_S" 10.0

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* --- worker-side context ----------------------------------------------- *)

type ctx = {
  wid : int;
  journal : string;
  sweep : int;
  replay : string option;
  cmd_in : in_channel;
  reply_out : out_channel;
}

let worker : ctx option ref = ref None
let worker_ctx () = !worker
let in_worker () = !worker <> None

let worker_arg = "__worker"
let listen_arg = "--listen"

let worker_init () =
  let getenv name =
    match Sys.getenv_opt name with
    | Some v -> v
    | None ->
      Printf.eprintf "procpool worker: missing %s in environment\n%!" name;
      exit 70
  in
  let wid =
    match int_of_string_opt (getenv "PV_WORKER_ID") with
    | Some w -> w
    | None ->
      Printf.eprintf "procpool worker: malformed PV_WORKER_ID\n%!";
      exit 70
  in
  let journal = getenv "PV_WORKER_JOURNAL" in
  let sweep =
    match int_of_string_opt (getenv "PV_WORKER_SWEEP") with
    | Some s -> s
    | None ->
      Printf.eprintf "procpool worker: malformed PV_WORKER_SWEEP\n%!";
      exit 70
  in
  let replay =
    match Sys.getenv_opt "PV_WORKER_REPLAY" with
    | Some "" | None -> None
    | Some p -> Some p
  in
  (* The reply channel is a private dup of stdout taken *before* stdout is
     pointed at /dev/null: the worker re-runs the whole CLI code path, which
     prints tables and reports as it goes, and none of that may leak into
     the protocol stream (or the user's terminal). *)
  let reply_fd = Unix.dup Unix.stdout in
  Unix.set_close_on_exec reply_fd;
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  if Sys.getenv_opt "PV_PROCPOOL_DEBUG" = None then Unix.dup2 devnull Unix.stderr;
  Unix.close devnull;
  let ctx =
    {
      wid;
      journal;
      sweep;
      replay;
      cmd_in = Unix.in_channel_of_descr Unix.stdin;
      reply_out = Unix.out_channel_of_descr reply_fd;
    }
  in
  worker := Some ctx;
  ctx

(* --- worker-side serving ----------------------------------------------- *)

type verdict = Done | Fail of { transient : bool; reason : string }

let send_line oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with Sys_error _ | End_of_file -> None

let serve ctx ~handle =
  send_line ctx.reply_out "RDY";
  let rec loop () =
    match input_line ctx.cmd_in with
    | exception End_of_file -> ()
    | "FIN" -> ()
    | "PULL" ->
      (* Ship the journal's raw checksummed bytes to a coordinator that
         cannot see our filesystem.  Every append flushed, so the file is
         the authoritative committed state; the coordinator re-verifies
         each frame's checksum on load either way. *)
      let body = Option.value (read_file ctx.journal) ~default:"" in
      send_line ctx.reply_out (Printf.sprintf "JNL %d" (String.length body));
      output_string ctx.reply_out body;
      flush ctx.reply_out;
      loop ()
    | line -> (
      match String.split_on_char ' ' line with
      | [ "RUN"; idx; att; hexkey ] -> (
        match
          (int_of_string_opt idx, int_of_string_opt att, Checksum.string_of_hex hexkey)
        with
        | Some index, Some attempt, Some key ->
          (match handle ~index ~attempt ~key with
          | Done -> send_line ctx.reply_out (Printf.sprintf "OK %d" index)
          | Fail { transient; reason } ->
            send_line ctx.reply_out
              (Printf.sprintf "ERR %d %s %s" index
                 (if transient then "T" else "P")
                 (Checksum.hex_of_string reason)));
          loop ()
        | _ -> loop () (* malformed command: skip, stay alive *))
      | _ -> loop ())
  in
  loop ()

(* --- spawners (local pipe workers) -------------------------------------- *)

type spawner = wid:int -> journal:string -> Transport.link

let make_pipes () =
  let cmd_r, cmd_w = Unix.pipe () in
  let reply_r, reply_w = Unix.pipe () in
  (* Parent ends must not leak into workers spawned later: a worker holding
     a sibling's write end would keep that sibling's reply pipe open past
     its death.  (Only protects exec-based spawning; the fork spawner's
     coordinator relies on waitpid, not EOF, for death detection.) *)
  Unix.set_close_on_exec cmd_w;
  Unix.set_close_on_exec reply_r;
  (cmd_r, cmd_w, reply_r, reply_w)

let fork_spawner f : spawner =
 fun ~wid ~journal ->
  let cmd_r, cmd_w, reply_r, reply_w = make_pipes () in
  match Unix.fork () with
  | 0 ->
    Unix.close cmd_w;
    Unix.close reply_r;
    let ctx =
      {
        wid;
        journal;
        sweep = 0;
        replay = None;
        cmd_in = Unix.in_channel_of_descr cmd_r;
        reply_out = Unix.out_channel_of_descr reply_w;
      }
    in
    (match f ctx with () -> Unix._exit 0 | exception _ -> Unix._exit 71)
  | pid ->
    Unix.close cmd_r;
    Unix.close reply_w;
    Transport.pipe_link ~pid ~send:cmd_w ~recv:reply_r

let reexec_argv : string list option ref = ref None
let set_reexec_argv args = reexec_argv := Some args
let reexec_available () = !reexec_argv <> None

let reexec_spawner ~sweep ~replay : spawner =
 fun ~wid ~journal ->
  let argv =
    match !reexec_argv with
    | Some a -> a
    | None -> invalid_arg "Procpool.reexec_spawner: set_reexec_argv not called"
  in
  let cmd_r, cmd_w, reply_r, reply_w = make_pipes () in
  let prog = Sys.executable_name in
  let args = Array.of_list (prog :: worker_arg :: argv) in
  let keep =
    Unix.environment () |> Array.to_list
    |> List.filter (fun kv ->
           not
             (String.length kv >= 10 && String.sub kv 0 10 = "PV_WORKER_"))
  in
  let env =
    Array.of_list
      (keep
      @ [
          Printf.sprintf "PV_WORKER_ID=%d" wid;
          Printf.sprintf "PV_WORKER_JOURNAL=%s" journal;
          Printf.sprintf "PV_WORKER_SWEEP=%d" sweep;
          Printf.sprintf "PV_WORKER_REPLAY=%s" (Option.value replay ~default:"");
        ])
  in
  let pid = Unix.create_process_env prog args env cmd_r reply_w Unix.stderr in
  Unix.close cmd_r;
  Unix.close reply_w;
  Transport.pipe_link ~pid ~send:cmd_w ~recv:reply_r

(* --- TCP handshake and standing workers ---------------------------------- *)

type hello = {
  h_wid : int;
  h_sweep : int;
  h_journal : string;
  h_replay : string option;
  h_argv : string list;
}

let hello_version = 1

let hello_line h =
  let hex = Checksum.hex_of_string in
  String.concat " "
    ([
       "HELLO";
       string_of_int hello_version;
       string_of_int h.h_wid;
       string_of_int h.h_sweep;
       hex h.h_journal;
       (match h.h_replay with None -> "-" | Some p -> hex p);
     ]
    @ List.map hex h.h_argv)

let parse_hello line =
  match String.split_on_char ' ' line with
  | "HELLO" :: ver :: wid :: sweep :: journal :: replay :: argv -> (
    match
      ( int_of_string_opt ver,
        int_of_string_opt wid,
        int_of_string_opt sweep,
        Checksum.string_of_hex journal )
    with
    | Some v, Some h_wid, Some h_sweep, Some h_journal when v = hello_version -> (
      let h_replay =
        if replay = "-" then Some None
        else match Checksum.string_of_hex replay with Some p -> Some (Some p) | None -> None
      in
      match h_replay with
      | None -> None
      | Some h_replay -> (
        let rec decode acc = function
          | [] -> Some (List.rev acc)
          | a :: rest -> (
            match Checksum.string_of_hex a with
            | Some s -> decode (s :: acc) rest
            | None -> None)
        in
        match decode [] argv with
        | Some h_argv -> Some { h_wid; h_sweep; h_journal; h_replay; h_argv }
        | None -> None))
    | _ -> None)
  | _ -> None

type connector =
  wid:int -> journal:string -> host:string -> port:int -> timeout:float ->
  (Transport.link, string) result

let tcp_connector ~sweep ~replay : connector =
 fun ~wid ~journal ~host ~port ~timeout ->
  let argv =
    match !reexec_argv with
    | Some a -> a
    | None -> invalid_arg "Procpool.tcp_connector: set_reexec_argv not called"
  in
  match Transport.connect ~host ~port ~timeout with
  | Error e -> Error e
  | Ok fd ->
    let h =
      { h_wid = wid; h_sweep = sweep; h_journal = journal; h_replay = replay;
        h_argv = argv }
    in
    if Transport.send_line fd (hello_line h) then
      Ok (Transport.sock_link ~host ~port fd)
    else begin
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "handshake write to %s:%d failed" host port)
    end

(* Build a worker context from an accepted connection + parsed HELLO and
   record it, so library code sees [in_worker ()] before the sweep code
   path runs.  The journal's directory is created: a genuinely remote
   worker does not share the coordinator's scratch tree. *)
let tcp_worker_ctx conn (h : hello) =
  mkdir_p (Filename.dirname h.h_journal);
  let reply_fd = Unix.dup conn in
  let ctx =
    {
      wid = h.h_wid;
      journal = h.h_journal;
      sweep = h.h_sweep;
      replay = h.h_replay;
      cmd_in = Unix.in_channel_of_descr conn;
      reply_out = Unix.out_channel_of_descr reply_fd;
    }
  in
  worker := Some ctx;
  ctx

let standing_accept listen_fd ~serve =
  let rec reap () =
    match Unix.waitpid [ Unix.WNOHANG ] (-1) with
    | 0, _ -> ()
    | _ -> reap ()
    | exception Unix.Unix_error _ -> ()
  in
  let rec loop () =
    reap ();
    match Unix.accept listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | conn, _ ->
      (match Transport.read_line_within conn ~timeout:30.0 with
      | None -> ( (* silent or malformed client: drop it, keep listening *)
        try Unix.close conn with Unix.Unix_error _ -> ())
      | Some line -> (
        match parse_hello line with
        | None -> (
          try Unix.close conn with Unix.Unix_error _ -> ())
        | Some hello -> (
          match Unix.fork () with
          | 0 ->
            (try Unix.close listen_fd with Unix.Unix_error _ -> ());
            (match serve ~conn ~hello with
            | () -> Unix._exit 0
            | exception _ -> Unix._exit 71)
          | _pid -> (
            try Unix.close conn with Unix.Unix_error _ -> ()))));
      loop ()
  in
  loop ()

let standing_worker ~listen ~run =
  match Transport.parse_hostspec listen with
  | Error e ->
    Printf.eprintf "procpool worker: %s\n%!" e;
    exit 70
  | Ok (host, port) -> (
    match Transport.listen_on ~host ~port with
    | Error e ->
      Printf.eprintf "procpool worker: cannot listen on %s:%d: %s\n%!" host port e;
      exit 70
    | Ok (fd, actual) ->
      Printf.eprintf "procpool: worker listening on %s:%d\n%!" host actual;
      standing_accept fd ~serve:(fun ~conn ~hello ->
          let _ctx = tcp_worker_ctx conn hello in
          (* Same muzzling as [worker_init]: the re-run CLI prints tables as
             it goes, and none of that may reach the terminal (replies ride
             the socket, a private dup taken above). *)
          let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
          Unix.dup2 devnull Unix.stdout;
          if Sys.getenv_opt "PV_PROCPOOL_DEBUG" = None then
            Unix.dup2 devnull Unix.stderr;
          Unix.close devnull;
          Unix._exit (run ~argv:hello.h_argv)))

(* --- coordinator -------------------------------------------------------- *)

type outcome =
  | Completed of { attempts : int }
  | Failed of { attempts : int; transient : bool; reason : string }

type dead_host = { dh_host : string; dh_port : int; dh_reason : string }

type wstate = {
  ws_wid : int;
  ws_journal : string;
  mutable ws_link : Transport.link option;  (* None: never connected / closed *)
  ws_buf : Buffer.t;
  mutable ws_ready : bool;  (* sent RDY and has no inflight cell *)
  mutable ws_handshaken : bool;  (* current connection has sent RDY *)
  mutable ws_inflight : (int * int) option;  (* index, attempt *)
  mutable ws_alive : bool;
  mutable ws_eof : bool;  (* socket saw EOF/reset or a failed write *)
  mutable ws_deadline : float;  (* handshake deadline for current connection *)
  ws_remote : (string * int) option;  (* Some (host, port) for TCP slots *)
  mutable ws_budget : int;  (* per-host reconnect budget (TCP slots only) *)
  mutable ws_dead_reason : string;
}

let journal_has path key =
  match Journal.load path with
  | records -> List.exists (fun (k, _) -> k = key) records
  | exception (Journal.Incompatible _ | Sys_error _) -> false

let max_pull_bytes = 1 lsl 30

let run_jobs ?(hosts = []) ?host_respawns ?drain_timeout ?handshake_timeout
    ?connect ~workers ~respawns ~retries ~scratch ~spawn ~(keys : string array) () =
  if workers < 0 then invalid_arg "Procpool.run_jobs: workers must be >= 0";
  if workers = 0 && hosts = [] then
    invalid_arg "Procpool.run_jobs: need at least one worker or host";
  if hosts <> [] && connect = None then
    invalid_arg "Procpool.run_jobs: hosts given without a connector";
  let drain_timeout =
    match drain_timeout with Some t -> t | None -> default_drain_timeout ()
  in
  let handshake_timeout =
    match handshake_timeout with
    | Some t -> t
    | None -> default_handshake_timeout ()
  in
  let host_respawns = match host_respawns with Some r -> r | None -> respawns in
  let n = Array.length keys in
  let outcomes : outcome option array = Array.make n None in
  let dead_hosts = ref [] in
  if n = 0 then ([||], [], [])
  else begin
    let queue = Queue.create () in
    for i = 0 to n - 1 do
      Queue.add (i, 0) queue
    done;
    let old_sigpipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ -> None
    in
    let respawn_budget = ref respawns in
    let npipe = min workers n in
    let journal_for wid =
      Filename.concat scratch (Printf.sprintf "worker-%d.journal" wid)
    in
    let spawn_pipe wid =
      let journal = journal_for wid in
      let link = spawn ~wid ~journal in
      {
        ws_wid = wid;
        ws_journal = journal;
        ws_link = Some link;
        ws_buf = Buffer.create 256;
        ws_ready = false;
        ws_handshaken = false;
        ws_inflight = None;
        ws_alive = true;
        ws_eof = false;
        ws_deadline = infinity;  (* pipe death is waitpid's business *)
        ws_remote = None;
        ws_budget = 0;
        ws_dead_reason = "";
      }
    in
    let connect_host ~wid ~host ~port =
      match connect with
      | None -> Error "no connector"
      | Some c ->
        c ~wid ~journal:(journal_for wid) ~host ~port ~timeout:handshake_timeout
    in
    (* TCP slots start disconnected; the death poll drives every connection
       attempt — initial and reconnect alike — out of one per-host budget of
       [host_respawns + 1] attempts, so a host that refuses the very first
       connect is arbitrated (and reported dead) exactly like one that
       drops mid-sweep. *)
    let spawn_tcp i (host, port) =
      let wid = npipe + i in
      {
        ws_wid = wid;
        ws_journal = journal_for wid;
        ws_link = None;
        ws_buf = Buffer.create 256;
        ws_ready = false;
        ws_handshaken = false;
        ws_inflight = None;
        ws_alive = false;
        ws_eof = false;
        ws_deadline = infinity;
        ws_remote = Some (host, port);
        ws_budget = host_respawns + 1;
        ws_dead_reason = "";
      }
    in
    let pool =
      Array.append
        (Array.init npipe spawn_pipe)
        (Array.of_list (List.mapi spawn_tcp hosts))
    in
    let unresolved () = Array.exists (fun o -> o = None) outcomes in
    let resolve idx o = if outcomes.(idx) = None then outcomes.(idx) <- Some o in
    let fail_or_retry idx attempt ~transient ~reason =
      if transient && attempt < retries then Queue.add (idx, attempt + 1) queue
      else resolve idx (Failed { attempts = attempt + 1; transient; reason })
    in
    let handle_reply w line =
      match String.split_on_char ' ' line with
      | [ "RDY" ] ->
        w.ws_ready <- true;
        w.ws_handshaken <- true
      | [ "OK"; idx ] -> (
        match int_of_string_opt idx with
        | Some i ->
          (match w.ws_inflight with
          | Some (j, attempt) when j = i ->
            resolve i (Completed { attempts = attempt + 1 });
            w.ws_inflight <- None;
            w.ws_ready <- true
          | _ -> resolve i (Completed { attempts = 1 }))
        | None -> ())
      | [ "ERR"; idx; cls; hexreason ] -> (
        match (int_of_string_opt idx, Checksum.string_of_hex hexreason) with
        | Some i, Some reason ->
          let transient = cls = "T" in
          let attempt =
            match w.ws_inflight with Some (j, a) when j = i -> a | _ -> 0
          in
          (match w.ws_inflight with
          | Some (j, _) when j = i ->
            w.ws_inflight <- None;
            w.ws_ready <- true
          | _ -> ());
          fail_or_retry i attempt ~transient ~reason
        | _ -> ())
      | _ -> ()
    in
    let drain_buffer w =
      let rec next () =
        let s = Buffer.contents w.ws_buf in
        match String.index_opt s '\n' with
        | None -> ()
        | Some nl ->
          let line = String.sub s 0 nl in
          Buffer.clear w.ws_buf;
          Buffer.add_string w.ws_buf (String.sub s (nl + 1) (String.length s - nl - 1));
          handle_reply w line;
          next ()
      in
      next ()
    in
    (* A partial line left in the buffer when the peer dies (a reply torn by
       a mid-write kill or reset) is simply never completed by a newline —
       drain_buffer ignores it, so torn lines can never be misparsed. *)
    let read_some w =
      match w.ws_link with
      | None -> false
      | Some link -> (
        let b = Bytes.create 4096 in
        match Unix.read link.Transport.recv b 0 4096 with
        | 0 ->
          w.ws_eof <- true;
          false
        | k ->
          Buffer.add_subbytes w.ws_buf b 0 k;
          drain_buffer w;
          true
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
          false
        | exception Unix.Unix_error _ ->
          w.ws_eof <- true;
          false)
    in
    let send_to w line =
      match w.ws_link with
      | None -> false
      | Some link ->
        let ok = Transport.send_line link.Transport.send line in
        if not ok then w.ws_eof <- true;
        ok
    in
    let close_link w =
      (match w.ws_link with Some l -> Transport.close_link l | None -> ());
      w.ws_link <- None
    in
    (* Shared arbitration for every death, local or remote: drain raced
       replies, then decide the fate of the inflight cell — if its record
       made it into the worker's journal the work *happened* (a kill between
       journal append and reply loses nothing); an unreadable or absent
       journal (node loss without a shared filesystem) is a lost transient
       attempt that re-queues under the retry budget. *)
    let reap_death w =
      (match w.ws_link with
      | Some l -> (
        try Unix.set_nonblock l.Transport.recv with Unix.Unix_error _ -> ())
      | None -> ());
      let rec drain () = if read_some w then drain () in
      (try drain () with _ -> ());
      (match w.ws_inflight with
      | Some (idx, attempt) when outcomes.(idx) = None ->
        if journal_has w.ws_journal keys.(idx) then
          resolve idx (Completed { attempts = attempt + 1 })
        else
          fail_or_retry idx attempt ~transient:true
            ~reason:(Printexc.to_string (Fault.Killed { index = idx; attempt }))
      | _ -> ());
      w.ws_inflight <- None;
      w.ws_alive <- false;
      w.ws_ready <- false;
      w.ws_handshaken <- false;
      w.ws_eof <- false;
      Buffer.clear w.ws_buf;
      close_link w
    in
    let mark_host_dead w reason =
      w.ws_dead_reason <- reason;
      match w.ws_remote with
      | Some (host, port) ->
        dead_hosts :=
          { dh_host = host; dh_port = port; dh_reason = reason } :: !dead_hosts
      | None -> ()
    in
    (* Node loss: reap like a corpse, then reconnect to the standing worker
       under the per-host budget (each attempt, successful or refused,
       consumes one).  The fresh serving process re-opens the same journal —
       open_writer quarantines any torn frame the loss left behind. *)
    let reconnect w ~why =
      let rec attempt () =
        if w.ws_budget <= 0 then
          mark_host_dead w
            (Printf.sprintf "%s; reconnect budget exhausted" why)
        else begin
          w.ws_budget <- w.ws_budget - 1;
          match w.ws_remote with
          | None -> ()
          | Some (host, port) -> (
            match connect_host ~wid:w.ws_wid ~host ~port with
            | Ok link ->
              w.ws_link <- Some link;
              w.ws_alive <- true;
              w.ws_eof <- false;
              w.ws_ready <- false;
              w.ws_handshaken <- false;
              w.ws_deadline <- Unix.gettimeofday () +. handshake_timeout
            | Error _ -> attempt ())
        end
      in
      attempt ()
    in
    let poll_deaths () =
      Array.iter
        (fun w ->
          if w.ws_alive then begin
            match (w.ws_link, w.ws_remote) with
            | Some link, None -> (
              (* local pipe worker: waitpid is authoritative *)
              let pid =
                match link.Transport.peer with
                | Transport.Proc { pid } -> pid
                | Transport.Sock _ -> assert false
              in
              match Unix.waitpid [ Unix.WNOHANG ] pid with
              | 0, _ -> ()
              | _ ->
                reap_death w;
                (* Respawn into the same slot (and the same journal: the
                   fresh worker's open_writer quarantines and truncates any
                   torn record — the production torn-write recovery path). *)
                if unresolved () && !respawn_budget > 0 then begin
                  decr respawn_budget;
                  let fresh = spawn ~wid:w.ws_wid ~journal:w.ws_journal in
                  w.ws_link <- Some fresh;
                  w.ws_alive <- true;
                  w.ws_ready <- false;
                  w.ws_handshaken <- false
                end
              | exception Unix.Unix_error (Unix.ECHILD, _, _) -> reap_death w
              | exception Unix.Unix_error _ -> ())
            | _, Some (host, port) ->
              (* remote worker: EOF/reset or handshake silence is the corpse *)
              if w.ws_eof then begin
                reap_death w;
                if unresolved () then
                  reconnect w
                    ~why:(Printf.sprintf "connection to %s:%d lost" host port)
              end
              else if
                (not w.ws_handshaken) && Unix.gettimeofday () > w.ws_deadline
              then begin
                reap_death w;
                if unresolved () then
                  reconnect w
                    ~why:
                      (Printf.sprintf "handshake with %s:%d timed out after %.1fs"
                         host port handshake_timeout)
              end
            | None, None -> ()
          end
          else if
            (* disconnected TCP slot that is not yet abandoned: connect *)
            w.ws_remote <> None && w.ws_dead_reason = "" && unresolved ()
          then
            let host, port = Option.get w.ws_remote in
            reconnect w ~why:(Printf.sprintf "cannot connect to %s:%d" host port))
        pool
    in
    let dispatch () =
      Array.iter
        (fun w ->
          if
            w.ws_alive && w.ws_ready && w.ws_inflight = None
            && not (Queue.is_empty queue)
          then begin
            let idx, attempt = Queue.pop queue in
            if outcomes.(idx) <> None then ()
            else if
              send_to w
                (Printf.sprintf "RUN %d %d %s" idx attempt
                   (Checksum.hex_of_string keys.(idx)))
            then begin
              w.ws_ready <- false;
              w.ws_inflight <- Some (idx, attempt)
            end
            else (* dead pipe/socket: requeue, the death poll will reap it *)
              Queue.add (idx, attempt) queue
          end)
        pool
    in
    let select_replies () =
      let fds =
        Array.to_list pool
        |> List.filter_map (fun w ->
               match w.ws_link with
               | Some l when w.ws_alive -> Some l.Transport.recv
               | _ -> None)
      in
      if fds <> [] then
        match Unix.select fds [] [] 0.2 with
        | readable, _, _ ->
          Array.iter
            (fun w ->
              match w.ws_link with
              | Some l when w.ws_alive && List.mem l.Transport.recv readable ->
                ignore (read_some w)
              | _ -> ())
            pool
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      else Unix.sleepf 0.02 (* all slots dead-but-reconnectable: don't spin *)
    in
    let recoverable w =
      w.ws_alive || (w.ws_remote <> None && w.ws_budget > 0 && w.ws_dead_reason = "")
    in
    (* Main loop: runs until every cell has an outcome or the pool is
       unrecoverable (all workers dead or abandoned, budgets spent). *)
    (* Invariants: every unresolved cell is queued or inflight on a live
       worker; reaping a death either requeues/resolves its inflight cell
       and respawns/reconnects (budget permitting) or leaves the slot dead —
       so "unresolved but no recoverable worker" is exactly the
       unrecoverable state. *)
    while unresolved () && Array.exists recoverable pool do
      poll_deaths ();
      dispatch ();
      select_replies ()
    done;
    (* Anything still unresolved lost its workers: fail it rather than hang. *)
    Queue.iter
      (fun (idx, attempt) ->
        resolve idx
          (Failed
             {
               attempts = attempt;
               transient = true;
               reason = "worker pool exhausted (respawn budget spent)";
             }))
      queue;
    Array.iteri
      (fun idx o ->
        if o = None then
          outcomes.(idx) <-
            Some
              (Failed
                 {
                   attempts = 0;
                   transient = true;
                   reason = "worker pool exhausted (respawn budget spent)";
                 }))
      outcomes;
    (* Pull remote journal segments before FIN: on a shared filesystem the
       local file already exists and wins; without one, the pulled bytes
       materialize the worker's journal locally so value recovery and the
       checkpoint merge need no filesystem in common.  Stray lines (a late
       RDY from a reconnect that got no work) are dropped; the payload is
       raw checksummed frames that Journal.load re-verifies anyway. *)
    let pull_journal w =
      if w.ws_alive && w.ws_handshaken && w.ws_remote <> None && send_to w "PULL"
      then begin
        let deadline = Unix.gettimeofday () +. drain_timeout in
        let rec parse () =
          let s = Buffer.contents w.ws_buf in
          match String.index_opt s '\n' with
          | None -> `More
          | Some nl -> (
            let line = String.sub s 0 nl in
            match String.split_on_char ' ' line with
            | [ "JNL"; len ] -> (
              match int_of_string_opt len with
              | Some len when len >= 0 && len <= max_pull_bytes ->
                if String.length s - (nl + 1) >= len then
                  `Done (String.sub s (nl + 1) len)
                else `More
              | _ -> `Fail)
            | _ ->
              Buffer.clear w.ws_buf;
              Buffer.add_string w.ws_buf
                (String.sub s (nl + 1) (String.length s - nl - 1));
              parse ())
        in
        let rec wait () =
          match parse () with
          | `Done payload ->
            if (not (Sys.file_exists w.ws_journal)) && payload <> "" then begin
              try
                mkdir_p (Filename.dirname w.ws_journal);
                let oc = open_out_bin w.ws_journal in
                Fun.protect
                  ~finally:(fun () -> close_out_noerr oc)
                  (fun () -> output_string oc payload)
              with Sys_error _ -> ()
            end
          | `Fail -> ()
          | `More ->
            if Unix.gettimeofday () > deadline then ()
            else begin
              (match w.ws_link with
              | Some l -> (
                match Unix.select [ l.Transport.recv ] [] [] 0.2 with
                | [], _, _ -> ()
                | _ ->
                  (* raw read: do NOT drain_buffer — the payload is bytes *)
                  let b = Bytes.create 65536 in
                  (match Unix.read l.Transport.recv b 0 65536 with
                  | 0 -> w.ws_eof <- true
                  | k -> Buffer.add_subbytes w.ws_buf b 0 k
                  | exception Unix.Unix_error _ -> w.ws_eof <- true)
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
              | None -> w.ws_eof <- true);
              if w.ws_eof then () else wait ()
            end
        in
        wait ()
      end
    in
    Array.iter pull_journal pool;
    (* Orderly shutdown: FIN, grace period, then SIGKILL stragglers (with a
       one-line warning naming the worker).  TCP links just close — the
       remote serving process sees EOF and exits; its standing listener
       stays up for the next sweep. *)
    Array.iter (fun w -> if w.ws_alive then ignore (send_to w "FIN")) pool;
    Array.iter
      (fun w ->
        if w.ws_remote <> None then begin
          w.ws_alive <- false;
          close_link w
        end)
      pool;
    let deadline = Unix.gettimeofday () +. drain_timeout in
    let rec wait_exits () =
      let pending = Array.exists (fun w -> w.ws_alive) pool in
      if pending then begin
        Array.iter
          (fun w ->
            if w.ws_alive then
              let pid =
                match w.ws_link with
                | Some { Transport.peer = Transport.Proc { pid }; _ } -> pid
                | _ -> -1
              in
              if pid < 0 then begin
                w.ws_alive <- false;
                close_link w
              end
              else
                match Unix.waitpid [ Unix.WNOHANG ] pid with
                | 0, _ -> ()
                | _ ->
                  w.ws_alive <- false;
                  close_link w
                | exception Unix.Unix_error _ ->
                  w.ws_alive <- false;
                  close_link w)
          pool;
        if Array.exists (fun w -> w.ws_alive) pool then
          if Unix.gettimeofday () > deadline then
            Array.iter
              (fun w ->
                if w.ws_alive then begin
                  (match w.ws_link with
                  | Some { Transport.peer = Transport.Proc { pid }; _ } ->
                    Printf.eprintf
                      "procpool: warning: worker %d (pid %d) did not exit within \
                       %.1fs of FIN (PV_PROCPOOL_DRAIN_S); killing it\n%!"
                      w.ws_wid pid drain_timeout;
                    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
                    (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
                  | _ -> ());
                  w.ws_alive <- false;
                  close_link w
                end)
              pool
          else begin
            Unix.sleepf 0.02;
            wait_exits ()
          end
      end
    in
    wait_exits ();
    (match old_sigpipe with
    | Some b -> (try Sys.set_signal Sys.sigpipe b with Invalid_argument _ -> ())
    | None -> ());
    let final =
      Array.map
        (function
          | Some o -> o
          | None ->
            Failed { attempts = 0; transient = true; reason = "unresolved cell" })
        outcomes
    in
    let journals =
      List.init (npipe + List.length hosts) journal_for
      |> List.filter Sys.file_exists
    in
    (final, journals, List.rev !dead_hosts)
  end
