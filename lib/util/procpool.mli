(** Coordinator/worker process pool for supervised sweeps ([--workers N],
    [--hosts HOST:PORT,...]).

    The in-process {!Pool} cannot survive a SIGKILL — a dead domain takes
    the whole runtime with it.  This pool runs sweep cells in separate OS
    processes so the coordinator can lose a worker (a crash, an OOM kill,
    injected [--fault kill@i]) and recover: respawn the worker, salvage
    completed cells from its crash-safe journal, and retry exactly the cell
    whose attempt was lost.

    {b Execution model.}  The coordinator spawns [N] local workers —
    normally by re-executing its own binary with a hidden [__worker] argv
    marker ({!reexec_spawner}), so each worker rebuilds the identical sweep
    from the identical command line — and connects to any number of
    standing remote workers ([pv_cli __worker --listen HOST:PORT]) over
    TCP, greeting each with a [HELLO] carrying slot id, sweep ordinal,
    journal path and the argv to rebuild the sweep from.  Both kinds speak
    the same newline-framed protocol over a {!Transport.link}
    ([RUN <index> <attempt> <hex key>] down, [RDY]/[OK]/[ERR] up).  Cell
    {e results never travel inside the control protocol}: the worker
    appends each result to its own checksummed {!Journal} (and the shared
    {!Rescache}) before replying, and the coordinator reads values back
    from worker journals after the run — from the shared filesystem when
    there is one, or by pulling the journal's raw checksummed bytes over
    the same connection ([PULL] → [JNL <nbytes>] + payload) when there is
    not.  A worker killed between journal append and reply therefore loses
    nothing — the coordinator finds the record when it reaps the corpse.

    {b Recovery.}  Local worker death is detected by [waitpid] (not pipe
    EOF, which fork-spawned siblings can hold open); remote death is an
    EOF/reset on the socket or a handshake that never produces [RDY]
    within the deadline.  Either way the coordinator drains raced replies,
    consults the worker's journal for the inflight cell (present →
    completed; absent → a lost, transient attempt that re-queues under the
    retry budget), and revives the slot — a fresh local process respawned
    into the same journal (the fresh worker's [open_writer] quarantines
    and truncates the torn record the kill left behind), or a fresh
    connection to the same standing remote worker.  Local respawns share
    one pool-wide budget ([respawns]); each host has its own budget of
    [host_respawns + 1] connection attempts, and a host that exhausts it
    is abandoned and named in the dead-host report while the sweep
    continues on the remaining workers.  A pool that exhausts both workers
    and budgets fails its remaining cells instead of hanging.

    {b Determinism.}  Cell identity is the key (stable across processes
    and machines); fault indices are positions in the coordinator's
    runnable list, carried in each [RUN] command, so [Fault.decide] sees
    identical inputs in every process and the injected pattern is
    reproducible for any mix of local and remote workers. *)

exception Worker_failure of string
(** A cell failed inside a worker process.  The payload is the worker-side
    [Printexc.to_string] of the real exception, and the registered printer
    returns it verbatim — so failure reports render byte-identically to the
    single-process path. *)

(** {1 Worker side} *)

type ctx = {
  wid : int;  (** worker slot id (stable across respawns) *)
  journal : string;  (** this worker's crash-safe journal path *)
  sweep : int;  (** ordinal of the {!Supervise.run} call to serve *)
  replay : string option;
      (** combined journal holding earlier sweeps' results, so dependent
          sweeps (calibration → points) replay instead of recomputing *)
  cmd_in : in_channel;  (** coordinator commands *)
  reply_out : out_channel;
      (** protocol replies (a private dup of stdout or of the socket) *)
}

val worker_arg : string
(** ["__worker"]: the argv marker the CLI checks to enter worker mode. *)

val listen_arg : string
(** ["--listen"]: with {!worker_arg}, enters standing TCP worker mode. *)

val worker_init : unit -> ctx
(** Enter worker mode: read [PV_WORKER_ID]/[PV_WORKER_JOURNAL]/
    [PV_WORKER_SWEEP]/[PV_WORKER_REPLAY] from the environment (exit 70 if
    absent or malformed), dup the protocol reply channel off stdout, then
    point stdout (and stderr, unless [PV_PROCPOOL_DEBUG] is set) at
    [/dev/null] — the worker re-runs the whole CLI code path and none of
    its human-facing output may pollute the protocol or the terminal.
    Records the context for {!worker_ctx}. *)

val worker_ctx : unit -> ctx option
(** The context recorded by {!worker_init} or {!standing_worker}, if this
    process is a worker — how library code (Supervise, the CLI) detects
    worker mode. *)

val in_worker : unit -> bool

type verdict = Done | Fail of { transient : bool; reason : string }
(** What a worker reports for one cell.  [Done] implies the result has
    already been journaled (and cached).  Transient failures re-queue under
    the coordinator's retry budget; permanent ones fail the cell. *)

val serve : ctx -> handle:(index:int -> attempt:int -> key:string -> verdict) -> unit
(** Worker main loop: announce readiness, then execute [RUN] commands via
    [handle] until [FIN] or EOF.  [handle] owns everything domain-specific
    (finding the cell for [key], fault realization, journaling).  [PULL]
    replies with the journal's current raw bytes ([JNL <nbytes>] +
    payload) so a coordinator without filesystem access can collect
    results. *)

(** {1 Spawning local workers} *)

type spawner = wid:int -> journal:string -> Transport.link

val fork_spawner : (ctx -> unit) -> spawner
(** Spawn workers by [fork]: the child runs the callback on a fresh context
    and [_exit]s.  For tests — no re-exec, so the callback closes over the
    test's cells directly.  [sweep]/[replay] are [0]/[None]. *)

val set_reexec_argv : string list -> unit
(** Record the CLI's original argv (without the program name) so
    {!reexec_spawner} and {!tcp_connector} can rebuild the command line.
    Called once at CLI startup. *)

val reexec_available : unit -> bool

val reexec_spawner : sweep:int -> replay:string option -> spawner
(** Spawn workers by re-executing [Sys.executable_name] with the recorded
    argv behind a [__worker] marker, passing slot id, journal path, target
    sweep ordinal and replay journal through [PV_WORKER_*] environment
    variables.  Raises [Invalid_argument] if {!set_reexec_argv} was never
    called. *)

(** {1 TCP handshake and standing workers} *)

type hello = {
  h_wid : int;
  h_sweep : int;
  h_journal : string;
  h_replay : string option;
  h_argv : string list;
}
(** The coordinator's greeting to a standing worker: everything
    {!reexec_spawner} passes through the environment, carried as the first
    protocol line instead ([HELLO <ver> <wid> <sweep> <hex journal>
    <hex replay|-> <hex argv>...] — paths and argv are hex-coded so they
    can never smuggle a space or newline into the framing). *)

val hello_line : hello -> string

val parse_hello : string -> hello option

type connector =
  wid:int -> journal:string -> host:string -> port:int -> timeout:float ->
  (Transport.link, string) result
(** Open one connection to a standing worker and complete the handshake
    (coordinator side). *)

val tcp_connector : sweep:int -> replay:string option -> connector
(** The production connector: {!Transport.connect} then a [HELLO] built
    from the recorded argv.  Raises [Invalid_argument] if
    {!set_reexec_argv} was never called. *)

val tcp_worker_ctx : Unix.file_descr -> hello -> ctx
(** Build and record a worker context from an accepted connection and its
    parsed [HELLO] (listener side).  Creates the journal's directory — a
    genuinely remote worker does not share the coordinator's scratch
    tree. *)

val standing_accept :
  Unix.file_descr -> serve:(conn:Unix.file_descr -> hello:hello -> unit) -> unit
(** Accept loop for a standing worker: read and parse a [HELLO] from each
    connection (dropping silent or malformed clients), fork, and run
    [serve] in the child (which must not return to the accept loop — it is
    [_exit]ed).  The parent reaps finished children and keeps listening.
    Never returns.  Exposed separately from {!standing_worker} so tests
    can serve with their own cells instead of re-running a CLI. *)

val standing_worker : listen:string -> run:(argv:string list -> int) -> 'a
(** [pv_cli __worker --listen HOST:PORT]: bind the address (port [0] lets
    the kernel pick), print ["procpool: worker listening on HOST:PORT"] to
    stderr, and serve coordinators forever.  Each accepted [HELLO] forks a
    serving process that records the worker context, muzzles
    stdout/stderr like {!worker_init}, and calls [run] on the [HELLO]'s
    argv — re-evaluating the CLI so the sweep code path finds
    {!worker_ctx} and serves cells over the socket.  Exits 70 on a bad
    listen spec. *)

(** {1 Coordinator side} *)

type outcome =
  | Completed of { attempts : int }
      (** the cell's value is in some worker journal *)
  | Failed of { attempts : int; transient : bool; reason : string }

type dead_host = { dh_host : string; dh_port : int; dh_reason : string }
(** A remote worker abandoned mid-sweep: its connection budget is spent.
    Cells it was running were re-arbitrated before abandonment; the sweep
    result is complete (or failed per-cell) regardless, but the caller
    should surface the loss. *)

val run_jobs :
  ?hosts:(string * int) list ->
  ?host_respawns:int ->
  ?drain_timeout:float ->
  ?handshake_timeout:float ->
  ?connect:connector ->
  workers:int ->
  respawns:int ->
  retries:int ->
  scratch:string ->
  spawn:spawner ->
  keys:string array ->
  unit ->
  outcome array * string list * dead_host list
(** Run one cell per entry of [keys] (cell [i]'s fault index is [i]) on a
    pool of [workers] local processes plus one remote worker per [hosts]
    entry (slot ids continue past the local ones), respawning dead local
    workers up to [respawns] times total, reconnecting to each host up to
    [host_respawns] (default [respawns]) times beyond its first attempt,
    and retrying transiently failed or killed attempts up to [retries]
    extra times per cell.  [workers] may be [0] when [hosts] is non-empty;
    [connect] is required with [hosts] (see {!tcp_connector}).  Worker
    journals are created under [scratch] ([worker-<wid>.journal]); remote
    journal segments are pulled over the connection after the sweep when
    no shared filesystem made them appear locally.  [drain_timeout]
    bounds the post-[FIN] exit grace period (and the journal pull);
    default [PV_PROCPOOL_DRAIN_S] or 10 s, and a straggler that outlives
    it is killed with a one-line warning naming the worker.
    [handshake_timeout] bounds connect + [RDY]; default
    [PV_PROCPOOL_HANDSHAKE_S] or 10 s.  Returns per-cell outcomes (index
    order), the worker journal paths that exist, and the hosts abandoned
    mid-sweep.  SIGPIPE is ignored for the duration. *)
