(** Coordinator/worker process pool for supervised sweeps ([--workers N]).

    The in-process {!Pool} cannot survive a SIGKILL — a dead domain takes
    the whole runtime with it.  This pool runs sweep cells in separate OS
    processes so the coordinator can lose a worker (a crash, an OOM kill,
    injected [--fault kill@i]) and recover: respawn the worker, salvage
    completed cells from its crash-safe journal, and retry exactly the cell
    whose attempt was lost.

    {b Execution model.}  The coordinator spawns [N] workers — normally by
    re-executing its own binary with a hidden [__worker] argv marker
    ({!reexec_spawner}), so each worker rebuilds the identical sweep from
    the identical command line — and hands out cells over a pipe pair per
    worker ([RUN <index> <attempt> <hex key>] down, [OK]/[ERR] up).  Cell
    {e results never travel over the pipe}: the worker appends each result
    to its own checksummed {!Journal} (and the shared {!Rescache}) before
    replying, and the coordinator reads values back from worker journals
    after the run.  A worker killed between journal append and reply
    therefore loses nothing — the coordinator finds the record when it
    reaps the corpse.

    {b Recovery.}  Worker death is detected by [waitpid] (not pipe EOF,
    which fork-spawned siblings can hold open).  On death the coordinator
    drains the reply pipe, consults the worker's journal for the inflight
    cell (present → completed; absent → a lost, transient attempt that
    re-queues under the retry budget), and respawns into the same slot and
    journal — the fresh worker's [open_writer] quarantines and truncates
    the torn record the kill left behind.  Respawns are bounded
    ([respawns]); a pool that exhausts both workers and budget fails its
    remaining cells instead of hanging.

    {b Determinism.}  Cell identity is the key (stable across processes);
    fault indices are positions in the coordinator's runnable list, carried
    in each [RUN] command, so [Fault.decide] sees identical inputs in every
    process and the injected pattern is reproducible for any worker
    count. *)

exception Worker_failure of string
(** A cell failed inside a worker process.  The payload is the worker-side
    [Printexc.to_string] of the real exception, and the registered printer
    returns it verbatim — so failure reports render byte-identically to the
    single-process path. *)

(** {1 Worker side} *)

type ctx = {
  wid : int;  (** worker slot id (stable across respawns) *)
  journal : string;  (** this worker's crash-safe journal path *)
  sweep : int;  (** ordinal of the {!Supervise.run} call to serve *)
  replay : string option;
      (** combined journal holding earlier sweeps' results, so dependent
          sweeps (calibration → points) replay instead of recomputing *)
  cmd_in : in_channel;  (** coordinator commands *)
  reply_out : out_channel;  (** protocol replies (a private dup of stdout) *)
}

val worker_arg : string
(** ["__worker"]: the argv marker the CLI checks to enter worker mode. *)

val worker_init : unit -> ctx
(** Enter worker mode: read [PV_WORKER_ID]/[PV_WORKER_JOURNAL]/
    [PV_WORKER_SWEEP]/[PV_WORKER_REPLAY] from the environment (exit 70 if
    absent or malformed), dup the protocol reply channel off stdout, then
    point stdout (and stderr, unless [PV_PROCPOOL_DEBUG] is set) at
    [/dev/null] — the worker re-runs the whole CLI code path and none of
    its human-facing output may pollute the protocol or the terminal.
    Records the context for {!worker_ctx}. *)

val worker_ctx : unit -> ctx option
(** The context recorded by {!worker_init}, if this process is a worker —
    how library code (Supervise, the CLI) detects worker mode. *)

val in_worker : unit -> bool

type verdict = Done | Fail of { transient : bool; reason : string }
(** What a worker reports for one cell.  [Done] implies the result has
    already been journaled (and cached).  Transient failures re-queue under
    the coordinator's retry budget; permanent ones fail the cell. *)

val serve : ctx -> handle:(index:int -> attempt:int -> key:string -> verdict) -> unit
(** Worker main loop: announce readiness, then execute [RUN] commands via
    [handle] until [FIN] or EOF.  [handle] owns everything domain-specific
    (finding the cell for [key], fault realization, journaling). *)

(** {1 Spawning} *)

type spawned = { pid : int; send : Unix.file_descr; recv : Unix.file_descr }

type spawner = wid:int -> journal:string -> spawned

val fork_spawner : (ctx -> unit) -> spawner
(** Spawn workers by [fork]: the child runs the callback on a fresh context
    and [_exit]s.  For tests — no re-exec, so the callback closes over the
    test's cells directly.  [sweep]/[replay] are [0]/[None]. *)

val set_reexec_argv : string list -> unit
(** Record the CLI's original argv (without the program name) so
    {!reexec_spawner} can rebuild the command line.  Called once at CLI
    startup. *)

val reexec_available : unit -> bool

val reexec_spawner : sweep:int -> replay:string option -> spawner
(** Spawn workers by re-executing [Sys.executable_name] with the recorded
    argv behind a [__worker] marker, passing slot id, journal path, target
    sweep ordinal and replay journal through [PV_WORKER_*] environment
    variables.  Raises [Invalid_argument] if {!set_reexec_argv} was never
    called. *)

(** {1 Coordinator side} *)

type outcome =
  | Completed of { attempts : int }
      (** the cell's value is in some worker journal *)
  | Failed of { attempts : int; transient : bool; reason : string }

val run_jobs :
  workers:int ->
  respawns:int ->
  retries:int ->
  scratch:string ->
  spawn:spawner ->
  keys:string array ->
  outcome array * string list
(** Run one cell per entry of [keys] (cell [i]'s fault index is [i]) on a
    pool of [workers] processes, respawning dead workers up to [respawns]
    times and retrying transiently failed or killed attempts up to
    [retries] extra times per cell.  Worker journals are created under
    [scratch] ([worker-<wid>.journal]).  Returns per-cell outcomes (index
    order) and the worker journal paths that exist, from which the caller
    recovers the values.  SIGPIPE is ignored for the duration. *)
