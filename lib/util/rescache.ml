(* Persistent content-addressed result cache. See rescache.mli for the
   contract (digest keying, torn-write discipline, corrupt-entry policy,
   cross-process lease protocol). *)

let format_version = 1

(* NOT bumped for PR 7: the envelope format and every cached payload type
   are unchanged; only the journal (a different file family) changed
   format.  Bump this the moment any marshalled result type or measured
   simulator behaviour changes. *)
let code_salt = "pv-rescache-2026-08"

(* Digesting and the hex codec are delegated to Checksum (shared with the
   journal framing and the procpool wire encoding). *)
let digest_hex = Checksum.digest_hex
let hex_of_string = Checksum.hex_of_string
let string_of_hex = Checksum.string_of_hex

(* --- cache handle ------------------------------------------------------ *)

type stats = {
  hits : int;
  misses : int;
  writes : int;
  write_errors : int;
  evictions : int;
  corrupt_dropped : int;
}

type t = {
  root : string;
  salt : string; (* effective salt: version + code salt + user salt *)
  max_entries : int option;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
  mutable write_errors : int;
  mutable evictions : int;
  mutable corrupt_dropped : int;
  mutable tmp_counter : int;
  mutable warned_write_error : bool;
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_dir ?(salt = "") ?max_entries root =
  String.iter
    (fun c ->
      if c = '"' || c = '\\' || c = '\n' || c = '\r' then
        invalid_arg "Rescache.open_dir: salt must not contain quotes, backslashes or newlines")
    salt;
  (match max_entries with
  | Some n when n <= 0 -> invalid_arg "Rescache.open_dir: max_entries must be positive"
  | _ -> ());
  mkdir_p root;
  {
    root;
    salt = Printf.sprintf "v%d|%s|%s" format_version code_salt salt;
    max_entries;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    writes = 0;
    write_errors = 0;
    evictions = 0;
    corrupt_dropped = 0;
    tmp_counter = 0;
    warned_write_error = false;
  }

let dir t = t.root

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let entry_base t ~key = digest_hex (t.salt ^ "\n" ^ key)
let entry_path t ~key = Filename.concat t.root (entry_base t ~key ^ ".json")
let lease_path t ~key = Filename.concat t.root (entry_base t ~key ^ ".lease")

(* --- envelope ---------------------------------------------------------- *)

(* Minimal flat-JSON escaping: salts and keys are restricted or re-encoded
   (key travels hex-encoded in the authoritative field), so only the
   human-readable comment needs escaping. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_envelope t ~key payload =
  let b = Buffer.create (512 + (2 * String.length payload)) in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"rescache_version\": %d,\n" format_version);
  Buffer.add_string b (Printf.sprintf "  \"salt\": \"%s\"," t.salt);
  Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "  \"key\": \"%s\",\n" (json_escape key));
  Buffer.add_string b (Printf.sprintf "  \"key_hex\": \"%s\",\n" (hex_of_string key));
  Buffer.add_string b (Printf.sprintf "  \"payload_digest\": \"%s\",\n" (digest_hex payload));
  Buffer.add_string b (Printf.sprintf "  \"payload_hex\": \"%s\"\n" (hex_of_string payload));
  Buffer.add_string b "}\n";
  Buffer.contents b

(* Extract the string value of ["field": "..."] from a flat envelope. The
   values we look up never contain escaped quotes (salt charset is enforced,
   hex fields are [0-9a-f]), so scanning to the closing quote is exact. *)
let extract_string body ~field =
  let pat = Printf.sprintf "\"%s\": \"" field in
  let plen = String.length pat in
  let blen = String.length body in
  let rec find i =
    if i + plen > blen then None
    else if String.sub body i plen = pat then
      let start = i + plen in
      match String.index_from_opt body start '"' with
      | Some stop -> Some (String.sub body start (stop - start))
      | None -> None
    else find (i + 1)
  in
  find 0

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        Some (really_input_string ic n))
  with Sys_error _ | End_of_file -> None

(* Parse an envelope; [Ok payload] only when every check passes for this
   cache's salt and the stored key equals [key]. [Error `Corrupt] covers
   damage and salt/version mismatch (both are dropped); [Error `Other_key]
   is a digest collision — an honest miss that must NOT delete the file. *)
let parse_envelope t ~key body =
  match
    ( extract_string body ~field:"salt",
      extract_string body ~field:"key_hex",
      extract_string body ~field:"payload_digest",
      extract_string body ~field:"payload_hex" )
  with
  | Some salt, Some key_hex, Some payload_digest, Some payload_hex -> (
      if salt <> t.salt then Error `Corrupt
      else
        match (string_of_hex key_hex, string_of_hex payload_hex) with
        | Some stored_key, Some payload ->
            if stored_key <> key then Error `Other_key
            else if digest_hex payload <> payload_digest then Error `Corrupt
            else Ok payload
        | _ -> Error `Corrupt)
  | _ -> Error `Corrupt

let find (type a) t ~key : a option =
  let path = entry_path t ~key in
  with_lock t (fun () ->
      match read_file path with
      | None ->
          t.misses <- t.misses + 1;
          None
      | Some body -> (
          match parse_envelope t ~key body with
          | Ok payload -> (
              match (Marshal.from_string payload 0 : a) with
              | v ->
                  t.hits <- t.hits + 1;
                  Some v
              | exception _ ->
                  (try Sys.remove path with Sys_error _ -> ());
                  t.corrupt_dropped <- t.corrupt_dropped + 1;
                  t.misses <- t.misses + 1;
                  None)
          | Error `Other_key ->
              t.misses <- t.misses + 1;
              None
          | Error `Corrupt ->
              (try Sys.remove path with Sys_error _ -> ());
              t.corrupt_dropped <- t.corrupt_dropped + 1;
              t.misses <- t.misses + 1;
              None))

(* Only .json entries count toward the size bound — .lease files are
   transient claims, not content, and must never be evicted from under a
   live holder. *)
let entries t =
  match Sys.readdir t.root with
  | exception Sys_error _ -> [||]
  | names -> Array.of_list (List.filter (fun n -> Filename.check_suffix n ".json") (Array.to_list names))

let evict_over_limit t =
  match t.max_entries with
  | None -> ()
  | Some limit ->
      let names = entries t in
      if Array.length names > limit then begin
        let stamped =
          Array.to_list names
          |> List.filter_map (fun n ->
                 let p = Filename.concat t.root n in
                 match Unix.stat p with
                 | st -> Some (st.Unix.st_mtime, n)
                 | exception Unix.Unix_error _ -> None)
          (* Explicit victim order: oldest mtime first, equal mtimes broken
             by digest filename.  Filesystems with 1-second mtime
             granularity make same-second entries tie constantly, and the
             set a warm run finds must not depend on readdir order —
             eviction is part of the byte-identity contract under
             max_entries. *)
          |> List.sort (fun (ta, na) (tb, nb) ->
                 match Float.compare ta tb with 0 -> String.compare na nb | c -> c)
        in
        let excess = List.length stamped - limit in
        List.iteri
          (fun i (_, n) ->
            if i < excess then begin
              (try Sys.remove (Filename.concat t.root n) with Sys_error _ -> ());
              t.evictions <- t.evictions + 1
            end)
          stamped
      end

let note_write_error t ~what msg =
  t.write_errors <- t.write_errors + 1;
  if not t.warned_write_error then begin
    t.warned_write_error <- true;
    Printf.eprintf
      "rescache: warning: cache write failed (%s: %s); caching is degraded, \
       results are unaffected (counted as write_errors)\n%!"
      what msg
  end

let store t ~key v =
  let payload = Marshal.to_string v [] in
  let body = render_envelope t ~key payload in
  let path = entry_path t ~key in
  with_lock t (fun () ->
      t.tmp_counter <- t.tmp_counter + 1;
      let tmp =
        Filename.concat t.root
          (Printf.sprintf ".tmp.%d.%d" (Unix.getpid ()) t.tmp_counter)
      in
      match
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc body);
        Unix.rename tmp path
      with
      | () ->
          t.writes <- t.writes + 1;
          evict_over_limit t
      | exception Sys_error msg ->
          (try Sys.remove tmp with Sys_error _ -> ());
          note_write_error t ~what:"store" msg
      | exception Unix.Unix_error (err, fn, _) ->
          (try Sys.remove tmp with Sys_error _ -> ());
          note_write_error t ~what:fn (Unix.error_message err))

(* --- cross-process claims ---------------------------------------------- *)

type lease = { l_path : string; l_key : string }

let local_host = lazy (try Unix.gethostname () with Unix.Unix_error _ -> "localhost")

(* Lease body: "<pid> <hostname>\n".  The hostname matters once the cache
   root sits on a shared filesystem under multi-host sweeps (--hosts): a
   pid is only meaningful on the host that wrote it, so a claimant on
   another machine must not probe it with kill(2) — pid 4242 being free
   *here* says nothing about the holder over there.  Pre-PR-8 leases
   ("<pid>\n", no host) are treated as local, which preserves their old
   breaking behaviour. *)
let read_lease path =
  match read_file path with
  | None -> None
  | Some body -> (
    match String.split_on_char ' ' (String.trim body) with
    | [ pid ] -> Option.map (fun p -> (p, None)) (int_of_string_opt pid)
    | [ pid; host ] -> Option.map (fun p -> (p, Some host)) (int_of_string_opt pid)
    | _ -> None)

let pid_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
  | exception Unix.Unix_error (Unix.EPERM, _, _) -> true
  | exception Unix.Unix_error _ -> true

(* A lease is provably stale only when we can actually observe the holder:
   same host (or no host recorded) and the pid is gone.  A remote holder's
   lease is never broken here — its own machine's claimants will, or the
   compute_through patience deadline bounds the wait. *)
let holder_dead (pid, host) =
  (match host with None -> true | Some h -> h = Lazy.force local_host)
  && not (pid_alive pid)

let rec try_claim_n t ~key attempts =
  let path = lease_path t ~key in
  match Unix.openfile path [ Unix.O_CREAT; Unix.O_EXCL; Unix.O_WRONLY ] 0o644 with
  | fd ->
      let holder =
        Printf.sprintf "%d %s\n" (Unix.getpid ()) (Lazy.force local_host)
      in
      (try ignore (Unix.write_substring fd holder 0 (String.length holder))
       with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      `Claimed { l_path = path; l_key = key }
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> (
      match read_lease path with
      | Some holder when holder_dead holder ->
          (* The holder died mid-compute: break the lease and race to
             re-claim it.  If several processes break it at once, O_EXCL
             picks exactly one winner on the retry. *)
          (try Sys.remove path with Sys_error _ -> ());
          if attempts > 0 then try_claim_n t ~key (attempts - 1)
          else `Busy (Some (fst holder))
      | holder -> `Busy (Option.map fst holder))
  | exception Unix.Unix_error _ -> `Busy None

let try_claim t ~key = try_claim_n t ~key 3

let release _t lease = try Sys.remove lease.l_path with Sys_error _ -> ()

let commit t lease v =
  (* Order matters: the entry must be visible before the lease vanishes, so
     a poller that sees the lease disappear is guaranteed a hit (or, on a
     failed store, an honest recompute — never a torn read). *)
  store t ~key:lease.l_key v;
  release t lease

let compute_through ?(patience = 10.0) ?(poll = 0.02) t ~key f =
  match find t ~key with
  | Some v -> (v, `Hit)
  | None -> (
      let rec attempt deadline =
        match try_claim t ~key with
        | `Claimed lease -> (
            match f () with
            | v ->
                commit t lease v;
                (v, `Computed)
            | exception e ->
                release t lease;
                raise e)
        | `Busy _ -> (
            Unix.sleepf poll;
            match find t ~key with
            | Some v -> (v, `Raced)
            | None ->
                if Unix.gettimeofday () > deadline then
                  (* The holder is alive but slow (or wedged): duplicated
                     work beats a deadlock, and store is atomic either way. *)
                  (f (), `Computed)
                else attempt deadline)
      in
      attempt (Unix.gettimeofday () +. patience))

let stats t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        writes = t.writes;
        write_errors = t.write_errors;
        evictions = t.evictions;
        corrupt_dropped = t.corrupt_dropped;
      })

let observe_metrics m ~prefix t =
  let s = stats t in
  Metrics.set_int m (prefix ^ ".hits") s.hits;
  Metrics.set_int m (prefix ^ ".misses") s.misses;
  Metrics.set_int m (prefix ^ ".writes") s.writes;
  Metrics.set_int m (prefix ^ ".write_errors") s.write_errors;
  Metrics.set_int m (prefix ^ ".evictions") s.evictions;
  Metrics.set_int m (prefix ^ ".corrupt_dropped") s.corrupt_dropped

let report ?(out = stderr) t =
  let s = stats t in
  Printf.fprintf out
    "rescache: hits=%d misses=%d writes=%d write_errors=%d evictions=%d corrupt_dropped=%d dir=%s\n%!"
    s.hits s.misses s.writes s.write_errors s.evictions s.corrupt_dropped t.root
