(* Persistent content-addressed result cache. See rescache.mli for the
   contract (digest keying, torn-write discipline, corrupt-entry policy). *)

let format_version = 1

let code_salt = "pv-rescache-2026-08"

(* --- FNV-1a 64-bit ----------------------------------------------------- *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let digest_hex s = Printf.sprintf "%016Lx" (fnv1a64 s)

(* --- hex codec for the marshalled payload ------------------------------ *)

let hex_of_string s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let string_of_hex h =
  let n = String.length h in
  if n mod 2 <> 0 then None
  else
    let digit c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | _ -> None
    in
    let b = Bytes.create (n / 2) in
    let ok = ref true in
    for i = 0 to (n / 2) - 1 do
      match (digit h.[2 * i], digit h.[(2 * i) + 1]) with
      | Some hi, Some lo -> Bytes.set b i (Char.chr ((hi lsl 4) lor lo))
      | _ -> ok := false
    done;
    if !ok then Some (Bytes.to_string b) else None

(* --- cache handle ------------------------------------------------------ *)

type stats = {
  hits : int;
  misses : int;
  writes : int;
  evictions : int;
  corrupt_dropped : int;
}

type t = {
  root : string;
  salt : string; (* effective salt: version + code salt + user salt *)
  max_entries : int option;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
  mutable evictions : int;
  mutable corrupt_dropped : int;
  mutable tmp_counter : int;
}

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_dir ?(salt = "") ?max_entries root =
  String.iter
    (fun c ->
      if c = '"' || c = '\\' || c = '\n' || c = '\r' then
        invalid_arg "Rescache.open_dir: salt must not contain quotes, backslashes or newlines")
    salt;
  (match max_entries with
  | Some n when n <= 0 -> invalid_arg "Rescache.open_dir: max_entries must be positive"
  | _ -> ());
  mkdir_p root;
  {
    root;
    salt = Printf.sprintf "v%d|%s|%s" format_version code_salt salt;
    max_entries;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    writes = 0;
    evictions = 0;
    corrupt_dropped = 0;
    tmp_counter = 0;
  }

let dir t = t.root

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let entry_path t ~key = Filename.concat t.root (digest_hex (t.salt ^ "\n" ^ key) ^ ".json")

(* --- envelope ---------------------------------------------------------- *)

(* Minimal flat-JSON escaping: salts and keys are restricted or re-encoded
   (key travels hex-encoded in the authoritative field), so only the
   human-readable comment needs escaping. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_envelope t ~key payload =
  let b = Buffer.create (512 + (2 * String.length payload)) in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"rescache_version\": %d,\n" format_version);
  Buffer.add_string b (Printf.sprintf "  \"salt\": \"%s\"," t.salt);
  Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "  \"key\": \"%s\",\n" (json_escape key));
  Buffer.add_string b (Printf.sprintf "  \"key_hex\": \"%s\",\n" (hex_of_string key));
  Buffer.add_string b (Printf.sprintf "  \"payload_digest\": \"%s\",\n" (digest_hex payload));
  Buffer.add_string b (Printf.sprintf "  \"payload_hex\": \"%s\"\n" (hex_of_string payload));
  Buffer.add_string b "}\n";
  Buffer.contents b

(* Extract the string value of ["field": "..."] from a flat envelope. The
   values we look up never contain escaped quotes (salt charset is enforced,
   hex fields are [0-9a-f]), so scanning to the closing quote is exact. *)
let extract_string body ~field =
  let pat = Printf.sprintf "\"%s\": \"" field in
  let plen = String.length pat in
  let blen = String.length body in
  let rec find i =
    if i + plen > blen then None
    else if String.sub body i plen = pat then
      let start = i + plen in
      match String.index_from_opt body start '"' with
      | Some stop -> Some (String.sub body start (stop - start))
      | None -> None
    else find (i + 1)
  in
  find 0

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        Some (really_input_string ic n))
  with Sys_error _ | End_of_file -> None

(* Parse an envelope; [Ok payload] only when every check passes for this
   cache's salt and the stored key equals [key]. [Error `Corrupt] covers
   damage and salt/version mismatch (both are dropped); [Error `Other_key]
   is a digest collision — an honest miss that must NOT delete the file. *)
let parse_envelope t ~key body =
  match
    ( extract_string body ~field:"salt",
      extract_string body ~field:"key_hex",
      extract_string body ~field:"payload_digest",
      extract_string body ~field:"payload_hex" )
  with
  | Some salt, Some key_hex, Some payload_digest, Some payload_hex -> (
      if salt <> t.salt then Error `Corrupt
      else
        match (string_of_hex key_hex, string_of_hex payload_hex) with
        | Some stored_key, Some payload ->
            if stored_key <> key then Error `Other_key
            else if digest_hex payload <> payload_digest then Error `Corrupt
            else Ok payload
        | _ -> Error `Corrupt)
  | _ -> Error `Corrupt

let find (type a) t ~key : a option =
  let path = entry_path t ~key in
  with_lock t (fun () ->
      match read_file path with
      | None ->
          t.misses <- t.misses + 1;
          None
      | Some body -> (
          match parse_envelope t ~key body with
          | Ok payload -> (
              match (Marshal.from_string payload 0 : a) with
              | v ->
                  t.hits <- t.hits + 1;
                  Some v
              | exception _ ->
                  (try Sys.remove path with Sys_error _ -> ());
                  t.corrupt_dropped <- t.corrupt_dropped + 1;
                  t.misses <- t.misses + 1;
                  None)
          | Error `Other_key ->
              t.misses <- t.misses + 1;
              None
          | Error `Corrupt ->
              (try Sys.remove path with Sys_error _ -> ());
              t.corrupt_dropped <- t.corrupt_dropped + 1;
              t.misses <- t.misses + 1;
              None))

let entries t =
  match Sys.readdir t.root with
  | exception Sys_error _ -> [||]
  | names -> Array.of_list (List.filter (fun n -> Filename.check_suffix n ".json") (Array.to_list names))

let evict_over_limit t =
  match t.max_entries with
  | None -> ()
  | Some limit ->
      let names = entries t in
      if Array.length names > limit then begin
        let stamped =
          Array.to_list names
          |> List.filter_map (fun n ->
                 let p = Filename.concat t.root n in
                 match Unix.stat p with
                 | st -> Some (st.Unix.st_mtime, n)
                 | exception Unix.Unix_error _ -> None)
          |> List.sort compare
        in
        let excess = List.length stamped - limit in
        List.iteri
          (fun i (_, n) ->
            if i < excess then begin
              (try Sys.remove (Filename.concat t.root n) with Sys_error _ -> ());
              t.evictions <- t.evictions + 1
            end)
          stamped
      end

let store t ~key v =
  let payload = Marshal.to_string v [] in
  let body = render_envelope t ~key payload in
  let path = entry_path t ~key in
  with_lock t (fun () ->
      t.tmp_counter <- t.tmp_counter + 1;
      let tmp =
        Filename.concat t.root
          (Printf.sprintf ".tmp.%d.%d" (Unix.getpid ()) t.tmp_counter)
      in
      match
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc body);
        Unix.rename tmp path
      with
      | () ->
          t.writes <- t.writes + 1;
          evict_over_limit t
      | exception (Sys_error _ | Unix.Unix_error _) ->
          (try Sys.remove tmp with Sys_error _ -> ()))

let stats t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        writes = t.writes;
        evictions = t.evictions;
        corrupt_dropped = t.corrupt_dropped;
      })

let observe_metrics m ~prefix t =
  let s = stats t in
  Metrics.set_int m (prefix ^ ".hits") s.hits;
  Metrics.set_int m (prefix ^ ".misses") s.misses;
  Metrics.set_int m (prefix ^ ".writes") s.writes;
  Metrics.set_int m (prefix ^ ".evictions") s.evictions;
  Metrics.set_int m (prefix ^ ".corrupt_dropped") s.corrupt_dropped

let report ?(out = stderr) t =
  let s = stats t in
  Printf.fprintf out
    "rescache: hits=%d misses=%d writes=%d evictions=%d corrupt_dropped=%d dir=%s\n%!"
    s.hits s.misses s.writes s.evictions s.corrupt_dropped t.root
