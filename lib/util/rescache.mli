(** Persistent, content-addressed result cache for simulation jobs.

    A cache maps a {e canonical input descriptor} — a string spelling out
    every input of a measurement (machine config knobs, seed, scheme, job
    kind) — to the job's marshalled result, stored as one JSON envelope file
    under a cache root.  The file name is a 64-bit FNV-1a digest (16 hex
    chars, filename-safe) of the salted descriptor, so equal inputs collide
    onto the same entry on every machine and for every worker count, and the
    envelope stores the full descriptor so a digest collision degrades to a
    miss, never to a wrong result.

    {b Torn-write discipline.} Entries are written to a temp file in the
    cache root and [rename]d into place, so a reader can never observe a
    half-written entry (same discipline as the checkpoint journal's
    truncate-on-resume).  Entries are additionally checksummed: the envelope
    carries an FNV-1a digest of the payload bytes, and {!find} re-verifies it
    before unmarshalling — a truncated, bit-flipped or otherwise damaged
    entry is {e dropped and recomputed, never trusted}.

    {b Cross-process claims (two-phase commit).} When several worker
    processes share one cache root, {!try_claim} arbitrates who computes a
    missing entry: the winner creates [<digest>.lease] with [O_CREAT|O_EXCL]
    (phase one), computes, then {!store}s the payload via temp-file + atomic
    rename (phase two) and releases the lease.  Losers poll {!find} until
    the winner commits.  A lease naming a dead holder (the worker was
    killed mid-compute) is broken and re-claimed — the entry file itself is
    either absent or complete, never torn, so a killed winner costs only a
    recompute.  {!compute_through} packages the whole protocol.

    {b Multi-host.} Under [--hosts] the cache root doubles as the result
    store when it sits on a shared filesystem: remote workers commit
    through the same lease protocol, so the coordinator and every machine
    see one set of entries.  The lease therefore records
    ["<pid> <hostname>"], and staleness is only decided where it can be
    observed: a claimant breaks a lease only when the recorded host is its
    own and that pid is dead — a remote holder's pid means nothing locally,
    and probing it would break live leases.  A genuinely wedged remote
    holder is bounded by {!compute_through}'s patience instead.  Without a
    shared filesystem the cache stays per-machine (each side computes its
    own misses) and results reach the coordinator via the worker-journal
    pull in {!Procpool} — never through this cache.

    {b Invalidation.} The effective salt is [format_version ^ code_salt ^
    user salt]: bump {!code_salt} whenever a cached result type or the
    simulator's measured behaviour changes, and every stale entry becomes
    unreachable (different file names) and unreadable (salt check).

    {b Type safety.} Values go through [Marshal] untyped, exactly like
    {!Journal}: a descriptor must determine its value type.  The experiment
    layer guarantees this by prefixing every descriptor with its sweep
    family ([perf/lebench|...], [service-cal|...]) and keeping one value
    type per family. *)

type t

val code_salt : string
(** Bump on any change to cached result types or measured simulator
    behaviour; old cache entries then miss and are recomputed. *)

val open_dir : ?salt:string -> ?max_entries:int -> string -> t
(** [open_dir dir] opens (creating it, including parents, if needed) a cache
    rooted at [dir].  [salt] (default [""]) composes with {!code_salt};
    it must not contain ['"'], ['\\'] or newlines.  [max_entries] bounds the
    number of entries: after a store that exceeds it, the oldest entries
    are evicted — ordered by modification time with equal mtimes broken by
    digest filename, so the eviction set is deterministic even on
    filesystems with 1-second mtime granularity (warm-run byte-identity
    must not depend on readdir order).  Thread-safe: one [t] may be shared
    across pool domains, and one directory may be shared across worker
    processes (every mutation is temp-file + rename or [O_EXCL] create). *)

val dir : t -> string

val digest_hex : string -> string
(** The 16-hex-char FNV-1a 64 digest used for file names — exposed so tests
    can pin key stability. *)

val find : t -> key:string -> 'a option
(** Look up the entry for canonical descriptor [key].  [None] on a miss, on
    a salt/version mismatch, and on any corrupt entry (which is deleted and
    counted in [corrupt_dropped]).  The value must be read at the type it
    was stored with (see the type-safety note above). *)

val store : t -> key:string -> 'a -> unit
(** Write (or atomically replace) the entry for [key] via temp-file +
    rename.  I/O errors do not raise — a cache that cannot write degrades to
    a cache that never hits — but each failure is counted in
    [write_errors] and the first one warns on stderr. *)

(** {1 Cross-process claims} *)

type lease
(** A held claim on one cache entry (an on-disk [<digest>.lease] file naming
    this process's pid and hostname). *)

val try_claim : t -> key:string -> [ `Claimed of lease | `Busy of int option ]
(** Attempt to claim the right to compute [key].  [`Claimed l]: this
    process holds the lease and must eventually {!commit} or {!release} it.
    [`Busy pid]: another live process (of that pid, when readable) holds
    it.  A lease recorded by {e this} host (or a pre-hostname lease) whose
    pid no longer exists is broken and re-claimed atomically; a remote
    host's lease is never broken here (see the multi-host note above). *)

val commit : t -> lease -> 'a -> unit
(** {!store} the computed value, then release the lease.  The entry becomes
    visible to other processes' {!find} before the lease disappears, so a
    loser that sees the lease vanish will hit. *)

val release : t -> lease -> unit
(** Drop the lease without storing (the compute failed); another process may
    then claim it. *)

val compute_through :
  ?patience:float -> ?poll:float -> t -> key:string -> (unit -> 'a) ->
  'a * [ `Hit | `Computed | `Raced ]
(** The full claim protocol: hit if present; otherwise claim, compute, and
    commit ([`Computed]); if another process holds the lease, poll {!find}
    every [poll] seconds (default 0.02) until it commits ([`Raced]).  If the
    holder neither commits nor dies within [patience] seconds (default 10),
    compute anyway — duplicated work beats a deadlock.  If [f] raises, the
    lease is released and the exception re-raised. *)

type stats = {
  hits : int;
  misses : int;
  writes : int;
  write_errors : int;  (** failed {!store} attempts (I/O errors, swallowed) *)
  evictions : int;
  corrupt_dropped : int;  (** corrupt or version-mismatched entries deleted *)
}

val stats : t -> stats

val observe_metrics : Metrics.t -> prefix:string -> t -> unit
(** Register [<prefix>.hits], [<prefix>.misses], [<prefix>.writes],
    [<prefix>.write_errors], [<prefix>.evictions] and
    [<prefix>.corrupt_dropped].  Cache counters are run provenance (a warm
    run hits where a cold run missed), so they are reported on stderr via
    [--cache-stats] and never land in the [--metrics] export, which must
    stay byte-identical between cold and warm runs. *)

val report : ?out:out_channel -> t -> unit
(** One-line [rescache: hits=... misses=... writes=... write_errors=...
    evictions=... corrupt_dropped=... dir=...] summary (the [--cache-stats]
    output, default [stderr]). *)
