(* An empty series has no mean; returning 0.0 here used to render as a
   plausible table cell (same silent-poisoning family as the geomean and
   zero-baseline guards).  Callers with legitimately-empty series use
   [mean_opt] and print "n/a". *)
let mean = function
  | [] -> invalid_arg "Stats.mean: empty list"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let mean_opt = function [] -> None | xs -> Some (mean xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    (* log of a non-positive silently yields nan/-inf and poisons the whole
       mean; refuse loudly instead, like the zero-baseline normalizers.
       [not (x > 0.)] also catches NaN inputs. *)
    if List.exists (fun x -> not (x > 0.0)) xs then
      invalid_arg "Stats.geomean: non-positive input";
    let n = float_of_int (List.length xs) in
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

let stddev xs =
  match xs with
  | [] -> invalid_arg "Stats.stddev: empty list"
  | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) xs

(* The nearest rank ceil(p/100 * n), in integer arithmetic: the old
   float path (ceil (p /. 100. *. float n)) went through the unrepresentable
   p/100, so e.g. p=70, n=10 evaluated 0.7 *. 10. = 7.000000000000001 and
   ceiled to rank 8 — the p70 of 10 samples returned the 8th element.
   p is taken at milli-percent resolution (exact for any humanly written
   percentile: 70., 99.9, 12.345), and the result is clamped to [1, n]. *)
let nearest_rank ~p ~n =
  if Float.is_nan p || p < 0.0 || p > 100.0 then
    invalid_arg "Stats.nearest_rank: p outside [0,100]";
  if n < 1 then invalid_arg "Stats.nearest_rank: empty sample";
  let pm = int_of_float (Float.round (p *. 1000.0)) in
  let rank = ((pm * n) + 99_999) / 100_000 in
  if rank < 1 then 1 else if rank > n then n else rank

(* Nearest-rank percentile: the smallest element with at least p% of the
   sample at or below it.  Exact (no interpolation), monotone in p, and
   p = 0 / p = 100 hit the minimum / maximum. *)
let percentile xs ~p =
  if xs = [] then invalid_arg "Stats.percentile: empty list";
  if Float.is_nan p || p < 0.0 || p > 100.0 then
    invalid_arg "Stats.percentile: p outside [0,100]";
  let sorted = List.sort compare xs in
  let n = List.length sorted in
  List.nth sorted (nearest_rank ~p ~n - 1)

let percentile_opt xs ~p = if xs = [] then None else Some (percentile xs ~p)

(* A zero baseline used to propagate silent nan/inf into the tables; both
   normalizers now refuse it loudly instead. *)
let percent_overhead ~baseline v =
  if baseline = 0.0 then invalid_arg "Stats.percent_overhead: zero baseline";
  (v -. baseline) /. baseline *. 100.0

let normalized ~baseline v =
  if baseline = 0.0 then invalid_arg "Stats.normalized: zero baseline";
  v /. baseline

let ratio_pct ~num ~den =
  if den = 0 then invalid_arg "Stats.ratio_pct: zero denominator";
  float_of_int num /. float_of_int den *. 100.0

type counter = {
  mutable n : int;
  mutable sum : float;
  mutable sum_sq : float;
  mutable min_v : float;
  mutable max_v : float;
}

let counter () = { n = 0; sum = 0.0; sum_sq = 0.0; min_v = infinity; max_v = neg_infinity }

let add c x =
  c.n <- c.n + 1;
  c.sum <- c.sum +. x;
  c.sum_sq <- c.sum_sq +. (x *. x);
  if x < c.min_v then c.min_v <- x;
  if x > c.max_v then c.max_v <- x

let count c = c.n
let total c = c.sum
let counter_sum_sq c = c.sum_sq
let counter_mean c = if c.n = 0 then 0.0 else c.sum /. float_of_int c.n

let counter_min c =
  if c.n = 0 then invalid_arg "Stats.counter_min: empty counter";
  c.min_v

let counter_max c =
  if c.n = 0 then invalid_arg "Stats.counter_max: empty counter";
  c.max_v

(* Population stddev from the streaming moments; clamped at 0 so rounding
   in sum_sq - n*mean^2 can never produce a NaN. *)
let counter_stddev c =
  if c.n < 2 then 0.0
  else
    let m = counter_mean c in
    sqrt (Float.max 0.0 ((c.sum_sq /. float_of_int c.n) -. (m *. m)))
