let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let n = float_of_int (List.length xs) in
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
    sqrt var

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) xs

(* A zero baseline used to propagate silent nan/inf into the tables; both
   normalizers now refuse it loudly instead. *)
let percent_overhead ~baseline v =
  if baseline = 0.0 then invalid_arg "Stats.percent_overhead: zero baseline";
  (v -. baseline) /. baseline *. 100.0

let normalized ~baseline v =
  if baseline = 0.0 then invalid_arg "Stats.normalized: zero baseline";
  v /. baseline

let ratio_pct ~num ~den =
  if den = 0 then invalid_arg "Stats.ratio_pct: zero denominator";
  float_of_int num /. float_of_int den *. 100.0

type counter = { mutable n : int; mutable sum : float }

let counter () = { n = 0; sum = 0.0 }

let add c x =
  c.n <- c.n + 1;
  c.sum <- c.sum +. x

let count c = c.n
let total c = c.sum
let counter_mean c = if c.n = 0 then 0.0 else c.sum /. float_of_int c.n
