(** Small statistics helpers used by the experiment harnesses. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0 for the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 for lists shorter than 2. *)

val min_max : float list -> float * float
(** Smallest and largest element.  Raises [Invalid_argument] on empty input. *)

val percent_overhead : baseline:float -> float -> float
(** [percent_overhead ~baseline v] is [(v - baseline) / baseline * 100].
    Raises [Invalid_argument] when [baseline = 0.] (it used to return a
    silent [nan]/[inf]). *)

val normalized : baseline:float -> float -> float
(** [normalized ~baseline v] is [v /. baseline].  Raises [Invalid_argument]
    when [baseline = 0.]. *)

val ratio_pct : num:int -> den:int -> float
(** Percentage [num/den * 100].  Raises [Invalid_argument] when [den = 0]
    — a zero denominator is a "no data" condition, not a 0% one, and
    silently rendering it as [0.0] produced plausible-looking lies in the
    sensitivity tables (same policy as {!percent_overhead}/{!normalized}). *)

type counter
(** Accumulates samples in streaming fashion. *)

val counter : unit -> counter
val add : counter -> float -> unit
val count : counter -> int
val total : counter -> float
val counter_mean : counter -> float
