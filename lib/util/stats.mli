(** Small statistics helpers used by the experiment harnesses. *)

val mean : float list -> float
(** Arithmetic mean.  Raises [Invalid_argument] on the empty list — it used
    to return a silent [0.], which renders as a plausible table cell (same
    policy as {!percent_overhead} and the {!geomean} input guard).  Use
    {!mean_opt} where an empty series is legitimate. *)

val mean_opt : float list -> float option
(** {!mean} with the empty sample degrading to [None] instead of an
    exception, mirroring {!percentile_opt}; render it as ["n/a"]. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0 for the empty list.  Raises
    [Invalid_argument] on any non-positive (or NaN) input — it used to
    feed it through [log] and silently return [nan]/[0.], the same silent
    poisoning {!percent_overhead} refuses for a zero baseline. *)

val stddev : float list -> float
(** Population standard deviation; 0 for a singleton.  Raises
    [Invalid_argument] on the empty list (a sample with no elements has no
    deviation, and the old silent [0.] was indistinguishable from a
    genuinely constant series). *)

val min_max : float list -> float * float
(** Smallest and largest element.  Raises [Invalid_argument] on empty input. *)

val nearest_rank : p:float -> n:int -> int
(** The 1-based nearest rank [ceil (p/100 * n)] clamped to [[1, n]],
    computed in integer arithmetic at milli-percent resolution so binary
    floating point cannot bump an exact boundary to the next rank (the old
    float path made [p = 70., n = 10] evaluate [0.7 *. 10. =
    7.000000000000001] and ceil to rank 8).  Exact for any [p] with at
    most three decimal digits (70., 99.9, 12.345).  Shared by
    {!percentile} and [Latency.percentile].  Raises [Invalid_argument] on
    [p] outside [[0, 100]] or [n < 1]. *)

val percentile : float list -> p:float -> float
(** [percentile xs ~p] is the nearest-rank percentile: the smallest element
    of [xs] such that at least [p]% of the sample is [<=] it (no
    interpolation, so the result is always a member of [xs]).  Monotone
    non-decreasing in [p]; [p = 0.] returns the minimum and [p = 100.] the
    maximum.  Raises [Invalid_argument] on an empty list or [p] outside
    [[0, 100]]. *)

val percentile_opt : float list -> p:float -> float option
(** {!percentile} with the empty sample degrading to [None] instead of an
    exception (an all-shed service cell has a goodput of zero and {e no}
    latency distribution).  Still raises on [p] outside [[0, 100]]. *)

val percent_overhead : baseline:float -> float -> float
(** [percent_overhead ~baseline v] is [(v - baseline) / baseline * 100].
    Raises [Invalid_argument] when [baseline = 0.] (it used to return a
    silent [nan]/[inf]). *)

val normalized : baseline:float -> float -> float
(** [normalized ~baseline v] is [v /. baseline].  Raises [Invalid_argument]
    when [baseline = 0.]. *)

val ratio_pct : num:int -> den:int -> float
(** Percentage [num/den * 100].  Raises [Invalid_argument] when [den = 0]
    — a zero denominator is a "no data" condition, not a 0% one, and
    silently rendering it as [0.0] produced plausible-looking lies in the
    sensitivity tables (same policy as {!percent_overhead}/{!normalized}). *)

type counter
(** Accumulates samples in streaming fashion: count, sum, sum of squares,
    minimum and maximum — enough for mean/stddev/extrema without retaining
    the samples. *)

val counter : unit -> counter
val add : counter -> float -> unit
val count : counter -> int
val total : counter -> float

val counter_sum_sq : counter -> float
(** Running sum of squared samples ([0.] when empty). *)

val counter_mean : counter -> float

val counter_stddev : counter -> float
(** Population standard deviation from the streaming moments; [0.] for
    fewer than 2 samples. *)

val counter_min : counter -> float
(** Smallest sample.  Raises [Invalid_argument] on an empty counter. *)

val counter_max : counter -> float
(** Largest sample.  Raises [Invalid_argument] on an empty counter. *)
