(* Worker transport abstraction.  See transport.mli for the model; this
   file is deliberately small: byte plumbing (pipes, sockets, newline
   framing, timeouts) lives here, while everything protocol-shaped (what a
   RUN means, how a death is arbitrated) stays in Procpool. *)

(* --- links -------------------------------------------------------------- *)

type peer =
  | Proc of { pid : int }
  | Sock of { host : string; port : int }

type link = { send : Unix.file_descr; recv : Unix.file_descr; peer : peer }

let peer_name = function
  | Proc { pid } -> Printf.sprintf "pid %d" pid
  | Sock { host; port } -> Printf.sprintf "%s:%d" host port

let is_sock l = match l.peer with Sock _ -> true | Proc _ -> false

let close_link l =
  (try Unix.close l.send with Unix.Unix_error _ -> ());
  (* Sockets are one descriptor carried twice; pipes are two. *)
  if l.send <> l.recv then
    try Unix.close l.recv with Unix.Unix_error _ -> ()

(* --- line framing ------------------------------------------------------- *)

let send_line fd line =
  let data = line ^ "\n" in
  let len = String.length data in
  let rec go off =
    if off >= len then true
    else
      match Unix.write_substring fd data off (len - off) with
      | 0 -> false
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> false
  in
  go 0

(* Blocking single-line read with a deadline — used only for handshakes
   (listener reading HELLO, tests), never in the coordinator's main loop,
   which does its own select-driven buffering. *)
let read_line_within fd ~timeout =
  let buf = Buffer.create 128 in
  let b = Bytes.create 1 in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let left = deadline -. Unix.gettimeofday () in
    if left <= 0.0 then None
    else
      match Unix.select [ fd ] [] [] left with
      | [], _, _ -> None
      | _ -> (
        match Unix.read fd b 0 1 with
        | 0 -> None
        | _ ->
          if Bytes.get b 0 = '\n' then Some (Buffer.contents buf)
          else begin
            Buffer.add_char buf (Bytes.get b 0);
            if Buffer.length buf > 1 lsl 20 then None else go ()
          end
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error _ -> None)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* --- host specs --------------------------------------------------------- *)

(* HOST:PORT with RFC 3986-style bracketing for IPv6 literals.  The old
   parser split on the *last* colon, so "[::1]:9000" died with a misleading
   "bad port" and a bare "::1:9000" silently parsed as host "::1" port 9000
   — plausible but almost certainly not what was meant.  Now "[addr]:port"
   is the one way to spell an IPv6 endpoint, and an unbracketed multi-colon
   spec is rejected with a hint instead of guessed at. *)
let parse_hostspec spec =
  let parse_port host port =
    match int_of_string_opt port with
    | Some p when p >= 0 && p <= 65535 ->
      if host = "" then Error (Printf.sprintf "bad host spec %S (empty host)" spec)
      else Ok (host, p)
    | _ -> Error (Printf.sprintf "bad host spec %S (bad port %S)" spec port)
  in
  if String.length spec > 0 && spec.[0] = '[' then
    match String.index_opt spec ']' with
    | None ->
      Error (Printf.sprintf "bad host spec %S (missing ']' after '[')" spec)
    | Some close ->
      let host = String.sub spec 1 (close - 1) in
      let rest = String.sub spec (close + 1) (String.length spec - close - 1) in
      if String.length rest >= 1 && rest.[0] = ':' then
        parse_port host (String.sub rest 1 (String.length rest - 1))
      else
        Error
          (Printf.sprintf "bad host spec %S (expected [HOST]:PORT after ']')" spec)
  else
    match String.index_opt spec ':' with
    | None -> Error (Printf.sprintf "bad host spec %S (expected HOST:PORT)" spec)
    | Some i ->
      if String.rindex spec ':' <> i then
        Error
          (Printf.sprintf
             "bad host spec %S (IPv6 requires [host]:port)" spec)
      else
        parse_port (String.sub spec 0 i)
          (String.sub spec (i + 1) (String.length spec - i - 1))

let parse_hostspecs s =
  let items =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
  in
  List.fold_left
    (fun acc item ->
      Result.bind acc (fun hosts ->
          Result.map (fun h -> hosts @ [ h ]) (parse_hostspec item)))
    (Ok []) items

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> Some addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> None
    | { Unix.h_addr_list; _ } -> Some h_addr_list.(0)
    | exception Not_found -> None)

(* --- TCP ---------------------------------------------------------------- *)

let listen_on ~host ~port =
  match resolve host with
  | None -> Error (Printf.sprintf "cannot resolve host %S" host)
  | Some addr -> (
    (* Socket family from the resolved address, so "[::1]:port" listens on
       an IPv6 socket instead of failing EAFNOSUPPORT on PF_INET. *)
    let fd =
      Unix.socket
        (Unix.domain_of_sockaddr (Unix.ADDR_INET (addr, port)))
        Unix.SOCK_STREAM 0
    in
    try
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 16;
      let actual =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | Unix.ADDR_UNIX _ -> port
      in
      Ok (fd, actual)
    with Unix.Unix_error (err, fn, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message err)))

let connect ~host ~port ~timeout =
  match resolve host with
  | None -> Error (Printf.sprintf "cannot resolve host %S" host)
  | Some addr -> (
    let fd =
      Unix.socket
        (Unix.domain_of_sockaddr (Unix.ADDR_INET (addr, port)))
        Unix.SOCK_STREAM 0
    in
    let fail fn err =
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))
    in
    try
      Unix.set_nonblock fd;
      (match Unix.connect fd (Unix.ADDR_INET (addr, port)) with
      | () -> ()
      | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) -> ());
      match Unix.select [] [ fd ] [] timeout with
      | _, [], _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error
          (Printf.sprintf "connect to %s:%d timed out after %.1fs" host port timeout)
      | _ -> (
        match Unix.getsockopt_error fd with
        | Some err -> fail "connect" err
        | None ->
          Unix.clear_nonblock fd;
          Unix.setsockopt fd Unix.TCP_NODELAY true;
          Ok fd)
    with Unix.Unix_error (err, fn, _) -> fail fn err)

let pipe_link ~pid ~send ~recv = { send; recv; peer = Proc { pid } }
let sock_link ~host ~port fd = { send = fd; recv = fd; peer = Sock { host; port } }
