(** Worker transport abstraction for {!Procpool}.

    PR 7's coordinator/worker protocol ([RDY]/[RUN]/[OK]/[ERR]/[FIN],
    newline-framed ASCII) originally ran over one pipe pair per local
    worker.  This module factors the byte layer out so the same protocol
    runs over either transport:

    - {b Pipe} — a local fork/exec'd worker holding the two pipe ends.
      Death is authoritative via [waitpid] (its [pid] is in the peer).
    - {b Tcp} — a standing remote worker ([pv_cli __worker --listen
      HOST:PORT]) the coordinator connects to.  There is no pid to wait
      on: death is an EOF/reset on the socket or a handshake timeout, and
      the coordinator arbitrates the in-flight cell exactly like a reaped
      local corpse (journal present = completed, absent = lost attempt).

    Nothing protocol-shaped lives here — only links, line framing,
    host-spec parsing, and timeout-bounded connect/listen. *)

type peer =
  | Proc of { pid : int }  (** local child; death detected by [waitpid] *)
  | Sock of { host : string; port : int }
      (** remote standing worker; death detected by EOF/reset/timeout *)

type link = {
  send : Unix.file_descr;  (** coordinator-to-worker commands *)
  recv : Unix.file_descr;  (** worker-to-coordinator replies *)
  peer : peer;
}
(** One worker connection.  For sockets [send == recv] (one full-duplex
    descriptor); for pipes they are the two parent ends. *)

val peer_name : peer -> string
(** ["pid 1234"] or ["host:port"] — for warnings and dead-host reports. *)

val is_sock : link -> bool

val close_link : link -> unit
(** Close both descriptors (once, when they are the same socket). *)

val send_line : Unix.file_descr -> string -> bool
(** Write [line ^ "\n"], retrying short writes; [false] on a dead peer
    (EPIPE/reset) — the caller treats that as a death signal. *)

val read_line_within : Unix.file_descr -> timeout:float -> string option
(** Blocking read of one newline-terminated line with a deadline.  Used for
    handshakes (a listener reading [HELLO]); [None] on timeout, EOF,
    oversized (> 1 MiB) lines, or error.  The coordinator's main loop does
    NOT use this — it keeps its own select-driven per-worker buffers. *)

val parse_hostspec : string -> (string * int, string) result
(** ["host:port"] or ["[v6addr]:port"] -> [(host, port)], with a one-line
    diagnostic on malformed input.  An unbracketed spec containing more
    than one colon is rejected ("IPv6 requires [host]:port") rather than
    guessed at — the old last-colon split turned ["[::1]:9000"] into a
    misleading bad-port error and silently read ["::1:9000"] as host
    ["::1"]. *)

val parse_hostspecs : string -> ((string * int) list, string) result
(** Comma-separated list of host specs; empty items are skipped. *)

val listen_on : host:string -> port:int -> (Unix.file_descr * int, string) result
(** Bind + listen on [host:port] (SO_REUSEADDR).  The socket family follows
    the resolved address, so IPv6 literals work.  Returns the listening
    descriptor and the actual port — pass port [0] to let the kernel pick
    one (tests, CI). *)

val connect : host:string -> port:int -> timeout:float -> (Unix.file_descr, string) result
(** Non-blocking connect bounded by [timeout] seconds; on success the
    descriptor is back in blocking mode with [TCP_NODELAY] set (the
    protocol is chatty one-liners). *)

val pipe_link : pid:int -> send:Unix.file_descr -> recv:Unix.file_descr -> link
val sock_link : host:string -> port:int -> Unix.file_descr -> link
