module Sysno = Pv_kernel.Sysno

type app = {
  name : string;
  request : (int * int array) list;
  background : int list;
  user_work : int;
  requests : int;
  paper_unsafe_krps : float;
}

let bg names = List.map (fun n -> match Sysno.lookup n with Some nr -> nr | None -> invalid_arg n) names

let server_common =
  bg
    [
      "socket"; "bind"; "listen"; "setsockopt"; "close"; "mmap"; "munmap"; "brk";
      "mprotect"; "futex"; "getpid"; "clock_gettime"; "fcntl"; "ioctl"; "uname";
      "getuid"; "access";
    ]

let httpd =
  {
    name = "httpd";
    request =
      [
        (Sysno.sys_epoll_wait, [| 8 |]);
        (Sysno.sys_accept, [||]);
        (Sysno.sys_recv, [| 1024 |]);
        (Sysno.sys_stat, [||]);
        (Sysno.sys_open, [||]);
        (Sysno.sys_read, [| 4096 |]);
        (Sysno.sys_send, [| 4096 |]);
        (Sysno.sys_close, [||]);
      ];
    background =
      server_common @ bg [ "wait4"; "kill"; "pipe"; "dup"; "getdents"; "writev"; "lseek" ];
    user_work = 700;
    requests = 60;
    paper_unsafe_krps = 11.5;
  }

let nginx =
  {
    name = "nginx";
    request =
      [
        (Sysno.sys_epoll_wait, [| 8 |]);
        (Sysno.sys_recv, [| 1024 |]);
        (Sysno.sys_stat, [||]);
        (Sysno.sys_open, [||]);
        (Sysno.sys_sendfile, [| 4096 |]);
        (Sysno.sys_send, [| 1024 |]);
        (Sysno.sys_close, [||]);
      ];
    background = server_common @ bg [ "accept"; "writev"; "pread"; "getdents"; "dup"; "readlink" ];
    user_work = 420;
    requests = 80;
    paper_unsafe_krps = 18.0;
  }

let memcached =
  {
    name = "memcached";
    request =
      [
        (Sysno.sys_epoll_wait, [| 4 |]);
        (Sysno.sys_recv, [| 512 |]);
        (Sysno.sys_send, [| 512 |]);
      ];
    background = server_common @ bg [ "accept"; "getsockopt"; "nanosleep" ];
    user_work = 230;
    requests = 180;
    paper_unsafe_krps = 55.0;
  }

let redis =
  {
    name = "redis";
    request =
      [
        (Sysno.sys_epoll_wait, [| 4 |]);
        (Sysno.sys_recv, [| 1024; 1 |]);
        (Sysno.sys_send, [| 1024; 1 |]);
      ];
    background =
      server_common @ bg [ "accept"; "open"; "read"; "write"; "rename"; "unlink"; "fstat" ];
    user_work = 330;
    requests = 150;
    paper_unsafe_krps = 40.7;
  }

let all = [ httpd; nginx; memcached; redis ]

let syscalls app = Driver.syscalls_of app.request

let footprint app = List.sort_uniq compare (syscalls app @ app.background)

let all_syscalls = List.sort_uniq compare (List.concat_map syscalls all)

let scaled app ~factor =
  if Float.is_nan factor || factor <= 0.0 then
    invalid_arg "Apps.scaled: factor must be positive";
  let requests = int_of_float (Float.round (float_of_int app.requests *. factor)) in
  { app with requests = max 2 requests }
