(** Datacenter application models for Figure 9.3: request loops whose
    system-call mix and user/kernel time split match each server's character
    (paper Chapter 7 measured 50% / 65% / 65% / 53% kernel time for httpd,
    nginx, memcached and redis over loopback). *)

type app = {
  name : string;
  request : (int * int array) list;  (** system calls per request (hot loop) *)
  background : int list;
      (** the rest of the app's syscall footprint: startup, logging, memory
          management, timers — rarely on the hot path but part of the binary's
          interface, hence of its ISVs *)
  user_work : int;  (** user-mode compute per request *)
  requests : int;  (** scaled request count per measurement *)
  paper_unsafe_krps : float;  (** paper's UNSAFE throughput (kilo-requests/s) *)
}

val httpd : app
val nginx : app
val memcached : app
val redis : app
val all : app list

val syscalls : app -> int list
(** Hot-loop syscalls only. *)

val footprint : app -> int list
(** Hot-loop plus background syscalls: the app's full kernel interface. *)

val all_syscalls : int list

val scaled : app -> factor:float -> app
(** Scale the request count by [factor], rounding to the nearest integer
    (floor 2 so a measurement always has a steady-state request).  Raises
    [Invalid_argument] when [factor] is not positive — truncation used to
    hide that silently. *)
