(* Aggregated test runner for the whole repository. *)

let () =
  Alcotest.run "perspective"
    (Test_util.suite @ Test_isa.suite @ Test_uarch.suite @ Test_pipeline.suite
   @ Test_oracle.suite @ Test_kernel.suite @ Test_core.suite @ Test_isvgen.suite
   @ Test_scanner.suite @ Test_attacks.suite @ Test_sim.suite
   @ Test_experiments.suite @ Test_pool.suite @ Test_supervise.suite
   @ Test_service.suite @ Test_rescache.suite @ Test_equiv.suite
   @ Test_pack.suite @ Test_contracts.suite)
