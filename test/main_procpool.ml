(* The process-pool suite runs in its own executable: its tests Unix.fork
   worker processes, which OCaml 5 forbids once any other domain has been
   created — and the main runner's pool suites create domains. *)

let () = Alcotest.run "perspective-procpool" Test_procpool.suite
