(* Property tests for the work-stealing pool's determinism contract.

   The scheduler is free to run cells in any interleaving — local pops,
   steals, caller help — but every observable artifact must be a pure
   function of the inputs: sweep results and failure reports, the
   [--metrics] JSON document, and the identity of the first re-raised
   failure.  These properties drive random tiny/huge cell-cost mixes and
   random crash plans through [Supervise.run] and [Pool.run] at every
   worker count and demand byte-identical output to the [-j 1] serial
   oracle.  A separate executable so a scheduler regression fails loudly
   on its own, not buried in the main runner. *)

module Pool = Pv_util.Pool
module Fault = Pv_util.Fault
module Metrics = Pv_util.Metrics
module Supervise = Pv_experiments.Supervise

exception Boom of int

(* A deterministic cell body: cost is "LCG iterations", mixing tiny cells
   (scheduling-overhead bound) with occasional huge ones (skew bound). *)
let spin iters seed =
  let r = ref seed in
  for _ = 1 to iters do
    r := (!r * 2862933555777941757) + 3037000493
  done;
  !r

let shape_gen =
  QCheck.Gen.(
    let* n = int_range 10 60 in
    let* costs =
      list_size (return n)
        (frequency [ (9, int_range 1 50); (1, int_range 2_000 20_000) ])
    in
    let* jobs = oneofl [ 2; 4; 8 ] in
    return (costs, jobs))

let crash_gen =
  QCheck.Gen.(
    let* costs, jobs = shape_gen in
    let* crashed =
      List.map (fun _ -> ()) costs
      |> List.mapi (fun i () -> i)
      |> List.fold_left
           (fun acc i ->
             let* acc = acc in
             let* b = frequency [ (7, return false); (1, return true) ] in
             return (if b then i :: acc else acc))
           (return [])
    in
    return (costs, jobs, List.rev crashed))

let print_shape (costs, jobs) =
  Printf.sprintf "%d cells %s at -j %d" (List.length costs)
    (String.concat "," (List.map string_of_int costs))
    jobs

let print_crash (costs, jobs, crashed) =
  Printf.sprintf "%s crash@[%s]"
    (print_shape (costs, jobs))
    (String.concat ";" (List.map string_of_int crashed))

let sweep_cells costs =
  List.mapi
    (fun i c -> Supervise.cell (Printf.sprintf "cell/%04d" i) (fun ~fuel:_ -> spin c i))
    costs

let run_sweep ~jobs ~fault costs =
  Supervise.run
    ~config:{ Supervise.default with jobs; fault; retries = 1 }
    (sweep_cells costs)

(* Everything in a sweep except per-failure wall clock, which is the one
   documented nondeterministic field. *)
let sweep_shape (s : _ Supervise.sweep) =
  ( s.Supervise.results,
    List.map
      (fun (f : Supervise.failure) ->
        (f.Supervise.key, f.Supervise.attempts, f.Supervise.reason))
      s.Supervise.failures )

let metrics_doc s =
  let metrics_of v =
    let reg = Metrics.create () in
    Metrics.set_int reg "cell.value" v;
    Metrics.snapshot reg
  in
  Supervise.render_json [ Supervise.export ~metrics_of ~label:"ws" s ]

let prop_sweep_deterministic =
  QCheck.Test.make ~count:40
    ~name:"supervised sweep: -j N table and metrics = -j 1 bytes"
    (QCheck.make ~print:print_shape shape_gen)
    (fun (costs, jobs) ->
      let serial = run_sweep ~jobs:1 ~fault:Fault.none costs in
      let par = run_sweep ~jobs ~fault:Fault.none costs in
      sweep_shape serial = sweep_shape par
      && String.equal (metrics_doc serial) (metrics_doc par))

let prop_sweep_crash_deterministic =
  QCheck.Test.make ~count:40
    ~name:"supervised sweep under Crash plan: failures identical to -j 1"
    (QCheck.make ~print:print_crash crash_gen)
    (fun (costs, jobs, crashed) ->
      let fault =
        Fault.plan
          (List.map
             (fun i ->
               { Fault.index = i; kind = Fault.Crash; first_attempts = Fault.always })
             crashed)
      in
      let serial = run_sweep ~jobs:1 ~fault costs in
      let par = run_sweep ~jobs ~fault costs in
      (* Crashed cells fail in declaration order, everything else succeeds,
         and the whole artifact matches the serial oracle byte for byte. *)
      List.length serial.Supervise.failures = List.length crashed
      && sweep_shape serial = sweep_shape par
      && String.equal (metrics_doc serial) (metrics_doc par))

let prop_first_failure_lowest_index =
  QCheck.Test.make ~count:60
    ~name:"Pool.map re-raises the lowest-index failure at every -j"
    (QCheck.make ~print:print_crash crash_gen)
    (fun (costs, jobs, crashed) ->
      QCheck.assume (crashed <> []);
      let f (i, c) = if List.mem i crashed then raise (Boom i) else spin c i in
      let xs = List.mapi (fun i c -> (i, c)) costs in
      match Pool.run ~jobs f xs with
      | _ -> false
      | exception Boom i -> i = List.fold_left min max_int crashed)

let () =
  Alcotest.run "perspective-ws"
    [
      ( "ws.determinism",
        [
          QCheck_alcotest.to_alcotest prop_sweep_deterministic;
          QCheck_alcotest.to_alcotest prop_sweep_crash_deterministic;
          QCheck_alcotest.to_alcotest prop_first_failure_lowest_index;
        ] );
    ]
