(* End-to-end attack proof-of-concepts: every verdict below is measured from
   simulated microarchitectural state (flush+reload over the covert
   channel), not asserted. *)

module Defense = Perspective.Defense
module Isv = Perspective.Isv
module V1 = Pv_attacks.Spectre_v1
module V2 = Pv_attacks.Spectre_v2
module Rsb = Pv_attacks.Spectre_rsb
module Cve = Pv_attacks.Cve_study

let check = Alcotest.check

let test_v1_leaks_on_unsafe () =
  let o = V1.run ~scheme:Defense.Unsafe () in
  Alcotest.(check bool) "leaks" true o.V1.success;
  check Alcotest.(option int) "exact secret" (Some o.V1.secret) o.V1.leaked

let test_v1_different_seeds () =
  List.iter
    (fun seed ->
      let o = V1.run ~seed ~scheme:Defense.Unsafe () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d leaks" seed)
        true o.V1.success)
    [ 1; 2; 3; 99 ]

let test_v1_blocked_by_defenses () =
  List.iter
    (fun scheme ->
      let o = V1.run ~scheme () in
      Alcotest.(check bool)
        (Defense.scheme_name scheme ^ " blocks v1")
        false o.V1.success;
      Alcotest.(check bool) "and fences fired" true (o.V1.fences > 0))
    [
      Defense.Fence;
      Defense.Stt;
      Defense.Perspective Isv.Static;
      Defense.Perspective Isv.Dynamic;
      Defense.Perspective Isv.Plus;
    ]

let test_v1_cve_variants_leak () =
  (* Table 4.1 gadget shapes: every variant leaks the exact secret on
     unprotected hardware. *)
  List.iter
    (fun (o : V1.outcome) ->
      Alcotest.(check bool) "variant leaks" true o.V1.success)
    (V1.run_variants ~scheme:Defense.Unsafe ())

let test_v1_cve_variants_blocked () =
  List.iter
    (fun (o : V1.outcome) ->
      Alcotest.(check bool) "variant blocked by Perspective" false o.V1.success)
    (V1.run_variants ~scheme:(Defense.Perspective Isv.Dynamic) ())

let test_v1_blocked_by_dom () =
  let o = V1.run ~scheme:Defense.Dom () in
  Alcotest.(check bool) "dom blocks v1" false o.V1.success

let test_v2_leaks_on_unsafe () =
  let o = V2.run ~scheme:Defense.Unsafe () in
  Alcotest.(check bool) "leaks" true o.V2.success

let test_v2_dsv_only_cannot_stop_passive () =
  (* The paper's taxonomy claim: DSVs are powerless against passive attacks
     because every access is to victim-owned data. *)
  let o = V2.run ~scheme:(Defense.Perspective Isv.All) () in
  Alcotest.(check bool) "DSV-only leaks" true o.V2.success

let test_v2_blocked_by_isv () =
  List.iter
    (fun scheme ->
      let o = V2.run ~scheme () in
      Alcotest.(check bool) (Defense.scheme_name scheme ^ " blocks v2") false o.V2.success)
    [
      Defense.Perspective Isv.Static;
      Defense.Perspective Isv.Dynamic;
      Defense.Perspective Isv.Plus;
      Defense.Fence;
      Defense.Dom;
      Defense.Stt;
    ]

let test_rsb_leaks_on_unsafe () =
  let o = Rsb.run ~scheme:Defense.Unsafe () in
  Alcotest.(check bool) "leaks" true o.Rsb.success

let test_rsb_blocked_by_defenses () =
  List.iter
    (fun scheme ->
      let o = Rsb.run ~scheme () in
      Alcotest.(check bool) (Defense.scheme_name scheme ^ " blocks rsb") false o.Rsb.success)
    [
      Defense.Fence;
      Defense.Perspective Isv.Static;
      Defense.Perspective Isv.Dynamic;
      Defense.Perspective Isv.Plus;
    ]

let test_run_all_shapes () =
  let v1 = V1.run_all () in
  check Alcotest.int "v1 schemes" 9 (List.length v1);
  Alcotest.(check bool) "exactly one v1 success (UNSAFE)" true
    (List.length (List.filter (fun o -> o.V1.success) v1) = 1);
  let v2 = V2.run_all () in
  check Alcotest.int "v2 schemes" 10 (List.length v2);
  Alcotest.(check bool) "exactly two v2 successes (UNSAFE, DSV-only)" true
    (List.length (List.filter (fun o -> o.V2.success) v2) = 2)

let test_patch_demo () =
  let d = V2.run_patch_demo () in
  Alcotest.(check bool) "trusted gadget leaks despite PERSPECTIVE" true
    d.V2.before_patch.V2.success;
  Alcotest.(check bool) "live exclusion blocks it" false d.V2.after_patch.V2.success

let test_cve_study () =
  check Alcotest.int "nine rows" 9 (List.length Cve.rows);
  check Alcotest.int "four data-access rows" 4
    (Cve.count_by_primitive Cve.Unauthorized_data_access);
  check Alcotest.int "five hijack rows" 5 (Cve.count_by_primitive Cve.Control_flow_hijack);
  List.iteri
    (fun i r ->
      check Alcotest.int "indices dense" (i + 1) r.Cve.index;
      Alcotest.(check bool) "has references" true (r.Cve.references <> []))
    Cve.rows

let suite =
  [
    ( "attacks.spectre_v1",
      [
        Alcotest.test_case "leaks on UNSAFE" `Quick test_v1_leaks_on_unsafe;
        Alcotest.test_case "robust across seeds" `Quick test_v1_different_seeds;
        Alcotest.test_case "blocked by defenses" `Quick test_v1_blocked_by_defenses;
        Alcotest.test_case "blocked by DOM" `Quick test_v1_blocked_by_dom;
        Alcotest.test_case "Table 4.1 variants leak on UNSAFE" `Quick
          test_v1_cve_variants_leak;
        Alcotest.test_case "Table 4.1 variants blocked" `Quick
          test_v1_cve_variants_blocked;
      ] );
    ( "attacks.spectre_v2",
      [
        Alcotest.test_case "leaks on UNSAFE" `Quick test_v2_leaks_on_unsafe;
        Alcotest.test_case "DSV-only cannot stop passive" `Quick
          test_v2_dsv_only_cannot_stop_passive;
        Alcotest.test_case "blocked by ISVs and baselines" `Quick test_v2_blocked_by_isv;
      ] );
    ( "attacks.spectre_rsb",
      [
        Alcotest.test_case "leaks on UNSAFE" `Quick test_rsb_leaks_on_unsafe;
        Alcotest.test_case "blocked by defenses" `Quick test_rsb_blocked_by_defenses;
      ] );
    ( "attacks.summary",
      [
        Alcotest.test_case "run_all shapes" `Quick test_run_all_shapes;
        Alcotest.test_case "swift gadget patching" `Quick test_patch_demo;
        Alcotest.test_case "CVE study table" `Quick test_cve_study;
      ] );
  ]
