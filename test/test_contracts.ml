(* The contract-checker subsystem and the SafeSpec/SpecBox shadow schemes.

   Three layers of evidence:
   1. Shadow-structure invariants (QCheck): speculative fills never touch the
      real cache hierarchy, a squash leaves the architectural cache state
      byte-identical to pre-speculation, and the shadow guards never block an
      access (speculative or not) — their whole point is isolation without
      stalls.
   2. Opt-vs-ref agreement: random programs under SAFESPEC and SPECBOX guards
      behave identically (architecture AND timing) in the fast [Pipeline] and
      the frozen seed [Pipeline_ref], and architecturally identically to an
      unguarded run.
   3. The checker itself: expected verdicts on known cells, determinism of
      the rendered matrix across jobs and across a cold/warm cache, and
      kill+resume convergence. *)

module C = Pv_contracts.Contracts
module Defense = Perspective.Defense
module Shadow = Perspective.Shadow
module Guard = Pv_uarch.Guard
module Pipeline = Pv_uarch.Pipeline
module Pipeline_ref = Pv_uarch.Pipeline_ref
module Memsys = Pv_uarch.Memsys
module Cache = Pv_uarch.Cache
module Mem = Pv_isa.Mem
module Layout = Pv_isa.Layout
module Supervise = Pv_experiments.Supervise
module Schemes = Pv_experiments.Schemes
module Tab = Pv_util.Tab
module Fault = Pv_util.Fault
module Rng = Pv_util.Rng

let check = Alcotest.check

(* The same guard Defense.build wires up, but built directly so each test
   pipeline gets its own shadow over its own memory system. *)
let shadow_guard mode ms =
  let sh = Shadow.create ~mode ms in
  let g =
    {
      Guard.name = (match mode with Shadow.Shared -> "safespec" | Shadow.Labeled -> "specbox");
      check = (fun _ -> Guard.Allow);
      notify_vp =
        Some
          (fun ~insn_va:_ ~addr ~asid ~kernel_mode:_ ->
            Shadow.promote sh ~key:(Layout.phys_key ~asid addr) ~asid);
      spec_read = Some (fun ~key ~asid -> Shadow.spec_read sh ~key ~asid);
      notify_squash = Some (fun ~asid -> Shadow.squash sh ~asid);
      shadow_btb = true;
    }
  in
  (sh, g)

(* --- shadow-structure invariants (QCheck) ------------------------------ *)

let arb_accesses =
  (* (line, asid) speculative accesses; small ranges force label collisions
     and shadow hits. *)
  QCheck.make
    QCheck.Gen.(
      list_size (int_range 1 64)
        (pair (int_range 0 255) (int_range 1 4)))

let cache_state ms =
  String.concat "|"
    [
      Cache.state_signature (Memsys.l1d ms);
      Cache.state_signature (Memsys.l2 ms);
      Cache.state_signature (Memsys.l1i ms);
    ]

let squash_restores_prop mode =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s: spec fills + full squash leave cache state untouched"
         (match mode with Shadow.Shared -> "safespec" | Shadow.Labeled -> "specbox"))
    ~count:100 arb_accesses
    (fun accesses ->
      let ms = Memsys.create (Mem.create ()) in
      (* a little architectural state first, so the signature is non-trivial *)
      for i = 0 to 7 do
        ignore (Memsys.data_read ms (Layout.phys_key ~asid:1 (Layout.user_data_base + (64 * i))))
      done;
      let before = cache_state ms in
      let sh = Shadow.create ~mode ms in
      List.iter
        (fun (line, asid) ->
          ignore
            (Shadow.spec_read sh
               ~key:(Layout.phys_key ~asid (Layout.user_data_base + (Layout.line_bytes * line)))
               ~asid))
        accesses;
      let untouched_during = cache_state ms = before in
      List.iter (fun asid -> Shadow.squash sh ~asid) [ 1; 2; 3; 4 ];
      untouched_during && cache_state ms = before && Shadow.size sh = 0)

let never_blocks_prop =
  let arb_query =
    QCheck.make
      QCheck.Gen.(
        let* insn_va = int_range 0 100_000 in
        let* fid = int_range 0 64 in
        let* addr = int_range 0 1_000_000 in
        let* asid = int_range 1 8 in
        let* kernel_mode = bool in
        let* speculative = bool in
        let* l1_hit = bool in
        let* tainted = bool in
        return
          { Guard.insn_va; fid; addr; asid; kernel_mode; speculative; l1_hit; tainted })
  in
  QCheck.Test.make ~name:"shadow guards never block any access" ~count:200 arb_query
    (fun q ->
      List.for_all
        (fun mode ->
          let ms = Memsys.create (Mem.create ()) in
          let _, g = shadow_guard mode ms in
          g.Guard.check q = Guard.Allow)
        [ Shadow.Shared; Shadow.Labeled ])

let test_labeled_isolation () =
  (* SpecBox: a squash by one ASID must not discard another ASID's shadow
     entries; SafeSpec's shared shadow flushes everything. *)
  let key asid = Layout.phys_key ~asid Layout.user_data_base in
  let ms = Memsys.create (Mem.create ()) in
  let sh = Shadow.create ~mode:Shadow.Labeled ms in
  ignore (Shadow.spec_read sh ~key:(key 1) ~asid:1);
  ignore (Shadow.spec_read sh ~key:(key 2) ~asid:2);
  Shadow.squash sh ~asid:1;
  check Alcotest.int "labeled squash keeps the other domain" 1 (Shadow.size sh);
  let ms = Memsys.create (Mem.create ()) in
  let sh = Shadow.create ~mode:Shadow.Shared ms in
  ignore (Shadow.spec_read sh ~key:(key 1) ~asid:1);
  ignore (Shadow.spec_read sh ~key:(key 2) ~asid:2);
  Shadow.squash sh ~asid:1;
  check Alcotest.int "shared squash flushes everything" 0 (Shadow.size sh)

(* --- opt vs ref agreement under the shadow guards ---------------------- *)

let run_opt ?guard prog =
  let stream = ref [] in
  let ms = Memsys.create (Mem.create ()) in
  let pipe = Pipeline.create ms prog in
  Option.iter (fun mode -> Pipeline.set_guard pipe (snd (shadow_guard mode ms))) guard;
  let hooks =
    {
      Pipeline.null_hooks with
      Pipeline.on_commit = Some (fun fid idx _ -> stream := (fid, idx) :: !stream);
    }
  in
  let r = Pipeline.run ~hooks pipe ~asid:1 ~start:0 in
  (r.Pipeline.regs, List.rev !stream, r.Pipeline.cycles, r.Pipeline.committed)

let run_ref ?guard prog =
  let stream = ref [] in
  let ms = Memsys.create (Mem.create ()) in
  let pipe = Pipeline_ref.create ms prog in
  Option.iter (fun mode -> Pipeline_ref.set_guard pipe (snd (shadow_guard mode ms))) guard;
  let hooks =
    {
      Pipeline_ref.null_hooks with
      Pipeline_ref.on_commit = Some (fun fid idx _ -> stream := (fid, idx) :: !stream);
    }
  in
  let r = Pipeline_ref.run ~hooks pipe ~asid:1 ~start:0 in
  (r.Pipeline_ref.regs, List.rev !stream, r.Pipeline_ref.cycles, r.Pipeline_ref.committed)

let test_shadow_opt_matches_ref () =
  for seed = 1 to 25 do
    let rng = Rng.create (0x5AFE + seed) in
    let prog = Test_oracle.gen_program rng in
    let base_regs, base_stream, _, _ = run_opt prog in
    List.iter
      (fun mode ->
        let o_regs, o_stream, o_cycles, o_committed = run_opt ~guard:mode prog in
        let r_regs, r_stream, r_cycles, r_committed = run_ref ~guard:mode prog in
        let label fmt = Printf.sprintf ("seed %d: " ^^ fmt) seed in
        check Alcotest.(array int) (label "shadow regs = unguarded regs") base_regs o_regs;
        check
          Alcotest.(list (pair int int))
          (label "shadow commit stream = unguarded") base_stream o_stream;
        check Alcotest.(array int) (label "opt regs = ref regs") r_regs o_regs;
        check
          Alcotest.(list (pair int int))
          (label "opt commit stream = ref") r_stream o_stream;
        check Alcotest.int (label "opt cycles = ref cycles") r_cycles o_cycles;
        check Alcotest.int (label "opt committed = ref committed") r_committed o_committed)
      [ Shadow.Shared; Shadow.Labeled ]
  done

(* --- checker verdicts --------------------------------------------------- *)

let test_known_verdicts () =
  let r = C.check ~attack:"v1-index" ~scheme:"UNSAFE" () in
  check Alcotest.string "UNSAFE leaks v1" "CT-SPEC" (C.verdict_name r.C.verdict);
  Alcotest.(check bool) "diff names the cache channel" true
    (List.mem "caches" r.C.diffs);
  let r = C.check ~attack:"v1-index" ~scheme:"FENCE" () in
  check Alcotest.string "FENCE is ARCH-SEQ" "ARCH-SEQ" (C.verdict_name r.C.verdict);
  check Alcotest.int "FENCE ran no speculative loads" 0 r.C.obs_lo.C.spec_loads;
  List.iter
    (fun scheme ->
      List.iter
        (fun attack ->
          let r = C.check ~attack ~scheme () in
          Alcotest.(check bool)
            (Printf.sprintf "%s does not leak under %s" scheme attack)
            false (C.leaks r.C.verdict);
          Alcotest.(check bool)
            (Printf.sprintf "%s speculated under %s" scheme attack)
            true
            (r.C.obs_lo.C.spec_loads > 0))
        C.attack_names)
    [ "SAFESPEC"; "SPECBOX" ]

let test_unknown_labels () =
  let invalid f = try ignore (f ()); None with Invalid_argument m -> Some m in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  (match invalid (fun () -> C.cells ~attacks:[ "v9" ] ()) with
  | Some m ->
    Alcotest.(check bool) "bad attack named" true (contains ~sub:"v9" m);
    Alcotest.(check bool) "valid attacks listed" true (contains ~sub:"v1-index" m)
  | None -> Alcotest.fail "unknown attack accepted");
  (match invalid (fun () -> C.cells ~schemes:[ "SPECTREGUARD" ] ()) with
  | Some m ->
    Alcotest.(check bool) "bad scheme named" true (contains ~sub:"SPECTREGUARD" m);
    Alcotest.(check bool) "valid schemes listed" true (contains ~sub:"SAFESPEC" m)
  | None -> Alcotest.fail "unknown scheme accepted");
  match invalid (fun () -> Schemes.find "NOPE") with
  | Some m ->
    Alcotest.(check bool) "Schemes.find names the label" true (contains ~sub:"NOPE" m);
    Alcotest.(check bool) "Schemes.find lists valid labels" true (contains ~sub:"DOM" m)
  | None -> Alcotest.fail "Schemes.find accepted an unknown label"

(* --- matrix determinism ------------------------------------------------- *)

let sub_attacks = [ "v1-index"; "v2" ]

let sub_schemes = [ "UNSAFE"; "FENCE"; "SAFESPEC" ]

let sub_cells () = C.cells ~attacks:sub_attacks ~schemes:sub_schemes ()

let render sweep =
  Tab.to_string
    (C.matrix_table ~attacks:sub_attacks ~schemes:sub_schemes sweep.Supervise.results)

let with_temp_dir f =
  let dir = Filename.temp_file "pv_contracts" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
      in
      rm dir)
    (fun () -> f dir)

let test_matrix_deterministic () =
  with_temp_dir (fun dir ->
      let cache = Pv_util.Rescache.open_dir dir in
      let cold =
        Supervise.run ~config:{ Supervise.default with jobs = 1; cache = Some cache } (sub_cells ())
      in
      check Alcotest.int "cold run executed every cell" 6 cold.Supervise.executed;
      let warm =
        Supervise.run ~config:{ Supervise.default with jobs = 4; cache = Some cache } (sub_cells ())
      in
      check Alcotest.int "warm run served everything from cache" 6 warm.Supervise.cached;
      check Alcotest.int "warm run executed nothing" 0 warm.Supervise.executed;
      check Alcotest.string "cold -j1 and warm -j4 matrices byte-identical"
        (render cold) (render warm))

let test_fault_then_resume_converges () =
  let path = Filename.temp_file "pv_contracts" ".journal" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let fault =
        Fault.plan [ { Fault.index = 2; kind = Fault.Crash; first_attempts = Fault.always } ]
      in
      let faulted =
        Supervise.run
          ~config:{ Supervise.default with jobs = 2; fault; checkpoint = Some path }
          (sub_cells ())
      in
      check Alcotest.int "one cell failed" 1 (Supervise.failed faulted);
      let resumed =
        Supervise.run
          ~config:{ Supervise.default with checkpoint = Some path; resume = true }
          (sub_cells ())
      in
      check Alcotest.int "only the failed cell re-ran" 1 resumed.Supervise.executed;
      let clean = Supervise.run (sub_cells ()) in
      check Alcotest.string "resumed matrix bytes = uninterrupted serial run"
        (render clean) (render resumed))

let suite =
  [
    ( "contracts.shadow",
      [
        QCheck_alcotest.to_alcotest (squash_restores_prop Shadow.Shared);
        QCheck_alcotest.to_alcotest (squash_restores_prop Shadow.Labeled);
        QCheck_alcotest.to_alcotest never_blocks_prop;
        Alcotest.test_case "labeled vs shared squash isolation" `Quick test_labeled_isolation;
        Alcotest.test_case "random programs: shadow opt = ref = unguarded arch" `Slow
          test_shadow_opt_matches_ref;
      ] );
    ( "contracts.checker",
      [
        Alcotest.test_case "known verdicts" `Slow test_known_verdicts;
        Alcotest.test_case "unknown labels are friendly errors" `Quick test_unknown_labels;
        Alcotest.test_case "cold -j1 = warm -j4 matrix bytes" `Slow test_matrix_deterministic;
        Alcotest.test_case "kill, checkpoint, resume, converge" `Slow
          test_fault_then_resume_converges;
      ] );
  ]
