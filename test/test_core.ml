(* Tests for the Perspective core: view caches, DSVMT, ISVs, the view
   manager, the defense guards and the spot-mitigation models. *)

module Svcache = Perspective.Svcache
module Dsvmt = Perspective.Dsvmt
module Isv = Perspective.Isv
module View_manager = Perspective.View_manager
module Defense = Perspective.Defense
module Spot = Perspective.Spot
module Guard = Pv_uarch.Guard
module Layout = Pv_isa.Layout
module Bitset = Pv_util.Bitset

let check = Alcotest.check

(* --- Svcache --- *)

let test_svcache_miss_install_hit () =
  let c = Svcache.create ~name:"t" () in
  Alcotest.(check bool) "miss" true (Svcache.lookup c ~asid:1 100 = Svcache.Miss);
  Svcache.install c ~asid:1 100 true;
  Alcotest.(check bool) "hit true" true (Svcache.lookup c ~asid:1 100 = Svcache.Hit true);
  Svcache.install c ~asid:1 101 false;
  Alcotest.(check bool) "hit false" true (Svcache.lookup c ~asid:1 101 = Svcache.Hit false)

let test_svcache_asid_tagged () =
  let c = Svcache.create ~name:"t" () in
  Svcache.install c ~asid:1 100 true;
  Alcotest.(check bool) "other asid misses" true (Svcache.lookup c ~asid:2 100 = Svcache.Miss);
  Svcache.install c ~asid:2 100 false;
  Alcotest.(check bool) "both coexist" true
    (Svcache.lookup c ~asid:1 100 = Svcache.Hit true
    && Svcache.lookup c ~asid:2 100 = Svcache.Hit false)

let test_svcache_capacity_eviction () =
  let c = Svcache.create ~entries:8 ~ways:2 ~name:"t" () in
  (* 4 sets x 2 ways; keys k and k+4n map to the same set. *)
  Svcache.install c ~asid:1 0 true;
  Svcache.install c ~asid:1 4 true;
  Svcache.install c ~asid:1 8 true (* evicts key 0 (LRU) *);
  Alcotest.(check bool) "victim evicted" true (Svcache.lookup c ~asid:1 0 = Svcache.Miss);
  Alcotest.(check bool) "recent kept" true (Svcache.lookup c ~asid:1 8 = Svcache.Hit true)

let test_svcache_touch_promotes () =
  let c = Svcache.create ~entries:8 ~ways:2 ~name:"t" () in
  Svcache.install c ~asid:1 0 true;
  Svcache.install c ~asid:1 4 true;
  Svcache.touch c ~asid:1 0 (* deferred VP promotion *);
  Svcache.install c ~asid:1 8 true (* now 4 is the LRU victim *);
  Alcotest.(check bool) "promoted survives" true (Svcache.lookup c ~asid:1 0 = Svcache.Hit true);
  Alcotest.(check bool) "unpromoted evicted" true (Svcache.lookup c ~asid:1 4 = Svcache.Miss)

(* The frozen-replacement contract: a speculative install must leave the
   set's LRU order exactly as a non-speculative observer would see it, or
   the replacement state itself becomes a transmitter before the access
   reaches its Visibility Point. *)
let test_svcache_speculative_fill_stays_victim () =
  let c = Svcache.create ~entries:8 ~ways:2 ~name:"t" () in
  Svcache.install c ~asid:1 0 true;
  Svcache.install c ~asid:1 4 true;
  (* speculative fill evicts key 0 (LRU) but inherits its stamp... *)
  Svcache.install ~speculative:true c ~asid:1 8 true;
  Alcotest.(check bool) "filled line is usable" true
    (Svcache.lookup c ~asid:1 8 = Svcache.Hit true);
  (* ...so the next demand install victimizes the speculative line, not 4 *)
  Svcache.install c ~asid:1 12 true;
  Alcotest.(check bool) "unpromoted speculative line re-evicted" true
    (Svcache.lookup c ~asid:1 8 = Svcache.Miss);
  Alcotest.(check bool) "architectural line untouched" true
    (Svcache.lookup c ~asid:1 4 = Svcache.Hit true);
  Alcotest.(check bool) "new line present" true
    (Svcache.lookup c ~asid:1 12 = Svcache.Hit true)

let test_svcache_touch_promotes_speculative_fill () =
  let c = Svcache.create ~entries:8 ~ways:2 ~name:"t" () in
  Svcache.install c ~asid:1 0 true;
  Svcache.install c ~asid:1 4 true;
  Svcache.install ~speculative:true c ~asid:1 8 true;
  Svcache.touch c ~asid:1 8 (* the access reached its VP *);
  Svcache.install c ~asid:1 12 true (* now 4 is the LRU victim *);
  Alcotest.(check bool) "promoted speculative line survives" true
    (Svcache.lookup c ~asid:1 8 = Svcache.Hit true);
  Alcotest.(check bool) "LRU architectural line evicted instead" true
    (Svcache.lookup c ~asid:1 4 = Svcache.Miss)

let test_svcache_speculative_hit_does_not_promote () =
  let c = Svcache.create ~entries:8 ~ways:2 ~name:"t" () in
  Svcache.install c ~asid:1 0 true;
  Svcache.install c ~asid:1 4 true;
  (* a speculative re-install on a resident key updates the bit but must
     not refresh its recency *)
  Svcache.install ~speculative:true c ~asid:1 0 false;
  Alcotest.(check bool) "bit updated" true (Svcache.lookup c ~asid:1 0 = Svcache.Hit false);
  Svcache.install c ~asid:1 8 true;
  Alcotest.(check bool) "still the LRU victim" true
    (Svcache.lookup c ~asid:1 0 = Svcache.Miss);
  Alcotest.(check bool) "younger line kept" true
    (Svcache.lookup c ~asid:1 4 = Svcache.Hit true)

let test_svcache_invalidate () =
  let c = Svcache.create ~name:"t" () in
  Svcache.install c ~asid:1 100 true;
  Svcache.install c ~asid:2 100 true;
  Svcache.invalidate c 100;
  Alcotest.(check bool) "all asids dropped" true
    (Svcache.lookup c ~asid:1 100 = Svcache.Miss
    && Svcache.lookup c ~asid:2 100 = Svcache.Miss)

let test_svcache_stats () =
  let c = Svcache.create ~name:"t" () in
  Alcotest.(check (option (float 1e-9)))
    "untouched cache has no rate" None (Svcache.hit_rate c);
  ignore (Svcache.lookup c ~asid:1 5);
  Svcache.install c ~asid:1 5 true;
  ignore (Svcache.lookup c ~asid:1 5);
  check Alcotest.int "hits" 1 (Svcache.hits c);
  check Alcotest.int "misses" 1 (Svcache.misses c);
  check Alcotest.int "accesses" 2 (Svcache.accesses c);
  Alcotest.(check (option (float 1e-9))) "rate" (Some 0.5) (Svcache.hit_rate c);
  (* An all-miss cache must be distinguishable from an untouched one. *)
  let m = Svcache.create ~name:"m" () in
  ignore (Svcache.lookup m ~asid:1 7);
  Alcotest.(check (option (float 1e-9)))
    "100%-miss is Some 0." (Some 0.0) (Svcache.hit_rate m)

(* --- DSVMT --- *)

let test_dsvmt_walk_oracle () =
  let calls = ref 0 in
  let d =
    Dsvmt.create ~ctx:1 ~oracle:(fun ~page ->
        incr calls;
        page mod 2 = 0)
  in
  Alcotest.(check bool) "even page in" true (Dsvmt.walk d ~page:4);
  Alcotest.(check bool) "odd page out" false (Dsvmt.walk d ~page:5);
  check Alcotest.int "oracle consulted" 2 !calls;
  ignore (Dsvmt.walk d ~page:4);
  check Alcotest.int "cached after populate" 2 !calls;
  check Alcotest.int "walks counted" 3 (Dsvmt.walks d);
  check Alcotest.int "leaves" 2 (Dsvmt.populated_leaves d)

let test_dsvmt_invalidate () =
  let flips = ref true in
  let d = Dsvmt.create ~ctx:1 ~oracle:(fun ~page:_ -> !flips) in
  Alcotest.(check bool) "first" true (Dsvmt.walk d ~page:7);
  flips := false;
  Alcotest.(check bool) "stale until invalidated" true (Dsvmt.walk d ~page:7);
  Dsvmt.invalidate_page d ~page:7;
  Alcotest.(check bool) "fresh after invalidate" false (Dsvmt.walk d ~page:7)

let test_dsvmt_set_page () =
  let d = Dsvmt.create ~ctx:1 ~oracle:(fun ~page:_ -> false) in
  Dsvmt.set_page d ~page:10 true;
  Alcotest.(check bool) "explicit set" true (Dsvmt.walk d ~page:10)

let test_dsvmt_huge () =
  let d = Dsvmt.create ~ctx:1 ~oracle:(fun ~page:_ -> false) in
  (* Mark the 2 MiB region containing 4 KiB pages [512, 1024). *)
  Dsvmt.mark_huge d ~page_2m:1 true;
  Alcotest.(check bool) "covered page" true (Dsvmt.walk d ~page:600);
  Alcotest.(check bool) "outside region" false (Dsvmt.walk d ~page:100)

let test_dsvmt_distant_pages () =
  let d = Dsvmt.create ~ctx:1 ~oracle:(fun ~page -> page > 1_000_000) in
  Alcotest.(check bool) "low" false (Dsvmt.walk d ~page:3);
  Alcotest.(check bool) "high (different L1 region)" true (Dsvmt.walk d ~page:2_000_000)

(* Oracle-model property: the DSVMT must agree with a plain map under any
   interleaving of walks, explicit sets and invalidations. *)
let dsvmt_oracle_prop =
  QCheck.Test.make ~name:"DSVMT agrees with a reference map" ~count:150
    QCheck.(small_list (pair (int_bound 2) (int_bound 2000)))
    (fun ops ->
      let backing = Hashtbl.create 32 in
      let oracle ~page = Option.value ~default:(page mod 3 = 0) (Hashtbl.find_opt backing page) in
      let d = Dsvmt.create ~ctx:1 ~oracle in
      let model = Hashtbl.create 32 in
      List.for_all
        (fun (op, page) ->
          match op with
          | 0 ->
            (* walk: must match the model (or the oracle on first touch) *)
            let expected =
              match Hashtbl.find_opt model page with
              | Some b -> b
              | None ->
                let b = oracle ~page in
                Hashtbl.replace model page b;
                b
            in
            Dsvmt.walk d ~page = expected
          | 1 ->
            let b = page mod 2 = 0 in
            Dsvmt.set_page d ~page b;
            Hashtbl.replace model page b;
            Hashtbl.replace backing page b;
            true
          | _ ->
            Dsvmt.invalidate_page d ~page;
            Hashtbl.remove model page;
            true)
        ops)

(* Oracle-model property: the ASID-tagged view cache never returns a wrong
   bit - a Hit must match the last installed value for that (asid, key). *)
let svcache_oracle_prop =
  QCheck.Test.make ~name:"Svcache hits match the last install" ~count:150
    QCheck.(small_list (triple (int_bound 1) (int_bound 2) (int_bound 40)))
    (fun ops ->
      let c = Svcache.create ~entries:16 ~ways:2 ~name:"prop" () in
      let model = Hashtbl.create 32 in
      List.for_all
        (fun (op, asid, key) ->
          if op = 0 then begin
            let bit = key land 1 = 0 in
            Svcache.install c ~asid key bit;
            Hashtbl.replace model (asid, key) bit;
            true
          end
          else
            match Svcache.lookup c ~asid key with
            | Svcache.Miss -> true (* capacity evictions are always legal *)
            | Svcache.Hit b -> (
              match Hashtbl.find_opt model (asid, key) with
              | Some expected -> b = expected
              | None -> false (* hit for something never installed *)))
        ops)

(* --- ISV pages --- *)

let test_isv_pages_demand_population () =
  let p = Perspective.Isv_pages.create () in
  let calls = ref 0 in
  let member () = incr calls; true in
  let va = Layout.insn_va Layout.Kernel 3 7 in
  Alcotest.(check bool) "bit read" true
    (Perspective.Isv_pages.lookup p ~ctx:1 ~insn_va:va ~member);
  check Alcotest.int "one page" 1 (Perspective.Isv_pages.populated_pages p ~ctx:1);
  check Alcotest.int "128 bytes per page" 128 (Perspective.Isv_pages.metadata_bytes p ~ctx:1);
  ignore (Perspective.Isv_pages.lookup p ~ctx:1 ~insn_va:va ~member);
  check Alcotest.int "bit cached" 1 !calls;
  ignore (Perspective.Isv_pages.lookup p ~ctx:1 ~insn_va:(va + 4) ~member);
  check Alcotest.int "same page, new slot" 2 !calls;
  check Alcotest.int "still one page" 1 (Perspective.Isv_pages.populated_pages p ~ctx:1);
  check Alcotest.int "one population event" 1 (Perspective.Isv_pages.population_events p)

let test_isv_pages_per_context () =
  let p = Perspective.Isv_pages.create () in
  let va = Layout.insn_va Layout.Kernel 0 0 in
  ignore (Perspective.Isv_pages.lookup p ~ctx:1 ~insn_va:va ~member:(fun () -> true));
  ignore (Perspective.Isv_pages.lookup p ~ctx:2 ~insn_va:va ~member:(fun () -> false));
  Alcotest.(check bool) "contexts independent" true
    (Perspective.Isv_pages.lookup p ~ctx:1 ~insn_va:va ~member:(fun () -> false)
    && not (Perspective.Isv_pages.lookup p ~ctx:2 ~insn_va:va ~member:(fun () -> true)))

let test_isv_pages_invalidate () =
  let p = Perspective.Isv_pages.create () in
  let va = Layout.insn_va Layout.Kernel 5 0 in
  ignore (Perspective.Isv_pages.lookup p ~ctx:1 ~insn_va:va ~member:(fun () -> true));
  Perspective.Isv_pages.invalidate_page p ~code_page_va:va;
  check Alcotest.int "page dropped" 0 (Perspective.Isv_pages.populated_pages p ~ctx:1);
  Alcotest.(check bool) "re-consults membership" false
    (Perspective.Isv_pages.lookup p ~ctx:1 ~insn_va:va ~member:(fun () -> false))

let test_isv_pages_shadow_va () =
  let va = Layout.insn_va Layout.Kernel 9 13 in
  let shadow = Perspective.Isv_pages.shadow_va va in
  check Alcotest.int "fixed offset" Layout.isv_page_offset
    (shadow - (va land lnot (Layout.page_bytes - 1)))

(* --- ISV --- *)

let test_isv_membership () =
  let v = Isv.of_nodes Isv.Dynamic (Bitset.of_list 10 [ 1; 2; 3 ]) in
  Alcotest.(check bool) "member" true (Isv.member v 2);
  Alcotest.(check bool) "not member" false (Isv.member v 5);
  check Alcotest.int "size" 3 (Isv.size v);
  check (Alcotest.float 1e-9) "reduction" 70.0 (Isv.reduction_vs_kernel v)

let test_isv_all () =
  let v = Isv.all ~nnodes:5 in
  check Alcotest.int "full" 5 (Isv.size v);
  Alcotest.(check bool) "kind" true (Isv.kind v = Isv.All)

let test_isv_patching () =
  let v = Isv.of_nodes Isv.Dynamic (Bitset.of_list 10 [ 1; 2; 3 ]) in
  Isv.exclude v 2 (* swift gadget patch *);
  Alcotest.(check bool) "excluded" false (Isv.member v 2);
  Isv.shrink_to v (Bitset.of_list 10 [ 1; 9 ]);
  check Alcotest.(list int) "shrunk to intersection" [ 1 ] (Bitset.elements (Isv.nodes v))

let test_isv_source_isolation () =
  let b = Bitset.of_list 10 [ 1 ] in
  let v = Isv.of_nodes Isv.Static b in
  Bitset.set b 5;
  Alcotest.(check bool) "source mutation isolated" false (Isv.member v 5)

(* --- view manager --- *)

let test_view_manager () =
  let vm =
    View_manager.create ~nnodes:10 ~oracle:(fun ~ctx ~page -> page mod 10 = ctx)
  in
  let isv = Isv.of_nodes Isv.Dynamic (Bitset.of_list 10 [ 1 ]) in
  View_manager.register vm ~asid:7 ~ctx:3 ~isv;
  check Alcotest.(option int) "ctx resolution" (Some 3) (View_manager.ctx_of_asid vm 7);
  Alcotest.(check bool) "isv via asid" true (View_manager.isv_of_asid vm 7 <> None);
  let d = View_manager.dsvmt vm ~ctx:3 in
  Alcotest.(check bool) "oracle wired with ctx" true (Dsvmt.walk d ~page:13);
  Alcotest.(check bool) "and rejects others" false (Dsvmt.walk d ~page:14);
  View_manager.set_isv vm ~ctx:3 (Isv.all ~nnodes:10);
  check Alcotest.int "isv swapped" 10 (Isv.size (Option.get (View_manager.isv_of_ctx vm 3)));
  check Alcotest.(list int) "contexts" [ 3 ] (View_manager.contexts vm)

let test_view_manager_invalidate () =
  let bit = ref true in
  let vm = View_manager.create ~nnodes:4 ~oracle:(fun ~ctx:_ ~page:_ -> !bit) in
  let d = View_manager.dsvmt vm ~ctx:1 in
  Alcotest.(check bool) "initial" true (Dsvmt.walk d ~page:3);
  bit := false;
  View_manager.invalidate_page vm ~page:3;
  Alcotest.(check bool) "refreshed everywhere" false (Dsvmt.walk d ~page:3)

(* --- defense guards --- *)

let q ?(kernel = true) ?(spec = true) ?(l1 = false) ?(tainted = false) ?(asid = 1)
    ?(fid = 0) ~addr () =
  {
    Guard.insn_va = Layout.insn_va Layout.Kernel fid 0;
    fid;
    addr;
    asid;
    kernel_mode = kernel;
    speculative = spec;
    l1_hit = l1;
    tainted;
  }

let make_perspective ~isv_nodes ~owned_page =
  let vm =
    View_manager.create ~nnodes:4 ~oracle:(fun ~ctx ~page -> ctx = 1 && page = owned_page)
  in
  View_manager.register vm ~asid:1 ~ctx:1 ~isv:(Isv.of_nodes Isv.Dynamic isv_nodes);
  Defense.build ~scheme:(Defense.Perspective Isv.Dynamic) ~vm
    ~node_of_fid:(fun fid -> if fid < 4 then Some fid else None)
    ~block_unknown:true ()

let test_guard_unsafe_fence_dom_stt () =
  let vm = View_manager.create ~nnodes:1 ~oracle:(fun ~ctx:_ ~page:_ -> false) in
  let build s = Defense.guard (Defense.build ~scheme:s ~vm ~node_of_fid:(fun _ -> None) ~block_unknown:true ()) in
  let unsafe = build Defense.Unsafe in
  let fence = build Defense.Fence in
  let dom = build Defense.Dom in
  let stt = build Defense.Stt in
  let addr = Layout.direct_map_va 0 in
  Alcotest.(check bool) "unsafe allows" true
    (unsafe.Guard.check (q ~addr ()) = Guard.Allow);
  Alcotest.(check bool) "fence blocks speculative" true
    (fence.Guard.check (q ~addr ()) = Guard.Block Guard.Baseline);
  Alcotest.(check bool) "fence allows non-speculative" true
    (fence.Guard.check (q ~spec:false ~addr ()) = Guard.Allow);
  Alcotest.(check bool) "dom blocks miss" true
    (dom.Guard.check (q ~l1:false ~addr ()) = Guard.Block Guard.Baseline);
  Alcotest.(check bool) "dom allows hit" true (dom.Guard.check (q ~l1:true ~addr ()) = Guard.Allow);
  Alcotest.(check bool) "stt blocks tainted" true
    (stt.Guard.check (q ~tainted:true ~addr ()) = Guard.Block Guard.Baseline);
  Alcotest.(check bool) "stt allows untainted" true (stt.Guard.check (q ~addr ()) = Guard.Allow)

let test_guard_perspective_isv () =
  let d = make_perspective ~isv_nodes:(Bitset.of_list 4 [ 0 ]) ~owned_page:5 in
  let g = Defense.guard d in
  let owned = Layout.direct_map_va (5 * Layout.page_bytes) in
  (* fid 1 outside the ISV: blocked with source Isv (after the compulsory
     cache-miss block). *)
  Alcotest.(check bool) "first access: miss blocks" true
    (g.Guard.check (q ~fid:1 ~addr:owned ()) = Guard.Block Guard.Isv);
  Alcotest.(check bool) "steady state: still Isv-blocked" true
    (g.Guard.check (q ~fid:1 ~addr:owned ()) = Guard.Block Guard.Isv);
  (* fid 0 inside the ISV: the compulsory ISV-cache miss blocks first, then
     the DSV-cache miss, then the access proceeds. *)
  Alcotest.(check bool) "isv miss blocks" true
    (g.Guard.check (q ~fid:0 ~addr:owned ()) = Guard.Block Guard.Isv);
  Alcotest.(check bool) "dsv miss blocks" true
    (g.Guard.check (q ~fid:0 ~addr:owned ()) = Guard.Block Guard.Dsv);
  Alcotest.(check bool) "steady state: allowed" true
    (g.Guard.check (q ~fid:0 ~addr:owned ()) = Guard.Allow)

let test_guard_perspective_dsv_ownership () =
  let d = make_perspective ~isv_nodes:(Bitset.of_list 4 [ 0; 1; 2; 3 ]) ~owned_page:5 in
  let g = Defense.guard d in
  let foreign = Layout.direct_map_va (9 * Layout.page_bytes) in
  ignore (g.Guard.check (q ~fid:0 ~addr:foreign ())) (* warm both caches *);
  ignore (g.Guard.check (q ~fid:0 ~addr:foreign ()));
  Alcotest.(check bool) "foreign data stays blocked" true
    (g.Guard.check (q ~fid:0 ~addr:foreign ()) = Guard.Block Guard.Dsv)

let test_guard_perspective_unknown () =
  let d = make_perspective ~isv_nodes:(Bitset.of_list 4 [ 0 ]) ~owned_page:5 in
  let g = Defense.guard d in
  ignore (g.Guard.check (q ~fid:0 ~addr:Layout.kernel_global_base ()));
  Alcotest.(check bool) "unknown blocked" true
    (g.Guard.check (q ~fid:0 ~addr:Layout.kernel_global_base ()) = Guard.Block Guard.Dsv)

let test_guard_perspective_gates () =
  let d = make_perspective ~isv_nodes:(Bitset.of_list 4 [ 0 ]) ~owned_page:5 in
  let g = Defense.guard d in
  let addr = Layout.direct_map_va 0 in
  Alcotest.(check bool) "user mode ignored" true
    (g.Guard.check (q ~kernel:false ~addr ()) = Guard.Allow);
  Alcotest.(check bool) "non-speculative ignored" true
    (g.Guard.check (q ~spec:false ~addr ()) = Guard.Allow)

let test_guard_unregistered_context () =
  let d = make_perspective ~isv_nodes:(Bitset.of_list 4 [ 0 ]) ~owned_page:5 in
  let g = Defense.guard d in
  Alcotest.(check bool) "unknown asid fenced" true
    (g.Guard.check (q ~asid:9 ~addr:(Layout.direct_map_va 0) ()) = Guard.Block Guard.Isv)

let test_guard_note_freed () =
  let owned = ref true in
  let vm = View_manager.create ~nnodes:4 ~oracle:(fun ~ctx:_ ~page:_ -> !owned) in
  View_manager.register vm ~asid:1 ~ctx:1
    ~isv:(Isv.of_nodes Isv.Dynamic (Bitset.of_list 4 [ 0 ]));
  let d =
    Defense.build ~scheme:(Defense.Perspective Isv.Dynamic) ~vm
      ~node_of_fid:(fun _ -> Some 0) ~block_unknown:true ()
  in
  let g = Defense.guard d in
  let addr = Layout.direct_map_va (7 * Layout.page_bytes) in
  ignore (g.Guard.check (q ~addr ())) (* ISV-cache fill *);
  ignore (g.Guard.check (q ~addr ())) (* DSV walk: in view *);
  Alcotest.(check bool) "allowed while owned" true (g.Guard.check (q ~addr ()) = Guard.Allow);
  owned := false;
  Defense.note_freed_page d ~page:7;
  ignore (g.Guard.check (q ~addr ())) (* re-walk after invalidation *);
  Alcotest.(check bool) "blocked after free" true
    (g.Guard.check (q ~addr ()) = Guard.Block Guard.Dsv)

let test_guard_isv_plus_exclusion () =
  (* Runtime patching: excluding a function flips its decision to Block, but
     only after the stale ISV-cache entry for its line is invalidated. *)
  let vm = View_manager.create ~nnodes:4 ~oracle:(fun ~ctx:_ ~page:_ -> true) in
  let isv = Isv.of_nodes Isv.Plus (Bitset.of_list 4 [ 0; 1 ]) in
  View_manager.register vm ~asid:1 ~ctx:1 ~isv;
  let d =
    Defense.build ~scheme:(Defense.Perspective Isv.Plus) ~vm
      ~node_of_fid:(fun fid -> Some fid) ~block_unknown:true ()
  in
  let g = Defense.guard d in
  let addr = Layout.direct_map_va 0 in
  ignore (g.Guard.check (q ~fid:1 ~addr ()));
  ignore (g.Guard.check (q ~fid:1 ~addr ()));
  Alcotest.(check bool) "initially allowed" true (g.Guard.check (q ~fid:1 ~addr ()) = Guard.Allow);
  Isv.exclude isv 1;
  Defense.note_view_changed d ~insn_va:(Layout.insn_va Layout.Kernel 1 0);
  ignore (g.Guard.check (q ~fid:1 ~addr ()));
  Alcotest.(check bool) "blocked after patch" true
    (g.Guard.check (q ~fid:1 ~addr ()) = Guard.Block Guard.Isv)

let test_scheme_names () =
  check Alcotest.string "perspective" "PERSPECTIVE"
    (Defense.scheme_name (Defense.Perspective Isv.Dynamic));
  check Alcotest.string "plus" "PERSPECTIVE++"
    (Defense.scheme_name (Defense.Perspective Isv.Plus));
  check Alcotest.int "five standard schemes" 5 (List.length Defense.all_schemes)

let test_spot_transforms () =
  let base = Pv_uarch.Pipeline.default_config in
  let k = Spot.kpti base in
  Alcotest.(check bool) "kpti entry cost" true
    (k.Pv_uarch.Pipeline.kernel_entry_cycles > base.Pv_uarch.Pipeline.kernel_entry_cycles);
  let r = Spot.retpoline base in
  Alcotest.(check bool) "retpoline flag" true r.Pv_uarch.Pipeline.retpoline;
  let kr = Spot.kpti_retpoline base in
  Alcotest.(check bool) "combined" true
    (kr.Pv_uarch.Pipeline.retpoline
    && kr.Pv_uarch.Pipeline.kernel_exit_cycles > base.Pv_uarch.Pipeline.kernel_exit_cycles)

let suite =
  [
    ( "core.svcache",
      [
        Alcotest.test_case "miss/install/hit" `Quick test_svcache_miss_install_hit;
        Alcotest.test_case "asid tagging" `Quick test_svcache_asid_tagged;
        Alcotest.test_case "capacity eviction" `Quick test_svcache_capacity_eviction;
        Alcotest.test_case "VP touch promotes" `Quick test_svcache_touch_promotes;
        Alcotest.test_case "speculative fill stays the victim" `Quick
          test_svcache_speculative_fill_stays_victim;
        Alcotest.test_case "VP touch promotes a speculative fill" `Quick
          test_svcache_touch_promotes_speculative_fill;
        Alcotest.test_case "speculative hit does not promote" `Quick
          test_svcache_speculative_hit_does_not_promote;
        Alcotest.test_case "invalidate" `Quick test_svcache_invalidate;
        Alcotest.test_case "stats" `Quick test_svcache_stats;
        QCheck_alcotest.to_alcotest svcache_oracle_prop;
      ] );
    ( "core.dsvmt",
      [
        QCheck_alcotest.to_alcotest dsvmt_oracle_prop;
        Alcotest.test_case "lazy walk" `Quick test_dsvmt_walk_oracle;
        Alcotest.test_case "invalidate" `Quick test_dsvmt_invalidate;
        Alcotest.test_case "explicit set" `Quick test_dsvmt_set_page;
        Alcotest.test_case "huge pages" `Quick test_dsvmt_huge;
        Alcotest.test_case "distant pages" `Quick test_dsvmt_distant_pages;
      ] );
    ( "core.isv_pages",
      [
        Alcotest.test_case "demand population" `Quick test_isv_pages_demand_population;
        Alcotest.test_case "per-context" `Quick test_isv_pages_per_context;
        Alcotest.test_case "invalidate" `Quick test_isv_pages_invalidate;
        Alcotest.test_case "shadow VA offset" `Quick test_isv_pages_shadow_va;
      ] );
    ( "core.isv",
      [
        Alcotest.test_case "membership" `Quick test_isv_membership;
        Alcotest.test_case "all" `Quick test_isv_all;
        Alcotest.test_case "patching" `Quick test_isv_patching;
        Alcotest.test_case "source isolation" `Quick test_isv_source_isolation;
      ] );
    ( "core.view_manager",
      [
        Alcotest.test_case "registry" `Quick test_view_manager;
        Alcotest.test_case "invalidation" `Quick test_view_manager_invalidate;
      ] );
    ( "core.defense",
      [
        Alcotest.test_case "baseline guards" `Quick test_guard_unsafe_fence_dom_stt;
        Alcotest.test_case "ISV gate" `Quick test_guard_perspective_isv;
        Alcotest.test_case "DSV ownership" `Quick test_guard_perspective_dsv_ownership;
        Alcotest.test_case "unknown allocations" `Quick test_guard_perspective_unknown;
        Alcotest.test_case "mode/speculation gates" `Quick test_guard_perspective_gates;
        Alcotest.test_case "unregistered context" `Quick test_guard_unregistered_context;
        Alcotest.test_case "freed pages invalidate" `Quick test_guard_note_freed;
        Alcotest.test_case "runtime gadget patching" `Quick test_guard_isv_plus_exclusion;
        Alcotest.test_case "scheme names" `Quick test_scheme_names;
      ] );
    ("core.spot", [ Alcotest.test_case "config transforms" `Quick test_spot_transforms ]);
  ]
