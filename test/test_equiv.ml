(* Golden commit-stream equivalence suite.

   The pipeline cycle loop was rewritten for speed (preallocated int-packed
   ROB pool, allocation-free cache paths); Perspective's security claims rest
   on exact microarchitectural state, so the rewrite must be provably
   byte-identical to the seed model.  Three gates enforce that:

   1. Pinned (workload x scheme) cells run through the full Machine and are
      compared — commit-stream digest, cycles, committed count, stall-class
      totals, fence counts and the metrics-snapshot JSON digest — against
      goldens recorded with the PRE-optimization seed pipeline (committed in
      test/equiv.golden; regenerate with
      [PV_EQUIV_RECORD=$PWD/test/equiv.golden dune exec test/main.exe -- test equiv]).

   2. Seeded random programs run through the optimized [Pipeline], the frozen
      seed copy [Pipeline_ref] and the in-order ISS: all three must agree on
      the architectural commit stream, final registers and memory; the two
      pipelines must also agree on cycle counts and stall attribution, which
      the ISS cannot check.

   3. A small lebench matrix is rendered at -j 1 and -j 4: the experiment
      tables must be byte-identical to each other and to the recorded golden
      digest. *)

module I = Pv_isa.Insn
module Layout = Pv_isa.Layout
module Mem = Pv_isa.Mem
module Memsys = Pv_uarch.Memsys
module Pipeline = Pv_uarch.Pipeline
module Pipeline_ref = Pv_uarch.Pipeline_ref
module Rng = Pv_util.Rng
module Metrics = Pv_util.Metrics
module Tab = Pv_util.Tab
module Perf = Pv_experiments.Perf
module Perf_report = Pv_experiments.Perf_report
module Schemes = Pv_experiments.Schemes
module Lebench = Pv_workloads.Lebench
module Apps = Pv_workloads.Apps

let check = Alcotest.check

(* --- incremental FNV-1a, so commit streams digest without buffering ----- *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_str h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let hex h = Printf.sprintf "%016Lx" h

let digest s = hex (fnv_str fnv_offset s)

(* --- pinned cells ------------------------------------------------------- *)

(* Small but representative: two LEBench syscall tests and one app, each
   under the three headline schemes.  Scale is pinned; any change to these
   inputs invalidates the goldens. *)
let cell_scale = 0.05

let cell_specs =
  List.concat_map
    (fun scheme ->
      [ ("lebench", "read", scheme); ("lebench", "select", scheme) ])
    [ "UNSAFE"; "FENCE"; "PERSPECTIVE" ]
  @ [ ("apps", "httpd", "UNSAFE"); ("apps", "httpd", "PERSPECTIVE") ]

let stalls_field counters =
  Pipeline.stall_classes counters
  |> List.map (fun (name, v) -> Printf.sprintf "%s:%d" name v)
  |> String.concat ","

let run_cell (family, workload, scheme) =
  let variant = Schemes.find scheme in
  let h = ref fnv_offset in
  let on_commit fid idx _ = h := fnv_str !h (Printf.sprintf "%d:%d;" fid idx) in
  let r =
    match family with
    | "lebench" ->
      Perf.run_lebench ~scale:cell_scale ~on_commit variant (Lebench.find workload)
    | "apps" ->
      let app = List.find (fun a -> a.Apps.name = workload) Apps.all in
      Perf.run_app ~scale:cell_scale ~on_commit variant app
    | _ -> invalid_arg "run_cell: unknown family"
  in
  let key = Printf.sprintf "%s/%s/%s" family workload scheme in
  let line =
    Printf.sprintf "cell %s|cycles=%d|committed=%d|stream=%s|stalls=%s|fences=%d,%d,%d|metrics=%s"
      key r.Perf.cycles r.Perf.committed (hex !h)
      (stalls_field r.Perf.counters)
      r.Perf.counters.Pipeline.fences_isv r.Perf.counters.Pipeline.fences_dsv
      r.Perf.counters.Pipeline.fences_baseline
      (digest (Metrics.snapshot_to_json r.Perf.metrics))
  in
  (key, line)

(* --- small experiment matrix, -j 1 vs -j 4 ------------------------------ *)

let matrix_tests () = [ Lebench.find "read"; Lebench.find "select" ]

let matrix_variants = [ "UNSAFE"; "FENCE"; "PERSPECTIVE" ]

let run_matrix ~jobs =
  Perf.lebench_matrix ~scale:cell_scale ~jobs ~tests:(matrix_tests ())
    ~variants:(List.map Schemes.find matrix_variants) ()

let matrix_bytes m =
  Tab.to_string (Perf_report.fig_lebench m)
  ^ Tab.to_string (Perf_report.fence_breakdown m)
  ^ Tab.to_string (Perf_report.stall_breakdown m)

(* --- golden file -------------------------------------------------------- *)

(* Under [dune runtest] the cwd is the sandboxed test dir (the (deps) copy of
   equiv.golden sits beside the binary); under [dune exec test/main.exe] it is
   the workspace root. *)
let golden_path () =
  if Sys.file_exists "equiv.golden" then "equiv.golden" else "test/equiv.golden"

let record_path () = Sys.getenv_opt "PV_EQUIV_RECORD"

let read_goldens () =
  let ic = open_in (golden_path ()) in
  let tbl = Hashtbl.create 32 in
  (try
     while true do
       let line = input_line ic in
       if line <> "" && line.[0] <> '#' then
         match String.index_opt line '|' with
         | Some i -> Hashtbl.replace tbl (String.sub line 0 i) line
         | None -> ()
     done
   with End_of_file -> ());
  close_in ic;
  tbl

let golden_key line =
  match String.index_opt line '|' with
  | Some i -> String.sub line 0 i
  | None -> line

let current_lines () =
  let cells = List.map (fun spec -> snd (run_cell spec)) cell_specs in
  let m1 = run_matrix ~jobs:1 in
  let m4 = run_matrix ~jobs:4 in
  let b1 = matrix_bytes m1 in
  let b4 = matrix_bytes m4 in
  check Alcotest.string "lebench tables byte-identical for -j 1 and -j 4" b1 b4;
  cells @ [ Printf.sprintf "table lebench-matrix|digest=%s" (digest b1) ]

let test_goldens () =
  let lines = current_lines () in
  match record_path () with
  | Some path ->
    let oc = open_out path in
    output_string oc
      "# Pre-optimization golden equivalence records (seed pipeline).\n\
       # One line per pinned (workload x scheme) cell plus the rendered\n\
       # experiment-table digest.  Regenerate only when the cell inputs\n\
       # change, never to paper over a pipeline divergence:\n\
       #   PV_EQUIV_RECORD=$PWD/test/equiv.golden dune exec test/main.exe -- test equiv\n";
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc;
    Printf.printf "recorded %d golden lines to %s\n" (List.length lines) path
  | None ->
    let goldens = read_goldens () in
    List.iter
      (fun line ->
        let key = golden_key line in
        match Hashtbl.find_opt goldens key with
        | Some want -> check Alcotest.string key want line
        | None -> Alcotest.failf "no golden recorded for %s" key)
      lines

(* --- random programs: ISS vs optimized vs reference pipeline ------------ *)

let run_opt prog =
  let stream = ref [] in
  let mem = Mem.create () in
  let pipe = Pipeline.create (Memsys.create mem) prog in
  let hooks =
    {
      Pipeline.null_hooks with
      Pipeline.on_commit = Some (fun fid idx _ -> stream := (fid, idx) :: !stream);
    }
  in
  let r = Pipeline.run ~hooks pipe ~asid:1 ~start:0 in
  (r, List.rev !stream, mem, Pipeline.counters pipe)

let run_ref prog =
  let stream = ref [] in
  let mem = Mem.create () in
  let pipe = Pipeline_ref.create (Memsys.create mem) prog in
  let hooks =
    {
      Pipeline_ref.null_hooks with
      Pipeline_ref.on_commit = Some (fun fid idx _ -> stream := (fid, idx) :: !stream);
    }
  in
  let r = Pipeline_ref.run ~hooks pipe ~asid:1 ~start:0 in
  (r, List.rev !stream, mem, Pipeline_ref.counters pipe)

let mem_words mem =
  List.init 64 (fun i ->
      Mem.load mem (Layout.phys_key ~asid:1 (Layout.user_data_base + (8 * i))))

let event_to_string (fid, idx) = Printf.sprintf "%d:%d" fid idx

let assert_three_way ~seed prog =
  let iss, iss_stream, iss_mem = Test_oracle.run_iss prog in
  let opt, opt_stream, opt_mem, opt_ctrs = run_opt prog in
  let rf, ref_stream, ref_mem, ref_ctrs = run_ref prog in
  let label fmt = Printf.sprintf ("seed %d: " ^^ fmt) seed in
  Alcotest.(check bool)
    (label "all three halted")
    true
    (iss.Pv_isa.Iss.outcome = Pv_isa.Iss.Halted
    && opt.Pipeline.outcome = Pipeline.Halted
    && rf.Pipeline_ref.outcome = Pipeline_ref.Halted);
  check
    Alcotest.(list string)
    (label "optimized commit stream = ISS")
    (List.map event_to_string iss_stream)
    (List.map event_to_string opt_stream);
  check
    Alcotest.(list string)
    (label "optimized commit stream = reference")
    (List.map event_to_string ref_stream)
    (List.map event_to_string opt_stream);
  check Alcotest.(array int) (label "registers = ISS") iss.Pv_isa.Iss.regs opt.Pipeline.regs;
  check Alcotest.(array int) (label "registers = reference") rf.Pipeline_ref.regs
    opt.Pipeline.regs;
  check Alcotest.(list int) (label "memory = ISS") (mem_words iss_mem) (mem_words opt_mem);
  check Alcotest.(list int) (label "memory = reference") (mem_words ref_mem)
    (mem_words opt_mem);
  check Alcotest.int (label "cycle count = reference") rf.Pipeline_ref.cycles
    opt.Pipeline.cycles;
  check Alcotest.int (label "committed = reference") rf.Pipeline_ref.committed
    opt.Pipeline.committed;
  check
    Alcotest.(list (pair string int))
    (label "stall classes = reference")
    (Pipeline_ref.stall_classes ref_ctrs)
    (Pipeline.stall_classes opt_ctrs);
  check Alcotest.int (label "squashes = reference") ref_ctrs.Pipeline_ref.squashes
    opt_ctrs.Pipeline.squashes;
  check Alcotest.int (label "spec loads = reference") ref_ctrs.Pipeline_ref.spec_loads
    opt_ctrs.Pipeline.spec_loads

let test_random_three_way () =
  (* A different seed base from test_oracle, so the two suites cover
     disjoint program samples. *)
  for seed = 1 to 40 do
    let rng = Rng.create (0xE0_1D_5E + seed) in
    assert_three_way ~seed (Test_oracle.gen_program rng)
  done

let suite =
  [
    ( "equiv",
      [
        Alcotest.test_case "pinned cells + tables vs seed goldens" `Slow test_goldens;
        Alcotest.test_case "random programs: ISS = optimized = reference" `Slow
          test_random_three_way;
      ] );
  ]
