(* Experiment-level sanity: reproduction metrics must land in (or near) the
   paper's reported ranges, at reduced scale so the suite stays fast. *)

module E = Pv_experiments
module Isv_study = E.Isv_study
module Perf = E.Perf
module Schemes = E.Schemes
module Security = E.Security
module Sensitivity = E.Sensitivity
module Cacti = Pv_hwmodel.Cacti
module Lebench = Pv_workloads.Lebench

let check = Alcotest.check

let study = lazy (Isv_study.build ())

let test_surface_ranges () =
  let rows = Isv_study.surface_rows (Lazy.force study) in
  check Alcotest.int "five workloads" 5 (List.length rows);
  List.iter
    (fun (r : Isv_study.surface_row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s ISV-S reduction %.1f in [87,95]" r.Isv_study.workload
           r.Isv_study.isv_s_reduction)
        true
        (r.Isv_study.isv_s_reduction >= 87.0 && r.Isv_study.isv_s_reduction <= 95.0);
      Alcotest.(check bool)
        (Printf.sprintf "%s ISV reduction %.1f in [90,97]" r.Isv_study.workload
           r.Isv_study.isv_reduction)
        true
        (r.Isv_study.isv_reduction >= 90.0 && r.Isv_study.isv_reduction <= 97.0);
      Alcotest.(check bool) "dynamic smaller than static" true
        (r.Isv_study.dynamic_size < r.Isv_study.static_size))
    rows

let test_gadget_ranges () =
  List.iter
    (fun (r : Isv_study.gadget_row) ->
      let all3 (a, b, c) p = p a && p b && p c in
      Alcotest.(check bool) "ISV-S blocks 75-95%" true
        (all3 r.Isv_study.isv_s_pct (fun x -> x >= 75.0 && x <= 95.0));
      Alcotest.(check bool) "ISV blocks 82-97%" true
        (all3 r.Isv_study.isv_pct (fun x -> x >= 82.0 && x <= 97.0));
      Alcotest.(check bool) "ISV++ blocks everything" true
        (all3 r.Isv_study.plus_pct (fun x -> x = 100.0)))
    (Isv_study.gadget_rows (Lazy.force study))

let test_speedup_ranges () =
  let rows = Isv_study.speedup_rows (Lazy.force study) in
  List.iter
    (fun (r : Isv_study.speedup_row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s speedup %.2f in [1.1, 2.4]" r.Isv_study.workload
           r.Isv_study.speedup)
        true
        (r.Isv_study.speedup >= 1.1 && r.Isv_study.speedup <= 2.4))
    rows;
  let avg = Isv_study.average_speedup rows in
  Alcotest.(check bool)
    (Printf.sprintf "average %.2f near 1.57" avg)
    true
    (avg >= 1.3 && avg <= 1.9)

let test_perf_select_ordering () =
  let test = Lebench.find "select" in
  let scale = 0.5 in
  let unsafe = Perf.run_lebench ~scale Schemes.unsafe test in
  let fence = Perf.run_lebench ~scale Schemes.fence test in
  let persp = Perf.run_lebench ~scale Schemes.perspective test in
  let dom = Perf.run_lebench ~scale Schemes.dom test in
  let ov r = Perf.overhead_pct ~baseline:unsafe r in
  Alcotest.(check bool)
    (Printf.sprintf "FENCE heavy on select (%.0f%%)" (ov fence))
    true
    (ov fence > 100.0);
  Alcotest.(check bool)
    (Printf.sprintf "DOM heavy on select (%.0f%%)" (ov dom))
    true
    (ov dom > 50.0);
  Alcotest.(check bool)
    (Printf.sprintf "Perspective light on select (%.1f%%)" (ov persp))
    true
    (ov persp < 15.0)

let test_perf_fence_accounting () =
  let test = Lebench.find "poll" in
  let run = Perf.run_lebench ~scale:0.5 Schemes.perspective test in
  let isv_k, dsv_k = Perf.fences_per_kiloinstr run in
  Alcotest.(check bool) "DSV fences dominate" true (dsv_k > isv_k);
  Alcotest.(check bool) "some fencing happens" true (dsv_k > 0.5)

let test_perf_throughput_normalization () =
  let app = Pv_workloads.Apps.memcached in
  let unsafe = Perf.run_app ~scale:0.3 Schemes.unsafe app in
  let fence = Perf.run_app ~scale:0.3 Schemes.fence app in
  let nt = Perf.normalized_throughput ~baseline:unsafe fence in
  Alcotest.(check bool)
    (Printf.sprintf "fence throughput below baseline (%.2f)" nt)
    true (nt < 1.0 && nt > 0.5);
  Alcotest.(check bool) "kernel fraction sane" true
    (unsafe.Perf.kernel_cycle_fraction > 0.3 && unsafe.Perf.kernel_cycle_fraction < 0.9)

let test_security_pocs () =
  let pocs = Security.run_pocs () in
  check Alcotest.int "28 verdicts" 28 (List.length pocs);
  let leaks = List.filter (fun p -> p.Security.correct) pocs in
  (* Exactly: v1 UNSAFE, v2 UNSAFE, v2 DSV-only, rsb UNSAFE. *)
  check Alcotest.int "four leaks" 4 (List.length leaks);
  List.iter
    (fun p ->
      Alcotest.(check bool) "leaks only where expected" true
        (p.Security.scheme = "UNSAFE" || p.Security.scheme = "PERSPECTIVE-ALL"))
    leaks

let test_cacti_calibration () =
  let d = Cacti.characterize Cacti.dsv_cache_config in
  Alcotest.(check bool) "area" true (abs_float (d.Cacti.area_mm2 -. 0.0024) < 0.0002);
  Alcotest.(check bool) "access" true (abs_float (d.Cacti.access_ps -. 114.0) < 3.0);
  Alcotest.(check bool) "energy" true (abs_float (d.Cacti.dyn_energy_pj -. 1.21) < 0.05);
  Alcotest.(check bool) "leakage" true (abs_float (d.Cacti.leak_power_mw -. 0.78) < 0.03);
  let i = Cacti.characterize Cacti.isv_cache_config in
  Alcotest.(check bool) "isv slightly larger" true (i.Cacti.area_mm2 > d.Cacti.area_mm2);
  (* scaling sanity *)
  let big = Cacti.characterize { Cacti.dsv_cache_config with Cacti.entries = 256 } in
  Alcotest.(check bool) "bigger is bigger" true
    (big.Cacti.area_mm2 > d.Cacti.area_mm2 && big.Cacti.access_ps > d.Cacti.access_ps)

let test_fragmentation () =
  let r = Sensitivity.fragmentation () in
  (* The paper's claim is that the secure allocator's memory cost is tiny
     (0.91%); placement noise between the two runs can swing the sign, so we
     assert the magnitude. *)
  Alcotest.(check bool)
    (Printf.sprintf "overhead %.2f%% is small" r.Sensitivity.memory_overhead_pct)
    true
    (abs_float r.Sensitivity.memory_overhead_pct < 3.0);
  Alcotest.(check bool) "utilizations comparable" true
    (abs_float (r.Sensitivity.secure_utilization -. r.Sensitivity.shared_utilization) < 0.05);
  Alcotest.(check bool) "pages were actually used" true (r.Sensitivity.shared_pages > 100)

let test_view_cache_entries_knob () =
  let test = Lebench.find "poll" in
  let small = Perf.run_lebench ~scale:0.3 ~view_cache_entries:8 Schemes.perspective test in
  let big = Perf.run_lebench ~scale:0.3 ~view_cache_entries:512 Schemes.perspective test in
  let rate = function
    | Some r -> r
    | None -> Alcotest.fail "PERSPECTIVE run must access the DSV cache"
  in
  Alcotest.(check bool) "bigger caches hit at least as well" true
    (rate big.Perf.dsv_hit_rate >= rate small.Perf.dsv_hit_rate -. 1e-9);
  Alcotest.(check bool) "metadata pages populated" true (big.Perf.isv_pages_populated > 0);
  Alcotest.(check bool) "metadata bytes = 128 * pages" true
    (big.Perf.isv_metadata_bytes = 128 * big.Perf.isv_pages_populated)

let test_schemes_registry () =
  check Alcotest.int "standard" 5 (List.length Schemes.standard);
  check Alcotest.int "hardware" 4 (List.length Schemes.hardware);
  check Alcotest.int "spot" 2 (List.length Schemes.spot);
  Alcotest.(check bool) "find" true ((Schemes.find "DOM").Schemes.label = "DOM")

let test_static_tables_render () =
  let t1 = E.Static_tables.sim_params () in
  let t2 = E.Static_tables.hw_characterization () in
  let t3 = Security.cve_table () in
  List.iter
    (fun t -> Alcotest.(check bool) "renders" true (String.length (Pv_util.Tab.to_string t) > 100))
    [ t1; t2; t3 ]

let suite =
  [
    ( "experiments.isv_study",
      [
        Alcotest.test_case "Table 8.1 ranges" `Slow test_surface_ranges;
        Alcotest.test_case "Table 8.2 ranges" `Slow test_gadget_ranges;
        Alcotest.test_case "Figure 9.1 ranges" `Slow test_speedup_ranges;
      ] );
    ( "experiments.perf",
      [
        Alcotest.test_case "select scheme ordering" `Slow test_perf_select_ordering;
        Alcotest.test_case "fence accounting" `Slow test_perf_fence_accounting;
        Alcotest.test_case "throughput normalization" `Slow test_perf_throughput_normalization;
      ] );
    ("experiments.security", [ Alcotest.test_case "PoC verdicts" `Slow test_security_pocs ]);
    ( "experiments.analytic",
      [
        Alcotest.test_case "CACTI calibration" `Quick test_cacti_calibration;
        Alcotest.test_case "fragmentation" `Slow test_fragmentation;
        Alcotest.test_case "view-cache size knob" `Slow test_view_cache_entries_knob;
        Alcotest.test_case "scheme registry" `Quick test_schemes_registry;
        Alcotest.test_case "static tables render" `Quick test_static_tables_render;
      ] );
  ]
