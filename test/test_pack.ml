(* Property tests for Pipeline.Pack, the packed ROB-entry flag word.

   The cycle loop trusts Pack completely: every per-entry boolean and
   small-enum lives in one immediate int, and the issue/commit scans read
   them with mask arithmetic.  A single aliased bit would corrupt entry
   state silently — the pipeline would still run, just wrongly — so the
   encoding is pinned here from three angles:

   1. round-trip: writing any field of any word reads back exactly the
      written value, leaves every other field untouched, and stays inside
      the low [Pack.bits] bits;
   2. bit ownership: each of the [Pack.bits] bit positions is read by
      exactly one field, so the fields partition the word (no aliasing, no
      dead bits);
   3. end-to-end: randomized programs through the packed pipeline and the
      frozen seed reference commit the same stream in the same number of
      cycles (the whole-word encoding, not just individual fields). *)

module Pipeline = Pv_uarch.Pipeline
module Pipeline_ref = Pv_uarch.Pipeline_ref
module Pack = Pipeline.Pack
module Rng = Pv_util.Rng

let check = Alcotest.check

(* Every field as (name, get-as-int, set-from-int, legal values).  Bools
   are 0/1; the two 2-bit enums exercise all four codes, including the
   unused state code 3, which must still round-trip arithmetically. *)
let fields =
  [
    ("state", Pack.state, Pack.with_state, [ 0; 1; 2; 3 ]);
    ("blocked_src", Pack.blocked_src, Pack.with_blocked_src, [ 0; 1; 2; 3 ]);
  ]
  @ List.map
      (fun (name, get, set) ->
        ( name,
          (fun f -> if get f then 1 else 0),
          (fun f v -> set f (v = 1)),
          [ 0; 1 ] ))
      [
        ("is_ctrl", Pack.is_ctrl, Pack.with_is_ctrl);
        ("pred_taken", Pack.pred_taken, Pack.with_pred_taken);
        ("actual_taken", Pack.actual_taken, Pack.with_actual_taken);
        ("resolved", Pack.resolved, Pack.with_resolved);
        ("spec_at_issue", Pack.spec_at_issue, Pack.with_spec_at_issue);
        ("vp_done", Pack.vp_done, Pack.with_vp_done);
        ("addr_known", Pack.addr_known, Pack.with_addr_known);
        ("kernel", Pack.kernel, Pack.with_kernel);
        ("is_load", Pack.is_load, Pack.with_is_load);
        ("is_store", Pack.is_store, Pack.with_is_store);
        ("is_fence", Pack.is_fence, Pack.with_is_fence);
      ]

let word_gen = QCheck.int_bound ((1 lsl Pack.bits) - 1)

let round_trip_prop =
  QCheck.Test.make ~name:"Pack fields round-trip and never alias" ~count:500
    word_gen (fun w ->
      List.for_all
        (fun (name_f, get_f, set_f, vals) ->
          List.for_all
            (fun v ->
              let w' = set_f w v in
              get_f w' = v
              && w' >= 0
              && w' < 1 lsl Pack.bits
              && List.for_all
                   (fun (name_g, get_g, _, _) ->
                     name_g = name_f || get_g w' = get_g w)
                   fields)
            vals)
        fields)

(* Flipping any single bit of the word must change exactly one field:
   together with the round-trip property this proves the fields partition
   all [Pack.bits] bits — nothing aliases and nothing is dead. *)
let test_bit_ownership () =
  for b = 0 to Pack.bits - 1 do
    let w1 = 1 lsl b in
    let changed =
      List.filter (fun (_, get, _, _) -> get 0 <> get w1) fields
    in
    check Alcotest.int
      (Printf.sprintf "bit %d read by exactly one field" b)
      1 (List.length changed)
  done

let test_empty_defaults () =
  check Alcotest.int "state" Pack.state_waiting (Pack.state Pack.empty);
  check Alcotest.int "blocked_src" Pack.blocked_none
    (Pack.blocked_src Pack.empty);
  List.iter
    (fun (name, get, _, _) ->
      if name <> "state" && name <> "blocked_src" then
        check Alcotest.int (name ^ " clear in empty") 0 (get Pack.empty))
    fields

(* End-to-end: the packed pipeline against the frozen seed reference on
   randomized programs.  Complements test_equiv's fixed 40-seed sweep with
   QCheck-driven seeds, and pins the properties the flag word feeds into:
   commit stream, registers, cycle count. *)
let packed_vs_reference_prop =
  QCheck.Test.make ~name:"random program: packed pipeline = seed reference"
    ~count:20
    QCheck.(int_bound 0xFFFF)
    (fun seed ->
      let rng = Rng.create (0xAC4_000 + seed) in
      let prog = Test_oracle.gen_program rng in
      let opt, opt_stream, _, _ = Test_equiv.run_opt prog in
      let rf, ref_stream, _, _ = Test_equiv.run_ref prog in
      opt.Pipeline.outcome = Pipeline.Halted
      && rf.Pipeline_ref.outcome = Pipeline_ref.Halted
      && opt_stream = ref_stream
      && opt.Pipeline.regs = rf.Pipeline_ref.regs
      && opt.Pipeline.cycles = rf.Pipeline_ref.cycles
      && opt.Pipeline.committed = rf.Pipeline_ref.committed)

let suite =
  [
    ( "uarch.pack",
      [
        Alcotest.test_case "empty defaults" `Quick test_empty_defaults;
        Alcotest.test_case "bit ownership partition" `Quick test_bit_ownership;
        QCheck_alcotest.to_alcotest round_trip_prop;
        QCheck_alcotest.to_alcotest packed_vs_reference_prop;
      ] );
  ]
